// Queryservice: the resident pattern-matching server, driven end to end.
//
// GraphPi's expensive step is per-pattern planning — restriction generation,
// schedule search, performance prediction (paper Table III). The paper
// amortizes it across one batch run; the query service amortizes it across
// queries: the server holds an optimized graph in memory, caches compiled
// plans by (graph fingerprint, canonical pattern form), bounds concurrent
// work with admission control, and makes every query a cancellable job.
//
// This example starts a server in-process (production would run
// `graphpi -graph data.bin -hybrid -server :8080`), then speaks plain HTTP
// to it the way any client would:
//
//  1. a cold count — pays planning once;
//  2. the same count again — a cache hit, planning latency ≈ 0;
//  3. an isomorphic respelling of the pattern — still a hit (canonical keys);
//  4. a streamed enumerate over NDJSON, stopped early by the client, which
//     cancels the job server-side and frees its workers;
//  5. the metrics endpoint, showing cache hit rate and job counters.
//
// Run with:
//
//	go run ./examples/queryservice
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"graphpi"
)

type countResponse struct {
	Job     string  `json:"job"`
	Count   int64   `json:"count"`
	Cache   string  `json:"cache"`
	Backend string  `json:"backend"`
	PlanSec float64 `json:"plan_seconds"`
	ExecSec float64 `json:"exec_seconds"`
}

func main() {
	// A skewed social-network stand-in, optimized the way a server should
	// deploy it: degree-ordered with hub bitmaps.
	g := graphpi.GenerateBA(30000, 6, 7).Optimize(0)
	srv, err := graphpi.ServeQueries("127.0.0.1:0", graphpi.QueryServiceOptions{
		Graphs: map[string]*graphpi.Graph{"social": g},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	fmt.Printf("server on %s — graph %q resident (%d vertices, %d edges)\n\n",
		srv.Addr(), "social", g.NumVertices(), g.NumEdges())

	count := func(url string) countResponse {
		resp, err := http.Get(base + url)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var cr countResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			log.Fatal(err)
		}
		return cr
	}

	// 1. Cold query: the planner runs (restrictions + schedules + model).
	cold := count("/count?graph=social&pattern=house")
	fmt.Printf("cold   count=%d cache=%-4s plan=%8.3fms exec=%.1fms  (job %s)\n",
		cold.Count, cold.Cache, cold.PlanSec*1000, cold.ExecSec*1000, cold.Job)

	// 2. Repeat query: the plan cache answers; planning cost vanishes.
	warm := count("/count?graph=social&pattern=house")
	fmt.Printf("cached count=%d cache=%-4s plan=%8.3fms exec=%.1fms  (job %s)\n",
		warm.Count, warm.Cache, warm.PlanSec*1000, warm.ExecSec*1000, warm.Job)

	// 3. The same pattern spelled as a shuffled adjacency matrix: the cache
	// keys on the canonical form, so this is still a hit.
	iso := count("/count?graph=social&pattern=5:0100110100010110010110110")
	fmt.Printf("isomorphic respelling: cache=%s (canonical pattern keys)\n\n", iso.Cache)

	// 4. Stream embeddings; hang up after five. The server sees the
	// disconnect as a context cancellation and frees the job's workers.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", base+"/enumerate?graph=social&pattern=house", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	fmt.Println("streaming embeddings (original vertex ids), stopping after 5:")
	for i := 0; i < 5 && sc.Scan(); i++ {
		fmt.Printf("  %s\n", sc.Text())
	}
	cancel()
	resp.Body.Close()
	time.Sleep(50 * time.Millisecond) // let the server record the cancellation

	// 5. Metrics: the operator's view.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	var m struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
			Plans  int64 `json:"planning_runs"`
		} `json:"cache"`
		HitRate float64 `json:"cache_hit_rate"`
		Jobs    struct {
			Done     int64 `json:"done"`
			Canceled int64 `json:"canceled"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmetrics: %d planning runs for %d+%d lookups (hit rate %.2f), jobs done=%d canceled=%d\n",
		m.Cache.Plans, m.Cache.Hits, m.Cache.Misses, m.HitRate, m.Jobs.Done, m.Jobs.Canceled)
}
