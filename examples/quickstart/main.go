// Quickstart: count and list embeddings of a pattern in a graph.
//
// This example mirrors the paper's API promise (§III: "Users only need to
// input a pattern and a data graph"): build or load a graph, pick a
// pattern, plan once, then count or enumerate.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"graphpi"
)

func main() {
	// A scaled-down stand-in for the Wiki-Vote graph (Table I).
	g, err := graphpi.LoadDataset("WikiVote-S", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %s — %s\n", g.Name(), g.StatsString())

	// The paper's running example: the House pattern (Figure 5).
	p := graphpi.House()
	fmt.Printf("pattern: %s\n", p)

	// Planning runs GraphPi's full preprocessing pipeline: Algorithm 1
	// generates restriction-set alternatives, the 2-phase generator emits
	// efficient schedules, and the performance model picks the best
	// combination for this graph's statistics.
	plan, err := graphpi.NewPlan(g, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected configuration: %s\n", plan.Describe())
	fmt.Printf("preprocessing took %v (paper Table III regime)\n\n", plan.PrepTime())

	// Counting with the Inclusion-Exclusion Principle (§IV-D).
	count := plan.CountIEP()
	fmt.Printf("houses in the graph: %d\n", count)

	// Plain enumeration gives the identical number.
	if plain := plan.Count(); plain != count {
		log.Fatalf("BUG: enumerated count %d != IEP count %d", plain, count)
	}

	// Listing: print the first few embeddings. The slice passed to the
	// callback is indexed by pattern vertex and reused between calls.
	// With multiple workers the callback runs concurrently, so use a
	// single-worker plan for an ordered, race-free listing.
	listing, err := graphpi.NewPlan(g, p, graphpi.WithWorkers(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst 5 embeddings (pattern vertex -> data vertex):")
	shown := 0
	listing.Enumerate(func(emb []uint32) bool {
		fmt.Printf("  %v\n", emb)
		shown++
		return shown < 5
	})

	// One-shot convenience API.
	triangles, err := graphpi.Count(g, graphpi.Triangle())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntriangles: %d (cross-check: %d from graph stats)\n",
		triangles, g.Triangles())
}
