// Fraud rings: find suspicious transaction cycles in a payment network.
//
// Cycle patterns are a standard fraud-detection signal (the paper cites
// fraud detection as a core application of pattern matching). This example
// models a payment network as an undirected graph, searches for 5-cycles
// (Pentagon) and "reinforced rings" (Cycle-6-Tri: a 6-ring where one
// account shortcuts to two others), and reports the most frequent
// participants — the accounts an investigator would look at first.
//
// Run with:
//
//	go run ./examples/fraudrings
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"graphpi"
)

func main() {
	// A skewed synthetic "payment network": most accounts transact with a
	// few peers, a handful of hubs touch thousands.
	g := graphpi.GenerateBA(30000, 3, 2026)
	fmt.Printf("payment network: %s\n\n", g.StatsString())

	for _, p := range []*graphpi.Pattern{graphpi.Pentagon(), graphpi.Cycle6Tri()} {
		plan, err := graphpi.NewPlan(g, p)
		if err != nil {
			log.Fatal(err)
		}
		total := plan.CountIEP()
		fmt.Printf("pattern %s: %d instances (config: %s)\n", p, total, plan.Describe())

		// Enumerate and attribute instances to accounts. The visitor runs
		// concurrently, so accumulate per-account counts under a mutex.
		var mu sync.Mutex
		participation := map[uint32]int{}
		budget := int64(200000) // cap enumeration for the report
		seen := int64(0)
		plan.Enumerate(func(emb []uint32) bool {
			mu.Lock()
			for _, v := range emb {
				participation[v]++
			}
			seen++
			stop := seen >= budget
			mu.Unlock()
			return !stop
		})

		type acct struct {
			id uint32
			n  int
		}
		var ranked []acct
		for id, n := range participation {
			ranked = append(ranked, acct{id, n})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].n != ranked[j].n {
				return ranked[i].n > ranked[j].n
			}
			return ranked[i].id < ranked[j].id
		})
		fmt.Printf("  top accounts by ring participation (of %d rings inspected):\n", seen)
		for i := 0; i < 5 && i < len(ranked); i++ {
			fmt.Printf("    account %-8d in %d rings (degree %d)\n",
				ranked[i].id, ranked[i].n, g.Degree(ranked[i].id))
		}
		fmt.Println()
	}
}
