// Motif census: count every connected 4-vertex pattern in a co-authorship
// style graph.
//
// Motif counting is the workload the paper's introduction uses to motivate
// specialized systems ("RStream generates about 1.2TB intermediate data to
// count 4-motif on the MiCo graph"); GraphPi counts each motif with a
// planned configuration and the IEP optimization, no intermediate data at
// all.
//
// Run with:
//
//	go run ./examples/motifcensus
package main

import (
	"fmt"
	"log"
	"time"

	"graphpi"
)

func main() {
	g, err := graphpi.LoadDataset("MiCo-S", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %s — %s\n\n", g.Name(), g.StatsString())

	motifs := graphpi.Motifs(4)
	fmt.Printf("4-vertex connected motifs: %d\n", len(motifs))
	fmt.Printf("%-12s %14s %12s %s\n", "motif", "count", "time", "configuration")

	var total int64
	start := time.Now()
	for _, m := range motifs {
		plan, err := graphpi.NewPlan(g, m)
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		t0 := time.Now()
		count := plan.CountIEP()
		total += count
		fmt.Printf("%-12s %14d %12v %s\n",
			m.Name(), count, time.Since(t0).Round(time.Millisecond), plan.Describe())
	}
	fmt.Printf("\n4-motif census total: %d embeddings in %v\n",
		total, time.Since(start).Round(time.Millisecond))

	// Sanity: the star motif count equals the closed-form sum over
	// vertices of C(deg, 3).
	var stars int64
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		d := int64(g.Degree(v))
		stars += d * (d - 1) * (d - 2) / 6
	}
	fmt.Printf("closed-form 3-star count: %d (must match the star motif above)\n", stars)
}
