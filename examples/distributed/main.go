// Distributed matching: run a pattern count on a simulated multi-node
// cluster and watch the work-stealing runtime balance a skewed workload.
//
// This exercises the paper's §IV-E architecture — master task packing,
// per-node queues, communication threads, cross-node stealing — with
// goroutines standing in for MPI ranks (see DESIGN.md §3 for why the
// substitution preserves the load-balancing behavior the paper studies).
// The master packs edge-parallel adjacency-slot tasks whenever the planned
// schedule allows it, so a hub vertex's work spreads across many stealable
// tasks instead of pinning one node; the final section contrasts the two
// task shapes on the same job.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"graphpi"
)

func main() {
	g, err := graphpi.LoadDataset("Orkut-S", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	p := graphpi.House()
	fmt.Printf("graph: %s — %s\npattern: %s\n\n", g.Name(), g.StatsString(), p)

	var base float64
	for _, nodes := range []int{1, 2, 4} {
		res, err := graphpi.ClusterCount(g, p, graphpi.ClusterOptions{
			Nodes:          nodes,
			WorkersPerNode: 2,
			UseIEP:         true,
		})
		if err != nil {
			log.Fatal(err)
		}
		secs := res.Elapsed.Seconds()
		if nodes == 1 {
			base = secs
		}
		fmt.Printf("nodes=%d  count=%d  time=%.3fs  speedup=%.2fx  steals=%d\n",
			nodes, res.Count, secs, base/secs, res.Steals)
		fmt.Printf("         tasks per node: %v  max busy share: %.2f (ideal %.2f)\n",
			res.TasksPerNode, res.MaxBusyShare(), 1/float64(nodes))
	}

	// The same job with both task shapes: vertex ranges let one hub-heavy
	// chunk dominate a node's busy time; edge-parallel slot tasks split
	// every adjacency across tasks, so busy time spreads evenly.
	fmt.Println("\ntask shape comparison (4 nodes):")
	for _, mode := range []graphpi.EdgeParallelMode{graphpi.EdgeParallelOff, graphpi.EdgeParallelOn} {
		res, err := graphpi.ClusterCount(g, p, graphpi.ClusterOptions{
			Nodes:          4,
			WorkersPerNode: 2,
			UseIEP:         true,
			EdgeParallel:   mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		shape := "vertex ranges"
		if res.EdgeParallel {
			shape = "edge slots   "
		}
		fmt.Printf("  %s  %4d tasks  max busy share %.2f  time=%.3fs\n",
			shape, res.Tasks, res.MaxBusyShare(), res.Elapsed.Seconds())
	}

	fmt.Println("\nNote: simulated nodes share one machine; speedups are " +
		"meaningful up to the physical core count, and short jobs flatten " +
		"early — the same effect as the paper's Figure 12.")
}
