// Distributed matching: run a pattern count on a simulated multi-node
// cluster, watch the work-stealing runtime balance a skewed workload, then
// run the identical job across real TCP worker processes and compare.
//
// This exercises the paper's §IV-E architecture — master task packing,
// per-node queues, communication threads, cross-node stealing — first with
// goroutines standing in for MPI ranks (see DESIGN.md §3 for why the
// substitution preserves the load-balancing behavior the paper studies),
// then over the TCP transport, where each rank is a separate worker serving
// its own replica of the graph and steals are relayed by the master. The
// master packs edge-parallel adjacency-slot tasks whenever the planned
// schedule allows it, so a hub vertex's work spreads across many stealable
// tasks instead of pinning one node; the middle section contrasts the two
// task shapes on the same job.
//
// Run with:
//
//	go run ./examples/distributed
//
// The TCP section spawns loopback workers in-process for a self-contained
// demo; across machines the same thing is `graphpi -serve`/`-join` with a
// shared GPiCSR2 snapshot (see the README's distributed quickstart).
package main

import (
	"fmt"
	"log"

	"graphpi"
)

func main() {
	g, err := graphpi.LoadDataset("Orkut-S", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	p := graphpi.House()
	fmt.Printf("graph: %s — %s\npattern: %s\n\n", g.Name(), g.StatsString(), p)

	var base float64
	for _, nodes := range []int{1, 2, 4} {
		res, err := graphpi.ClusterCount(g, p, graphpi.ClusterOptions{
			Nodes:          nodes,
			WorkersPerNode: 2,
			UseIEP:         true,
		})
		if err != nil {
			log.Fatal(err)
		}
		secs := res.Elapsed.Seconds()
		if nodes == 1 {
			base = secs
		}
		fmt.Printf("nodes=%d  count=%d  time=%.3fs  speedup=%.2fx  steals=%d\n",
			nodes, res.Count, secs, base/secs, res.Steals)
		fmt.Printf("         tasks per node: %v  max busy share: %.2f (ideal %.2f)\n",
			res.TasksPerNode, res.MaxBusyShare(), 1/float64(nodes))
	}

	// The same job with both task shapes: vertex ranges let one hub-heavy
	// chunk dominate a node's busy time; edge-parallel slot tasks split
	// every adjacency across tasks, so busy time spreads evenly.
	fmt.Println("\ntask shape comparison (4 nodes):")
	for _, mode := range []graphpi.EdgeParallelMode{graphpi.EdgeParallelOff, graphpi.EdgeParallelOn} {
		res, err := graphpi.ClusterCount(g, p, graphpi.ClusterOptions{
			Nodes:          4,
			WorkersPerNode: 2,
			UseIEP:         true,
			EdgeParallel:   mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		shape := "vertex ranges"
		if res.EdgeParallel {
			shape = "edge slots   "
		}
		fmt.Printf("  %s  %4d tasks  max busy share %.2f  time=%.3fs\n",
			shape, res.Tasks, res.MaxBusyShare(), res.Elapsed.Seconds())
	}

	// The same job again, but with the ranks as real TCP worker processes
	// (loopback here): identical counts, with the wire protocol's framing
	// and steal-relay latency now paid for real.
	fmt.Println("\nchannel vs TCP transport (2 nodes x 2 workers):")
	chanRes, err := graphpi.ClusterCount(g, p, graphpi.ClusterOptions{
		Nodes: 2, WorkersPerNode: 2, UseIEP: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, err := graphpi.ServeCluster("127.0.0.1:0", g, 0)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	cl, err := graphpi.ConnectCluster(addrs...)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	tcpRes, err := cl.Count(g, p, graphpi.ClusterOptions{WorkersPerNode: 2, UseIEP: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  channel  count=%d  time=%.3fs  steals=%d\n",
		chanRes.Count, chanRes.Elapsed.Seconds(), chanRes.Steals)
	fmt.Printf("  tcp      count=%d  time=%.3fs  steals=%d  workers=%v\n",
		tcpRes.Count, tcpRes.Elapsed.Seconds(), tcpRes.Steals, addrs)
	if chanRes.Count != tcpRes.Count {
		log.Fatalf("transport mismatch: channel %d != tcp %d", chanRes.Count, tcpRes.Count)
	}
	fmt.Printf("  counts bit-identical; TCP overhead %.1f%%\n",
		100*(tcpRes.Elapsed.Seconds()/chanRes.Elapsed.Seconds()-1))

	fmt.Println("\nNote: simulated nodes and loopback workers share one " +
		"machine; speedups are meaningful up to the physical core count, " +
		"and short jobs flatten early — the same effect as the paper's " +
		"Figure 12.")
}
