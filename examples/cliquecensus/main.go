// Clique census: count k-cliques for k = 3..6 across datasets.
//
// Clique counting is the classic special case of pattern matching (the
// paper's 7-clique example has 5,040 automorphisms per embedding — the
// redundancy Algorithm 1 eliminates). This example shows how the planner's
// chosen restriction chain turns K_k counting into the standard ordered
// enumeration, and how counts explode with k on clustered graphs.
//
// Run with:
//
//	go run ./examples/cliquecensus
package main

import (
	"fmt"
	"log"
	"time"

	"graphpi"
)

func main() {
	for _, name := range []string{"WikiVote-S", "MiCo-S", "Patents-S"} {
		g, err := graphpi.LoadDataset(name, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", name, g.StatsString())
		for k := 3; k <= 6; k++ {
			p := graphpi.Clique(k)
			plan, err := graphpi.NewPlan(g, p)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			count := plan.CountIEP()
			fmt.Printf("  K%d: %12d cliques in %8v   (%s)\n",
				k, count, time.Since(start).Round(time.Microsecond), plan.Describe())
		}
		fmt.Println()
	}
	fmt.Println("Note how every K_k plan uses a full restriction chain " +
		"id(v0)>id(v1)>…>id(v_{k-1}): the k! automorphisms of a clique " +
		"collapse to a single ordered enumeration.")
}
