// Package graphpi is a pure-Go implementation of GraphPi, the graph pattern
// matching system of Shi et al., "GraphPi: High Performance Graph Pattern
// Matching through Effective Redundancy Elimination" (SC 2020).
//
// GraphPi finds (or counts) all embeddings of a small pattern graph in a
// large data graph. Its performance comes from three ideas, all implemented
// here:
//
//   - 2-cycle based automorphism elimination generates many alternative
//     restriction sets, each of which makes every embedding be found exactly
//     once (§IV-A);
//   - a 2-phase schedule generator and an accurate performance model pick
//     the best combination of search order and restriction set for the
//     input graph's statistics (§IV-B/C);
//   - counting-only workloads replace the innermost loops with an
//     Inclusion-Exclusion computation (§IV-D).
//
// Quick start:
//
//	g, _ := graphpi.LoadDataset("WikiVote-S", 1.0)
//	p := graphpi.House()
//	plan, _ := graphpi.NewPlan(g, p)
//	fmt.Println(plan.CountIEP())
//
// See the examples directory for complete programs and DESIGN.md for how
// each paper experiment maps onto this library.
package graphpi

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"graphpi/internal/approx"
	"graphpi/internal/auxgraph"
	"graphpi/internal/cluster"
	"graphpi/internal/codegen"
	"graphpi/internal/core"
	"graphpi/internal/dataset"
	"graphpi/internal/graph"
	"graphpi/internal/labeled"
	"graphpi/internal/pattern"
	"graphpi/internal/service"
	"graphpi/internal/telemetry"
)

// Graph is an immutable undirected data graph in CSR form.
type Graph struct {
	g *graph.Graph
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.g.NumVertices() }

// NumEdges returns |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int64 { return g.g.NumEdges() }

// Triangles returns the triangle count (computed once, then cached).
func (g *Graph) Triangles() int64 { return g.g.Triangles() }

// Name returns the dataset label, if any.
func (g *Graph) Name() string { return g.g.Name() }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v uint32) int { return g.g.Degree(v) }

// Neighbors returns the ascending neighbor list of v (read-only view).
func (g *Graph) Neighbors(v uint32) []uint32 { return g.g.Neighbors(v) }

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v uint32) bool { return g.g.HasEdge(u, v) }

// StatsString renders |V|, |E|, triangle count and degree statistics.
func (g *Graph) StatsString() string { return g.g.Stats().String() }

// Optimize returns a hybrid-adjacency view of the graph: vertices are
// relabeled so ids descend by degree (restriction windows prune earlier,
// hubs cluster at the front of the id space) and the top vertices by degree
// get packed adjacency bitsets, so hub intersections cost O(|small side|).
// Plans run against the optimized view typically count 1.5-2x faster on
// power-law graphs; Enumerate still reports original vertex ids. The
// original graph is not modified.
//
// viewBudgetBytes is the unified view budget (<= 0 → a 96 MiB default): one
// allocator (internal/auxgraph.PlanBudget) splits it between the hub bitmaps
// built here and the per-worker auxiliary-graph scratch that runs with
// WithAux consume at execution time, so the two acceleration structures are
// sized together instead of competing unaccounted. Pass the same value to
// WithViewBudget so runs agree with the view.
//
// Vertices only become hubs above a degree floor of 64; use OptimizeHubs to
// tune it.
func (g *Graph) Optimize(viewBudgetBytes int64) *Graph {
	return g.OptimizeHubs(viewBudgetBytes, 0)
}

// OptimizeHubs is Optimize with an explicit hub degree floor: only vertices
// with degree >= hubDegreeFloor are eligible for an adjacency bitset
// (<= 0 → the default floor of 64). Lowering the floor trades budget for
// coverage on flatter degree distributions; snapshots of the view persist
// both the budget and the floor, so SaveBinary/LoadGraph round trips
// rebuild the same hub set.
func (g *Graph) OptimizeHubs(viewBudgetBytes int64, hubDegreeFloor int) *Graph {
	og := g.g.Reorder()
	// The hub share of the unified view budget; the aux share is consumed
	// per run, per worker (see RunOptions.AuxBudget), sized by the actual
	// schedule. Here the nominal single deep step stands in for it.
	split := auxgraph.PlanBudget(viewBudgetBytes, og.NumVertices(), runtime.GOMAXPROCS(0), 1)
	og.BuildHubBitmaps(split.HubBytes, hubDegreeFloor)
	return &Graph{g: og}
}

// IsOptimized reports whether this graph is a degree-ordered view produced
// by Optimize.
func (g *Graph) IsOptimized() bool { return g.g.IsReordered() }

// NewGraph builds a graph with n vertices from an undirected edge list.
func NewGraph(n int, edges [][2]uint32) (*Graph, error) {
	gg, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	return &Graph{g: gg}, nil
}

// LoadGraph reads a graph from disk, auto-detecting the binary snapshot
// format (written by SaveBinary) versus whitespace edge-list text.
func LoadGraph(path string) (*Graph, error) {
	gg, err := graph.LoadAnyFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{g: gg}, nil
}

// ReadGraph parses an edge list from r.
func ReadGraph(r io.Reader) (*Graph, error) {
	gg, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: gg}, nil
}

// SaveBinary writes the fast binary snapshot format (GPiCSR3). Snapshots of
// an Optimize()d graph persist the degree-ordered id maps, the hub-bitmap
// budget and the hub degree floor, so the hybrid view's Reorder cost is
// paid once per dataset: LoadGraph restores the view (bitmaps are rebuilt,
// not stored) and Enumerate keeps reporting original vertex ids. Snapshots
// written by previous releases (GPiCSR1/GPiCSR2) still load.
func (g *Graph) SaveBinary(path string) error { return graph.SaveBinaryFile(path, g.g) }

// LoadDataset builds one of the six named synthetic stand-in datasets
// reproducing the paper's Table I (see internal/dataset). scale 1.0 is the
// default reproduction size; smaller values shrink the graph approximately
// proportionally. Datasets are cached in-process.
func LoadDataset(name string, scale float64) (*Graph, error) {
	gg, err := dataset.Load(name, scale)
	if err != nil {
		return nil, err
	}
	return &Graph{g: gg}, nil
}

// DatasetNames lists the available dataset stand-ins.
func DatasetNames() []string { return dataset.SortedNames() }

// GenerateBA returns a Barabási–Albert preferential-attachment graph
// (power-law, clustered — a social-network regime).
func GenerateBA(n, edgesPerVertex int, seed uint64) *Graph {
	return &Graph{g: graph.BarabasiAlbert(n, edgesPerVertex, seed)}
}

// GenerateGNM returns a uniform G(n,m) random graph.
func GenerateGNM(n, m int, seed uint64) *Graph {
	return &Graph{g: graph.GNM(n, m, seed)}
}

// GenerateRMAT returns an RMAT graph with 2^scale vertices (heavy skew).
func GenerateRMAT(scale, edges int, seed uint64) *Graph {
	return &Graph{g: graph.RMAT(scale, edges, 0.57, 0.19, 0.19, seed)}
}

// Pattern is a small undirected query graph.
type Pattern struct {
	p *pattern.Pattern
}

// NewPattern builds a pattern with n vertices from an edge list.
func NewPattern(n int, edges [][2]int, name string) (*Pattern, error) {
	pp, err := pattern.New(n, edges, name)
	if err != nil {
		return nil, err
	}
	return &Pattern{p: pp}, nil
}

// PatternFromAdjacency parses the row-major 0/1 adjacency-matrix string
// format used by the GraphPi reference implementation.
func PatternFromAdjacency(n int, matrix, name string) (*Pattern, error) {
	pp, err := pattern.ParseAdjacency(n, matrix, name)
	if err != nil {
		return nil, err
	}
	return &Pattern{p: pp}, nil
}

// N returns the number of pattern vertices.
func (p *Pattern) N() int { return p.p.N() }

// NumEdges returns the number of pattern edges.
func (p *Pattern) NumEdges() int { return p.p.NumEdges() }

// Name returns the pattern's display name.
func (p *Pattern) Name() string { return p.p.Name() }

// String renders "Name(nv,me)".
func (p *Pattern) String() string { return p.p.String() }

// Named patterns. Triangle, Rectangle, Pentagon, House and Cycle6Tri are
// the paper's worked examples; P1–P6 are the evaluation suite of Figure 7.
func Triangle() *Pattern  { return &Pattern{p: pattern.Triangle()} }
func Rectangle() *Pattern { return &Pattern{p: pattern.Rectangle()} }
func Pentagon() *Pattern  { return &Pattern{p: pattern.Pentagon()} }
func House() *Pattern     { return &Pattern{p: pattern.House()} }
func Cycle6Tri() *Pattern { return &Pattern{p: pattern.Cycle6Tri()} }

// Clique returns the complete pattern K_n (n ≤ 12).
func Clique(n int) *Pattern { return &Pattern{p: pattern.Clique(n)} }

// NamedPattern resolves a pattern by name, case-insensitively: the worked
// examples (triangle, rectangle, pentagon, house, cycle6tri), the
// evaluation suite p1..p6, and cliques k3..k12 — the names the CLI and the
// query service accept.
func NamedPattern(name string) (*Pattern, error) {
	pp, err := pattern.Named(name)
	if err != nil {
		return nil, err
	}
	return &Pattern{p: pp}, nil
}

// ParsePattern resolves a pattern spec: a NamedPattern name or the
// "n:rowmajor01matrix" adjacency form.
func ParsePattern(spec string) (*Pattern, error) {
	pp, err := pattern.Parse(spec)
	if err != nil {
		return nil, err
	}
	return &Pattern{p: pp}, nil
}

// EvaluationPatterns returns P1–P6, the suite used throughout the paper's
// evaluation section.
func EvaluationPatterns() []*Pattern {
	ps := pattern.EvaluationPatterns()
	out := make([]*Pattern, len(ps))
	for i, p := range ps {
		out[i] = &Pattern{p: p}
	}
	return out
}

// Motifs returns all connected patterns with n vertices up to isomorphism
// (n ≤ 5 recommended) — the motif-counting workload.
func Motifs(n int) []*Pattern {
	ps := pattern.AllConnected(n)
	out := make([]*Pattern, len(ps))
	for i, p := range ps {
		out[i] = &Pattern{p: p}
	}
	return out
}

// Option configures planning and execution.
type Option func(*options)

type options struct {
	workers   int
	chunkSize int
	maxSets   int
	baseline  bool
	edgePar   core.EdgeParallelMode
	tier      core.Tier
	stats     *telemetry.RunStats
	tracer    *telemetry.Tracer
	aux       core.AuxMode
	auxBudget int64
}

// WithWorkers sets the number of worker goroutines (default: GOMAXPROCS).
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithChunkSize sets the outer-loop task granularity.
func WithChunkSize(n int) Option { return func(o *options) { o.chunkSize = n } }

// WithMaxRestrictionSets caps Algorithm 1's restriction-set family size.
func WithMaxRestrictionSets(n int) Option { return func(o *options) { o.maxSets = n } }

// WithGraphZeroBaseline plans like the reproduced GraphZero baseline
// (single restriction set, Phase-1 schedules, degree-only cost model).
func WithGraphZeroBaseline() Option { return func(o *options) { o.baseline = true } }

// WithEdgeParallelRoots forces edge-parallel root scheduling on or off.
// The default (without this option) is automatic: eligible schedules use the
// edge sweep whenever more than one worker runs, so a hub vertex cannot
// serialize a whole outer-loop chunk.
func WithEdgeParallelRoots(enabled bool) Option {
	return func(o *options) {
		if enabled {
			o.edgePar = core.EdgeParallelOn
		} else {
			o.edgePar = core.EdgeParallelOff
		}
	}
}

// Tier selects the execution tier counting runs use: TierAuto (the
// default) picks the fastest applicable — a checked-in generated kernel for
// total-order-restricted cliques, else runtime-compiled closures — while
// TierInterpreted forces the loop-program interpreter. All tiers return
// bit-identical counts; the choice is purely about speed. Enumeration
// always interprets.
type Tier = core.Tier

const (
	TierAuto        = core.TierAuto
	TierInterpreted = core.TierInterpret
	TierCompiled    = core.TierCompiled
	TierGenerated   = core.TierGenerated
)

// WithTier selects the counting execution tier (see Tier).
func WithTier(t Tier) Option { return func(o *options) { o.tier = t } }

// AuxMode selects auxiliary-graph pruning: per-root pruned adjacency rows
// (N(v) ∩ N(root)) materialized lazily and reused across sibling subtrees in
// place of full-row intersections. AuxOff (the default) never builds them;
// AuxOn enables them when the plan is structurally eligible and the cost
// model predicts the reuse to clear the build cost; AuxForce skips the cost
// gate (benchmarks). Counts are bit-identical in every mode.
type AuxMode = core.AuxMode

const (
	AuxOff   = core.AuxOff
	AuxOn    = core.AuxOn
	AuxForce = core.AuxForce
)

// WithAux selects auxiliary-graph pruning for the plan's runs (see AuxMode).
func WithAux(m AuxMode) Option { return func(o *options) { o.aux = m } }

// WithViewBudget sets the unified view budget the plan's runs size their
// auxiliary-graph scratch from (<= 0 → a 96 MiB default). Only the aux share
// of the split is consumed at run time; pass the same value to Optimize so
// the hub share agrees. See internal/auxgraph.PlanBudget.
func WithViewBudget(bytes int64) Option { return func(o *options) { o.auxBudget = bytes } }

// ParseAuxMode parses an aux mode name as accepted by the CLI and the query
// service ("off", "on", "force").
func ParseAuxMode(s string) (AuxMode, error) { return core.ParseAuxMode(s) }

// RunStats is the per-level execution telemetry a run collects: candidate
// scans and set sizes, intersection counts by kernel family, restriction
// prunes, duplicate skips, IEP evaluations, and sampled wall time — indexed
// by schedule level. See Plan.NewRunStats and WithRunStats.
type RunStats = telemetry.RunStats

// LevelStats is one schedule level's counters within a RunStats.
type LevelStats = telemetry.LevelStats

// DriftReport reconciles a run's collected statistics against the planner's
// cost-model predictions (the paper's Eq. 6/7 factors), level by level. See
// Plan.Explain and Plan.Drift.
type DriftReport = telemetry.DriftReport

// Tracer writes NDJSON span events (plan, compile, run, cluster-deal) to a
// writer; a nil *Tracer discards everything. See NewTracer and WithTracer.
type Tracer = telemetry.Tracer

// NewTracer wraps w in a span tracer. The caller owns closing w.
func NewTracer(w io.Writer) *Tracer { return telemetry.NewTracer(w) }

// NewRunStats allocates a telemetry sink for a pattern with n vertices (one
// counter block per schedule level), for WithRunStats. Plan.NewRunStats is
// the same thing sized from an existing plan.
func NewRunStats(n int) *RunStats { return telemetry.NewRunStats(n) }

// WithRunStats directs per-level execution telemetry into st for every run
// of the plan. Collection is opt-in because it is per-run state: allocate
// with Plan.NewRunStats (or telemetry.NewRunStats(pattern.N())) and reuse
// across runs via st.Reset. Counts are bit-identical with or without stats;
// the overhead is one nil check per candidate scan when disabled and plain
// per-worker counters when enabled.
func WithRunStats(st *RunStats) Option { return func(o *options) { o.stats = st } }

// WithTracer emits coarse phase spans (plan, compile, run) for the plan's
// lifecycle to t. A nil tracer is a no-op.
func WithTracer(t *Tracer) Option { return func(o *options) { o.tracer = t } }

// ParseTier parses a tier name as accepted by the CLI and the query service
// ("auto", "interpret"/"interpreted", "compiled", "generated").
func ParseTier(s string) (Tier, error) { return core.ParseTier(s) }

// Plan is a compiled, ready-to-run matching configuration for one
// (graph, pattern) pair.
type Plan struct {
	g    *Graph
	cfg  *core.Config
	prep time.Duration
	opts options
}

// NewPlan runs GraphPi's preprocessing — restriction generation, schedule
// generation and performance prediction — and returns the selected optimal
// configuration bound to the graph.
func NewPlan(g *Graph, p *Pattern, opts ...Option) (*Plan, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	var (
		res *core.PlanResult
		err error
	)
	t0 := time.Now()
	if o.baseline {
		res, err = core.PlanGraphZero(p.p, g.g.Stats())
	} else {
		res, err = core.Plan(p.p, g.g.Stats(), core.PlanOptions{MaxRestrictionSets: o.maxSets})
	}
	if err != nil {
		return nil, err
	}
	o.tracer.Span("plan", t0, map[string]string{"graph": g.Name(), "pattern": p.String()})
	return &Plan{g: g, cfg: res.Best, prep: res.PrepTime, opts: o}, nil
}

// Count enumerates the full loop nest and returns the number of embeddings.
func (pl *Plan) Count() int64 {
	pl.traceCompile(false)
	t0 := time.Now()
	n := pl.cfg.Count(pl.g.g, pl.runOptions())
	pl.opts.tracer.Span("run", t0, map[string]string{"mode": "count"})
	return n
}

// CountIEP counts with the Inclusion-Exclusion optimization. For counting
// workloads this is the method to use; it returns the same number as Count.
func (pl *Plan) CountIEP() int64 {
	pl.traceCompile(true)
	t0 := time.Now()
	n := pl.cfg.CountIEP(pl.g.g, pl.runOptions())
	pl.opts.tracer.Span("run", t0, map[string]string{"mode": "count-iep"})
	return n
}

// traceCompile surfaces the lowering phase as its own span when tracing: the
// compile memo lives on the configuration, so the first call does real work
// and later ones are lookups — visible as such in the span durations.
func (pl *Plan) traceCompile(useIEP bool) {
	if pl.opts.tracer == nil {
		return
	}
	t0 := time.Now()
	rt := pl.cfg.ResolveTier(pl.g.g, pl.opts.tier, useIEP)
	if rt != core.TierInterpret {
		if _, err := pl.cfg.CompileTier(pl.g.g, useIEP, rt); err != nil {
			rt = core.TierInterpret // the engine falls back the same way
		}
	}
	pl.opts.tracer.Span("compile", t0, map[string]string{"tier": rt.String()})
}

// NewRunStats allocates a telemetry sink sized for this plan's schedule, for
// use with WithRunStats (typically passed to NewPlan; a sink can also be
// installed on an existing plan's runs by re-planning). Reuse across runs
// with Reset.
func (pl *Plan) NewRunStats() *RunStats { return telemetry.NewRunStats(pl.cfg.N()) }

// Explain returns the cost model's per-level predictions for this plan
// without executing anything: a DriftReport whose actual counters are zero.
// ok is false when the plan carries no cost-model statistics (e.g. a
// baseline planner configuration built without them).
func (pl *Plan) Explain(useIEP bool) (*DriftReport, bool) {
	return pl.cfg.DriftReport(useIEP, nil)
}

// Drift reconciles collected run statistics against the plan's cost-model
// predictions: the per-level actual/predicted ratios that show where the
// model mispredicts on this graph. ok is false when the plan carries no
// cost-model statistics.
func (pl *Plan) Drift(useIEP bool, st *RunStats) (*DriftReport, bool) {
	return pl.cfg.DriftReport(useIEP, st)
}

// Enumerate calls visit for every embedding. The slice is indexed by
// pattern vertex and reused; copy it to retain. With multiple workers visit
// runs concurrently. Return false to stop early. Returns the number of
// embeddings visited.
func (pl *Plan) Enumerate(visit func(embedding []uint32) bool) int64 {
	return pl.cfg.Enumerate(pl.g.g, pl.runOptions(), visit)
}

// CountCtx is Count under a context: cancellation stops every worker at its
// next outer-loop boundary, freeing the goroutines long before the full
// search would end. The partial tally is returned with ctx's error; a nil
// error means the count ran to completion and is exact.
func (pl *Plan) CountCtx(ctx context.Context) (int64, error) {
	return pl.cfg.CountCtx(ctx, pl.g.g, pl.runOptions())
}

// CountIEPCtx is CountIEP under a context (see CountCtx).
func (pl *Plan) CountIEPCtx(ctx context.Context) (int64, error) {
	return pl.cfg.CountIEPCtx(ctx, pl.g.g, pl.runOptions())
}

// EnumerateCtx is Enumerate under a context: after cancellation no further
// visits happen and the workers are released. Returns the number of visits
// that did happen alongside ctx's error.
func (pl *Plan) EnumerateCtx(ctx context.Context, visit func(embedding []uint32) bool) (int64, error) {
	return pl.cfg.EnumerateCtx(ctx, pl.g.g, pl.runOptions(), visit)
}

// PrepTime returns the preprocessing (configuration generation plus
// performance prediction) duration — the paper's Table III quantity.
func (pl *Plan) PrepTime() time.Duration { return pl.prep }

// PredictedCost returns the performance model's cost estimate for the
// selected configuration (relative units).
func (pl *Plan) PredictedCost() float64 { return pl.cfg.Cost }

// ExecutionTier reports the tier a Count/CountIEP call on this plan will
// actually run on: TierAuto resolves to the fastest applicable kernel, and
// an unsatisfiable request (e.g. TierGenerated for a pattern with no static
// kernel) resolves to the interpreter — the same silent fallback the engine
// takes. useIEP must match the intended counting call; the compiled shapes
// differ.
func (pl *Plan) ExecutionTier(useIEP bool) Tier {
	return pl.cfg.ResolveTier(pl.g.g, pl.opts.tier, useIEP)
}

// Describe renders the chosen schedule and restriction set.
func (pl *Plan) Describe() string {
	return fmt.Sprintf("schedule %s, restrictions %s, predicted cost %.4g, IEP k=%d",
		pl.cfg.Schedule, pl.cfg.Restrictions, pl.cfg.Cost, pl.cfg.KIEP())
}

func (pl *Plan) runOptions() core.RunOptions {
	return core.RunOptions{
		Workers:      pl.opts.workers,
		ChunkSize:    pl.opts.chunkSize,
		EdgeParallel: pl.opts.edgePar,
		Tier:         pl.opts.tier,
		Stats:        pl.opts.stats,
		Aux:          pl.opts.aux,
		AuxBudget:    pl.opts.auxBudget,
	}
}

// GenerateSource emits the plan's configuration as a standalone Go program
// (the paper's code-generation stage, Figure 3): a self-contained main
// package that loads an edge-list graph from argv[1], runs the hard-coded
// loop nest with the plan's restrictions, and prints the embedding count.
func (pl *Plan) GenerateSource() (string, error) {
	return codegen.GenerateSource(pl.cfg.SourceSpec())
}

// Count is the one-shot convenience API: plan and count with IEP.
func Count(g *Graph, p *Pattern, opts ...Option) (int64, error) {
	pl, err := NewPlan(g, p, opts...)
	if err != nil {
		return 0, err
	}
	return pl.CountIEP(), nil
}

// EdgeParallelMode selects the cluster's task shape: Auto (the zero value)
// packs edge-slot tasks whenever the planned schedule is eligible and more
// than one worker runs in total, On forces them whenever eligible, Off
// always packs outer-loop vertex ranges.
type EdgeParallelMode int

const (
	EdgeParallelAuto EdgeParallelMode = iota
	EdgeParallelOn
	EdgeParallelOff
)

func (m EdgeParallelMode) core() core.EdgeParallelMode {
	switch m {
	case EdgeParallelOn:
		return core.EdgeParallelOn
	case EdgeParallelOff:
		return core.EdgeParallelOff
	default:
		return core.EdgeParallelAuto
	}
}

// ClusterOptions configures a distributed run (paper §IV-E).
type ClusterOptions struct {
	// Nodes is the number of compute nodes (MPI ranks). Ignored when the
	// run targets TCP workers (Workers below, or a Cluster handle): the
	// rank count is then the connected worker set.
	Nodes int
	// WorkersPerNode is the number of worker goroutines per node.
	WorkersPerNode int
	// UseIEP enables Inclusion-Exclusion counting.
	UseIEP bool
	// EdgeParallel selects the task shape. Leaving it Auto defers to
	// WithEdgeParallelRoots when that option is present, otherwise to the
	// automatic eligibility check.
	EdgeParallel EdgeParallelMode
	// StealThreshold is the queue length below which a node's
	// communication goroutine steals from peers (< 1 → 2).
	StealThreshold int
	// ChunkSize is the task granularity in outermost-loop vertices
	// (< 1 → adaptive; WithChunkSize applies when this is unset). Under
	// edge-parallel scheduling the value is scaled by the average degree.
	ChunkSize int
	// Workers lists TCP worker addresses (cluster.Serve / ServeCluster
	// listeners, or `graphpi -serve`). When non-empty, ClusterCount dials
	// them for the run instead of simulating nodes in-process; every
	// worker must hold a replica of the same graph (typically loaded from
	// a shared GPiCSR3 snapshot). For repeated counts against the same
	// workers, dial once with ConnectCluster instead.
	Workers []string
}

// ClusterResult reports a simulated distributed run.
type ClusterResult struct {
	Count   int64
	Elapsed time.Duration
	// Tasks is the total number of tasks the master created.
	Tasks int
	// EdgeParallel reports whether the run used edge-slot tasks.
	EdgeParallel bool
	// TasksPerNode is how many tasks each simulated node executed (load
	// balance evidence).
	TasksPerNode []int64
	// BusyPerNode is the wall time each node's workers spent executing
	// tasks; the spread across nodes measures load balance.
	BusyPerNode []time.Duration
	// Steals is the total number of cross-node task steals.
	Steals int64
}

// MaxBusyShare returns the largest per-node fraction of the total busy time
// (0 when none was recorded). Perfect balance is 1/Nodes.
func (r *ClusterResult) MaxBusyShare() float64 {
	return cluster.MaxBusyShare(r.BusyPerNode)
}

// EstimateCount approximates the embedding count with an ASAP-style
// Horvitz–Thompson sampler (unbiased; accuracy degrades for rare patterns —
// the trade-off the paper discusses in §II). samples controls the
// latency/accuracy balance; the result is deterministic for a fixed seed.
func EstimateCount(g *Graph, p *Pattern, samples int, seed uint64, opts ...Option) (float64, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return approx.Estimate(g.g, p.p, approx.Options{
		Samples: samples,
		Seed:    seed,
		Workers: o.workers,
	})
}

// VertexLabel is a data- or pattern-vertex label for labeled matching.
type VertexLabel = labeled.Label

// WildcardLabel matches any data-vertex label in a labeled pattern.
const WildcardLabel = labeled.Wildcard

// CountLabeled counts embeddings of a vertex-labeled pattern:
// patternLabels[i] constrains pattern vertex i (WildcardLabel = no
// constraint) and vertexLabels[v] is the label of data vertex v. See
// internal/labeled for the exactness argument.
func CountLabeled(g *Graph, vertexLabels []VertexLabel, p *Pattern, patternLabels []VertexLabel, opts ...Option) (int64, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	lp, err := labeled.NewPattern(p.p, patternLabels)
	if err != nil {
		return 0, err
	}
	return labeled.Count(g.g, vertexLabels, lp, core.RunOptions{
		Workers:   o.workers,
		ChunkSize: o.chunkSize,
	})
}

// ClusterCount plans and counts on a cluster with per-node task queues and
// cross-node work stealing. By default the nodes are simulated in-process;
// set ClusterOptions.Workers (or use a ConnectCluster handle) to run the
// same job across TCP worker processes. Plan options apply: WithChunkSize
// sets the task granularity (unless ClusterOptions.ChunkSize overrides it)
// and WithEdgeParallelRoots forces the task shape when
// ClusterOptions.EdgeParallel is left Auto.
func ClusterCount(g *Graph, p *Pattern, copt ClusterOptions, opts ...Option) (*ClusterResult, error) {
	if len(copt.Workers) > 0 {
		c, err := ConnectCluster(copt.Workers...)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		return c.Count(g, p, copt, opts...)
	}
	return clusterCount(nil, g, p, copt, opts...)
}

// clusterCount runs one job on the given transport (nil → the in-process
// channel simulation).
func clusterCount(tr cluster.Transport, g *Graph, p *Pattern, copt ClusterOptions, opts ...Option) (*ClusterResult, error) {
	pl, err := NewPlan(g, p, opts...)
	if err != nil {
		return nil, err
	}
	edgePar := copt.EdgeParallel.core()
	if copt.EdgeParallel == EdgeParallelAuto {
		edgePar = pl.opts.edgePar
	}
	chunk := copt.ChunkSize
	if chunk < 1 {
		chunk = pl.opts.chunkSize
	}
	t0 := time.Now()
	defer pl.opts.tracer.Span("cluster-deal", t0, map[string]string{"pattern": p.String()})
	res, err := cluster.Run(pl.cfg, g.g, cluster.Options{
		Nodes:          copt.Nodes,
		WorkersPerNode: copt.WorkersPerNode,
		UseIEP:         copt.UseIEP,
		EdgeParallel:   edgePar,
		StealThreshold: copt.StealThreshold,
		ChunkSize:      chunk,
		Transport:      tr,
	})
	if err != nil {
		return nil, err
	}
	out := &ClusterResult{
		Count:        res.Count,
		Elapsed:      res.Elapsed,
		Tasks:        res.Tasks,
		EdgeParallel: res.EdgeParallel,
	}
	for _, ns := range res.Nodes {
		out.TasksPerNode = append(out.TasksPerNode, ns.TasksRun)
		out.BusyPerNode = append(out.BusyPerNode, ns.BusyTime)
		out.Steals += ns.StealsReceived
	}
	return out, nil
}

// Cluster is a handle to a set of TCP-connected worker processes
// (cluster.Serve listeners). It can run many counting jobs; Close releases
// the connections. The handle is elastic: a worker lost mid-job has its
// unfinished tasks re-dealt to the survivors (counts stay exact), and lost
// workers are redialed — with capped exponential backoff — before each
// subsequent job, so a restarted worker rejoins without redialing the
// handle. A job errors only when every worker is lost at once.
type Cluster struct {
	tr cluster.Transport
	n  int
}

// ConnectCluster dials worker processes at addrs (see ServeCluster and
// `graphpi -serve`) and returns a handle running jobs across them, one
// rank per worker. Every worker must hold a replica of the data graph a job
// uses — typically loaded from a shared GPiCSR3 snapshot — and the graph's
// fingerprint is verified per job.
func ConnectCluster(addrs ...string) (*Cluster, error) {
	tr, err := cluster.DialTCP(addrs, cluster.DialOptions{})
	if err != nil {
		return nil, err
	}
	return &Cluster{tr: tr, n: len(addrs)}, nil
}

// Workers returns the number of connected worker processes.
func (c *Cluster) Workers() int { return c.n }

// Close disconnects from the workers.
func (c *Cluster) Close() error { return c.tr.Close() }

// Count plans and counts across the connected workers. ClusterOptions.Nodes
// and ClusterOptions.Workers are ignored — the rank set is this handle's
// worker set.
func (c *Cluster) Count(g *Graph, p *Pattern, copt ClusterOptions, opts ...Option) (*ClusterResult, error) {
	return clusterCount(c.tr, g, p, copt, opts...)
}

// ClusterServer is a running TCP worker process serving counting jobs
// against one graph replica (the facade over cluster.Serve).
type ClusterServer struct {
	ln   net.Listener
	done chan error
}

// ServeCluster starts a worker listening on addr (e.g. ":9421", or
// "127.0.0.1:0" for an ephemeral test port) that executes counting jobs
// against g. g may be nil: the worker then joins cold and fetches a
// fingerprint-verified snapshot of the data graph from the first master
// that connects, so a replacement worker needs no local graph file.
// workersPerJob overrides the per-job worker goroutine count requested by
// masters (0 → honor the master). The server runs on a background
// goroutine; use Addr to learn the bound address, Wait to block until
// shutdown, and Close to stop.
func ServeCluster(addr string, g *Graph, workersPerJob int) (*ClusterServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	var replica *graph.Graph
	if g != nil {
		replica = g.g
	}
	s := &ClusterServer{ln: ln, done: make(chan error, 1)}
	go func() {
		s.done <- cluster.Serve(ln, replica, cluster.ServeOptions{
			Workers: workersPerJob,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
	}()
	return s, nil
}

// Addr returns the listener's address ("host:port").
func (s *ClusterServer) Addr() string { return s.ln.Addr().String() }

// Wait blocks until the server stops (listener closed) and returns its
// terminal error, if any.
func (s *ClusterServer) Wait() error { return <-s.done }

// Close stops accepting masters. Jobs in flight fail their masters'
// connections.
func (s *ClusterServer) Close() error { return s.ln.Close() }

// QueryServiceOptions configures ServeQueries, the resident query server.
type QueryServiceOptions struct {
	// Graphs are the resident graphs, by name. Optimize them before
	// registering; they are treated as immutable once served.
	Graphs map[string]*Graph
	// MaxConcurrentJobs bounds simultaneously executing queries (0 → 2).
	MaxConcurrentJobs int
	// MaxQueuedJobs bounds queries waiting for a run slot; beyond it the
	// server answers 429 (0 → 64).
	MaxQueuedJobs int
	// TotalWorkers is the worker-goroutine budget local jobs share
	// (0 → GOMAXPROCS).
	TotalWorkers int
	// WorkersPerJob is the default per-job worker budget
	// (0 → TotalWorkers / MaxConcurrentJobs).
	WorkersPerJob int
	// PlanCacheBytes is the plan cache budget (0 → 8 MiB).
	PlanCacheBytes int64
	// ClusterWorkers lists TCP cluster worker addresses (ServeCluster /
	// `graphpi -serve` listeners). When set, counting queries dispatch to
	// the cluster by default; every worker must hold a replica of the
	// resident graph a query targets.
	ClusterWorkers []string
	// ClusterWorkersPerNode is the per-rank worker count for dispatched
	// jobs (0 → 2).
	ClusterWorkersPerNode int
	// ClusterJobRetries is how many times a failed cluster job is retried
	// before the client sees its error (0 → 2, negative → no retries).
	// Individual worker loss is recovered within an attempt by re-dealing;
	// retries cover losing the whole fleet at once.
	ClusterJobRetries int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the query
	// handler — an operator opt-in (the profiler exposes heap contents).
	EnablePprof bool
	// TraceWriter, if non-nil, receives NDJSON span events (plan, compile,
	// run, cluster-deal) for every query. The caller owns closing it after
	// the server stops.
	TraceWriter io.Writer
	// Logf, if non-nil, receives lifecycle messages.
	Logf func(format string, args ...any)
}

// QueryServer is a running query service (the facade over
// internal/service): an HTTP server with count/enumerate/jobs/metrics
// endpoints, a plan cache, admission control, and cancellable jobs. See the
// README's "Serving queries" quickstart for the endpoint reference.
type QueryServer struct {
	ln   net.Listener
	s    *service.Server
	http *http.Server
	done chan error
}

// ServeQueries starts a query service listening on addr (e.g. ":8080", or
// "127.0.0.1:0" for an ephemeral port). The server runs on a background
// goroutine; use Addr to learn the bound address, Wait to block until
// shutdown, and Close to stop.
func ServeQueries(addr string, opt QueryServiceOptions) (*QueryServer, error) {
	s := service.New(service.Options{
		MaxConcurrent:         opt.MaxConcurrentJobs,
		MaxQueue:              opt.MaxQueuedJobs,
		TotalWorkers:          opt.TotalWorkers,
		WorkersPerJob:         opt.WorkersPerJob,
		CacheBytes:            opt.PlanCacheBytes,
		ClusterAddrs:          opt.ClusterWorkers,
		ClusterWorkersPerNode: opt.ClusterWorkersPerNode,
		ClusterJobRetries:     opt.ClusterJobRetries,
		EnablePprof:           opt.EnablePprof,
		Tracer:                telemetry.NewTracer(opt.TraceWriter),
		Logf:                  opt.Logf,
	})
	for name, g := range opt.Graphs {
		if err := s.AddGraph(name, g.g); err != nil {
			s.Close()
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close()
		return nil, err
	}
	qs := &QueryServer{
		ln:   ln,
		s:    s,
		http: &http.Server{Handler: s.Handler()},
		done: make(chan error, 1),
	}
	go func() {
		err := qs.http.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) || errors.Is(err, net.ErrClosed) {
			err = nil
		}
		qs.done <- err
	}()
	return qs, nil
}

// Addr returns the listener's address ("host:port").
func (q *QueryServer) Addr() string { return q.ln.Addr().String() }

// Handler exposes the service's HTTP API for embedding into an existing
// mux or test server.
func (q *QueryServer) Handler() http.Handler { return q.s.Handler() }

// Wait blocks until the server stops and returns its terminal error.
func (q *QueryServer) Wait() error { return <-q.done }

// Close stops the listener, closes active connections — in-flight jobs
// observe their request contexts cancelling and release their workers —
// and releases backend resources.
func (q *QueryServer) Close() error {
	err := q.http.Close()
	q.s.Close()
	return err
}
