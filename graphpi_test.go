package graphpi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g := GenerateBA(500, 5, 42)
	p := House()
	plan, err := NewPlan(g, p, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	count := plan.Count()
	if count <= 0 {
		t.Fatalf("house count = %d, want > 0", count)
	}
	if got := plan.CountIEP(); got != count {
		t.Errorf("CountIEP = %d, want %d", got, count)
	}
	oneShot, err := Count(g, p, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if oneShot != count {
		t.Errorf("Count = %d, want %d", oneShot, count)
	}
	if plan.PrepTime() <= 0 || plan.Describe() == "" {
		t.Error("plan metadata missing")
	}
	if plan.PredictedCost() <= 0 {
		t.Error("predicted cost missing")
	}
}

func TestEnumerateFacade(t *testing.T) {
	g := GenerateGNM(60, 200, 7)
	p := Triangle()
	plan, err := NewPlan(g, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Count()
	var got int64
	n := plan.Enumerate(func(emb []uint32) bool {
		got++
		if len(emb) != 3 {
			t.Fatalf("embedding size %d", len(emb))
		}
		if !g.HasEdge(emb[0], emb[1]) || !g.HasEdge(emb[1], emb[2]) || !g.HasEdge(emb[0], emb[2]) {
			t.Fatalf("non-triangle %v", emb)
		}
		return true
	})
	if got != want || n != want {
		t.Errorf("enumerated %d (returned %d), want %d", got, n, want)
	}
}

func TestGraphIO(t *testing.T) {
	g := GenerateGNM(40, 120, 3)
	dir := t.TempDir()
	bin := filepath.Join(dir, "g.bin")
	if err := g.SaveBinary(bin); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGraph(bin)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVertices() != 40 || loaded.NumEdges() != 120 {
		t.Errorf("binary round trip: %d/%d", loaded.NumVertices(), loaded.NumEdges())
	}
	// Text edge list path.
	txt := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(txt, []byte("# c\n0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tg, err := LoadGraph(txt)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumEdges() != 3 || tg.Triangles() != 1 {
		t.Errorf("text load: %d edges %d triangles", tg.NumEdges(), tg.Triangles())
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
	rg, err := ReadGraph(strings.NewReader("0 1\n"))
	if err != nil || rg.NumEdges() != 1 {
		t.Errorf("ReadGraph: %v %v", rg, err)
	}
}

func TestDatasets(t *testing.T) {
	names := DatasetNames()
	if len(names) != 6 {
		t.Fatalf("datasets = %v", names)
	}
	g, err := LoadDataset("WikiVote-S", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 || g.StatsString() == "" {
		t.Error("dataset empty")
	}
	if _, err := LoadDataset("bogus", 1); err == nil {
		t.Error("bogus dataset accepted")
	}
}

func TestPatternConstructors(t *testing.T) {
	if _, err := NewPattern(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, "tri"); err != nil {
		t.Error(err)
	}
	if _, err := NewPattern(2, [][2]int{{0, 5}}, "bad"); err == nil {
		t.Error("bad pattern accepted")
	}
	p, err := PatternFromAdjacency(3, "011101110", "tri")
	if err != nil || p.NumEdges() != 3 {
		t.Errorf("adjacency parse: %v %v", p, err)
	}
	if Clique(5).NumEdges() != 10 {
		t.Error("K5 edges")
	}
	evals := EvaluationPatterns()
	if len(evals) != 6 {
		t.Fatalf("evaluation patterns = %d", len(evals))
	}
	for i, p := range evals {
		if p.Name() == "" || p.N() < 5 {
			t.Errorf("P%d malformed: %v", i+1, p)
		}
	}
	if got := len(Motifs(4)); got != 6 {
		t.Errorf("4-motifs = %d, want 6", got)
	}
}

func TestBaselineOptionAgrees(t *testing.T) {
	g := GenerateBA(200, 4, 9)
	p := House()
	full, err := Count(g, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewPlan(g, p, WithGraphZeroBaseline(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := base.Count(); got != full {
		t.Errorf("baseline count = %d, GraphPi = %d", got, full)
	}
}

func TestClusterCountFacade(t *testing.T) {
	g := GenerateBA(300, 4, 21)
	p := House()
	want, err := Count(g, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterCount(g, p, ClusterOptions{Nodes: 3, WorkersPerNode: 2, UseIEP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("cluster count = %d, want %d", res.Count, want)
	}
	if len(res.TasksPerNode) != 3 {
		t.Errorf("TasksPerNode = %v", res.TasksPerNode)
	}
	if len(res.BusyPerNode) != 3 {
		t.Errorf("BusyPerNode = %v", res.BusyPerNode)
	}
	if res.Tasks <= 0 {
		t.Errorf("Tasks = %d, want > 0", res.Tasks)
	}
}

// TestClusterCountHybridEquivalence pins the facade's distributed counts to
// the single-node engine across {plain, IEP} x {1, N} nodes x {vertex, edge}
// task shapes on both the original and Optimize()d graph for the named
// pattern suite — including the plan options (WithEdgeParallelRoots,
// WithChunkSize) the facade now threads through to the cluster runtime.
func TestClusterCountHybridEquivalence(t *testing.T) {
	g := GenerateBA(250, 5, 17)
	og := g.Optimize(1 << 22)
	suite := []*Pattern{Triangle(), Rectangle(), House(), Cycle6Tri()}
	for _, p := range suite {
		want, err := Count(g, p, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		for gi, dg := range []*Graph{g, og} {
			for _, useIEP := range []bool{false, true} {
				for _, nodes := range []int{1, 3} {
					for _, mode := range []EdgeParallelMode{EdgeParallelOff, EdgeParallelOn} {
						res, err := ClusterCount(dg, p, ClusterOptions{
							Nodes:          nodes,
							WorkersPerNode: 2,
							UseIEP:         useIEP,
							EdgeParallel:   mode,
							StealThreshold: 1,
						}, WithChunkSize(8))
						if err != nil {
							t.Fatal(err)
						}
						if res.Count != want {
							t.Errorf("%s optimized=%v iep=%v nodes=%d mode=%d: count = %d, want %d",
								p.Name(), gi == 1, useIEP, nodes, mode, res.Count, want)
						}
						if mode == EdgeParallelOff && res.EdgeParallel {
							t.Errorf("%s: EdgeParallelOff ran slot tasks", p.Name())
						}
					}
				}
			}
		}
	}
}

// TestClusterCountEdgeParallelOption checks that WithEdgeParallelRoots is no
// longer silently ignored by the facade: forcing it off must yield vertex
// tasks even when the schedule is eligible.
func TestClusterCountEdgeParallelOption(t *testing.T) {
	g := GenerateBA(300, 4, 9)
	p := Triangle()
	off, err := ClusterCount(g, p, ClusterOptions{Nodes: 2, WorkersPerNode: 2},
		WithEdgeParallelRoots(false))
	if err != nil {
		t.Fatal(err)
	}
	if off.EdgeParallel {
		t.Error("WithEdgeParallelRoots(false) ignored by ClusterCount")
	}
	on, err := ClusterCount(g, p, ClusterOptions{Nodes: 2, WorkersPerNode: 2},
		WithEdgeParallelRoots(true))
	if err != nil {
		t.Fatal(err)
	}
	if !on.EdgeParallel {
		t.Error("WithEdgeParallelRoots(true) ignored by ClusterCount")
	}
	if on.Count != off.Count {
		t.Errorf("edge %d != vertex %d", on.Count, off.Count)
	}
}

// TestOptimizedSnapshotRoundTrip pins the headline snapshot fix: an
// Optimize()d graph survives SaveBinary→LoadGraph with Enumerate still
// reporting original vertex ids (pre-fix, the reorder map was silently
// dropped and internal ids leaked out).
func TestOptimizedSnapshotRoundTrip(t *testing.T) {
	g := GenerateBA(300, 5, 33)
	og := g.Optimize(0)
	path := filepath.Join(t.TempDir(), "opt.bin")
	if err := og.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.IsOptimized() {
		t.Fatal("loaded snapshot lost the hybrid view")
	}
	p := Triangle()
	ref, err := NewPlan(g, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	// The two plans pick restriction orientations over different internal id
	// orders, so the same triangle can surface as different automorphic
	// representatives; compare as vertex sets.
	key := func(emb []uint32) [3]uint32 {
		k := [3]uint32{emb[0], emb[1], emb[2]}
		sort.Slice(k[:], func(i, j int) bool { return k[i] < k[j] })
		return k
	}
	want := map[[3]uint32]bool{}
	ref.Enumerate(func(emb []uint32) bool {
		want[key(emb)] = true
		return true
	})
	pl, err := NewPlan(loaded, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	pl.Enumerate(func(emb []uint32) bool {
		n++
		if !want[key(emb)] {
			t.Fatalf("embedding %v not in original-id reference set", emb)
		}
		return true
	})
	if int(n) != len(want) {
		t.Errorf("enumerated %d embeddings, want %d", n, len(want))
	}
}

func TestRMATGenerator(t *testing.T) {
	g := GenerateRMAT(10, 3000, 5)
	if g.NumVertices() != 1024 {
		t.Errorf("RMAT vertices = %d", g.NumVertices())
	}
	if g.Degree(0) < 0 || len(g.Neighbors(0)) != g.Degree(0) {
		t.Error("accessor mismatch")
	}
}

func TestEstimateCountFacade(t *testing.T) {
	g := GenerateBA(800, 6, 5)
	p := Triangle()
	exact, err := Count(g, p, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCount(g, p, 200000, 11, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	rel := (est - float64(exact)) / float64(exact)
	if rel < -0.25 || rel > 0.25 {
		t.Errorf("estimate %.0f vs exact %d (rel %.2f)", est, exact, rel)
	}
	if _, err := EstimateCount(g, p, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestCountLabeledFacade(t *testing.T) {
	g, err := NewGraph(4, [][2]uint32{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// K4 labeled [0,0,1,1]: triangles with labels {0,0,1}: two of them.
	got, err := CountLabeled(g, []VertexLabel{0, 0, 1, 1}, Triangle(),
		[]VertexLabel{0, 0, 1}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("labeled count = %d, want 2", got)
	}
	wild, err := CountLabeled(g, []VertexLabel{0, 0, 1, 1}, Triangle(),
		[]VertexLabel{WildcardLabel, WildcardLabel, WildcardLabel})
	if err != nil || wild != 4 {
		t.Errorf("wildcard count = %d (%v), want 4", wild, err)
	}
	if _, err := CountLabeled(g, []VertexLabel{0}, Triangle(), []VertexLabel{0, 0, 0}); err == nil {
		t.Error("short label vector accepted")
	}
}

func TestGenerateSourceFacade(t *testing.T) {
	g := GenerateGNM(50, 150, 1)
	plan, err := NewPlan(g, Triangle())
	if err != nil {
		t.Fatal(err)
	}
	src, err := plan.GenerateSource()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "package main") || !strings.Contains(src, "countEmbeddings") {
		t.Error("generated source malformed")
	}
}

func TestNewGraphFacade(t *testing.T) {
	g, err := NewGraph(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Count(g, Rectangle(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Errorf("rectangle count in C4 = %d, want 1", c)
	}
	if got, _ := Count(g, Pentagon(), WithWorkers(1)); got != 0 {
		t.Errorf("pentagon in C4 = %d", got)
	}
	if got, _ := Count(g, Cycle6Tri(), WithWorkers(1)); got != 0 {
		t.Errorf("cycle6tri in C4 = %d", got)
	}
}

func TestOptimizeFacade(t *testing.T) {
	g := GenerateBA(800, 5, 9)
	og := g.Optimize(0)
	if !og.IsOptimized() || g.IsOptimized() {
		t.Fatalf("IsOptimized flags wrong: og=%v g=%v", og.IsOptimized(), g.IsOptimized())
	}
	if og.NumVertices() != g.NumVertices() || og.NumEdges() != g.NumEdges() {
		t.Fatal("Optimize changed graph size")
	}
	p := House()
	want, err := Count(g, p, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{
		{WithWorkers(2)},
		{WithWorkers(2), WithEdgeParallelRoots(true)},
		{WithWorkers(1), WithEdgeParallelRoots(false)},
	} {
		got, err := Count(og, p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("optimized count = %d, want %d", got, want)
		}
	}
	// Enumerate on the optimized view must report original vertex ids:
	// every reported embedding must be an embedding of the ORIGINAL graph.
	plan, err := NewPlan(og, Triangle(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	n := plan.Enumerate(func(emb []uint32) bool {
		if !g.HasEdge(emb[0], emb[1]) || !g.HasEdge(emb[1], emb[2]) || !g.HasEdge(emb[0], emb[2]) {
			t.Fatalf("embedding %v is not a triangle in original ids", emb)
		}
		return true
	})
	if n <= 0 {
		t.Fatal("no triangles enumerated")
	}
}

// TestTCPClusterFacade exercises the full distributed facade: ServeCluster
// workers, a ConnectCluster handle running several jobs, the one-shot
// ClusterOptions.Workers path, and the graph-mismatch guard.
func TestTCPClusterFacade(t *testing.T) {
	g := GenerateBA(400, 5, 31)
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, err := ServeCluster("127.0.0.1:0", g, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}

	p := House()
	want, err := ClusterCount(g, p, ClusterOptions{Nodes: 2, WorkersPerNode: 2, UseIEP: true})
	if err != nil {
		t.Fatal(err)
	}

	c, err := ConnectCluster(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", c.Workers())
	}
	for _, pat := range []*Pattern{Triangle(), p} {
		res, err := c.Count(g, pat, ClusterOptions{WorkersPerNode: 2, UseIEP: true})
		if err != nil {
			t.Fatal(err)
		}
		single, err := Count(g, pat)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != single {
			t.Errorf("%s: TCP count = %d, want %d", pat.Name(), res.Count, single)
		}
		if len(res.TasksPerNode) != 2 {
			t.Errorf("%s: %d ranks, want 2", pat.Name(), len(res.TasksPerNode))
		}
	}

	// One-shot path: ClusterOptions.Workers dials, counts, disconnects.
	res, err := ClusterCount(g, p, ClusterOptions{WorkersPerNode: 2, UseIEP: true, Workers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want.Count {
		t.Errorf("one-shot TCP count = %d, want %d", res.Count, want.Count)
	}

	// A different graph must be rejected by the fingerprint check.
	other := GenerateBA(401, 5, 31)
	if _, err := c.Count(other, p, ClusterOptions{}); err == nil {
		t.Error("mismatched graph accepted by TCP workers")
	}
}

// TestOptimizeHubsFacade covers the hub degree-floor plumbing: an explicit
// floor changes hub admission while counts stay exact.
func TestOptimizeHubsFacade(t *testing.T) {
	g := GenerateBA(800, 5, 9)
	if og := g.OptimizeHubs(0, 0); !og.IsOptimized() {
		t.Fatal("OptimizeHubs(0,0) should behave like Optimize(0)")
	}
	low := g.OptimizeHubs(0, 1)
	high := g.OptimizeHubs(0, 1<<20)
	p := House()
	want, err := Count(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for name, og := range map[string]*Graph{"floor1": low, "floorHuge": high} {
		got, err := Count(og, p, WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: count = %d, want %d", name, got, want)
		}
	}
}

// TestPlanConcurrentUse: one Plan shared by many goroutines running Count,
// CountIEP and Enumerate simultaneously must stay correct — the compiled
// configuration is read-only at execution time and all mutable state is
// per-run. (The query service relies on exactly this: one cached plan
// serves every concurrent job.) Run under -race.
func TestPlanConcurrentUse(t *testing.T) {
	g := GenerateBA(400, 5, 13)
	plan, err := NewPlan(g, House(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := plan.CountIEP()

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				if got := plan.Count(); got != want {
					errs <- fmt.Errorf("goroutine %d: Count = %d, want %d", i, got, want)
				}
			case 1:
				if got := plan.CountIEP(); got != want {
					errs <- fmt.Errorf("goroutine %d: CountIEP = %d, want %d", i, got, want)
				}
			default:
				var n atomic.Int64
				if got := plan.Enumerate(func([]uint32) bool { n.Add(1); return true }); got != want || n.Load() != want {
					errs <- fmt.Errorf("goroutine %d: Enumerate = %d visits %d, want %d", i, got, n.Load(), want)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPlanCtxFacade covers the facade's context methods: complete runs
// agree with the plain methods; a pre-cancelled context returns promptly
// with the context error.
func TestPlanCtxFacade(t *testing.T) {
	g := GenerateBA(300, 4, 21)
	plan, err := NewPlan(g, Pentagon(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := plan.CountIEP()
	if got, err := plan.CountIEPCtx(context.Background()); err != nil || got != want {
		t.Fatalf("CountIEPCtx = %d, %v; want %d, nil", got, err, want)
	}
	if got, err := plan.CountCtx(context.Background()); err != nil || got != want {
		t.Fatalf("CountCtx = %d, %v; want %d, nil", got, err, want)
	}
	var visits atomic.Int64
	if got, err := plan.EnumerateCtx(context.Background(), func([]uint32) bool { visits.Add(1); return true }); err != nil || got != want {
		t.Fatalf("EnumerateCtx = %d, %v; want %d, nil", got, err, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got, err := plan.CountCtx(ctx); err != context.Canceled || got != 0 {
		t.Fatalf("pre-cancelled CountCtx = %d, %v", got, err)
	}
}

// TestQueryServiceFacade drives ServeQueries end to end: a resident graph
// served over a real socket, a cold and a cached count, and a named-pattern
// parse — the README quickstart, as a test.
func TestQueryServiceFacade(t *testing.T) {
	g := GenerateBA(400, 5, 17).Optimize(1 << 20)
	srv, err := ServeQueries("127.0.0.1:0", QueryServiceOptions{
		Graphs: map[string]*Graph{"ba": g},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	want, err := Count(g, House())
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Count int64  `json:"count"`
		Cache string `json:"cache"`
	}
	for i, wantCache := range []string{"miss", "hit"} {
		resp, err := http.Get("http://" + srv.Addr() + "/count?graph=ba&pattern=house")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if res.Count != want || res.Cache != wantCache {
			t.Fatalf("query %d: count %d cache %q, want %d %q", i, res.Count, res.Cache, want, wantCache)
		}
	}
}

// TestNamedPatternFacade pins the shared pattern-name resolution.
func TestNamedPatternFacade(t *testing.T) {
	for name, wantN := range map[string]int{
		"house": 5, "HOUSE": 5, "p3": 6, "k4": 4, "cycle6tri": 6, "k12": 12,
	} {
		p, err := NamedPattern(name)
		if err != nil {
			t.Errorf("NamedPattern(%q): %v", name, err)
			continue
		}
		if p.N() != wantN {
			t.Errorf("NamedPattern(%q).N() = %d, want %d", name, p.N(), wantN)
		}
	}
	for _, bad := range []string{"zigzag", "k2", "k13", "p7", ""} {
		if _, err := NamedPattern(bad); err == nil {
			t.Errorf("NamedPattern(%q) accepted", bad)
		}
	}
	p, err := ParsePattern("3:011101110")
	if err != nil || p.N() != 3 || p.NumEdges() != 3 {
		t.Fatalf("ParsePattern adjacency = %v, %v", p, err)
	}
}
