module graphpi

go 1.24
