package graphpi

// This file wires every table and figure of the paper's evaluation into
// `go test -bench`. Each benchmark regenerates one artifact via
// internal/experiments at a reduced dataset scale with a per-cell budget
// (cells that exceed it report "T", like the paper's 48-hour cutoff), and
// reports the artifact's headline relative metric with b.ReportMetric.
// Run a single artifact with e.g.:
//
//	go test -bench Fig8 -benchtime 1x -v
//
// Absolute ns/op numbers measure this machine, not Tianhe-2A; the reported
// custom metrics (speedup factors, oracle ratios) are the reproduction
// targets. cmd/experiments runs the same drivers at full scale.

import (
	"bytes"
	"testing"
	"time"

	"graphpi/internal/experiments"
)

// benchOpts keeps every artifact regeneration in the minutes range.
func benchOpts() experiments.Options {
	return experiments.Options{
		Scale:        0.03,
		Workers:      0, // GOMAXPROCS
		CellBudget:   time.Second,
		MaxSchedules: 8,
	}
}

func logReport(b *testing.B, r experiments.Writeable) {
	b.Helper()
	var buf bytes.Buffer
	r.Report(&buf)
	b.Log("\n" + buf.String())
}

// BenchmarkTable1DatasetStats regenerates Table I (dataset statistics).
func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logReport(b, res)
		}
	}
}

// BenchmarkFig2bScheduleRestrictionCombos regenerates Figure 2(b): the
// motivating spread between schedule × restriction combinations for the
// House pattern. Metric worst/best is the paper's "up to 23.2x".
func BenchmarkFig2bScheduleRestrictionCombos(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.BestOverWorst
		if i == 0 {
			logReport(b, res)
		}
	}
	b.ReportMetric(ratio, "worst/best")
}

// BenchmarkFig8OverallComparison regenerates Figure 8: GraphPi vs the
// reproduced GraphZero vs the Fractal-style baseline across 6 patterns × 5
// graphs. Metrics are geometric-mean speedups (paper: up to 105x over
// GraphZero, up to 154x over Fractal on single cells).
func BenchmarkFig8OverallComparison(b *testing.B) {
	var gz, fr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		gz, fr = res.GeoSpeedupGZ, res.GeoSpeedupFractal
		if i == 0 {
			logReport(b, res)
		}
	}
	b.ReportMetric(gz, "xGraphZero")
	b.ReportMetric(fr, "xFractal")
}

// BenchmarkTable2RestrictionSets regenerates Table II: the speedup from
// GraphPi's model-chosen restriction set over GraphZero's single set on the
// same schedule (paper: avg up to 2.46x, max 7.82x).
func BenchmarkTable2RestrictionSets(b *testing.B) {
	var maxSp float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.MaxSpeedup > maxSp {
				maxSp = row.MaxSpeedup
			}
		}
		if i == 0 {
			logReport(b, res)
		}
	}
	b.ReportMetric(maxSp, "maxSpeedup")
}

// BenchmarkFig9ScheduleSpace regenerates Figure 9: the schedule space of P3
// with eliminated/generated marking and both systems' picks. Metric is
// GraphPi's pick relative to the measured oracle (paper: 1.22x).
func BenchmarkFig9ScheduleSpace(b *testing.B) {
	opt := benchOpts()
	opt.CellBudget = 5 * time.Second
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Oracle.Seconds > 0 {
			ratio = res.GraphPiPick.Seconds / res.Oracle.Seconds
		}
		if i == 0 {
			logReport(b, res)
		}
	}
	b.ReportMetric(ratio, "pick/oracle")
}

// BenchmarkFig10IEP regenerates Figure 10: counting with vs without the
// Inclusion-Exclusion Principle (paper: 4.3x–457.8x by pattern, peak
// 1110.5x).
func BenchmarkFig10IEP(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Cells {
			if !c.NoIEP.TimedOut && !c.WithIEP.TimedOut && c.WithIEP.Seconds > 0 {
				if sp := c.NoIEP.Seconds / c.WithIEP.Seconds; sp > best {
					best = sp
				}
			}
		}
		if i == 0 {
			logReport(b, res)
		}
	}
	b.ReportMetric(best, "maxIEPspeedup")
}

// BenchmarkFig11ModelAccuracy regenerates Figure 11: the model-selected
// schedule vs the measured oracle per pattern (paper: geomean 1.32x).
func BenchmarkFig11ModelAccuracy(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		slowdown = res.AvgSlowdown
		if i == 0 {
			logReport(b, res)
		}
	}
	b.ReportMetric(slowdown, "selected/oracle")
}

// BenchmarkFig12Scalability regenerates Figure 12: speedup curves of the
// simulated distributed runtime on Orkut-S (all patterns) and Twitter-S
// (P2, P3). The metric is the best speedup observed at the largest node
// count.
func BenchmarkFig12Scalability(b *testing.B) {
	nodes := []int{1, 2, 4}
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(benchOpts(), nodes)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range res.Points {
			if pt.Nodes == nodes[len(nodes)-1] && pt.Speedup > best {
				best = pt.Speedup
			}
		}
		if i == 0 {
			logReport(b, res)
		}
	}
	b.ReportMetric(best, "speedup@4nodes")
}

// BenchmarkTable3Preprocessing regenerates Table III: per-pattern
// preprocessing and configuration-generation overhead (paper: 8ms–2.53s).
func BenchmarkTable3Preprocessing(b *testing.B) {
	var worst time.Duration
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Overhead > worst {
				worst = row.Overhead
			}
		}
		if i == 0 {
			logReport(b, res)
		}
	}
	b.ReportMetric(worst.Seconds(), "maxPrepSec")
}
