// Package approx implements an ASAP-style approximate pattern counter
// (Iyer et al., OSDI'18), the approximate-matching system GraphPi's related
// work discusses (§II, §VI). It exists as a comparison substrate: the paper
// argues that sampling estimators trade accuracy for latency and "fail to
// generate relatively accurate estimation … if there are very few
// embeddings in the graph" — a behavior the tests reproduce.
//
// The estimator is a Horvitz–Thompson sampler over the same nested-loop
// structure GraphPi executes exactly. One sample draws the first vertex
// uniformly from V, then each subsequent vertex uniformly from its
// candidate set (the intersection of the neighborhoods of its already-bound
// pattern neighbors, restricted by the symmetry-breaking windows). The
// product of the candidate-set sizes is the inverse of the sample's
// selection probability, so
//
//	E[ Π|candidates| · 1{sample completes} ] = #embeddings
//
// making the estimator unbiased for any schedule and complete restriction
// set. Variance depends on the workload: dense patterns on skewed graphs
// need many samples.
package approx

import (
	"fmt"
	"math/rand/v2"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
	"graphpi/internal/taskpool"
	"graphpi/internal/vertexset"
)

// Options configures the estimator.
type Options struct {
	// Samples is the number of independent samples (≥ 1).
	Samples int
	// Seed makes the estimate deterministic.
	Seed uint64
	// Workers parallelizes sampling (< 1 → GOMAXPROCS).
	Workers int
}

// Estimate approximates the number of embeddings of pat in g. The schedule
// and restriction set are chosen like GraphPi's planner would (first
// efficient schedule, first complete restriction set) — the estimator is
// unbiased under any complete configuration.
func Estimate(g *graph.Graph, pat *pattern.Pattern, opt Options) (float64, error) {
	if opt.Samples < 1 {
		return 0, fmt.Errorf("approx: need at least one sample")
	}
	if !pat.Connected() {
		return 0, fmt.Errorf("approx: pattern %s is disconnected", pat)
	}
	sets, err := restrict.Generate(pat, restrict.Options{MaxSets: 1})
	if err != nil {
		return 0, err
	}
	sres := schedule.Generate(pat, schedule.Options{})
	if len(sres.Efficient) == 0 {
		return 0, fmt.Errorf("approx: no efficient schedule for %s", pat)
	}
	s := sres.Efficient[0]
	sampler, err := newSampler(g, pat, s, sets[0])
	if err != nil {
		return 0, err
	}
	workers := taskpool.Workers(opt.Workers)
	sums := make([]float64, workers)
	taskpool.Run(workers, opt.Samples, 256, func(w int, rg taskpool.Range) {
		// Derive an independent deterministic stream per chunk.
		rng := rand.New(rand.NewPCG(opt.Seed, uint64(rg.Start)+0x9e37))
		st := sampler.newState()
		for i := rg.Start; i < rg.End; i++ {
			sums[w] += sampler.sample(rng, st)
		}
	})
	var total float64
	for _, v := range sums {
		total += v
	}
	return total / float64(opt.Samples), nil
}

// sampler holds the compiled loop structure shared by all samples.
type sampler struct {
	g      *graph.Graph
	n      int
	plan   schedule.Plan
	lowers [][]uint8
	uppers [][]uint8
}

// state is per-goroutine scratch.
type state struct {
	bound []uint32
	bufs  [][]uint32
	cand  [][]uint32
}

func newSampler(g *graph.Graph, pat *pattern.Pattern, s schedule.Schedule, rs restrict.Set) (*sampler, error) {
	n := pat.N()
	rel := schedule.RelabeledPattern(pat, s)
	sm := &sampler{
		g:      g,
		n:      n,
		plan:   schedule.BuildPlan(rel, n),
		lowers: make([][]uint8, n),
		uppers: make([][]uint8, n),
	}
	pos := make([]uint8, n)
	for depth, v := range s.Order {
		pos[v] = uint8(depth)
	}
	for _, r := range rs {
		pf, ps := pos[r.First], pos[r.Second]
		if pf > ps {
			sm.lowers[pf] = append(sm.lowers[pf], ps)
		} else {
			sm.uppers[ps] = append(sm.uppers[ps], pf)
		}
	}
	return sm, nil
}

func (sm *sampler) newState() *state {
	maxDeg := sm.g.MaxDegree()
	st := &state{
		bound: make([]uint32, sm.n),
		bufs:  make([][]uint32, sm.plan.NumBufs),
		cand:  make([][]uint32, sm.n),
	}
	for i := range st.bufs {
		st.bufs[i] = make([]uint32, 0, maxDeg)
	}
	return st
}

// sample draws one embedding attempt and returns its Horvitz–Thompson
// weight (0 if the attempt died on an empty candidate set or a duplicate
// vertex).
func (sm *sampler) sample(rng *rand.Rand, st *state) float64 {
	g := sm.g
	nv := g.NumVertices()
	if nv == 0 {
		return 0
	}
	weight := float64(nv)
	st.bound[0] = uint32(rng.IntN(nv))
	sm.runSteps(0, st)
	for depth := 1; depth < sm.n; depth++ {
		cands := sm.candidates(depth, st)
		// Restriction windows.
		var lo uint32
		hasLo := false
		for _, p := range sm.lowers[depth] {
			if b := st.bound[p]; !hasLo || b > lo {
				lo, hasLo = b, true
			}
		}
		for _, p := range sm.uppers[depth] {
			cands = vertexset.Below(cands, st.bound[p])
		}
		if hasLo {
			cands = vertexset.Above(cands, lo)
		}
		if len(cands) == 0 {
			return 0
		}
		pick := cands[rng.IntN(len(cands))]
		// Injectivity: a duplicate kills the sample (its weight already
		// accounts for the candidates that would have survived).
		for _, b := range st.bound[:depth] {
			if b == pick {
				return 0
			}
		}
		st.bound[depth] = pick
		weight *= float64(len(cands))
		sm.runSteps(depth, st)
	}
	return weight
}

func (sm *sampler) candidates(depth int, st *state) []uint32 {
	c := sm.plan.Cand[depth]
	switch c.Kind {
	case schedule.CandNeighborhood:
		return sm.g.Neighbors(st.bound[c.Parent])
	case schedule.CandBuffer:
		return st.bufs[c.Buf]
	default:
		// Phase-1 schedules never produce a full scan past depth 0.
		return nil
	}
}

func (sm *sampler) runSteps(depth int, st *state) {
	for _, step := range sm.plan.Steps[depth] {
		var left []uint32
		if step.LeftBuf >= 0 {
			left = st.bufs[step.LeftBuf]
		} else {
			left = sm.g.Neighbors(st.bound[step.LeftParent])
		}
		right := sm.g.Neighbors(st.bound[step.Depth])
		st.bufs[step.Out] = vertexset.Intersect(st.bufs[step.Out][:0], left, right)
	}
}
