package approx

import (
	"math"
	"testing"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

func exactCount(t *testing.T, g *graph.Graph, p *pattern.Pattern) int64 {
	t.Helper()
	res, err := core.Plan(p, g.Stats(), core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best.Count(g, core.RunOptions{})
}

func TestEstimateConvergesOnCommonPatterns(t *testing.T) {
	g := graph.BarabasiAlbert(2000, 8, 11)
	for _, p := range []*pattern.Pattern{pattern.Triangle(), pattern.House()} {
		want := float64(exactCount(t, g, p))
		got, err := Estimate(g, p, Options{Samples: 400000, Seed: 7, Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		rel := math.Abs(got-want) / want
		if rel > 0.2 {
			t.Errorf("%s: estimate %.0f vs exact %.0f (rel err %.1f%%)", p, got, want, 100*rel)
		}
	}
}

func TestEstimateDeterministic(t *testing.T) {
	g := graph.BarabasiAlbert(500, 5, 3)
	p := pattern.Triangle()
	a, err := Estimate(g, p, Options{Samples: 20000, Seed: 42, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(g, p, Options{Samples: 20000, Seed: 42, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave %v and %v", a, b)
	}
}

func TestEstimateFailsOnRarePatterns(t *testing.T) {
	// The paper's critique of sampling systems (§I): "ASAP fails to
	// generate relatively accurate estimation by sampling if there are
	// very few embeddings in the graph." Build a graph with exactly one
	// pentagon hidden in a large triangle-free bipartite-ish mass and
	// watch a sampling budget that was fine above miss it entirely.
	b := graph.NewBuilder(0, 4000)
	// One pentagon among vertices 0..4.
	for i := 0; i < 5; i++ {
		b.AddEdge(uint32(i), uint32((i+1)%5))
	}
	// A big star forest: no pentagons.
	base := uint32(5)
	for hub := 0; hub < 20; hub++ {
		h := base + uint32(hub)*100
		for leaf := 1; leaf < 100; leaf++ {
			b.AddEdge(h, h+uint32(leaf))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.Pentagon()
	if got := exactCount(t, g, p); got != 1 {
		t.Fatalf("fixture should contain exactly 1 pentagon, has %d", got)
	}
	est, err := Estimate(g, p, Options{Samples: 20000, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// With ~2k vertices and one embedding, 20k samples almost surely see
	// nothing (estimate 0) or, if one sample lands, a wild overestimate.
	rel := math.Abs(est - 1)
	if rel < 0.5 {
		t.Skipf("sampler got lucky (estimate %v); the failure mode is probabilistic", est)
	}
}

func TestEstimateValidation(t *testing.T) {
	g := graph.Complete(5)
	if _, err := Estimate(g, pattern.Triangle(), Options{Samples: 0}); err == nil {
		t.Error("zero samples accepted")
	}
	disc := pattern.MustNew(4, [][2]int{{0, 1}, {2, 3}}, "disc")
	if _, err := Estimate(g, disc, Options{Samples: 10}); err == nil {
		t.Error("disconnected pattern accepted")
	}
	empty, _ := graph.FromEdges(0, nil)
	got, err := Estimate(empty, pattern.Triangle(), Options{Samples: 10, Seed: 1})
	if err != nil || got != 0 {
		t.Errorf("empty graph: %v %v", got, err)
	}
}

func TestEstimateUnbiasedOnCompleteGraph(t *testing.T) {
	// On K_n the candidate structure is uniform, so even modest samples
	// give tight estimates: K12 has C(12,3) = 220 triangles.
	g := graph.Complete(12)
	got, err := Estimate(g, pattern.Triangle(), Options{Samples: 200000, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-220)/220 > 0.1 {
		t.Errorf("K12 triangles ≈ %v, want ~220", got)
	}
}
