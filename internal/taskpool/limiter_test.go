package taskpool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterBasicAcquireRelease(t *testing.T) {
	l := NewLimiter(4)
	got, err := l.Acquire(context.Background(), 3)
	if err != nil || got != 3 {
		t.Fatalf("Acquire(3) = %d, %v", got, err)
	}
	if l.InUse() != 3 {
		t.Fatalf("InUse = %d, want 3", l.InUse())
	}
	l.Release(3)
	if l.InUse() != 0 {
		t.Fatalf("InUse after release = %d, want 0", l.InUse())
	}
}

func TestLimiterClampsWideRequests(t *testing.T) {
	l := NewLimiter(2)
	got, err := l.Acquire(context.Background(), 100)
	if err != nil || got != 2 {
		t.Fatalf("Acquire(100) on cap 2 = %d, %v; want 2 granted", got, err)
	}
	l.Release(got)
	got, err = l.Acquire(context.Background(), 0)
	if err != nil || got != 1 {
		t.Fatalf("Acquire(0) = %d, %v; want clamped to 1", got, err)
	}
	l.Release(got)
}

func TestLimiterBlocksAndFIFO(t *testing.T) {
	l := NewLimiter(2)
	if _, err := l.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Stagger arrivals so the waiter line has a deterministic order.
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			n, err := l.Acquire(context.Background(), 2)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			l.Release(n)
		}(i)
	}
	close(start)
	time.Sleep(80 * time.Millisecond) // all three queued behind the holder
	if w := l.Waiting(); w != 3 {
		t.Fatalf("Waiting = %d, want 3", w)
	}
	l.Release(2)
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order %v, want FIFO [0 1 2]", order)
		}
	}
}

func TestLimiterAcquireCancel(t *testing.T) {
	l := NewLimiter(1)
	if _, err := l.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx, 1)
		errc <- err
	}()
	for l.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Acquire = %v, want context.Canceled", err)
	}
	if l.Waiting() != 0 {
		t.Fatalf("cancelled waiter still queued")
	}
	// The held slot must still be releasable and re-acquirable.
	l.Release(1)
	if got, err := l.Acquire(context.Background(), 1); err != nil || got != 1 {
		t.Fatalf("re-acquire after cancel = %d, %v", got, err)
	}
}

func TestLimiterConcurrentNeverOversubscribes(t *testing.T) {
	const capacity = 3
	l := NewLimiter(capacity)
	var peak, cur atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := l.Acquire(context.Background(), 1+i%capacity)
			if err != nil {
				t.Error(err)
				return
			}
			now := cur.Add(int64(n))
			for {
				p := peak.Load()
				if now <= p || peak.CompareAndSwap(p, now) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(int64(-n))
			l.Release(n)
		}(i)
	}
	wg.Wait()
	if peak.Load() > capacity {
		t.Fatalf("peak concurrent slots %d exceeds capacity %d", peak.Load(), capacity)
	}
	if l.InUse() != 0 {
		t.Fatalf("InUse = %d after all released", l.InUse())
	}
}
