// Package taskpool provides the shared-memory parallel runtime underneath
// GraphPi's distributed implementation (paper §IV-E). The paper splits the
// outer loops of the matching program into fine-grained tasks to counter the
// power-law workload skew of real graphs; this package supplies the two
// scheduling disciplines used:
//
//   - Run: dynamic chunk self-scheduling from a shared counter (the OpenMP
//     "dynamic schedule" the single-node engine uses), and
//   - RunStealing: per-worker task queues with work stealing (the discipline
//     the simulated cluster layers across nodes).
package taskpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Range is a half-open interval [Start, End) of task indices.
type Range struct {
	Start, End int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.End - r.Start }

// Workers normalizes a worker-count request: values < 1 become
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run partitions [0, n) into chunks of the given size and hands them to
// workers goroutines that self-schedule from a shared atomic cursor. fn is
// called with the worker index (0 ≤ worker < workers) and the claimed range.
// Run returns when every chunk has been processed. chunk < 1 defaults to 1.
func Run(workers, n, chunk int, fn func(worker int, r Range)) {
	workers = Workers(workers)
	if chunk < 1 {
		chunk = 1
	}
	if n <= 0 {
		return
	}
	if workers == 1 {
		fn(0, Range{0, n})
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				fn(worker, Range{start, end})
			}
		}(w)
	}
	wg.Wait()
}

// RunStealing executes the given task ranges on workers goroutines. Tasks
// are dealt round-robin into per-worker queues; a worker that drains its own
// queue steals from the busiest peer. The queue discipline is FIFO for the
// owner (large outer-loop prefixes first keeps stealable work available) and
// steal-from-the-back for thieves.
func RunStealing(workers int, tasks []Range, fn func(worker int, r Range)) {
	workers = Workers(workers)
	if len(tasks) == 0 {
		return
	}
	if workers == 1 {
		for _, t := range tasks {
			fn(0, t)
		}
		return
	}
	queues := make([]*stealQueue, workers)
	for i := range queues {
		queues[i] = &stealQueue{}
	}
	for i, t := range tasks {
		q := queues[i%workers]
		q.tasks = append(q.tasks, t)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			own := queues[worker]
			for {
				t, ok := own.popFront()
				if !ok {
					t, ok = steal(queues, worker)
				}
				if !ok {
					return
				}
				fn(worker, t)
			}
		}(w)
	}
	wg.Wait()
}

type stealQueue struct {
	mu    sync.Mutex
	tasks []Range
	head  int
}

func (q *stealQueue) popFront() (Range, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.tasks) {
		return Range{}, false
	}
	t := q.tasks[q.head]
	q.head++
	return t, true
}

func (q *stealQueue) popBack() (Range, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.tasks) {
		return Range{}, false
	}
	t := q.tasks[len(q.tasks)-1]
	q.tasks = q.tasks[:len(q.tasks)-1]
	return t, true
}

func (q *stealQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks) - q.head
}

// steal picks the victim with the most remaining tasks and takes one from
// the back of its queue.
func steal(queues []*stealQueue, self int) (Range, bool) {
	for {
		victim, best := -1, 0
		for i, q := range queues {
			if i == self {
				continue
			}
			if s := q.size(); s > best {
				best, victim = s, i
			}
		}
		if victim < 0 {
			return Range{}, false
		}
		if t, ok := queues[victim].popBack(); ok {
			return t, true
		}
		// Lost the race; yield before rescanning so near-empty queues with
		// many workers don't spin hot on the victim-selection loop.
		runtime.Gosched()
	}
}

// SplitEven cuts [0, n) into at most parts contiguous ranges of nearly equal
// length (used for static baselines in scalability experiments).
func SplitEven(n, parts int) []Range {
	if n <= 0 || parts < 1 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	base, rem := n/parts, n%parts
	start := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Range{start, start + size})
		start += size
	}
	return out
}

// AdaptiveChunk sizes tasks over n work items for the given worker count:
// it targets perWorker tasks per worker (so stealing and self-scheduling can
// smooth out power-law skew) and clamps the result to [minChunk, maxChunk]
// (maxChunk < 1 means uncapped). Both the single-node engine (vertex and
// edge-slot roots) and the simulated cluster derive their default task
// granularity from this one formula, so the two runtimes stay comparable.
func AdaptiveChunk(n, workers, perWorker, minChunk, maxChunk int) int {
	if workers < 1 {
		workers = 1
	}
	if perWorker < 1 {
		perWorker = 1
	}
	c := n / (workers * perWorker)
	if minChunk < 1 {
		minChunk = 1
	}
	if c < minChunk {
		c = minChunk
	}
	if maxChunk >= 1 && c > maxChunk {
		c = maxChunk
	}
	return c
}

// SplitChunks cuts [0, n) into contiguous ranges of the given size.
func SplitChunks(n, chunk int) []Range {
	if n <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = 1
	}
	out := make([]Range, 0, (n+chunk-1)/chunk)
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		out = append(out, Range{start, end})
	}
	return out
}
