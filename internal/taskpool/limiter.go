package taskpool

import (
	"context"
	"fmt"
	"sync"
)

// Limiter is a FIFO weighted semaphore over worker slots. A resident runtime
// (the query service) sizes it to the machine's core budget and makes every
// job acquire its worker allotment before running, so concurrent jobs share
// the same pool the single-shot engine uses instead of oversubscribing the
// host. Waiters are granted strictly in arrival order — a wide request at
// the head of the line is never starved by narrow requests slipping past it.
type Limiter struct {
	mu      sync.Mutex
	cap     int
	used    int
	waiters []*limWaiter
}

type limWaiter struct {
	n     int
	ready chan struct{}
}

// NewLimiter returns a Limiter with the given worker-slot capacity
// (< 1 → 1).
func NewLimiter(capacity int) *Limiter {
	if capacity < 1 {
		capacity = 1
	}
	return &Limiter{cap: capacity}
}

// Cap returns the total worker-slot capacity.
func (l *Limiter) Cap() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cap
}

// InUse returns the number of slots currently held (the service's
// busy-workers gauge).
func (l *Limiter) InUse() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// Waiting returns the number of requests queued for slots.
func (l *Limiter) Waiting() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.waiters)
}

// Acquire blocks until n slots are available (and every earlier waiter has
// been served) or ctx is cancelled. n is clamped to [1, Cap] so a request
// can never deadlock against the capacity; the clamped grant is returned.
// On cancellation no slots are held.
func (l *Limiter) Acquire(ctx context.Context, n int) (int, error) {
	l.mu.Lock()
	if n < 1 {
		n = 1
	}
	if n > l.cap {
		n = l.cap
	}
	if len(l.waiters) == 0 && l.used+n <= l.cap {
		l.used += n
		l.mu.Unlock()
		return n, nil
	}
	w := &limWaiter{n: n, ready: make(chan struct{})}
	l.waiters = append(l.waiters, w)
	l.mu.Unlock()

	select {
	case <-w.ready:
		return n, nil
	case <-ctx.Done():
		l.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with the cancellation: keep the
			// cancellation semantics and hand the slots straight back.
			l.used -= w.n
			l.grantLocked()
		default:
			l.removeLocked(w)
		}
		l.mu.Unlock()
		return 0, ctx.Err()
	}
}

// Release returns n slots acquired earlier. Releasing more than is in use
// panics: that is always a caller accounting bug worth crashing on in tests.
func (l *Limiter) Release(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 || n > l.used {
		panic(fmt.Sprintf("taskpool: Limiter.Release(%d) with %d in use", n, l.used))
	}
	l.used -= n
	l.grantLocked()
}

// grantLocked serves waiters from the front of the line while capacity
// allows. Stopping at the first unservable waiter is what makes the order
// strict.
func (l *Limiter) grantLocked() {
	for len(l.waiters) > 0 {
		w := l.waiters[0]
		if l.used+w.n > l.cap {
			return
		}
		l.used += w.n
		l.waiters = l.waiters[1:]
		close(w.ready)
	}
}

func (l *Limiter) removeLocked(target *limWaiter) {
	for i, w := range l.waiters {
		if w == target {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			return
		}
	}
}
