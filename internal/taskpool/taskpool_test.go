package taskpool

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 7, 100, 1023} {
			var mu sync.Mutex
			seen := make([]bool, n)
			Run(workers, n, 16, func(_ int, r Range) {
				mu.Lock()
				defer mu.Unlock()
				for i := r.Start; i < r.End; i++ {
					if seen[i] {
						t.Errorf("index %d processed twice", i)
					}
					seen[i] = true
				}
			})
			for i, s := range seen {
				if !s {
					t.Fatalf("workers=%d n=%d: index %d missed", workers, n, i)
				}
			}
		}
	}
}

func TestRunWorkerIndicesInRange(t *testing.T) {
	var bad atomic.Int32
	Run(4, 1000, 8, func(w int, r Range) {
		if w < 0 || w >= 4 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Error("worker index out of range")
	}
}

func TestRunStealingCoversAll(t *testing.T) {
	tasks := SplitChunks(500, 7)
	for _, workers := range []int{1, 3, 8} {
		var mu sync.Mutex
		seen := make([]bool, 500)
		RunStealing(workers, tasks, func(_ int, r Range) {
			mu.Lock()
			defer mu.Unlock()
			for i := r.Start; i < r.End; i++ {
				if seen[i] {
					t.Errorf("index %d twice", i)
				}
				seen[i] = true
			}
		})
		for i, s := range seen {
			if !s {
				t.Fatalf("workers=%d: index %d missed", workers, i)
			}
		}
		for i := range seen {
			seen[i] = false
		}
	}
}

func TestRunStealingBalancesSkew(t *testing.T) {
	// One enormous task plus many tiny ones: stealing must let other
	// workers drain the tiny tasks while one worker is stuck.
	tasks := []Range{{0, 1}}
	for i := 1; i < 64; i++ {
		tasks = append(tasks, Range{i, i + 1})
	}
	var counts [4]atomic.Int64
	var block sync.WaitGroup
	block.Add(1)
	done := make(chan struct{})
	go func() {
		RunStealing(4, tasks, func(w int, r Range) {
			if r.Start == 0 {
				block.Wait() // simulate a heavy task
			}
			counts[w].Add(1)
		})
		close(done)
	}()
	// Give the other workers a moment, then release the heavy task.
	block.Done()
	<-done
	total := int64(0)
	for i := range counts {
		total += counts[i].Load()
	}
	if total != 64 {
		t.Errorf("processed %d tasks, want 64", total)
	}
}

func TestSplitEven(t *testing.T) {
	rs := SplitEven(10, 3)
	if len(rs) != 3 {
		t.Fatalf("parts = %d", len(rs))
	}
	if rs[0].Len()+rs[1].Len()+rs[2].Len() != 10 {
		t.Error("lengths do not sum")
	}
	if rs[0].Start != 0 || rs[2].End != 10 {
		t.Error("not contiguous from 0 to n")
	}
	if len(SplitEven(2, 5)) != 2 {
		t.Error("parts > n should clamp")
	}
	if SplitEven(0, 3) != nil {
		t.Error("empty range should be nil")
	}
}

func TestSplitChunksProperty(t *testing.T) {
	f := func(n, chunk uint16) bool {
		nn, cc := int(n%2000), int(chunk%50)
		rs := SplitChunks(nn, cc)
		covered := 0
		prevEnd := 0
		for _, r := range rs {
			if r.Start != prevEnd {
				return false
			}
			covered += r.Len()
			prevEnd = r.End
		}
		return covered == nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("Workers should default to GOMAXPROCS")
	}
	if Workers(7) != 7 {
		t.Error("Workers should pass through positive values")
	}
}

func TestAdaptiveChunk(t *testing.T) {
	cases := []struct {
		n, workers, perWorker, min, max int
		want                            int
	}{
		{n: 64000, workers: 10, perWorker: 64, min: 1, max: 1024, want: 100},
		{n: 10, workers: 4, perWorker: 64, min: 1, max: 1024, want: 1},        // floor
		{n: 1 << 30, workers: 1, perWorker: 1, min: 1, max: 1024, want: 1024}, // cap
		{n: 1 << 30, workers: 1, perWorker: 1, min: 1, max: 0, want: 1 << 30}, // uncapped
		{n: 100, workers: 0, perWorker: 0, min: 0, max: 0, want: 100},         // degenerate inputs normalize
		{n: 1000, workers: 2, perWorker: 16, min: 40, max: 0, want: 40},       // min applies
	}
	for _, c := range cases {
		if got := AdaptiveChunk(c.n, c.workers, c.perWorker, c.min, c.max); got != c.want {
			t.Errorf("AdaptiveChunk(%d,%d,%d,%d,%d) = %d, want %d",
				c.n, c.workers, c.perWorker, c.min, c.max, got, c.want)
		}
	}
}
