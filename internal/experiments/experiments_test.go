package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyOpts keeps every experiment fast enough for CI; cells that exceed the
// budget legitimately report "T", as in the paper.
func tinyOpts() Options {
	return Options{
		Scale:        0.01,
		Workers:      4,
		CellBudget:   250 * time.Millisecond,
		MaxSchedules: 4,
	}
}

func TestTable1(t *testing.T) {
	res, err := Table1(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var buf bytes.Buffer
	res.Report(&buf)
	if !strings.Contains(buf.String(), "WikiVote-S") {
		t.Error("report missing dataset")
	}
}

func TestFig2b(t *testing.T) {
	res, err := Fig2b(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Combos) != 4 {
		t.Fatalf("combos = %d, want 4", len(res.Combos))
	}
	// All four combos count the same embeddings.
	var counts []int64
	for _, c := range res.Combos {
		if !c.Cell.TimedOut {
			counts = append(counts, c.Cell.Count)
		}
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Errorf("combo counts disagree: %v", counts)
		}
	}
	var buf bytes.Buffer
	res.Report(&buf)
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig8(t *testing.T) {
	res, err := Fig8(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 30 { // 6 patterns × 5 graphs
		t.Fatalf("cells = %d, want 30", len(res.Cells))
	}
	// Correctness: per cell, completed systems agree on the count.
	for _, c := range res.Cells {
		ref := int64(-1)
		for _, cell := range []Cell{c.GraphPi, c.GraphZero, c.Fractal} {
			if cell.TimedOut {
				continue
			}
			if ref < 0 {
				ref = cell.Count
			} else if cell.Count != ref {
				t.Errorf("%s/%s: counts disagree (%d vs %d)", c.Graph, c.Pattern, cell.Count, ref)
			}
		}
	}
	var buf bytes.Buffer
	res.Report(&buf)
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("missing summary")
	}
}

func TestTable2(t *testing.T) {
	res, err := Table2(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 3 patterns × 2 graphs
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	var buf bytes.Buffer
	res.Report(&buf)
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig9(t *testing.T) {
	// Fig9 needs completed (non-"T") cells for its oracle, so it gets a
	// larger per-cell budget than the grid experiments.
	opt := tinyOpts()
	opt.CellBudget = 5 * time.Second
	opt.MaxSchedules = 3
	res, err := Fig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 || res.EliminatedCount == 0 {
		t.Errorf("generated %d eliminated %d", res.Generated, res.EliminatedCount)
	}
	var gpPicks, gzPicks int
	for _, pt := range res.Points {
		if pt.PickedByGraphPi {
			gpPicks++
			if pt.Eliminated {
				t.Error("GraphPi picked an eliminated schedule")
			}
		}
		if pt.PickedByGraphZero {
			gzPicks++
		}
	}
	if gpPicks != 1 || gzPicks == 0 {
		t.Errorf("picks: graphpi=%d graphzero=%d", gpPicks, gzPicks)
	}
	if res.GraphPiPick.Seconds <= 0 || res.Oracle.Seconds <= 0 {
		t.Error("missing pick/oracle cells")
	}
	var buf bytes.Buffer
	res.Report(&buf)
	if !strings.Contains(buf.String(), "GraphPi pick") {
		t.Error("report missing pick markers")
	}
}

func TestFig10(t *testing.T) {
	res, err := Fig10(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 30 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Most configurations support IEP (the planner prefers them); a few
	// patterns may legitimately fall back (kIEP = 0) when no low-cost
	// configuration passes the exactness check.
	withIEP := 0
	for _, c := range res.Cells {
		if c.KIEP >= 1 {
			withIEP++
		}
	}
	if withIEP < len(res.Cells)/2 {
		t.Errorf("only %d/%d cells IEP-capable", withIEP, len(res.Cells))
	}
	var buf bytes.Buffer
	res.Report(&buf)
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig11(t *testing.T) {
	res, err := Fig11(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 { // 6 patterns × 2 graphs
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Selected.Seconds > 0 && row.Oracle.Seconds > 0 &&
			row.Selected.Seconds+1e-9 < row.Oracle.Seconds {
			t.Errorf("%s/%s: selected faster than oracle?", row.Graph, row.Pattern)
		}
	}
	var buf bytes.Buffer
	res.Report(&buf)
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig12(t *testing.T) {
	res, err := Fig12(tinyOpts(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// 6 Orkut patterns + 2 Twitter patterns, × 2 node counts.
	if len(res.Points) != 16 {
		t.Fatalf("points = %d, want 16", len(res.Points))
	}
	// Counts must be node-count independent.
	byKey := map[string]int64{}
	for _, pt := range res.Points {
		key := pt.Graph + "/" + pt.Pattern
		if prev, ok := byKey[key]; ok && prev != pt.Count {
			t.Errorf("%s: count differs across node counts", key)
		}
		byKey[key] = pt.Count
	}
	var buf bytes.Buffer
	res.Report(&buf)
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestTable3(t *testing.T) {
	res, err := Table3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Overhead <= 0 || row.Configurations <= 0 {
			t.Errorf("%s: empty row %+v", row.Pattern, row)
		}
	}
	var buf bytes.Buffer
	res.Report(&buf)
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestRunByName(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(NameTable1, tinyOpts(), &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
	if err := Run("bogus", tinyOpts(), &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(Names()) != 9 {
		t.Errorf("Names = %v", Names())
	}
}

func TestCellString(t *testing.T) {
	c := Cell{Seconds: 1.5}
	if c.String() != "1.500s" {
		t.Errorf("String = %q", c.String())
	}
	to := Cell{Seconds: 2, TimedOut: true}
	if !strings.Contains(to.String(), "T") {
		t.Errorf("timeout String = %q", to.String())
	}
	if sp := (Cell{Seconds: 2}).Speedup(Cell{Seconds: 6}); sp != 3 {
		t.Errorf("Speedup = %v", sp)
	}
}
