package experiments

import (
	"fmt"
	"io"

	"graphpi/internal/baseline"
	"graphpi/internal/core"
	"graphpi/internal/costmodel"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
)

// ---------------------------------------------------------------------------
// Figure 2(b) — schedule × restriction combinations for the House pattern.

// Fig2bCombo is one measured (schedule, restriction set) combination.
type Fig2bCombo struct {
	Schedule     string
	Restrictions string
	Cell         Cell
}

// Fig2bResult reproduces Figure 2(b): the motivating observation that
// combinations of schedules and restriction sets differ by large factors.
type Fig2bResult struct {
	Combos        []Fig2bCombo
	BestOverWorst float64
}

// Fig2b measures the House pattern on Patents-S under two schedules × two
// single-restriction sets derived from the House's automorphism (the
// paper's id(A)>id(B) versus id(C)>id(D) alternatives).
func Fig2b(opt Options) (*Fig2bResult, error) {
	opt = opt.normalized()
	g, err := loadGraph("Patents-S", opt)
	if err != nil {
		return nil, err
	}
	p := evalPatterns()[0] // P1 = House
	sres := schedule.Generate(p, schedule.Options{})
	if len(sres.Efficient) < 2 {
		return nil, fmt.Errorf("experiments: not enough schedules for fig2b")
	}
	// Rank schedules by model to take a good and a mediocre one.
	params := costmodel.FromStats(g.Stats())
	type scored struct {
		s    schedule.Schedule
		cost float64
	}
	var ranked []scored
	for _, s := range sres.Efficient {
		plan := schedule.BuildPlan(schedule.RelabeledPattern(p, s), p.N())
		ranked = append(ranked, scored{s, costmodel.Estimate(plan, p.N(), nil, params, costmodel.GraphPi).Cost})
	}
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0 && ranked[j].cost < ranked[j-1].cost; j-- {
			ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
		}
	}
	schedules := []schedule.Schedule{ranked[0].s, ranked[len(ranked)-1].s}
	// The House's automorphism group is {id, (0 1)(2 3)}; either 2-cycle
	// alone is a complete restriction set — the paper's two alternatives.
	sets := []restrict.Set{
		{{First: 0, Second: 1}},
		{{First: 2, Second: 3}},
	}
	res := &Fig2bResult{}
	var best, worst float64
	for _, s := range schedules {
		for _, rs := range sets {
			cfg, err := core.NewConfig(p, s, rs)
			if err != nil {
				return nil, err
			}
			cell := measureConfig(cfg, g, opt, false)
			res.Combos = append(res.Combos, Fig2bCombo{
				Schedule:     s.String(),
				Restrictions: rs.String(),
				Cell:         cell,
			})
			if !cell.TimedOut {
				if best == 0 || cell.Seconds < best {
					best = cell.Seconds
				}
				if cell.Seconds > worst {
					worst = cell.Seconds
				}
			}
		}
	}
	if best > 0 {
		res.BestOverWorst = worst / best
	}
	return res, nil
}

func (r *Fig2bResult) Report(w io.Writer) {
	writeHeader(w, "Figure 2(b): schedule × restriction combinations (House on Patents-S)")
	for _, c := range r.Combos {
		fmt.Fprintf(w, "schedule %-12s  restrictions %-18s  %s  (count %d)\n",
			c.Schedule, c.Restrictions, c.Cell, c.Cell.Count)
	}
	fmt.Fprintf(w, "worst/best ratio: %.1fx (paper: up to 23.2x)\n", r.BestOverWorst)
}

// ---------------------------------------------------------------------------
// Figure 8 — overall performance: GraphPi vs GraphZero vs Fractal.

// Fig8Cell is one (system, pattern, graph) measurement.
type Fig8Cell struct {
	Graph, Pattern string
	GraphPi        Cell
	GraphZero      Cell
	Fractal        Cell
}

// Fig8Result reproduces Figure 8.
type Fig8Result struct {
	Cells []Fig8Cell
	// GeoSpeedupGZ/Fractal are geometric-mean speedups of GraphPi over
	// each baseline across completed cells.
	GeoSpeedupGZ      float64
	GeoSpeedupFractal float64
}

// Fig8 runs the 6 evaluation patterns on the 5 single-node datasets with
// GraphPi (planned configuration, no IEP — matching the paper's protocol),
// the reproduced GraphZero and the Fractal-style baseline. Cells exceeding
// the budget report "T" exactly as the paper's 48-hour cutoff does.
func Fig8(opt Options) (*Fig8Result, error) {
	opt = opt.normalized()
	res := &Fig8Result{}
	var spGZ, spFr []float64
	for _, gname := range datasetNamesFig8() {
		g, err := loadGraph(gname, opt)
		if err != nil {
			return nil, err
		}
		stats := g.Stats()
		for _, p := range evalPatterns() {
			cell := Fig8Cell{Graph: gname, Pattern: p.Name()}
			pr, err := core.Plan(p, stats, core.PlanOptions{})
			if err != nil {
				return nil, err
			}
			cell.GraphPi = measureConfig(pr.Best, g, opt, false)
			gz, err := core.PlanGraphZero(p, stats)
			if err != nil {
				return nil, err
			}
			cell.GraphZero = measureConfig(gz.Best, g, opt, false)
			cell.Fractal = measure(func() (int64, bool) {
				return baseline.FractalCountTimed(g, p, opt.Workers, opt.CellBudget)
			})
			if !cell.GraphPi.TimedOut {
				if !cell.GraphZero.TimedOut {
					spGZ = append(spGZ, cell.GraphPi.Speedup(cell.GraphZero))
				}
				if !cell.Fractal.TimedOut {
					spFr = append(spFr, cell.GraphPi.Speedup(cell.Fractal))
				}
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	res.GeoSpeedupGZ = geoMean(spGZ)
	res.GeoSpeedupFractal = geoMean(spFr)
	return res, nil
}

func datasetNamesFig8() []string {
	return []string{"WikiVote-S", "MiCo-S", "Patents-S", "LiveJournal-S", "Orkut-S"}
}

func (r *Fig8Result) Report(w io.Writer) {
	writeHeader(w, "Figure 8: overall performance (GraphPi vs GraphZero vs Fractal)")
	fmt.Fprintf(w, "%-14s %-12s %12s %12s %12s %9s %9s\n",
		"Graph", "Pattern", "GraphPi", "GraphZero", "Fractal", "vs GZ", "vs Fr")
	for _, c := range r.Cells {
		gzs, frs := "-", "-"
		if !c.GraphPi.TimedOut && !c.GraphZero.TimedOut {
			gzs = fmt.Sprintf("%.1fx", c.GraphPi.Speedup(c.GraphZero))
		}
		if !c.GraphPi.TimedOut && !c.Fractal.TimedOut {
			frs = fmt.Sprintf("%.1fx", c.GraphPi.Speedup(c.Fractal))
		}
		fmt.Fprintf(w, "%-14s %-12s %12s %12s %12s %9s %9s\n",
			c.Graph, c.Pattern, c.GraphPi, c.GraphZero, c.Fractal, gzs, frs)
	}
	fmt.Fprintf(w, "geomean speedup: %.1fx over GraphZero, %.1fx over Fractal\n",
		r.GeoSpeedupGZ, r.GeoSpeedupFractal)
}

// ---------------------------------------------------------------------------
// Figure 10 — counting with vs without the Inclusion-Exclusion Principle.

// Fig10Cell is one (pattern, graph) IEP comparison.
type Fig10Cell struct {
	Graph, Pattern string
	NoIEP, WithIEP Cell
	KIEP           int
}

// Fig10Result reproduces Figure 10.
type Fig10Result struct {
	Cells []Fig10Cell
}

// Fig10 counts each evaluation pattern on each dataset twice with the same
// planned configuration — enumerating the innermost loops versus counting
// them with the Inclusion-Exclusion Principle (paper §V-D).
func Fig10(opt Options) (*Fig10Result, error) {
	opt = opt.normalized()
	res := &Fig10Result{}
	for _, gname := range datasetNamesFig8() {
		g, err := loadGraph(gname, opt)
		if err != nil {
			return nil, err
		}
		stats := g.Stats()
		for _, p := range evalPatterns() {
			pr, err := core.Plan(p, stats, core.PlanOptions{})
			if err != nil {
				return nil, err
			}
			cell := Fig10Cell{Graph: gname, Pattern: p.Name(), KIEP: pr.Best.KIEP()}
			cell.NoIEP = measureConfig(pr.Best, g, opt, false)
			cell.WithIEP = measureConfig(pr.Best, g, opt, true)
			if !cell.NoIEP.TimedOut && !cell.WithIEP.TimedOut &&
				cell.NoIEP.Count != cell.WithIEP.Count {
				return nil, fmt.Errorf("experiments: IEP mismatch for %s on %s: %d vs %d",
					p.Name(), gname, cell.WithIEP.Count, cell.NoIEP.Count)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

func (r *Fig10Result) Report(w io.Writer) {
	writeHeader(w, "Figure 10: counting with vs without IEP")
	fmt.Fprintf(w, "%-14s %-12s %12s %12s %10s %5s\n",
		"Graph", "Pattern", "no IEP", "with IEP", "speedup", "k")
	for _, c := range r.Cells {
		sp := "-"
		if !c.NoIEP.TimedOut && !c.WithIEP.TimedOut && c.WithIEP.Seconds > 0 {
			sp = fmt.Sprintf("%.1fx", c.NoIEP.Seconds/c.WithIEP.Seconds)
		}
		fmt.Fprintf(w, "%-14s %-12s %12s %12s %10s %5d\n",
			c.Graph, c.Pattern, c.NoIEP, c.WithIEP, sp, c.KIEP)
	}
}
