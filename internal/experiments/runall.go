package experiments

import (
	"fmt"
	"io"
)

// Experiment names accepted by Run and the cmd/experiments CLI.
const (
	NameTable1 = "table1"
	NameFig2b  = "fig2b"
	NameFig8   = "fig8"
	NameTable2 = "table2"
	NameFig9   = "fig9"
	NameFig10  = "fig10"
	NameFig11  = "fig11"
	NameFig12  = "fig12"
	NameTable3 = "table3"
)

// Names lists all experiments in paper order.
func Names() []string {
	return []string{
		NameTable1, NameFig2b, NameFig8, NameTable2,
		NameFig9, NameFig11, NameFig10, NameFig12, NameTable3,
	}
}

// Writeable is implemented by every experiment result.
type Writeable interface {
	Report(w io.Writer)
}

// Run executes one named experiment and writes its report to w.
func Run(name string, opt Options, w io.Writer) error {
	var (
		res Writeable
		err error
	)
	switch name {
	case NameTable1:
		res, err = Table1(opt)
	case NameFig2b:
		res, err = Fig2b(opt)
	case NameFig8:
		res, err = Fig8(opt)
	case NameTable2:
		res, err = Table2(opt)
	case NameFig9:
		res, err = Fig9(opt)
	case NameFig10:
		res, err = Fig10(opt)
	case NameFig11:
		res, err = Fig11(opt)
	case NameFig12:
		res, err = Fig12(opt, nil)
	case NameTable3:
		res, err = Table3(opt)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", name, err)
	}
	res.Report(w)
	return nil
}

// RunAll executes every experiment in paper order.
func RunAll(opt Options, w io.Writer) error {
	for _, name := range Names() {
		if err := Run(name, opt, w); err != nil {
			return err
		}
	}
	return nil
}
