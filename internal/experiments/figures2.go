package experiments

import (
	"fmt"
	"io"

	"graphpi/internal/cluster"
	"graphpi/internal/core"
	"graphpi/internal/costmodel"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
)

// ---------------------------------------------------------------------------
// Figure 9 — the schedule space of P3 on WikiVote-S.

// Fig9Point is one measured schedule.
type Fig9Point struct {
	Schedule   string
	Eliminated bool // removed by the 2-phase generator
	Cell       Cell
	// Picked marks the schedules selected by GraphPi's model and by the
	// reproduced GraphZero's model.
	PickedByGraphPi, PickedByGraphZero bool
}

// Fig9Result reproduces Figure 9.
type Fig9Result struct {
	Points []Fig9Point
	// Oracle/GraphPiPick/GraphZeroPick are the runtimes of the best
	// measured generated schedule and of the two systems' selections.
	Oracle, GraphPiPick, GraphZeroPick Cell
	Generated, EliminatedCount         int
}

// Fig9 measures every schedule (both the 2-phase survivors and the
// eliminated ones) of P3 on WikiVote-S under the GraphZero restriction set
// — the paper's protocol isolates schedule effects by fixing restrictions.
// GraphPi's and GraphZero's schedule picks are marked.
func Fig9(opt Options) (*Fig9Result, error) {
	opt = opt.normalized()
	g, err := loadGraph("WikiVote-S", opt)
	if err != nil {
		return nil, err
	}
	p := evalPatterns()[2] // P3
	gzSet := restrict.GraphZeroSet(p)
	sres := schedule.Generate(p, schedule.Options{KeepEliminated: true})
	params := costmodel.FromStats(g.Stats())

	pickFrom := func(scheds []schedule.Schedule, model costmodel.Model) int {
		best, bestCost := -1, 0.0
		for i, s := range scheds {
			plan := schedule.BuildPlan(schedule.RelabeledPattern(p, s), p.N())
			c := costmodel.Estimate(plan, p.N(), mapSet(s, gzSet), params, model).Cost
			if best < 0 || c < bestCost {
				best, bestCost = i, c
			}
		}
		return best
	}
	gpPick := sres.Efficient[pickFrom(sres.Efficient, costmodel.GraphPi)]
	// GraphZero selects over Phase-1 schedules with the blind model.
	p1res := schedule.Generate(p, schedule.Options{Phase1Only: true})
	gzPick := p1res.Efficient[pickFrom(p1res.Efficient, costmodel.GraphZeroApprox)]

	limit := func(s []schedule.Schedule) []schedule.Schedule {
		if opt.MaxSchedules > 0 && len(s) > opt.MaxSchedules {
			return s[:opt.MaxSchedules]
		}
		return s
	}
	res := &Fig9Result{}
	runOne := func(s schedule.Schedule, eliminated bool) error {
		cfg, err := core.NewConfig(p, s, gzSet)
		if err != nil {
			return err
		}
		cell := measureConfig(cfg, g, opt, false)
		pt := Fig9Point{
			Schedule:          s.String(),
			Eliminated:        eliminated,
			Cell:              cell,
			PickedByGraphPi:   s.String() == gpPick.String(),
			PickedByGraphZero: s.String() == gzPick.String(),
		}
		res.Points = append(res.Points, pt)
		if !eliminated && !cell.TimedOut {
			if res.Oracle.Seconds == 0 || cell.Seconds < res.Oracle.Seconds {
				res.Oracle = cell
			}
		}
		if pt.PickedByGraphPi {
			res.GraphPiPick = cell
		}
		if pt.PickedByGraphZero {
			res.GraphZeroPick = cell
		}
		return nil
	}
	for _, s := range limit(sres.Efficient) {
		if err := runOne(s, false); err != nil {
			return nil, err
		}
	}
	for _, s := range limit(sres.Eliminated) {
		if err := runOne(s, true); err != nil {
			return nil, err
		}
	}
	// Ensure the picks are measured even if the limit cut them off.
	if res.GraphPiPick.Seconds == 0 {
		if err := runOne(gpPick, false); err != nil {
			return nil, err
		}
	}
	if res.GraphZeroPick.Seconds == 0 {
		elim := true
		for _, s := range sres.Efficient {
			if s.String() == gzPick.String() {
				elim = false
			}
		}
		if err := runOne(gzPick, elim); err != nil {
			return nil, err
		}
	}
	res.Generated = len(sres.Efficient)
	res.EliminatedCount = len(sres.Eliminated)
	return res, nil
}

func (r *Fig9Result) Report(w io.Writer) {
	writeHeader(w, "Figure 9: schedule space of P3 on WikiVote-S")
	fmt.Fprintf(w, "schedules: %d generated, %d eliminated by the 2-phase generator\n",
		r.Generated, r.EliminatedCount)
	for _, pt := range r.Points {
		mark := " "
		if pt.Eliminated {
			mark = "x"
		}
		tag := ""
		if pt.PickedByGraphPi {
			tag += " <== GraphPi pick"
		}
		if pt.PickedByGraphZero {
			tag += " <== GraphZero pick"
		}
		fmt.Fprintf(w, "  [%s] %-14s %s%s\n", mark, pt.Schedule, pt.Cell, tag)
	}
	if r.Oracle.Seconds > 0 {
		fmt.Fprintf(w, "oracle %.3fs | GraphPi pick %.3fs (%.2fx of oracle) | GraphZero pick %s\n",
			r.Oracle.Seconds, r.GraphPiPick.Seconds,
			r.GraphPiPick.Seconds/r.Oracle.Seconds, r.GraphZeroPick)
	}
}

// ---------------------------------------------------------------------------
// Figure 11 — accuracy of the performance prediction model.

// Fig11Row compares GraphPi's selected schedule with the measured oracle.
type Fig11Row struct {
	Graph, Pattern   string
	Selected, Oracle Cell
	SchedulesTried   int
}

// Fig11Result reproduces Figure 11.
type Fig11Result struct {
	Rows []Fig11Row
	// AvgSlowdown is the geometric mean of selected/oracle (paper: 1.32).
	AvgSlowdown float64
}

// Fig11 measures, for every pattern on WikiVote-S and Patents-S, each
// efficient schedule (with its model-chosen restriction set) and compares
// the model's selection with the measured oracle.
func Fig11(opt Options) (*Fig11Result, error) {
	opt = opt.normalized()
	res := &Fig11Result{}
	var ratios []float64
	for _, gname := range []string{"WikiVote-S", "Patents-S"} {
		g, err := loadGraph(gname, opt)
		if err != nil {
			return nil, err
		}
		params := costmodel.FromStats(g.Stats())
		for _, p := range evalPatterns() {
			sets, err := restrict.Generate(p, restrict.Options{})
			if err != nil {
				return nil, err
			}
			sres := schedule.Generate(p, schedule.Options{})
			scheds := sres.Efficient
			if opt.MaxSchedules > 0 && len(scheds) > opt.MaxSchedules {
				scheds = scheds[:opt.MaxSchedules]
			}
			row := Fig11Row{Graph: gname, Pattern: p.Name(), SchedulesTried: len(scheds)}
			bestPredicted, bestPredCost := -1, 0.0
			var cells []Cell
			for si, s := range scheds {
				plan := schedule.BuildPlan(schedule.RelabeledPattern(p, s), p.N())
				bestSet, bestSetCost := 0, 0.0
				for ri, rs := range sets {
					c := costmodel.Estimate(plan, p.N(), mapSet(s, rs), params, costmodel.GraphPi).Cost
					if ri == 0 || c < bestSetCost {
						bestSet, bestSetCost = ri, c
					}
				}
				cfg, err := core.NewConfig(p, s, sets[bestSet])
				if err != nil {
					return nil, err
				}
				cell := measureConfig(cfg, g, opt, false)
				cells = append(cells, cell)
				if bestPredicted < 0 || bestSetCost < bestPredCost {
					bestPredicted, bestPredCost = si, bestSetCost
				}
			}
			for i, cell := range cells {
				if cell.TimedOut {
					continue
				}
				if row.Oracle.Seconds == 0 || cell.Seconds < row.Oracle.Seconds {
					row.Oracle = cell
				}
				if i == bestPredicted {
					row.Selected = cell
				}
			}
			if row.Selected.Seconds > 0 && row.Oracle.Seconds > 0 {
				ratios = append(ratios, row.Selected.Seconds/row.Oracle.Seconds)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	res.AvgSlowdown = geoMean(ratios)
	return res, nil
}

func (r *Fig11Result) Report(w io.Writer) {
	writeHeader(w, "Figure 11: performance model accuracy (selected vs oracle)")
	fmt.Fprintf(w, "%-14s %-12s %12s %12s %10s %8s\n",
		"Graph", "Pattern", "Selected", "Oracle", "Sel/Orc", "#Scheds")
	for _, row := range r.Rows {
		ratio := "-"
		if row.Selected.Seconds > 0 && row.Oracle.Seconds > 0 {
			ratio = fmt.Sprintf("%.2fx", row.Selected.Seconds/row.Oracle.Seconds)
		}
		fmt.Fprintf(w, "%-14s %-12s %12s %12s %10s %8d\n",
			row.Graph, row.Pattern, row.Selected, row.Oracle, ratio, row.SchedulesTried)
	}
	fmt.Fprintf(w, "geomean selected/oracle: %.2fx (paper: 1.32x)\n", r.AvgSlowdown)
}

// ---------------------------------------------------------------------------
// Figure 12 — scalability of the simulated distributed runtime.

// Fig12Point is one (pattern, nodes) measurement.
type Fig12Point struct {
	Graph, Pattern string
	Nodes          int
	Seconds        float64
	Speedup        float64 // vs the 1-node run of the same pattern
	Count          int64
	Steals         int64
	// Tasks is the number of tasks the master created.
	Tasks int
	// EdgeParallel reports whether the master packed edge-slot tasks; the
	// planner's auto mode enables them for every eligible schedule.
	EdgeParallel bool
	// MaxBusyShare is the largest per-node fraction of total busy time
	// (ideal is 1/Nodes) — the load-balance evidence behind the curve.
	MaxBusyShare float64
}

// Fig12Result reproduces Figure 12.
type Fig12Result struct {
	Points []Fig12Point
}

// Fig12 runs the evaluation patterns on Orkut-S (all six) and Twitter-S
// (P2, P3 only, as in the paper) over a doubling range of simulated node
// counts, one worker per node, and reports the speedup curves. The
// simulated nodes share the machine, so curves are meaningful up to the
// physical core count; short jobs flatten early exactly as in the paper.
func Fig12(opt Options, nodeCounts []int) (*Fig12Result, error) {
	opt = opt.normalized()
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 4, 8}
	}
	res := &Fig12Result{}
	run := func(gname string, patIdx []int) error {
		g, err := loadGraph(gname, opt)
		if err != nil {
			return err
		}
		stats := g.Stats()
		pats := evalPatterns()
		for _, pi := range patIdx {
			p := pats[pi]
			pr, err := core.Plan(p, stats, core.PlanOptions{})
			if err != nil {
				return err
			}
			var base float64
			for _, nodes := range nodeCounts {
				cres, err := cluster.Run(pr.Best, g, cluster.Options{
					Nodes:          nodes,
					WorkersPerNode: 1,
					UseIEP:         true,
				})
				if err != nil {
					return err
				}
				secs := cres.Elapsed.Seconds()
				if nodes == nodeCounts[0] {
					base = secs
				}
				var steals int64
				for _, ns := range cres.Nodes {
					steals += ns.StealsReceived
				}
				sp := 0.0
				if secs > 0 {
					sp = base / secs
				}
				res.Points = append(res.Points, Fig12Point{
					Graph: gname, Pattern: p.Name(), Nodes: nodes,
					Seconds: secs, Speedup: sp, Count: cres.Count, Steals: steals,
					Tasks: cres.Tasks, EdgeParallel: cres.EdgeParallel,
					MaxBusyShare: cres.MaxBusyShare(),
				})
			}
		}
		return nil
	}
	if err := run("Orkut-S", []int{0, 1, 2, 3, 4, 5}); err != nil {
		return nil, err
	}
	if err := run("Twitter-S", []int{1, 2}); err != nil {
		return nil, err
	}
	return res, nil
}

func (r *Fig12Result) Report(w io.Writer) {
	writeHeader(w, "Figure 12: scalability of the simulated distributed runtime")
	fmt.Fprintf(w, "%-12s %-12s %7s %12s %9s %8s %7s %6s %9s\n",
		"Graph", "Pattern", "Nodes", "Time", "Speedup", "Steals", "Tasks", "Shape", "MaxBusy")
	for _, pt := range r.Points {
		shape := "vert"
		if pt.EdgeParallel {
			shape = "edge"
		}
		fmt.Fprintf(w, "%-12s %-12s %7d %11.3fs %8.2fx %8d %7d %6s %8.2f%%\n",
			pt.Graph, pt.Pattern, pt.Nodes, pt.Seconds, pt.Speedup, pt.Steals,
			pt.Tasks, shape, 100*pt.MaxBusyShare)
	}
}
