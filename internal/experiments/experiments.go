// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V) against the synthetic dataset stand-ins. Each
// Table*/Fig* function runs one experiment and returns a structured result
// with a Report method that prints rows in the paper's shape; cmd/experiments
// is the CLI driver and bench_test.go wires each experiment into `go test
// -bench`.
//
// Absolute times are not comparable to the paper's Tianhe-2A numbers — the
// substrates differ (see DESIGN.md §3). Every experiment therefore reports
// the *relative* quantities the paper's claims are about: speedup factors,
// rank orders, and scaling curve shapes. Measurements exceeding the
// configured per-cell budget are reported as "T", mirroring the paper's
// 48-hour cutoff.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/dataset"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

// Options configures an experiment run.
type Options struct {
	// Scale shrinks the synthetic datasets (1.0 = default reproduction
	// size). Experiments at tiny scales run in seconds.
	Scale float64
	// Workers is the number of goroutines per measurement (< 1 →
	// GOMAXPROCS).
	Workers int
	// CellBudget bounds each individual measurement; 0 means unlimited.
	// Expired cells are reported as timed out ("T").
	CellBudget time.Duration
	// MaxSchedules caps schedule sweeps (Figures 9/11, Table II); 0 = all.
	MaxSchedules int
}

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	return o
}

// Cell is one timed measurement.
type Cell struct {
	Seconds  float64
	Count    int64
	TimedOut bool
}

func (c Cell) String() string {
	if c.TimedOut {
		return fmt.Sprintf("T(>%.2fs)", c.Seconds)
	}
	return fmt.Sprintf("%.3fs", c.Seconds)
}

// Speedup returns other.Seconds / c.Seconds, treating timeouts as lower
// bounds.
func (c Cell) Speedup(other Cell) float64 {
	if c.Seconds <= 0 {
		return 0
	}
	return other.Seconds / c.Seconds
}

// measure times fn once and captures the count/completion it reports.
func measure(fn func() (int64, bool)) Cell {
	start := time.Now()
	count, complete := fn()
	return Cell{
		Seconds:  time.Since(start).Seconds(),
		Count:    count,
		TimedOut: !complete,
	}
}

// measureConfig times one compiled configuration.
func measureConfig(cfg *core.Config, g *graph.Graph, opt Options, useIEP bool) Cell {
	ro := core.RunOptions{Workers: opt.Workers, Budget: opt.CellBudget}
	return measure(func() (int64, bool) {
		if useIEP {
			return cfg.CountIEPTimed(g, ro)
		}
		return cfg.CountTimed(g, ro)
	})
}

// loadGraph fetches a dataset stand-in at the experiment scale.
func loadGraph(name string, opt Options) (*graph.Graph, error) {
	return dataset.Load(name, opt.Scale)
}

// evalPatterns returns P1..P6.
func evalPatterns() []*pattern.Pattern { return pattern.EvaluationPatterns() }

// writeHeader prints a boxed experiment title.
func writeHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// geoMean returns the geometric mean of positive values (0 if none).
func geoMean(vals []float64) float64 {
	prod := 1.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1.0/float64(n))
}
