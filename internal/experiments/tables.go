package experiments

import (
	"fmt"
	"io"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/costmodel"
	"graphpi/internal/dataset"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
)

// ---------------------------------------------------------------------------
// Table I — dataset statistics.

// Table1Result reproduces the paper's Table I for the synthetic stand-ins.
type Table1Result struct {
	Rows []dataset.TableRow
}

// Table1 builds every dataset and reports its statistics next to the
// original graph's published size.
func Table1(opt Options) (*Table1Result, error) {
	opt = opt.normalized()
	rows, err := dataset.TableI(opt.Scale)
	if err != nil {
		return nil, err
	}
	return &Table1Result{Rows: rows}, nil
}

func (r *Table1Result) Report(w io.Writer) {
	writeHeader(w, "Table I: graph datasets (synthetic stand-ins)")
	fmt.Fprintf(w, "%-15s %12s %12s %12s   %-22s %s\n",
		"Graph", "#Vertices", "#Edges", "#Triangles", "Description", "vs paper")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-15s %12d %12d %12d   %-22s paper %dV/%dE; %s\n",
			row.Name, row.Vertices, row.Edges, row.Triangles,
			row.Description, row.PaperVertices, row.PaperEdges, row.ScaleNote)
	}
}

// ---------------------------------------------------------------------------
// Table II — restriction-set selection speedup.

// Table2Row is one (graph, pattern) row: the speedup of GraphPi's
// model-chosen restriction set over GraphZero's single set, for schedules
// where the two differ.
type Table2Row struct {
	Graph, Pattern    string
	SchedulesCompared int
	AvgSpeedup        float64
	MaxSpeedup        float64
}

// Table2Result reproduces Table II.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs P1, P2, P4 on WikiVote-S and Patents-S: for each efficient
// schedule, pick the best Algorithm-1 restriction set by the performance
// model, compare its measured time against the GraphZero set on the same
// schedule, and report average and maximum speedups over the schedules
// where the chosen sets differ (paper §V-C, "Restriction Set Generation").
func Table2(opt Options) (*Table2Result, error) {
	opt = opt.normalized()
	pats := evalPatterns()
	chosen := []int{0, 1, 3} // P1, P2, P4 as in the paper
	res := &Table2Result{}
	for _, gname := range []string{"WikiVote-S", "Patents-S"} {
		g, err := loadGraph(gname, opt)
		if err != nil {
			return nil, err
		}
		params := costmodel.FromStats(g.Stats())
		for _, pi := range chosen {
			p := pats[pi]
			sets, err := restrict.Generate(p, restrict.Options{})
			if err != nil {
				return nil, err
			}
			gzSet := restrict.GraphZeroSet(p)
			sres := schedule.Generate(p, schedule.Options{})
			scheds := sres.Efficient
			if opt.MaxSchedules > 0 && len(scheds) > opt.MaxSchedules {
				scheds = scheds[:opt.MaxSchedules]
			}
			row := Table2Row{Graph: gname, Pattern: p.Name()}
			var speedups []float64
			for _, s := range scheds {
				plan := schedule.BuildPlan(schedule.RelabeledPattern(p, s), p.N())
				best, bestCost := -1, 0.0
				for ri, rs := range sets {
					mapped := mapSet(s, rs)
					c := costmodel.Estimate(plan, p.N(), mapped, params, costmodel.GraphPi).Cost
					if best < 0 || c < bestCost {
						best, bestCost = ri, c
					}
				}
				if sets[best].String() == gzSet.String() {
					continue // same choice; the paper compares differing ones
				}
				cfgGP, err := core.NewConfig(p, s, sets[best])
				if err != nil {
					return nil, err
				}
				cfgGZ, err := core.NewConfig(p, s, gzSet)
				if err != nil {
					return nil, err
				}
				cGP := measureConfig(cfgGP, g, opt, false)
				cGZ := measureConfig(cfgGZ, g, opt, false)
				if cGP.TimedOut || cGZ.TimedOut {
					continue
				}
				sp := cGP.Speedup(cGZ)
				speedups = append(speedups, sp)
				if sp > row.MaxSpeedup {
					row.MaxSpeedup = sp
				}
			}
			row.SchedulesCompared = len(speedups)
			row.AvgSpeedup = geoMean(speedups)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func (r *Table2Result) Report(w io.Writer) {
	writeHeader(w, "Table II: speedup from GraphPi's restriction-set selection")
	fmt.Fprintf(w, "%-14s %-12s %10s %12s %12s\n",
		"Graph", "Pattern", "#Scheds", "AvgSpeedup", "MaxSpeedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-12s %10d %11.2fx %11.2fx\n",
			row.Graph, row.Pattern, row.SchedulesCompared, row.AvgSpeedup, row.MaxSpeedup)
	}
}

func mapSet(s schedule.Schedule, rs restrict.Set) [][2]uint8 {
	raw := make([][2]uint8, len(rs))
	for i, r := range rs {
		raw[i] = [2]uint8{r.First, r.Second}
	}
	return schedule.MapRestrictions(s, raw)
}

// ---------------------------------------------------------------------------
// Table III — preprocessing and configuration-generation overhead.

// Table3Row is one pattern's preprocessing cost.
type Table3Row struct {
	Pattern        string
	Overhead       time.Duration
	NumSchedules   int
	NumRestrSets   int
	Configurations int
}

// Table3Result reproduces Table III.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 measures GraphPi's full preprocessing (restriction generation,
// schedule generation, performance prediction, configuration compile) per
// evaluation pattern. As in the paper, the overhead depends only on the
// pattern, not on the data graph; representative graph statistics are used
// for the prediction step.
func Table3(opt Options) (*Table3Result, error) {
	opt = opt.normalized()
	g, err := loadGraph("WikiVote-S", opt)
	if err != nil {
		return nil, err
	}
	stats := g.Stats()
	res := &Table3Result{}
	for _, p := range evalPatterns() {
		pr, err := core.Plan(p, stats, core.PlanOptions{})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table3Row{
			Pattern:        p.Name(),
			Overhead:       pr.PrepTime,
			NumSchedules:   pr.NumSchedules,
			NumRestrSets:   pr.NumRestrictionSets,
			Configurations: pr.NumSchedules * pr.NumRestrictionSets,
		})
	}
	return res, nil
}

func (r *Table3Result) Report(w io.Writer) {
	writeHeader(w, "Table III: preprocessing overhead per pattern")
	fmt.Fprintf(w, "%-14s %14s %10s %10s %10s\n",
		"Pattern", "Overhead", "#Scheds", "#RestrSets", "#Configs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %14s %10d %10d %10d\n",
			row.Pattern, row.Overhead.Round(10*time.Microsecond),
			row.NumSchedules, row.NumRestrSets, row.Configurations)
	}
}
