// Package schedule implements GraphPi's 2-phase computation-avoid schedule
// generation (paper §IV-B).
//
// A schedule is an order in which the pattern's vertices are searched; a
// pattern with n vertices has n! candidate schedules, most of them
// inefficient. The generator:
//
//   - Phase 1 keeps only schedules whose every prefix induces a connected
//     subgraph of the pattern (otherwise some loop would traverse the whole
//     vertex set instead of an intersection of neighborhoods);
//   - Phase 2 keeps only schedules whose last k searched vertices are
//     pairwise non-adjacent, where k is the pattern's maximum independent
//     set size (pushing all intersection work out of the innermost loops);
//   - schedules equivalent up to a pattern automorphism explore identical
//     search trees, so only one representative per equivalence class is kept.
package schedule

import (
	"fmt"
	"strings"

	"graphpi/internal/pattern"
	"graphpi/internal/perm"
)

// Schedule is a search order over the pattern's vertices: Order[i] is the
// pattern vertex searched at depth i (the vertex of the i-th nested loop).
type Schedule struct {
	Order []uint8
}

func (s Schedule) String() string {
	parts := make([]string, len(s.Order))
	for i, v := range s.Order {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, "→")
}

// Clone returns a deep copy.
func (s Schedule) Clone() Schedule {
	return Schedule{Order: append([]uint8(nil), s.Order...)}
}

// Position returns pos such that Order[pos] = v, or -1.
func (s Schedule) Position(v uint8) int {
	for i, u := range s.Order {
		if u == v {
			return i
		}
	}
	return -1
}

// Parents returns, for each depth i, the ascending list of earlier depths j
// whose pattern vertex is adjacent to the vertex searched at depth i. The
// candidate set of depth i is the intersection of the data-graph
// neighborhoods bound at those depths (the paper's "candidate set").
func (s Schedule) Parents(p *pattern.Pattern) [][]int {
	out := make([][]int, len(s.Order))
	for i, v := range s.Order {
		for j := 0; j < i; j++ {
			if p.HasEdge(int(v), int(s.Order[j])) {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// SuffixIndependent returns the length of the longest schedule suffix whose
// vertices are pairwise non-adjacent in the pattern — the number of
// innermost loops with no intersection work, and the k usable by the IEP
// counting optimization for this schedule.
func (s Schedule) SuffixIndependent(p *pattern.Pattern) int {
	n := len(s.Order)
	var mask uint16
	for i := n - 1; i >= 0; i-- {
		v := s.Order[i]
		if p.NeighborMask(int(v))&mask != 0 {
			return n - 1 - i
		}
		mask |= 1 << v
	}
	return n
}

// Result carries the output of Generate.
type Result struct {
	// Efficient holds the surviving schedules, deterministically ordered.
	Efficient []Schedule
	// Eliminated holds the schedules removed by Phase 1 or Phase 2 (only
	// populated when Options.KeepEliminated is set; used to regenerate the
	// paper's Figure 9).
	Eliminated []Schedule
	// K is the pattern's maximum independent set size.
	K int
	// KEff is the Phase-2 threshold actually applied: the largest
	// independent suffix achievable by any prefix-connected schedule,
	// capped at K. For some patterns (the rectangle, the pentagon) no
	// connected schedule can end with K pairwise non-adjacent vertices —
	// the paper's "usually no intersection operation in the innermost k
	// loops" — so Phase 2 demands the best achievable suffix instead of
	// eliminating every schedule.
	KEff int
	// Classes is the total number of automorphism-equivalence classes of
	// schedules (|n!| / |Aut| for the dedup accounting).
	Classes int
}

// Options tunes Generate. The zero value applies GraphPi's defaults.
type Options struct {
	// KeepEliminated also returns the schedules the two phases removed.
	KeepEliminated bool
	// NoDedup disables automorphism-equivalence deduplication.
	NoDedup bool
	// Phase1Only disables the Phase-2 independent-suffix filter (the
	// GraphZero baseline generates connected schedules only).
	Phase1Only bool
}

// Generate enumerates all n! schedules of the pattern and applies the
// 2-phase filter. Equivalent schedules (differing by a pattern automorphism)
// are deduplicated to one lexicographically-smallest representative unless
// Options.NoDedup is set.
func Generate(p *pattern.Pattern, opts Options) Result {
	n := p.N()
	k := p.MaxIndependentSetSize()
	res := Result{K: k}
	var auts []perm.Perm
	if !opts.NoDedup {
		auts = p.Automorphisms()
	}

	// First pass: the Phase-2 threshold is the best independent suffix any
	// prefix-connected schedule achieves (capped at the pattern's k).
	kEff := 0
	order := make([]int, n)
	perm.ForEach(n, func(q perm.Perm) bool {
		for i := range order {
			order[i] = int(q[i])
		}
		if !p.PrefixConnected(order) {
			return true
		}
		s := Schedule{Order: q}
		if si := s.SuffixIndependent(p); si > kEff {
			kEff = si
		}
		return true
	})
	if kEff > k {
		kEff = k
	}
	res.KEff = kEff

	seen := map[string]bool{}
	perm.ForEach(n, func(q perm.Perm) bool {
		if !opts.NoDedup {
			key := canonicalKey(q, auts)
			if seen[key] {
				return true
			}
			seen[key] = true
		}
		res.Classes++
		s := Schedule{Order: append([]uint8(nil), q...)}
		for i := range order {
			order[i] = int(q[i])
		}
		ok := p.PrefixConnected(order)
		if ok && !opts.Phase1Only {
			ok = s.SuffixIndependent(p) >= kEff
		}
		if ok {
			res.Efficient = append(res.Efficient, s)
		} else if opts.KeepEliminated {
			res.Eliminated = append(res.Eliminated, s)
		}
		return true
	})
	return res
}

// canonicalKey returns the lexicographically smallest byte string among
// {a∘q : a ∈ auts}: schedules q and a∘q search isomorphic trees because
// relabeling by an automorphism preserves the pattern exactly.
func canonicalKey(q perm.Perm, auts []perm.Perm) string {
	best := ""
	buf := make([]byte, len(q))
	for _, a := range auts {
		for i, v := range q {
			buf[i] = a[v]
		}
		if best == "" || string(buf) < best {
			best = string(buf)
		}
	}
	return best
}

// RelabeledPattern returns the pattern with vertices renamed so that the
// vertex searched at depth i is named i. The execution engine and the cost
// model operate on this normalized form: after relabeling, the parents of
// depth i are simply i's pattern neighbors smaller than i.
func RelabeledPattern(p *pattern.Pattern, s Schedule) *pattern.Pattern {
	order := make([]int, p.N())
	for depth, v := range s.Order {
		order[v] = depth // vertex v gets new name = its depth
	}
	return p.Relabel(order)
}

// MapRestrictions rewrites restrictions expressed on pattern vertices into
// restrictions on schedule positions (the names used by the relabeled
// pattern and the engine).
func MapRestrictions(s Schedule, firstSecond [][2]uint8) [][2]uint8 {
	pos := make([]uint8, len(s.Order))
	for depth, v := range s.Order {
		pos[v] = uint8(depth)
	}
	out := make([][2]uint8, len(firstSecond))
	for i, r := range firstSecond {
		out[i] = [2]uint8{pos[r[0]], pos[r[1]]}
	}
	return out
}
