package schedule

import (
	"testing"

	"graphpi/internal/pattern"
)

func TestBuildPlanHouse(t *testing.T) {
	// The paper's Figure 5: House with schedule A,B,C,D,E. With our House
	// labeling (square 0-2-3-1, roof 0-1-4) and the identity schedule:
	// depth 0 (A=0): full scan
	// depth 1 (B=1): N(v0)
	// depth 2 (C=2): N(v0)
	// depth 3 (D=3): N(v1)∩N(v2)  → buffer computed at depth 2
	// depth 4 (E=4): N(v0)∩N(v1)  → buffer computed at depth 1 (tmpAB!)
	h := pattern.House()
	s := Schedule{Order: []uint8{0, 1, 2, 3, 4}}
	rel := RelabeledPattern(h, s)
	plan := BuildPlan(rel, 5)

	if plan.Cand[0].Kind != CandFull {
		t.Error("depth 0 should be full scan")
	}
	if plan.Cand[1].Kind != CandNeighborhood || plan.Cand[1].Parent != 0 {
		t.Errorf("depth 1 candidate = %+v, want N(v0)", plan.Cand[1])
	}
	if plan.Cand[2].Kind != CandNeighborhood || plan.Cand[2].Parent != 0 {
		t.Errorf("depth 2 candidate = %+v, want N(v0)", plan.Cand[2])
	}
	if plan.Cand[3].Kind != CandBuffer || plan.Cand[3].NumParents != 2 {
		t.Errorf("depth 3 candidate = %+v, want 2-parent buffer", plan.Cand[3])
	}
	if plan.Cand[4].Kind != CandBuffer || plan.Cand[4].NumParents != 2 {
		t.Errorf("depth 4 candidate = %+v, want 2-parent buffer", plan.Cand[4])
	}
	// tmpAB (parents {0,1}) must be computed at depth 1; tmpBC-analog
	// (parents {1,2}) at depth 2.
	if len(plan.Steps[1]) != 1 || plan.Steps[1][0].LeftParent != 0 {
		t.Errorf("Steps[1] = %+v, want one step N(v0)∩N(v1)", plan.Steps[1])
	}
	if len(plan.Steps[2]) != 1 {
		t.Errorf("Steps[2] = %+v, want one step", plan.Steps[2])
	}
	if plan.NumBufs != 2 {
		t.Errorf("NumBufs = %d, want 2", plan.NumBufs)
	}
}

func TestBuildPlanSharesPrefixes(t *testing.T) {
	// K2,3 with the 2-side first: inner vertices 2,3,4 all share parents
	// {0,1}; the intersection buffer must be built once and shared.
	p := pattern.CompleteBipartite(2, 3)
	s := Schedule{Order: []uint8{0, 2, 1, 3, 4}}
	rel := RelabeledPattern(p, s)
	plan := BuildPlan(rel, 5)
	// Relabeled: depth0=0(sideA), depth1=2(sideB), depth2=1(sideA),
	// depth3=3, depth4=4 (sideB). Depths 3 and 4 have parents {0,2}
	// (the two side-A depths), so they share one buffer.
	if plan.Cand[3].Kind != CandBuffer || plan.Cand[4].Kind != CandBuffer {
		t.Fatalf("inner candidates = %+v / %+v", plan.Cand[3], plan.Cand[4])
	}
	if plan.Cand[3].Buf != plan.Cand[4].Buf {
		t.Error("shared parent set should share a buffer")
	}
	total := 0
	for _, steps := range plan.Steps {
		total += len(steps)
	}
	if total != plan.NumBufs {
		t.Errorf("steps %d != buffers %d", total, plan.NumBufs)
	}
}

func TestBuildPlanChain(t *testing.T) {
	// K5 identity schedule: depth 4 has parents {0,1,2,3}: a chain of
	// three steps with prefixes {0,1}, {0,1,2}, {0,1,2,3}; depth 3 shares
	// the {0,1} and {0,1,2} prefixes; depth 2 shares {0,1}.
	k5 := pattern.Clique(5)
	s := Schedule{Order: []uint8{0, 1, 2, 3, 4}}
	plan := BuildPlan(RelabeledPattern(k5, s), 5)
	if plan.NumBufs != 3 {
		t.Errorf("K5 NumBufs = %d, want 3 (shared chain)", plan.NumBufs)
	}
	// Steps land at the depth of their last parent.
	if len(plan.Steps[1]) != 1 || len(plan.Steps[2]) != 1 || len(plan.Steps[3]) != 1 {
		t.Errorf("K5 steps misplaced: %v", plan.Steps)
	}
	if plan.Steps[3][0].PrefixLen != 4 {
		t.Errorf("deepest step PrefixLen = %d, want 4", plan.Steps[3][0].PrefixLen)
	}
	// Chain left inputs: first step from a neighborhood, later from buffers.
	if plan.Steps[1][0].LeftBuf != -1 {
		t.Error("first chain step should read a neighborhood")
	}
	if plan.Steps[2][0].LeftBuf != plan.Steps[1][0].Out {
		t.Error("second chain step should read the first buffer")
	}
}

func TestBuildPlanStepOrdering(t *testing.T) {
	// Invariant: every step's inputs exist before it runs — left buffers
	// are produced by an earlier (or same-depth, earlier-listed) step, and
	// LeftParent < Depth.
	pats := []*pattern.Pattern{
		pattern.House(), pattern.Cycle6Tri(), pattern.Clique(6),
		pattern.Prism(), pattern.CompleteBipartite(2, 3), pattern.CliqueMinus(6),
	}
	for _, p := range pats {
		res := Generate(p, Options{})
		for _, s := range res.Efficient {
			plan := BuildPlan(RelabeledPattern(p, s), p.N())
			produced := map[int]int{} // buffer -> producing depth
			for d := 0; d < plan.N; d++ {
				for _, st := range plan.Steps[d] {
					if st.Depth != d {
						t.Fatalf("%s %v: step depth mismatch", p, s)
					}
					if st.LeftBuf >= 0 {
						pd, ok := produced[st.LeftBuf]
						if !ok || pd > d {
							t.Fatalf("%s %v: step reads unproduced buffer", p, s)
						}
					} else if st.LeftParent < 0 || st.LeftParent >= d {
						t.Fatalf("%s %v: bad left parent %d at depth %d", p, s, st.LeftParent, d)
					}
					produced[st.Out] = d
				}
			}
			for d := 0; d < plan.N; d++ {
				c := plan.Cand[d]
				if c.Kind == CandBuffer {
					if pd, ok := produced[c.Buf]; !ok || pd >= d {
						t.Fatalf("%s %v: candidate buffer for depth %d produced at %d", p, s, d, pd)
					}
				}
				if c.Kind == CandNeighborhood && c.Parent >= d {
					t.Fatalf("%s %v: neighborhood parent not bound", p, s)
				}
			}
		}
	}
}
