package schedule

import (
	"testing"

	"graphpi/internal/pattern"
	"graphpi/internal/perm"
)

func TestParents(t *testing.T) {
	h := pattern.House() // square 0-2-3-1, roof 0-1-4
	// The paper's Figure 5 schedule A→B→C→D→E maps to our labels as
	// 0→1→2→3→4: E(4) is adjacent to A(0), B(1); D(3) to B? In our House,
	// 3 is adjacent to 1 and 2; 4 to 0 and 1.
	s := Schedule{Order: []uint8{0, 1, 2, 3, 4}}
	parents := s.Parents(h)
	want := [][]int{nil, {0}, {0}, {1, 2}, {0, 1}}
	for i := range want {
		if len(parents[i]) != len(want[i]) {
			t.Fatalf("Parents[%d] = %v, want %v", i, parents[i], want[i])
		}
		for j := range want[i] {
			if parents[i][j] != want[i][j] {
				t.Fatalf("Parents[%d] = %v, want %v", i, parents[i], want[i])
			}
		}
	}
}

func TestSuffixIndependent(t *testing.T) {
	h := pattern.House()
	// Schedule 0,1,2,3,4: last two searched are 3 and 4, which are not
	// adjacent in the House → suffix 2 (matches the paper: D and E are
	// searched in the innermost 2 loops).
	s := Schedule{Order: []uint8{0, 1, 2, 3, 4}}
	if got := s.SuffixIndependent(h); got != 2 {
		t.Errorf("SuffixIndependent = %d, want 2", got)
	}
	// Schedule ending with adjacent vertices 0,1 → suffix 1.
	s2 := Schedule{Order: []uint8{3, 2, 4, 0, 1}}
	if got := s2.SuffixIndependent(h); got != 1 {
		t.Errorf("SuffixIndependent = %d, want 1", got)
	}
	// Cycle6Tri ending with its independent triple {3,4,5} → 3.
	c := pattern.Cycle6Tri()
	s3 := Schedule{Order: []uint8{0, 1, 2, 3, 4, 5}}
	if got := s3.SuffixIndependent(c); got != 3 {
		t.Errorf("Cycle6Tri SuffixIndependent = %d, want 3", got)
	}
}

func TestGeneratePhase1(t *testing.T) {
	h := pattern.House()
	res := Generate(h, Options{KeepEliminated: true, NoDedup: true})
	if res.Classes != 120 {
		t.Errorf("Classes = %d, want 120 (no dedup)", res.Classes)
	}
	if len(res.Efficient)+len(res.Eliminated) != 120 {
		t.Errorf("efficient %d + eliminated %d != 120",
			len(res.Efficient), len(res.Eliminated))
	}
	// Every efficient schedule is prefix-connected and has independent
	// suffix ≥ k.
	order := make([]int, h.N())
	for _, s := range res.Efficient {
		for i, v := range s.Order {
			order[i] = int(v)
		}
		if !h.PrefixConnected(order) {
			t.Errorf("schedule %v not prefix connected", s)
		}
		if s.SuffixIndependent(h) < res.KEff {
			t.Errorf("schedule %v suffix %d < kEff=%d", s, s.SuffixIndependent(h), res.KEff)
		}
	}
	if res.K != 2 || res.KEff != 2 {
		t.Errorf("House k=%d kEff=%d, want 2/2", res.K, res.KEff)
	}
	// The paper's rejected example: schedules starting C, D, E (our 2,3,4)
	// must be eliminated.
	for _, s := range res.Efficient {
		if s.Order[0] == 2 && s.Order[1] == 3 && s.Order[2] == 4 {
			t.Errorf("paper's inefficient schedule %v survived", s)
		}
	}
}

func TestGenerateDedup(t *testing.T) {
	// Pentagon: |Aut| = 10, so 120 schedules form 12 classes.
	p := pattern.Pentagon()
	res := Generate(p, Options{KeepEliminated: true})
	if res.Classes != 12 {
		t.Errorf("Pentagon classes = %d, want 12", res.Classes)
	}
	// K5: all schedules equivalent.
	k5 := pattern.Clique(5)
	res = Generate(k5, Options{})
	if res.Classes != 1 || len(res.Efficient) != 1 {
		t.Errorf("K5 classes = %d efficient = %d, want 1/1", res.Classes, len(res.Efficient))
	}
}

func TestGeneratePhase2Filters(t *testing.T) {
	// For the House (k=2), phase 2 must remove connected schedules ending
	// in two adjacent vertices.
	h := pattern.House()
	all := Generate(h, Options{NoDedup: true, Phase1Only: true})
	filtered := Generate(h, Options{NoDedup: true})
	if len(filtered.Efficient) >= len(all.Efficient) {
		t.Errorf("phase 2 removed nothing: %d -> %d",
			len(all.Efficient), len(filtered.Efficient))
	}
	for _, s := range all.Efficient {
		if s.SuffixIndependent(h) < 2 {
			// must not be present in filtered
			for _, f := range filtered.Efficient {
				if f.String() == s.String() {
					t.Errorf("schedule %v should have been phase-2 eliminated", s)
				}
			}
		}
	}
}

func TestGenerateAlwaysNonEmpty(t *testing.T) {
	// Every connected pattern must retain at least one efficient schedule.
	pats := []*pattern.Pattern{
		pattern.Triangle(), pattern.Rectangle(), pattern.Pentagon(),
		pattern.House(), pattern.Cycle6Tri(), pattern.Prism(),
		pattern.CompleteBipartite(2, 3), pattern.Clique(6),
		pattern.CliqueMinus(6), pattern.StarN(5), pattern.PathN(6),
	}
	for _, p := range pats {
		res := Generate(p, Options{})
		if len(res.Efficient) == 0 {
			t.Errorf("%s: no efficient schedules (k=%d kEff=%d)", p, res.K, res.KEff)
		}
		if res.KEff > res.K {
			t.Errorf("%s: kEff %d exceeds k %d", p, res.KEff, res.K)
		}
	}
}

func TestKEffWhenFullKUnachievable(t *testing.T) {
	// The rectangle's only independent pairs are its diagonals, and ending
	// a schedule with a diagonal forces the other diagonal (disconnected)
	// as the prefix. The achievable suffix is therefore 1 < k = 2. Same
	// for the pentagon. Phase 2 must fall back instead of eliminating
	// everything.
	for _, p := range []*pattern.Pattern{pattern.Rectangle(), pattern.Pentagon()} {
		res := Generate(p, Options{})
		if res.K != 2 {
			t.Errorf("%s: k = %d, want 2", p, res.K)
		}
		if res.KEff != 1 {
			t.Errorf("%s: kEff = %d, want 1", p, res.KEff)
		}
		if len(res.Efficient) == 0 {
			t.Errorf("%s: no efficient schedules", p)
		}
	}
	// Cycle6Tri achieves its full k = 3.
	res := Generate(pattern.Cycle6Tri(), Options{})
	if res.KEff != 3 {
		t.Errorf("Cycle6Tri kEff = %d, want 3", res.KEff)
	}
	// K2,3 has k = 3 but its 3-side can never be a suffix of a connected
	// schedule (the 2-side is independent), so kEff = 2.
	res = Generate(pattern.CompleteBipartite(2, 3), Options{})
	if res.KEff != 2 {
		t.Errorf("K2,3 kEff = %d, want 2", res.KEff)
	}
}

func TestRelabeledPattern(t *testing.T) {
	h := pattern.House()
	s := Schedule{Order: []uint8{4, 0, 1, 2, 3}}
	r := RelabeledPattern(h, s)
	if !r.Isomorphic(h) {
		t.Fatal("relabeled pattern not isomorphic")
	}
	// In the relabeled pattern, vertex searched at depth i is i; its edges
	// must match the original schedule vertex's edges.
	for i := 0; i < h.N(); i++ {
		for j := 0; j < h.N(); j++ {
			if r.HasEdge(i, j) != h.HasEdge(int(s.Order[i]), int(s.Order[j])) {
				t.Fatalf("relabel mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMapRestrictions(t *testing.T) {
	s := Schedule{Order: []uint8{2, 0, 1}}
	// id(0) > id(1) in vertex names; 0 sits at position 1, 1 at position 2.
	got := MapRestrictions(s, [][2]uint8{{0, 1}})
	if got[0] != [2]uint8{1, 2} {
		t.Errorf("MapRestrictions = %v, want [1 2]", got)
	}
}

func TestPositionAndString(t *testing.T) {
	s := Schedule{Order: []uint8{2, 0, 1}}
	if s.Position(0) != 1 || s.Position(2) != 0 || s.Position(9) != -1 {
		t.Error("Position wrong")
	}
	if s.String() != "2→0→1" {
		t.Errorf("String = %q", s.String())
	}
	c := s.Clone()
	c.Order[0] = 9
	if s.Order[0] == 9 {
		t.Error("Clone aliases original")
	}
}

func TestCanonicalKeyGroupsEquivalentSchedules(t *testing.T) {
	// For the rectangle, schedules 0,1,2,3 and 1,2,3,0 are related by the
	// rotation automorphism and must collapse to one class.
	r := pattern.Rectangle()
	auts := r.Automorphisms()
	a := perm.Perm{0, 1, 2, 3}
	b := perm.Perm{1, 2, 3, 0}
	if canonicalKey(a, auts) != canonicalKey(b, auts) {
		t.Error("rotated schedules not in same class")
	}
	// 0,1,2,3 (walk around) vs 0,2,1,3 (diagonal first) are genuinely
	// different search structures.
	c := perm.Perm{0, 2, 1, 3}
	if canonicalKey(a, auts) == canonicalKey(c, auts) {
		t.Error("inequivalent schedules share class")
	}
}
