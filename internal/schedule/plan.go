package schedule

import "graphpi/internal/pattern"

// This file compiles a (pattern, schedule) pair into an explicit loop
// program: which candidate set each loop traverses and which intersection
// operations run at which depth. It is the structure the paper's code
// generator emits as C++ (Figure 5(b)); here it is interpreted by the
// execution engine and costed by the performance model, so both views stay
// consistent by construction.
//
// Intersections are hoisted to the depth where their last input becomes
// bound and shared across loops via common-prefix elimination — e.g. for the
// House, tmpAB = N(vA)∩N(vB) is computed once in the second loop and reused
// by the two inner loops, exactly as in the paper's pseudocode.

// CandKind describes where a loop's candidate vertices come from.
type CandKind uint8

const (
	// CandFull iterates every vertex of the data graph (outermost loop).
	CandFull CandKind = iota
	// CandNeighborhood iterates the adjacency of one bound vertex.
	CandNeighborhood
	// CandBuffer iterates a previously computed intersection buffer.
	CandBuffer
)

// Candidate describes the candidate set of one loop.
type Candidate struct {
	Kind CandKind
	// Parent is the depth whose bound vertex's neighborhood is iterated
	// (CandNeighborhood only).
	Parent int
	// Buf is the intersection buffer index (CandBuffer only).
	Buf int
	// NumParents is the number of pattern neighbors bound before this
	// depth (the number of neighborhoods intersected; 0 for CandFull).
	NumParents int
}

// Step is one intersection executed immediately after binding the vertex at
// Depth: Out = Left ∩ N(v_Depth), where Left is either the neighborhood of
// the bound vertex at LeftParent (when LeftBuf < 0) or buffer LeftBuf.
type Step struct {
	Depth      int
	LeftBuf    int // -1 → left input is N(v_LeftParent)
	LeftParent int
	Out        int
	// PrefixLen is the number of neighborhoods intersected into Out (≥ 2);
	// the cost model sizes inputs with it.
	PrefixLen int
}

// Plan is the compiled loop program for one schedule of one pattern.
type Plan struct {
	// N is the number of loops (pattern vertices).
	N int
	// Cand[i] describes the candidate set of depth i.
	Cand []Candidate
	// Steps[d] lists the intersections to run right after binding depth d.
	Steps [][]Step
	// NumBufs is the number of intersection buffers the program needs.
	NumBufs int
	// BufParents[b] is the bitmask of depths whose neighborhoods buffer b
	// intersects: buffer b holds ∩ N(v_d) over the set bits d. Consumers use
	// it to reason about containment — e.g. a buffer whose mask includes
	// depth 0 is a subset of N(v0), which licenses auxiliary-graph pruning.
	BufParents []uint16
}

// BuildPlan compiles the schedule against the pattern. The pattern here must
// be the *relabeled* pattern (vertex searched at depth i is named i), as
// produced by RelabeledPattern.
func BuildPlan(relabeled *pattern.Pattern, n int) Plan {
	p := Plan{
		N:     n,
		Cand:  make([]Candidate, n),
		Steps: make([][]Step, n),
	}
	// chainBuf maps a bitmask of parent depths to the buffer holding the
	// intersection of their neighborhoods.
	chainBuf := map[uint16]int{}
	for depth := 0; depth < n; depth++ {
		var parents []int
		for j := 0; j < depth; j++ {
			if relabeled.HasEdge(depth, j) {
				parents = append(parents, j)
			}
		}
		switch len(parents) {
		case 0:
			p.Cand[depth] = Candidate{Kind: CandFull}
		case 1:
			p.Cand[depth] = Candidate{
				Kind: CandNeighborhood, Parent: parents[0], NumParents: 1,
			}
		default:
			buf := p.ensureChain(chainBuf, parents)
			p.Cand[depth] = Candidate{
				Kind: CandBuffer, Buf: buf, NumParents: len(parents),
			}
		}
	}
	return p
}

// ensureChain materializes the intersection chain over the ascending parent
// list, sharing common prefixes with previously built chains, and returns
// the buffer index holding the full intersection.
func (p *Plan) ensureChain(chainBuf map[uint16]int, parents []int) int {
	prefixMask := uint16(1<<parents[0] | 1<<parents[1])
	prevBuf := -1 // left input of the first step is N(v_parents[0])
	if buf, ok := chainBuf[prefixMask]; ok {
		prevBuf = buf
	} else {
		buf = p.NumBufs
		p.NumBufs++
		chainBuf[prefixMask] = buf
		p.BufParents = append(p.BufParents, prefixMask)
		d := parents[1]
		p.Steps[d] = append(p.Steps[d], Step{
			Depth: d, LeftBuf: -1, LeftParent: parents[0], Out: buf, PrefixLen: 2,
		})
		prevBuf = buf
	}
	for t := 2; t < len(parents); t++ {
		prefixMask |= 1 << parents[t]
		if buf, ok := chainBuf[prefixMask]; ok {
			prevBuf = buf
			continue
		}
		buf := p.NumBufs
		p.NumBufs++
		chainBuf[prefixMask] = buf
		p.BufParents = append(p.BufParents, prefixMask)
		d := parents[t]
		p.Steps[d] = append(p.Steps[d], Step{
			Depth: d, LeftBuf: prevBuf, LeftParent: -1, Out: buf, PrefixLen: t + 1,
		})
		prevBuf = buf
	}
	return prevBuf
}
