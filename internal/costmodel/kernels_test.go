package costmodel

import (
	"testing"

	"graphpi/internal/codegen"
	"graphpi/internal/pattern"
	"graphpi/internal/schedule"
)

func planFor(p *pattern.Pattern) (schedule.Plan, int) {
	n := p.N()
	order := make([]uint8, n)
	for i := range order {
		order[i] = uint8(i)
	}
	s := schedule.Schedule{Order: order}
	return schedule.BuildPlan(schedule.RelabeledPattern(p, s), n), n
}

func TestFreezeKernelsShapeMatchesPlan(t *testing.T) {
	plan, n := planFor(pattern.House())
	p := Params{Vertices: 1000, Edges: 5000, Triangles: 2000}
	ks := FreezeKernels(plan, n, p, false)
	if len(ks) != n {
		t.Fatalf("got %d rows, want %d", len(ks), n)
	}
	for d := 0; d < n; d++ {
		if len(plan.Steps[d]) == 0 {
			if ks[d] != nil {
				t.Errorf("depth %d: kernels for a step-free level", d)
			}
			continue
		}
		if len(ks[d]) != len(plan.Steps[d]) {
			t.Errorf("depth %d: %d kernels for %d steps", d, len(ks[d]), len(plan.Steps[d]))
		}
		for i, k := range ks[d] {
			if k == codegen.KernelAdaptive {
				t.Errorf("depth %d step %d: frozen to adaptive", d, i)
			}
		}
	}
}

func TestFreezeKernelsPolicy(t *testing.T) {
	plan, n := planFor(pattern.Clique(4))
	// Hubs take priority: every step freezes to the bitmap probe.
	p := Params{Vertices: 1000, Edges: 5000, Triangles: 2000}
	for _, row := range FreezeKernels(plan, n, p, true) {
		for _, k := range row {
			if k != codegen.KernelBitmap {
				t.Fatalf("hasHubs: frozen to %s, want bitmap", k)
			}
		}
	}
	// Dense expectations (p2 close to p1): chains stay comparable to a
	// neighborhood, so the merge wins.
	dense := Params{Vertices: 100, Edges: 2000, Triangles: 30000}
	sawMerge := false
	for _, row := range FreezeKernels(plan, n, dense, false) {
		for _, k := range row {
			if k == codegen.KernelMerge {
				sawMerge = true
			}
		}
	}
	if !sawMerge {
		t.Error("dense graph froze no merge kernels")
	}
	// Sparse triangle-poor expectations: the chain collapses far below the
	// fresh neighborhood, so galloping the big side wins.
	sparse := Params{Vertices: 1_000_000, Edges: 10_000_000, Triangles: 100}
	sawGallop := false
	for _, row := range FreezeKernels(plan, n, sparse, false) {
		for _, k := range row {
			if k == codegen.KernelGallop {
				sawGallop = true
			}
		}
	}
	if !sawGallop {
		t.Error("sparse graph froze no gallop kernels")
	}
}
