package costmodel

import (
	"graphpi/internal/codegen"
	"graphpi/internal/schedule"
	"graphpi/internal/vertexset"
)

// FreezeKernels chooses an intersection kernel for every hoisted step of the
// plan from the model's expected input cardinalities, so the compiled tier
// skips the interpreter's per-execution size dispatch. The policy mirrors
// the adaptive runtime crossovers:
//
//   - hub bitmaps present → KernelBitmap (O(|small|) probes dominate on the
//     skewed graphs that have hubs; non-hub vertices fall back at run time),
//   - expected |N(v)| ≥ GallopRatio × expected |chain| → KernelGallop,
//   - otherwise → KernelMerge.
//
// The step Out = chain ∩ N(v) has expected input sizes SetSize(PrefixLen-1)
// for the accumulated chain and SetSize(1) for the fresh neighborhood.
func FreezeKernels(plan schedule.Plan, n int, p Params, hasHubs bool) [][]codegen.KernelChoice {
	out := make([][]codegen.KernelChoice, n)
	for d := 0; d < n && d < len(plan.Steps); d++ {
		if len(plan.Steps[d]) == 0 {
			continue
		}
		row := make([]codegen.KernelChoice, len(plan.Steps[d]))
		for i, st := range plan.Steps[d] {
			row[i] = freezeStep(st, p, hasHubs)
		}
		out[d] = row
	}
	return out
}

func freezeStep(st schedule.Step, p Params, hasHubs bool) codegen.KernelChoice {
	if hasHubs {
		return codegen.KernelBitmap
	}
	small := p.SetSize(st.PrefixLen - 1)
	big := p.SetSize(1)
	if small > big {
		small, big = big, small
	}
	if small > 0 && big >= float64(vertexset.GallopRatio)*small {
		return codegen.KernelGallop
	}
	return codegen.KernelMerge
}
