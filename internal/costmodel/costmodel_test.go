package costmodel

import (
	"math"
	"testing"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
)

func testParams() Params {
	// A Patents-like sparse graph: 100k vertices, 500k edges, 400k triangles.
	return Params{Vertices: 100000, Edges: 500000, Triangles: 400000}
}

func TestProbabilities(t *testing.T) {
	p := testParams()
	wantP1 := 2.0 * 500000 / (100000.0 * 100000.0)
	if got := p.P1(); math.Abs(got-wantP1) > 1e-15 {
		t.Errorf("P1 = %v, want %v", got, wantP1)
	}
	wantP2 := 400000.0 * 100000.0 / (1000000.0 * 1000000.0)
	if got := p.P2(); math.Abs(got-wantP2) > 1e-15 {
		t.Errorf("P2 = %v, want %v", got, wantP2)
	}
	if got := p.AvgDegree(); got != 10 {
		t.Errorf("AvgDegree = %v, want 10", got)
	}
	// Triangle-free graphs get the epsilon floor, not zero.
	nop2 := Params{Vertices: 100, Edges: 200, Triangles: 0}
	if nop2.P2() <= 0 {
		t.Error("P2 floor missing")
	}
	var zero Params
	if zero.P1() != 0 || zero.P2() != 0 || zero.AvgDegree() != 0 {
		t.Error("zero params should be zero")
	}
}

func TestSetSize(t *testing.T) {
	p := testParams()
	if got := p.SetSize(0); got != 100000 {
		t.Errorf("SetSize(0) = %v, want |V|", got)
	}
	if got := p.SetSize(1); math.Abs(got-10) > 1e-9 {
		t.Errorf("SetSize(1) = %v, want avg degree 10", got)
	}
	// Each extra neighborhood multiplies by p2.
	ratio := p.SetSize(3) / p.SetSize(2)
	if math.Abs(ratio-p.P2()) > 1e-12 {
		t.Errorf("SetSize ratio = %v, want p2 = %v", ratio, p.P2())
	}
}

func TestFilterProbabilities(t *testing.T) {
	// Paper: a single restriction id(A)>id(B) with A at loop 0, B at loop
	// 1 filters half the orders at loop 1 → f = [0, 1/2, 0, 0, 0].
	f := FilterProbabilities(5, [][2]uint8{{0, 1}})
	if f[0] != 0 || math.Abs(f[1]-0.5) > 1e-12 {
		t.Errorf("f = %v, want f[1] = 0.5", f)
	}
	for i := 2; i < 5; i++ {
		if f[i] != 0 {
			t.Errorf("f[%d] = %v, want 0", i, f[i])
		}
	}
	// Chained restrictions: id(0)>id(1) at loop 1 (keeps 1/2), then
	// id(1)>id(2) at loop 2. Orders with σ0>σ1>σ2 are 1/6 of all; of the
	// 1/2 surviving loop 1, 1/3 survive loop 2 → f[2] = 2/3.
	f = FilterProbabilities(3, [][2]uint8{{0, 1}, {1, 2}})
	if math.Abs(f[1]-0.5) > 1e-12 || math.Abs(f[2]-2.0/3.0) > 1e-12 {
		t.Errorf("chain f = %v, want [0, 0.5, 0.667]", f)
	}
	// No restrictions → all zero.
	f = FilterProbabilities(4, nil)
	for _, v := range f {
		if v != 0 {
			t.Errorf("no-restriction f = %v", f)
		}
	}
}

// buildFor compiles a plan and maps a restriction set for a pattern and
// schedule order.
func buildFor(t *testing.T, p *pattern.Pattern, order []uint8, rs restrict.Set) (schedule.Plan, [][2]uint8) {
	t.Helper()
	s := schedule.Schedule{Order: order}
	plan := schedule.BuildPlan(schedule.RelabeledPattern(p, s), p.N())
	raw := make([][2]uint8, len(rs))
	for i, r := range rs {
		raw[i] = [2]uint8{r.First, r.Second}
	}
	return plan, schedule.MapRestrictions(s, raw)
}

func TestEstimateOrdersSchedulesSensibly(t *testing.T) {
	// For the House on a sparse triangle-poor graph, the connected
	// schedule must be predicted far cheaper than the one starting with
	// the disconnected pair (2,4), whose third loop scans all |V| vertices.
	h := pattern.House()
	p := testParams()
	good, _ := buildFor(t, h, []uint8{0, 1, 2, 3, 4}, nil)
	bad, _ := buildFor(t, h, []uint8{2, 4, 0, 1, 3}, nil)
	cGood := Estimate(good, 5, nil, p, GraphPi).Cost
	cBad := Estimate(bad, 5, nil, p, GraphPi).Cost
	if cGood >= cBad {
		t.Errorf("connected schedule cost %g ≥ disconnected %g", cGood, cBad)
	}
	if cBad/cGood < 100 {
		t.Errorf("expected ≫100× gap, got %g", cBad/cGood)
	}
}

func TestEstimateRestrictionsReduceCost(t *testing.T) {
	// Adding a valid restriction set must never increase predicted cost,
	// and an outer-loop restriction should reduce it materially.
	h := pattern.House()
	p := testParams()
	sets, err := restrict.Generate(h, restrict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	order := []uint8{0, 1, 2, 3, 4}
	plan, _ := buildFor(t, h, order, nil)
	base := Estimate(plan, 5, nil, p, GraphPi).Cost
	for _, rs := range sets {
		_, mapped := buildFor(t, h, order, rs)
		c := Estimate(plan, 5, mapped, p, GraphPi).Cost
		if c > base+1e-6 {
			t.Errorf("restricted cost %g > unrestricted %g for %v", c, base, rs)
		}
	}
}

func TestEstimateDifferentRestrictionSetsDiffer(t *testing.T) {
	// The core Table-II phenomenon: for a fixed schedule, different
	// complete restriction sets have different predicted cost (the filter
	// lands in different loops).
	h := pattern.House()
	p := testParams()
	sets, err := restrict.Generate(h, restrict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) < 2 {
		t.Skip("need ≥2 sets")
	}
	order := []uint8{0, 1, 2, 3, 4}
	plan, _ := buildFor(t, h, order, nil)
	costs := map[float64]bool{}
	for _, rs := range sets {
		_, mapped := buildFor(t, h, order, rs)
		costs[Estimate(plan, 5, mapped, p, GraphPi).Cost] = true
	}
	if len(costs) < 2 {
		t.Error("all restriction sets predicted identical cost")
	}
}

func TestGraphZeroApproxIgnoresTriangles(t *testing.T) {
	h := pattern.House()
	rich := Params{Vertices: 1e5, Edges: 5e5, Triangles: 4e6}
	poor := Params{Vertices: 1e5, Edges: 5e5, Triangles: 4}
	order := []uint8{0, 1, 2, 3, 4}
	plan, _ := buildFor(t, h, order, nil)
	cRich := Estimate(plan, 5, nil, rich, GraphZeroApprox).Cost
	cPoor := Estimate(plan, 5, nil, poor, GraphZeroApprox).Cost
	if cRich != cPoor {
		t.Error("GraphZeroApprox should be blind to triangle counts")
	}
	gRich := Estimate(plan, 5, nil, rich, GraphPi).Cost
	gPoor := Estimate(plan, 5, nil, poor, GraphPi).Cost
	if gRich == gPoor {
		t.Error("GraphPi model should be sensitive to triangle counts")
	}
}

func TestRank(t *testing.T) {
	h := pattern.House()
	p := testParams()
	res := schedule.Generate(h, schedule.Options{})
	sets, err := restrict.Generate(h, restrict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]schedule.Plan, len(res.Efficient))
	posRestr := make([][][][2]uint8, len(res.Efficient))
	for i, s := range res.Efficient {
		plans[i] = schedule.BuildPlan(schedule.RelabeledPattern(h, s), h.N())
		for _, rs := range sets {
			raw := make([][2]uint8, len(rs))
			for j, r := range rs {
				raw[j] = [2]uint8{r.First, r.Second}
			}
			posRestr[i] = append(posRestr[i], schedule.MapRestrictions(s, raw))
		}
	}
	ranked := Rank(plans, h.N(), posRestr, p, GraphPi)
	if len(ranked) != len(res.Efficient)*len(sets) {
		t.Fatalf("ranked %d configs, want %d", len(ranked), len(res.Efficient)*len(sets))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Cost < ranked[i-1].Cost {
			t.Fatal("rankings not sorted")
		}
	}
}

func TestFromStats(t *testing.T) {
	g := graph.Complete(10)
	p := FromStats(g.Stats())
	if p.Vertices != 10 || p.Edges != 45 || p.Triangles != 120 {
		t.Errorf("FromStats = %+v", p)
	}
}
