package costmodel

import "graphpi/internal/schedule"

// Auxiliary-graph build-vs-reuse prediction. Materializing pruned adjacency
// rows at a schedule level trades a one-time build — one intersection per
// touched neighbor of the root — against cheaper intersections at every
// deeper level that can consume pruned rows. Both sides are priced with the
// same Eq. 6/7 plumbing the planner and the drift reports already use:
// expected set sizes from (p1, p2) and per-level trip counts from the loop
// sizes and exact restriction filter probabilities.

// AuxEstimate is the prediction for building auxiliary rows at one level.
type AuxEstimate struct {
	// Eligible reports whether any deeper step can consume pruned rows when
	// the auxiliary graph is built at this level.
	Eligible bool
	// BuildCost is the expected per-root cost of materializing the rows the
	// search touches (lazy build: discounted by the next level's filter).
	BuildCost float64
	// ReuseGain is the expected per-root intersection work saved below the
	// level: for every eligible step execution, the right operand shrinks
	// from a full row (SetSize(1)) to a pruned one (SetSize(2)).
	ReuseGain float64
}

// Worth reports whether the predicted reuse clears the build cost with a
// margin. The margin absorbs what the model cannot see — arena copies, the
// index upkeep, rows built but never reused — so the gate only fires when
// the win is predicted to be structural, not marginal.
func (e AuxEstimate) Worth() bool {
	return e.Eligible && e.ReuseGain > auxBuildMargin*e.BuildCost
}

// auxBuildMargin is the multiplier ReuseGain must clear over BuildCost.
const auxBuildMargin = 1.5

// EstimateAux prices building the auxiliary graph at level 0 (rows over
// N(v0), the one build level the engine implements). stepEligible[d][i]
// reports whether plan.Steps[d][i] may consume pruned rows (computed by the
// engine from the relabeled pattern and buffer masks); lastDepth is the
// deepest level whose steps execute (the IEP cut when IEP is active, n-1
// otherwise). The returned estimate is per root vertex — both sides scale by
// |V| identically, so the comparison is unaffected.
func EstimateAux(plan schedule.Plan, n int, stepEligible [][]bool, lastDepth int, posRestrictions [][2]uint8, p Params) AuxEstimate {
	if n < 3 || lastDepth < 2 {
		return AuxEstimate{}
	}
	b := Estimate(plan, n, posRestrictions, p, GraphPi)

	// Expected executions per root of the steps hoisted to depth d: the
	// product of surviving trip counts of loops 1..d (loop 0 contributes the
	// single bound root).
	execs := 1.0
	var reuse float64
	eligible := false
	for d := 1; d <= lastDepth && d < n; d++ {
		iters := b.LoopSize[d] * (1 - b.FilterProb[d])
		if iters < 0 {
			iters = 0
		}
		execs *= iters
		if d < 2 || d >= len(stepEligible) {
			continue
		}
		for i := range plan.Steps[d] {
			if i < len(stepEligible[d]) && stepEligible[d][i] {
				eligible = true
				// Per execution the right operand shrinks from a full
				// neighborhood to a root-pruned one; the intersection cost
				// model (paper: c = |A| + |B|) saves the difference.
				saving := p.SetSize(1) - p.SetSize(2)
				if saving > 0 {
					reuse += execs * saving
				}
			}
		}
	}
	if !eligible {
		return AuxEstimate{}
	}
	// Lazy build: only rows the depth-1 window admits are touched, each
	// costing one full-row intersection against N(v0) (merge: |A| + |B|).
	rows := b.LoopSize[1] * (1 - b.FilterProb[1])
	if rows < 0 {
		rows = 0
	}
	build := rows * 2 * p.SetSize(1)
	return AuxEstimate{Eligible: true, BuildCost: build, ReuseGain: reuse}
}
