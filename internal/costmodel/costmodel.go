// Package costmodel implements GraphPi's performance prediction model
// (paper §IV-C). For a configuration — a schedule plus a restriction set —
// it predicts the relative cost of the generated nested-loop program:
//
//	cost_i = l_i × (1 − f_i) × (o + c_i + cost_{i+1})
//
// where l_i is the candidate-set cardinality of loop i, f_i the probability
// that loop i's restriction filters an iteration, and c_i the intersection
// work hoisted into loop i. Cardinalities derive from three structural
// statistics of the data graph — |V|, |E| and the triangle count — through
// the probabilities
//
//	p1 = 2|E| / |V|²            (two vertices are neighbors)
//	p2 = tri·|V| / (2|E|)²      (two co-neighbors are themselves neighbors)
//
// and the expected cardinality of an intersection of m neighborhoods is
// |V| · p1 · p2^(m−1). The filter probabilities f_i are computed *exactly*
// by filtering the n! relative magnitude orders of the pattern's vertices
// through the restrictions in schedule order, as the paper prescribes.
package costmodel

import (
	"math"

	"graphpi/internal/graph"
	"graphpi/internal/perm"
	"graphpi/internal/schedule"
)

// Params carries the data-graph statistics the model consumes.
type Params struct {
	Vertices  float64
	Edges     float64
	Triangles float64
}

// FromStats extracts model parameters from graph statistics.
func FromStats(s graph.Stats) Params {
	return Params{
		Vertices:  float64(s.Vertices),
		Edges:     float64(s.Edges),
		Triangles: float64(s.Triangles),
	}
}

// P1 returns the neighbor probability 2|E|/|V|².
func (p Params) P1() float64 {
	if p.Vertices == 0 {
		return 0
	}
	return 2 * p.Edges / (p.Vertices * p.Vertices)
}

// P2 returns the co-neighbor closure probability tri·|V|/(2|E|)², floored at
// a small epsilon so triangle-free graphs still produce finite rankings.
func (p Params) P2() float64 {
	if p.Edges == 0 {
		return 0
	}
	e2 := 2 * p.Edges
	p2 := p.Triangles * p.Vertices / (e2 * e2)
	if p2 < 1e-9 {
		p2 = 1e-9
	}
	return p2
}

// AvgDegree returns 2|E|/|V|.
func (p Params) AvgDegree() float64 {
	if p.Vertices == 0 {
		return 0
	}
	return 2 * p.Edges / p.Vertices
}

// SetSize returns the expected cardinality of the intersection of m ≥ 0
// neighborhoods: |V| for m = 0 (a full scan), |V|·p1·p2^(m−1) otherwise.
func (p Params) SetSize(m int) float64 {
	if m <= 0 {
		return p.Vertices
	}
	return p.Vertices * p.P1() * math.Pow(p.P2(), float64(m-1))
}

// Breakdown exposes the per-loop factors behind a prediction, for
// inspection and experiment reporting.
type Breakdown struct {
	LoopSize   []float64 // l_i
	FilterProb []float64 // f_i
	Intersect  []float64 // c_i
	Cost       float64
}

// Model selects between GraphPi's full model and the degree-only,
// restriction-blind approximation used to reproduce the GraphZero baseline.
type Model uint8

const (
	// GraphPi uses triangle-based cardinalities and exact restriction
	// filter probabilities.
	GraphPi Model = iota
	// GraphZeroApprox ignores triangle structure (p2 ≈ p1) and restriction
	// filtering (f_i = 0), approximating the simpler estimator GraphZero
	// inherits from AutoMine. Used only by the baseline reproduction.
	GraphZeroApprox
)

// Estimate predicts the cost of running the compiled plan with the given
// position-space restrictions on a graph with the given parameters.
//
// relabeledRestrictions must be expressed on schedule positions (see
// schedule.MapRestrictions); n is the pattern size.
func Estimate(plan schedule.Plan, n int, posRestrictions [][2]uint8, p Params, model Model) Breakdown {
	b := Breakdown{
		LoopSize:   make([]float64, n),
		FilterProb: make([]float64, n),
		Intersect:  make([]float64, n),
	}
	p2 := p.P2()
	if model == GraphZeroApprox {
		p2 = p.P1()
	}
	setSize := func(m int) float64 {
		if m <= 0 {
			return p.Vertices
		}
		return p.Vertices * p.P1() * math.Pow(p2, float64(m-1))
	}

	for i := 0; i < n; i++ {
		b.LoopSize[i] = setSize(plan.Cand[i].NumParents)
		for _, st := range plan.Steps[i] {
			// Intersecting the (PrefixLen-1)-deep chain with one more
			// neighborhood costs the sum of both cardinalities (paper:
			// c2 = |N(vA)| + |N(vB)|).
			b.Intersect[i] += setSize(st.PrefixLen-1) + setSize(1)
		}
	}

	if model == GraphPi {
		b.FilterProb = FilterProbabilities(n, posRestrictions)
	}

	// cost_n..cost_1 by the paper's recursion, with a unit per-iteration
	// overhead so intersection-free loops still cost their trip count.
	cost := 0.0
	for i := n - 1; i >= 0; i-- {
		iters := b.LoopSize[i] * (1 - b.FilterProb[i])
		if iters < 0 {
			iters = 0
		}
		cost = iters * (1 + b.Intersect[i] + cost)
	}
	b.Cost = cost
	return b
}

// FilterProbabilities computes the exact f_i values: enumerate the n!
// relative magnitude orders of the n bound vertices, apply each loop's
// restrictions in schedule order, and record at which loop each order is
// first filtered out. f_i is the fraction of orders surviving loops < i
// that loop i filters (paper §IV-C, "Measurement of f_i").
func FilterProbabilities(n int, posRestrictions [][2]uint8) []float64 {
	f := make([]float64, n)
	if len(posRestrictions) == 0 {
		return f
	}
	// checks[i] lists restrictions whose later position is i.
	checks := make([][][2]uint8, n)
	for _, r := range posRestrictions {
		later := int(r[0])
		if int(r[1]) > later {
			later = int(r[1])
		}
		checks[later] = append(checks[later], r)
	}
	filteredAt := make([]int64, n+1) // n = never filtered
	perm.ForEach(n, func(sigma perm.Perm) bool {
		at := n
	scan:
		for i := 0; i < n; i++ {
			for _, r := range checks[i] {
				if sigma[r[0]] <= sigma[r[1]] {
					at = i
					break scan
				}
			}
		}
		filteredAt[at]++
		return true
	})
	surviving := float64(perm.Factorial(n))
	for i := 0; i < n; i++ {
		if surviving > 0 {
			f[i] = float64(filteredAt[i]) / surviving
		}
		surviving -= float64(filteredAt[i])
	}
	return f
}

// RankedConfig pairs a configuration index with its predicted cost; used by
// the planner to order candidate configurations.
type RankedConfig struct {
	ScheduleIdx    int
	RestrictionIdx int
	Cost           float64
}

// Rank estimates every (schedule, restriction-set) combination and returns
// the rankings sorted ascending by predicted cost. plans[i] must be the
// compiled plan of schedules[i]; posRestr[i][j] the position-mapped
// restriction set j under schedule i.
func Rank(plans []schedule.Plan, n int, posRestr [][][][2]uint8, p Params, model Model) []RankedConfig {
	var out []RankedConfig
	for si, plan := range plans {
		for ri, rs := range posRestr[si] {
			b := Estimate(plan, n, rs, p, model)
			out = append(out, RankedConfig{ScheduleIdx: si, RestrictionIdx: ri, Cost: b.Cost})
		}
	}
	sortRanked(out)
	return out
}

func sortRanked(rs []RankedConfig) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func less(a, b RankedConfig) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	if a.ScheduleIdx != b.ScheduleIdx {
		return a.ScheduleIdx < b.ScheduleIdx
	}
	return a.RestrictionIdx < b.RestrictionIdx
}
