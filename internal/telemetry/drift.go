package telemetry

import "math"

// Cost-model drift: the reconciliation of the planner's per-level
// predictions (costmodel.Estimate's Breakdown — the paper's Eq. 6/7 loop
// sizes and filter probabilities) against the counters a run actually
// accumulated. This is the empirical check on the thesis that the Eq.-based
// model ranks configurations correctly: a level whose actual/predicted
// intersection ratio strays far from its siblings' is where the model
// mispredicts on this graph.

// PredictedLevels carries the model's per-level factors in the neutral form
// the drift builder consumes (the engine maps costmodel.Breakdown into it,
// keeping this package dependency-free).
type PredictedLevels struct {
	// LoopSize is l_i, the expected candidate-set cardinality of loop i.
	LoopSize []float64
	// FilterProb is f_i, the probability loop i's restrictions filter an
	// iteration.
	FilterProb []float64
	// Steps is the number of intersections hoisted to level i.
	Steps []int
	// IEPCut is the level whose iterations evaluate the IEP suffix in
	// closed form (-1 when the run enumerates every level). Levels beyond
	// the cut never iterate, so they carry no actual counters.
	IEPCut int
	// Cost is the model's total predicted cost for the configuration.
	Cost float64
}

// LevelDrift reconciles one schedule level.
type LevelDrift struct {
	Level int `json:"level"`
	// PredictedIters is the expected number of surviving iterations of this
	// loop over the whole run: Π_{j≤i} l_j·(1−f_j).
	PredictedIters float64 `json:"predictedIters"`
	// PredictedCandidates is the expected number of candidates scanned:
	// (iterations of the enclosing loop) × l_i.
	PredictedCandidates float64 `json:"predictedCandidates"`
	// PredictedIntersections is the expected intersection count hoisted to
	// this level: iterations × steps.
	PredictedIntersections float64 `json:"predictedIntersections"`
	// Actual counters, copied from the run's LevelStats.
	ActualIters         uint64 `json:"actualIters"`
	ActualCandidates    uint64 `json:"actualCandidates"`
	ActualIntersections uint64 `json:"actualIntersections"`
	// Ratio is actual/predicted over the level's dominant quantity —
	// intersections when the level hoists any, candidates otherwise. NaN is
	// reported as 0 with Valid=false (a level predicted at zero).
	Ratio float64 `json:"ratio"`
	Valid bool    `json:"valid"`
	// CoveredByIEP marks levels the IEP suffix evaluates in closed form:
	// no per-iteration counters exist, so no ratio is computed.
	CoveredByIEP bool `json:"coveredByIEP,omitempty"`
}

// DriftReport is the run-level reconciliation.
type DriftReport struct {
	Levels []LevelDrift `json:"levels"`
	// PredictedCost is the model's total cost for the configuration.
	PredictedCost float64 `json:"predictedCost"`
	// TotalPredicted / TotalActual aggregate intersections over the
	// enumerated levels; OverallRatio is their quotient.
	TotalPredicted float64 `json:"totalPredictedIntersections"`
	TotalActual    uint64  `json:"totalActualIntersections"`
	OverallRatio   float64 `json:"overallRatio"`
}

// BuildDrift reconciles a run's stats against the model's predictions. The
// stats may be nil (an /explain request): the report then carries the
// predictions with zero actuals and invalid ratios.
func BuildDrift(pred PredictedLevels, stats *RunStats) *DriftReport {
	n := len(pred.LoopSize)
	rep := &DriftReport{PredictedCost: pred.Cost, Levels: make([]LevelDrift, 0, n)}
	enclosing := 1.0 // expected iterations of the loop enclosing level i
	for i := 0; i < n; i++ {
		iters := pred.LoopSize[i]
		if i < len(pred.FilterProb) {
			iters *= 1 - pred.FilterProb[i]
		}
		if iters < 0 {
			iters = 0
		}
		ld := LevelDrift{
			Level:               i,
			PredictedCandidates: enclosing * pred.LoopSize[i],
			PredictedIters:      enclosing * iters,
		}
		if i < len(pred.Steps) {
			ld.PredictedIntersections = ld.PredictedIters * float64(pred.Steps[i])
		}
		if pred.IEPCut >= 0 && i > pred.IEPCut {
			ld.CoveredByIEP = true
		}
		if stats != nil && i < len(stats.Levels) && !ld.CoveredByIEP {
			l := &stats.Levels[i]
			ld.ActualCandidates = l.Candidates
			ld.ActualIntersections = l.Intersections
			iterCount := l.Candidates
			if iterCount >= l.DupSkips {
				iterCount -= l.DupSkips
			}
			ld.ActualIters = iterCount
			ld.Ratio, ld.Valid = ratio(float64(l.Intersections), ld.PredictedIntersections)
			if !ld.Valid && ld.PredictedIntersections == 0 && l.Intersections == 0 {
				// Intersection-free level: fall back to candidate volume.
				ld.Ratio, ld.Valid = ratio(float64(l.Candidates), ld.PredictedCandidates)
			}
			rep.TotalPredicted += ld.PredictedIntersections
			rep.TotalActual += l.Intersections
		} else if stats == nil {
			rep.TotalPredicted += ld.PredictedIntersections
		}
		rep.Levels = append(rep.Levels, ld)
		enclosing = ld.PredictedIters
	}
	rep.OverallRatio, _ = ratio(float64(rep.TotalActual), rep.TotalPredicted)
	return rep
}

// ratio returns a/b guarding the degenerate denominators.
func ratio(a, b float64) (float64, bool) {
	if b == 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		return 0, false
	}
	return a / b, true
}
