// Package telemetry is GraphPi's instrumentation layer: per-level run
// statistics collected by every execution tier, latency histograms for the
// cluster control plane, a named-metric registry with Prometheus text
// exposition, cost-model drift reports, and an NDJSON span tracer.
//
// The design goal is near-zero overhead. Collection is opt-in per run: the
// engine carries a *RunStats pointer that is nil when telemetry is disabled,
// so the hot path pays one predictable nil check per candidate scan (not per
// candidate). When enabled, every worker records into its own private
// RunStats with plain (non-atomic) counters — no cache-line contention — and
// the shards are merged once after the task pool drains. Wall-clock reads
// never appear on count-bearing paths directly: the engine calls this
// package's sampled scan timers, keeping the `//graphpi:deterministic`
// closure free of time.Now while still estimating per-level wall time.
package telemetry

import "time"

// NumKernels enumerates the intersection kernel families the engine
// dispatches between; LevelStats.Kernels is indexed by these.
const (
	// KernelMerge is the linear two-pointer merge intersection.
	KernelMerge = iota
	// KernelGallop is the exponential-probe intersection for skewed sizes.
	KernelGallop
	// KernelBitmap is the O(|small|) hub-bitmap probe.
	KernelBitmap
	// KernelAux is an intersection served from an auxiliary-graph pruned
	// row (copied or intersected) instead of a full CSR row.
	KernelAux
	// NumKernels is the kernel family count.
	NumKernels
)

// KernelName returns the exposition label of a kernel family index.
func KernelName(k int) string {
	switch k {
	case KernelMerge:
		return "merge"
	case KernelGallop:
		return "gallop"
	case KernelBitmap:
		return "bitmap"
	case KernelAux:
		return "aux"
	}
	return "unknown"
}

// AuxStats counts auxiliary-graph activity over one run: lazily built pruned
// rows, the bytes they hold, and the reuse hits the build is amortized
// against. Zero when the run did not enable aux pruning. Drift reports carry
// the observed RunStats, so these land next to the per-level counters they
// explain.
type AuxStats struct {
	// Roots counts root subtrees under which an auxiliary graph was active.
	Roots uint64 `json:"roots"`
	// Rows counts pruned rows materialized; Bytes sums their storage.
	Rows  uint64 `json:"rows"`
	Bytes uint64 `json:"bytes"`
	// Hits counts intersections served from an already-built row; Skips
	// counts fallbacks to the full CSR row (budget or membership).
	Hits  uint64 `json:"hits"`
	Skips uint64 `json:"skips"`
}

func (a *AuxStats) merge(o *AuxStats) {
	a.Roots += o.Roots
	a.Rows += o.Rows
	a.Bytes += o.Bytes
	a.Hits += o.Hits
	a.Skips += o.Skips
}

// LevelStats holds the per-schedule-level counters one run accumulates.
// All fields are plain integers: a LevelStats belongs to one worker until
// the run's shards are merged.
type LevelStats struct {
	// Scans counts candidate-set scans entered at this level (one per
	// surviving iteration of the enclosing loop).
	Scans uint64 `json:"scans"`
	// Candidates sums the candidate-set sizes scanned at this level, after
	// restriction-window narrowing. CandMax is the largest single set.
	Candidates uint64 `json:"candidates"`
	CandMax    uint64 `json:"candMax"`
	// Intersections counts set intersections hoisted to this level, split
	// by kernel family in Kernels.
	Intersections uint64             `json:"intersections"`
	Kernels       [NumKernels]uint64 `json:"kernels"`
	// Prunes counts candidates removed by this level's restriction window
	// (the paper's asymmetric-restriction break, observed).
	Prunes uint64 `json:"prunes"`
	// DupSkips counts candidates rejected by residual duplicate checks.
	DupSkips uint64 `json:"dupSkips"`
	// IEPCounts counts inclusion–exclusion evaluations taken at this level
	// (nonzero only at the IEP cut; the levels below it never iterate).
	IEPCounts uint64 `json:"iepCounts"`
	// WallNS estimates the wall time spent in scans of this level,
	// including nested deeper levels. It is sampled: every scanSample-th
	// scan is timed and the measured duration scaled up, so the engine pays
	// two clock reads per scanSample scans instead of two per scan.
	WallNS int64 `json:"wallNS"`

	sampleTick uint64
}

// scanSampleShift controls wall-time sampling: 1 in 2^scanSampleShift scans
// is timed. 64 keeps the clock off the hot path while converging quickly on
// the skewed scan populations real graphs produce.
const scanSampleShift = 6

// ScanTimerStart returns a start token for the sampled scan timer: zero for
// the unsampled majority of calls (the caller skips the matching end), a
// wall-clock reading otherwise. Keeping the clock read here, behind a
// package boundary, is what keeps time.Now out of the engine's
// deterministic closure — the sample never influences a count.
func (l *LevelStats) ScanTimerStart() int64 {
	l.sampleTick++
	if l.sampleTick&(1<<scanSampleShift-1) != 0 {
		return 0
	}
	return time.Now().UnixNano()
}

// ScanTimerEnd accumulates a sampled scan duration, scaled by the sampling
// ratio. A zero token (unsampled call) is ignored.
func (l *LevelStats) ScanTimerEnd(start int64) {
	if start == 0 {
		return
	}
	l.WallNS += (time.Now().UnixNano() - start) << scanSampleShift
}

// Scan records entering one candidate scan of the given post-narrowing size,
// with pruned candidates removed by the restriction window.
func (l *LevelStats) Scan(size, pruned int) {
	l.Scans++
	l.Candidates += uint64(size)
	if uint64(size) > l.CandMax {
		l.CandMax = uint64(size)
	}
	l.Prunes += uint64(pruned)
}

// Intersect records one intersection dispatched to the given kernel family.
func (l *LevelStats) Intersect(kernel int) {
	l.Intersections++
	l.Kernels[kernel]++
}

// merge folds o into l.
func (l *LevelStats) merge(o *LevelStats) {
	l.Scans += o.Scans
	l.Candidates += o.Candidates
	if o.CandMax > l.CandMax {
		l.CandMax = o.CandMax
	}
	l.Intersections += o.Intersections
	for k := range l.Kernels {
		l.Kernels[k] += o.Kernels[k]
	}
	l.Prunes += o.Prunes
	l.DupSkips += o.DupSkips
	l.IEPCounts += o.IEPCounts
	l.WallNS += o.WallNS
}

// RunStats aggregates one run's per-level statistics. The engine allocates
// one RunStats per worker and merges them when the run completes, so the
// counters are plain integers with no synchronization.
type RunStats struct {
	// Levels is indexed by schedule position (0 = outermost loop).
	Levels []LevelStats `json:"levels"`
	// Aux aggregates auxiliary-graph build/reuse counters for the run.
	Aux AuxStats `json:"aux"`
}

// NewRunStats allocates statistics for a run over n schedule levels.
func NewRunStats(n int) *RunStats {
	return &RunStats{Levels: make([]LevelStats, n)}
}

// Level returns the stats slot for a schedule level, or nil when the level
// is out of range (defensive: tiers never produce one).
func (s *RunStats) Level(d int) *LevelStats {
	if s == nil || d < 0 || d >= len(s.Levels) {
		return nil
	}
	return &s.Levels[d]
}

// Merge folds another run's (or worker shard's) stats into s. Shards with a
// different level count are merged over the common prefix.
func (s *RunStats) Merge(o *RunStats) {
	if s == nil || o == nil {
		return
	}
	n := len(s.Levels)
	if len(o.Levels) < n {
		n = len(o.Levels)
	}
	for i := 0; i < n; i++ {
		s.Levels[i].merge(&o.Levels[i])
	}
	s.Aux.merge(&o.Aux)
}

// Reset zeroes every level in place, keeping the allocation.
func (s *RunStats) Reset() {
	for i := range s.Levels {
		s.Levels[i] = LevelStats{}
	}
	s.Aux = AuxStats{}
}

// TotalIntersections sums intersections over all levels.
func (s *RunStats) TotalIntersections() uint64 {
	var t uint64
	if s == nil {
		return 0
	}
	for i := range s.Levels {
		t += s.Levels[i].Intersections
	}
	return t
}

// TotalCandidates sums scanned candidates over all levels.
func (s *RunStats) TotalCandidates() uint64 {
	var t uint64
	if s == nil {
		return 0
	}
	for i := range s.Levels {
		t += s.Levels[i].Candidates
	}
	return t
}

// ClassifyIntersect maps the operand sizes of an adaptive intersection to
// the kernel family vertexset.Intersect would pick, given the gallop ratio
// it uses. Tiers that freeze the kernel at compile time attribute directly;
// the adaptive paths call this so attribution matches execution.
func ClassifyIntersect(lenA, lenB, gallopRatio int) int {
	small, large := lenA, lenB
	if small > large {
		small, large = large, small
	}
	if large >= gallopRatio*small {
		return KernelGallop
	}
	return KernelMerge
}
