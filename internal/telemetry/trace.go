package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer writes NDJSON span events — one JSON object per line — for the
// coarse phases of query execution: plan, compile, run, cluster-deal,
// request. A Tracer is safe for concurrent use; a nil *Tracer discards
// every event, so call sites need no enablement checks.
//
// Event schema (one line each):
//
//	{"ts":"2026-08-08T12:00:00.000000001Z","span":"plan","durMS":1.25,
//	 "attrs":{"graph":"web","pattern":"triangle","cache":"miss"}}
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewTracer wraps a writer; the caller owns closing it.
func NewTracer(w io.Writer) *Tracer {
	if w == nil {
		return nil
	}
	return &Tracer{w: w, enc: json.NewEncoder(w)}
}

// SpanEvent is the wire form of one span.
type SpanEvent struct {
	TS    string            `json:"ts"`
	Span  string            `json:"span"`
	DurMS float64           `json:"durMS"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span records a completed phase: its name, when it started, and optional
// attributes. The event timestamp is the span's start.
func (t *Tracer) Span(name string, start time.Time, attrs map[string]string) {
	if t == nil {
		return
	}
	ev := SpanEvent{
		TS:    start.UTC().Format(time.RFC3339Nano),
		Span:  name,
		DurMS: float64(time.Since(start)) / float64(time.Millisecond),
		Attrs: attrs,
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.enc.Encode(ev) // tracing is best-effort; a full disk must not fail queries
}
