package telemetry

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text-format payload the way
// `promtool check metrics` does, restricted to the rules that matter for a
// scrape to succeed and for the series to be well-formed:
//
//   - every line is a comment, blank, or `name[{labels}] value`;
//   - metric and label names match the Prometheus identifier grammar;
//   - a TYPE comment precedes the first sample of its family and appears at
//     most once per family;
//   - no duplicate samples (same name + label set);
//   - counters and histogram samples are finite and non-negative;
//   - histogram families have _bucket series with an `le` label, cumulative
//     non-decreasing bucket counts, a terminal `+Inf` bucket equal to
//     _count, and matching _sum/_count samples.
//
// It returns nil on a valid payload and a descriptive error otherwise. The
// service test suite and CI run it against the live /metrics endpoint.
func CheckExposition(data []byte) error {
	families := make(map[string]*promFamState)
	fam := func(name string) *promFamState {
		f, ok := families[name]
		if !ok {
			f = &promFamState{}
			families[name] = f
		}
		return f
	}
	type histState struct {
		lastLe  float64
		lastCum float64
		infSeen bool
		infVal  float64
		count   float64
		sawCnt  bool
		sawSum  bool
	}
	hists := make(map[string]*histState) // keyed by base name + non-le labels
	seen := make(map[string]bool)

	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			name, typ, ok := parseTypeComment(line)
			if !ok {
				continue // HELP and free comments pass through
			}
			f := fam(name)
			if f.typ != "" {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if f.sawSample {
				return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, typ, name)
			}
			f.typ = typ
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		key := name + "|" + canonicalLabels(labels)
		if seen[key] {
			return fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true

		base, suffix := splitHistSuffix(name)
		owner := fam(sampleFamily(name, families))
		owner.sawSample = true
		typ := owner.typ
		if typ == "" {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE", lineNo, name)
		}
		if typ == "counter" || typ == "histogram" {
			if math.IsNaN(value) || math.IsInf(value, 0) || value < 0 {
				return fmt.Errorf("line %d: %s sample %s has non-monotone-compatible value %v", lineNo, typ, name, value)
			}
		}
		if typ != "histogram" {
			continue
		}
		hkey := base + "|" + canonicalLabelsExcept(labels, "le")
		h, ok := hists[hkey]
		if !ok {
			h = &histState{lastLe: math.Inf(-1)}
			hists[hkey] = h
		}
		switch suffix {
		case "_bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket %s lacks le label", lineNo, name)
			}
			bound, err := parseLe(le)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			if bound <= h.lastLe {
				return fmt.Errorf("line %d: histogram %s bucket bounds not increasing (le=%s)", lineNo, base, le)
			}
			if value < h.lastCum {
				return fmt.Errorf("line %d: histogram %s bucket counts not cumulative", lineNo, base)
			}
			h.lastLe, h.lastCum = bound, value
			if math.IsInf(bound, 1) {
				h.infSeen, h.infVal = true, value
			}
		case "_sum":
			h.sawSum = true
		case "_count":
			h.sawCnt = true
			h.count = value
		default:
			return fmt.Errorf("line %d: histogram family %s has plain sample %s", lineNo, base, name)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, h := range hists {
		base := strings.SplitN(key, "|", 2)[0]
		if !h.infSeen {
			return fmt.Errorf("histogram %s lacks a +Inf bucket", base)
		}
		if !h.sawCnt || !h.sawSum {
			return fmt.Errorf("histogram %s lacks _sum/_count", base)
		}
		if h.infVal != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", base, h.infVal, h.count)
		}
	}
	return nil
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parseTypeComment extracts (name, type) from a `# TYPE name type` line.
func parseTypeComment(line string) (name, typ string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) >= 4 && fields[0] == "#" && fields[1] == "TYPE" {
		return fields[2], fields[3], true
	}
	return "", "", false
}

// parseSample splits a sample line into name, labels and value. Timestamps
// (an optional trailing integer) are accepted and ignored.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unbalanced label braces in %q", line)
		}
		if err := parseLabels(rest[i+1:end], labels); err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("sample %q has no value", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q malformed", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: %v", line, err)
	}
	return name, labels, v, nil
}

// parseLabels parses `k="v",k2="v2"` into the map.
func parseLabels(s string, into map[string]string) error {
	s = strings.TrimSpace(s)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q lacks '='", s)
		}
		k := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(k) {
			return fmt.Errorf("invalid label name %q", k)
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s value not quoted", k)
		}
		// Scan the quoted value honoring backslash escapes.
		i := 1
		var val strings.Builder
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				val.WriteByte(s[i+1])
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		if i >= len(s) {
			return fmt.Errorf("label %s value unterminated", k)
		}
		if _, dup := into[k]; dup {
			return fmt.Errorf("duplicate label %s", k)
		}
		into[k] = val.String()
		s = strings.TrimSpace(s[i+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLe(s string) (float64, error) {
	v, err := parseValue(s)
	if err != nil {
		return 0, fmt.Errorf("invalid le bound %q", s)
	}
	return v, nil
}

// splitHistSuffix splits a histogram series name into (base, suffix).
func splitHistSuffix(name string) (base, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), suf
		}
	}
	return name, ""
}

// promFamState tracks one metric family while validating an exposition.
type promFamState struct {
	typ       string
	sawSample bool
}

// sampleFamily resolves the family a sample belongs to: histogram series
// attach to their base family when one is declared.
func sampleFamily(name string, families map[string]*promFamState) string {
	base, suffix := splitHistSuffix(name)
	if suffix != "" {
		if f, ok := families[base]; ok && f.typ == "histogram" {
			return base
		}
	}
	return name
}

// canonicalLabels renders labels sorted for duplicate detection.
func canonicalLabels(labels map[string]string) string {
	return canonicalLabelsExcept(labels, "")
}

func canonicalLabelsExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == skip {
			continue
		}
		keys = append(keys, k)
	}
	// Insertion sort keeps this dependency-free and the label sets tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}
