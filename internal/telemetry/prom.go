package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): a minimal writer for
// the metric shapes GraphPi exports — counters, gauges and the fixed-bucket
// latency histograms. The companion validator (promcheck.go) is the
// "promtool check metrics"-style gate CI runs against the live endpoint.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Exposition accumulates metric families and renders them in the Prometheus
// text format. Families render in the order added; Add* calls with labels
// group samples under one family.
type Exposition struct {
	families []*promFamily
	byName   map[string]*promFamily
}

type promFamily struct {
	name, help, typ string
	samples         []promSample
}

type promSample struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels string // pre-rendered {k="v",...} or ""
	value  float64
}

// NewExposition creates an empty exposition.
func NewExposition() *Exposition {
	return &Exposition{byName: make(map[string]*promFamily)}
}

func (e *Exposition) family(name, help, typ string) *promFamily {
	if f, ok := e.byName[name]; ok {
		return f
	}
	f := &promFamily{name: name, help: help, typ: typ}
	e.byName[name] = f
	e.families = append(e.families, f)
	return f
}

// renderLabels renders a label map deterministically (sorted by key).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// AddCounter adds a counter sample; labels may be nil.
func (e *Exposition) AddCounter(name, help string, value float64, labels map[string]string) {
	f := e.family(name, help, "counter")
	f.samples = append(f.samples, promSample{labels: renderLabels(labels), value: value})
}

// AddGauge adds a gauge sample; labels may be nil.
func (e *Exposition) AddGauge(name, help string, value float64, labels map[string]string) {
	f := e.family(name, help, "gauge")
	f.samples = append(f.samples, promSample{labels: renderLabels(labels), value: value})
}

// AddHistogram adds a histogram family from a snapshot: cumulative _bucket
// series with `le` upper bounds in seconds, a +Inf bucket, _sum and _count.
func (e *Exposition) AddHistogram(name, help string, s HistogramSnapshot, labels map[string]string) {
	f := e.family(name, help, "histogram")
	var cum int64
	for _, b := range s.Buckets {
		if b.UpperNS >= int64(1)<<61 {
			continue // top bucket folds into +Inf below
		}
		cum += b.Count
		l := cloneLabels(labels)
		l["le"] = formatFloat(float64(b.UpperNS) / 1e9)
		f.samples = append(f.samples, promSample{suffix: "_bucket", labels: renderLabels(l), value: float64(cum)})
	}
	l := cloneLabels(labels)
	l["le"] = "+Inf"
	f.samples = append(f.samples, promSample{suffix: "_bucket", labels: renderLabels(l), value: float64(s.Count)})
	f.samples = append(f.samples, promSample{suffix: "_sum", labels: renderLabels(labels), value: float64(s.SumNS) / 1e9})
	f.samples = append(f.samples, promSample{suffix: "_count", labels: renderLabels(labels), value: float64(s.Count)})
}

func cloneLabels(labels map[string]string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// AddGathered appends every metric from a registry Gather pass.
func (e *Exposition) AddGathered(ms []GatheredMetric) {
	for _, m := range ms {
		switch m.Type {
		case "counter":
			e.AddCounter(m.Name, m.Help, float64(m.Value), nil)
		case "gauge":
			e.AddGauge(m.Name, m.Help, float64(m.Value), nil)
		case "histogram":
			e.AddHistogram(m.Name, m.Help, m.Hist, nil)
		}
	}
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return formatNum(v)
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteTo renders the exposition. Families render with their HELP and TYPE
// headers followed by their samples.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, f := range e.families {
		c, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)
		n += int64(c)
		if err != nil {
			return n, err
		}
		for _, s := range f.samples {
			c, err := fmt.Fprintf(w, "%s%s%s %s\n", f.name, s.suffix, s.labels, formatFloat(s.value))
			n += int64(c)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
