package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestRunStatsMerge(t *testing.T) {
	a := NewRunStats(3)
	b := NewRunStats(3)
	a.Levels[1].Scan(10, 2)
	a.Levels[1].Intersect(KernelMerge)
	b.Levels[1].Scan(20, 0)
	b.Levels[1].Intersect(KernelBitmap)
	b.Levels[2].DupSkips = 4
	a.Merge(b)
	l := a.Levels[1]
	if l.Scans != 2 || l.Candidates != 30 || l.CandMax != 20 || l.Prunes != 2 {
		t.Errorf("merged level 1 = %+v", l)
	}
	if l.Intersections != 2 || l.Kernels[KernelMerge] != 1 || l.Kernels[KernelBitmap] != 1 {
		t.Errorf("merged kernels = %+v", l)
	}
	if a.Levels[2].DupSkips != 4 {
		t.Errorf("dup skips not merged")
	}
	if a.TotalIntersections() != 2 || a.TotalCandidates() != 30 {
		t.Errorf("totals = %d/%d", a.TotalIntersections(), a.TotalCandidates())
	}
}

func TestScanTimerSampling(t *testing.T) {
	var l LevelStats
	timed := 0
	for i := 0; i < 1<<scanSampleShift*4; i++ {
		if tok := l.ScanTimerStart(); tok != 0 {
			timed++
			l.ScanTimerEnd(tok)
		}
	}
	if timed != 4 {
		t.Errorf("sampled %d scans, want 4", timed)
	}
	if l.WallNS < 0 {
		t.Errorf("negative wall estimate %d", l.WallNS)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Hour) // lands in the top (+Inf-ish) bucket
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	wantSum := int64(2*100 + int64(time.Millisecond) + int64(time.Hour))
	if s.SumNS != wantSum {
		t.Errorf("sum = %d want %d", s.SumNS, wantSum)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 4 {
		t.Errorf("bucket counts sum to %d", total)
	}
	// Merge with itself doubles everything.
	m := s
	m.Buckets = append([]Bucket(nil), s.Buckets...)
	m.Merge(s)
	if m.Count != 8 || m.SumNS != 2*wantSum {
		t.Errorf("merged = %+v", m)
	}
	if s.MeanNS() != wantSum/4 {
		t.Errorf("mean = %d", s.MeanNS())
	}
	h.Reset()
	if got := h.Snapshot(); got.Count != 0 || len(got.Buckets) != 0 {
		t.Errorf("reset snapshot = %+v", got)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestClassifyIntersect(t *testing.T) {
	if k := ClassifyIntersect(10, 12, 16); k != KernelMerge {
		t.Errorf("near-equal sizes → %s", KernelName(k))
	}
	if k := ClassifyIntersect(4, 100, 16); k != KernelGallop {
		t.Errorf("skewed sizes → %s", KernelName(k))
	}
	if k := ClassifyIntersect(100, 4, 16); k != KernelGallop {
		t.Errorf("skewed sizes (swapped) → %s", KernelName(k))
	}
}

func TestBuildDrift(t *testing.T) {
	// Two levels: root over 100 vertices, level 1 scans ~8 candidates per
	// root with one intersection each and filter prob 0.5.
	pred := PredictedLevels{
		LoopSize:   []float64{100, 8},
		FilterProb: []float64{0, 0.5},
		Steps:      []int{0, 1},
		IEPCut:     -1,
		Cost:       12345,
	}
	st := NewRunStats(2)
	st.Levels[0].Scan(100, 0)
	st.Levels[1].Scans = 100
	st.Levels[1].Candidates = 420
	st.Levels[1].Intersections = 380
	rep := BuildDrift(pred, st)
	if len(rep.Levels) != 2 {
		t.Fatalf("levels = %d", len(rep.Levels))
	}
	l1 := rep.Levels[1]
	// 100 root iters × 8×0.5 surviving level-1 iters × 1 step = 400.
	if l1.PredictedIntersections != 400 {
		t.Errorf("predicted intersections = %v", l1.PredictedIntersections)
	}
	if !l1.Valid || math.Abs(l1.Ratio-380.0/400.0) > 1e-12 {
		t.Errorf("ratio = %v valid=%v", l1.Ratio, l1.Valid)
	}
	if rep.PredictedCost != 12345 {
		t.Errorf("cost = %v", rep.PredictedCost)
	}
	if rep.TotalActual != 380 || rep.TotalPredicted != 400 {
		t.Errorf("totals = %d/%v", rep.TotalActual, rep.TotalPredicted)
	}
	if math.Abs(rep.OverallRatio-0.95) > 1e-12 {
		t.Errorf("overall ratio = %v", rep.OverallRatio)
	}

	// Level 0 hoists no intersections: ratio falls back to candidates.
	l0 := rep.Levels[0]
	if !l0.Valid || math.Abs(l0.Ratio-1.0) > 1e-12 {
		t.Errorf("level 0 ratio = %v valid=%v", l0.Ratio, l0.Valid)
	}
}

func TestBuildDriftIEPAndNilStats(t *testing.T) {
	pred := PredictedLevels{
		LoopSize:   []float64{10, 5, 5},
		FilterProb: []float64{0, 0, 0},
		Steps:      []int{0, 1, 1},
		IEPCut:     1,
	}
	rep := BuildDrift(pred, nil)
	if !rep.Levels[2].CoveredByIEP {
		t.Errorf("level 2 should be covered by IEP")
	}
	if rep.Levels[2].Valid {
		t.Errorf("IEP-covered level must not carry a ratio")
	}
	if rep.TotalPredicted == 0 {
		t.Errorf("nil-stats report should still carry predictions")
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	var h Histogram
	h.Observe(50 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	e := NewExposition()
	e.AddCounter("graphpi_test_jobs_total", "jobs processed", 42, nil)
	e.AddGauge("graphpi_test_queue_depth", "queued jobs", 3, map[string]string{"backend": "local"})
	e.AddGauge("graphpi_test_queue_depth", "queued jobs", 1, map[string]string{"backend": "cluster"})
	e.AddHistogram("graphpi_test_task_seconds", "per-task latency", h.Snapshot(), nil)

	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE graphpi_test_jobs_total counter",
		"graphpi_test_jobs_total 42",
		`graphpi_test_queue_depth{backend="cluster"} 1`,
		"# TYPE graphpi_test_task_seconds histogram",
		`graphpi_test_task_seconds_bucket{le="+Inf"} 2`,
		"graphpi_test_task_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Errorf("self-rendered exposition fails validation: %v\n%s", err, out)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":       "foo 1\n",
		"bad name":      "# TYPE 1bad counter\n1bad 1\n",
		"duplicate":     "# TYPE a counter\na 1\na 2\n",
		"neg counter":   "# TYPE a counter\na -1\n",
		"no inf bucket": "# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"inf != count":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 5\n",
		"type after sample": "# TYPE a counter\na 1\n# TYPE a gauge\n",
	}
	for name, payload := range cases {
		if err := CheckExposition([]byte(payload)); err == nil {
			t.Errorf("%s: expected validation error for:\n%s", name, payload)
		}
	}
	if err := CheckExposition([]byte("# HELP a ok\n# TYPE a gauge\na{x=\"y\"} 2.5 1700000000\n\n")); err != nil {
		t.Errorf("valid payload rejected: %v", err)
	}
}

func TestRegistryGather(t *testing.T) {
	// Registered once at package level below; Gather must expose them.
	testCounter.Inc()
	testCounter.Add(2)
	testGauge.Set(7)
	testHist.Observe(time.Millisecond)
	var found int
	for _, m := range Gather() {
		switch m.Name {
		case "graphpi_telemetrytest_ops_total":
			found++
			if m.Type != "counter" || m.Value < 3 {
				t.Errorf("counter gathered as %+v", m)
			}
		case "graphpi_telemetrytest_depth":
			found++
			if m.Type != "gauge" || m.Value != 7 {
				t.Errorf("gauge gathered as %+v", m)
			}
		case "graphpi_telemetrytest_lat_seconds":
			found++
			if m.Type != "histogram" || m.Hist.Count < 1 {
				t.Errorf("histogram gathered as %+v", m)
			}
		}
	}
	if found != 3 {
		t.Errorf("gathered %d of 3 test metrics", found)
	}
}

var (
	testCounter = NewCounter("graphpi_telemetrytest_ops_total", "test counter")
	testGauge   = NewGauge("graphpi_telemetrytest_depth", "test gauge")
	testHist    = NewHistogram("graphpi_telemetrytest_lat_seconds", "test histogram")
)

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate registration did not panic")
		}
	}()
	NewCounter("graphpi_telemetrytest_ops_total", "dup")
}

func TestTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	start := time.Now().Add(-2 * time.Millisecond)
	tr.Span("plan", start, map[string]string{"cache": "miss"})
	tr.Span("run", start, nil)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var ev SpanEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if ev.Span != "plan" || ev.Attrs["cache"] != "miss" || ev.DurMS <= 0 {
		t.Errorf("event = %+v", ev)
	}
	if _, err := time.Parse(time.RFC3339Nano, ev.TS); err != nil {
		t.Errorf("timestamp %q: %v", ev.TS, err)
	}

	var nilT *Tracer
	nilT.Span("noop", time.Now(), nil) // must not panic
}
