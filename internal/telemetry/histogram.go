package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets. Bucket i counts
// observations in [2^i, 2^(i+1)) nanoseconds (bucket 0 also absorbs 0 and
// 1ns); the top bucket absorbs everything ≥ 2^(histBuckets-1) ns (~34s).
const histBuckets = 36

// Histogram is a fixed-bucket log2 latency histogram safe for concurrent
// observation: a bucket increment is one atomic add, no allocation, no lock.
// The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	b := bits.Len64(ns)
	if b > 0 {
		b--
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	h.buckets[bucketOf(d)].Add(1)
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// Reset zeroes the histogram. Concurrent observers may smear one in-flight
// observation across the boundary; callers reset only between jobs, when the
// control plane is quiescent.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sumNS.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Bucket is one exposition bucket: the count of observations at or below
// UpperNS (cumulative counts are computed by the exposition layer).
type Bucket struct {
	UpperNS int64 `json:"upperNS"`
	Count   int64 `json:"count"`
}

// HistogramSnapshot is an immutable copy of a Histogram, the form embedded
// in JSON stats structs and rendered to Prometheus exposition. Zero-count
// buckets are elided.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	SumNS   int64    `json:"sumNS"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), SumNS: h.sumNS.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{UpperNS: upperOf(i), Count: n})
		}
	}
	return s
}

// upperOf returns the inclusive upper bound (ns) of bucket i.
func upperOf(i int) int64 {
	if i >= histBuckets-1 {
		return int64(1)<<62 - 1 // effectively +Inf; exposition maps it so
	}
	return int64(1)<<(i+1) - 1
}

// Clone returns a deep copy with a detached bucket slice — required before
// Merge when the receiver was shallow-copied from shared state, since Merge
// rewrites the bucket slice in place.
func (s HistogramSnapshot) Clone() HistogramSnapshot {
	s.Buckets = append([]Bucket(nil), s.Buckets...)
	return s
}

// Merge folds another snapshot into s (bucket-aligned union).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.SumNS += o.SumNS
	if len(o.Buckets) == 0 {
		return
	}
	merged := make(map[int64]int64, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		merged[b.UpperNS] += b.Count
	}
	for _, b := range o.Buckets {
		merged[b.UpperNS] += b.Count
	}
	s.Buckets = s.Buckets[:0]
	for i := 0; i < histBuckets; i++ {
		up := upperOf(i)
		if n, ok := merged[up]; ok && n > 0 {
			s.Buckets = append(s.Buckets, Bucket{UpperNS: up, Count: n})
		}
	}
}

// MeanNS returns the mean observation in nanoseconds (0 when empty).
func (s HistogramSnapshot) MeanNS() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNS / s.Count
}
