package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// The named-metric registry: long-lived process-level counters, gauges and
// histograms, declared once at package level by their owning package
// (`var mFoo = telemetry.NewCounter(...)`) and gathered by the Prometheus
// exposition endpoint. The statcheck analyzer (cmd/graphpivet) enforces the
// declaration convention: literal names, one registration per metric, no
// dead metrics.

// metricKind labels a registered metric for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type registered struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

var (
	regMu   sync.Mutex
	regList []registered
	regSeen = map[string]bool{}
)

func register(r registered) {
	regMu.Lock()
	defer regMu.Unlock()
	if regSeen[r.name] {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", r.name))
	}
	regSeen[r.name] = true
	regList = append(regList, r)
}

// Counter is a monotonically increasing named metric.
type Counter struct {
	v atomic.Int64
}

// NewCounter registers a counter under a unique name. Call once, at package
// level; registering a name twice panics (it would corrupt exposition).
func NewCounter(name, help string) *Counter {
	c := &Counter{}
	register(registered{name: name, help: help, kind: kindCounter, c: c})
	return c
}

// Inc adds 1. Add adds n (n must be ≥ 0 to keep the counter monotone).
func (c *Counter) Inc()         { c.v.Add(1) }
func (c *Counter) Add(n int64)  { c.v.Add(n) }
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a named metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// NewGauge registers a gauge under a unique name (same rules as NewCounter).
func NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	register(registered{name: name, help: help, kind: kindGauge, g: g})
	return g
}

// Set stores v; Value reads it.
func (g *Gauge) Set(v int64)  { g.v.Store(v) }
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewHistogram registers a latency histogram under a unique name.
func NewHistogram(name, help string) *Histogram {
	h := &Histogram{}
	register(registered{name: name, help: help, kind: kindHistogram, h: h})
	return h
}

// GatheredMetric is one registry entry materialized for exposition.
type GatheredMetric struct {
	Name string
	Help string
	Type string // "counter", "gauge" or "histogram"
	// Value holds counter/gauge readings; Hist holds histogram snapshots.
	Value int64
	Hist  HistogramSnapshot
}

// Gather snapshots every registered metric, sorted by name.
func Gather() []GatheredMetric {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]GatheredMetric, 0, len(regList))
	for _, r := range regList {
		m := GatheredMetric{Name: r.name, Help: r.help}
		switch r.kind {
		case kindCounter:
			m.Type, m.Value = "counter", r.c.Value()
		case kindGauge:
			m.Type, m.Value = "gauge", r.g.Value()
		case kindHistogram:
			m.Type, m.Hist = "histogram", r.h.Snapshot()
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
