// Package determinism machine-checks the engine's bit-identical-counts
// invariant: functions on the reduced-count path, marked with a
// `//graphpi:deterministic` directive on their declaration, must not depend
// on iteration order or ambient entropy — and neither may anything they call
// within the same package.
//
// Flagged inside the deterministic closure:
//
//   - `range` over a map (iteration order is randomized per run);
//   - calls to time.Now / time.Since / time.Until (wall-clock reads);
//   - any reference into math/rand or math/rand/v2.
//
// The closure is the transitive same-package static call graph rooted at the
// annotated functions. Calls into other packages are trusted (their own
// packages carry their own annotations); a callee that is intentionally
// nondeterministic in a value-preserving way can be cut out of the traversal
// with a `//graphpi:nondeterministic` directive, which documents the manual
// argument at the definition site.
package determinism

import (
	"go/ast"
	"go/types"

	"graphpi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "check that //graphpi:deterministic functions avoid map ranges, wall clocks and math/rand transitively",
	Run:  run,
}

// Directive marks a deterministic root; OptOut cuts a function out of the
// traversal (with a manual determinism argument at the definition site).
const (
	Directive = "//graphpi:deterministic"
	OptOut    = "//graphpi:nondeterministic"
)

func run(pass *analysis.Pass) error {
	funcs := pass.FuncsOf(true)

	// Index this package's function declarations by their object, and
	// collect the annotated roots.
	decls := make(map[types.Object]*ast.FuncDecl)
	var roots []types.Object
	optOut := make(map[types.Object]bool)
	for _, fd := range funcs {
		obj := pass.TypesInfo.Defs[fd.Name]
		if obj == nil {
			continue
		}
		decls[obj] = fd
		if analysis.HasDirective(fd.Doc, OptOut) {
			optOut[obj] = true
			continue
		}
		if analysis.HasDirective(fd.Doc, Directive) {
			roots = append(roots, obj)
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Transitive same-package closure over static calls.
	reached := make(map[types.Object]bool)
	queue := append([]types.Object(nil), roots...)
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		if reached[obj] || optOut[obj] {
			continue
		}
		reached[obj] = true
		fd, ok := decls[obj]
		if !ok {
			continue
		}
		enqueue := func(callee *types.Func) {
			if callee == nil || callee.Pkg() != pass.Pkg {
				return
			}
			if _, known := decls[callee]; known && !reached[callee] {
				queue = append(queue, callee)
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				enqueue(analysis.CalleeObj(pass.TypesInfo, n))
			case *ast.Ident:
				// A bare function reference (stored in a variable, returned
				// as a closure, passed as a value — the compiled-kernel
				// constructors do all three) pulls the function into the
				// closure even though no direct call site exists.
				if fn, ok := pass.TypesInfo.Uses[n].(*types.Func); ok {
					enqueue(fn)
				}
			}
			return true
		})
	}

	for obj := range reached {
		fd := decls[obj]
		if fd == nil {
			continue
		}
		checkBody(pass, fd)
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Range, "%s is on a deterministic count path but ranges over a map (iteration order is randomized)", name)
				}
			}
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				switch n.Sel.Name {
				case "Now", "Since", "Until":
					pass.Reportf(n.Sel.Pos(), "%s is on a deterministic count path but reads the wall clock (time.%s)", name, n.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(n.Sel.Pos(), "%s is on a deterministic count path but uses %s.%s", name, pkgName.Imported().Name(), n.Sel.Name)
			}
		}
		return true
	})
}
