package determinism_test

import (
	"testing"

	"graphpi/internal/analysis/analysistest"
	"graphpi/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "counts")
}
