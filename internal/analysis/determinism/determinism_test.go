package determinism_test

import (
	"testing"

	"graphpi/internal/analysis/analysistest"
	"graphpi/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "counts")
}

// TestDeterminismAuxBuildPath covers the auxiliary-graph build shape
// (internal/auxgraph): flat vertex-id-keyed scratch must pass clean, while a
// map-backed membership whose iteration order would reorder packed rows must
// be flagged transitively from the annotated Row entry point.
func TestDeterminismAuxBuildPath(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "auxrows")
}
