// Fixture for determinism: //graphpi:deterministic roots and their
// transitive same-package closure.
package counts

import (
	"math/rand/v2"
	"time"
)

// Count is a reduced-count entry point: its value must be bit-identical
// across runs and transports.
//
//graphpi:deterministic
func Count(tasks []int) int64 {
	var total int64
	for _, t := range tasks {
		total += kernel(t)
	}
	return total
}

// kernel is reached from Count, so it is checked too.
func kernel(t int) int64 {
	weights := map[int]int64{1: 2, 3: 4}
	var s int64
	for k, v := range weights { // want `kernel is on a deterministic count path but ranges over a map`
		s += int64(k) * v
	}
	if t > 0 {
		s += jitter()
	}
	return s
}

// jitter is also in the closure, two hops down.
func jitter() int64 {
	t := time.Now()                       // want `jitter is on a deterministic count path but reads the wall clock \(time.Now\)`
	return t.Unix() + int64(rand.IntN(3)) // want `jitter is on a deterministic count path but uses rand.IntN`
}

// seeded is cut out of the traversal: its determinism argument (fixed seed,
// order-independent reduction) is manual.
//
//graphpi:nondeterministic
func seeded() int64 {
	return int64(rand.IntN(10)) // not flagged: opted out
}

//graphpi:deterministic
func CountSeeded() int64 {
	return seeded()
}

// CompileCount mimics the compiled-kernel constructors: the leaf function
// is never called here, only referenced as a value and wrapped in closures.
// The reference alone must pull it into the checked closure.
//
//graphpi:deterministic
func CompileCount() func() int64 {
	leaf := leafCount
	return func() int64 { return leaf() + 1 }
}

// leafCount is reached via the function value in CompileCount.
func leafCount() int64 {
	return int64(rand.IntN(7)) // want `leafCount is on a deterministic count path but uses rand.IntN`
}

// Unannotated functions are unconstrained.
func Stats() time.Time {
	m := map[string]int{"a": 1}
	for range m {
		break
	}
	return time.Now()
}
