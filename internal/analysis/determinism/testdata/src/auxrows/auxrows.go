// Fixture for determinism over the auxiliary-graph build path
// (internal/auxgraph): the per-root scratch that materializes pruned
// adjacency rows lazily. Its annotated entry points (BeginRoot, Row) reach
// the row builder transitively, so any map-order dependence in the build —
// the classic way scratch structures leak nondeterminism into counts — must
// be flagged two hops from the annotation.
package auxrows

// aux mirrors the real scratch: flat slices keyed by vertex id, which is the
// deterministic-by-construction shape the analyzer should pass unflagged.
type aux struct {
	idx     []int32
	members []uint32
	arena   []uint32
	used    int
	rowOff  []int32
}

// BeginRoot switches the scratch to a new root subtree.
//
//graphpi:deterministic
func (a *aux) BeginRoot(members []uint32) {
	for _, u := range a.members {
		a.idx[u] = -1
	}
	a.members = members
	a.used = 0
	a.rowOff = a.rowOff[:0]
	for _, u := range members {
		a.idx[u] = -2
	}
}

// Row returns the pruned row of v, materializing it on first touch; build is
// reached from here, one hop inside the deterministic closure.
//
//graphpi:deterministic
func (a *aux) Row(v uint32, full []uint32) ([]uint32, bool) {
	switch i := a.idx[v]; {
	case i >= 0:
		return a.arena[a.rowOff[i]:a.rowOff[i+1]], true
	case i == -2:
		return a.build(v, full)
	default:
		return nil, false
	}
}

// build intersects against the flat membership index: vertex-id keyed
// slices, no maps — the shape that must stay clean.
func (a *aux) build(v uint32, full []uint32) ([]uint32, bool) {
	start := a.used
	for _, w := range full {
		if a.idx[w] != -1 {
			a.arena[a.used] = w
			a.used++
		}
	}
	if len(a.rowOff) == 0 {
		a.rowOff = append(a.rowOff, 0)
	}
	a.idx[v] = int32(len(a.rowOff) - 1)
	a.rowOff = append(a.rowOff, int32(a.used))
	return a.arena[start:a.used], true
}

// mapAux is the regression shape: the same scratch with map-backed
// membership, whose iteration order would reorder the packed rows run to
// run. Everything a count depends on must come off ordered storage.
type mapAux struct {
	members map[uint32]bool
	arena   []uint32
	used    int
}

//graphpi:deterministic
func (a *mapAux) Row(v uint32) []uint32 {
	return a.buildFromMap()
}

// buildFromMap is reached from the annotated Row: packing rows by ranging a
// map bakes the randomized order into the arena.
func (a *mapAux) buildFromMap() []uint32 {
	start := a.used
	for w := range a.members { // want `buildFromMap is on a deterministic count path but ranges over a map`
		a.arena[a.used] = w
		a.used++
	}
	return a.arena[start:a.used]
}

// Rebuild is maintenance off the count path: unannotated and unreached from
// any root, so its map range is fine.
func (a *mapAux) Rebuild() int {
	n := 0
	for range a.members {
		n++
	}
	return n
}
