package lockcheck_test

import (
	"testing"

	"graphpi/internal/analysis/analysistest"
	"graphpi/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "locks")
}
