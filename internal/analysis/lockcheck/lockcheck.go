// Package lockcheck machine-checks the `// guarded by <mu>` annotation
// convention: a struct field whose declaration comment contains the phrase
// `guarded by <name>` may only be read or written in functions that lock a
// mutex of that name first.
//
// The annotation names the guarding mutex by its field name:
//
//	mu    sync.Mutex
//	tr    transport // guarded by mu
//	state int       // guarded by mu
//
// The guard may live on another struct (`// guarded by the transport's mu`);
// the check matches the mutex by its final name component, so any
// `<x>.mu.Lock()` in the accessing function satisfies a `guarded by mu`
// annotation.
//
// The check is deliberately flow-light (this is a convention checker, not a
// race detector): an access to a guarded field is accepted when the
// enclosing function, earlier in source order, calls `<x>.Lock()` or
// `<x>.RLock()` where the locked expression's final component is the guard
// name (t.mu.Lock(), h.mu.Lock(), mu.Lock() ...). Functions whose name ends
// in "Locked" are callee-side helpers and exempt by convention, as are
// composite literals (construction happens before the value is shared) and
// test files. False positives — a field handed off before the struct
// escapes, for example — carry a `//graphpivet:ignore` comment with the
// reason.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"graphpi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "check that fields annotated `guarded by <mu>` are accessed under that mutex",
	Run:  run,
}

// guardRE extracts the guard name: the last dotted component after
// "guarded by", tolerating prose like "guarded by the transport's mu".
var guardRE = regexp.MustCompile(`guarded by (?:the )?(?:[\w]+'s )?([\w.]+)`)

func run(pass *analysis.Pass) error {
	guards := annotatedFields(pass)
	if len(guards) == 0 {
		return nil
	}

	for _, fd := range pass.FuncsOf(true) {
		if strings.HasSuffix(fd.Name.Name, "Locked") {
			continue
		}
		lockPos := lockSites(pass, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			guard, annotated := guards[selection.Obj()]
			if !annotated {
				return true
			}
			for _, lp := range lockPos[guard] {
				if lp < sel.Pos() {
					return true // a <guard>.Lock() precedes the access
				}
			}
			pass.Reportf(sel.Sel.Pos(), "%s is guarded by %s, but %s accesses it without locking %s first",
				selection.Obj().Name(), guard, fd.Name.Name, guard)
			return true
		})
	}
	return nil
}

// annotatedFields maps each field object bearing a `guarded by` annotation
// to its guard's (unqualified) name. Both the doc comment above the field
// and the trailing line comment are honored.
func annotatedFields(pass *analysis.Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardName(field.Doc)
				if guard == "" {
					guard = guardName(field.Comment)
				}
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = guard
					}
				}
			}
			return true
		})
	}
	return out
}

func guardName(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	m := guardRE.FindStringSubmatch(cg.Text())
	if m == nil {
		return ""
	}
	name := strings.TrimRight(m[1], ".")
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// lockSites collects, per mutex name, the source positions of
// `<...>.<name>.Lock()` and `<...>.<name>.RLock()` calls in the body.
func lockSites(pass *analysis.Pass, body *ast.BlockStmt) map[string][]token.Pos {
	out := make(map[string][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method := analysis.CalleeName(call)
		if method != "Lock" && method != "RLock" {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			out[recv.Name] = append(out[recv.Name], call.Pos())
		case *ast.SelectorExpr:
			out[recv.Sel.Name] = append(out[recv.Sel.Name], call.Pos())
		}
		return true
	})
	return out
}
