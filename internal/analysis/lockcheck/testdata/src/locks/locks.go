// Fixture for lockcheck: the `// guarded by <mu>` annotation convention.
package locks

import "sync"

type pool struct {
	mu sync.Mutex

	// live is the connected-worker count, guarded by mu.
	live  int
	stats []int64 // guarded by mu
	name  string  // unannotated: free access
}

func (p *pool) Good() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

func (p *pool) Bad() int {
	return p.live // want `live is guarded by mu, but Bad accesses it without locking mu first`
}

func (p *pool) BadWrite() {
	p.stats = append(p.stats, 1) // want `stats is guarded by mu` `stats is guarded by mu`
	p.mu.Lock()                  // too late: the access above precedes the Lock
	defer p.mu.Unlock()
}

func (p *pool) Free() string {
	return p.name // unannotated field: fine
}

// sumLocked is exempt by the Locked-suffix convention: callers hold mu.
func (p *pool) sumLocked() int64 {
	var s int64
	for _, v := range p.stats {
		s += v
	}
	return s
}

func (p *pool) rlockOK(other *sync.RWMutex) int {
	_ = other
	p.mu.Lock()
	n := p.live
	p.mu.Unlock()
	return n
}

// escape hatch: a considered unsynchronized access carries the directive.
func (p *pool) snapshotRacy() int {
	return p.live //graphpivet:ignore — monitoring-only read, staleness accepted
}

// cross-struct guards: the annotation names the owning struct's mutex; any
// lock of that name satisfies it.
type owner struct {
	mu    sync.RWMutex
	links []*slot
}

type slot struct {
	lost bool // guarded by the owner's mu
}

func (o *owner) sweep() {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for _, s := range o.links {
		if s.lost {
			return
		}
	}
}

func (o *owner) leak() bool {
	return o.links[0].lost // want `lost is guarded by mu, but leak accesses it without locking mu first`
}
