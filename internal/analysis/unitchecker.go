package analysis

// This file implements the (unpublished but stable) `go vet -vettool`
// driver protocol, so cmd/graphpivet can be run by the standard build
// machinery over the whole tree:
//
//	go build -o bin/graphpivet ./cmd/graphpivet
//	go vet -vettool=$PWD/bin/graphpivet ./...
//
// The protocol, as implemented by cmd/go (see src/cmd/go/internal/work's
// vetConfig and src/cmd/go/internal/vet/vetflag.go):
//
//   - `tool -flags` must print a JSON array of {Name,Bool,Usage} flag
//     descriptions; go vet forwards any of those the user set.
//   - `tool -V=full` must print "name version ..." (build-cache stamping).
//   - `tool [flags] path/to/vet.cfg` must analyze the single package unit
//     described by the JSON config: parse cfg.GoFiles, type-check against
//     the export data files in cfg.PackageFile (keyed through cfg.ImportMap),
//     write cfg.VetxOutput (facts; empty for graphpivet — its analyzers are
//     package-local), print diagnostics as "file:line:col: message" lines and
//     exit nonzero when there are findings.
//
// x/tools' unitchecker is the reference implementation; this one is cut down
// to what graphpivet needs: no facts, no JSON diagnostics, gc toolchain only.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// unitConfig mirrors cmd/go's vetConfig (the fields graphpivet consumes).
type unitConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// Main is the multichecker entry point for a vettool binary.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// Selection flags: -<name> / -<name>=true|false, plus the protocol's
	// -flags and -V=<mode>. Anything else must be the single cfg path.
	enabled := make(map[string]bool)
	var cfgPath string
	for _, arg := range args {
		switch {
		case arg == "-flags":
			printFlags(analyzers)
			return
		case strings.HasPrefix(arg, "-V"):
			// cmd/go stamps tools with `-V=full` and, for a "devel" version,
			// requires a trailing buildID= field (see cmd/go's toolID). Hash
			// the binary itself so rebuilding the tool invalidates vet's
			// cached results.
			fmt.Printf("%s version devel buildID=%s\n", progname, selfID())
			return
		case strings.HasPrefix(arg, "-"):
			name := strings.TrimPrefix(arg, "-")
			val := true
			if i := strings.IndexByte(name, '='); i >= 0 {
				val = name[i+1:] == "true"
				name = name[:i]
			}
			known := false
			for _, a := range analyzers {
				if a.Name == name {
					known = true
					break
				}
			}
			if !known {
				fmt.Fprintf(os.Stderr, "%s: unknown flag %s\n", progname, arg)
				os.Exit(2)
			}
			enabled[name] = val
			continue
		default:
			if cfgPath != "" {
				fmt.Fprintf(os.Stderr, "%s: usage: %s [-<analyzer>...] unit.cfg\n", progname, progname)
				os.Exit(2)
			}
			cfgPath = arg
		}
	}
	if cfgPath == "" {
		fmt.Fprintf(os.Stderr, "%s: this is a vet tool; run via go vet -vettool=%s ./...\n", progname, progname)
		os.Exit(2)
	}

	// Vet semantics: naming any analyzer runs only the named ones;
	// explicit -name=false excludes from the full set.
	run := analyzers
	anyOn := false
	for _, on := range enabled {
		if on {
			anyOn = true
		}
	}
	if len(enabled) > 0 {
		run = nil
		for _, a := range analyzers {
			on, named := enabled[a.Name]
			if (anyOn && named && on) || (!anyOn && !named) {
				run = append(run, a)
			}
		}
	}

	code, err := analyzeUnit(cfgPath, run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	os.Exit(code)
}

// selfID is a content hash of the running tool binary, used as its build ID.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:12])
}

func printFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range analyzers {
		usage := a.Doc
		if i := strings.IndexByte(usage, '\n'); i >= 0 {
			usage = usage[:i]
		}
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: usage})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
}

func analyzeUnit(cfgPath string, analyzers []*Analyzer) (exit int, err error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// graphpivet computes no cross-package facts, but cmd/go caches the
	// vetx artifact, so always produce (an empty) one.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return 0, fmt.Errorf("unsupported compiler %q", cfg.Compiler)
	}

	fset := token.NewFileSet()
	files, err := ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	// Imports resolve through the export data cmd/go already built: source
	// import path -> canonical path (ImportMap) -> export file (PackageFile).
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	pkg, info, err := TypeCheck(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	var diags []string
	report := func(a *Analyzer, d Diagnostic) {
		diags = append(diags, fmt.Sprintf("%s: %s [%s]", fset.Position(d.Pos), d.Message, a.Name))
	}
	if err := RunAnalyzers(analyzers, fset, files, pkg, info, report); err != nil {
		return 0, err
	}
	if len(diags) == 0 {
		return 0, nil
	}
	sort.Strings(diags)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2, nil
}
