// Package statcheck enforces the telemetry registry's declaration
// convention. The registry (internal/telemetry) panics at runtime when a
// metric name is registered twice, and silently accumulates dead entries
// when a metric is declared but never written — both are bugs a compile
// can't catch but a convention check can. For every call to
// telemetry.NewCounter / NewGauge / NewHistogram in production code the
// analyzer requires:
//
//   - the call initializes a package-level var (a registration inside a
//     function re-executes and panics the process the second time through);
//   - the metric name is a string literal matching ^graphpi_[a-z0-9_]+$
//     (literal names are greppable and render valid Prometheus exposition);
//   - the help string is a non-empty literal;
//   - no two registrations in the package share a name (the runtime panic,
//     caught statically);
//   - the declared var is actually used somewhere in the package — a
//     registered-but-never-touched metric exports a permanently-zero series
//     that reads as "this never happens" when really "this isn't counted".
//
// Test files are exempt: tests construct registries dynamically on purpose.
// A deliberate exception carries a trailing `//graphpivet:ignore`.
package statcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"graphpi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "statcheck",
	Doc:  "check telemetry metric registrations: package-level, literal graphpi_* names, unique, non-dead",
	Run:  run,
}

var nameRE = regexp.MustCompile(`^graphpi_[a-z0-9_]+$`)

// constructors are the registering entry points in the telemetry package.
var constructors = map[string]bool{
	"NewCounter":   true,
	"NewGauge":     true,
	"NewHistogram": true,
}

func run(pass *analysis.Pass) error {
	seen := make(map[string]bool) // literal metric names registered so far

	// Pass 1: package-level var declarations — the sanctioned home.
	// metricVars maps each declared var to its registration for the
	// dead-metric check.
	metricVars := make(map[types.Object]ast.Expr)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					call := registrationCall(pass, val)
					if call == nil {
						continue
					}
					checkArgs(pass, call, seen)
					if i < len(vs.Names) {
						if obj := pass.TypesInfo.ObjectOf(vs.Names[i]); obj != nil {
							metricVars[obj] = val
						}
					}
				}
			}
		}
	}

	// Pass 2: registrations anywhere else are re-executable → runtime panic.
	for _, fd := range pass.FuncsOf(true) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if rc := registrationCall(pass, call); rc != nil {
				pass.Reportf(call.Pos(),
					"telemetry metric registered inside %s: registration re-executes and panics on the second call; declare it once at package level",
					fd.Name.Name)
				checkArgs(pass, rc, seen)
			}
			return true
		})
	}

	// Pass 3: dead metrics. A declared var with no use outside its own
	// declaration exports a frozen zero series. Exported vars may be used
	// from other packages, which this single-package pass cannot see.
	used := make(map[types.Object]bool)
	for id, obj := range pass.TypesInfo.Uses {
		if _, tracked := metricVars[obj]; tracked && !pass.InTestFile(id.Pos()) {
			used[obj] = true
		}
	}
	for obj, val := range metricVars {
		if !used[obj] && !obj.Exported() {
			pass.Reportf(val.Pos(),
				"metric var %s is registered but never used: it exports a permanently-zero series", obj.Name())
		}
	}
	return nil
}

// registrationCall returns e as a telemetry constructor call, or nil. The
// receiver package is matched by import-path suffix so the golden fixture's
// stub "telemetry" package and the real graphpi/internal/telemetry both
// qualify.
func registrationCall(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := analysis.CalleeObj(pass.TypesInfo, call)
	if fn == nil || !constructors[fn.Name()] {
		return nil
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	if p := pkg.Path(); p != "telemetry" && !strings.HasSuffix(p, "/telemetry") {
		return nil
	}
	return call
}

// checkArgs validates the (name, help) arguments of one registration.
func checkArgs(pass *analysis.Pass, call *ast.CallExpr, seen map[string]bool) {
	if len(call.Args) < 2 {
		return // does not type-check against the real constructors anyway
	}
	name, ok := stringLiteral(call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"metric name must be a string literal (computed names defeat grep and duplicate detection)")
		return
	}
	if !nameRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"metric name %q does not match ^graphpi_[a-z0-9_]+$", name)
	}
	if seen[name] {
		pass.Reportf(call.Args[0].Pos(),
			"metric %q registered twice in this package: the runtime registry panics on the duplicate", name)
	}
	seen[name] = true
	if help, ok := stringLiteral(call.Args[1]); ok && strings.TrimSpace(help) == "" {
		pass.Reportf(call.Args[1].Pos(), "metric %q has an empty help string", name)
	}
}

// stringLiteral unquotes e when it is a basic string literal.
func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
