// Package telemetry is a stub of graphpi/internal/telemetry for the
// statcheck golden fixture: the constructor shapes statcheck matches on,
// without the process-global registry (the fixture type-checks against the
// stdlib source importer, which cannot resolve graphpi packages).
package telemetry

import "time"

type Counter struct{ v int64 }

func NewCounter(name, help string) *Counter { _, _ = name, help; return &Counter{} }
func (c *Counter) Inc()                     { c.v++ }
func (c *Counter) Add(n int64)              { c.v += n }

type Gauge struct{ v int64 }

func NewGauge(name, help string) *Gauge { _, _ = name, help; return &Gauge{} }
func (g *Gauge) Set(v int64)            { g.v = v }

type Histogram struct{ n int64 }

func NewHistogram(name, help string) *Histogram { _, _ = name, help; return &Histogram{} }
func (h *Histogram) Observe(d time.Duration)    { _ = d; h.n++ }
