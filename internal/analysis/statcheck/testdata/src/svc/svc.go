// Package svc is the statcheck golden fixture: the sanctioned package-level
// registration pattern next to every convention violation the analyzer must
// catch — in-function registration, non-literal and malformed names, empty
// help, duplicates, and registered-but-never-used metrics.
package svc

import (
	"fmt"
	"time"

	"telemetry"
)

// The sanctioned shape: package-level vars, literal graphpi_* names,
// non-empty help, every var written somewhere below.
var (
	mQueries = telemetry.NewCounter("graphpi_fixture_queries_total", "Queries served.")
	mDepth   = telemetry.NewGauge("graphpi_fixture_queue_depth", "Jobs waiting for a slot.")
	mLatency = telemetry.NewHistogram("graphpi_fixture_latency_seconds", "End-to-end query latency.")
)

// Exported and unused here: another package may write it, so statcheck
// stays quiet about it.
var MErrors = telemetry.NewCounter("graphpi_fixture_errors_total", "Failed queries.")

// Unexported and never touched again: a permanently-zero series.
var mDead = telemetry.NewCounter("graphpi_fixture_dead_total", "Never incremented.") // want `metric var mDead is registered but never used`

// Name violations, each used below so only the name finding fires.
var mCaps = telemetry.NewCounter("graphpi_Fixture_Caps", "Uppercase in the name.")        // want `does not match`
var mNoPrefix = telemetry.NewCounter("fixture_queries_total", "Missing graphpi_ prefix.") // want `does not match`

// Computed names defeat grep and the duplicate check.
var mComputed = telemetry.NewCounter(fmt.Sprintf("graphpi_fixture_%d", 3), "Computed name.") // want `must be a string literal`

// The registry panics on a duplicate at runtime; statcheck catches it here.
var mDup = telemetry.NewCounter("graphpi_fixture_queries_total", "Duplicate of mQueries.") // want `registered twice`

// Help must say something.
var mSilent = telemetry.NewGauge("graphpi_fixture_silent", "   ") // want `empty help string`

func Serve() {
	mQueries.Inc()
	mDepth.Set(1)
	mLatency.Observe(time.Millisecond)
	mCaps.Inc()
	mNoPrefix.Inc()
	mComputed.Inc()
	mDup.Inc()
	mSilent.Set(0)

	// Registration inside a function re-executes per call and panics the
	// process the second time through.
	again := telemetry.NewCounter("graphpi_fixture_again_total", "Re-registered per call.") // want `registered inside Serve`
	again.Inc()

	// A deliberate, documented exception is suppressible.
	once := telemetry.NewGauge("graphpi_fixture_once", "Guarded by sync.Once upstream.") //graphpivet:ignore — constructed under a Once
	once.Set(2)
}
