package statcheck_test

import (
	"testing"

	"graphpi/internal/analysis/analysistest"
	"graphpi/internal/analysis/statcheck"
)

func TestStatcheck(t *testing.T) {
	analysistest.Run(t, "testdata", statcheck.Analyzer, "svc", "telemetry")
}
