package ioerr_test

import (
	"testing"

	"graphpi/internal/analysis/analysistest"
	"graphpi/internal/analysis/ioerr"
)

func TestIoerr(t *testing.T) {
	analysistest.Run(t, "testdata", ioerr.Analyzer, "cluster")
}
