// Fixture for ioerr: discarded write/flush/close errors in a wire-protocol
// package (the check gates on packages named cluster or graph).
package cluster

import (
	"bufio"
	"bytes"
	"io"
	"os"
)

func writeFrame(w io.Writer, typ uint8, payload []byte) error {
	_, err := w.Write(append([]byte{typ}, payload...))
	return err
}

type conn struct{ w io.Writer }

func (c *conn) write(typ uint8, payload []byte) error {
	return writeFrame(c.w, typ, payload)
}

func reject(c *conn, msg string) error {
	c.write(1, []byte(msg)) // want `reject discards the error from write`
	return io.ErrClosedPipe
}

func rejectExplicit(c *conn, msg string) error {
	// Best-effort report on an already-failing path: explicit discard OK.
	_ = c.write(1, []byte(msg))
	return io.ErrClosedPipe
}

func handled(c *conn) error {
	if err := c.write(2, nil); err != nil {
		return err
	}
	return nil
}

func bareFrame(w io.Writer) {
	writeFrame(w, 3, nil) // want `bareFrame discards the error from writeFrame`
}

func snapshot(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `snapshot defers Close on a written-to value`
	bw := bufio.NewWriter(f)
	if _, err := bw.Write(data); err != nil {
		return err
	}
	bw.Flush() // want `snapshot discards the error from Flush`
	return nil
}

func load(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // read-only handle: deferred Close discard is fine
	return io.ReadAll(f)
}

func closeDropped(f *os.File) {
	f.Close() // want `closeDropped discards the error from Close`
}

func closeExplicit(f *os.File) {
	_ = f.Close() // considered and dropped: fine
}

func buffered(data []byte) []byte {
	var buf bytes.Buffer
	buf.Write(data) // *bytes.Buffer never fails: exempt
	return buf.Bytes()
}
