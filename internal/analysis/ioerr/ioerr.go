// Package ioerr machine-checks the cluster and graph IO discipline: frame
// and snapshot write errors, flushes, and the Close of a written-to handle
// carry the only evidence that bytes reached their destination, so
// discarding them silently is forbidden.
//
// In packages named cluster or graph (the wire protocol and the on-disk
// snapshot formats), ioerr flags:
//
//   - an expression statement discarding the error of a write-family call:
//     writeFrame, write, Write*, Flush, Sync or Close (never-failing writers
//     like *bytes.Buffer and *strings.Builder are exempt);
//   - a `defer x.Close()` that discards the error when x is also written to
//     in the same function — the deferred Close is the write path's last
//     failure point, so its error must reach the caller.
//
// An explicit `_ = call(...)` assignment is accepted as a documented
// discard: it states that the error was considered and deliberately
// dropped (a best-effort error report on an already-failing connection, a
// read-side Close). The cleanup that introduced this check converted every
// silent discard to either real handling or the explicit form.
package ioerr

import (
	"go/ast"
	"go/types"
	"strings"

	"graphpi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ioerr",
	Doc:  "check that frame/snapshot write and Close errors are not silently discarded",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	switch pass.Pkg.Name() {
	case "cluster", "graph":
	default:
		return nil
	}

	for _, fd := range pass.FuncsOf(true) {
		written := writtenValues(pass, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(pass, fd, call, written, false)
				}
			case *ast.DeferStmt:
				checkDiscard(pass, fd, n.Call, written, true)
			case *ast.GoStmt:
				return true // bodies of `go func(){...}` are walked as part of the inspect
			}
			return true
		})
	}
	return nil
}

// checkDiscard reports a write-family call whose error result is dropped.
func checkDiscard(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, written map[types.Object]bool, deferred bool) {
	name := analysis.CalleeName(call)
	if !writeFamily(name) {
		return
	}
	if !returnsError(pass, call) {
		return
	}
	if neverFails(pass, call) {
		return
	}
	if name == "Close" || name == "close" {
		// Close on a read-only handle may be discarded when deferred; a
		// deferred Close of a written-to value loses the final write error.
		if deferred && !isWritten(pass, call, written) {
			return
		}
		if deferred {
			pass.Reportf(call.Pos(), "%s defers Close on a written-to value and discards its error; the final write failure is lost (return it, or `_ =` with a reason)", fd.Name.Name)
			return
		}
		pass.Reportf(call.Pos(), "%s discards the error from Close; handle it or discard explicitly with `_ =`", fd.Name.Name)
		return
	}
	pass.Reportf(call.Pos(), "%s discards the error from %s; a lost write error here breaks the wire/snapshot contract (handle it, or `_ =` with a reason)", fd.Name.Name, name)
}

func writeFamily(name string) bool {
	switch name {
	case "Flush", "Sync", "Close", "close":
		return true
	}
	return strings.HasPrefix(name, "write") || strings.HasPrefix(name, "Write")
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// neverFails exempts receivers whose write family cannot return a non-nil
// error in practice.
func neverFails(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	switch t.String() {
	case "*bytes.Buffer", "bytes.Buffer", "*strings.Builder", "strings.Builder":
		return true
	}
	return false
}

// writtenValues collects objects that a write-family call writes to in this
// function: method receivers of Write*/Flush/Sync calls and arguments of
// write-family function calls.
func writtenValues(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := analysis.CalleeName(call)
		wraps := name == "NewWriter" || name == "NewWriterSize" // bufio-style wrapping is write intent
		if !wraps && (!writeFamily(name) || name == "Close" || name == "close") {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isWritten reports whether the Close call's receiver is one of the
// function's written-to values.
func isWritten(pass *analysis.Pass, call *ast.CallExpr, written map[types.Object]bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	return obj != nil && written[obj]
}
