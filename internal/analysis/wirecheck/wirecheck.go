// Package wirecheck verifies that every wire-protocol message constant is
// fully plumbed: a `msg*` constant that exists but is never written to a
// peer, or written but never matched on the receive side, is a protocol hole
// — exactly the "added msgAck, forgot a dispatch arm" class of bug that a
// frame-type table makes easy to introduce.
//
// The check is convention-driven and fires on any package that declares two
// or more package-level uint8 constants named `msgX...` (in graphpi, that is
// internal/cluster's wire.go). For each such constant it requires:
//
//   - a send site: the constant (or a local variable it was assigned to) is
//     passed as an argument to a function or method whose name is `write` or
//     `writeFrame`;
//   - a dispatch site: the constant appears in a switch `case` clause or in
//     an ==/!= comparison (the receive paths match frame types both ways).
//
// A deliberately one-way constant can be excused with a trailing
// `//graphpivet:ignore` comment on its declaration line.
package wirecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"graphpi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wirecheck",
	Doc:  "check that every msg* wire constant has a send site and a dispatch site",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	consts := wireConstants(pass)
	if len(consts) < 2 {
		return nil // not a wire-protocol package
	}

	sent := make(map[types.Object]bool)
	dispatched := make(map[types.Object]bool)

	for _, fd := range pass.FuncsOf(false) {
		// One-hop value flow: locals assigned from msg constants count as
		// every constant they might hold when sent (e.g. `reply := msgRetry;
		// if done { reply = msgNoWork }; write(reply, nil)`).
		aliases := make(map[types.Object][]types.Object) // local var -> msg consts
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
				for i, rhs := range as.Rhs {
					c := constObj(pass, consts, rhs)
					if c == nil {
						continue
					}
					if id, ok := as.Lhs[i].(*ast.Ident); ok {
						if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
							aliases[v] = append(aliases[v], c)
						}
					}
				}
			}
			return true
		})

		resolve := func(e ast.Expr) []types.Object {
			if c := constObj(pass, consts, e); c != nil {
				return []types.Object{c}
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				return aliases[pass.TypesInfo.ObjectOf(id)]
			}
			return nil
		}

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				name := analysis.CalleeName(n)
				if name != "write" && name != "writeFrame" {
					return true
				}
				for _, arg := range n.Args {
					for _, c := range resolve(arg) {
						sent[c] = true
					}
				}
			case *ast.CaseClause:
				for _, e := range n.List {
					if c := constObj(pass, consts, e); c != nil {
						dispatched[c] = true
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					if c := constObj(pass, consts, n.X); c != nil {
						dispatched[c] = true
					}
					if c := constObj(pass, consts, n.Y); c != nil {
						dispatched[c] = true
					}
				}
			}
			return true
		})
	}

	for _, c := range consts {
		switch {
		case !sent[c.obj] && !dispatched[c.obj]:
			pass.Reportf(c.pos, "wire constant %s is declared but never sent or dispatched", c.obj.Name())
		case !sent[c.obj]:
			pass.Reportf(c.pos, "wire constant %s is never sent (no write/writeFrame call passes it)", c.obj.Name())
		case !dispatched[c.obj]:
			pass.Reportf(c.pos, "wire constant %s is never dispatched (no switch case or ==/!= comparison matches it)", c.obj.Name())
		}
	}
	return nil
}

type wireConst struct {
	obj types.Object
	pos token.Pos
}

// wireConstants collects package-level uint8 constants named msg<Upper>...
func wireConstants(pass *analysis.Pass) []wireConst {
	var out []wireConst
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "msg") || len(name.Name) < 4 ||
						!unicode.IsUpper(rune(name.Name[3])) {
						continue
					}
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if b, ok := obj.Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Uint8 {
						continue
					}
					out = append(out, wireConst{obj: obj, pos: name.Pos()})
				}
			}
		}
	}
	return out
}

// constObj resolves an expression to one of the wire constants, if it is a
// direct reference to one.
func constObj(pass *analysis.Pass, consts []wireConst, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	for _, c := range consts {
		if c.obj == obj {
			return obj
		}
	}
	return nil
}
