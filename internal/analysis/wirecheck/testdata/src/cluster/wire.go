// Fixture for wirecheck: a miniature wire protocol following the
// internal/cluster conventions — msg* uint8 constants, writeFrame/write send
// helpers, switch- and comparison-based dispatch.
package cluster

import "io"

const (
	msgHello uint8 = iota + 1
	msgTasks
	msgRetry
	msgNoWork
	msgResult   // want `wire constant msgResult is never dispatched`
	msgGhost    // want `wire constant msgGhost is declared but never sent or dispatched`
	msgInbound  // want `wire constant msgInbound is never sent`
	msgOneWay   //graphpivet:ignore — peer is a legacy reader, send-only by design
	notAMessage // not msg-prefixed: ignored entirely
)

const msglowerx uint8 = 200 // lowercase after msg: not a wire constant

func writeFrame(w io.Writer, typ uint8, payload []byte) error {
	buf := append([]byte{typ}, payload...)
	_, err := w.Write(buf)
	return err
}

type link struct{ w io.Writer }

func (l *link) write(typ uint8, payload []byte) error {
	return writeFrame(l.w, typ, payload)
}

func master(l *link) error {
	if err := l.write(msgHello, nil); err != nil {
		return err
	}
	// Reassignment flow: the local may hold either constant by the time it
	// is sent, so both must count as sent (regression: a last-assignment-wins
	// alias map flagged msgRetry as never sent).
	reply := msgRetry
	if l.w == nil {
		reply = msgNoWork
	}
	if err := l.write(reply, nil); err != nil {
		return err
	}
	if err := l.write(msgResult, nil); err != nil {
		return err
	}
	return l.write(msgOneWay, nil)
}

func dealer(w io.Writer) error {
	return writeFrame(w, msgTasks, []byte{1})
}

func dispatch(typ uint8) string {
	switch typ {
	case msgHello:
		return "hello"
	case msgTasks, msgInbound:
		return "tasks"
	default:
		if typ == msgRetry {
			return "retry"
		}
		if typ != msgNoWork {
			return "unknown"
		}
		return "nowork"
	}
}

var _ = notAMessage
var _ = msglowerx
var _ = msgGhost
