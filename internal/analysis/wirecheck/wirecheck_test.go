package wirecheck_test

import (
	"testing"

	"graphpi/internal/analysis/analysistest"
	"graphpi/internal/analysis/wirecheck"
)

func TestWirecheck(t *testing.T) {
	analysistest.Run(t, "testdata", wirecheck.Analyzer, "cluster")
}
