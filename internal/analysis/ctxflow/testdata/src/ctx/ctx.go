// Fixture for ctxflow: context threading in library code.
package ctx

import (
	"context"
	"time"
)

// CountCtx threads its context properly: checked and propagated.
func CountCtx(ctx context.Context, tasks []int) (int64, error) {
	var total int64
	for _, t := range tasks {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total += int64(t)
	}
	return total, nil
}

// run roots its own context inside a library: detached from the caller.
func run(tasks []int) int64 {
	ctx := context.Background() // want `library code calls context.Background`
	n, _ := CountCtx(ctx, tasks)
	return n
}

// todo is no better.
func todo() context.Context {
	return context.TODO() // want `library code calls context.TODO`
}

// DroppedCtx accepts a context and ignores it: advertises cancellability it
// does not implement.
func DroppedCtx(ctx context.Context, n int) int64 { // want `DroppedCtx accepts ctx but never uses it`
	var total int64
	for i := 0; i < n; i++ {
		total += int64(i)
	}
	return total
}

// BlankCtx explicitly declines the context: allowed (interface conformance).
func BlankCtx(_ context.Context, n int) int64 {
	return int64(n)
}

// EnumerateCtx violates the Ctx-suffix convention: no context parameter.
func EnumerateCtx(n int) int64 { // want `EnumerateCtx is named as a context variant but does not take a context.Context first parameter`
	return int64(n)
}

// passing the ctx onward counts as use.
func Relay(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

var _ = run
var _ = todo
