package ctxflow_test

import (
	"testing"

	"graphpi/internal/analysis/analysistest"
	"graphpi/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctx")
}
