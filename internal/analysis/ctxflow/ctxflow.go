// Package ctxflow machine-checks context threading through the engine's
// entry points, so cancellation keeps working as hot paths are added:
//
//   - No context.Background() or context.TODO() in library code (any
//     non-main package, outside tests): a library that conjures its own root
//     context has detached itself from its caller's cancellation. Roots
//     belong to main functions, servers' per-request plumbing and tests.
//
//   - A context.Context parameter must be used — passed onward, or checked
//     via Done/Err/Deadline/Value. An entry point that accepts a ctx and
//     drops it advertises cancellability it does not implement; that is how
//     "cancel works on Count but not CountIEP" bugs are born.
//
//   - A function named `...Ctx` must take a context.Context as its first
//     parameter — the suffix is the facade's cancellable-variant convention,
//     and a Ctx function without a context is a misleading API.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"graphpi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "check context threading: no context.Background in library code, no dropped ctx parameters",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	library := pass.Pkg.Name() != "main"

	for _, fd := range pass.FuncsOf(true) {
		if library {
			checkNoRootContext(pass, fd)
		}
		checkCtxParams(pass, fd)
		checkCtxSuffix(pass, fd)
	}
	return nil
}

// checkNoRootContext flags context.Background()/TODO() calls.
func checkNoRootContext(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok || pkgName.Imported().Path() != "context" {
			return true
		}
		if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
			pass.Reportf(call.Pos(), "library code calls context.%s; accept a ctx from the caller instead of rooting a new one", sel.Sel.Name)
		}
		return true
	})
}

// checkCtxParams flags named context.Context parameters that the body never
// reads: the function promises cancellability but cannot deliver it.
func checkCtxParams(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if used {
					return false
				}
				if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					used = true
					return false
				}
				return true
			})
			if !used {
				pass.Reportf(name.Pos(), "%s accepts %s but never uses it; thread the context through or drop the parameter", fd.Name.Name, name.Name)
			}
		}
	}
}

// checkCtxSuffix enforces the `...Ctx` naming convention.
func checkCtxSuffix(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !strings.HasSuffix(name, "Ctx") || name == "Ctx" {
		return
	}
	params := fd.Type.Params
	if params != nil && len(params.List) > 0 && isContextType(pass.TypesInfo.TypeOf(params.List[0].Type)) {
		return
	}
	pass.Reportf(fd.Name.Pos(), "%s is named as a context variant but does not take a context.Context first parameter", name)
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
