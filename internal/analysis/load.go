package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
)

// ParseFiles parses the named Go files into one package's syntax.
func ParseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// TypeCheck type-checks one package's parsed files with the given importer
// and returns the package and its full types.Info. Soft errors (unused
// variables and such) do not abort; hard type errors do.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := &types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect everything; the returned error decides
	}
	if goVersion != "" {
		tcfg.GoVersion = goVersion
	}
	pkg, err := tcfg.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// RunAnalyzers runs each analyzer over an already-loaded package, funneling
// findings to report. The first analyzer failure aborts.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(*Analyzer, Diagnostic)) error {
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) { report(a, d) }
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return nil
}
