// Package analysis is graphpivet's self-contained static-analysis framework:
// a minimal re-implementation of the golang.org/x/tools/go/analysis surface
// (Analyzer, Pass, diagnostics) plus the `go vet -vettool` driver protocol in
// unitchecker.go. The engine's correctness invariants — wire constants wired
// through encode/dispatch, mutex-guarded fields, deterministic count paths,
// context threading, unchecked IO errors — live as analyzers under
// internal/analysis/<name> and are run over the whole tree by cmd/graphpivet.
//
// The framework is dependency-free on purpose: it uses only go/ast, go/types
// and the standard importers, so the lint gate builds in the same environment
// as the engine itself. The API mirrors x/tools closely enough that the
// analyzers would port to the real framework mechanically if the dependency
// ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named invariant check. Run inspects a single
// type-checked package via the Pass and reports findings through it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and enables the
	// `-<name>` selection flag on the multichecker.
	Name string
	// Doc is a one-paragraph description: first line is the summary.
	Doc string
	// Run performs the check. A returned error aborts the whole run
	// (internal failure), it is not a finding.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // package syntax, test files included
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each finding. Drivers install it.
	Report func(Diagnostic)

	ignore map[string]map[int]bool // file -> lines bearing graphpivet:ignore
}

// A Diagnostic is one finding, anchored at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// IgnoreDirective is the in-source suppression marker: a finding whose
// anchor line carries this comment is dropped. Use sparingly, with a reason
// in the rest of the comment.
const IgnoreDirective = "//graphpivet:ignore"

// Reportf reports a finding unless its line is suppressed.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (p *Pass) suppressed(pos token.Pos) bool {
	if p.ignore == nil {
		p.ignore = make(map[string]map[int]bool)
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(c.Text, IgnoreDirective) {
						cp := p.Fset.Position(c.Pos())
						m := p.ignore[cp.Filename]
						if m == nil {
							m = make(map[int]bool)
							p.ignore[cp.Filename] = m
						}
						m[cp.Line] = true
					}
				}
			}
		}
	}
	dp := p.Fset.Position(pos)
	return p.ignore[dp.Filename][dp.Line]
}

// InTestFile reports whether pos lies in a _test.go file. Most graphpivet
// analyzers check production invariants only; tests intentionally poke
// internals (inject faults, read state between synchronization points).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FuncsOf yields every function declaration with a body in the package,
// skipping test files when skipTests is set.
func (p *Pass) FuncsOf(skipTests bool) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		if skipTests && strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// CalleeName returns the bare name of a call's callee: the identifier for
// f(...) and the final selector for x.y.f(...). Empty when the callee is not
// a named function or method (e.g. a call of a function literal).
func CalleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// CalleeObj resolves a call's callee to its types.Func, when it is a
// statically known function or method.
func CalleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// HasDirective reports whether a declaration's doc comment group contains the
// given //-style directive (matched on comment-line prefix).
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}
