// Package analysistest runs an analyzer over golden fixture packages and
// checks its findings against `// want` comments, mirroring (a useful subset
// of) golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives in testdata/src/<pkg>/ next to the analyzer's test. Every
// line expected to produce a finding carries a comment:
//
//	writeFrame(w, t, p) // want `discards the error`
//
// The backquoted argument is a regexp matched against the diagnostic message;
// several `// want` arguments on one line expect several findings. Lines
// without a want comment must stay clean — an unexpected finding fails the
// test, so each fixture is simultaneously the analyzer's positive and
// negative golden file.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"graphpi/internal/analysis"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

// fixtureImporter resolves fixture dep packages by testdata directory name
// and defers everything else to the stdlib source importer.
type fixtureImporter struct {
	base types.Importer
	pkgs map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	return fi.base.Import(path)
}

// parseFixture parses every .go file in testdata/src/<pkg> into one package's
// syntax, in filename order.
func parseFixture(t *testing.T, fset *token.FileSet, dir, pkg string) []*ast.File {
	t.Helper()
	src := filepath.Join(dir, "src", pkg)
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(src, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("fixture %s has no Go files", src)
	}
	sort.Strings(filenames)
	files, err := analysis.ParseFiles(fset, filenames)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return files
}

// Run loads testdata/src/<pkg> under dir, applies the analyzer, and checks
// findings against the fixture's want comments.
//
// Fixtures import the standard library, resolved by the source importer
// against $GOROOT/src. A fixture that needs a non-stdlib dependency ships a
// stub for it as a sibling fixture package and names it in deps: each dep is
// type-checked first (in order, so later deps may import earlier ones) and
// made importable by its testdata/src directory name.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string, deps ...string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		base: importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}
	for _, dep := range deps {
		dfiles := parseFixture(t, fset, dir, dep)
		dpkg, _, err := analysis.TypeCheck(fset, dep, dfiles, imp, "")
		if err != nil {
			t.Fatalf("type-checking fixture dep %s: %v", dep, err)
		}
		imp.pkgs[dep] = dpkg
	}

	files := parseFixture(t, fset, dir, pkg)
	tpkg, info, err := analysis.TypeCheck(fset, pkg, files, imp, "")
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	// Collect expectations: (file,line) -> regexps not yet matched.
	type key struct {
		file string
		line int
	}
	want := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(text[i:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
					}
					want[k] = append(want[k], re)
				}
			}
		}
	}

	var unexpected []string
	report := func(_ *analysis.Analyzer, d analysis.Diagnostic) {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		for i, re := range want[k] {
			if re.MatchString(d.Message) {
				want[k] = append(want[k][:i], want[k][i+1:]...)
				if len(want[k]) == 0 {
					delete(want, k)
				}
				return
			}
		}
		unexpected = append(unexpected, fmt.Sprintf("%s: unexpected finding: %s", pos, d.Message))
	}
	if err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, fset, files, tpkg, info, report); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Error(u)
	}
	var missing []string
	for k, res := range want {
		for _, re := range res {
			missing = append(missing, fmt.Sprintf("%s:%d: no finding matched %q", k.file, k.line, re))
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}
