package graph

import (
	"fmt"
	"math/rand/v2"
)

// This file provides deterministic synthetic graph generators. They serve
// two purposes: (1) fixtures for tests and property checks, and (2) the
// dataset substitution layer — the paper evaluates on SNAP graphs that are
// not redistributable here, so internal/dataset instantiates generators with
// matched size/degree regimes (see DESIGN.md §3).

// rng returns a deterministic PCG source for a given seed.
func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Complete returns the complete graph K_n. Algorithm 1's validate step runs
// pattern matching on complete graphs (§IV-A).
func Complete(n int) *Graph {
	b := NewBuilder(n, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(uint32(u), uint32(v))
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("graph: Complete(%d): %v", n, err))
	}
	g.SetName(fmt.Sprintf("K%d", n))
	return g
}

// Cycle returns the cycle graph C_n (n >= 3).
func Cycle(n int) *Graph {
	b := NewBuilder(n, n)
	for v := 0; v < n; v++ {
		b.AddEdge(uint32(v), uint32((v+1)%n))
	}
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("graph: Cycle(%d): %v", n, err))
	}
	g.SetName(fmt.Sprintf("C%d", n))
	return g
}

// Star returns the star graph with one hub and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n, n-1)
	for v := 1; v < n; v++ {
		b.AddEdge(0, uint32(v))
	}
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("graph: Star(%d): %v", n, err))
	}
	g.SetName(fmt.Sprintf("star%d", n))
	return g
}

// Path returns the path graph P_n.
func Path(n int) *Graph {
	b := NewBuilder(n, n-1)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(uint32(v), uint32(v+1))
	}
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("graph: Path(%d): %v", n, err))
	}
	g.SetName(fmt.Sprintf("path%d", n))
	return g
}

// GNM returns a uniform random graph with n vertices and (up to) m distinct
// edges — the Erdős–Rényi G(n, m) model. Low clustering, low skew: the
// regime of the Patents citation graph.
func GNM(n int, m int, seed uint64) *Graph {
	r := rng(seed)
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	b := NewBuilder(n, m)
	seen := make(map[uint64]bool, m)
	for len(seen) < m {
		u := uint32(r.IntN(n))
		v := uint32(r.IntN(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	b.SetNumVertices(n)
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("graph: GNM(%d,%d): %v", n, m, err))
	}
	g.SetName(fmt.Sprintf("gnm-%d-%d", n, m))
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: each new vertex
// attaches to mPerVertex existing vertices chosen proportionally to degree.
// Power-law degrees and high clustering: the regime of social graphs
// (Wiki-Vote, LiveJournal, Orkut).
func BarabasiAlbert(n, mPerVertex int, seed uint64) *Graph {
	if mPerVertex < 1 {
		mPerVertex = 1
	}
	if n <= mPerVertex {
		return Complete(n)
	}
	r := rng(seed)
	b := NewBuilder(n, n*mPerVertex)
	// Seed clique over the first mPerVertex+1 vertices.
	for u := 0; u <= mPerVertex; u++ {
		for v := u + 1; v <= mPerVertex; v++ {
			b.AddEdge(uint32(u), uint32(v))
		}
	}
	// endpoints holds one entry per edge endpoint; uniform sampling from it
	// is degree-proportional sampling.
	endpoints := make([]uint32, 0, 2*n*mPerVertex)
	for u := 0; u <= mPerVertex; u++ {
		for v := u + 1; v <= mPerVertex; v++ {
			endpoints = append(endpoints, uint32(u), uint32(v))
		}
	}
	targets := make(map[uint32]bool, mPerVertex)
	picked := make([]uint32, 0, mPerVertex)
	for v := mPerVertex + 1; v < n; v++ {
		clear(targets)
		picked = picked[:0]
		for len(picked) < mPerVertex {
			t := endpoints[r.IntN(len(endpoints))]
			if !targets[t] {
				targets[t] = true
				picked = append(picked, t)
			}
		}
		// picked preserves draw order, keeping the generator deterministic
		// (map iteration order would leak into later samples).
		for _, t := range picked {
			b.AddEdge(uint32(v), t)
			endpoints = append(endpoints, uint32(v), t)
		}
	}
	b.SetNumVertices(n)
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("graph: BarabasiAlbert(%d,%d): %v", n, mPerVertex, err))
	}
	g.SetName(fmt.Sprintf("ba-%d-%d", n, mPerVertex))
	return g
}

// RMAT returns a recursive-matrix random graph with 2^scale vertices and
// approximately edges distinct edges, using the standard (a,b,c,d) quadrant
// probabilities. Heavy skew: the regime of the Twitter follower graph.
// Duplicate and self-loop samples are dropped, so the realized edge count can
// fall slightly short of the request.
func RMAT(scale int, edges int, a, b, c float64, seed uint64) *Graph {
	r := rng(seed)
	n := 1 << scale
	bld := NewBuilder(n, edges)
	seen := make(map[uint64]bool, edges)
	attempts := 0
	maxAttempts := edges * 8
	for len(seen) < edges && attempts < maxAttempts {
		attempts++
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.Float64()
			switch {
			case p < a: // top-left
			case p < a+b: // top-right
				v |= 1 << bit
			case p < a+b+c: // bottom-left
				u |= 1 << bit
			default: // bottom-right
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		lo, hi := uint32(u), uint32(v)
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(lo)<<32 | uint64(hi)
		if seen[key] {
			continue
		}
		seen[key] = true
		bld.AddEdge(lo, hi)
	}
	bld.SetNumVertices(n)
	g, err := bld.Build()
	if err != nil {
		panic(fmt.Sprintf("graph: RMAT(%d,%d): %v", scale, edges, err))
	}
	g.SetName(fmt.Sprintf("rmat-%d-%d", scale, edges))
	return g
}

// GNP returns an Erdős–Rényi G(n, p) graph. Intended for small test
// fixtures; for large sparse graphs prefer GNM.
func GNP(n int, p float64, seed uint64) *Graph {
	r := rng(seed)
	b := NewBuilder(n, int(p*float64(n)*float64(n-1)/2)+1)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(uint32(u), uint32(v))
			}
		}
	}
	b.SetNumVertices(n)
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("graph: GNP(%d,%g): %v", n, p, err))
	}
	g.SetName(fmt.Sprintf("gnp-%d-%g", n, p))
	return g
}
