package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// This file implements the two on-disk formats GraphPi works with:
//
//   - a whitespace-separated edge-list text format (the form the paper's
//     datasets ship in; "users only need to input a pattern and a data graph
//     in the form of adjacency lists", §III), and
//   - a fast binary CSR snapshot so large synthetic datasets need to be
//     generated only once.

// ReadEdgeList parses a whitespace-separated edge list. Lines starting with
// '#', '%' or '//' are comments. Vertex ids must be non-negative integers;
// ids are used as-is (dense renumbering is the caller's concern, see
// CompactIDs). The graph is undirected: "u v" and "v u" are the same edge.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	b := NewBuilder(0, 1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two vertex ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex id %q: %v", lineNo, fields[1], err)
		}
		b.AddEdge(uint32(u), uint32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build()
}

// LoadEdgeListFile reads an edge-list file from disk.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// WriteEdgeList writes the graph as an edge list, one undirected edge per
// line with the smaller endpoint first.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if u > uint32(v) {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

const binaryMagic = "GPiCSR1\n"

// WriteBinary writes the CSR arrays in a little-endian binary snapshot.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	n := int64(g.NumVertices())
	if err := binary.Write(bw, binary.LittleEndian, n); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a snapshot produced by WriteBinary and validates its
// structural invariants before returning.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var n int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("graph: reading vertex count: %w", err)
	}
	if n < 0 || n > MaxVertices {
		return nil, fmt.Errorf("graph: invalid vertex count %d", n)
	}
	g := &Graph{offsets: make([]int64, n+1)}
	if err := binary.Read(br, binary.LittleEndian, g.offsets); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	total := g.offsets[n]
	if total < 0 {
		return nil, fmt.Errorf("graph: negative adjacency length %d", total)
	}
	g.adj = make([]uint32, total)
	if err := binary.Read(br, binary.LittleEndian, g.adj); err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: corrupt snapshot: %w", err)
	}
	return g, nil
}

// SaveBinaryFile writes the graph snapshot to path.
func SaveBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile reads a snapshot from path.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// CompactIDs returns a copy of g with isolated vertices removed and the
// remaining vertices renumbered densely, preserving relative order. SNAP
// edge lists frequently have sparse id spaces; compacting keeps CSR arrays
// proportional to the live vertex count.
func CompactIDs(g *Graph) (*Graph, error) {
	n := g.NumVertices()
	remap := make([]uint32, n)
	next := uint32(0)
	for v := 0; v < n; v++ {
		if g.Degree(uint32(v)) > 0 {
			remap[v] = next
			next++
		}
	}
	b := NewBuilder(int(next), int(g.NumEdges()))
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if u > uint32(v) {
				b.AddEdge(remap[v], remap[u])
			}
		}
	}
	b.SetNumVertices(int(next))
	out, err := b.Build()
	if err != nil {
		return nil, err
	}
	out.SetName(g.Name())
	return out, nil
}
