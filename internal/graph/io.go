package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// This file implements the two on-disk formats GraphPi works with:
//
//   - a whitespace-separated edge-list text format (the form the paper's
//     datasets ship in; "users only need to input a pattern and a data graph
//     in the form of adjacency lists", §III), and
//   - a fast binary CSR snapshot so large synthetic datasets need to be
//     generated only once.

// ReadEdgeList parses a whitespace-separated edge list. Lines starting with
// '#', '%' or '//' are comments. Vertex ids must be non-negative integers;
// ids are used as-is (dense renumbering is the caller's concern, see
// CompactIDs). The graph is undirected: "u v" and "v u" are the same edge.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	b := NewBuilder(0, 1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two vertex ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex id %q: %v", lineNo, fields[1], err)
		}
		b.AddEdge(uint32(u), uint32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build()
}

// LoadEdgeListFile reads an edge-list file from disk.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// WriteEdgeList writes the graph as an edge list, one undirected edge per
// line with the smaller endpoint first.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if u > uint32(v) {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Binary snapshot versions. GPiCSR1 (two releases back) stores only the
// raw CSR arrays; GPiCSR2 adds the dataset name, the degree-ordered reorder
// map of an Optimize()d graph (so a reloaded graph's Enumerate still reports
// original vertex ids) and the hub-bitmap budget; GPiCSR3 adds the hub
// degree floor, so a view tuned with OptimizeHubs no longer silently
// rebuilds with the default floor on load. Hub bitmaps themselves are
// rebuilt on load, not stored: they are cheap to reconstruct and their
// packed form would dominate the file. WriteBinary always emits GPiCSR3;
// ReadBinary accepts all three.
const (
	binaryMagicV1 = "GPiCSR1\n"
	binaryMagicV2 = "GPiCSR2\n"
	binaryMagic   = "GPiCSR3\n"

	// maxSnapshotName bounds the stored dataset-name length so a corrupt
	// header cannot drive a huge allocation.
	maxSnapshotName = 1 << 16

	// maxSnapshotHubFloor bounds the stored hub degree floor; no vertex can
	// have a degree above MaxVertices, so anything larger is corruption.
	maxSnapshotHubFloor = int64(MaxVertices)
)

// WriteBinary writes the graph in the little-endian GPiCSR3 snapshot layout:
//
//	magic "GPiCSR3\n"
//	n        int64            vertex count
//	nameLen  int64            + nameLen bytes of dataset name
//	mapLen   int64            0, or n for a reordered graph
//	newToOld [mapLen]uint32   new→old id map (old→new is reconstructed)
//	hubBytes int64            hub-bitmap memory to rebuild on load (0 = none)
//	hubFloor int64            hub degree floor to rebuild with (0 = default)
//	offsets  [n+1]int64       always present, even for n = 0
//	adj      [offsets[n]]uint32
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	n := int64(g.NumVertices())
	name := g.name
	if len(name) > maxSnapshotName {
		name = name[:maxSnapshotName]
	}
	for _, v := range []int64{n, int64(len(name))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(g.newToOld))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.newToOld); err != nil {
		return err
	}
	var hubBytes, hubFloor int64
	if g.numHubs > 0 {
		// HubMemoryBytes is exactly the budget BuildHubBitmaps needs to
		// reproduce the same hub count on load; the floor must ride along
		// or a tuned view would rebuild against the default.
		hubBytes = g.HubMemoryBytes()
		hubFloor = int64(g.hubFloor)
	}
	for _, v := range []int64{hubBytes, hubFloor} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	offsets := g.offsets
	if offsets == nil {
		// The zero-value Graph has nil offsets; the format always carries
		// the n+1 offsets array so readers never hit EOF on empty graphs.
		offsets = []int64{0}
	}
	if err := binary.Write(bw, binary.LittleEndian, offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a snapshot produced by WriteBinary (GPiCSR2) or by the
// previous release (GPiCSR1) and validates its structural invariants before
// returning. Reordered GPiCSR2 graphs come back with their id maps intact
// and their hub bitmaps rebuilt under the stored budget.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	switch string(magic) {
	case binaryMagicV1:
		return readBinaryV1(br)
	case binaryMagicV2:
		return readBinaryV2(br, false)
	case binaryMagic:
		return readBinaryV2(br, true)
	default:
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
}

// readChunked reads count little-endian words, growing the result only as
// fast as real file bytes arrive: a corrupt header claiming billions of
// words costs one bounded buffer before the truncation error surfaces, not
// a count-sized up-front allocation.
func readChunked[T int64 | uint32](br *bufio.Reader, count int64, what string) ([]T, error) {
	if count < 0 {
		return nil, fmt.Errorf("graph: negative %s length %d", what, count)
	}
	step := count
	if step > adjChunkWords {
		step = adjChunkWords
	}
	out := make([]T, 0, step)
	buf := make([]T, step)
	for int64(len(out)) < count {
		k := count - int64(len(out))
		if k > adjChunkWords {
			k = adjChunkWords
		}
		if err := binary.Read(br, binary.LittleEndian, buf[:k]); err != nil {
			return nil, fmt.Errorf("graph: reading %s: %w", what, err)
		}
		out = append(out, buf[:k]...)
	}
	return out, nil
}

// readBinaryV1 reads the legacy layout: n, offsets, adj. The old writer
// emitted zero offset words for a zero-value graph (nil offsets), so n = 0
// tolerates a missing offsets array.
func readBinaryV1(br *bufio.Reader) (*Graph, error) {
	n, err := readCount(br)
	if err != nil {
		return nil, err
	}
	offsets, err := readChunked[int64](br, n+1, "offsets")
	if err != nil {
		if n == 0 && errors.Is(err, io.EOF) {
			return &Graph{}, nil
		}
		return nil, err
	}
	g := &Graph{offsets: offsets}
	if err := readAdjacency(br, g, n); err != nil {
		return nil, err
	}
	return g, nil
}

// readBinaryV2 reads the GPiCSR2 layout and, with hasHubFloor, the GPiCSR3
// layout (identical except for the hub degree floor between the hub budget
// and the offsets). GPiCSR2 snapshots rebuild with the default floor — the
// exact pre-GPiCSR3 behavior.
func readBinaryV2(br *bufio.Reader, hasHubFloor bool) (*Graph, error) {
	n, err := readCount(br)
	if err != nil {
		return nil, err
	}
	var nameLen int64
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("graph: reading name length: %w", err)
	}
	if nameLen < 0 || nameLen > maxSnapshotName {
		return nil, fmt.Errorf("graph: invalid name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("graph: reading name: %w", err)
	}
	var mapLen int64
	if err := binary.Read(br, binary.LittleEndian, &mapLen); err != nil {
		return nil, fmt.Errorf("graph: reading reorder map length: %w", err)
	}
	if mapLen != 0 && mapLen != n {
		return nil, fmt.Errorf("graph: reorder map length %d for %d vertices", mapLen, n)
	}
	g := &Graph{name: string(name)}
	if mapLen > 0 {
		g.newToOld, err = readChunked[uint32](br, mapLen, "reorder map")
		if err != nil {
			return nil, err
		}
		g.oldToNew = make([]uint32, mapLen)
		seen := make([]bool, mapLen)
		for newV, oldV := range g.newToOld {
			if int64(oldV) >= mapLen || seen[oldV] {
				return nil, fmt.Errorf("graph: reorder map is not a permutation at %d", newV)
			}
			seen[oldV] = true
			g.oldToNew[oldV] = uint32(newV)
		}
	}
	var hubBytes int64
	if err := binary.Read(br, binary.LittleEndian, &hubBytes); err != nil {
		return nil, fmt.Errorf("graph: reading hub budget: %w", err)
	}
	if hubBytes < 0 {
		return nil, fmt.Errorf("graph: negative hub budget %d", hubBytes)
	}
	var hubFloor int64
	if hasHubFloor {
		if err := binary.Read(br, binary.LittleEndian, &hubFloor); err != nil {
			return nil, fmt.Errorf("graph: reading hub degree floor: %w", err)
		}
		if hubFloor < 0 || hubFloor > maxSnapshotHubFloor {
			return nil, fmt.Errorf("graph: invalid hub degree floor %d", hubFloor)
		}
	}
	g.offsets, err = readChunked[int64](br, n+1, "offsets")
	if err != nil {
		return nil, err
	}
	if err := readAdjacency(br, g, n); err != nil {
		return nil, err
	}
	if hubBytes > 0 {
		g.BuildHubBitmaps(hubBytes, int(hubFloor))
	}
	return g, nil
}

func readCount(br *bufio.Reader) (int64, error) {
	var n int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return 0, fmt.Errorf("graph: reading vertex count: %w", err)
	}
	if n < 0 || n > MaxVertices {
		return 0, fmt.Errorf("graph: invalid vertex count %d", n)
	}
	return n, nil
}

// adjChunkWords bounds how much adjacency is allocated per read step, so a
// corrupt offsets array claiming an enormous edge count produces a truncated-
// file error instead of a giant up-front allocation (or a makeslice panic).
const adjChunkWords = 1 << 20

// readAdjacency validates the already-read offsets, then reads the adjacency
// array they size — incrementally, so the allocation only ever grows as fast
// as real file bytes arrive — and checks the CSR invariants.
func readAdjacency(br *bufio.Reader, g *Graph, n int64) error {
	if n > 0 && g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets must start at 0, got %d", g.offsets[0])
	}
	for v := int64(0); v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	total := g.offsets[n]
	if total < 0 {
		return fmt.Errorf("graph: negative adjacency length %d", total)
	}
	// Each undirected edge occupies two slots and the graph is simple, so
	// the adjacency can never exceed n*(n-1) slots. Only check when the
	// product cannot overflow int64 (n ≤ √2⁶³); beyond that any int64
	// total is below the true bound anyway.
	const maxExactN = 3037000499
	if n > 0 && n <= maxExactN && total > n*(n-1) {
		return fmt.Errorf("graph: adjacency length %d impossible for %d vertices", total, n)
	}
	adj, err := readChunked[uint32](br, total, "adjacency")
	if err != nil {
		return err
	}
	g.adj = adj
	if err := g.Validate(); err != nil {
		return fmt.Errorf("graph: corrupt snapshot: %w", err)
	}
	return nil
}

// SaveBinaryFile writes the graph snapshot to path.
func SaveBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}

// LoadAnyFile reads a graph from path, auto-detecting the binary snapshot
// format against whitespace edge-list text (the detection the facade's
// LoadGraph and the query service's admin loader share).
func LoadAnyFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, _ := br.Peek(6)
	var g *Graph
	if string(head) == "GPiCSR" {
		g, err = ReadBinary(br)
	} else {
		g, err = ReadEdgeList(br)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// LoadBinaryFile reads a snapshot from path.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// CompactIDs returns a copy of g with isolated vertices removed and the
// remaining vertices renumbered densely, preserving relative order. SNAP
// edge lists frequently have sparse id spaces; compacting keeps CSR arrays
// proportional to the live vertex count.
func CompactIDs(g *Graph) (*Graph, error) {
	n := g.NumVertices()
	remap := make([]uint32, n)
	next := uint32(0)
	for v := 0; v < n; v++ {
		if g.Degree(uint32(v)) > 0 {
			remap[v] = next
			next++
		}
	}
	b := NewBuilder(int(next), int(g.NumEdges()))
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if u > uint32(v) {
				b.AddEdge(remap[v], remap[u])
			}
		}
	}
	b.SetNumVertices(int(next))
	out, err := b.Build()
	if err != nil {
		return nil, err
	}
	out.SetName(g.Name())
	return out, nil
}
