package graph

import (
	"testing"

	"graphpi/internal/vertexset"
)

func TestReorderDegreeDescending(t *testing.T) {
	g := BarabasiAlbert(500, 3, 7)
	rg := g.Reorder()
	if err := rg.Validate(); err != nil {
		t.Fatalf("reordered graph invalid: %v", err)
	}
	if !rg.IsReordered() || g.IsReordered() {
		t.Fatalf("IsReordered flags wrong: rg=%v g=%v", rg.IsReordered(), g.IsReordered())
	}
	if rg.NumVertices() != g.NumVertices() || rg.NumEdges() != g.NumEdges() {
		t.Fatalf("size changed: %d/%d vs %d/%d",
			rg.NumVertices(), rg.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 1; v < rg.NumVertices(); v++ {
		if rg.Degree(uint32(v-1)) < rg.Degree(uint32(v)) {
			t.Fatalf("degrees not descending at %d: %d < %d",
				v, rg.Degree(uint32(v-1)), rg.Degree(uint32(v)))
		}
	}
}

func TestReorderMapsAreInverse(t *testing.T) {
	g := GNM(300, 900, 3)
	rg := g.Reorder()
	n2o, o2n := rg.NewToOld(), rg.OldToNew()
	if len(n2o) != g.NumVertices() || len(o2n) != g.NumVertices() {
		t.Fatalf("map sizes wrong: %d, %d", len(n2o), len(o2n))
	}
	for v := range n2o {
		if o2n[n2o[v]] != uint32(v) {
			t.Fatalf("maps not inverse at new id %d", v)
		}
		if rg.OrigID(uint32(v)) != n2o[v] {
			t.Fatalf("OrigID(%d) = %d, want %d", v, rg.OrigID(uint32(v)), n2o[v])
		}
	}
	if g.NewToOld() != nil || g.OrigID(5) != 5 {
		t.Fatal("non-reordered graph should have identity OrigID and nil maps")
	}
}

func TestReorderPreservesEdges(t *testing.T) {
	g := GNM(200, 600, 5)
	rg := g.Reorder()
	o2n := rg.OldToNew()
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(uint32(v)) {
			if !rg.HasEdge(o2n[v], o2n[w]) {
				t.Fatalf("edge {%d,%d} lost in reorder", v, w)
			}
		}
	}
}

func TestReorderEmpty(t *testing.T) {
	g := &Graph{}
	rg := g.Reorder()
	if rg.NumVertices() != 0 {
		t.Fatalf("empty reorder has %d vertices", rg.NumVertices())
	}
}

func TestBuildHubBitmaps(t *testing.T) {
	// A star graph plus noise guarantees one very high degree vertex.
	g := BarabasiAlbert(2000, 4, 11).Reorder()
	k := g.BuildHubBitmaps(1<<20, 0)
	if k < 1 {
		t.Fatalf("expected at least one hub, got %d", k)
	}
	if g.NumHubs() != k {
		t.Fatalf("NumHubs = %d, want %d", g.NumHubs(), k)
	}
	// On a reordered graph the hubs are the id prefix [0, k).
	for v := 0; v < g.NumVertices(); v++ {
		bm := g.HubBitmap(uint32(v))
		if (v < k) != (bm != nil) {
			t.Fatalf("hub prefix violated at %d (k=%d, bm=%v)", v, k, bm != nil)
		}
		if bm == nil {
			continue
		}
		// Bitmap must agree exactly with the adjacency list.
		nb := g.Neighbors(uint32(v))
		if got := vertexset.IntersectSizeBitmap(nb, bm); got != len(nb) {
			t.Fatalf("hub %d bitmap misses %d neighbors", v, len(nb)-got)
		}
		pop := 0
		for _, w := range bm {
			for ; w != 0; w &= w - 1 {
				pop++
			}
		}
		if pop != len(nb) {
			t.Fatalf("hub %d bitmap population %d != degree %d", v, pop, len(nb))
		}
	}
	// Degree floor: no hub below the default degree floor.
	for v := 0; v < k; v++ {
		if g.Degree(uint32(v)) < DefaultHubDegreeFloor {
			t.Fatalf("hub %d has degree %d < %d", v, g.Degree(uint32(v)), DefaultHubDegreeFloor)
		}
	}
}

func TestBuildHubBitmapsBudget(t *testing.T) {
	g := BarabasiAlbert(1000, 8, 13)
	words := vertexset.BitmapWords(g.NumVertices())
	// Budget covers the mandatory 4n index plus exactly 3 bitmaps.
	budget := int64(g.NumVertices())*4 + int64(words)*8*3
	k := g.BuildHubBitmaps(budget, 0)
	if k > 3 {
		t.Fatalf("budget allows 3 bitmaps, got %d", k)
	}
	if k == 0 {
		t.Fatal("budget for 3 bitmaps produced none")
	}
	if got := g.HubMemoryBytes(); got > budget {
		t.Fatalf("hub memory %d exceeds budget %d", got, budget)
	}
	// Budget too small for the index plus one bitmap → no hubs.
	if k := g.BuildHubBitmaps(int64(g.NumVertices())*4+int64(words)*8-1, 0); k != 0 {
		t.Fatalf("sub-bitmap budget produced %d hubs", k)
	}
	if g.HubBitmap(0) != nil {
		t.Fatal("hub bitmaps should be cleared after rebuild with tiny budget")
	}
}

func TestSlotOwner(t *testing.T) {
	g := BarabasiAlbert(300, 2, 17)
	for v := 0; v < g.NumVertices(); v++ {
		s, e := g.AdjSlotRange(uint32(v))
		for slot := s; slot < e; slot++ {
			if got := g.SlotOwner(slot); got != uint32(v) {
				t.Fatalf("SlotOwner(%d) = %d, want %d", slot, got, v)
			}
		}
		if got := g.AdjSlots(s, e); len(got) != g.Degree(uint32(v)) {
			t.Fatalf("AdjSlots(%d,%d) len %d != degree %d", s, e, len(got), g.Degree(uint32(v)))
		}
	}
	if g.NumAdjSlots() != int(2*g.NumEdges()) {
		t.Fatalf("NumAdjSlots = %d, want %d", g.NumAdjSlots(), 2*g.NumEdges())
	}
}

func TestSlotOwnerWithIsolatedVertices(t *testing.T) {
	// Vertices 1 and 3 isolated: zero-length slot ranges must never own.
	g, err := FromEdges(5, [][2]uint32{{0, 2}, {2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < g.NumAdjSlots(); slot++ {
		v := g.SlotOwner(slot)
		s, e := g.AdjSlotRange(v)
		if slot < s || slot >= e {
			t.Fatalf("SlotOwner(%d) = %d with range [%d,%d)", slot, v, s, e)
		}
	}
}

// TestReorderComposesMaps pins the Reorder-of-Reorder contract: OrigID must
// always reach the ids of the graph at the root of the chain.
func TestReorderComposesMaps(t *testing.T) {
	g := BarabasiAlbert(300, 3, 19)
	rr := g.Reorder().Reorder()
	n2o, o2n := rr.NewToOld(), rr.OldToNew()
	for v := 0; v < rr.NumVertices(); v++ {
		if o2n[n2o[v]] != uint32(v) {
			t.Fatalf("composed maps not inverse at %d", v)
		}
		// Every neighbor relation must hold in ORIGINAL ids.
		for _, w := range rr.Neighbors(uint32(v)) {
			if !g.HasEdge(n2o[v], n2o[w]) {
				t.Fatalf("edge {%d,%d} (orig ids) missing after double reorder", n2o[v], n2o[w])
			}
		}
	}
}
