// Package graph provides the data-graph substrate of GraphPi: an immutable
// undirected graph in compressed sparse row (CSR) form with sorted adjacency
// lists, plus the structural statistics (|V|, |E|, triangle count) the
// GraphPi performance model consumes (§IV-C of the paper).
//
// The representation follows §IV-E of the paper: "GraphPi stores graphs in
// the compressed sparse row (CSR) format, that is, the neighborhood of a
// vertex is sorted and continuous in memory." All vertex identifiers are
// dense uint32 indices in [0, NumVertices).
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"graphpi/internal/vertexset"
)

// MaxVertices bounds the number of vertices a Graph can hold. Vertex ids are
// uint32 and one id is reserved so that id+1 arithmetic cannot overflow.
const MaxVertices = 1<<32 - 2

// Graph is an immutable undirected graph in CSR form. Self-loops and
// parallel edges are removed at construction. The zero value is an empty
// graph with no vertices.
type Graph struct {
	offsets []int64  // len NumVertices+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []uint32 // concatenated ascending neighbor lists

	name string // optional dataset label, used in reports

	// Degree-ordered relabeling (see reorder.go); nil for graphs not
	// produced by Reorder.
	newToOld []uint32
	oldToNew []uint32

	// Hub adjacency bitmaps (see hubs.go); hubIdx is nil until
	// BuildHubBitmaps runs.
	hubIdx   []int32
	hubBits  []uint64
	hubWords int
	numHubs  int
	// hubFloor is the degree floor the current hub set was built with
	// (0 until BuildHubBitmaps runs); snapshots persist it so reloads
	// rebuild the same hub set even for non-default floors.
	hubFloor int

	triOnce sync.Once
	tri     int64 // cached triangle count

	maxDegOnce sync.Once
	maxDeg     int
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int {
	if g.offsets == nil {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns |E|, counting each undirected edge once.
func (g *Graph) NumEdges() int64 {
	if g.offsets == nil {
		return 0
	}
	return g.offsets[len(g.offsets)-1] / 2
}

// Name returns the dataset label, or "" if none was set.
func (g *Graph) Name() string { return g.name }

// SetName attaches a dataset label used by reports and experiment output.
func (g *Graph) SetName(name string) { g.name = name }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v uint32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the ascending neighbor list of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// NumAdjSlots returns the number of directed adjacency entries (2|E|).
// Slots index the concatenated CSR adjacency array; they are the work units
// of the engine's edge-parallel root scheduling.
func (g *Graph) NumAdjSlots() int { return len(g.adj) }

// AdjSlotRange returns the half-open slot interval [start, end) holding the
// adjacency of v.
func (g *Graph) AdjSlotRange(v uint32) (start, end int) {
	return int(g.offsets[v]), int(g.offsets[v+1])
}

// AdjSlots returns the adjacency entries in the slot interval [from, to).
// The slice aliases the graph's storage and must not be modified.
func (g *Graph) AdjSlots(from, to int) []uint32 {
	return g.adj[from:to]
}

// SlotOwner returns the vertex whose adjacency contains the given slot: the
// unique v with offsets[v] <= slot < offsets[v+1].
func (g *Graph) SlotOwner(slot int) uint32 {
	s := int64(slot)
	// Binary search for the last offset <= s.
	lo, hi := 0, len(g.offsets)-1 // invariant: offsets[lo] <= s < offsets[hi]
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.offsets[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v uint32) bool {
	// Probe the smaller adjacency.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	return vertexset.Contains(g.Neighbors(u), v)
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
// The scan is performed once and cached.
func (g *Graph) MaxDegree() int {
	g.maxDegOnce.Do(func() {
		for v := 0; v < g.NumVertices(); v++ {
			if d := g.Degree(uint32(v)); d > g.maxDeg {
				g.maxDeg = d
			}
		}
	})
	return g.maxDeg
}

// AvgDegree returns 2|E| / |V| (0 for an empty graph).
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(n)
}

// Triangles returns the number of triangles in the graph. The first call
// computes the count with a degree-ordered forward-adjacency intersection
// (O(E^1.5)); subsequent calls return the cached value. The paper treats the
// triangle count as a constant of the immutable data graph (§IV-C).
func (g *Graph) Triangles() int64 {
	g.triOnce.Do(func() { g.tri = g.countTriangles() })
	return g.tri
}

func (g *Graph) countTriangles() int64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	// rank orders vertices by (degree, id); forward edges point from lower
	// to higher rank, so every triangle is counted exactly once and forward
	// degrees are O(sqrt(E)) bounded on average.
	rank := make([]uint32, n)
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	for r, v := range order {
		rank[v] = uint32(r)
	}
	fwdOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		cnt := int64(0)
		for _, w := range g.Neighbors(uint32(v)) {
			if rank[w] > rank[v] {
				cnt++
			}
		}
		fwdOff[v+1] = fwdOff[v] + cnt
	}
	fwd := make([]uint32, fwdOff[n])
	fill := make([]int64, n)
	copy(fill, fwdOff[:n])
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(uint32(v)) {
			if rank[w] > rank[uint32(v)] {
				fwd[fill[v]] = w
				fill[v]++
			}
		}
	}
	// Forward lists inherit ascending id order from the CSR adjacency, so
	// the merge intersection applies directly.
	var total int64
	for v := 0; v < n; v++ {
		fv := fwd[fwdOff[v]:fwdOff[v+1]]
		for _, w := range fv {
			fw := fwd[fwdOff[w]:fwdOff[w+1]]
			total += int64(vertexset.IntersectSize(fv, fw))
		}
	}
	return total
}

// Stats bundles the structural information the GraphPi performance model
// uses: |V|, |E| and the triangle count, from which the paper's p1 and p2
// probabilities derive (§IV-C).
type Stats struct {
	Vertices  int
	Edges     int64
	Triangles int64
	MaxDegree int
	AvgDegree float64
}

// Stats computes the graph's structural statistics (triangle count included,
// so the first call on a large graph is not free).
func (g *Graph) Stats() Stats {
	return Stats{
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		Triangles: g.Triangles(),
		MaxDegree: g.MaxDegree(),
		AvgDegree: g.AvgDegree(),
	}
}

// P1 returns the paper's p1 = 2|E| / |V|^2: the probability that an
// arbitrary vertex pair is connected.
func (s Stats) P1() float64 {
	if s.Vertices == 0 {
		return 0
	}
	v := float64(s.Vertices)
	return 2 * float64(s.Edges) / (v * v)
}

// P2 returns the paper's p2 = tri_cnt * |V| / (2|E|)^2: the probability that
// two vertices sharing a neighbor are themselves connected.
func (s Stats) P2() float64 {
	if s.Edges == 0 {
		return 0
	}
	e2 := 2 * float64(s.Edges)
	return float64(s.Triangles) * float64(s.Vertices) / (e2 * e2)
}

func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d tri=%d maxdeg=%d avgdeg=%.2f",
		s.Vertices, s.Edges, s.Triangles, s.MaxDegree, s.AvgDegree)
}

// Builder accumulates edges and produces an immutable CSR Graph.
// The zero value is ready to use. Builders must not be shared across
// goroutines without external synchronization.
type Builder struct {
	n     int
	edges []uint64 // packed min<<32 | max
}

// NewBuilder returns a Builder pre-sized for a graph with n vertices and
// capacity for m edges. n may grow automatically as edges are added.
func NewBuilder(n int, m int) *Builder {
	return &Builder{n: n, edges: make([]uint64, 0, m)}
}

// SetNumVertices raises the vertex count to at least n (isolated vertices
// are legal and appear with empty adjacency).
func (b *Builder) SetNumVertices(n int) {
	if n > b.n {
		b.n = n
	}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored;
// duplicates are removed at Build time. The vertex count grows to cover the
// endpoints.
func (b *Builder) AddEdge(u, v uint32) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	if int(v)+1 > b.n {
		b.n = int(v) + 1
	}
	b.edges = append(b.edges, uint64(u)<<32|uint64(v))
}

// NumPendingEdges returns the number of edges recorded so far, before
// deduplication.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the immutable CSR graph. The builder can be reused after
// Build; its recorded edges are retained.
func (b *Builder) Build() (*Graph, error) {
	if b.n > MaxVertices {
		return nil, fmt.Errorf("graph: %d vertices exceeds limit %d", b.n, MaxVertices)
	}
	sorted := make([]uint64, len(b.edges))
	copy(sorted, b.edges)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Dedupe in place.
	uniq := sorted[:0]
	var prev uint64
	for i, e := range sorted {
		if i == 0 || e != prev {
			uniq = append(uniq, e)
			prev = e
		}
	}
	n := b.n
	g := &Graph{offsets: make([]int64, n+1)}
	deg := make([]int64, n)
	for _, e := range uniq {
		deg[e>>32]++
		deg[uint32(e)]++
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	g.adj = make([]uint32, g.offsets[n])
	fill := make([]int64, n)
	copy(fill, g.offsets[:n])
	for _, e := range uniq {
		u, v := uint32(e>>32), uint32(e)
		g.adj[fill[u]] = v
		fill[u]++
		g.adj[fill[v]] = u
		fill[v]++
	}
	// Each neighborhood received its entries in two ascending interleaved
	// streams (edges sorted by (min,max)); sort per neighborhood to restore
	// the strict ascending invariant.
	for v := 0; v < n; v++ {
		nb := g.adj[g.offsets[v]:g.offsets[v+1]]
		if !vertexset.IsSorted(nb) {
			sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		}
	}
	return g, nil
}

// FromEdges builds a graph with n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]uint32) (*Graph, error) {
	b := NewBuilder(n, len(edges))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	b.SetNumVertices(n)
	return b.Build()
}

// Validate checks the CSR invariants (monotone offsets, sorted duplicate-free
// neighborhoods, symmetry, no self-loops). It is O(E log E) and intended for
// tests and loaders, not hot paths.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		nb := g.Neighbors(uint32(v))
		if !vertexset.IsSorted(nb) {
			return fmt.Errorf("graph: adjacency of %d not strictly ascending", v)
		}
		for _, w := range nb {
			if int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if w == uint32(v) {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if !vertexset.Contains(g.Neighbors(w), uint32(v)) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", v, w)
			}
		}
	}
	return nil
}

// ErrEmptyGraph is returned by operations that need at least one vertex.
var ErrEmptyGraph = errors.New("graph: empty graph")
