package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(0, 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(1, 0) // duplicate in the other direction
	b.AddEdge(3, 3) // self-loop, dropped
	b.SetNumVertices(5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NumVertices(); got != 5 {
		t.Errorf("NumVertices = %d, want 5", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	if got := g.Degree(0); got != 2 {
		t.Errorf("Degree(0) = %d, want 2", got)
	}
	if got := g.Degree(4); got != 0 {
		t.Errorf("Degree(4) = %d, want 0", got)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 3) {
		t.Error("HasEdge answers wrong")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph has %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Triangles() != 0 || g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Error("empty graph stats nonzero")
	}
	var zero Graph
	if zero.NumVertices() != 0 || zero.NumEdges() != 0 {
		t.Error("zero-value Graph not empty")
	}
}

func TestTriangleCountKnown(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int64
	}{
		{Complete(3), 1},
		{Complete(4), 4},
		{Complete(5), 10},
		{Complete(6), 20},
		{Complete(7), 35},
		{Cycle(3), 1},
		{Cycle(4), 0},
		{Cycle(6), 0},
		{Star(10), 0},
		{Path(10), 0},
	}
	for _, c := range cases {
		if got := c.g.Triangles(); got != c.want {
			t.Errorf("%s: Triangles = %d, want %d", c.g.Name(), got, c.want)
		}
	}
}

// refTriangles counts triangles by brute force over vertex triples of the
// adjacency matrix — only usable on tiny graphs.
func refTriangles(g *Graph) int64 {
	n := g.NumVertices()
	var cnt int64
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.HasEdge(uint32(a), uint32(b)) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if g.HasEdge(uint32(a), uint32(c)) && g.HasEdge(uint32(b), uint32(c)) {
					cnt++
				}
			}
		}
	}
	return cnt
}

func TestTriangleCountRandom(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := GNP(40, 0.15, seed)
		if got, want := g.Triangles(), refTriangles(g); got != want {
			t.Errorf("seed %d: Triangles = %d, want %d", seed, got, want)
		}
	}
	for seed := uint64(0); seed < 4; seed++ {
		g := BarabasiAlbert(60, 3, seed)
		if got, want := g.Triangles(), refTriangles(g); got != want {
			t.Errorf("BA seed %d: Triangles = %d, want %d", seed, got, want)
		}
	}
}

func TestStatsProbabilities(t *testing.T) {
	g := Complete(10)
	s := g.Stats()
	// K10: p1 = 2*45/100 = 0.9; p2 = 120*10/8100 ≈ 0.148
	if got := s.P1(); got < 0.89 || got > 0.91 {
		t.Errorf("P1 = %v, want 0.9", got)
	}
	if s.Triangles != 120 {
		t.Errorf("K10 triangles = %d, want 120", s.Triangles)
	}
	if s.MaxDegree != 9 || s.AvgDegree != 9 {
		t.Errorf("K10 degrees = %d/%v, want 9/9", s.MaxDegree, s.AvgDegree)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
	var empty Stats
	if empty.P1() != 0 || empty.P2() != 0 {
		t.Error("empty stats probabilities nonzero")
	}
}

func TestGenerators(t *testing.T) {
	t.Run("GNM", func(t *testing.T) {
		g := GNM(100, 300, 7)
		if g.NumVertices() != 100 || g.NumEdges() != 300 {
			t.Errorf("GNM size = %d/%d, want 100/300", g.NumVertices(), g.NumEdges())
		}
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
		// Determinism.
		g2 := GNM(100, 300, 7)
		if g2.NumEdges() != g.NumEdges() || !equalGraphs(g, g2) {
			t.Error("GNM not deterministic for equal seed")
		}
		if equalGraphs(g, GNM(100, 300, 8)) {
			t.Error("GNM identical across different seeds (suspicious)")
		}
	})
	t.Run("GNM caps at complete", func(t *testing.T) {
		g := GNM(5, 1000, 1)
		if g.NumEdges() != 10 {
			t.Errorf("GNM overfull = %d edges, want 10", g.NumEdges())
		}
	})
	t.Run("BarabasiAlbert", func(t *testing.T) {
		g := BarabasiAlbert(500, 4, 3)
		if g.NumVertices() != 500 {
			t.Errorf("BA vertices = %d", g.NumVertices())
		}
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
		// Preferential attachment must produce skew: max degree well above average.
		if float64(g.MaxDegree()) < 3*g.AvgDegree() {
			t.Errorf("BA not skewed: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
		}
		if !equalGraphs(g, BarabasiAlbert(500, 4, 3)) {
			t.Error("BA not deterministic")
		}
	})
	t.Run("BA degenerate", func(t *testing.T) {
		g := BarabasiAlbert(3, 5, 1)
		if g.NumEdges() != 3 { // falls back to K3
			t.Errorf("BA degenerate = %d edges, want 3", g.NumEdges())
		}
	})
	t.Run("RMAT", func(t *testing.T) {
		g := RMAT(10, 4000, 0.57, 0.19, 0.19, 11)
		if g.NumVertices() != 1024 {
			t.Errorf("RMAT vertices = %d, want 1024", g.NumVertices())
		}
		if g.NumEdges() < 3000 {
			t.Errorf("RMAT produced too few edges: %d", g.NumEdges())
		}
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
		if !equalGraphs(g, RMAT(10, 4000, 0.57, 0.19, 0.19, 11)) {
			t.Error("RMAT not deterministic")
		}
	})
	t.Run("GNP", func(t *testing.T) {
		g := GNP(50, 0.2, 5)
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
	})
}

func equalGraphs(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(uint32(v)), b.Neighbors(uint32(v))
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := GNP(30, 0.3, 9)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(g, g2) {
		t.Error("edge-list round trip changed the graph")
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n% another\n// third\n\n0 1\n1 2 extra-ignored\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.Triangles() != 1 {
		t.Errorf("parsed %d edges %d triangles, want 3/1", g.NumEdges(), g.Triangles())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 -1\n", "0 99999999999999999999\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := BarabasiAlbert(200, 3, 13)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(g, g2) {
		t.Error("binary round trip changed the graph")
	}
}

// TestBinaryRoundTripOptimized checks that the GPiCSR2 snapshot persists the
// hybrid view: dataset name, reorder maps, and a rebuilt hub set of the same
// size — so Optimize cost is paid once per dataset.
func TestBinaryRoundTripOptimized(t *testing.T) {
	g := BarabasiAlbert(500, 6, 21)
	g.SetName("ba-fixture")
	og := g.Reorder()
	og.BuildHubBitmaps(1<<20, 0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, og); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(og, g2) {
		t.Error("round trip changed the CSR arrays")
	}
	if g2.Name() != "ba-fixture" {
		t.Errorf("name = %q, want %q", g2.Name(), "ba-fixture")
	}
	if !g2.IsReordered() {
		t.Fatal("round trip dropped the reorder map")
	}
	for v := range og.NewToOld() {
		if og.NewToOld()[v] != g2.NewToOld()[v] {
			t.Fatalf("newToOld[%d] = %d, want %d", v, g2.NewToOld()[v], og.NewToOld()[v])
		}
		if og.OldToNew()[v] != g2.OldToNew()[v] {
			t.Fatalf("oldToNew[%d] = %d, want %d", v, g2.OldToNew()[v], og.OldToNew()[v])
		}
	}
	if og.NumHubs() == 0 {
		t.Fatal("fixture should have hubs")
	}
	if g2.NumHubs() != og.NumHubs() {
		t.Errorf("rebuilt hubs = %d, want %d", g2.NumHubs(), og.NumHubs())
	}
	for v := 0; v < og.NumVertices(); v++ {
		want, got := og.HubBitmap(uint32(v)) != nil, g2.HubBitmap(uint32(v)) != nil
		if want != got {
			t.Fatalf("hub bitmap presence differs at %d: %v vs %v", v, want, got)
		}
	}
}

// TestBinaryRoundTripEmpty pins the empty-graph fix: the format always
// carries the n+1 offsets array, so a zero-value Graph (nil offsets) and a
// built 0-vertex graph both survive write→read.
func TestBinaryRoundTripEmpty(t *testing.T) {
	built, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*Graph{"zero-value": {}, "built": built} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if g2.NumVertices() != 0 || g2.NumEdges() != 0 {
			t.Errorf("%s: round trip produced |V|=%d |E|=%d", name, g2.NumVertices(), g2.NumEdges())
		}
	}
}

// writeBinaryV1 reproduces the previous release's writer byte-for-byte so
// the compatibility path stays pinned even though the code now writes v2.
func writeBinaryV1(w io.Writer, g *Graph) error {
	if _, err := w.Write([]byte("GPiCSR1\n")); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(g.NumVertices())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, g.adj)
}

func TestBinaryReadsV1Snapshots(t *testing.T) {
	g := BarabasiAlbert(150, 4, 7)
	var buf bytes.Buffer
	if err := writeBinaryV1(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(g, g2) {
		t.Error("v1 snapshot round trip changed the graph")
	}
	// The old writer emitted no offsets array for a zero-value graph; the
	// reader must tolerate that layout too.
	buf.Reset()
	if err := writeBinaryV1(&buf, &Graph{}); err != nil {
		t.Fatal(err)
	}
	g2, err = ReadBinary(&buf)
	if err != nil {
		t.Fatalf("empty v1 snapshot: %v", err)
	}
	if g2.NumVertices() != 0 {
		t.Errorf("empty v1 snapshot gave |V|=%d", g2.NumVertices())
	}
}

func TestBinaryCorruption(t *testing.T) {
	g := GNP(20, 0.3, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Bad magic.
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated payload.
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated snapshot accepted")
	}
	// Corrupted adjacency id (out of range) — flip high bytes near the end.
	bad = append([]byte{}, data...)
	bad[len(bad)-1] = 0xFF
	bad[len(bad)-2] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt adjacency accepted")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := GNP(25, 0.25, 3)
	path := t.TempDir() + "/g.bin"
	if err := SaveBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(g, g2) {
		t.Error("file round trip changed the graph")
	}
	if _, err := LoadBinaryFile(path + ".missing"); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestCompactIDs(t *testing.T) {
	b := NewBuilder(0, 3)
	b.AddEdge(2, 5)
	b.AddEdge(5, 9)
	b.SetNumVertices(12)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompactIDs(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVertices() != 3 || c.NumEdges() != 2 {
		t.Errorf("compact = %d vertices %d edges, want 3/2", c.NumVertices(), c.NumEdges())
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildIsCanonicalProperty(t *testing.T) {
	// Property: building from any shuffled, duplicated edge sequence yields
	// a valid graph equal to building from the canonical sequence.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		n := 2 + r.IntN(20)
		var edges [][2]uint32
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.4 {
					edges = append(edges, [2]uint32{uint32(u), uint32(v)})
				}
			}
		}
		g1, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		// Shuffle, flip directions, duplicate some.
		shuffled := append([][2]uint32{}, edges...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for i := range shuffled {
			if r.IntN(2) == 0 {
				shuffled[i][0], shuffled[i][1] = shuffled[i][1], shuffled[i][0]
			}
		}
		if len(shuffled) > 0 {
			shuffled = append(shuffled, shuffled[0], shuffled[len(shuffled)/2])
		}
		g2, err := FromEdges(n, shuffled)
		if err != nil {
			return false
		}
		return equalGraphs(g1, g2) && g1.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNeighborsAscending(t *testing.T) {
	g := RMAT(8, 1500, 0.45, 0.25, 0.15, 5)
	for v := 0; v < g.NumVertices(); v++ {
		nb := g.Neighbors(uint32(v))
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("vertex %d adjacency not ascending", v)
			}
		}
	}
}
