package graph

import "testing"

func BenchmarkBuildBA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BarabasiAlbert(20000, 8, uint64(i))
	}
}

func BenchmarkTriangleCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := BarabasiAlbert(20000, 8, 7) // fresh graph: Triangles caches
		b.StartTimer()
		g.Triangles()
	}
}

func BenchmarkNeighborsAccess(b *testing.B) {
	g := BarabasiAlbert(20000, 8, 7)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		v := uint32(i % g.NumVertices())
		total += len(g.Neighbors(v))
	}
	_ = total
}

func BenchmarkHasEdge(b *testing.B) {
	g := BarabasiAlbert(20000, 8, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(uint32(i%1000), uint32((i*7)%20000))
	}
}
