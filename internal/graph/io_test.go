package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"testing"
)

// These tests pin the robustness contract of ReadBinary: cluster workers now
// load GPiCSR2 snapshots from disk they did not write (shared filesystems,
// rsync'd replicas), so every corrupt or truncated input must surface as an
// error — never a panic, never a silently wrong graph.

// readNoPanic runs ReadBinary and converts panics into test failures tagged
// with what was being read.
func readNoPanic(t *testing.T, what string, data []byte) (*Graph, error) {
	t.Helper()
	var (
		g   *Graph
		err error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: ReadBinary panicked: %v", what, r)
			}
		}()
		g, err = ReadBinary(bytes.NewReader(data))
	}()
	return g, err
}

// snapshotOf serializes g and returns the bytes.
func snapshotOf(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// v3 layout offsets for a snapshot with an empty name and no reorder map:
// magic(8) n(8) nameLen(8) mapLen(8) hubBytes(8) hubFloor(8)
// offsets(8(n+1)) adj(4·slots).
const (
	offN        = 8
	offNameLen  = 16
	offMapLen   = 24
	offHubBytes = 32
	offHubFloor = 40
	offOffsets  = 48
)

func pathGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(3, [][2]uint32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestReadBinaryTruncatedEverywhere feeds every strict prefix of valid V2
// and V1 snapshots to ReadBinary — plain, named, and reordered-with-hubs
// variants, so every parser section gets cut mid-field at least once.
func TestReadBinaryTruncatedEverywhere(t *testing.T) {
	plain := pathGraph(t)
	named := pathGraph(t)
	named.SetName("truncation-fixture")
	opt := BarabasiAlbert(300, 4, 9).Reorder()
	opt.BuildHubBitmaps(1<<20, 1)
	if opt.NumHubs() == 0 {
		t.Fatal("fixture needs hubs so the hub-budget field is nonzero")
	}
	fixtures := map[string][]byte{
		"plain":     snapshotOf(t, plain),
		"named":     snapshotOf(t, named),
		"optimized": snapshotOf(t, opt),
		"v1": func() []byte {
			var buf bytes.Buffer
			buf.WriteString("GPiCSR1\n")
			binary.Write(&buf, binary.LittleEndian, int64(3))
			binary.Write(&buf, binary.LittleEndian, []int64{0, 1, 3, 4})
			binary.Write(&buf, binary.LittleEndian, []uint32{1, 0, 2, 1})
			return buf.Bytes()
		}(),
	}
	for name, data := range fixtures {
		if _, err := readNoPanic(t, name, data); err != nil {
			t.Fatalf("%s: intact snapshot rejected: %v", name, err)
		}
		for cut := 0; cut < len(data); cut++ {
			if _, err := readNoPanic(t, fmt.Sprintf("%s[:%d]", name, cut), data[:cut]); err == nil {
				t.Errorf("%s truncated to %d/%d bytes accepted", name, cut, len(data))
				break
			}
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	data := snapshotOf(t, pathGraph(t))
	for _, magic := range []string{"GPiCSR9\n", "XXXXXXXX", "GPiCSR2 "} {
		bad := append([]byte{}, data...)
		copy(bad, magic)
		if _, err := readNoPanic(t, magic, bad); err == nil {
			t.Errorf("magic %q accepted", magic)
		}
	}
}

// put64 overwrites the int64 at byte offset off.
func put64(data []byte, off int, v int64) {
	binary.LittleEndian.PutUint64(data[off:], uint64(v))
}

// TestReadBinaryInconsistentOffsets corrupts the offsets array in every way
// a hostile or bit-rotted file could: non-monotone, nonzero start, negative
// total, a total claiming far more adjacency than the file (or any simple
// graph) can hold.
func TestReadBinaryInconsistentOffsets(t *testing.T) {
	base := snapshotOf(t, pathGraph(t))
	offsetAt := func(i int) int { return offOffsets + 8*i }
	cases := map[string]func(data []byte){
		"non-monotone":   func(d []byte) { put64(d, offsetAt(1), 3); put64(d, offsetAt(2), 1) },
		"nonzero start":  func(d []byte) { put64(d, offsetAt(0), 2) },
		"negative total": func(d []byte) { put64(d, offsetAt(3), -4) },
		"huge total": func(d []byte) {
			// All offsets monotone but claiming an absurd adjacency: the
			// reader must error (truncation or impossibility), not
			// allocate petabytes.
			put64(d, offsetAt(3), 1<<40)
		},
		"impossible for n": func(d []byte) {
			// 3 vertices admit at most 6 slots; claim 8 and pad the file
			// so a naive reader would happily parse garbage.
			put64(d, offsetAt(3), 8)
		},
		"negative vertex count": func(d []byte) { put64(d, offN, -1) },
		"absurd vertex count":   func(d []byte) { put64(d, offN, 1<<40) },
		"negative name length":  func(d []byte) { put64(d, offNameLen, -5) },
		"huge name length":      func(d []byte) { put64(d, offNameLen, 1<<30) },
		"bad map length":        func(d []byte) { put64(d, offMapLen, 2) },
		"negative hub budget":   func(d []byte) { put64(d, offHubBytes, -1) },
	}
	for name, corrupt := range cases {
		data := append([]byte{}, base...)
		corrupt(data)
		if name == "impossible for n" {
			data = append(data, make([]byte, 16)...)
		}
		if _, err := readNoPanic(t, name, data); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}

// TestReadBinaryHugeHeaderCounts: a tiny corrupt file whose header claims
// billions of vertices (within MaxVertices, so readCount accepts it) must
// fail on truncation without count-sized allocations — the offsets, reorder
// map and adjacency reads all grow only as real file bytes arrive. The test
// enforces the bound via the allocation accountant, not wall-clock luck.
func TestReadBinaryHugeHeaderCounts(t *testing.T) {
	n := int64(MaxVertices - 1)
	headers := map[string][]byte{
		"v2 offsets": func() []byte {
			var buf bytes.Buffer
			buf.WriteString("GPiCSR2\n")
			binary.Write(&buf, binary.LittleEndian, n)        // vertex count
			binary.Write(&buf, binary.LittleEndian, int64(0)) // name length
			binary.Write(&buf, binary.LittleEndian, int64(0)) // map length
			binary.Write(&buf, binary.LittleEndian, int64(0)) // hub budget
			return buf.Bytes()
		}(),
		"v2 reorder map": func() []byte {
			var buf bytes.Buffer
			buf.WriteString("GPiCSR2\n")
			binary.Write(&buf, binary.LittleEndian, n)
			binary.Write(&buf, binary.LittleEndian, int64(0))
			binary.Write(&buf, binary.LittleEndian, n) // map length = n
			return buf.Bytes()
		}(),
		"v1 offsets": func() []byte {
			var buf bytes.Buffer
			buf.WriteString("GPiCSR1\n")
			binary.Write(&buf, binary.LittleEndian, n)
			return buf.Bytes()
		}(),
	}
	for name, data := range headers {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		_, err := readNoPanic(t, name, data)
		runtime.ReadMemStats(&after)
		if err == nil {
			t.Errorf("%s: truncated huge-count snapshot accepted", name)
		}
		// One chunk buffer plus its accumulator is ≤ 16 MiB; 64 MiB of
		// headroom separates that decisively from the ~34 GB a
		// count-sized allocation would attempt.
		if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
			t.Errorf("%s: allocated %d MiB for a %d-byte file", name, grew>>20, len(data))
		}
	}
}

// TestReadBinaryBadReorderMap: a stored new→old map that is not a
// permutation must be rejected (a wrong map silently mistranslates every
// Enumerate result).
func TestReadBinaryBadReorderMap(t *testing.T) {
	g := BarabasiAlbert(50, 3, 3).Reorder()
	data := snapshotOf(t, g)
	nameLen := int(binary.LittleEndian.Uint64(data[offNameLen:]))
	mapStart := offMapLen + nameLen + 8
	// Duplicate entry: map[1] = map[0].
	bad := append([]byte{}, data...)
	copy(bad[mapStart+4:mapStart+8], bad[mapStart:mapStart+4])
	if _, err := readNoPanic(t, "duplicate map entry", bad); err == nil {
		t.Error("non-permutation reorder map accepted")
	}
	// Out-of-range entry.
	bad = append([]byte{}, data...)
	binary.LittleEndian.PutUint32(bad[mapStart:], uint32(g.NumVertices()))
	if _, err := readNoPanic(t, "out-of-range map entry", bad); err == nil {
		t.Error("out-of-range reorder map accepted")
	}
}

// TestReadBinaryAsymmetricAdjacency: Validate must catch structurally sized
// but semantically broken CSR payloads.
func TestReadBinaryAsymmetricAdjacency(t *testing.T) {
	data := snapshotOf(t, pathGraph(t))
	// adjacency is [1, 0, 2, 1]; replace the trailing 1 (2's neighbor 1)
	// with 0, breaking symmetry (0 has no edge to 2).
	bad := append([]byte{}, data...)
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], 0)
	if _, err := readNoPanic(t, "asymmetric", bad); err == nil {
		t.Error("asymmetric adjacency accepted")
	}
}

// TestBuildHubBitmapsDegreeFloor covers the new floor parameter: 0 keeps the
// default, a floor of 1 admits low-degree vertices the default rejects, a
// huge floor yields none.
func TestBuildHubBitmapsDegreeFloor(t *testing.T) {
	g := GNM(500, 2000, 7).Reorder() // avg degree 8, max well below 64
	if k := g.BuildHubBitmaps(1<<22, 0); k != 0 {
		t.Fatalf("default floor built %d hubs on a flat graph", k)
	}
	k := g.BuildHubBitmaps(1<<22, 1)
	if k == 0 {
		t.Fatal("floor 1 built no hubs")
	}
	for v := 0; v < k; v++ {
		if g.Degree(uint32(v)) < 1 {
			t.Fatalf("hub %d below floor", v)
		}
	}
	if k2 := g.BuildHubBitmaps(1<<22, 1<<30); k2 != 0 {
		t.Fatalf("absurd floor built %d hubs", k2)
	}
}

// writeBinaryV2 reproduces the GPiCSR2 writer byte-for-byte (no hub degree
// floor field) so the compatibility path stays pinned now that the code
// writes GPiCSR3.
func writeBinaryV2(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("GPiCSR2\n")
	name := g.Name()
	for _, v := range []int64{int64(g.NumVertices()), int64(len(name))} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	buf.WriteString(name)
	binary.Write(&buf, binary.LittleEndian, int64(len(g.NewToOld())))
	if len(g.NewToOld()) > 0 {
		binary.Write(&buf, binary.LittleEndian, g.NewToOld())
	}
	var hubBytes int64
	if g.NumHubs() > 0 {
		hubBytes = g.HubMemoryBytes()
	}
	binary.Write(&buf, binary.LittleEndian, hubBytes)
	binary.Write(&buf, binary.LittleEndian, g.offsets)
	binary.Write(&buf, binary.LittleEndian, g.adj)
	return buf.Bytes()
}

// TestSnapshotPersistsHubDegreeFloor pins the GPiCSR3 field: on a flat graph
// whose hubs only exist below the default floor, a save/load round trip must
// reproduce the tuned hub set — the pre-GPiCSR3 behavior (rebuild with the
// default floor) silently dropped every hub.
func TestSnapshotPersistsHubDegreeFloor(t *testing.T) {
	g := GNM(500, 2000, 7).Reorder() // max degree well below the default floor
	if k := g.BuildHubBitmaps(1<<22, 4); k == 0 {
		t.Fatal("fixture built no hubs at floor 4")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.HubDegreeFloor() != 4 {
		t.Errorf("reloaded floor = %d, want 4", g2.HubDegreeFloor())
	}
	if g2.NumHubs() != g.NumHubs() {
		t.Errorf("reloaded hubs = %d, want %d", g2.NumHubs(), g.NumHubs())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if (g.HubBitmap(uint32(v)) != nil) != (g2.HubBitmap(uint32(v)) != nil) {
			t.Fatalf("hub bitmap presence differs at vertex %d", v)
		}
	}
}

// TestReadBinaryV2Compat: GPiCSR2 snapshots (no floor field) must still load
// and rebuild with the default floor.
func TestReadBinaryV2Compat(t *testing.T) {
	g := BarabasiAlbert(500, 6, 21).Reorder()
	g.SetName("v2-compat")
	g.BuildHubBitmaps(1<<20, 0)
	if g.NumHubs() == 0 {
		t.Fatal("fixture needs hubs")
	}
	g2, err := readNoPanic(t, "v2", writeBinaryV2(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name() != "v2-compat" || !g2.IsReordered() {
		t.Fatalf("v2 snapshot lost name/reorder: name=%q reordered=%v", g2.Name(), g2.IsReordered())
	}
	if g2.NumHubs() != g.NumHubs() {
		t.Errorf("v2 rebuilt hubs = %d, want %d", g2.NumHubs(), g.NumHubs())
	}
	if g2.HubDegreeFloor() != DefaultHubDegreeFloor {
		t.Errorf("v2 floor = %d, want default %d", g2.HubDegreeFloor(), DefaultHubDegreeFloor)
	}
	// Truncations of the v2 layout must keep erroring through the shared
	// parser now that it serves two versions.
	data := writeBinaryV2(t, g)
	for cut := 0; cut < len(data); cut += 101 {
		if _, err := readNoPanic(t, fmt.Sprintf("v2[:%d]", cut), data[:cut]); err == nil {
			t.Fatalf("v2 truncated to %d/%d bytes accepted", cut, len(data))
		}
	}
}

// TestReadBinaryBadHubFloor rejects corrupt floor values instead of building
// nonsense hub sets.
func TestReadBinaryBadHubFloor(t *testing.T) {
	g := BarabasiAlbert(300, 5, 3).Reorder()
	g.SetName("") // keep the floor field at a computable offset
	g.BuildHubBitmaps(1<<20, 0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The floor field sits right after the hub budget: locate it from the
	// layout (magic, n, nameLen, name, mapLen, map, hubBytes, hubFloor).
	off := 8 + 8 + 8 + 0 + 8 + 4*g.NumVertices() + 8
	for _, bad := range []int64{-1, int64(MaxVertices) + 1} {
		mut := append([]byte{}, data...)
		binary.LittleEndian.PutUint64(mut[off:], uint64(bad))
		if _, err := readNoPanic(t, fmt.Sprintf("floor=%d", bad), mut); err == nil {
			t.Errorf("hub floor %d accepted", bad)
		}
	}
}
