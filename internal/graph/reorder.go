package graph

import "sort"

// This file implements the degree-ordered relabeling pass of the hybrid
// adjacency engine. Relabeling vertices so that ids descend by degree has two
// compounding effects on the GraphPi execution engine:
//
//   - restriction windows (vertexset.Below/Above) cut candidate sets much
//     earlier: the high-degree vertices that dominate candidate lists now
//     cluster at the low end of the id space, so an id(x) < id(y) restriction
//     prunes the bulk of a hub adjacency in one binary search;
//   - hub detection becomes a plain id threshold: the top-K vertices by
//     degree are exactly ids [0, K), which is what the bitmap layer (hubs.go)
//     exploits.
//
// Embedding counts are invariant under relabeling (restrictions only need
// *some* consistent total order), but reported embeddings must use original
// ids, so the reordered graph carries the old↔new maps and the engine
// translates at the leaves.

// Reorder returns a copy of the graph relabeled so vertex ids descend by
// degree (new id 0 has maximum degree; ties break by ascending current id).
// The returned graph remembers the id maps: NewToOld/OldToNew return them and
// the execution engine uses them to report original ids from Enumerate.
// Reordering a graph that is itself reordered composes the maps, so OrigID
// always reaches the ids of the graph the chain started from.
func (g *Graph) Reorder() *Graph {
	n := g.NumVertices()
	if n == 0 {
		return &Graph{name: g.name}
	}
	order := degreeDescOrder(g) // new id → current id
	// cur2new relabels this graph's ids; the stored maps compose with any
	// previous reordering so OrigID always reaches the pre-Reorder ids of
	// the ORIGINAL graph, keeping Enumerate's original-id contract intact
	// even for Reorder-of-Reorder.
	cur2new := make([]uint32, n)
	for newV, curV := range order {
		cur2new[curV] = uint32(newV)
	}
	newToOld := order
	if g.newToOld != nil {
		newToOld = make([]uint32, n)
		for newV, curV := range order {
			newToOld[newV] = g.newToOld[curV]
		}
	}
	oldToNew := make([]uint32, n)
	for newV, oldV := range newToOld {
		oldToNew[oldV] = uint32(newV)
	}
	out := &Graph{
		offsets:  make([]int64, n+1),
		name:     g.name,
		newToOld: newToOld,
		oldToNew: oldToNew,
	}
	for newV, curV := range order {
		out.offsets[newV+1] = out.offsets[newV] + int64(g.Degree(curV))
	}
	out.adj = make([]uint32, out.offsets[n])
	for newV, curV := range order {
		dst := out.adj[out.offsets[newV]:out.offsets[newV+1]]
		for i, w := range g.Neighbors(curV) {
			dst[i] = cur2new[w]
		}
		sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	}
	return out
}

// degreeDescOrder returns the vertex ids sorted by descending degree with
// ascending-id tie-break — the one ordering shared by Reorder and
// BuildHubBitmaps, so "hubs are the id prefix of a reordered graph" holds
// by construction.
func degreeDescOrder(g *Graph) []uint32 {
	order := make([]uint32, g.NumVertices())
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	return order
}

// IsReordered reports whether this graph was produced by Reorder.
func (g *Graph) IsReordered() bool { return g.newToOld != nil }

// NewToOld returns the new→old id map of a reordered graph (nil otherwise).
// The returned slice is the graph's own storage; do not modify.
func (g *Graph) NewToOld() []uint32 { return g.newToOld }

// OldToNew returns the old→new id map of a reordered graph (nil otherwise).
// The returned slice is the graph's own storage; do not modify.
func (g *Graph) OldToNew() []uint32 { return g.oldToNew }

// OrigID maps a vertex id of this graph back to the id in the original
// (never-reordered) graph at the root of the Reorder chain. For
// non-reordered graphs it is the identity.
func (g *Graph) OrigID(v uint32) uint32 {
	if g.newToOld == nil {
		return v
	}
	return g.newToOld[v]
}
