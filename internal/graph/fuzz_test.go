package graph

// Fuzz target for the binary snapshot reader: ReadBinary parses
// length-prefixed arrays from untrusted files (and, in the cluster, from
// master-pushed snapshot streams), so arbitrary input must produce either a
// valid graph or an error — never a panic, never a count-sized allocation,
// and never a structurally invalid graph. Run continuously with
//
//	go test -fuzz=FuzzReadBinary -fuzztime=30s ./internal/graph

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// snapshotBytes serializes g for the seed corpus.
func snapshotBytes(f *testing.F, g *Graph) []byte {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

func FuzzReadBinary(f *testing.F) {
	f.Add(snapshotBytes(f, &Graph{}))
	tri, err := FromEdges(3, [][2]uint32{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snapshotBytes(f, tri))
	star, err := FromEdges(6, [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	if err != nil {
		f.Fatal(err)
	}
	star.SetName("star")
	f.Add(snapshotBytes(f, star))
	f.Add(snapshotBytes(f, star.Reorder()))

	// Legacy GPiCSR1 layout (no name/reorder sections): magic, n, offsets,
	// adjacency length, adjacency — hand-built, since WriteBinary only emits
	// the current version.
	var v1 bytes.Buffer
	v1.WriteString(binaryMagicV1)
	for _, word := range []int64{2 /* n */, 0, 1, 2 /* offsets */, 2 /* adj len */} {
		binary.Write(&v1, binary.LittleEndian, word)
	}
	binary.Write(&v1, binary.LittleEndian, []uint32{1, 0})
	f.Add(v1.Bytes())

	// Hostile headers: a version-2 snapshot declaring a huge vertex count
	// with no data behind it, and a bad magic.
	var huge bytes.Buffer
	huge.WriteString(binaryMagicV2)
	binary.Write(&huge, binary.LittleEndian, int64(1<<40))
	f.Add(huge.Bytes())
	f.Add([]byte("GPiCSR9\nxxxxxxxx"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must satisfy the graph invariants...
		if err := g.Validate(); err != nil {
			t.Fatalf("ReadBinary returned an invalid graph: %v", err)
		}
		// ...and survive a write/read round-trip with its shape intact.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("re-encoding accepted graph: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-reading accepted graph: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() ||
			g2.NumAdjSlots() != g.NumAdjSlots() || g2.IsReordered() != g.IsReordered() {
			t.Fatalf("round-trip changed shape: %d/%d/%d/%v -> %d/%d/%d/%v",
				g.NumVertices(), g.NumEdges(), g.NumAdjSlots(), g.IsReordered(),
				g2.NumVertices(), g2.NumEdges(), g2.NumAdjSlots(), g2.IsReordered())
		}
	})
}
