package graph

import (
	"graphpi/internal/vertexset"
)

// This file implements the bitmap hub-adjacency layer of the hybrid
// adjacency engine. On power-law graphs a handful of hub vertices appear in
// a large share of all intersections; materializing each hub's adjacency as
// a packed bitset turns hub∩anything from O(n+m) merge work into O(|small|)
// single-word probes (see internal/vertexset/bitmap.go for the kernels).
// Bitmaps are an acceleration alongside the CSR lists, never a replacement:
// hub vertices keep their sorted adjacency slices.

// DefaultHubDegreeFloor is the smallest degree worth a bitmap when the
// caller does not choose one: below it the scalar kernels are already cheap
// and the bitmap's O(n/64) memory would be wasted. Workload-aware callers
// (the ROADMAP's cost-model budget tuning) can lower the floor for
// intersection-heavy schedules or raise it to reserve the budget for the
// very top of the degree distribution.
const DefaultHubDegreeFloor = 64

// DefaultHubBudget is the bitmap memory budget BuildHubBitmaps applies when
// the caller passes budget <= 0 (64 MiB — roughly 500 hub bitmaps on a
// million-vertex graph).
const DefaultHubBudget = 64 << 20

// BuildHubBitmaps precomputes packed adjacency bitsets for the top-K
// vertices by degree, with K chosen as the largest count keeping the total
// hub memory — bitmaps plus the 4n-byte vertex index — within budgetBytes
// (<= 0 → DefaultHubBudget), restricted to members with degree >=
// degreeFloor (<= 0 → DefaultHubDegreeFloor). It returns K. Calling it
// again replaces the previous hub set. On a Reorder()ed graph the hubs are
// exactly the id prefix [0, K).
//
// BuildHubBitmaps is not safe to call concurrently with readers; build the
// hub set before sharing the graph across workers.
func (g *Graph) BuildHubBitmaps(budgetBytes int64, degreeFloor int) int {
	g.hubIdx, g.hubBits, g.hubWords, g.numHubs, g.hubFloor = nil, nil, 0, 0, 0
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	if budgetBytes <= 0 {
		budgetBytes = DefaultHubBudget
	}
	if degreeFloor <= 0 {
		degreeFloor = DefaultHubDegreeFloor
	}
	g.hubFloor = degreeFloor
	words := vertexset.BitmapWords(n)
	bytesPer := int64(words) * 8
	// The per-vertex index table costs 4n bytes whenever any hub exists;
	// charge it against the budget so the caller's bound holds in total.
	budgetBytes -= int64(n) * 4
	maxK := int(budgetBytes / bytesPer)
	if maxK <= 0 {
		return 0
	}
	// Top-K by degree. On a Reorder()ed graph ids already descend by
	// degree, so the hubs are the id prefix and no sort is needed;
	// elsewhere pay one O(n log n) sort.
	var order []uint32
	if !g.IsReordered() {
		order = degreeDescOrder(g)
	}
	hubAt := func(i int) uint32 {
		if order == nil {
			return uint32(i)
		}
		return order[i]
	}
	k := 0
	for k < n && k < maxK && g.Degree(hubAt(k)) >= degreeFloor {
		k++
	}
	if k == 0 {
		return 0
	}
	g.hubWords = words
	g.numHubs = k
	g.hubBits = make([]uint64, k*words)
	g.hubIdx = make([]int32, n)
	for i := range g.hubIdx {
		g.hubIdx[i] = -1
	}
	for i := 0; i < k; i++ {
		v := hubAt(i)
		g.hubIdx[v] = int32(i)
		bm := vertexset.Bitmap(g.hubBits[i*words : (i+1)*words])
		for _, w := range g.Neighbors(v) {
			bm.Set(w)
		}
	}
	return k
}

// NumHubs returns the number of vertices with a precomputed adjacency
// bitmap (0 when BuildHubBitmaps has not run).
func (g *Graph) NumHubs() int { return g.numHubs }

// HubDegreeFloor returns the degree floor the current hub set was built
// with (0 when BuildHubBitmaps has not run). Snapshots persist it so a
// non-default floor survives a save/load round trip.
func (g *Graph) HubDegreeFloor() int { return g.hubFloor }

// HubBitmap returns the adjacency bitset of v, or nil when v has none. The
// bitmap aliases the graph's storage and must not be modified.
func (g *Graph) HubBitmap(v uint32) vertexset.Bitmap {
	if g.hubIdx == nil {
		return nil
	}
	i := g.hubIdx[v]
	if i < 0 {
		return nil
	}
	return vertexset.Bitmap(g.hubBits[int(i)*g.hubWords : (int(i)+1)*g.hubWords])
}

// HubMemoryBytes returns the memory held by the hub bitmaps.
func (g *Graph) HubMemoryBytes() int64 {
	return int64(len(g.hubBits))*8 + int64(len(g.hubIdx))*4
}
