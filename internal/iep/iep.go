// Package iep implements GraphPi's counting optimization based on the
// Inclusion-Exclusion Principle (paper §IV-D, Algorithm 2).
//
// When a configuration's innermost k loops carry no intersection work (their
// pattern vertices are pairwise non-adjacent — guaranteed by Phase 2 of the
// schedule generator), counting does not need to enumerate those loops. With
// S_1 … S_k the candidate sets of the k vertices, the number of k-tuples
// (e_1, …, e_k), e_i ∈ S_i, with all entries distinct is
//
//	|S_IEP| = Σ_π μ(π) · Π_{B ∈ π} |∩_{i∈B} S_i|
//
// summed over the set partitions π of {1..k} with Möbius coefficient
// μ(π) = Π_B (−1)^{|B|−1}(|B|−1)!. This closed form is algebraically equal
// to the paper's Algorithm 2 (inclusion–exclusion over subsets of the
// equality pairs A_{i,j}, grouping each subset by the connected components
// of its pair graph); the partition form simply merges the subsets that
// share a component structure. Both forms are implemented here and
// cross-checked in tests; the engine uses the partition form.
package iep

import (
	"math/bits"

	"graphpi/internal/vertexset"
)

// MaxK bounds the supported number of innermost IEP loops. Bell(8) = 4140
// partition terms is still trivial; pattern sizes cap k well below this.
const MaxK = 8

// Term is one partition of {0..k-1}: Blocks holds one bitmask per block and
// Coef its Möbius coefficient.
type Term struct {
	Blocks []uint16
	Coef   int64
}

// Terms enumerates all set partitions of {0..k-1} with their coefficients,
// in a deterministic order.
func Terms(k int) []Term {
	if k < 1 || k > MaxK {
		panic("iep: k out of range")
	}
	var out []Term
	var blocks []uint16
	var rec func(next int)
	rec = func(next int) {
		if next == k {
			t := Term{Blocks: append([]uint16(nil), blocks...), Coef: 1}
			for _, b := range t.Blocks {
				c := bits.OnesCount16(b)
				t.Coef *= signedFactorial(c)
			}
			out = append(out, t)
			return
		}
		// Element `next` joins an existing block or starts a new one.
		for i := range blocks {
			blocks[i] |= 1 << next
			rec(next + 1)
			blocks[i] &^= 1 << next
		}
		blocks = append(blocks, 1<<next)
		rec(next + 1)
		blocks = blocks[:len(blocks)-1]
	}
	rec(0)
	return out
}

// signedFactorial returns (−1)^(c−1) · (c−1)! — the Möbius coefficient of a
// block of size c in the partition lattice.
func signedFactorial(c int) int64 {
	f := int64(1)
	for i := 2; i < c; i++ {
		f *= int64(i)
	}
	if c%2 == 0 {
		f = -f
	}
	return f
}

// Calculator computes |S_IEP| for fixed k with reusable buffers; one
// Calculator per worker, not safe for concurrent use.
type Calculator struct {
	k     int
	terms []Term
	// bms, when non-nil, holds a bitmap view of each input set (nil entries
	// allowed); set per CountHybrid call.
	bms []vertexset.Bitmap
	// memo state, reset per Count call.
	cards [1 << MaxK]int64
	valid [1 << MaxK]bool
	// materialized intersections per mask (lazily built, reused storage).
	inter   [1 << MaxK][]uint32
	scratch []uint32
}

// NewCalculator builds a Calculator for k innermost loops.
func NewCalculator(k int) *Calculator {
	return &Calculator{k: k, terms: Terms(k)}
}

// K returns the calculator's k.
func (c *Calculator) K() int { return c.k }

// Count returns the number of distinct-entry tuples (e_1,…,e_k) with
// e_i ∈ sets[i] \ excluded. sets[i] must be ascending; excluded is the list
// of already-bound data vertices (not necessarily sorted, typically tiny).
//
//graphpi:deterministic
func (c *Calculator) Count(sets [][]uint32, excluded []uint32) int64 {
	return c.CountHybrid(sets, nil, excluded)
}

// CountHybrid is Count with optional hub bitmaps: bms[i], when non-nil, is a
// bitmap representation of sets[i] (a hub adjacency precomputed by the graph
// layer), letting the internal intersections run the O(|small|) bitmap kernel
// instead of the scalar merge. bms may be nil or must have len(bms) == k.
// The result is identical to Count.
//
//graphpi:deterministic
func (c *Calculator) CountHybrid(sets [][]uint32, bms []vertexset.Bitmap, excluded []uint32) int64 {
	if len(sets) != c.k {
		panic("iep: set count mismatch")
	}
	c.bms = bms
	// Early exit: an empty candidate set annihilates every term.
	for i, s := range sets {
		c.valid[uint16(1)<<i] = false
		if len(s) == 0 {
			return 0
		}
	}
	for m := range c.valid[:1<<c.k] {
		c.valid[m] = false
	}
	var total int64
	for _, t := range c.terms {
		prod := t.Coef
		for _, b := range t.Blocks {
			card := c.card(b, sets, excluded)
			if card == 0 {
				prod = 0
				break
			}
			prod *= card
		}
		total += prod
	}
	return total
}

// card returns |∩_{i∈mask} sets[i]| minus the excluded vertices present in
// that intersection, memoized per mask.
func (c *Calculator) card(mask uint16, sets [][]uint32, excluded []uint32) int64 {
	if c.valid[mask] {
		return c.cards[mask]
	}
	set := c.intersection(mask, sets)
	n := int64(len(set))
	n -= excludedHits(set, excluded)
	c.cards[mask] = n
	c.valid[mask] = true
	return n
}

// excludedHits counts how many distinct excluded vertices appear in the
// sorted set (duplicates in excluded are tolerated and counted once).
func excludedHits(set []uint32, excluded []uint32) int64 {
	var n int64
outer:
	for i, x := range excluded {
		for _, prev := range excluded[:i] {
			if prev == x {
				continue outer
			}
		}
		if vertexset.Contains(set, x) {
			n++
		}
	}
	return n
}

// intersection materializes ∩_{i∈mask} sets[i] (raw, without exclusion).
// Singleton masks alias the input set. Multi-bit masks are built from the
// intersection of the mask minus its highest bit with that bit's set,
// reusing the calculator's per-mask storage.
func (c *Calculator) intersection(mask uint16, sets [][]uint32) []uint32 {
	if bits.OnesCount16(mask) == 1 {
		return sets[bits.TrailingZeros16(mask)]
	}
	hi := 15 - bits.LeadingZeros16(mask)
	rest := mask &^ (1 << hi)
	left := c.intersection(rest, sets)
	// Hub fast path: when the peeled set has a bitmap and the running
	// intersection is the smaller side, probe the bitmap in O(|left|).
	if c.bms != nil && c.bms[hi] != nil && len(left) <= len(sets[hi]) {
		c.inter[mask] = vertexset.IntersectBitmap(c.inter[mask][:0], left, c.bms[hi])
	} else {
		c.inter[mask] = vertexset.Intersect(c.inter[mask][:0], left, sets[hi])
	}
	return c.inter[mask]
}

// CountPairSubsets is the paper-literal Algorithm 2 path: inclusion–
// exclusion over all subsets of the C(k,2) equality pairs A_{i,j}, computing
// each subset's cardinality as the product over the connected components of
// its pair graph of the component intersection cardinality. Exponentially
// more terms than Count (2^C(k,2)); retained as the executable
// specification for cross-checking.
func CountPairSubsets(sets [][]uint32, excluded []uint32) int64 {
	return CountPairSubsetsHybrid(sets, nil, excluded)
}

// CountPairSubsetsHybrid is CountPairSubsets with optional hub bitmaps,
// computing each component cardinality with the bitmap-aware multi-way
// intersection kernel. It is the executable specification cross-checking
// Calculator.CountHybrid.
func CountPairSubsetsHybrid(sets [][]uint32, bms []vertexset.Bitmap, excluded []uint32) int64 {
	k := len(sets)
	if k == 0 {
		return 0
	}
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	cardOf := func(mask uint16) int64 {
		var members [][]uint32
		var memberBMs []vertexset.Bitmap
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				members = append(members, sets[i])
				if bms != nil {
					memberBMs = append(memberBMs, bms[i])
				}
			}
		}
		set := vertexset.IntersectMultiHybrid(nil, nil, members, memberBMs)
		return int64(len(set)) - excludedHits(set, excluded)
	}
	var total int64
	for sub := 0; sub < 1<<len(pairs); sub++ {
		// Union-find over the pair graph of this subset.
		parent := make([]int, k)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		popcount := 0
		for pi, p := range pairs {
			if sub&(1<<pi) != 0 {
				popcount++
				parent[find(p.i)] = find(p.j)
			}
		}
		// Product over components.
		prod := int64(1)
		for root := 0; root < k && prod != 0; root++ {
			if find(root) != root {
				continue
			}
			var mask uint16
			for i := 0; i < k; i++ {
				if find(i) == root {
					mask |= 1 << i
				}
			}
			prod *= cardOf(mask)
		}
		if popcount%2 == 1 {
			prod = -prod
		}
		total += prod
	}
	return total
}
