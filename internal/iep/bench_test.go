package iep

import (
	"math/rand/v2"
	"testing"
)

func benchSets(k, size int) [][]uint32 {
	r := rand.New(rand.NewPCG(9, 9))
	sets := make([][]uint32, k)
	for i := range sets {
		s := make([]uint32, 0, size)
		v := uint32(0)
		for len(s) < size {
			v += 1 + uint32(r.IntN(3))
			s = append(s, v)
		}
		sets[i] = s
	}
	return sets
}

// BenchmarkPartitionForm measures the engine's partition-lattice IEP
// (Bell(k) terms) against …
func BenchmarkPartitionForm(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run(string(rune('0'+k)), func(b *testing.B) {
			sets := benchSets(k, 256)
			c := NewCalculator(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Count(sets, nil)
			}
		})
	}
}

// … BenchmarkPairSubsetForm, the paper-literal Algorithm 2 with 2^C(k,2)
// subset terms — the ablation shows why the engine uses the partition form.
func BenchmarkPairSubsetForm(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run(string(rune('0'+k)), func(b *testing.B) {
			sets := benchSets(k, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				CountPairSubsets(sets, nil)
			}
		})
	}
}
