package iep

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// bruteDistinctTuples counts distinct-entry tuples by explicit enumeration.
func bruteDistinctTuples(sets [][]uint32, excluded []uint32) int64 {
	ex := map[uint32]bool{}
	for _, x := range excluded {
		ex[x] = true
	}
	var count int64
	var tuple []uint32
	var rec func(i int)
	rec = func(i int) {
		if i == len(sets) {
			count++
			return
		}
	next:
		for _, v := range sets[i] {
			if ex[v] {
				continue
			}
			for _, u := range tuple {
				if u == v {
					continue next
				}
			}
			tuple = append(tuple, v)
			rec(i + 1)
			tuple = tuple[:len(tuple)-1]
		}
	}
	rec(0)
	return count
}

func TestTermsCounts(t *testing.T) {
	// Bell numbers: partitions of k elements.
	want := map[int]int{1: 1, 2: 2, 3: 5, 4: 15, 5: 52}
	for k, w := range want {
		if got := len(Terms(k)); got != w {
			t.Errorf("Terms(%d) has %d partitions, want %d", k, got, w)
		}
	}
}

func TestTermsK2(t *testing.T) {
	// k=2: {{0},{1}} coef +1 and {{0,1}} coef −1.
	terms := Terms(2)
	plus, minus := 0, 0
	for _, tm := range terms {
		switch len(tm.Blocks) {
		case 2:
			if tm.Coef != 1 {
				t.Errorf("singleton partition coef = %d", tm.Coef)
			}
			plus++
		case 1:
			if tm.Coef != -1 {
				t.Errorf("merged partition coef = %d", tm.Coef)
			}
			minus++
		}
	}
	if plus != 1 || minus != 1 {
		t.Errorf("k=2 terms = %v", terms)
	}
}

func TestCountSimple(t *testing.T) {
	s1 := []uint32{1, 2, 3}
	s2 := []uint32{2, 3, 4}
	c := NewCalculator(2)
	// Pairs (a,b), a∈s1, b∈s2, a≠b: 3×3 − |{2,3}| = 7.
	if got := c.Count([][]uint32{s1, s2}, nil); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	// Excluding 2 from both: s1'={1,3}, s2'={3,4}: 2×2−1 = 3.
	if got := c.Count([][]uint32{s1, s2}, []uint32{2}); got != 3 {
		t.Errorf("Count with exclusion = %d, want 3", got)
	}
	// Empty set → 0.
	if got := c.Count([][]uint32{s1, {}}, nil); got != 0 {
		t.Errorf("Count with empty set = %d, want 0", got)
	}
}

func TestCountIdenticalSets(t *testing.T) {
	// k sets all equal to an m-element set count falling factorials:
	// m·(m−1)·…·(m−k+1).
	m := 6
	set := make([]uint32, m)
	for i := range set {
		set[i] = uint32(i * 2)
	}
	for k := 1; k <= 4; k++ {
		sets := make([][]uint32, k)
		for i := range sets {
			sets[i] = set
		}
		want := int64(1)
		for i := 0; i < k; i++ {
			want *= int64(m - i)
		}
		if got := NewCalculator(k).Count(sets, nil); got != want {
			t.Errorf("k=%d: Count = %d, want %d", k, got, want)
		}
	}
}

func randSets(r *rand.Rand, k int) [][]uint32 {
	sets := make([][]uint32, k)
	for i := range sets {
		n := r.IntN(8)
		seen := map[uint32]bool{}
		for len(seen) < n {
			seen[uint32(r.IntN(15))] = true
		}
		s := make([]uint32, 0, n)
		for v := uint32(0); v < 15; v++ {
			if seen[v] {
				s = append(s, v)
			}
		}
		sets[i] = s
	}
	return sets
}

func TestCountMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 77))
		k := 1 + r.IntN(4)
		sets := randSets(r, k)
		var excluded []uint32
		for i := 0; i < r.IntN(3); i++ {
			excluded = append(excluded, uint32(r.IntN(15)))
		}
		want := bruteDistinctTuples(sets, excluded)
		got := NewCalculator(k).Count(sets, excluded)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPartitionFormEqualsPairSubsetForm(t *testing.T) {
	// The engine's partition form must agree with the paper-literal
	// Algorithm 2 (subsets of equality pairs) on random inputs.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 123))
		k := 1 + r.IntN(4)
		sets := randSets(r, k)
		var excluded []uint32
		for i := 0; i < r.IntN(3); i++ {
			excluded = append(excluded, uint32(r.IntN(15)))
		}
		return NewCalculator(k).Count(sets, excluded) == CountPairSubsets(sets, excluded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCalculatorReuse(t *testing.T) {
	// Repeated Count calls must not leak memo state between invocations.
	c := NewCalculator(2)
	a := [][]uint32{{1, 2}, {1, 2}}
	b := [][]uint32{{5, 6, 7}, {6, 7, 8}}
	first := c.Count(a, nil)
	second := c.Count(b, nil)
	third := c.Count(a, nil)
	if first != third {
		t.Errorf("memo leak: %d vs %d", first, third)
	}
	if second != bruteDistinctTuples(b, nil) {
		t.Errorf("second = %d", second)
	}
}

func TestCountPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched set count did not panic")
		}
	}()
	NewCalculator(3).Count([][]uint32{{1}}, nil)
}

func TestTermsPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{0, MaxK + 1} {
		func() {
			defer func() { recover() }()
			Terms(k)
			t.Errorf("Terms(%d) did not panic", k)
		}()
	}
}
