package iep

import (
	"math/rand/v2"
	"testing"

	"graphpi/internal/vertexset"
)

// TestCountHybridMatchesScalar cross-checks the bitmap-accelerated
// calculator against the scalar path and the pair-subset specification on
// random sets with a random subset of bitmaps available.
func TestCountHybridMatchesScalar(t *testing.T) {
	const universe = 512
	r := rand.New(rand.NewPCG(21, 4))
	for iter := 0; iter < 150; iter++ {
		k := 1 + r.IntN(4)
		sets := make([][]uint32, k)
		bms := make([]vertexset.Bitmap, k)
		for i := range sets {
			n := 1 + r.IntN(60)
			seen := map[uint32]bool{}
			for len(seen) < n {
				seen[uint32(r.IntN(universe))] = true
			}
			s := make([]uint32, 0, n)
			for v := uint32(0); v < universe; v++ {
				if seen[v] {
					s = append(s, v)
				}
			}
			sets[i] = s
			if r.IntN(2) == 0 {
				bms[i] = vertexset.BitmapFromSet(s, universe)
			}
		}
		var excluded []uint32
		for j := r.IntN(3); j > 0; j-- {
			excluded = append(excluded, uint32(r.IntN(universe)))
		}
		c := NewCalculator(k)
		scalar := c.Count(sets, excluded)
		hybrid := c.CountHybrid(sets, bms, excluded)
		spec := CountPairSubsetsHybrid(sets, bms, excluded)
		brute := bruteDistinctTuples(sets, excluded)
		if scalar != brute || hybrid != brute || spec != brute {
			t.Fatalf("iter %d (k=%d): scalar=%d hybrid=%d spec=%d brute=%d",
				iter, k, scalar, hybrid, spec, brute)
		}
	}
}

// TestCountHybridStateReset ensures bitmap state from one call does not leak
// into a later scalar call on the same calculator.
func TestCountHybridStateReset(t *testing.T) {
	sets := [][]uint32{{1, 2, 3, 4}, {2, 3, 4, 5}}
	bms := []vertexset.Bitmap{
		vertexset.BitmapFromSet(sets[0], 8),
		vertexset.BitmapFromSet(sets[1], 8),
	}
	c := NewCalculator(2)
	want := bruteDistinctTuples(sets, nil)
	if got := c.CountHybrid(sets, bms, nil); got != want {
		t.Fatalf("hybrid = %d, want %d", got, want)
	}
	// Different sets, no bitmaps: stale c.bms must not be consulted.
	sets2 := [][]uint32{{1, 3, 5, 7}, {3, 5, 7}}
	want2 := bruteDistinctTuples(sets2, nil)
	if got := c.Count(sets2, nil); got != want2 {
		t.Fatalf("scalar after hybrid = %d, want %d", got, want2)
	}
}
