package cluster

// NewFaultyTransport wraps a transport with deterministic fault injection:
// every multi-rank job it connects has one rank (failRank, or the last rank
// when failRank is out of range) die after completing afterTasks tasks. The
// wrapped transport is otherwise transparent — Ranks, TotalWorkers and Close
// delegate — so the conformance suite can run every behavioral test across
// {chan, tcp} × {healthy, faulty} and assert that recovered jobs stay
// bit-identical to single-node counts.
//
// The death itself is modeled by the transports (Job.FailRank /
// Job.FailAfterTasks): a TCP worker closes its connection abruptly mid-job,
// an in-process rank halts and surrenders its queue. Single-rank jobs are
// never injected — there is no survivor to recover on.
func NewFaultyTransport(inner Transport, failRank, afterTasks int) Transport {
	return &faultyTransport{inner: inner, failRank: failRank, afterTasks: afterTasks}
}

type faultyTransport struct {
	inner      Transport
	failRank   int
	afterTasks int
}

func (f *faultyTransport) Ranks(requested int) int { return f.inner.Ranks(requested) }

func (f *faultyTransport) TotalWorkers(nranks, workersPerRank int) int {
	return f.inner.TotalWorkers(nranks, workersPerRank)
}

func (f *faultyTransport) Close() error { return f.inner.Close() }

func (f *faultyTransport) Connect(job *Job, nranks int) (Session, error) {
	if f.afterTasks > 0 && nranks > 1 {
		injected := *job
		injected.FailAfterTasks = f.afterTasks
		injected.FailRank = f.failRank
		if injected.FailRank < 0 || injected.FailRank >= nranks {
			injected.FailRank = nranks - 1
		}
		return f.inner.Connect(&injected, nranks)
	}
	return f.inner.Connect(job, nranks)
}

// PoolStats delegates to the wrapped transport when it tracks pool health.
func (f *faultyTransport) PoolStats() PoolStats {
	if p, ok := f.inner.(PoolStatsProvider); ok {
		return p.PoolStats()
	}
	return PoolStats{}
}
