package cluster

// Fuzz targets for the wire protocol: the frame reader and every payload
// decoder must survive arbitrary bytes from a corrupt or hostile peer
// without panicking, and anything they accept must re-encode to something
// they accept again. Run continuously with
//
//	go test -fuzz=FuzzReadFrame -fuzztime=30s ./internal/cluster
//	go test -fuzz=FuzzDecoders -fuzztime=30s ./internal/cluster

import (
	"bytes"
	"encoding/binary"
	"testing"

	"graphpi/internal/taskpool"
)

// frameBytes encodes one frame for the seed corpus.
func frameBytes(t *testing.T, typ uint8, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, typ, payload); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	return buf.Bytes()
}

func FuzzReadFrame(f *testing.F) {
	var seedT testing.T
	f.Add(frameBytes(&seedT, msgHello, encodeHello()))
	f.Add(frameBytes(&seedT, msgAck, encodeAck(taskpool.Range{Start: 3, End: 9}, 42)))
	f.Add(frameBytes(&seedT, msgSnapData, bytes.Repeat([]byte{0xAB}, 100)))
	f.Add(frameBytes(&seedT, msgJobDone, nil))
	// Hostile headers: oversized and zero-length frames.
	over := make([]byte, 5)
	binary.LittleEndian.PutUint32(over, maxFrame+1)
	f.Add(over)
	f.Add([]byte{0, 0, 0, 0, 7})
	f.Add([]byte{5, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if 1+len(payload) > maxFrame {
			t.Fatalf("readFrame accepted %d payload bytes past the %d frame bound", len(payload), maxFrame)
		}
		// Round-trip: re-encoding the accepted frame must reproduce the
		// exact bytes readFrame consumed.
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatalf("frame round-trip mismatch:\n got %x\nwant %x", buf.Bytes(), data[:buf.Len()])
		}
	})
}

// FuzzDecoders drives every payload decoder; sel picks the decoder so one
// corpus covers the whole wire surface. A payload the decoder accepts must
// re-encode and decode again cleanly (decoders canonicalize, so only the
// second decode is required to be loss-free).
func FuzzDecoders(f *testing.F) {
	spec := &jobSpec{
		Rank: 1, NumRanks: 3, WorkersPerRank: 2, UseIEP: true,
		StealThreshold: 4, PatternN: 3, PatternName: "triangle",
		PatternEdges: [][2]int{{0, 1}, {1, 2}, {0, 2}},
		Order:        []uint8{0, 1, 2},
		Restrictions: [][2]uint8{{0, 1}},
		Graph:        graphFingerprint{NumVertices: 10, NumAdjSlots: 44, Name: "seed"},
	}
	tasks := []taskpool.Range{{Start: 0, End: 8}, {Start: 8, End: 16}}
	f.Add(uint8(0), encodeJob(spec))
	f.Add(uint8(1), encodeWelcome(4, graphFingerprint{NumVertices: 5}, true))
	f.Add(uint8(2), encodeHello())
	f.Add(uint8(3), encodeSnapBegin(1<<20))
	f.Add(uint8(4), encodeSnapOK(graphFingerprint{Name: "g", Reordered: true}))
	f.Add(uint8(5), encodeAck(taskpool.Range{Start: 2, End: 5}, -7))
	f.Add(uint8(6), encodeTasks(tasks))
	f.Add(uint8(7), encodeStealGive(3, tasks))
	f.Add(uint8(8), encodeResult(RankResult{Raw: 99}))
	f.Add(uint8(9), encodeRemaining(17))

	f.Fuzz(func(t *testing.T, sel uint8, payload []byte) {
		switch sel % 10 {
		case 0:
			spec, err := decodeJob(payload)
			if err != nil {
				return
			}
			if _, err := decodeJob(encodeJob(spec)); err != nil {
				t.Fatalf("job round-trip: %v", err)
			}
		case 1:
			workers, fp, hasGraph, err := decodeWelcome(payload)
			if err != nil {
				return
			}
			if _, _, _, err := decodeWelcome(encodeWelcome(workers, fp, hasGraph)); err != nil {
				t.Fatalf("welcome round-trip: %v", err)
			}
		case 2:
			_ = decodeHello(payload)
		case 3:
			total, err := decodeSnapBegin(payload)
			if err != nil {
				return
			}
			if _, err := decodeSnapBegin(encodeSnapBegin(total)); err != nil {
				t.Fatalf("snap-begin round-trip: %v", err)
			}
		case 4:
			fp, err := decodeSnapOK(payload)
			if err != nil {
				return
			}
			if _, err := decodeSnapOK(encodeSnapOK(fp)); err != nil {
				t.Fatalf("snap-ok round-trip: %v", err)
			}
		case 5:
			task, delta, err := decodeAck(payload)
			if err != nil {
				return
			}
			if _, _, err := decodeAck(encodeAck(task, delta)); err != nil {
				t.Fatalf("ack round-trip: %v", err)
			}
		case 6:
			tasks, err := decodeTasks(payload)
			if err != nil {
				return
			}
			if _, err := decodeTasks(encodeTasks(tasks)); err != nil {
				t.Fatalf("tasks round-trip: %v", err)
			}
		case 7:
			remaining, tasks, err := decodeStealGive(payload)
			if err != nil {
				return
			}
			if _, _, err := decodeStealGive(encodeStealGive(remaining, tasks)); err != nil {
				t.Fatalf("steal-give round-trip: %v", err)
			}
		case 8:
			res, err := decodeResult(payload)
			if err != nil {
				return
			}
			if _, err := decodeResult(encodeResult(res)); err != nil {
				t.Fatalf("result round-trip: %v", err)
			}
		case 9:
			remaining, err := decodeRemaining(payload)
			if err != nil {
				return
			}
			if _, err := decodeRemaining(encodeRemaining(remaining)); err != nil {
				t.Fatalf("remaining round-trip: %v", err)
			}
		}
	})
}
