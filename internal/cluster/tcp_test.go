package cluster

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

// runWithTimeout guards Run calls that exercise failure paths: the contract
// under test is "errors, never hangs".
func runWithTimeout(t *testing.T, d time.Duration, cfg *core.Config, g *graph.Graph, opt Options) (*Result, error) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(cfg, g, opt)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(d):
		t.Fatalf("Run did not return within %v", d)
		return nil, nil
	}
}

// TestTCPSnapshotWorker exercises the deployment path the transport is built
// for: the worker loads its replica from a GPiCSR2 snapshot it did not
// write, including an Optimize()d view, and produces the master's exact
// counts.
func TestTCPSnapshotWorker(t *testing.T) {
	g := graph.BarabasiAlbert(400, 5, 21)
	og := g.Reorder()
	og.BuildHubBitmaps(1<<22, 0)
	dir := t.TempDir()
	for name, dg := range map[string]*graph.Graph{"plain": g, "optimized": og} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".bin")
			if err := graph.SaveBinaryFile(path, dg); err != nil {
				t.Fatal(err)
			}
			replica, err := graph.LoadBinaryFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := DialTCP(startWorkers(t, replica, 2), DialOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			cfg := planFor(t, g, pattern.House())
			want := cfg.Count(g, core.RunOptions{Workers: 1})
			res, err := Run(cfg, dg, Options{WorkersPerNode: 2, UseIEP: true, Transport: tr})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Errorf("snapshot worker count = %d, want %d", res.Count, want)
			}
		})
	}
}

// TestTCPSequentialJobs reuses one transport for several jobs, including
// different patterns and IEP modes — the ConnectCluster usage pattern.
func TestTCPSequentialJobs(t *testing.T) {
	g := graph.BarabasiAlbert(300, 4, 5)
	tr := dialWorkers(t, g, 2)
	for _, p := range []*pattern.Pattern{pattern.Triangle(), pattern.Rectangle(), pattern.House()} {
		cfg := planFor(t, g, p)
		want := cfg.Count(g, core.RunOptions{Workers: 1})
		for _, iep := range []bool{false, true} {
			res, err := Run(cfg, g, Options{WorkersPerNode: 2, UseIEP: iep, Transport: tr})
			if err != nil {
				t.Fatalf("%s iep=%v: %v", p.Name(), iep, err)
			}
			if res.Count != want {
				t.Errorf("%s iep=%v: count = %d, want %d", p.Name(), iep, res.Count, want)
			}
		}
	}
}

// TestTCPRanksFixed: the TCP transport's rank count is its worker set, not
// the requested node count.
func TestTCPRanksFixed(t *testing.T) {
	g := graph.GNP(60, 0.3, 9)
	tr := dialWorkers(t, g, 2)
	if n := tr.Ranks(5); n != 2 {
		t.Fatalf("Ranks(5) = %d, want 2", n)
	}
	cfg := planFor(t, g, pattern.Triangle())
	res, err := Run(cfg, g, Options{Nodes: 5, WorkersPerNode: 1, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("result has %d ranks, want 2", len(res.Nodes))
	}
	if want := cfg.Count(g, core.RunOptions{Workers: 1}); res.Count != want {
		t.Errorf("count = %d, want %d", res.Count, want)
	}
}

// TestTCPGraphMismatch: a worker holding a different replica must reject the
// job with a descriptive error instead of counting wrong.
func TestTCPGraphMismatch(t *testing.T) {
	master := graph.BarabasiAlbert(300, 4, 5)
	mismatches := map[string]*graph.Graph{
		"size":      graph.BarabasiAlbert(301, 4, 5),
		"reordered": master.Reorder(),
	}
	for name, workerGraph := range mismatches {
		t.Run(name, func(t *testing.T) {
			tr, err := DialTCP(startWorkers(t, workerGraph, 1), DialOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			cfg := planFor(t, master, pattern.Triangle())
			_, err = runWithTimeout(t, 30*time.Second, cfg, master, Options{Transport: tr})
			if err == nil {
				t.Fatal("mismatched replica did not error")
			}
			if !strings.Contains(err.Error(), "graph mismatch") {
				t.Errorf("error %q does not name the graph mismatch", err)
			}
		})
	}
}

// TestTCPNameMismatch: dataset names, when both sides carry one, must agree.
func TestTCPNameMismatch(t *testing.T) {
	master := graph.BarabasiAlbert(200, 4, 5)
	master.SetName("ds-a")
	workerGraph := graph.BarabasiAlbert(200, 4, 5)
	workerGraph.SetName("ds-b")
	tr, err := DialTCP(startWorkers(t, workerGraph, 1), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := planFor(t, master, pattern.Triangle())
	_, err = runWithTimeout(t, 30*time.Second, cfg, master, Options{Transport: tr})
	if err == nil || !strings.Contains(err.Error(), "graph mismatch") {
		t.Fatalf("name mismatch not rejected: %v", err)
	}
}

// TestTCPWorkerDisconnect: a worker that dies right after start is a
// recoverable loss — its tasks are re-dealt and the job completes with the
// exact count; the shrunken pool keeps serving further jobs.
func TestTCPWorkerDisconnect(t *testing.T) {
	g := graph.BarabasiAlbert(400, 5, 7)
	// One honest worker plus one saboteur that handshakes, accepts the
	// job, consumes its deal, then drops the connection right at start.
	// Redial attempts are slammed shut so the pool stays shrunken.
	honest := startWorkers(t, g, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// hello → welcome
		if typ, _, err := readFrame(conn); err != nil || typ != msgHello {
			conn.Close()
			return
		}
		writeFrame(conn, msgWelcome, encodeWelcome(0, fingerprintOf(g), true))
		// job → jobOK
		if typ, _, err := readFrame(conn); err != nil || typ != msgJob {
			conn.Close()
			return
		}
		writeFrame(conn, msgJobOK, nil)
		// Consume deal frames until start, then vanish.
		for {
			typ, _, err := readFrame(conn)
			if err != nil || typ == msgStart {
				break
			}
		}
		conn.Close()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close() // refuse rejoin fast
		}
	}()

	tr, err := DialTCP(append(honest, ln.Addr().String()), DialOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := planFor(t, g, pattern.House())
	want := cfg.Count(g, core.RunOptions{Workers: 1})
	res, err := runWithTimeout(t, 30*time.Second, cfg, g, Options{WorkersPerNode: 2, Transport: tr})
	if err != nil {
		t.Fatalf("lost worker was not recovered: %v", err)
	}
	if res.Count != want {
		t.Errorf("recovered count = %d, want %d", res.Count, want)
	}
	st := tr.(PoolStatsProvider).PoolStats()
	if st.Losses == 0 {
		t.Error("rank loss not recorded in pool stats")
	}
	if st.Redealt == 0 {
		t.Error("no tasks recorded as re-dealt")
	}
	// The pool shrinks but stays serviceable: the survivor runs the next job.
	res2, err := runWithTimeout(t, 30*time.Second, cfg, g, Options{WorkersPerNode: 2, Transport: tr})
	if err != nil {
		t.Fatalf("shrunken pool refused the next job: %v", err)
	}
	if res2.Count != want {
		t.Errorf("shrunken-pool count = %d, want %d", res2.Count, want)
	}
	if len(res2.Nodes) != 1 {
		t.Errorf("second job ran on %d ranks, want 1 (survivor only)", len(res2.Nodes))
	}
}

// TestTCPWorkerLostDuringSetup: a worker that dies between the handshake and
// the job frames — the master discovers the loss while *setting up* the job,
// not while running it. Setup-phase losses must be as recoverable as mid-job
// ones: the link is retired, the rank starts lost-early, and its share is
// re-dealt to the survivors.
func TestTCPWorkerLostDuringSetup(t *testing.T) {
	g := graph.BarabasiAlbert(400, 5, 7)
	honest := startWorkers(t, g, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// hello → welcome, then vanish before the job arrives.
		if typ, _, err := readFrame(conn); err != nil || typ != msgHello {
			conn.Close()
			return
		}
		writeFrame(conn, msgWelcome, encodeWelcome(0, fingerprintOf(g), true))
		conn.Close()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close() // refuse rejoin fast
		}
	}()

	tr, err := DialTCP(append(honest, ln.Addr().String()), DialOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := planFor(t, g, pattern.House())
	want := cfg.Count(g, core.RunOptions{Workers: 1})
	res, err := runWithTimeout(t, 30*time.Second, cfg, g, Options{WorkersPerNode: 2, Transport: tr})
	if err != nil {
		t.Fatalf("setup-phase loss was not recovered: %v", err)
	}
	if res.Count != want {
		t.Errorf("recovered count = %d, want %d", res.Count, want)
	}
	st := tr.(PoolStatsProvider).PoolStats()
	if st.Losses == 0 {
		t.Error("setup-phase rank loss not recorded in pool stats")
	}
	if st.Live != 1 {
		t.Errorf("live workers = %d, want 1", st.Live)
	}
}

// TestTCPWorkerCrashRejoins is the recovery round trip: a worker "crashes"
// mid-job (injected fault closes its connection after two completed tasks),
// the job still produces the exact count, and because the worker process
// survives, the next job's redial sweep brings it back as a full rank.
func TestTCPWorkerCrashRejoins(t *testing.T) {
	g := graph.BarabasiAlbert(500, 5, 11)
	inner := dialWorkers(t, g, 2)
	tr := NewFaultyTransport(inner, 1, 2)
	cfg := planFor(t, g, pattern.House())
	want := cfg.Count(g, core.RunOptions{Workers: 1})

	res, err := runWithTimeout(t, 30*time.Second, cfg, g,
		Options{WorkersPerNode: 2, ChunkSize: 8, Transport: tr})
	if err != nil {
		t.Fatalf("crashed worker was not recovered: %v", err)
	}
	if res.Count != want {
		t.Errorf("recovered count = %d, want %d", res.Count, want)
	}
	st := inner.(PoolStatsProvider).PoolStats()
	if st.Losses == 0 {
		t.Error("crash not recorded as a loss")
	}
	if st.Live != 1 {
		t.Errorf("live workers after crash = %d, want 1", st.Live)
	}

	// The next job redials the crashed worker: it rejoins and runs tasks.
	res2, err := runWithTimeout(t, 30*time.Second, cfg, g,
		Options{WorkersPerNode: 2, ChunkSize: 8, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count != want {
		t.Errorf("post-rejoin count = %d, want %d", res2.Count, want)
	}
	if len(res2.Nodes) != 2 {
		t.Fatalf("post-rejoin job ran on %d ranks, want 2", len(res2.Nodes))
	}
	if res2.Nodes[1].TasksRun == 0 {
		t.Error("rejoined worker received no tasks")
	}
	if st := inner.(PoolStatsProvider).PoolStats(); st.Rejoins == 0 {
		t.Error("rejoin not recorded in pool stats")
	}
}

// TestTCPColdWorkerSnapshot: a worker started without any local replica
// joins cold, receives the fingerprint-verified snapshot from the master
// before its first job, and participates with exact counts. The replica
// persists in the worker, so a second transport does not need to re-push.
func TestTCPColdWorkerSnapshot(t *testing.T) {
	g := graph.BarabasiAlbert(400, 5, 23)
	warm := startWorkers(t, g, 1)
	cold := startWorkers(t, nil, 1)
	tr, err := DialTCP(append(warm, cold...), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := planFor(t, g, pattern.House())
	want := cfg.Count(g, core.RunOptions{Workers: 1})
	res, err := runWithTimeout(t, 60*time.Second, cfg, g,
		Options{WorkersPerNode: 2, UseIEP: true, Transport: tr})
	if err != nil {
		t.Fatalf("cold worker could not serve: %v", err)
	}
	if res.Count != want {
		t.Errorf("count with cold worker = %d, want %d", res.Count, want)
	}
	if res.Nodes[1].TasksRun == 0 {
		t.Error("cold worker received no tasks")
	}

	// The pushed replica persists across connections: a fresh master sees a
	// warm worker now.
	tr2, err := DialTCP(cold, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	res2, err := runWithTimeout(t, 60*time.Second, cfg, g,
		Options{WorkersPerNode: 2, UseIEP: true, Transport: tr2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count != want {
		t.Errorf("count on previously-cold worker = %d, want %d", res2.Count, want)
	}
}

// TestServeSurvivesMasterDisconnect (the worker exit path): a master that
// vanishes mid-drain must leave the worker in a deterministic state — no
// result frame racing onto a dead socket, cores freed, and the process back
// to accepting so the next master gets exact counts.
func TestServeSurvivesMasterDisconnect(t *testing.T) {
	g := graph.BarabasiAlbert(400, 5, 31)
	addrs := startWorkers(t, g, 1)
	tr, err := DialTCP(addrs, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := planFor(t, g, pattern.House())
	done := make(chan error, 1)
	go func() {
		// A deliberately slow job so the close lands mid-drain.
		_, err := Run(cfg, g, Options{WorkersPerNode: 1, ChunkSize: 4,
			NodeDelay: 2 * time.Millisecond, Transport: tr})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	tr.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("abandoned job reported success")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("abandoned job did not unblock the master")
	}

	// The worker must still be serviceable.
	tr2, err := DialTCP(addrs, DialOptions{})
	if err != nil {
		t.Fatalf("worker unusable after master disconnect: %v", err)
	}
	defer tr2.Close()
	want := cfg.Count(g, core.RunOptions{Workers: 1})
	res, err := runWithTimeout(t, 30*time.Second, cfg, g, Options{WorkersPerNode: 2, Transport: tr2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("count after disconnect = %d, want %d", res.Count, want)
	}
}

// TestTCPHandshakeRejectsStrangers: dialing something that is not a worker
// errors instead of hanging, and a worker shrugs off garbage connections.
func TestTCPHandshakeRejectsStrangers(t *testing.T) {
	// A server that writes garbage instead of a welcome.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("NOT A GRAPHPI WORKER\n"))
		conn.Close()
	}()
	if _, err := DialTCP([]string{ln.Addr().String()}, DialOptions{Timeout: 5 * time.Second}); err == nil {
		t.Error("garbage server accepted as worker")
	}

	// A real worker receiving garbage closes the connection and keeps
	// serving honest masters.
	g := graph.GNP(50, 0.3, 3)
	addrs := startWorkers(t, g, 1)
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("\xff\xff\xff\xff garbage"))
	conn.Close()
	tr, err := DialTCP(addrs, DialOptions{})
	if err != nil {
		t.Fatalf("worker unusable after garbage connection: %v", err)
	}
	defer tr.Close()
	cfg := planFor(t, g, pattern.Triangle())
	res, err := Run(cfg, g, Options{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Count(g, core.RunOptions{Workers: 1}); res.Count != want {
		t.Errorf("count = %d, want %d", res.Count, want)
	}
}

// TestTCPServeStopsOnClose: closing the listener ends Serve with no error.
func TestTCPServeStopsOnClose(t *testing.T) {
	g := graph.GNP(20, 0.2, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(ln, g, ServeOptions{Logf: t.Logf}) }()
	ln.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on clean close", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}

// TestMain keeps goroutine leaks from loopback fixtures bounded: nothing to
// do beyond running the suite, but leaving the hook here documents that the
// package's tests spin real listeners.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

// TestTCPDialRejectsMixedReplicas: workers advertising different replicas
// are rejected at dial time, before any job ships.
func TestTCPDialRejectsMixedReplicas(t *testing.T) {
	a := graph.BarabasiAlbert(200, 4, 5)
	b := graph.BarabasiAlbert(201, 4, 5)
	addrs := append(startWorkers(t, a, 1), startWorkers(t, b, 1)...)
	if _, err := DialTCP(addrs, DialOptions{}); err == nil {
		t.Fatal("workers with different replicas accepted at dial time")
	} else if !strings.Contains(err.Error(), "different replicas") {
		t.Errorf("error %q does not name the replica mismatch", err)
	}
}

// TestTCPWorkerOverrideCounts: ServeOptions.Workers overrides the per-job
// worker count; the master's TotalWorkers accounting sees the advertised
// value and counts stay exact.
func TestTCPWorkerOverrideCounts(t *testing.T) {
	g := graph.BarabasiAlbert(300, 4, 17)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, g, ServeOptions{Workers: 3})
	tr, err := DialTCP([]string{ln.Addr().String()}, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	if tw := tr.TotalWorkers(1, 8); tw != 3 {
		t.Errorf("TotalWorkers = %d, want the advertised override 3", tw)
	}
	cfg := planFor(t, g, pattern.House())
	want := cfg.Count(g, core.RunOptions{Workers: 1})
	res, err := Run(cfg, g, Options{WorkersPerNode: 8, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("count = %d, want %d", res.Count, want)
	}
}

// TestTCPPoolLatencyStatsAndJobDeltas: the master-side latency histograms
// fill during a job (inter-ack gaps always; the redeal histogram when a rank
// is lost), and PoolStats.LastJob isolates one job's recovery events — a
// clean follow-up job reports zero deltas while the lifetime totals keep
// the earlier loss.
func TestTCPPoolLatencyStatsAndJobDeltas(t *testing.T) {
	g := graph.BarabasiAlbert(500, 5, 11)
	inner := dialWorkers(t, g, 2)
	tr := NewFaultyTransport(inner, 1, 2)
	cfg := planFor(t, g, pattern.House())
	want := cfg.Count(g, core.RunOptions{Workers: 1})

	res, err := runWithTimeout(t, 30*time.Second, cfg, g,
		Options{WorkersPerNode: 2, ChunkSize: 8, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("count = %d, want %d", res.Count, want)
	}
	st := inner.(PoolStatsProvider).PoolStats()
	if st.TaskGap.Count == 0 {
		t.Error("no inter-ack gaps observed")
	}
	var bucketTotal int64
	for _, b := range st.TaskGap.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != st.TaskGap.Count {
		t.Errorf("task-gap buckets sum to %d, count %d", bucketTotal, st.TaskGap.Count)
	}
	if st.Redeal.Count == 0 {
		t.Error("rank loss did not record a redeal drain")
	}
	if st.LastJob.Losses == 0 || st.LastJob.Redealt == 0 {
		t.Errorf("lossy job deltas = %+v, want nonzero losses and redeals", st.LastJob)
	}

	// A clean second job (bypassing the fault injector): per-job deltas
	// reset, lifetime totals persist.
	res2, err := runWithTimeout(t, 30*time.Second, cfg, g,
		Options{WorkersPerNode: 2, ChunkSize: 8, Transport: inner})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count != want {
		t.Errorf("second count = %d, want %d", res2.Count, want)
	}
	st2 := inner.(PoolStatsProvider).PoolStats()
	if st2.LastJob.Losses != 0 || st2.LastJob.Redealt != 0 {
		t.Errorf("clean job deltas = %+v, want zero", st2.LastJob)
	}
	if st2.Losses == 0 || st2.Redealt == 0 {
		t.Errorf("lifetime totals lost earlier events: %+v", st2)
	}
	if st2.TaskGap.Count <= st.TaskGap.Count {
		t.Errorf("second job observed no new gaps: %d → %d", st.TaskGap.Count, st2.TaskGap.Count)
	}
}
