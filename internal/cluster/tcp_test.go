package cluster

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

// runWithTimeout guards Run calls that exercise failure paths: the contract
// under test is "errors, never hangs".
func runWithTimeout(t *testing.T, d time.Duration, cfg *core.Config, g *graph.Graph, opt Options) (*Result, error) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(cfg, g, opt)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(d):
		t.Fatalf("Run did not return within %v", d)
		return nil, nil
	}
}

// TestTCPSnapshotWorker exercises the deployment path the transport is built
// for: the worker loads its replica from a GPiCSR2 snapshot it did not
// write, including an Optimize()d view, and produces the master's exact
// counts.
func TestTCPSnapshotWorker(t *testing.T) {
	g := graph.BarabasiAlbert(400, 5, 21)
	og := g.Reorder()
	og.BuildHubBitmaps(1<<22, 0)
	dir := t.TempDir()
	for name, dg := range map[string]*graph.Graph{"plain": g, "optimized": og} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".bin")
			if err := graph.SaveBinaryFile(path, dg); err != nil {
				t.Fatal(err)
			}
			replica, err := graph.LoadBinaryFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := DialTCP(startWorkers(t, replica, 2), DialOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			cfg := planFor(t, g, pattern.House())
			want := cfg.Count(g, core.RunOptions{Workers: 1})
			res, err := Run(cfg, dg, Options{WorkersPerNode: 2, UseIEP: true, Transport: tr})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Errorf("snapshot worker count = %d, want %d", res.Count, want)
			}
		})
	}
}

// TestTCPSequentialJobs reuses one transport for several jobs, including
// different patterns and IEP modes — the ConnectCluster usage pattern.
func TestTCPSequentialJobs(t *testing.T) {
	g := graph.BarabasiAlbert(300, 4, 5)
	tr := dialWorkers(t, g, 2)
	for _, p := range []*pattern.Pattern{pattern.Triangle(), pattern.Rectangle(), pattern.House()} {
		cfg := planFor(t, g, p)
		want := cfg.Count(g, core.RunOptions{Workers: 1})
		for _, iep := range []bool{false, true} {
			res, err := Run(cfg, g, Options{WorkersPerNode: 2, UseIEP: iep, Transport: tr})
			if err != nil {
				t.Fatalf("%s iep=%v: %v", p.Name(), iep, err)
			}
			if res.Count != want {
				t.Errorf("%s iep=%v: count = %d, want %d", p.Name(), iep, res.Count, want)
			}
		}
	}
}

// TestTCPRanksFixed: the TCP transport's rank count is its worker set, not
// the requested node count.
func TestTCPRanksFixed(t *testing.T) {
	g := graph.GNP(60, 0.3, 9)
	tr := dialWorkers(t, g, 2)
	if n := tr.Ranks(5); n != 2 {
		t.Fatalf("Ranks(5) = %d, want 2", n)
	}
	cfg := planFor(t, g, pattern.Triangle())
	res, err := Run(cfg, g, Options{Nodes: 5, WorkersPerNode: 1, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("result has %d ranks, want 2", len(res.Nodes))
	}
	if want := cfg.Count(g, core.RunOptions{Workers: 1}); res.Count != want {
		t.Errorf("count = %d, want %d", res.Count, want)
	}
}

// TestTCPGraphMismatch: a worker holding a different replica must reject the
// job with a descriptive error instead of counting wrong.
func TestTCPGraphMismatch(t *testing.T) {
	master := graph.BarabasiAlbert(300, 4, 5)
	mismatches := map[string]*graph.Graph{
		"size":      graph.BarabasiAlbert(301, 4, 5),
		"reordered": master.Reorder(),
	}
	for name, workerGraph := range mismatches {
		t.Run(name, func(t *testing.T) {
			tr, err := DialTCP(startWorkers(t, workerGraph, 1), DialOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			cfg := planFor(t, master, pattern.Triangle())
			_, err = runWithTimeout(t, 30*time.Second, cfg, master, Options{Transport: tr})
			if err == nil {
				t.Fatal("mismatched replica did not error")
			}
			if !strings.Contains(err.Error(), "graph mismatch") {
				t.Errorf("error %q does not name the graph mismatch", err)
			}
		})
	}
}

// TestTCPNameMismatch: dataset names, when both sides carry one, must agree.
func TestTCPNameMismatch(t *testing.T) {
	master := graph.BarabasiAlbert(200, 4, 5)
	master.SetName("ds-a")
	workerGraph := graph.BarabasiAlbert(200, 4, 5)
	workerGraph.SetName("ds-b")
	tr, err := DialTCP(startWorkers(t, workerGraph, 1), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := planFor(t, master, pattern.Triangle())
	_, err = runWithTimeout(t, 30*time.Second, cfg, master, Options{Transport: tr})
	if err == nil || !strings.Contains(err.Error(), "graph mismatch") {
		t.Fatalf("name mismatch not rejected: %v", err)
	}
}

// TestTCPWorkerDisconnect: a worker that dies mid-job must surface as an
// error from Run, never a hang, and the transport must refuse further jobs.
func TestTCPWorkerDisconnect(t *testing.T) {
	g := graph.BarabasiAlbert(400, 5, 7)
	// One honest worker plus one saboteur that handshakes, accepts the
	// job, then drops the connection right after start.
	honest := startWorkers(t, g, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// hello → welcome
		if typ, _, err := readFrame(conn); err != nil || typ != msgHello {
			return
		}
		writeFrame(conn, msgWelcome, encodeWelcome(0, fingerprintOf(g)))
		// job → jobOK
		if typ, _, err := readFrame(conn); err != nil || typ != msgJob {
			return
		}
		writeFrame(conn, msgJobOK, nil)
		// Consume deal frames until start, then vanish.
		for {
			typ, _, err := readFrame(conn)
			if err != nil || typ == msgStart {
				return
			}
		}
	}()

	tr, err := DialTCP(append(honest, ln.Addr().String()), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := planFor(t, g, pattern.House())
	_, err = runWithTimeout(t, 30*time.Second, cfg, g, Options{WorkersPerNode: 2, Transport: tr})
	if err == nil {
		t.Fatal("disconnected worker did not error")
	}
	if !strings.Contains(err.Error(), "disconnected") {
		t.Errorf("error %q does not report the disconnect", err)
	}
	// The transport is poisoned: further jobs must be refused, not hung.
	if _, err := runWithTimeout(t, 10*time.Second, cfg, g, Options{Transport: tr}); err == nil {
		t.Error("poisoned transport accepted another job")
	}
}

// TestTCPHandshakeRejectsStrangers: dialing something that is not a worker
// errors instead of hanging, and a worker shrugs off garbage connections.
func TestTCPHandshakeRejectsStrangers(t *testing.T) {
	// A server that writes garbage instead of a welcome.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("NOT A GRAPHPI WORKER\n"))
		conn.Close()
	}()
	if _, err := DialTCP([]string{ln.Addr().String()}, DialOptions{Timeout: 5 * time.Second}); err == nil {
		t.Error("garbage server accepted as worker")
	}

	// A real worker receiving garbage closes the connection and keeps
	// serving honest masters.
	g := graph.GNP(50, 0.3, 3)
	addrs := startWorkers(t, g, 1)
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("\xff\xff\xff\xff garbage"))
	conn.Close()
	tr, err := DialTCP(addrs, DialOptions{})
	if err != nil {
		t.Fatalf("worker unusable after garbage connection: %v", err)
	}
	defer tr.Close()
	cfg := planFor(t, g, pattern.Triangle())
	res, err := Run(cfg, g, Options{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Count(g, core.RunOptions{Workers: 1}); res.Count != want {
		t.Errorf("count = %d, want %d", res.Count, want)
	}
}

// TestTCPServeStopsOnClose: closing the listener ends Serve with no error.
func TestTCPServeStopsOnClose(t *testing.T) {
	g := graph.GNP(20, 0.2, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(ln, g, ServeOptions{Logf: t.Logf}) }()
	ln.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on clean close", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}

// TestMain keeps goroutine leaks from loopback fixtures bounded: nothing to
// do beyond running the suite, but leaving the hook here documents that the
// package's tests spin real listeners.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

// TestTCPDialRejectsMixedReplicas: workers advertising different replicas
// are rejected at dial time, before any job ships.
func TestTCPDialRejectsMixedReplicas(t *testing.T) {
	a := graph.BarabasiAlbert(200, 4, 5)
	b := graph.BarabasiAlbert(201, 4, 5)
	addrs := append(startWorkers(t, a, 1), startWorkers(t, b, 1)...)
	if _, err := DialTCP(addrs, DialOptions{}); err == nil {
		t.Fatal("workers with different replicas accepted at dial time")
	} else if !strings.Contains(err.Error(), "different replicas") {
		t.Errorf("error %q does not name the replica mismatch", err)
	}
}

// TestTCPWorkerOverrideCounts: ServeOptions.Workers overrides the per-job
// worker count; the master's TotalWorkers accounting sees the advertised
// value and counts stay exact.
func TestTCPWorkerOverrideCounts(t *testing.T) {
	g := graph.BarabasiAlbert(300, 4, 17)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, g, ServeOptions{Workers: 3})
	tr, err := DialTCP([]string{ln.Addr().String()}, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	if tw := tr.TotalWorkers(1, 8); tw != 3 {
		t.Errorf("TotalWorkers = %d, want the advertised override 3", tw)
	}
	cfg := planFor(t, g, pattern.House())
	want := cfg.Count(g, core.RunOptions{Workers: 1})
	res, err := Run(cfg, g, Options{WorkersPerNode: 8, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("count = %d, want %d", res.Count, want)
	}
}
