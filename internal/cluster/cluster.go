// Package cluster implements GraphPi's distributed pattern matching layer
// (paper §IV-E) as a simulated multi-node system.
//
// The paper runs an OpenMP/MPI hybrid on Tianhe-2A: every node holds a full
// replica of the data graph, a master partitions the outer loops into
// fine-grained tasks, each node runs a communication thread that maintains a
// local task queue and steals tasks from other nodes with asynchronous MPI
// primitives when the queue runs low, and worker threads drain the local
// queue. This package reproduces that architecture with goroutines and
// channels standing in for MPI ranks and messages:
//
//   - Node — an MPI rank: a task queue, W worker goroutines, and a
//     communication goroutine serving steal requests from peers.
//   - The master (Run) packs outer-loop ranges into tasks and deals them to
//     the nodes. When the planned schedule is edge-parallel eligible the
//     ranges cover CSR adjacency slots (Counter.CountEdgeRange) so a hub
//     vertex's work spreads across many tasks; otherwise they cover
//     outermost-loop vertices (Counter.CountRange), mirroring the
//     single-node engine's auto mode.
//   - When a node's queue drops below StealThreshold, its communication
//     goroutine requests work from the peer with the longest queue; the
//     victim's communication goroutine replies with half its remainder.
//
// What the simulation preserves from the paper: task granularity effects,
// load imbalance under power-law skew, steal traffic, and the flattening
// speedup curves for short jobs (Figure 12). What it abstracts away: wire
// latency and serialization costs.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/taskpool"
)

// Options configures a simulated cluster run.
type Options struct {
	// Nodes is the number of simulated MPI ranks (≥ 1).
	Nodes int
	// WorkersPerNode is the number of worker goroutines per node (the
	// paper runs 24 OpenMP threads per rank); ≥ 1.
	WorkersPerNode int
	// ChunkSize is the task granularity in outermost-loop vertices
	// (< 1 → adaptive). Under edge-parallel scheduling the value is scaled
	// by the average degree so it stays in vertex units for both
	// disciplines, exactly like core.RunOptions.ChunkSize.
	ChunkSize int
	// StealThreshold: a node's comm goroutine steals when its queue is
	// shorter than this (< 1 → 2, the behavior of the paper's
	// communication thread).
	StealThreshold int
	// UseIEP enables inclusion–exclusion counting.
	UseIEP bool
	// EdgeParallel selects the task shape. Auto (the zero value) packs
	// edge-slot tasks whenever the schedule is eligible and more than one
	// worker runs in total; On forces slot tasks whenever eligible; Off
	// always packs vertex ranges (the pre-hybrid behavior).
	EdgeParallel core.EdgeParallelMode
	// NodeDelay artificially slows one node per task (failure/straggler
	// injection for tests); 0 disables.
	NodeDelay time.Duration
	// DelayedNode is the index of the straggler node when NodeDelay > 0.
	DelayedNode int
}

// normalize clamps the options to runnable values. Chunk sizing reads the
// normalized node/worker counts, so it must run before tasks are packed.
func (o *Options) normalize() {
	if o.Nodes < 1 {
		o.Nodes = 1
	}
	if o.WorkersPerNode < 1 {
		o.WorkersPerNode = 1
	}
	if o.StealThreshold < 1 {
		o.StealThreshold = 2
	}
}

// totalWorkers returns the cluster-wide worker count of normalized options.
func (o Options) totalWorkers() int { return o.Nodes * o.WorkersPerNode }

// NodeStats describes one node's activity during a run.
type NodeStats struct {
	// TasksRun is the number of tasks the node's workers executed.
	TasksRun int64
	// StolenFrom is the number of tasks other nodes took from this node.
	StolenFrom int64
	// StealsReceived is the number of tasks this node obtained by
	// stealing.
	StealsReceived int64
	// BusyTime is the wall time the node's workers spent executing tasks
	// (injected NodeDelay excluded — slowness shows up as fewer tasks
	// executed, not as work done). The spread of BusyTime across nodes is
	// the load-balance evidence of §IV-E: a node pinned by an indivisible
	// hub task shows up holding nearly 100% of the total busy time.
	BusyTime time.Duration
}

// Result is the outcome of a cluster run.
type Result struct {
	Count   int64
	Elapsed time.Duration
	Nodes   []NodeStats
	// Tasks is the total number of tasks the master created.
	Tasks int
	// EdgeParallel reports whether the master packed edge-slot tasks
	// (true) or vertex ranges (false).
	EdgeParallel bool
}

// MaxBusyShare returns the largest fraction of the total across per-node
// busy times (0 when no busy time was recorded). Perfect balance is
// 1/len(busy). It is exported so facade result types can reuse the metric.
func MaxBusyShare(busy []time.Duration) float64 {
	var total, max time.Duration
	for _, b := range busy {
		total += b
		if b > max {
			max = b
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / float64(total)
}

// MaxBusyShare returns the largest per-node fraction of the total busy time
// (0 when no busy time was recorded). Perfect balance is 1/len(Nodes).
func (r *Result) MaxBusyShare() float64 {
	busy := make([]time.Duration, len(r.Nodes))
	for i, ns := range r.Nodes {
		busy[i] = ns.BusyTime
	}
	return MaxBusyShare(busy)
}

// message types exchanged between node communication goroutines.
type stealRequest struct {
	reply chan []taskpool.Range
}

// node is one simulated MPI rank.
type node struct {
	id    int
	mu    sync.Mutex
	queue []taskpool.Range
	head  int

	inbox  chan stealRequest
	busyNS atomic.Int64
	stats  NodeStats
}

func (n *node) pop() (taskpool.Range, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.head >= len(n.queue) {
		return taskpool.Range{}, false
	}
	t := n.queue[n.head]
	n.head++
	return t, true
}

func (n *node) size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue) - n.head
}

// takeHalf removes up to half of the remaining tasks from the back of the
// queue (the victim side of a steal).
func (n *node) takeHalf() []taskpool.Range {
	n.mu.Lock()
	defer n.mu.Unlock()
	remaining := len(n.queue) - n.head
	if remaining <= 1 {
		return nil
	}
	take := remaining / 2
	cut := len(n.queue) - take
	out := append([]taskpool.Range(nil), n.queue[cut:]...)
	n.queue = n.queue[:cut]
	return out
}

func (n *node) push(tasks []taskpool.Range) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.queue = append(n.queue, tasks...)
}

// packTasks decides the task shape and splits the outer loops accordingly.
// Edge-parallel slot tasks are the fine-grained partitioning of §IV-E: work
// units become proportional to edges, so one hub vertex can no longer pin an
// entire node while its peers steal crumbs.
func packTasks(cfg *core.Config, g *graph.Graph, opt Options) ([]taskpool.Range, bool) {
	edgePar := cfg.EdgeParallelEligible(opt.UseIEP) &&
		opt.EdgeParallel != core.EdgeParallelOff &&
		(opt.EdgeParallel == core.EdgeParallelOn || opt.totalWorkers() > 1)
	if edgePar {
		m := g.NumAdjSlots()
		chunk := opt.ChunkSize
		if chunk > 0 {
			// Vertex-unit request: scale by the mean directed degree so
			// the task count matches the vertex discipline's.
			if avg := m / g.NumVertices(); avg > 1 {
				chunk *= avg
			}
		} else {
			chunk = taskpool.AdaptiveChunk(m, opt.totalWorkers(), 16, 16, 65536)
		}
		return taskpool.SplitChunks(m, chunk), true
	}
	nv := g.NumVertices()
	chunk := opt.ChunkSize
	if chunk < 1 {
		chunk = taskpool.AdaptiveChunk(nv, opt.totalWorkers(), 16, 1, 0)
	}
	return taskpool.SplitChunks(nv, chunk), false
}

// Run executes the configuration on a simulated cluster and returns the
// embedding count with per-node statistics. Counts are exact and identical
// for any node/worker configuration and either task shape.
func Run(cfg *core.Config, g *graph.Graph, opt Options) (*Result, error) {
	opt.normalize()
	if g.NumVertices() == 0 {
		return &Result{Nodes: make([]NodeStats, opt.Nodes)}, nil
	}
	tasks, edgePar := packTasks(cfg, g, opt)

	nodes := make([]*node, opt.Nodes)
	for i := range nodes {
		nodes[i] = &node{id: i, inbox: make(chan stealRequest, opt.Nodes)}
	}
	// The master deals tasks round-robin (the paper's master thread packs
	// outer-loop values and distributes them).
	for i, t := range tasks {
		nd := nodes[i%opt.Nodes]
		nd.queue = append(nd.queue, t)
	}

	var pending atomic.Int64
	pending.Store(int64(len(tasks)))
	done := make(chan struct{})

	// Communication goroutines: serve steal requests until shutdown.
	var commWG sync.WaitGroup
	for _, nd := range nodes {
		commWG.Add(1)
		go func(nd *node) {
			defer commWG.Done()
			for {
				select {
				case req := <-nd.inbox:
					req.reply <- nd.takeHalf()
				case <-done:
					// Drain any in-flight requests so requesters never block.
					for {
						select {
						case req := <-nd.inbox:
							req.reply <- nil
						default:
							return
						}
					}
				}
			}
		}(nd)
	}

	start := time.Now()
	var workWG sync.WaitGroup
	rawCounts := make([]int64, opt.Nodes*opt.WorkersPerNode)
	for ni, nd := range nodes {
		for w := 0; w < opt.WorkersPerNode; w++ {
			workWG.Add(1)
			go func(nd *node, slot int) {
				defer workWG.Done()
				counter := core.NewCounter(cfg, g, opt.UseIEP)
				for {
					t, ok := nd.pop()
					if !ok {
						if !trySteal(nd, nodes, opt) {
							if pending.Load() == 0 {
								break
							}
							// Someone still runs tasks that might be
							// re-stolen; yield briefly.
							time.Sleep(50 * time.Microsecond)
							continue
						}
						continue
					}
					if opt.NodeDelay > 0 && nd.id == opt.DelayedNode {
						// Injected slowness is deliberately not counted as
						// busy time: BusyTime measures how the useful work
						// spread across nodes, and a straggler's handicap
						// shows up as fewer tasks executed.
						time.Sleep(opt.NodeDelay)
					}
					t0 := time.Now()
					if edgePar {
						counter.CountEdgeRange(t.Start, t.End)
					} else {
						counter.CountRange(t.Start, t.End)
					}
					nd.busyNS.Add(int64(time.Since(t0)))
					atomic.AddInt64(&nd.stats.TasksRun, 1)
					pending.Add(-1)
					// Yield between tasks so simulated ranks interleave
					// fairly even when the host has fewer cores than the
					// cluster has workers; without this, one goroutine can
					// drain every queue before its peers are scheduled —
					// a shared-CPU artifact, not a property of §IV-E.
					runtime.Gosched()
				}
				rawCounts[slot] = counter.Raw()
			}(nd, ni*opt.WorkersPerNode+w)
		}
	}
	workWG.Wait()
	close(done)
	commWG.Wait()

	var raw int64
	for _, c := range rawCounts {
		raw += c
	}
	res := &Result{
		Elapsed:      time.Since(start),
		Tasks:        len(tasks),
		Nodes:        make([]NodeStats, opt.Nodes),
		EdgeParallel: edgePar,
	}
	if opt.UseIEP {
		res.Count = cfg.ScaleIEP(raw)
	} else {
		res.Count = raw
	}
	for i, nd := range nodes {
		nd.stats.BusyTime = time.Duration(nd.busyNS.Load())
		res.Nodes[i] = nd.stats
	}
	return res, nil
}

// trySteal asks the richest peer's communication goroutine for work and
// pushes the reply into the local queue. Returns true if tasks arrived.
func trySteal(self *node, nodes []*node, opt Options) bool {
	if len(nodes) == 1 {
		return false
	}
	if self.size() >= opt.StealThreshold {
		return true // queue refilled concurrently
	}
	victim := -1
	best := 0
	for i, nd := range nodes {
		if nd == self {
			continue
		}
		if s := nd.size(); s > best {
			best, victim = s, i
		}
	}
	if victim < 0 {
		return false
	}
	req := stealRequest{reply: make(chan []taskpool.Range, 1)}
	select {
	case nodes[victim].inbox <- req:
	default:
		return false // victim busy; caller retries
	}
	got := <-req.reply
	if len(got) == 0 {
		return false
	}
	self.push(got)
	atomic.AddInt64(&nodes[victim].stats.StolenFrom, int64(len(got)))
	atomic.AddInt64(&self.stats.StealsReceived, int64(len(got)))
	return true
}

// String renders per-node statistics compactly.
func (r *Result) String() string {
	shape := "vertex"
	if r.EdgeParallel {
		shape = "edge"
	}
	return fmt.Sprintf("count=%d elapsed=%v tasks=%d(%s) nodes=%d",
		r.Count, r.Elapsed, r.Tasks, shape, len(r.Nodes))
}
