// Package cluster implements GraphPi's distributed pattern matching layer
// (paper §IV-E) as a simulated multi-node system.
//
// The paper runs an OpenMP/MPI hybrid on Tianhe-2A: every node holds a full
// replica of the data graph, a master partitions the outer loops into
// fine-grained tasks, each node runs a communication thread that maintains a
// local task queue and steals tasks from other nodes with asynchronous MPI
// primitives when the queue runs low, and worker threads drain the local
// queue. This package reproduces that architecture with goroutines and
// channels standing in for MPI ranks and messages:
//
//   - Node — an MPI rank: a task queue, W worker goroutines, and a
//     communication goroutine serving steal requests from peers.
//   - The master (Run) packs outer-loop vertex ranges into tasks and deals
//     them to the nodes.
//   - When a node's queue drops below StealThreshold, its communication
//     goroutine requests work from the peer with the longest queue; the
//     victim's communication goroutine replies with half its remainder.
//
// What the simulation preserves from the paper: task granularity effects,
// load imbalance under power-law skew, steal traffic, and the flattening
// speedup curves for short jobs (Figure 12). What it abstracts away: wire
// latency and serialization costs.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/taskpool"
)

// Options configures a simulated cluster run.
type Options struct {
	// Nodes is the number of simulated MPI ranks (≥ 1).
	Nodes int
	// WorkersPerNode is the number of worker goroutines per node (the
	// paper runs 24 OpenMP threads per rank); ≥ 1.
	WorkersPerNode int
	// ChunkSize is the number of outermost-loop vertices per task
	// (< 1 → adaptive).
	ChunkSize int
	// StealThreshold: a node's comm goroutine steals when its queue is
	// shorter than this (< 1 → 2, the behavior of the paper's
	// communication thread).
	StealThreshold int
	// UseIEP enables inclusion–exclusion counting.
	UseIEP bool
	// NodeDelay artificially slows one node per task (failure/straggler
	// injection for tests); 0 disables.
	NodeDelay time.Duration
	// DelayedNode is the index of the straggler node when NodeDelay > 0.
	DelayedNode int
}

func (o *Options) normalize(numTasks int) {
	if o.Nodes < 1 {
		o.Nodes = 1
	}
	if o.WorkersPerNode < 1 {
		o.WorkersPerNode = 1
	}
	if o.StealThreshold < 1 {
		o.StealThreshold = 2
	}
	_ = numTasks
}

// NodeStats describes one node's activity during a run.
type NodeStats struct {
	// TasksRun is the number of tasks the node's workers executed.
	TasksRun int64
	// StolenFrom is the number of tasks other nodes took from this node.
	StolenFrom int64
	// StealsReceived is the number of tasks this node obtained by
	// stealing.
	StealsReceived int64
}

// Result is the outcome of a cluster run.
type Result struct {
	Count   int64
	Elapsed time.Duration
	Nodes   []NodeStats
	// Tasks is the total number of tasks the master created.
	Tasks int
}

// message types exchanged between node communication goroutines.
type stealRequest struct {
	reply chan []taskpool.Range
}

// node is one simulated MPI rank.
type node struct {
	id    int
	mu    sync.Mutex
	queue []taskpool.Range
	head  int

	inbox chan stealRequest
	stats NodeStats
}

func (n *node) pop() (taskpool.Range, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.head >= len(n.queue) {
		return taskpool.Range{}, false
	}
	t := n.queue[n.head]
	n.head++
	return t, true
}

func (n *node) size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue) - n.head
}

// takeHalf removes up to half of the remaining tasks from the back of the
// queue (the victim side of a steal).
func (n *node) takeHalf() []taskpool.Range {
	n.mu.Lock()
	defer n.mu.Unlock()
	remaining := len(n.queue) - n.head
	if remaining <= 1 {
		return nil
	}
	take := remaining / 2
	cut := len(n.queue) - take
	out := append([]taskpool.Range(nil), n.queue[cut:]...)
	n.queue = n.queue[:cut]
	return out
}

func (n *node) push(tasks []taskpool.Range) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.queue = append(n.queue, tasks...)
}

// Run executes the configuration on a simulated cluster and returns the
// embedding count with per-node statistics. Counts are exact and identical
// for any node/worker configuration.
func Run(cfg *core.Config, g *graph.Graph, opt Options) (*Result, error) {
	nv := g.NumVertices()
	if nv == 0 {
		return &Result{}, nil
	}
	chunk := opt.ChunkSize
	if chunk < 1 {
		chunk = nv / (maxInt(opt.Nodes, 1) * maxInt(opt.WorkersPerNode, 1) * 16)
		if chunk < 1 {
			chunk = 1
		}
	}
	tasks := taskpool.SplitChunks(nv, chunk)
	opt.normalize(len(tasks))

	nodes := make([]*node, opt.Nodes)
	for i := range nodes {
		nodes[i] = &node{id: i, inbox: make(chan stealRequest, opt.Nodes)}
	}
	// The master deals tasks round-robin (the paper's master thread packs
	// outer-loop values and distributes them).
	for i, t := range tasks {
		nd := nodes[i%opt.Nodes]
		nd.queue = append(nd.queue, t)
	}

	var pending atomic.Int64
	pending.Store(int64(len(tasks)))
	done := make(chan struct{})

	// Communication goroutines: serve steal requests until shutdown.
	var commWG sync.WaitGroup
	for _, nd := range nodes {
		commWG.Add(1)
		go func(nd *node) {
			defer commWG.Done()
			for {
				select {
				case req := <-nd.inbox:
					req.reply <- nd.takeHalf()
				case <-done:
					// Drain any in-flight requests so requesters never block.
					for {
						select {
						case req := <-nd.inbox:
							req.reply <- nil
						default:
							return
						}
					}
				}
			}
		}(nd)
	}

	start := time.Now()
	var workWG sync.WaitGroup
	rawCounts := make([]int64, opt.Nodes*opt.WorkersPerNode)
	for ni, nd := range nodes {
		for w := 0; w < opt.WorkersPerNode; w++ {
			workWG.Add(1)
			go func(nd *node, slot int) {
				defer workWG.Done()
				counter := core.NewCounter(cfg, g, opt.UseIEP)
				for {
					t, ok := nd.pop()
					if !ok {
						if !trySteal(nd, nodes, opt, &pending) {
							if pending.Load() == 0 {
								break
							}
							// Someone still runs tasks that might be
							// re-stolen; yield briefly.
							time.Sleep(50 * time.Microsecond)
							continue
						}
						continue
					}
					if opt.NodeDelay > 0 && nd.id == opt.DelayedNode {
						time.Sleep(opt.NodeDelay)
					}
					counter.CountRange(t.Start, t.End)
					atomic.AddInt64(&nd.stats.TasksRun, 1)
					pending.Add(-1)
				}
				rawCounts[slot] = counter.Raw()
			}(nd, ni*opt.WorkersPerNode+w)
		}
	}
	workWG.Wait()
	close(done)
	commWG.Wait()

	var raw int64
	for _, c := range rawCounts {
		raw += c
	}
	res := &Result{
		Elapsed: time.Since(start),
		Tasks:   len(tasks),
		Nodes:   make([]NodeStats, opt.Nodes),
	}
	if opt.UseIEP {
		res.Count = cfg.ScaleIEP(raw)
	} else {
		res.Count = raw
	}
	for i, nd := range nodes {
		res.Nodes[i] = nd.stats
	}
	return res, nil
}

// trySteal asks the richest peer's communication goroutine for work and
// pushes the reply into the local queue. Returns true if tasks arrived.
func trySteal(self *node, nodes []*node, opt Options, pending *atomic.Int64) bool {
	if len(nodes) == 1 {
		return false
	}
	if self.size() >= opt.StealThreshold {
		return true // queue refilled concurrently
	}
	victim := -1
	best := 0
	for i, nd := range nodes {
		if nd == self {
			continue
		}
		if s := nd.size(); s > best {
			best, victim = s, i
		}
	}
	if victim < 0 {
		return false
	}
	req := stealRequest{reply: make(chan []taskpool.Range, 1)}
	select {
	case nodes[victim].inbox <- req:
	default:
		return false // victim busy; caller retries
	}
	got := <-req.reply
	if len(got) == 0 {
		return false
	}
	self.push(got)
	atomic.AddInt64(&nodes[victim].stats.StolenFrom, int64(len(got)))
	atomic.AddInt64(&self.stats.StealsReceived, int64(len(got)))
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders per-node statistics compactly.
func (r *Result) String() string {
	return fmt.Sprintf("count=%d elapsed=%v tasks=%d nodes=%d",
		r.Count, r.Elapsed, r.Tasks, len(r.Nodes))
}
