// Package cluster implements GraphPi's distributed pattern matching layer
// (paper §IV-E).
//
// The paper runs an OpenMP/MPI hybrid on Tianhe-2A: every node holds a full
// replica of the data graph, a master partitions the outer loops into
// fine-grained tasks, each node runs a communication thread that maintains a
// local task queue and steals tasks from other nodes with asynchronous MPI
// primitives when the queue runs low, and worker threads drain the local
// queue. This package reproduces that architecture and splits it into policy
// and plumbing:
//
//   - Run is the master: it packs outer-loop ranges into tasks (edge-
//     parallel CSR adjacency slots when the planned schedule is eligible,
//     outermost-loop vertices otherwise), deals them round-robin, and
//     reduces the per-rank partial counts. Run contains no channel or
//     socket operations — all message movement is behind Transport.
//   - Transport (transport.go) is the MPI stand-in: it delivers dealt
//     queues, carries steal request/response traffic between ranks, and
//     reduces partial results. Two implementations exist: the in-process
//     channel fabric (chan_transport.go, the original simulation) and a
//     real TCP worker mode (tcp_transport.go/serve.go) where each rank is
//     a separate process holding its own replica of the data graph, loaded
//     from a shared GPiCSR2 snapshot.
//   - When a rank's queue drops below StealThreshold, it requests work
//     from the peer with the longest queue; the victim replies with half
//     its remainder. The channel fabric lets thieves address victims
//     directly; the TCP fabric relays steals through the master, which
//     tracks approximate queue lengths from the traffic it forwards.
//
// What both fabrics preserve from the paper: task granularity effects, load
// imbalance under power-law skew, steal traffic, and the flattening speedup
// curves for short jobs (Figure 12). What the channel fabric abstracts away
// — wire latency and serialization costs — the TCP fabric pays for real.
package cluster

import (
	"fmt"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/taskpool"
)

// Options configures a cluster run.
type Options struct {
	// Nodes is the number of ranks (≥ 1). Ignored by transports with a
	// fixed rank set (TCP: the connected worker count).
	Nodes int
	// WorkersPerNode is the number of worker goroutines per rank (the
	// paper runs 24 OpenMP threads per rank); ≥ 1.
	WorkersPerNode int
	// ChunkSize is the task granularity in outermost-loop vertices
	// (< 1 → adaptive). Under edge-parallel scheduling the value is scaled
	// by the average degree so it stays in vertex units for both
	// disciplines, exactly like core.RunOptions.ChunkSize.
	ChunkSize int
	// StealThreshold: a rank steals when its queue is shorter than this
	// (< 1 → 2, the behavior of the paper's communication thread).
	StealThreshold int
	// UseIEP enables inclusion–exclusion counting.
	UseIEP bool
	// EdgeParallel selects the task shape. Auto (the zero value) packs
	// edge-slot tasks whenever the schedule is eligible and more than one
	// worker runs in total; On forces slot tasks whenever eligible; Off
	// always packs vertex ranges (the pre-hybrid behavior).
	EdgeParallel core.EdgeParallelMode
	// NodeDelay artificially slows one rank per task (failure/straggler
	// injection for tests); 0 disables.
	NodeDelay time.Duration
	// DelayedNode is the index of the straggler rank when NodeDelay > 0.
	DelayedNode int
	// Transport selects how cluster messages move. nil → the in-process
	// channel transport (the original goroutine simulation). Use DialTCP
	// to run against remote worker processes instead.
	Transport Transport
}

// normalize clamps the options to runnable values. Chunk sizing reads the
// normalized node/worker counts, so it must run before tasks are packed.
func (o *Options) normalize() {
	if o.Nodes < 1 {
		o.Nodes = 1
	}
	if o.WorkersPerNode < 1 {
		o.WorkersPerNode = 1
	}
	if o.StealThreshold < 1 {
		o.StealThreshold = 2
	}
}

// NodeStats describes one rank's activity during a run.
type NodeStats struct {
	// TasksRun is the number of tasks the rank's workers executed.
	TasksRun int64
	// StolenFrom is the number of tasks other ranks took from this rank.
	StolenFrom int64
	// StealsReceived is the number of tasks this rank obtained by
	// stealing.
	StealsReceived int64
	// BusyTime is the wall time the rank's workers spent executing tasks
	// (injected NodeDelay excluded — slowness shows up as fewer tasks
	// executed, not as work done). The spread of BusyTime across ranks is
	// the load-balance evidence of §IV-E: a rank pinned by an indivisible
	// hub task shows up holding nearly 100% of the total busy time.
	BusyTime time.Duration
}

// Result is the outcome of a cluster run.
type Result struct {
	Count   int64
	Elapsed time.Duration
	Nodes   []NodeStats
	// Tasks is the total number of tasks the master created.
	Tasks int
	// EdgeParallel reports whether the master packed edge-slot tasks
	// (true) or vertex ranges (false).
	EdgeParallel bool
}

// MaxBusyShare returns the largest fraction of the total across per-node
// busy times (0 when no busy time was recorded). Perfect balance is
// 1/len(busy). It is exported so facade result types can reuse the metric.
func MaxBusyShare(busy []time.Duration) float64 {
	var total, max time.Duration
	for _, b := range busy {
		total += b
		if b > max {
			max = b
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / float64(total)
}

// MaxBusyShare returns the largest per-node fraction of the total busy time
// (0 when no busy time was recorded). Perfect balance is 1/len(Nodes).
func (r *Result) MaxBusyShare() float64 {
	busy := make([]time.Duration, len(r.Nodes))
	for i, ns := range r.Nodes {
		busy[i] = ns.BusyTime
	}
	return MaxBusyShare(busy)
}

// packTasks decides the task shape and splits the outer loops accordingly.
// totalWorkers is the cluster-wide worker count as the transport resolves it
// (remote workers may override their per-rank count). Edge-parallel slot
// tasks are the fine-grained partitioning of §IV-E: work units become
// proportional to edges, so one hub vertex can no longer pin an entire rank
// while its peers steal crumbs.
func packTasks(cfg *core.Config, g *graph.Graph, opt Options, totalWorkers int) ([]taskpool.Range, bool) {
	edgePar := cfg.EdgeParallelEligible(opt.UseIEP) &&
		opt.EdgeParallel != core.EdgeParallelOff &&
		(opt.EdgeParallel == core.EdgeParallelOn || totalWorkers > 1)
	if edgePar {
		m := g.NumAdjSlots()
		chunk := opt.ChunkSize
		if chunk > 0 {
			// Vertex-unit request: scale by the mean directed degree so
			// the task count matches the vertex discipline's.
			if avg := m / g.NumVertices(); avg > 1 {
				chunk *= avg
			}
		} else {
			chunk = taskpool.AdaptiveChunk(m, totalWorkers, 16, 16, 65536)
		}
		return taskpool.SplitChunks(m, chunk), true
	}
	nv := g.NumVertices()
	chunk := opt.ChunkSize
	if chunk < 1 {
		chunk = taskpool.AdaptiveChunk(nv, totalWorkers, 16, 1, 0)
	}
	return taskpool.SplitChunks(nv, chunk), false
}

// Run executes the configuration on a cluster and returns the embedding
// count with per-rank statistics. Counts are exact and identical for any
// node/worker configuration, either task shape, and every transport.
func Run(cfg *core.Config, g *graph.Graph, opt Options) (*Result, error) {
	opt.normalize()
	tr := opt.Transport
	if tr == nil {
		tr = NewChanTransport()
	}
	nranks := tr.Ranks(opt.Nodes)
	if nranks < 1 {
		return nil, fmt.Errorf("cluster: transport has no ranks")
	}
	if g.NumVertices() == 0 {
		return &Result{Nodes: make([]NodeStats, nranks)}, nil
	}
	tasks, edgePar := packTasks(cfg, g, opt,
		tr.TotalWorkers(nranks, opt.WorkersPerNode))

	job := &Job{
		Cfg:            cfg,
		Graph:          g,
		UseIEP:         opt.UseIEP,
		EdgeParallel:   edgePar,
		WorkersPerRank: opt.WorkersPerNode,
		StealThreshold: opt.StealThreshold,
		NodeDelay:      opt.NodeDelay,
		DelayedRank:    opt.DelayedNode,
	}
	sess, err := tr.Connect(job, nranks)
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	// The master deals tasks round-robin (the paper's master thread packs
	// outer-loop values and distributes them).
	queues := make([][]taskpool.Range, nranks)
	for i, t := range tasks {
		queues[i%nranks] = append(queues[i%nranks], t)
	}
	for r, q := range queues {
		if len(q) == 0 {
			continue
		}
		if err := sess.Deal(r, q); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	if err := sess.Start(); err != nil {
		return nil, err
	}
	partials, err := sess.Reduce()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Elapsed:      time.Since(start),
		Tasks:        len(tasks),
		Nodes:        make([]NodeStats, nranks),
		EdgeParallel: edgePar,
	}
	res.Count = reducePartials(cfg, opt.UseIEP, partials, res.Nodes)
	return res, nil
}

// reducePartials folds the per-rank partial counts into the job total (and
// copies out per-node stats). The fold is the cluster layer's only
// count-bearing arithmetic, and it must be reproducible: partials arrive in
// rank order and sum associatively, so the total is independent of which
// rank finished first.
//
//graphpi:deterministic
func reducePartials(cfg *core.Config, useIEP bool, partials []RankResult, nodes []NodeStats) int64 {
	var raw int64
	for i, p := range partials {
		raw += p.Raw
		nodes[i] = p.Stats
	}
	if useIEP {
		return cfg.ScaleIEP(raw)
	}
	return raw
}

// String renders per-node statistics compactly.
func (r *Result) String() string {
	shape := "vertex"
	if r.EdgeParallel {
		shape = "edge"
	}
	return fmt.Sprintf("count=%d elapsed=%v tasks=%d(%s) nodes=%d",
		r.Count, r.Elapsed, r.Tasks, shape, len(r.Nodes))
}
