package cluster

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"graphpi/internal/graph"
	"graphpi/internal/taskpool"
)

// This file is the worker side of the TCP fabric: a process that holds a
// full replica of the data graph (loaded from a shared GPiCSR snapshot, or
// pulled from the master over the wire when the worker starts cold), accepts
// master connections, and executes the same compiled configurations the
// master planned. One worker process is one rank; its internal structure
// mirrors a channel-transport rank exactly — the shared rank.drain loop runs
// the worker goroutines, and the connection reader plays the communication
// thread serving steal-ask requests while workers compute.

// ServeOptions configures a worker process.
type ServeOptions struct {
	// Workers overrides the per-job worker goroutine count requested by
	// the master (0 → honor the job's WorkersPerRank). Set it when worker
	// machines have heterogeneous core counts.
	Workers int
	// Logf, if non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

func (o ServeOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// handshakeTimeout bounds the hello/welcome exchange so a port scanner or a
// stalled peer cannot pin a connection handler forever. Jobs themselves run
// without deadlines — counting can legitimately take minutes.
const handshakeTimeout = 10 * time.Second

// graphHolder is the worker's replica slot, shared by every connection the
// worker serves. A worker started cold (nil graph) advertises hasGraph=false
// and fills the slot when a master pushes a snapshot; the replica then
// persists across connections, so a redialing master does not re-push.
type graphHolder struct {
	mu sync.Mutex
	g  *graph.Graph // guarded by mu
}

func (h *graphHolder) get() *graph.Graph {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.g
}

func (h *graphHolder) set(g *graph.Graph) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.g = g
}

// Serve accepts master connections on ln and executes their counting jobs
// against g, the worker's replica of the data graph. g may be nil: the
// worker then joins cold and waits for a master to push the snapshot before
// its first job. Serve blocks until ln is closed (which is the idiomatic
// shutdown: close the listener, in-flight jobs fail their masters'
// connections). Each connection is served on its own goroutine, so a worker
// can in principle serve several masters, though they compete for the same
// cores.
func Serve(ln net.Listener, g *graph.Graph, opt ServeOptions) error {
	holder := &graphHolder{g: g}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			if err := serveConn(conn, holder, opt); err != nil {
				opt.logf("cluster worker: %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// serveConn handles one master for its lifetime: handshake, then a sequence
// of snapshot pushes and jobs. A clean disconnect (EOF between jobs) returns
// nil.
func serveConn(conn net.Conn, holder *graphHolder, opt ServeOptions) error {
	br := bufio.NewReader(conn)
	if err := conn.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return err
	}
	typ, payload, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if typ != msgHello {
		return fmt.Errorf("expected hello, got frame type %d", typ)
	}
	if err := decodeHello(payload); err != nil {
		_ = writeFrame(conn, msgError, []byte(err.Error())) // best-effort report; the decode error is what matters
		return err
	}
	var fp graphFingerprint
	hasGraph := false
	if g := holder.get(); g != nil {
		fp, hasGraph = fingerprintOf(g), true
	}
	if err := writeFrame(conn, msgWelcome, encodeWelcome(opt.Workers, fp, hasGraph)); err != nil {
		return err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return err
	}
	opt.logf("cluster worker: %v joined", conn.RemoteAddr())

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				opt.logf("cluster worker: %v left", conn.RemoteAddr())
				return nil
			}
			return err
		}
		switch typ {
		case msgSnapBegin:
			if err := receiveSnapshot(conn, br, holder, opt, payload); err != nil {
				return err
			}
		case msgJob:
			if err := runWorkerJob(conn, br, holder, opt, payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("expected job or snapshot, got frame type %d", typ)
		}
	}
}

// receiveSnapshot reads a master-pushed snapshot stream, loads the replica
// into the holder and answers with its fingerprint.
func receiveSnapshot(conn net.Conn, br *bufio.Reader, holder *graphHolder, opt ServeOptions, beginPayload []byte) error {
	total, err := decodeSnapBegin(beginPayload)
	if err != nil {
		_ = writeFrame(conn, msgError, []byte(err.Error())) // best-effort report; the decode error is what matters
		return err
	}
	buf := bytes.NewBuffer(make([]byte, 0, total))
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return fmt.Errorf("reading snapshot chunk: %w", err)
		}
		if typ == msgSnapEnd {
			break
		}
		if typ != msgSnapData {
			return fmt.Errorf("expected snapshot data, got frame type %d", typ)
		}
		if int64(buf.Len())+int64(len(payload)) > total {
			err := fmt.Errorf("snapshot overruns advertised length %d", total)
			_ = writeFrame(conn, msgError, []byte(err.Error())) // best-effort report before tearing down
			return err
		}
		buf.Write(payload)
	}
	if int64(buf.Len()) != total {
		err := fmt.Errorf("snapshot truncated: got %d of %d bytes", buf.Len(), total)
		_ = writeFrame(conn, msgError, []byte(err.Error())) // best-effort report before tearing down
		return err
	}
	g, err := graph.ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		_ = writeFrame(conn, msgError, []byte(fmt.Sprintf("loading pushed snapshot: %v", err))) // best-effort report; the load error is what matters
		return err
	}
	holder.set(g)
	opt.logf("cluster worker: %v pushed snapshot %s (%d bytes)", conn.RemoteAddr(), FingerprintKey(g), total)
	return writeFrame(conn, msgSnapOK, encodeSnapOK(fingerprintOf(g)))
}

// workerConnState is the per-job connection state: a write mutex shared by
// the steal agent (requests), the reader (steal-give replies), the task
// acknowledger and the result sender.
type workerConnState struct {
	conn net.Conn
	wmu  sync.Mutex
}

func (c *workerConnState) write(typ uint8, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeFrame(c.conn, typ, payload)
}

// stealReplyTimeout bounds how long the steal agent waits for the master's
// verdict before treating the attempt as a retry. Verdicts can be dropped
// when the reply buffer is full of unsolicited re-deals, so the agent must
// not wait on one forever; a late verdict is consumed (harmlessly) by the
// next attempt.
const stealReplyTimeout = 100 * time.Millisecond

// runWorkerJob executes one job frame end to end: compile, receive the
// initial deal, drain with master-relayed stealing and per-task
// acknowledgement, report the result, and wait for the job epilogue.
//
// Exit discipline (deterministic under a mid-job master disconnect): the
// result frame is written only when the drain finished cleanly — if the
// connection was lost (reader error, ack or steal write failure) or the rank
// halted on an injected fault, the drain's outcome is abandoned without
// touching the socket. A partial drain can therefore never race a result
// frame onto the wire; the master either receives acks followed by a result,
// or acks followed by a disconnect.
func runWorkerJob(conn net.Conn, br *bufio.Reader, holder *graphHolder, opt ServeOptions, jobPayload []byte) error {
	spec, err := decodeJob(jobPayload)
	if err != nil {
		_ = writeFrame(conn, msgError, []byte(err.Error())) // best-effort report; the decode error is what matters
		return err
	}
	g := holder.get()
	if g == nil {
		// A rejected job is not a connection error: report it and keep
		// serving — the master should have pushed a snapshot first.
		return writeFrame(conn, msgError, []byte("worker holds no graph snapshot"))
	}
	job, err := spec.compile(g)
	if err != nil {
		// Likewise (graph/config mismatch): let the master decide; it will
		// usually close the connection, which the outer loop handles as a
		// leave.
		return writeFrame(conn, msgError, []byte(err.Error()))
	}
	if opt.Workers > 0 {
		job.WorkersPerRank = opt.Workers
	}
	if err := writeFrame(conn, msgJobOK, nil); err != nil {
		return err
	}

	rk := &rank{id: spec.Rank}
	// Initial deal: zero or one tasks frames, then start. (Ranks beyond the
	// task count receive no tasks frame at all.)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return fmt.Errorf("reading deal: %w", err)
		}
		if typ == msgStart {
			break
		}
		if typ != msgTasks {
			return fmt.Errorf("expected tasks or start, got frame type %d", typ)
		}
		ts, err := decodeTasks(payload)
		if err != nil {
			return err
		}
		rk.push(ts)
	}

	c := &workerConnState{conn: conn}
	// Verdicts are pushed non-blockingly by the reader (an unsolicited
	// re-deal can arrive while a solicited verdict is still unread), so the
	// buffer absorbs bursts and the steal agent tolerates drops via
	// stealReplyTimeout.
	replies := make(chan stealVerdict, 8)
	pushVerdict := func(v stealVerdict) {
		select {
		case replies <- v:
		default:
		}
	}
	readerDone := make(chan struct{})
	var readerErr error
	var jobDone atomic.Bool
	// lost flips when the master's connection dies mid-job. It is handed to
	// the drain loop as the workers' stop flag: a master that cancelled the
	// job (or crashed) frees this rank's cores within one outer-loop
	// boundary instead of leaving them counting for a client that will
	// never read the result.
	var lost atomic.Bool
	// halt flips on an injected fault: the rank "crashes" at a task
	// boundary, leaving exactly-once accountable state (acked tasks) behind.
	var halt atomic.Bool

	// Acknowledge every completed task with its raw count delta; the master
	// banks it so a loss of this rank re-earns only unacknowledged work.
	// The injected fault (FailAfterTasks) closes the connection abruptly
	// after the K-th ack — an honest simulation of a crash mid-job.
	injectFault := job.FailAfterTasks > 0 && spec.Rank == job.FailRank && spec.NumRanks > 1
	var completed atomic.Int64
	taskDone := func(t taskpool.Range, delta int64) {
		if err := c.write(msgAck, encodeAck(t, delta)); err != nil {
			lost.Store(true)
			return
		}
		if injectFault && completed.Add(1) == int64(job.FailAfterTasks) {
			halt.Store(true)
			_ = conn.Close() // simulated crash: abrupt teardown is the point
		}
	}

	// The communication thread: serve steal-asks from the master's relay
	// and route steal replies to the steal agent, until the master closes
	// the job (msgJobDone) or the connection dies.
	go func() {
		defer close(readerDone)
		for {
			typ, payload, err := readFrame(br)
			if err != nil {
				readerErr = fmt.Errorf("mid-job read: %w", err)
				lost.Store(true)
				return
			}
			switch typ {
			case msgStealAsk:
				tasks := rk.takeHalf()
				atomic.AddInt64(&rk.stats.StolenFrom, int64(len(tasks)))
				if err := c.write(msgStealGive, encodeStealGive(rk.size(), tasks)); err != nil {
					readerErr = err
					lost.Store(true)
					return
				}
			case msgTasks:
				ts, err := decodeTasks(payload)
				if err != nil {
					readerErr = err
					lost.Store(true)
					return
				}
				rk.push(ts)
				atomic.AddInt64(&rk.stats.StealsReceived, int64(len(ts)))
				pushVerdict(stealGot)
			case msgRetry:
				pushVerdict(stealRetry)
			case msgNoWork:
				pushVerdict(stealDone)
			case msgJobDone:
				return
			default:
				readerErr = fmt.Errorf("unexpected mid-job frame type %d", typ)
				lost.Store(true)
				return
			}
		}
	}()

	// The steal agent, shared by the rank's workers: one outstanding
	// request at a time, relayed through the master.
	var stealMu sync.Mutex
	steal := func() stealVerdict {
		stealMu.Lock()
		defer stealMu.Unlock()
		if jobDone.Load() {
			return stealDone
		}
		if rk.size() >= job.StealThreshold {
			return stealGot // queue refilled concurrently
		}
		if spec.NumRanks == 1 {
			// No peers to steal from; an empty queue means the job is
			// locally (hence globally) drained.
			jobDone.Store(true)
			return stealDone
		}
		if err := c.write(msgStealReq, encodeRemaining(rk.size())); err != nil {
			lost.Store(true)
			jobDone.Store(true)
			return stealDone
		}
		select {
		case v := <-replies:
			if v == stealDone {
				jobDone.Store(true)
			}
			return v
		case <-readerDone:
			// Connection lost: abandon the job; the master sees the
			// rank as disconnected.
			jobDone.Store(true)
			return stealDone
		case <-time.After(stealReplyTimeout):
			// The verdict may have been dropped (or is slow); re-request.
			return stealRetry
		}
	}

	raw := rk.drain(job, job.WorkersPerRank, &lost, &halt, steal, taskDone)

	if halt.Load() {
		// Injected crash: the connection is closed; the outer loop's next
		// read fails and the worker returns to accepting masters.
		<-readerDone
		return fmt.Errorf("injected fault: rank %d left after %d tasks", spec.Rank, completed.Load())
	}
	if lost.Load() {
		// The master is gone; there is no one to report to, and a drain
		// interrupted by the stop flag must never produce a result frame.
		<-readerDone
		if readerErr != nil {
			return readerErr
		}
		return fmt.Errorf("connection lost mid-job")
	}
	if err := c.write(msgResult, encodeResult(rk.result(raw))); err != nil {
		<-readerDone
		return err
	}
	<-readerDone
	return readerErr
}
