package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"graphpi/internal/graph"
)

// This file is the worker side of the TCP fabric: a process that holds a
// full replica of the data graph (typically loaded from a shared GPiCSR2
// snapshot with graph.LoadBinaryFile), accepts master connections, and
// executes the same compiled configurations the master planned. One worker
// process is one rank; its internal structure mirrors a channel-transport
// rank exactly — the shared rank.drain loop runs the worker goroutines, and
// the connection reader plays the communication thread serving steal-ask
// requests while workers compute.

// ServeOptions configures a worker process.
type ServeOptions struct {
	// Workers overrides the per-job worker goroutine count requested by
	// the master (0 → honor the job's WorkersPerRank). Set it when worker
	// machines have heterogeneous core counts.
	Workers int
	// Logf, if non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

func (o ServeOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// handshakeTimeout bounds the hello/welcome exchange so a port scanner or a
// stalled peer cannot pin a connection handler forever. Jobs themselves run
// without deadlines — counting can legitimately take minutes.
const handshakeTimeout = 10 * time.Second

// Serve accepts master connections on ln and executes their counting jobs
// against g, the worker's replica of the data graph. It blocks until ln is
// closed (which is the idiomatic shutdown: close the listener, in-flight
// jobs fail their masters' connections). Each connection is served on its
// own goroutine, so a worker can in principle serve several masters, though
// they compete for the same cores.
func Serve(ln net.Listener, g *graph.Graph, opt ServeOptions) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			if err := serveConn(conn, g, opt); err != nil {
				opt.logf("cluster worker: %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// serveConn handles one master for its lifetime: handshake, then a sequence
// of jobs. A clean disconnect (EOF between jobs) returns nil.
func serveConn(conn net.Conn, g *graph.Graph, opt ServeOptions) error {
	br := bufio.NewReader(conn)
	if err := conn.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return err
	}
	typ, payload, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if typ != msgHello {
		return fmt.Errorf("expected hello, got frame type %d", typ)
	}
	if err := decodeHello(payload); err != nil {
		writeFrame(conn, msgError, []byte(err.Error()))
		return err
	}
	if err := writeFrame(conn, msgWelcome, encodeWelcome(opt.Workers, fingerprintOf(g))); err != nil {
		return err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return err
	}
	opt.logf("cluster worker: %v joined", conn.RemoteAddr())

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				opt.logf("cluster worker: %v left", conn.RemoteAddr())
				return nil
			}
			return err
		}
		if typ != msgJob {
			return fmt.Errorf("expected job, got frame type %d", typ)
		}
		if err := runWorkerJob(conn, br, g, opt, payload); err != nil {
			return err
		}
	}
}

// workerConnState is the per-job connection state: a write mutex shared by
// the steal agent (requests), the reader (steal-give replies) and the result
// sender.
type workerConnState struct {
	conn net.Conn
	wmu  sync.Mutex
}

func (c *workerConnState) write(typ uint8, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeFrame(c.conn, typ, payload)
}

// runWorkerJob executes one job frame end to end: compile, receive the
// initial deal, drain with master-relayed stealing, report the result, and
// wait for the job epilogue.
func runWorkerJob(conn net.Conn, br *bufio.Reader, g *graph.Graph, opt ServeOptions, jobPayload []byte) error {
	spec, err := decodeJob(jobPayload)
	if err != nil {
		writeFrame(conn, msgError, []byte(err.Error()))
		return err
	}
	job, err := spec.compile(g)
	if err != nil {
		// A rejected job (graph/config mismatch) is not a connection
		// error: report it and let the master decide; it will usually
		// close the connection, which the outer loop handles as a leave.
		return writeFrame(conn, msgError, []byte(err.Error()))
	}
	if opt.Workers > 0 {
		job.WorkersPerRank = opt.Workers
	}
	if err := writeFrame(conn, msgJobOK, nil); err != nil {
		return err
	}

	rk := &rank{id: spec.Rank}
	// Initial deal: zero or one tasks frame, then start. (Ranks beyond the
	// task count receive no tasks frame at all.)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return fmt.Errorf("reading deal: %w", err)
		}
		if typ == msgStart {
			break
		}
		if typ != msgTasks {
			return fmt.Errorf("expected tasks or start, got frame type %d", typ)
		}
		ts, err := decodeTasks(payload)
		if err != nil {
			return err
		}
		rk.push(ts)
	}

	c := &workerConnState{conn: conn}
	replies := make(chan stealVerdict, 1)
	readerDone := make(chan struct{})
	var readerErr error
	var jobDone atomic.Bool
	// lost flips when the master's connection dies mid-job. It is handed to
	// the drain loop as the workers' stop flag: a master that cancelled the
	// job (or crashed) frees this rank's cores within one outer-loop
	// boundary instead of leaving them counting for a client that will
	// never read the result.
	var lost atomic.Bool

	// The communication thread: serve steal-asks from the master's relay
	// and route steal replies to the steal agent, until the master closes
	// the job (msgJobDone) or the connection dies.
	go func() {
		defer close(readerDone)
		for {
			typ, payload, err := readFrame(br)
			if err != nil {
				readerErr = fmt.Errorf("mid-job read: %w", err)
				lost.Store(true)
				return
			}
			switch typ {
			case msgStealAsk:
				tasks := rk.takeHalf()
				atomic.AddInt64(&rk.stats.StolenFrom, int64(len(tasks)))
				if err := c.write(msgStealGive, encodeStealGive(rk.size(), tasks)); err != nil {
					readerErr = err
					lost.Store(true)
					return
				}
			case msgTasks:
				ts, err := decodeTasks(payload)
				if err != nil {
					readerErr = err
					lost.Store(true)
					return
				}
				rk.push(ts)
				atomic.AddInt64(&rk.stats.StealsReceived, int64(len(ts)))
				replies <- stealGot
			case msgRetry:
				replies <- stealRetry
			case msgNoWork:
				replies <- stealDone
			case msgJobDone:
				return
			default:
				readerErr = fmt.Errorf("unexpected mid-job frame type %d", typ)
				lost.Store(true)
				return
			}
		}
	}()

	// The steal agent, shared by the rank's workers: one outstanding
	// request at a time, relayed through the master.
	var stealMu sync.Mutex
	steal := func() stealVerdict {
		stealMu.Lock()
		defer stealMu.Unlock()
		if jobDone.Load() {
			return stealDone
		}
		if rk.size() >= job.StealThreshold {
			return stealGot // queue refilled concurrently
		}
		if spec.NumRanks == 1 {
			// No peers to steal from; an empty queue means the job is
			// locally (hence globally) drained.
			jobDone.Store(true)
			return stealDone
		}
		if err := c.write(msgStealReq, encodeRemaining(rk.size())); err != nil {
			jobDone.Store(true)
			return stealDone
		}
		select {
		case v := <-replies:
			if v == stealDone {
				jobDone.Store(true)
			}
			return v
		case <-readerDone:
			// Connection lost: abandon the job; the master sees the
			// rank as disconnected.
			jobDone.Store(true)
			return stealDone
		}
	}

	raw := rk.drain(job, job.WorkersPerRank, &lost, steal, nil)

	if err := c.write(msgResult, encodeResult(rk.result(raw))); err != nil {
		<-readerDone
		return err
	}
	<-readerDone
	return readerErr
}
