package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"graphpi/internal/taskpool"
)

// chanTransport is the original in-process fabric: goroutines and channels
// standing in for MPI ranks and messages. Each rank is a rank struct plus an
// inbox channel served by a communication goroutine; thieves inspect peer
// queue lengths directly (shared memory stands in for the paper's queue
// gossip) and send steal requests to the richest victim's inbox. It remains
// the default transport and the simulation baseline every remote transport
// is conformance-tested against.
type chanTransport struct{}

// NewChanTransport returns the in-process channel transport.
func NewChanTransport() Transport { return chanTransport{} }

// Ranks grants any requested count: in-process ranks are free.
func (chanTransport) Ranks(requested int) int {
	if requested < 1 {
		return 1
	}
	return requested
}

// TotalWorkers: in-process ranks run exactly what the caller requests.
func (chanTransport) TotalWorkers(nranks, workersPerRank int) int {
	return nranks * workersPerRank
}

func (chanTransport) Close() error { return nil }

func (chanTransport) Connect(job *Job, nranks int) (Session, error) {
	if nranks < 1 {
		return nil, fmt.Errorf("cluster: chan transport: %d ranks", nranks)
	}
	s := &chanSession{job: job, done: make(chan struct{})}
	s.ranks = make([]*chanRank, nranks)
	for i := range s.ranks {
		s.ranks[i] = &chanRank{rank: rank{id: i}, inbox: make(chan stealRequest, nranks)}
	}
	return s, nil
}

// stealRequest is the message a thief sends to a victim's communication
// goroutine; the reply carries the stolen tasks (nil for "nothing to give").
type stealRequest struct {
	reply chan []taskpool.Range
}

// chanRank is an in-process rank: the shared queue state plus the inbox its
// communication goroutine serves.
type chanRank struct {
	rank
	inbox chan stealRequest
}

type chanSession struct {
	job   *Job
	ranks []*chanRank

	pending atomic.Int64 // tasks dealt but not yet executed, job-wide
	done    chan struct{}
	commWG  sync.WaitGroup
	workWG  sync.WaitGroup
	raw     []int64
	started bool
}

func (s *chanSession) Deal(rankID int, tasks []taskpool.Range) error {
	if s.started {
		return fmt.Errorf("cluster: Deal after Start")
	}
	s.ranks[rankID].push(tasks)
	s.pending.Add(int64(len(tasks)))
	return nil
}

func (s *chanSession) Start() error {
	if s.started {
		return fmt.Errorf("cluster: session already started")
	}
	s.started = true

	// Communication goroutines: serve steal requests until shutdown.
	for _, nd := range s.ranks {
		s.commWG.Add(1)
		go func(nd *chanRank) {
			defer s.commWG.Done()
			for {
				select {
				case req := <-nd.inbox:
					req.reply <- nd.take()
				case <-s.done:
					// Drain any in-flight requests so requesters never
					// block.
					for {
						select {
						case req := <-nd.inbox:
							req.reply <- nil
						default:
							return
						}
					}
				}
			}
		}(nd)
	}

	s.raw = make([]int64, len(s.ranks))
	for i, nd := range s.ranks {
		s.workWG.Add(1)
		go func(i int, nd *chanRank) {
			defer s.workWG.Done()
			var halt *atomic.Bool
			taskDone := func(taskpool.Range, int64) { s.pending.Add(-1) }
			if s.job.FailAfterTasks > 0 && i == s.job.FailRank && len(s.ranks) > 1 {
				// Injected loss, modeled at task boundaries: after the
				// K-th completed task the rank halts and marks itself
				// dead, so survivors steal its entire remaining queue. In
				// shared memory the dead rank's raw tally survives for
				// free (the TCP fabric has to re-earn unacknowledged
				// counts instead), so totals stay exact either way.
				halt = new(atomic.Bool)
				var completed atomic.Int64
				k := int64(s.job.FailAfterTasks)
				taskDone = func(taskpool.Range, int64) {
					s.pending.Add(-1)
					if completed.Add(1) == k {
						nd.dead.Store(true)
						halt.Store(true)
					}
				}
			}
			s.raw[i] = nd.drain(s.job, s.job.WorkersPerRank, nil, halt,
				func() stealVerdict { return s.steal(nd) },
				taskDone)
		}(i, nd)
	}
	return nil
}

func (s *chanSession) Reduce() ([]RankResult, error) {
	if !s.started {
		return nil, fmt.Errorf("cluster: Reduce before Start")
	}
	s.workWG.Wait()
	close(s.done)
	s.commWG.Wait()
	out := make([]RankResult, len(s.ranks))
	for i, nd := range s.ranks {
		out[i] = nd.result(s.raw[i])
	}
	return out, nil
}

func (s *chanSession) Close() error { return nil }

// steal asks the richest peer's communication goroutine for work and pushes
// the reply into the local queue.
func (s *chanSession) steal(self *chanRank) stealVerdict {
	if s.trySteal(self) {
		return stealGot
	}
	if s.pending.Load() == 0 {
		return stealDone
	}
	return stealRetry
}

// trySteal reports whether tasks arrived (or the queue refilled
// concurrently).
func (s *chanSession) trySteal(self *chanRank) bool {
	if len(s.ranks) == 1 {
		return false
	}
	if self.size() >= s.job.StealThreshold {
		return true // queue refilled concurrently
	}
	victim := -1
	best := 0
	for i, nd := range s.ranks {
		if nd == self {
			continue
		}
		if sz := nd.size(); sz > best {
			best, victim = sz, i
		}
	}
	if victim < 0 {
		return false
	}
	req := stealRequest{reply: make(chan []taskpool.Range, 1)}
	select {
	case s.ranks[victim].inbox <- req:
	default:
		return false // victim busy; caller retries
	}
	got := <-req.reply
	if len(got) == 0 {
		return false
	}
	self.push(got)
	atomic.AddInt64(&s.ranks[victim].stats.StolenFrom, int64(len(got)))
	atomic.AddInt64(&self.stats.StealsReceived, int64(len(got)))
	return true
}
