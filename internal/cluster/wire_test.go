package cluster

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/taskpool"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello world")
	if err := writeFrame(&buf, msgTasks, payload); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, msgStart, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf)
	if err != nil || typ != msgTasks || !bytes.Equal(got, payload) {
		t.Fatalf("frame 1: typ=%d payload=%q err=%v", typ, got, err)
	}
	typ, got, err = readFrame(&buf)
	if err != nil || typ != msgStart || got != nil {
		t.Fatalf("frame 2: typ=%d payload=%q err=%v", typ, got, err)
	}
}

func TestFrameLengthBounds(t *testing.T) {
	// Length 0 (no type byte) and an absurd length must both be rejected
	// before any allocation.
	for _, hdr := range [][]byte{
		{0, 0, 0, 0, 0},
		{0xff, 0xff, 0xff, 0x7f, 1},
	} {
		if _, _, err := readFrame(bytes.NewReader(hdr)); err == nil {
			t.Errorf("header % x accepted", hdr)
		}
	}
}

func TestJobSpecRoundTrip(t *testing.T) {
	g := graph.BarabasiAlbert(120, 3, 1)
	cfg := planFor(t, g, pattern.House())
	job := &Job{
		Cfg:            cfg,
		Graph:          g,
		UseIEP:         true,
		EdgeParallel:   true,
		WorkersPerRank: 3,
		StealThreshold: 2,
		NodeDelay:      5 * time.Millisecond,
		DelayedRank:    1,
	}
	spec := jobSpecOf(job, 2, 4)
	decoded, err := decodeJob(encodeJob(spec))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, decoded) {
		t.Fatalf("round trip mismatch:\n  sent %+v\n  got  %+v", spec, decoded)
	}
	rebuilt, err := decoded.compile(g)
	if err != nil {
		t.Fatal(err)
	}
	// The planner's Cost is deliberately not shipped (workers execute, they
	// don't re-plan); compare the executable parts.
	if rebuilt.Cfg.Schedule.String() != cfg.Schedule.String() ||
		rebuilt.Cfg.Restrictions.String() != cfg.Restrictions.String() ||
		!rebuilt.Cfg.Pattern.Isomorphic(cfg.Pattern) {
		t.Errorf("recompiled config %s != %s", rebuilt.Cfg, cfg)
	}
	if rebuilt.NodeDelay != job.NodeDelay || rebuilt.DelayedRank != job.DelayedRank ||
		!rebuilt.UseIEP || !rebuilt.EdgeParallel || rebuilt.WorkersPerRank != 3 {
		t.Errorf("job options lost: %+v", rebuilt)
	}
}

// TestDecodersRejectTruncation feeds every strict prefix of valid payloads
// to the decoders: each must error, never panic or silently succeed.
func TestDecodersRejectTruncation(t *testing.T) {
	g := graph.GNP(40, 0.3, 2)
	cfg := planFor(t, g, pattern.Triangle())
	job := &Job{Cfg: cfg, Graph: g, WorkersPerRank: 1, StealThreshold: 2}
	tasks := []taskpool.Range{{Start: 0, End: 7}, {Start: 7, End: 40}}

	cases := map[string]struct {
		payload []byte
		decode  func([]byte) error
	}{
		"job": {encodeJob(jobSpecOf(job, 0, 2)), func(b []byte) error {
			_, err := decodeJob(b)
			return err
		}},
		"tasks": {encodeTasks(tasks), func(b []byte) error {
			_, err := decodeTasks(b)
			return err
		}},
		"result": {encodeResult(RankResult{Raw: 42, Stats: NodeStats{TasksRun: 3}}), func(b []byte) error {
			_, err := decodeResult(b)
			return err
		}},
		"give": {encodeStealGive(3, tasks), func(b []byte) error {
			_, _, err := decodeStealGive(b)
			return err
		}},
		"welcome": {encodeWelcome(2, fingerprintOf(g), true), func(b []byte) error {
			_, _, _, err := decodeWelcome(b)
			return err
		}},
		"ack": {encodeAck(taskpool.Range{Start: 3, End: 9}, 17), func(b []byte) error {
			_, _, err := decodeAck(b)
			return err
		}},
		"snapBegin": {encodeSnapBegin(1 << 20), func(b []byte) error {
			_, err := decodeSnapBegin(b)
			return err
		}},
		"snapOK": {encodeSnapOK(fingerprintOf(g)), func(b []byte) error {
			_, err := decodeSnapOK(b)
			return err
		}},
		"hello": {encodeHello(), decodeHello},
		"remaining": {encodeRemaining(9), func(b []byte) error {
			_, err := decodeRemaining(b)
			return err
		}},
	}
	for name, tc := range cases {
		if err := tc.decode(tc.payload); err != nil {
			t.Errorf("%s: full payload rejected: %v", name, err)
		}
		for cut := 0; cut < len(tc.payload); cut++ {
			if err := tc.decode(tc.payload[:cut]); err == nil {
				t.Errorf("%s: prefix of %d/%d bytes accepted", name, cut, len(tc.payload))
				break
			}
		}
	}
}

func TestAckRoundTrip(t *testing.T) {
	want := taskpool.Range{Start: 12, End: 345}
	task, delta, err := decodeAck(encodeAck(want, -7))
	if err != nil {
		t.Fatal(err)
	}
	if task != want || delta != -7 {
		t.Errorf("ack round trip: task=%+v delta=%d", task, delta)
	}
}

func TestWelcomeCarriesReplicaState(t *testing.T) {
	g := graph.GNP(30, 0.4, 3)
	fp := fingerprintOf(g)
	for _, hasGraph := range []bool{false, true} {
		workers, got, gotHas, err := decodeWelcome(encodeWelcome(5, fp, hasGraph))
		if err != nil {
			t.Fatal(err)
		}
		if workers != 5 || got != fp || gotHas != hasGraph {
			t.Errorf("welcome(hasGraph=%v) round trip: workers=%d has=%v fp match=%v",
				hasGraph, workers, gotHas, got == fp)
		}
	}
}

func TestJobSpecCarriesFaultInjection(t *testing.T) {
	g := graph.GNP(40, 0.3, 9)
	cfg := planFor(t, g, pattern.Triangle())
	job := &Job{Cfg: cfg, Graph: g, WorkersPerRank: 1, StealThreshold: 2,
		FailRank: 1, FailAfterTasks: 4}
	spec := jobSpecOf(job, 1, 3)
	decoded, err := decodeJob(encodeJob(spec))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.FailRank != 1 || decoded.FailAfterTasks != 4 {
		t.Errorf("fault fields lost: %+v", decoded)
	}
	rebuilt, err := decoded.compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.FailRank != 1 || rebuilt.FailAfterTasks != 4 {
		t.Errorf("compiled job lost fault fields: %+v", rebuilt)
	}
}

func TestSnapBeginBounds(t *testing.T) {
	if _, err := decodeSnapBegin(encodeSnapBegin(maxSnapshot + 1)); err == nil {
		t.Error("oversized snapshot length accepted")
	}
	if _, err := decodeSnapBegin(encodeSnapBegin(0)); err == nil {
		t.Error("empty snapshot accepted")
	}
	n, err := decodeSnapBegin(encodeSnapBegin(123))
	if err != nil || n != 123 {
		t.Errorf("snapBegin round trip: n=%d err=%v", n, err)
	}
}

func TestFingerprintCheck(t *testing.T) {
	g := graph.BarabasiAlbert(100, 3, 4)
	fp := fingerprintOf(g)
	if err := fp.check(fp); err != nil {
		t.Fatalf("self check failed: %v", err)
	}
	other := fingerprintOf(g.Reorder())
	if err := fp.check(other); err == nil {
		t.Error("reordered replica accepted for plain master graph")
	}
	// Unnamed sides are compatible with named ones (a generated master
	// graph vs a snapshot that carries a label).
	unnamed := fp
	unnamed.Name = ""
	named := fp
	named.Name = "ds"
	if err := unnamed.check(named); err != nil {
		t.Errorf("unnamed master rejected named worker: %v", err)
	}
	other2 := named
	other2.Name = "ds2"
	if err := named.check(other2); err == nil {
		t.Error("conflicting dataset names accepted")
	}
}
