package cluster

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/taskpool"
)

// This file defines the boundary between the cluster's scheduling policy and
// its message plumbing. Run (cluster.go) owns policy: task packing, dealing
// order, result aggregation. A Transport owns plumbing: how a dealt queue
// reaches a rank, how steal request/response traffic moves between ranks,
// and how partial counts reduce back to the master. Run never touches a
// channel or a socket; swapping the in-process channel fabric for TCP worker
// processes changes no scheduling behavior.

// Job bundles everything a transport must convey to its ranks to execute one
// counting job. The channel transport hands the pointers to in-process
// goroutines; the TCP transport serializes the configuration (pattern,
// schedule, restrictions) plus a fingerprint of the graph, and each worker
// process rebuilds the Job against its own snapshot-loaded replica.
type Job struct {
	// Cfg is the compiled configuration every rank executes.
	Cfg *core.Config
	// Graph is the shared data graph (every rank holds a full replica, as
	// in the paper's MPI implementation).
	Graph *graph.Graph
	// UseIEP tells ranks to run Inclusion-Exclusion counters. The final
	// ScaleIEP correction is applied by the master, not the ranks.
	UseIEP bool
	// EdgeParallel is the resolved task shape: true when task ranges index
	// CSR adjacency slots (Counter.CountEdgeRange), false when they index
	// outermost-loop vertices (Counter.CountRange).
	EdgeParallel bool
	// WorkersPerRank is the number of worker goroutines each rank runs.
	WorkersPerRank int
	// StealThreshold is the queue length below which a rank requests work
	// from its peers.
	StealThreshold int
	// NodeDelay artificially slows rank DelayedRank per task
	// (failure/straggler injection for tests); 0 disables.
	NodeDelay   time.Duration
	DelayedRank int
	// FailAfterTasks, when > 0, makes rank FailRank die after completing
	// that many tasks (fault injection for tests and benchmarks, shipped on
	// the wire like NodeDelay). Death happens at a task boundary: a TCP
	// worker closes its connection abruptly, an in-process rank marks itself
	// dead so its queue is fully stolen by survivors. Multi-rank jobs only —
	// a single rank has no survivor to recover on.
	FailRank       int
	FailAfterTasks int
}

// RankResult is one rank's partial outcome: the raw (pre-IEP-scaling) tally
// of its workers plus its load-balance statistics.
type RankResult struct {
	Raw   int64
	Stats NodeStats
}

// Transport moves cluster messages between the master and its ranks.
// Implementations decide what a rank is — an in-process goroutine group
// (chanTransport) or a TCP-connected worker process (tcpTransport).
type Transport interface {
	// Ranks resolves the rank count for a job when the caller requests n.
	// The channel transport grants any n ≥ 1; the TCP transport always
	// answers with its connected worker set.
	Ranks(requested int) int
	// TotalWorkers returns the cluster-wide worker count for a job on
	// nranks ranks with workersPerRank requested per rank. Remote
	// transports account for per-worker overrides (ServeOptions.Workers)
	// advertised at join time, so the master's task granularity matches
	// the workers that actually run.
	TotalWorkers(nranks, workersPerRank int) int
	// Connect opens a session for one job across nranks ranks. For remote
	// transports this is where workers join the job (and where a
	// config/graph mismatch surfaces as an error).
	Connect(job *Job, nranks int) (Session, error)
	// Close releases the transport. Remote workers observe it as a leave:
	// their connections close and they return to accepting new masters.
	Close() error
}

// Session is one job in flight on a transport.
type Session interface {
	// Deal appends tasks to a rank's initial queue. Only valid before
	// Start.
	Deal(rank int, tasks []taskpool.Range) error
	// Start launches execution on every rank. From here until Reduce
	// returns, steal request/response traffic flows inside the transport
	// without master involvement from the caller's point of view.
	Start() error
	// Reduce blocks until every rank drains its work and returns the
	// per-rank partial results, indexed by rank. A lost rank (e.g. a TCP
	// worker that disconnects mid-job) is recovered from: its acknowledged
	// counts are banked and its unacknowledged tasks re-dealt to survivors,
	// so Reduce errors only when no live rank remains to finish the job.
	Reduce() ([]RankResult, error)
	// Close releases the session. It must be safe to call after Reduce
	// and after errors.
	Close() error
}

// stealVerdict is the outcome of a rank's attempt to obtain more work once
// its local queue runs dry.
type stealVerdict int

const (
	// stealGot: tasks arrived (or the queue refilled concurrently); pop
	// again.
	stealGot stealVerdict = iota
	// stealRetry: nothing available right now, but tasks are still in
	// flight elsewhere and might become stealable; back off and retry.
	stealRetry
	// stealDone: the job has globally drained; the worker can exit.
	stealDone
)

// rank is the queue state one rank maintains, shared by every transport:
// the channel transport keeps N of these in the master process, the TCP
// transport keeps one inside each worker process. Tasks are popped from the
// front by the rank's own workers and stolen from the back by peers.
type rank struct {
	id    int
	mu    sync.Mutex
	queue []taskpool.Range // guarded by mu
	head  int              // guarded by mu

	// dead marks a rank that stopped executing (fault injection or loss):
	// peers may then steal its entire queue instead of half, so no task is
	// stranded behind takeHalf's leave-one-behind rule.
	dead atomic.Bool

	busyNS atomic.Int64
	stats  NodeStats
}

func (n *rank) pop() (taskpool.Range, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.head >= len(n.queue) {
		return taskpool.Range{}, false
	}
	t := n.queue[n.head]
	n.head++
	return t, true
}

func (n *rank) size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue) - n.head
}

// takeHalf removes up to half of the remaining tasks from the back of the
// queue (the victim side of a steal).
func (n *rank) takeHalf() []taskpool.Range {
	n.mu.Lock()
	defer n.mu.Unlock()
	remaining := len(n.queue) - n.head
	if remaining <= 1 {
		return nil
	}
	take := remaining / 2
	cut := len(n.queue) - take
	out := append([]taskpool.Range(nil), n.queue[cut:]...)
	n.queue = n.queue[:cut]
	return out
}

// take is the victim side of a steal: half the remainder from a live rank,
// everything from a dead one (a dead rank's workers will never pop again, so
// leaving tasks behind would strand them).
func (n *rank) take() []taskpool.Range {
	if !n.dead.Load() {
		return n.takeHalf()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	out := append([]taskpool.Range(nil), n.queue[n.head:]...)
	n.queue = n.queue[:n.head]
	return out
}

func (n *rank) push(tasks []taskpool.Range) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.queue = append(n.queue, tasks...)
}

// drain runs the rank's worker loop: nWorkers goroutines pop tasks, execute
// them with per-worker core.Counters, and call steal when the queue runs
// dry, until steal reports the job has globally drained. It returns the sum
// of the workers' raw tallies. taskDone, if non-nil, is invoked after every
// fully completed task with the task's range and the raw count delta its
// execution earned (the channel fabric maintains its global pending count
// with it; the TCP worker acknowledges the task to the master). Two flags
// abort the rank cooperatively:
//
//   - stop makes the per-worker Counters abandon their current range at the
//     next outer-loop boundary; a task interrupted this way is never
//     reported to taskDone, because its delta is partial. The TCP worker
//     sets it when its master disconnects, so a cancelled or crashed client
//     frees the rank's cores instead of leaving them finishing dead work.
//   - halt stops the rank at the next task boundary: in-flight tasks run to
//     completion (and are reported), queued tasks stay queued. Fault
//     injection uses it so a "crashed" rank leaves only exactly-once
//     accountable state behind.
//
// This loop is the policy of §IV-E's worker threads and is shared verbatim
// by every transport.
func (n *rank) drain(job *Job, nWorkers int, stop, halt *atomic.Bool, steal func() stealVerdict, taskDone func(t taskpool.Range, delta int64)) int64 {
	raw := make([]int64, nWorkers)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			counter := core.NewCounterStop(job.Cfg, job.Graph, job.UseIEP, stop)
			defer func() { raw[slot] = counter.Raw() }()
			var prev int64
			for {
				if halt != nil && halt.Load() {
					return
				}
				t, ok := n.pop()
				if !ok {
					switch steal() {
					case stealGot:
						continue
					case stealRetry:
						// Someone still runs tasks that might be
						// re-stolen; yield briefly.
						time.Sleep(50 * time.Microsecond)
						continue
					default:
						return
					}
				}
				if job.NodeDelay > 0 && n.id == job.DelayedRank {
					// Injected slowness is deliberately not counted as
					// busy time: BusyTime measures how the useful work
					// spread across ranks, and a straggler's handicap
					// shows up as fewer tasks executed.
					time.Sleep(job.NodeDelay)
				}
				t0 := time.Now()
				if job.EdgeParallel {
					counter.CountEdgeRange(t.Start, t.End)
				} else {
					counter.CountRange(t.Start, t.End)
				}
				cur := counter.Raw()
				delta := cur - prev
				prev = cur
				if stop != nil && stop.Load() {
					// The counter may have abandoned the range mid-way;
					// the partial delta must not be reported as a
					// completed task.
					return
				}
				n.busyNS.Add(int64(time.Since(t0)))
				atomic.AddInt64(&n.stats.TasksRun, 1)
				if taskDone != nil {
					taskDone(t, delta)
				}
				// Yield between tasks so ranks interleave fairly even
				// when the host has fewer cores than the cluster has
				// workers; without this, one goroutine can drain every
				// queue before its peers are scheduled — a shared-CPU
				// artifact, not a property of §IV-E.
				runtime.Gosched()
			}
		}(w)
	}
	wg.Wait()
	var sum int64
	for _, c := range raw {
		sum += c
	}
	return sum
}

// result snapshots the rank's partial outcome after drain returns.
func (n *rank) result(raw int64) RankResult {
	stats := NodeStats{
		TasksRun:       atomic.LoadInt64(&n.stats.TasksRun),
		StolenFrom:     atomic.LoadInt64(&n.stats.StolenFrom),
		StealsReceived: atomic.LoadInt64(&n.stats.StealsReceived),
		BusyTime:       time.Duration(n.busyNS.Load()),
	}
	return RankResult{Raw: raw, Stats: stats}
}
