package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"graphpi/internal/taskpool"
)

// This file is the master side of the TCP fabric. Each connected worker
// process is one rank; the master deals initial queues, then acts as the
// steal relay: a thief's request is forwarded as a steal-ask to the peer the
// master believes richest, and the victim's surrendered half is forwarded
// back. Relaying keeps the topology a star (workers only know the master),
// at the cost of one extra hop per steal — the trade the paper's
// master/communication-thread design also makes for task distribution.
//
// Termination argument: the relay tracks remaining[r], an upper bound on
// rank r's queued tasks. It is exact at deal time and refreshed by every
// steal frame (requests and gives carry the sender's true queue length);
// between refreshes ranks only *run* tasks, so the bound never undershoots.
// Tasks move between ranks only through the relay, which updates both sides.
// Hence when every remaining[r] is zero no queued task exists anywhere and
// the relay can safely answer noWork, which is the only way a multi-rank
// worker stops — and every rank reaches that point because each empty-queue
// rank keeps re-requesting (retry backoff) and each request refreshes its
// reported length downward.

// DialOptions tunes DialTCP.
type DialOptions struct {
	// Timeout bounds each worker dial + handshake (0 → 10s).
	Timeout time.Duration
}

// tcpTransport is a Transport whose ranks are TCP-connected worker
// processes. Create one with DialTCP; it can run many sequential jobs until
// closed or until a job fails (a lost rank poisons the connection state, so
// the transport refuses further jobs).
type tcpTransport struct {
	links  []*workerLink
	broken atomic.Bool
	closed atomic.Bool
}

// workerLink is one master↔worker connection.
type workerLink struct {
	addr string
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex

	// advertised worker-count override and graph fingerprint from the
	// welcome frame.
	advWorkers int
	fp         graphFingerprint
}

func (l *workerLink) write(typ uint8, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	return writeFrame(l.conn, typ, payload)
}

// DialTCP connects to worker processes (cluster.Serve listeners) at addrs
// and returns a Transport running jobs across them: one rank per worker.
// Every worker must hold a replica of the data graph the jobs will use;
// Connect verifies this per job via the graph fingerprint.
func DialTCP(addrs []string, opt DialOptions) (Transport, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: DialTCP needs at least one worker address")
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = handshakeTimeout
	}
	t := &tcpTransport{}
	for _, addr := range addrs {
		link, err := dialWorker(addr, timeout)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("cluster: worker %s: %w", addr, err)
		}
		t.links = append(t.links, link)
	}
	// Workers must hold replicas of the same dataset; catching a divergent
	// worker set here beats a per-job rejection later.
	for _, l := range t.links[1:] {
		if err := t.links[0].fp.check(l.fp); err != nil {
			t.Close()
			return nil, fmt.Errorf("cluster: workers %s and %s hold different replicas: %w",
				t.links[0].addr, l.addr, err)
		}
	}
	return t, nil
}

func dialWorker(addr string, timeout time.Duration) (*workerLink, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	l := &workerLink{addr: addr, conn: conn, br: bufio.NewReader(conn)}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := l.write(msgHello, encodeHello()); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, err := readFrame(l.br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("handshake: %w", err)
	}
	switch typ {
	case msgWelcome:
	case msgError:
		conn.Close()
		return nil, fmt.Errorf("worker rejected handshake: %s", payload)
	default:
		conn.Close()
		return nil, fmt.Errorf("handshake: unexpected frame type %d", typ)
	}
	l.advWorkers, l.fp, err = decodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, err
	}
	return l, nil
}

// Ranks always answers with the connected worker set — the caller's
// requested node count does not conjure processes.
func (t *tcpTransport) Ranks(int) int { return len(t.links) }

// TotalWorkers sums each worker's advertised override, falling back to the
// requested per-rank count for workers that defer to the master.
func (t *tcpTransport) TotalWorkers(_, workersPerRank int) int {
	total := 0
	for _, l := range t.links {
		if l.advWorkers > 0 {
			total += l.advWorkers
		} else {
			total += workersPerRank
		}
	}
	return total
}

// Addrs returns the connected worker addresses, in rank order.
func (t *tcpTransport) Addrs() []string {
	out := make([]string, len(t.links))
	for i, l := range t.links {
		out[i] = l.addr
	}
	return out
}

func (t *tcpTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	var first error
	for _, l := range t.links {
		if err := l.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (t *tcpTransport) Connect(job *Job, nranks int) (Session, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("cluster: transport closed")
	}
	if t.broken.Load() {
		return nil, fmt.Errorf("cluster: transport unusable after a failed job; dial the workers again")
	}
	if nranks != len(t.links) {
		return nil, fmt.Errorf("cluster: job wants %d ranks, transport has %d workers", nranks, len(t.links))
	}
	for i, l := range t.links {
		if err := l.write(msgJob, encodeJob(jobSpecOf(job, i, nranks))); err != nil {
			t.fail()
			return nil, fmt.Errorf("cluster: worker %s: sending job: %w", l.addr, err)
		}
	}
	// Collect per-worker accept/reject synchronously; a reject unwinds the
	// whole job (peers that accepted are waiting for a deal that will
	// never come, so the transport closes).
	for _, l := range t.links {
		typ, payload, err := readFrame(l.br)
		if err != nil {
			t.fail()
			return nil, fmt.Errorf("cluster: worker %s: reading job reply: %w", l.addr, err)
		}
		switch typ {
		case msgJobOK:
		case msgError:
			t.fail()
			return nil, fmt.Errorf("cluster: worker %s rejected job: %s", l.addr, payload)
		default:
			t.fail()
			return nil, fmt.Errorf("cluster: worker %s: unexpected job reply type %d", l.addr, typ)
		}
	}
	return newTCPSession(t, job), nil
}

// fail poisons the transport and closes its connections: frame streams are
// no longer aligned to job boundaries, so no further job can run safely.
func (t *tcpTransport) fail() {
	t.broken.Store(true)
	t.Close()
}

// tcpEvent is one routed worker frame, tagged with its rank.
type tcpEvent struct {
	rank      int
	kind      uint8 // msgStealReq, msgStealGive, msgResult; 0 for errors
	remaining int
	tasks     []taskpool.Range
	res       RankResult
	err       error
}

type tcpSession struct {
	t   *tcpTransport
	job *Job

	// remaining is the relay's upper bound on each rank's queued tasks.
	remaining []int
	events    chan tcpEvent

	started  atomic.Bool
	finished bool
	reduceCh chan struct{}
	results  []RankResult
	failErr  error
}

func newTCPSession(t *tcpTransport, job *Job) *tcpSession {
	n := len(t.links)
	return &tcpSession{
		t:         t,
		job:       job,
		remaining: make([]int, n),
		// Bounded in-flight events per rank: one steal request or reply,
		// one result, one error. 4n never blocks a reader.
		events:   make(chan tcpEvent, 4*n),
		reduceCh: make(chan struct{}),
		results:  make([]RankResult, n),
	}
}

func (s *tcpSession) Deal(rankID int, tasks []taskpool.Range) error {
	if s.started.Load() {
		return fmt.Errorf("cluster: Deal after Start")
	}
	if err := s.t.links[rankID].write(msgTasks, encodeTasks(tasks)); err != nil {
		s.t.fail()
		return fmt.Errorf("cluster: worker %s: dealing tasks: %w", s.t.links[rankID].addr, err)
	}
	s.remaining[rankID] += len(tasks)
	return nil
}

func (s *tcpSession) Start() error {
	if s.started.Swap(true) {
		return fmt.Errorf("cluster: session already started")
	}
	for _, l := range s.t.links {
		if err := l.write(msgStart, nil); err != nil {
			s.t.fail()
			return fmt.Errorf("cluster: worker %s: starting: %w", l.addr, err)
		}
	}
	for i, l := range s.t.links {
		go s.readLoop(i, l)
	}
	go s.coordinate()
	return nil
}

// readLoop routes one worker's frames into the relay. A rank's result is
// always its last job frame (steal-gives can only be solicited while the
// rank is unfinished), so the loop exits on it — leaving the connection
// quiet for the next job.
func (s *tcpSession) readLoop(rankID int, l *workerLink) {
	for {
		typ, payload, err := readFrame(l.br)
		if err != nil {
			s.events <- tcpEvent{rank: rankID, err: fmt.Errorf("worker %s disconnected: %w", l.addr, err)}
			return
		}
		switch typ {
		case msgStealReq:
			rem, err := decodeRemaining(payload)
			if err != nil {
				s.events <- tcpEvent{rank: rankID, err: err}
				return
			}
			s.events <- tcpEvent{rank: rankID, kind: msgStealReq, remaining: rem}
		case msgStealGive:
			rem, tasks, err := decodeStealGive(payload)
			if err != nil {
				s.events <- tcpEvent{rank: rankID, err: err}
				return
			}
			s.events <- tcpEvent{rank: rankID, kind: msgStealGive, remaining: rem, tasks: tasks}
		case msgResult:
			res, err := decodeResult(payload)
			if err != nil {
				s.events <- tcpEvent{rank: rankID, err: err}
				return
			}
			s.events <- tcpEvent{rank: rankID, kind: msgResult, res: res}
			return
		default:
			s.events <- tcpEvent{rank: rankID, err: fmt.Errorf("worker %s: unexpected mid-job frame type %d", l.addr, typ)}
			return
		}
	}
}

// coordinate is the steal relay: it serves thief requests one at a time and
// records results until every rank reports (or one is lost).
func (s *tcpSession) coordinate() {
	defer close(s.reduceCh)
	n := len(s.t.links)
	done := make([]bool, n)
	doneCount := 0
	var queue []tcpEvent // thief requests parked while serving another

	record := func(ev tcpEvent) bool {
		switch {
		case ev.err != nil:
			s.failErr = ev.err
			return false
		case ev.kind == msgResult:
			s.results[ev.rank] = ev.res
			s.remaining[ev.rank] = 0
			if !done[ev.rank] {
				done[ev.rank] = true
				doneCount++
			}
		}
		return true
	}

	// serveThief answers one steal request, asking victims richest-first
	// until one yields tasks or none can.
	serveThief := func(req tcpEvent) bool {
		thief := req.rank
		s.remaining[thief] = req.remaining
		for {
			victim := -1
			best := 1 // takeHalf yields nothing below 2 remaining
			for i := 0; i < n; i++ {
				if i != thief && s.remaining[i] > best {
					best, victim = s.remaining[i], i
				}
			}
			if victim < 0 {
				break
			}
			if err := s.t.links[victim].write(msgStealAsk, nil); err != nil {
				s.failErr = fmt.Errorf("worker %s: steal ask: %w", s.t.links[victim].addr, err)
				return false
			}
			// Await the victim's give; park unrelated events.
			gave := []taskpool.Range(nil)
			for {
				ev := <-s.events
				if ev.kind == msgStealReq {
					queue = append(queue, ev)
					continue
				}
				if !record(ev) {
					return false
				}
				if ev.kind == msgStealGive && ev.rank == victim {
					s.remaining[victim] = ev.remaining
					gave = ev.tasks
					break
				}
			}
			if len(gave) > 0 {
				if err := s.t.links[thief].write(msgTasks, encodeTasks(gave)); err != nil {
					s.failErr = fmt.Errorf("worker %s: steal grant: %w", s.t.links[thief].addr, err)
					return false
				}
				s.remaining[thief] += len(gave)
				return true
			}
		}
		// Nothing to give. If every rank's bound is zero the job has
		// globally drained; otherwise tell the thief to retry.
		reply := msgRetry
		total := 0
		for _, r := range s.remaining {
			total += r
		}
		if total == 0 {
			reply = msgNoWork
		}
		if err := s.t.links[thief].write(reply, nil); err != nil {
			s.failErr = fmt.Errorf("worker %s: steal reply: %w", s.t.links[thief].addr, err)
			return false
		}
		return true
	}

	for doneCount < n && s.failErr == nil {
		var ev tcpEvent
		if len(queue) > 0 {
			ev, queue = queue[0], queue[1:]
		} else {
			ev = <-s.events
		}
		if !record(ev) {
			break
		}
		if ev.kind == msgStealReq {
			if !serveThief(ev) {
				break
			}
		}
	}

	if s.failErr != nil {
		// A lost rank leaves peers blocked on steal replies and frame
		// streams misaligned; poison the transport so everything
		// unblocks and no further job reuses these connections.
		s.t.fail()
		return
	}
	for _, l := range s.t.links {
		if err := l.write(msgJobDone, nil); err != nil {
			s.failErr = fmt.Errorf("worker %s: job epilogue: %w", l.addr, err)
			s.t.fail()
			return
		}
	}
}

func (s *tcpSession) Reduce() ([]RankResult, error) {
	if !s.started.Load() {
		return nil, fmt.Errorf("cluster: Reduce before Start")
	}
	<-s.reduceCh
	s.finished = true
	if s.failErr != nil {
		return nil, fmt.Errorf("cluster: %w", s.failErr)
	}
	return s.results, nil
}

// Close releases the session. A session abandoned mid-job (Started but not
// Reduced) poisons the transport, since its connections carry unconsumed
// frames.
func (s *tcpSession) Close() error {
	if s.started.Load() && !s.finished {
		s.t.fail()
	}
	return nil
}
