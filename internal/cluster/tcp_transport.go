package cluster

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"graphpi/internal/graph"
	"graphpi/internal/taskpool"
	"graphpi/internal/telemetry"
)

// This file is the master side of the TCP fabric. Each connected worker
// process is one rank; the master deals initial queues, then acts as the
// steal relay: a thief's request is forwarded as a steal-ask to the peer the
// master believes richest, and the victim's surrendered half is forwarded
// back. Relaying keeps the topology a star (workers only know the master),
// at the cost of one extra hop per steal — the trade the paper's
// master/communication-thread design also makes for task distribution.
//
// Fault tolerance: the relay tracks outstanding[r], the exact set of tasks
// dealt to rank r and not yet acknowledged. Workers acknowledge every
// completed task with its raw count delta; the master banks the deltas.
// When a rank is lost mid-job (its connection errors), its banked counts
// stand in for its result and its outstanding tasks are re-dealt to the
// survivors — tasks are independent outer-loop ranges, so re-execution
// re-earns exactly the unacknowledged counts and totals stay bit-identical.
// A lost link is not fatal to the transport either: the next job's Ranks()
// sweep redials it with capped exponential backoff, so a restarted worker
// rejoins the pool without operator action.
//
// Termination argument: outstanding[r] is exact — deals and re-deals add,
// steals move tasks between ranks through the relay (which updates both
// sides), acknowledgements remove. Hence the total outstanding count is zero
// exactly when every dealt task has been completed and acknowledged
// somewhere, which is when the relay answers noWork — the only way a
// multi-rank worker stops. Every empty rank keeps re-requesting (retry
// backoff), so every rank reaches that answer.

// DialOptions tunes DialTCP.
type DialOptions struct {
	// Timeout bounds each worker dial + handshake (0 → 10s).
	Timeout time.Duration
	// RedialBackoff is the initial delay between redial attempts for a lost
	// worker after its first (immediate) retry fails (0 → 250ms). The delay
	// doubles per consecutive failure up to RedialBackoffMax (0 → 15s).
	RedialBackoff    time.Duration
	RedialBackoffMax time.Duration
}

// PoolStats is a snapshot of a TCP transport's pool health.
type PoolStats struct {
	// Workers is the configured pool size (dialed addresses).
	Workers int
	// Live is the number of currently connected workers.
	Live int
	// Rejoins counts successful redials of lost workers.
	Rejoins int64
	// Redealt counts tasks reassigned from lost ranks to survivors.
	Redealt int64
	// Losses counts rank-loss events (disconnects and write failures).
	Losses int64
	// LastJob isolates the most recently completed job's recovery events.
	// The counters above are lifetime totals that never reset between jobs;
	// these deltas answer "did THIS job lose or redeal anything?" without
	// differencing snapshots across calls.
	LastJob PoolJobStats
	// TaskGap observes per-rank inter-acknowledgement gaps — a master-side
	// proxy for task execution time that needs no wire changes (acks carry
	// no timing). Steal observes relay latency from a thief's request
	// arriving to the stolen tasks being forwarded; Redeal observes the
	// duration of full re-deal drains after a rank loss.
	TaskGap telemetry.HistogramSnapshot
	Steal   telemetry.HistogramSnapshot
	Redeal  telemetry.HistogramSnapshot
}

// PoolJobStats are one job's recovery-counter deltas.
type PoolJobStats struct {
	Rejoins int64
	Redealt int64
	Losses  int64
}

// PoolStatsProvider is implemented by transports that track pool health
// (DialTCP's transport does; the in-process channel transport does not).
type PoolStatsProvider interface {
	PoolStats() PoolStats
}

// tcpTransport is a Transport whose ranks are TCP-connected worker
// processes. Create one with DialTCP; it runs sequential jobs until closed.
// A lost worker only shrinks the pool: its link is redialed on later jobs
// and the worker rejoins when it comes back.
type tcpTransport struct {
	opt    DialOptions
	closed atomic.Bool

	mu sync.Mutex // guards each link's lifecycle state (lost/attempts/conn swaps)
	// links is append-only during DialTCP (pre-publication) and immutable
	// after; concurrent readers need no lock for the slice itself.
	links []*workerLink

	rejoins atomic.Int64
	redealt atomic.Int64
	losses  atomic.Int64

	// Latency histograms (lifetime, like the counters above). Histogram is
	// internally synchronized, so coordinators observe without holding mu.
	hTaskGap telemetry.Histogram
	hSteal   telemetry.Histogram
	hRedeal  telemetry.Histogram

	// lastJob holds the most recent job's counter deltas, guarded by mu.
	lastJob PoolJobStats
}

// workerLink is one master↔worker connection slot. When lost, the slot
// keeps its address and backoff state so the transport can redial it.
type workerLink struct {
	addr string
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex

	// advertised worker-count override, graph fingerprint and has-graph
	// flag from the welcome frame (hasGraph also flips when a snapshot push
	// completes).
	advWorkers int
	fp         graphFingerprint
	hasGraph   bool

	// Redial state; lockcheck enforces the guard annotations below.
	lost     bool      // guarded by the transport's mu
	attempts int       // guarded by the transport's mu
	nextTry  time.Time // guarded by the transport's mu
}

func (l *workerLink) write(typ uint8, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	return writeFrame(l.conn, typ, payload)
}

// DialTCP connects to worker processes (cluster.Serve listeners) at addrs
// and returns a Transport running jobs across them: one rank per worker.
// Workers may join cold (started without a graph snapshot); the master
// pushes the fingerprint-verified view to them before their first job.
func DialTCP(addrs []string, opt DialOptions) (Transport, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: DialTCP needs at least one worker address")
	}
	t := &tcpTransport{opt: opt}
	for _, addr := range addrs {
		link, err := dialWorker(addr, t.timeout())
		if err != nil {
			_ = t.Close() // dial error takes precedence over teardown
			return nil, fmt.Errorf("cluster: worker %s: %w", addr, err)
		}
		t.links = append(t.links, link)
	}
	// Workers holding replicas must hold the same dataset; catching a
	// divergent worker set here beats a per-job rejection later. Cold
	// workers are exempt — they will receive the master's view.
	var ref *workerLink
	for _, l := range t.links {
		if !l.hasGraph {
			continue
		}
		if ref == nil {
			ref = l
			continue
		}
		if err := ref.fp.check(l.fp); err != nil {
			_ = t.Close() // mismatch error takes precedence over teardown
			return nil, fmt.Errorf("cluster: workers %s and %s hold different replicas: %w",
				ref.addr, l.addr, err)
		}
	}
	return t, nil
}

func (t *tcpTransport) timeout() time.Duration {
	if t.opt.Timeout > 0 {
		return t.opt.Timeout
	}
	return handshakeTimeout
}

// backoff returns the wait before redial attempt n (1-based) of a lost
// worker: the first retry is immediate, then delays double up to the cap.
func (t *tcpTransport) backoff(attempts int) time.Duration {
	base := t.opt.RedialBackoff
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	max := t.opt.RedialBackoffMax
	if max <= 0 {
		max = 15 * time.Second
	}
	d := base
	for i := 1; i < attempts && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// markLost retires a link's connection: the slot stays in the pool and is
// redialed (immediately on the next job, then with capped exponential
// backoff) until the worker comes back.
func (t *tcpTransport) markLost(l *workerLink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l.lost {
		return
	}
	l.lost = true
	l.attempts = 0
	l.nextTry = time.Time{} // first retry is immediate
	t.losses.Add(1)
	_ = l.conn.Close() // link is being retired; the redial path owns recovery
}

// Ranks answers with the live worker count — the caller's requested node
// count does not conjure processes. It is also the transport's supervision
// point: every job starts here, so lost links due for a retry are redialed
// before the rank set is reported.
func (t *tcpTransport) Ranks(int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return 0
	}
	now := time.Now()
	live := 0
	for _, l := range t.links {
		if l.lost && !now.Before(l.nextTry) {
			if nl, err := dialWorker(l.addr, t.timeout()); err == nil {
				l.conn, l.br = nl.conn, nl.br
				l.advWorkers, l.fp, l.hasGraph = nl.advWorkers, nl.fp, nl.hasGraph
				l.lost, l.attempts = false, 0
				t.rejoins.Add(1)
			} else {
				l.attempts++
				l.nextTry = now.Add(t.backoff(l.attempts))
			}
		}
		if !l.lost {
			live++
		}
	}
	return live
}

// TotalWorkers sums each live worker's advertised override, falling back to
// the requested per-rank count for workers that defer to the master.
func (t *tcpTransport) TotalWorkers(_, workersPerRank int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for _, l := range t.links {
		if l.lost {
			continue
		}
		if l.advWorkers > 0 {
			total += l.advWorkers
		} else {
			total += workersPerRank
		}
	}
	return total
}

// Addrs returns the configured worker addresses, in pool order.
func (t *tcpTransport) Addrs() []string {
	out := make([]string, len(t.links))
	for i, l := range t.links {
		out[i] = l.addr
	}
	return out
}

// PoolStats reports the transport's pool health counters.
func (t *tcpTransport) PoolStats() PoolStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := PoolStats{
		Workers: len(t.links),
		Rejoins: t.rejoins.Load(),
		Redealt: t.redealt.Load(),
		Losses:  t.losses.Load(),
		LastJob: t.lastJob,
		TaskGap: t.hTaskGap.Snapshot(),
		Steal:   t.hSteal.Snapshot(),
		Redeal:  t.hRedeal.Snapshot(),
	}
	for _, l := range t.links {
		if !l.lost {
			st.Live++
		}
	}
	return st
}

func (t *tcpTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for _, l := range t.links {
		if l.lost {
			continue
		}
		if err := l.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// resetLive retires every live link. Used when a job setup fails partway:
// some workers already received job frames, so the streams are no longer
// aligned to job boundaries; the next job redials everyone cleanly.
func (t *tcpTransport) resetLive() {
	t.mu.Lock()
	links := append([]*workerLink(nil), t.links...)
	t.mu.Unlock()
	for _, l := range links {
		t.markLost(l)
	}
}

func dialWorker(addr string, timeout time.Duration) (*workerLink, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	l := &workerLink{addr: addr, conn: conn, br: bufio.NewReader(conn)}
	// Every failure below abandons the half-open connection; the handshake
	// error takes precedence over the Close result.
	fail := func(err error) (*workerLink, error) {
		_ = conn.Close()
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return fail(err)
	}
	if err := l.write(msgHello, encodeHello()); err != nil {
		return fail(err)
	}
	typ, payload, err := readFrame(l.br)
	if err != nil {
		return fail(fmt.Errorf("handshake: %w", err))
	}
	switch typ {
	case msgWelcome:
	case msgError:
		return fail(fmt.Errorf("worker rejected handshake: %s", payload))
	default:
		return fail(fmt.Errorf("handshake: unexpected frame type %d", typ))
	}
	l.advWorkers, l.fp, l.hasGraph, err = decodeWelcome(payload)
	if err != nil {
		return fail(err)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return fail(err)
	}
	return l, nil
}

// snapChunk is the snapshot streaming chunk size (well under maxFrame).
const snapChunk = 1 << 20

// pushSnapshot streams the job graph's binary snapshot to a cold link and
// verifies the fingerprint the worker reports after loading it. The fatal
// return distinguishes protocol-level failures (rejection, wrong
// fingerprint — misconfiguration that retrying will not fix) from IO
// failures (the worker crashed; recoverable by retiring just that link).
func (t *tcpTransport) pushSnapshot(l *workerLink, snap []byte, g *graph.Graph) (err error, fatal bool) {
	if err := l.write(msgSnapBegin, encodeSnapBegin(int64(len(snap)))); err != nil {
		return err, false
	}
	for off := 0; off < len(snap); off += snapChunk {
		end := off + snapChunk
		if end > len(snap) {
			end = len(snap)
		}
		if err := l.write(msgSnapData, snap[off:end]); err != nil {
			return err, false
		}
	}
	if err := l.write(msgSnapEnd, nil); err != nil {
		return err, false
	}
	typ, payload, err := readFrame(l.br)
	if err != nil {
		return fmt.Errorf("reading snapshot reply: %w", err), false
	}
	switch typ {
	case msgSnapOK:
	case msgError:
		return fmt.Errorf("worker rejected snapshot: %s", payload), true
	default:
		return fmt.Errorf("unexpected snapshot reply type %d", typ), true
	}
	fp, err := decodeSnapOK(payload)
	if err != nil {
		return err, true
	}
	if err := fingerprintOf(g).check(fp); err != nil {
		return fmt.Errorf("pushed snapshot verifies wrong: %w", err), true
	}
	l.fp, l.hasGraph = fp, true
	return nil, false
}

func (t *tcpTransport) Connect(job *Job, nranks int) (Session, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("cluster: transport closed")
	}
	t.mu.Lock()
	var live []*workerLink
	for _, l := range t.links {
		if !l.lost {
			live = append(live, l)
		}
	}
	t.mu.Unlock()
	if len(live) == 0 {
		return nil, fmt.Errorf("cluster: no live workers (pool of %d, all lost)", len(t.links))
	}
	if nranks != len(live) {
		return nil, fmt.Errorf("cluster: job wants %d ranks, %d workers are live", nranks, len(live))
	}
	// Job setup tolerates crashes the same way the job itself does: an IO
	// failure on any one link (worker died between jobs, or dies while setup
	// is in flight) retires that link and the job proceeds on the survivors —
	// the session starts with the rank marked lost-early and its share is
	// re-dealt. Only protocol-level rejections (replica mismatch, malformed
	// replies) unwind the whole job: those mean misconfiguration, and peers
	// that already accepted are waiting for a deal that will never come, so
	// every live link is retired and the next job redials cleanly.
	setupLost := make([]bool, len(live))
	// Cold workers first: push the snapshot so a worker that joined without
	// a local replica can serve this graph's jobs.
	var snap []byte
	for i, l := range live {
		if l.hasGraph {
			continue
		}
		if snap == nil {
			var buf bytes.Buffer
			if err := graph.WriteBinary(&buf, job.Graph); err != nil {
				return nil, fmt.Errorf("cluster: serializing snapshot for cold workers: %w", err)
			}
			snap = buf.Bytes()
		}
		if err, fatal := t.pushSnapshot(l, snap, job.Graph); err != nil {
			t.markLost(l)
			if fatal {
				return nil, fmt.Errorf("cluster: worker %s: snapshot push: %w", l.addr, err)
			}
			setupLost[i] = true
		}
	}
	for i, l := range live {
		if setupLost[i] {
			continue
		}
		if err := l.write(msgJob, encodeJob(jobSpecOf(job, i, nranks))); err != nil {
			t.markLost(l)
			setupLost[i] = true
		}
	}
	for i, l := range live {
		if setupLost[i] {
			continue
		}
		typ, payload, err := readFrame(l.br)
		if err != nil {
			t.markLost(l)
			setupLost[i] = true
			continue
		}
		switch typ {
		case msgJobOK:
		case msgError:
			t.resetLive()
			return nil, fmt.Errorf("cluster: worker %s rejected job: %s", l.addr, payload)
		default:
			t.resetLive()
			return nil, fmt.Errorf("cluster: worker %s: unexpected job reply type %d", l.addr, typ)
		}
	}
	accepted := 0
	for _, lost := range setupLost {
		if !lost {
			accepted++
		}
	}
	if accepted == 0 {
		return nil, fmt.Errorf("cluster: every worker was lost during job setup")
	}
	s := newTCPSession(t, job, live)
	copy(s.lostEarly, setupLost)
	return s, nil
}

// tcpEvent is one routed worker frame, tagged with its session rank. at is
// the frame's arrival time at the master (zero for frames that carry no
// latency signal), stamped in readLoop so relay queueing does not skew the
// histograms' view of when the worker actually answered.
type tcpEvent struct {
	rank  int
	kind  uint8 // msgAck, msgStealReq, msgStealGive, msgResult; 0 for errors
	task  taskpool.Range
	delta int64
	tasks []taskpool.Range
	res   RankResult
	err   error
	at    time.Time
}

type tcpSession struct {
	t     *tcpTransport
	job   *Job
	links []*workerLink // live links at Connect time; session rank = index

	// outstanding[r] is the exact set of tasks dealt to rank r and not yet
	// acknowledged. Owned by the caller until Start, by coordinate after.
	outstanding []map[taskpool.Range]struct{}
	// orphans collects tasks whose rank died before coordinate took over
	// (Deal/Start write failures); coordinate re-deals them first.
	orphans []taskpool.Range
	// lostEarly marks ranks retired before coordinate took over.
	lostEarly []bool

	events   chan tcpEvent
	started  atomic.Bool
	finished bool
	reduceCh chan struct{}
	results  []RankResult
	failErr  error
}

func newTCPSession(t *tcpTransport, job *Job, links []*workerLink) *tcpSession {
	n := len(links)
	s := &tcpSession{
		t:           t,
		job:         job,
		links:       links,
		outstanding: make([]map[taskpool.Range]struct{}, n),
		lostEarly:   make([]bool, n),
		// Acks stream continuously; a roomy buffer keeps readers from
		// stalling while the relay forwards steals. Readers may block on a
		// full channel — coordinate always drains it.
		events:   make(chan tcpEvent, 16*n),
		reduceCh: make(chan struct{}),
		results:  make([]RankResult, n),
	}
	for i := range s.outstanding {
		s.outstanding[i] = make(map[taskpool.Range]struct{})
	}
	return s
}

func (s *tcpSession) Deal(rankID int, tasks []taskpool.Range) error {
	if s.started.Load() {
		return fmt.Errorf("cluster: Deal after Start")
	}
	if s.lostEarly[rankID] {
		s.orphans = append(s.orphans, tasks...)
		return nil
	}
	if err := s.links[rankID].write(msgTasks, encodeTasks(tasks)); err != nil {
		// Recoverable: retire the rank and let coordinate re-deal.
		s.t.markLost(s.links[rankID])
		s.lostEarly[rankID] = true
		s.orphans = append(s.orphans, tasks...)
		return nil
	}
	for _, t := range tasks {
		s.outstanding[rankID][t] = struct{}{}
	}
	return nil
}

func (s *tcpSession) Start() error {
	if s.started.Swap(true) {
		return fmt.Errorf("cluster: session already started")
	}
	startedRanks := 0
	for i, l := range s.links {
		if s.lostEarly[i] {
			continue
		}
		if err := l.write(msgStart, nil); err != nil {
			s.t.markLost(l)
			s.lostEarly[i] = true
			for t := range s.outstanding[i] {
				s.orphans = append(s.orphans, t)
			}
			s.outstanding[i] = make(map[taskpool.Range]struct{})
			continue
		}
		startedRanks++
	}
	if startedRanks == 0 {
		return fmt.Errorf("cluster: every worker was lost before the job could start")
	}
	for i, l := range s.links {
		if !s.lostEarly[i] {
			go s.readLoop(i, l)
		}
	}
	go s.coordinate()
	return nil
}

// readLoop routes one worker's frames into the relay. A rank's result is
// always its last job frame: results are only sent after the relay answers
// noWork, which it only does once the global outstanding set is empty — at
// which point no further steal-ask can be solicited. The loop therefore
// exits on the result, leaving the connection quiet for the next job.
func (s *tcpSession) readLoop(rankID int, l *workerLink) {
	for {
		typ, payload, err := readFrame(l.br)
		if err != nil {
			s.events <- tcpEvent{rank: rankID, err: fmt.Errorf("worker %s disconnected: %w", l.addr, err)}
			return
		}
		switch typ {
		case msgAck:
			task, delta, err := decodeAck(payload)
			if err != nil {
				s.events <- tcpEvent{rank: rankID, err: err}
				return
			}
			s.events <- tcpEvent{rank: rankID, kind: msgAck, task: task, delta: delta, at: time.Now()}
		case msgStealReq:
			if _, err := decodeRemaining(payload); err != nil {
				s.events <- tcpEvent{rank: rankID, err: err}
				return
			}
			s.events <- tcpEvent{rank: rankID, kind: msgStealReq, at: time.Now()}
		case msgStealGive:
			_, tasks, err := decodeStealGive(payload)
			if err != nil {
				s.events <- tcpEvent{rank: rankID, err: err}
				return
			}
			s.events <- tcpEvent{rank: rankID, kind: msgStealGive, tasks: tasks}
		case msgResult:
			res, err := decodeResult(payload)
			if err != nil {
				s.events <- tcpEvent{rank: rankID, err: err}
				return
			}
			s.events <- tcpEvent{rank: rankID, kind: msgResult, res: res}
			return
		default:
			s.events <- tcpEvent{rank: rankID, err: fmt.Errorf("worker %s: unexpected mid-job frame type %d", l.addr, typ)}
			return
		}
	}
}

// coordinate is the steal relay and loss recovery loop: it banks
// acknowledgements, serves thief requests one at a time, and on a rank loss
// synthesizes the rank's result from its banked counts and re-deals its
// unacknowledged tasks — until every rank has reported or been recovered.
func (s *tcpSession) coordinate() {
	defer close(s.reduceCh)
	defer s.finishJobStats(PoolJobStats{
		Rejoins: s.t.rejoins.Load(),
		Redealt: s.t.redealt.Load(),
		Losses:  s.t.losses.Load(),
	})
	n := len(s.links)
	alive := make([]bool, n)
	done := make([]bool, n)
	banked := make([]int64, n)
	acked := make([]int64, n)
	doneCount := 0
	// lastAck[r] anchors rank r's inter-ack gap observations; the first gap
	// is measured from the job's coordination start.
	jobStart := time.Now()
	lastAck := make([]time.Time, n)
	for i := range lastAck {
		lastAck[i] = jobStart
	}
	var parked []tcpEvent // thief requests parked while serving another
	var redealQueue []taskpool.Range

	outstandingTotal := func() int {
		total := 0
		for _, m := range s.outstanding {
			total += len(m)
		}
		return total
	}

	// loseRank retires a rank: its connection closes (making the loss
	// visible to the transport's redial sweep), its banked counts become its
	// result, and its unacknowledged tasks join the re-deal queue. The
	// caller must drain the queue with redeal() afterwards.
	loseRank := func(r int, cause error) {
		if !alive[r] {
			return
		}
		alive[r] = false
		s.t.markLost(s.links[r])
		if !done[r] {
			done[r] = true
			doneCount++
			// The rank's acknowledged work survives as banked deltas; what
			// it never acknowledged is re-earned by the survivors below.
			s.results[r] = RankResult{Raw: banked[r], Stats: NodeStats{TasksRun: acked[r]}}
		}
		for t := range s.outstanding[r] {
			redealQueue = append(redealQueue, t)
		}
		s.outstanding[r] = make(map[taskpool.Range]struct{})
	}

	// redeal drains the re-deal queue onto the least-loaded live rank (the
	// steal relay rebalances from there). It fails the job only when no
	// live rank remains to take the work.
	redeal := func() {
		if len(redealQueue) == 0 {
			return
		}
		start := time.Now()
		defer s.t.hRedeal.ObserveSince(start)
		for len(redealQueue) > 0 && s.failErr == nil {
			target, best := -1, int(^uint(0)>>1)
			for i := 0; i < n; i++ {
				if alive[i] && !done[i] && len(s.outstanding[i]) < best {
					best, target = len(s.outstanding[i]), i
				}
			}
			if target < 0 {
				s.failErr = fmt.Errorf("every worker was lost with %d tasks unfinished", len(redealQueue))
				return
			}
			batch := redealQueue
			redealQueue = nil
			if err := s.links[target].write(msgTasks, encodeTasks(batch)); err != nil {
				redealQueue = batch
				loseRank(target, err) // appends target's tasks to the queue; retry
				continue
			}
			for _, t := range batch {
				s.outstanding[target][t] = struct{}{}
			}
			s.t.redealt.Add(int64(len(batch)))
		}
	}

	// record folds one non-steal-request event into the relay state.
	record := func(ev tcpEvent) {
		switch {
		case ev.err != nil:
			loseRank(ev.rank, ev.err)
			redeal()
		case ev.kind == msgAck:
			banked[ev.rank] += ev.delta
			acked[ev.rank]++
			delete(s.outstanding[ev.rank], ev.task)
			if !ev.at.IsZero() {
				s.t.hTaskGap.Observe(ev.at.Sub(lastAck[ev.rank]))
				lastAck[ev.rank] = ev.at
			}
		case ev.kind == msgStealGive:
			// A give with no thief waiting: the thief died while the ask
			// was in flight. The victim has surrendered these tasks, so
			// they must be reassigned.
			for _, t := range ev.tasks {
				delete(s.outstanding[ev.rank], t)
			}
			if len(ev.tasks) > 0 {
				redealQueue = append(redealQueue, ev.tasks...)
				redeal()
			}
		case ev.kind == msgResult:
			if !done[ev.rank] {
				s.results[ev.rank] = ev.res
				done[ev.rank] = true
				doneCount++
			}
		}
	}

	// serveThief answers one steal request, asking victims richest-first
	// until one yields tasks or none can.
	serveThief := func(req tcpEvent) {
		thief := req.rank
		if !alive[thief] || done[thief] {
			return // stale request from a retired rank
		}
		tried := make([]bool, n)
		for s.failErr == nil {
			victim, best := -1, 1 // a victim needs ≥ 2 outstanding for takeHalf to yield
			for i := 0; i < n; i++ {
				if i != thief && alive[i] && !done[i] && !tried[i] && len(s.outstanding[i]) > best {
					best, victim = len(s.outstanding[i]), i
				}
			}
			if victim < 0 {
				break
			}
			tried[victim] = true
			if err := s.links[victim].write(msgStealAsk, nil); err != nil {
				loseRank(victim, err)
				redeal()
				continue
			}
			// Await the victim's give; park unrelated thief requests, fold
			// everything else in as it arrives.
			var gave []taskpool.Range
			gotGive := false
			for s.failErr == nil {
				ev := <-s.events
				if ev.kind == msgStealReq {
					parked = append(parked, ev)
					continue
				}
				if ev.kind == msgStealGive && ev.rank == victim {
					gave = ev.tasks
					gotGive = true
					break
				}
				record(ev)
				if !alive[victim] {
					break // its outstanding set was already re-dealt
				}
				if !alive[thief] || done[thief] {
					return // nobody left to answer
				}
			}
			if !gotGive {
				continue
			}
			for _, t := range gave {
				delete(s.outstanding[victim], t)
			}
			if len(gave) == 0 {
				continue
			}
			if err := s.links[thief].write(msgTasks, encodeTasks(gave)); err != nil {
				redealQueue = append(redealQueue, gave...)
				loseRank(thief, err)
				redeal()
				return
			}
			for _, t := range gave {
				s.outstanding[thief][t] = struct{}{}
			}
			if !req.at.IsZero() {
				s.t.hSteal.ObserveSince(req.at)
			}
			return
		}
		if s.failErr != nil || !alive[thief] || done[thief] {
			return
		}
		// Nothing stealable. If the global outstanding set is empty every
		// dealt task has been acknowledged somewhere and the job is done;
		// otherwise the thief backs off and retries.
		reply := msgRetry
		if outstandingTotal() == 0 {
			reply = msgNoWork
		}
		if err := s.links[thief].write(reply, nil); err != nil {
			loseRank(thief, err)
			redeal()
		}
	}

	// Ranks retired before coordinate took over: their queues are already
	// orphaned; account them as lost and re-deal first.
	for i := range s.links {
		alive[i] = !s.lostEarly[i]
		if s.lostEarly[i] && !done[i] {
			done[i] = true
			doneCount++
		}
	}
	redealQueue = append(redealQueue, s.orphans...)
	s.orphans = nil
	redeal()

	for doneCount < n && s.failErr == nil {
		var ev tcpEvent
		if len(parked) > 0 {
			ev, parked = parked[0], parked[1:]
		} else {
			ev = <-s.events
		}
		if ev.kind == msgStealReq {
			serveThief(ev)
		} else {
			record(ev)
		}
	}

	if s.failErr != nil {
		return
	}
	for i, l := range s.links {
		if !alive[i] {
			continue
		}
		if err := l.write(msgJobDone, nil); err != nil {
			// The results are already in; a failed epilogue only means this
			// worker is gone for future jobs.
			s.t.markLost(l)
		}
	}
}

// finishJobStats publishes this job's recovery-counter deltas (current
// lifetime totals minus the baseline captured when coordination started) as
// the transport's LastJob snapshot.
func (s *tcpSession) finishJobStats(base PoolJobStats) {
	t := s.t
	jl := PoolJobStats{
		Rejoins: t.rejoins.Load() - base.Rejoins,
		Redealt: t.redealt.Load() - base.Redealt,
		Losses:  t.losses.Load() - base.Losses,
	}
	t.mu.Lock()
	t.lastJob = jl
	t.mu.Unlock()
}

func (s *tcpSession) Reduce() ([]RankResult, error) {
	if !s.started.Load() {
		return nil, fmt.Errorf("cluster: Reduce before Start")
	}
	<-s.reduceCh
	s.finished = true
	if s.failErr != nil {
		return nil, fmt.Errorf("cluster: %w", s.failErr)
	}
	return s.results, nil
}

// Close releases the session. A session abandoned mid-job (started but not
// reduced) retires its links: the connections carry unconsumed frames and
// cannot be reused, but the workers themselves survive — they observe the
// close, free their cores, and the next job redials them.
func (s *tcpSession) Close() error {
	if s.started.Load() && !s.finished {
		for _, l := range s.links {
			s.t.markLost(l)
		}
	}
	return nil
}
