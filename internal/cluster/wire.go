package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
	"graphpi/internal/taskpool"
)

// The TCP fabric's wire protocol. Every message is a length-prefixed
// little-endian frame:
//
//	length  uint32  payload length, including the type byte
//	type    uint8   message discriminator (msg* constants)
//	payload []byte  message-specific, little-endian fields
//
// Connection lifecycle (master ↔ worker):
//
//	master → hello      magic + protocol version           (join)
//	worker → welcome    version, workers, graph fingerprint, has-graph flag
//	— snapshot fetch (only when the worker joined cold, before its first job) —
//	master → snapBegin  total snapshot length
//	master → snapData   one chunk of the GPiCSR binary snapshot
//	master → snapEnd    end of snapshot
//	worker → snapOK     fingerprint of the freshly loaded replica
//	— per job —
//	master → job        rank, nranks, config spec, options
//	worker → jobOK | error
//	master → tasks      initial deal
//	master → start
//	— while the job runs, relayed stealing and acknowledgement —
//	worker → ack        one task completed: its range + raw count delta
//	worker → stealReq   thief asks the master for work
//	master → stealAsk   master asks the richest victim
//	worker → stealGive  victim surrenders half its queue
//	master → tasks | retry | noWork   reply to the thief
//	— reduce —
//	worker → result     raw tally + per-rank statistics
//	master → jobDone    job epilogue; worker awaits the next job
//
// Closing the connection at any point is a leave: the worker returns to
// accepting masters, the master reports the rank lost and re-deals the
// rank's unacknowledged tasks to the survivors (see tcp_transport.go).

// wireMagic opens every session; a mismatch fails the handshake before any
// job state exists. Bump wireVersion when the frame layout changes.
const (
	wireMagic   = "GPiTP1\n"
	wireVersion = 2

	// maxFrame bounds a frame payload so a corrupt or hostile peer cannot
	// drive an arbitrary allocation (a deal of ~1M tasks fits comfortably).
	maxFrame = 1 << 26
)

// Message types.
const (
	msgHello uint8 = iota + 1
	msgWelcome
	msgJob
	msgJobOK
	msgError
	msgTasks
	msgStart
	msgStealReq
	msgStealAsk
	msgStealGive
	msgRetry
	msgNoWork
	msgResult
	msgJobDone
	msgAck
	msgSnapBegin
	msgSnapData
	msgSnapEnd
	msgSnapOK
)

// writeFrame emits one frame as a single Write. The caller serializes
// concurrent writers.
func writeFrame(w io.Writer, typ uint8, payload []byte) error {
	buf := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(1+len(payload)))
	buf[4] = typ
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, enforcing the size bound.
func readFrame(r io.Reader) (typ uint8, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame length %d out of range", n)
	}
	typ = hdr[4]
	if n > 1 {
		payload = make([]byte, n-1)
		if _, err = io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
	}
	return typ, payload, nil
}

// wbuf is a little-endian payload builder.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) i64(v int64)  { w.b = binary.LittleEndian.AppendUint64(w.b, uint64(v)) }
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) ranges(ts []taskpool.Range) {
	w.u32(uint32(len(ts)))
	for _, t := range ts {
		w.i64(int64(t.Start))
		w.i64(int64(t.End))
	}
}

// rbuf is the matching reader; the first malformed field poisons it and
// every later read reports the sticky error.
type rbuf struct {
	b   []byte
	err error
}

func (r *rbuf) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("cluster: truncated %s field", what)
	}
}

func (r *rbuf) u8(what string) uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail(what)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *rbuf) u32(what string) uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *rbuf) i64(what string) int64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *rbuf) str(what string) string {
	n := r.u32(what)
	if r.err != nil || uint32(len(r.b)) < n {
		r.fail(what)
		return ""
	}
	v := string(r.b[:n])
	r.b = r.b[n:]
	return v
}

func (r *rbuf) ranges(what string) []taskpool.Range {
	n := r.u32(what)
	if r.err != nil || uint64(len(r.b)) < uint64(n)*16 {
		r.fail(what)
		return nil
	}
	out := make([]taskpool.Range, n)
	for i := range out {
		out[i] = taskpool.Range{Start: int(r.i64(what)), End: int(r.i64(what))}
	}
	return out
}

// graphFingerprint identifies a data graph well enough to catch a master and
// a worker operating on different replicas: the structural sizes plus the
// degree-ordered flag (an Optimize()d master view against a plain worker
// snapshot would silently count wrong without it).
type graphFingerprint struct {
	NumVertices int64
	NumAdjSlots int64
	Reordered   bool
	Name        string
}

func fingerprintOf(g *graph.Graph) graphFingerprint {
	return graphFingerprint{
		NumVertices: int64(g.NumVertices()),
		NumAdjSlots: int64(g.NumAdjSlots()),
		Reordered:   g.IsReordered(),
		Name:        g.Name(),
	}
}

// check reports why a worker's replica w cannot serve a master's graph m.
func (m graphFingerprint) check(w graphFingerprint) error {
	if m.NumVertices != w.NumVertices || m.NumAdjSlots != w.NumAdjSlots {
		return fmt.Errorf("graph mismatch: master has %d vertices/%d slots, worker has %d/%d",
			m.NumVertices, m.NumAdjSlots, w.NumVertices, w.NumAdjSlots)
	}
	if m.Reordered != w.Reordered {
		return fmt.Errorf("graph mismatch: master reordered=%v, worker reordered=%v (both sides must load the same Optimize()d snapshot)",
			m.Reordered, w.Reordered)
	}
	if m.Name != "" && w.Name != "" && m.Name != w.Name {
		return fmt.Errorf("graph mismatch: master dataset %q, worker dataset %q", m.Name, w.Name)
	}
	return nil
}

func (f graphFingerprint) encode(w *wbuf) {
	w.i64(f.NumVertices)
	w.i64(f.NumAdjSlots)
	if f.Reordered {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.str(f.Name)
}

func decodeFingerprint(r *rbuf) graphFingerprint {
	return graphFingerprint{
		NumVertices: r.i64("fingerprint vertices"),
		NumAdjSlots: r.i64("fingerprint slots"),
		Reordered:   r.u8("fingerprint reordered") != 0,
		Name:        r.str("fingerprint name"),
	}
}

// FingerprintKey renders the handshake fingerprint of a graph as a stable
// string: |V|, adjacency slot count, the degree-ordered flag and the dataset
// name — exactly the identity the TCP fabric uses to verify that a master
// and a worker hold the same replica. Resident runtimes (the query service)
// reuse it as the graph component of their plan-cache keys, so a cache entry
// can never outlive the graph identity it was planned against.
func FingerprintKey(g *graph.Graph) string {
	fp := fingerprintOf(g)
	return fmt.Sprintf("v%d:s%d:r%t:%s", fp.NumVertices, fp.NumAdjSlots, fp.Reordered, fp.Name)
}

// jobSpec is the wire form of a Job: the configuration is shipped as its
// inputs (pattern, schedule, restrictions) and recompiled by core.NewConfig
// on the worker — compilation is deterministic, so both sides execute the
// identical loop program and counts stay bit-identical.
type jobSpec struct {
	Rank           int
	NumRanks       int
	WorkersPerRank int
	UseIEP         bool
	EdgeParallel   bool
	StealThreshold int
	DelayNS        int64
	DelayedRank    int
	FailRank       int
	FailAfterTasks int

	PatternN     int
	PatternName  string
	PatternEdges [][2]int
	Order        []uint8
	Restrictions [][2]uint8

	Graph graphFingerprint
}

func encodeJob(spec *jobSpec) []byte {
	var w wbuf
	w.u32(uint32(spec.Rank))
	w.u32(uint32(spec.NumRanks))
	w.u32(uint32(spec.WorkersPerRank))
	if spec.UseIEP {
		w.u8(1)
	} else {
		w.u8(0)
	}
	if spec.EdgeParallel {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(uint32(spec.StealThreshold))
	w.i64(spec.DelayNS)
	w.u32(uint32(spec.DelayedRank))
	w.u32(uint32(spec.FailRank))
	w.u32(uint32(spec.FailAfterTasks))
	w.u8(uint8(spec.PatternN))
	w.str(spec.PatternName)
	w.u32(uint32(len(spec.PatternEdges)))
	for _, e := range spec.PatternEdges {
		w.u8(uint8(e[0]))
		w.u8(uint8(e[1]))
	}
	w.u32(uint32(len(spec.Order)))
	w.b = append(w.b, spec.Order...)
	w.u32(uint32(len(spec.Restrictions)))
	for _, p := range spec.Restrictions {
		w.u8(p[0])
		w.u8(p[1])
	}
	spec.Graph.encode(&w)
	return w.b
}

func decodeJob(payload []byte) (*jobSpec, error) {
	r := &rbuf{b: payload}
	spec := &jobSpec{
		Rank:           int(r.u32("rank")),
		NumRanks:       int(r.u32("nranks")),
		WorkersPerRank: int(r.u32("workers")),
		UseIEP:         r.u8("useIEP") != 0,
		EdgeParallel:   r.u8("edgeParallel") != 0,
		StealThreshold: int(r.u32("stealThreshold")),
		DelayNS:        r.i64("delayNS"),
		DelayedRank:    int(r.u32("delayedRank")),
		FailRank:       int(r.u32("failRank")),
		FailAfterTasks: int(r.u32("failAfterTasks")),
	}
	spec.PatternN = int(r.u8("pattern size"))
	spec.PatternName = r.str("pattern name")
	ne := r.u32("pattern edge count")
	if r.err == nil && uint32(len(r.b)) < ne*2 {
		r.fail("pattern edges")
	}
	for i := uint32(0); i < ne && r.err == nil; i++ {
		spec.PatternEdges = append(spec.PatternEdges,
			[2]int{int(r.u8("edge")), int(r.u8("edge"))})
	}
	no := r.u32("schedule length")
	if r.err == nil && uint32(len(r.b)) < no {
		r.fail("schedule order")
	}
	for i := uint32(0); i < no && r.err == nil; i++ {
		spec.Order = append(spec.Order, r.u8("schedule order"))
	}
	nr := r.u32("restriction count")
	if r.err == nil && uint32(len(r.b)) < nr*2 {
		r.fail("restrictions")
	}
	for i := uint32(0); i < nr && r.err == nil; i++ {
		spec.Restrictions = append(spec.Restrictions,
			[2]uint8{r.u8("restriction"), r.u8("restriction")})
	}
	spec.Graph = decodeFingerprint(r)
	if r.err != nil {
		return nil, r.err
	}
	return spec, nil
}

// jobSpecOf flattens a Job for the wire.
func jobSpecOf(job *Job, rankID, nranks int) *jobSpec {
	return &jobSpec{
		Rank:           rankID,
		NumRanks:       nranks,
		WorkersPerRank: job.WorkersPerRank,
		UseIEP:         job.UseIEP,
		EdgeParallel:   job.EdgeParallel,
		StealThreshold: job.StealThreshold,
		DelayNS:        int64(job.NodeDelay),
		DelayedRank:    job.DelayedRank,
		FailRank:       job.FailRank,
		FailAfterTasks: job.FailAfterTasks,
		PatternN:       job.Cfg.Pattern.N(),
		PatternName:    job.Cfg.Pattern.Name(),
		PatternEdges:   job.Cfg.Pattern.Edges(),
		Order:          append([]uint8(nil), job.Cfg.Schedule.Order...),
		Restrictions:   restrictionPairs(job.Cfg.Restrictions),
		Graph:          fingerprintOf(job.Graph),
	}
}

func restrictionPairs(rs restrict.Set) [][2]uint8 {
	out := make([][2]uint8, len(rs))
	for i, r := range rs {
		out[i] = [2]uint8{r.First, r.Second}
	}
	return out
}

// compile rebuilds the executable Job on the worker side against its local
// graph replica.
func (spec *jobSpec) compile(g *graph.Graph) (*Job, error) {
	if err := spec.Graph.check(fingerprintOf(g)); err != nil {
		return nil, err
	}
	pat, err := pattern.New(spec.PatternN, spec.PatternEdges, spec.PatternName)
	if err != nil {
		return nil, fmt.Errorf("bad pattern: %w", err)
	}
	rs := make(restrict.Set, len(spec.Restrictions))
	for i, p := range spec.Restrictions {
		rs[i] = restrict.Restriction{First: p[0], Second: p[1]}
	}
	cfg, err := core.NewConfig(pat, schedule.Schedule{Order: spec.Order}, rs)
	if err != nil {
		return nil, fmt.Errorf("bad configuration: %w", err)
	}
	if spec.WorkersPerRank < 1 || spec.StealThreshold < 1 {
		return nil, fmt.Errorf("bad job options: workers=%d stealThreshold=%d",
			spec.WorkersPerRank, spec.StealThreshold)
	}
	return &Job{
		Cfg:            cfg,
		Graph:          g,
		UseIEP:         spec.UseIEP,
		EdgeParallel:   spec.EdgeParallel,
		WorkersPerRank: spec.WorkersPerRank,
		StealThreshold: spec.StealThreshold,
		NodeDelay:      time.Duration(spec.DelayNS),
		DelayedRank:    spec.DelayedRank,
		FailRank:       spec.FailRank,
		FailAfterTasks: spec.FailAfterTasks,
	}, nil
}

// Result frame payload.

func encodeResult(res RankResult) []byte {
	var w wbuf
	w.i64(res.Raw)
	w.i64(res.Stats.TasksRun)
	w.i64(res.Stats.StolenFrom)
	w.i64(res.Stats.StealsReceived)
	w.i64(int64(res.Stats.BusyTime))
	return w.b
}

func decodeResult(payload []byte) (RankResult, error) {
	r := &rbuf{b: payload}
	res := RankResult{
		Raw: r.i64("raw count"),
		Stats: NodeStats{
			TasksRun:       r.i64("tasks run"),
			StolenFrom:     r.i64("stolen from"),
			StealsReceived: r.i64("steals received"),
			BusyTime:       time.Duration(r.i64("busy time")),
		},
	}
	return res, r.err
}

// Hello / welcome payloads.

func encodeHello() []byte {
	var w wbuf
	w.str(wireMagic)
	w.u32(wireVersion)
	return w.b
}

func decodeHello(payload []byte) error {
	r := &rbuf{b: payload}
	magic := r.str("magic")
	version := r.u32("version")
	if r.err != nil {
		return r.err
	}
	if magic != wireMagic {
		return fmt.Errorf("cluster: bad hello magic %q", magic)
	}
	if version != wireVersion {
		return fmt.Errorf("cluster: protocol version %d, want %d", version, wireVersion)
	}
	return nil
}

// The welcome carries hasGraph so a worker can join cold: a worker started
// without a local snapshot advertises hasGraph=false (and a zero
// fingerprint), and the master pushes the fingerprint-verified view over the
// connection before the first job (snapBegin/snapData/snapEnd/snapOK).
func encodeWelcome(workers int, fp graphFingerprint, hasGraph bool) []byte {
	var w wbuf
	w.u32(wireVersion)
	w.u32(uint32(workers))
	if hasGraph {
		w.u8(1)
	} else {
		w.u8(0)
	}
	fp.encode(&w)
	return w.b
}

func decodeWelcome(payload []byte) (workers int, fp graphFingerprint, hasGraph bool, err error) {
	r := &rbuf{b: payload}
	version := r.u32("version")
	workers = int(r.u32("workers"))
	hasGraph = r.u8("hasGraph") != 0
	fp = decodeFingerprint(r)
	if r.err != nil {
		return 0, graphFingerprint{}, false, r.err
	}
	if version != wireVersion {
		return 0, graphFingerprint{}, false, fmt.Errorf("cluster: worker protocol version %d, want %d", version, wireVersion)
	}
	return workers, fp, hasGraph, nil
}

// Steal frames carry the sender's post-event queue length so the master's
// relay keeps an upper bound on every rank's remaining work (see
// tcp_transport.go for the termination argument).

func encodeRemaining(remaining int) []byte {
	var w wbuf
	w.u32(uint32(remaining))
	return w.b
}

func decodeRemaining(payload []byte) (int, error) {
	r := &rbuf{b: payload}
	v := int(r.u32("remaining"))
	return v, r.err
}

func encodeStealGive(remaining int, tasks []taskpool.Range) []byte {
	var w wbuf
	w.u32(uint32(remaining))
	w.ranges(tasks)
	return w.b
}

func decodeStealGive(payload []byte) (remaining int, tasks []taskpool.Range, err error) {
	r := &rbuf{b: payload}
	remaining = int(r.u32("remaining"))
	tasks = r.ranges("steal tasks")
	return remaining, tasks, r.err
}

func encodeTasks(tasks []taskpool.Range) []byte {
	var w wbuf
	w.ranges(tasks)
	return w.b
}

func decodeTasks(payload []byte) ([]taskpool.Range, error) {
	r := &rbuf{b: payload}
	ts := r.ranges("tasks")
	return ts, r.err
}

// Ack frames carry the completed task's identity (ranges are dealt and
// stolen whole, so the range is the identity) plus the raw count delta its
// execution earned. The master banks the delta: if the rank is later lost,
// its acknowledged work survives as banked counts and only unacknowledged
// tasks are re-dealt — re-execution stays exactly-once from the count's
// point of view.

func encodeAck(t taskpool.Range, delta int64) []byte {
	var w wbuf
	w.i64(int64(t.Start))
	w.i64(int64(t.End))
	w.i64(delta)
	return w.b
}

func decodeAck(payload []byte) (t taskpool.Range, delta int64, err error) {
	r := &rbuf{b: payload}
	t = taskpool.Range{Start: int(r.i64("ack start")), End: int(r.i64("ack end"))}
	delta = r.i64("ack delta")
	return t, delta, r.err
}

// Snapshot frames: the master streams the GPiCSR binary snapshot to a cold
// worker in bounded chunks; the worker loads it and answers with the new
// replica's fingerprint so the master can verify the transfer.

// maxSnapshot bounds a pushed snapshot so a corrupt length cannot drive an
// arbitrary allocation on the worker.
const maxSnapshot = 1 << 36

func encodeSnapBegin(total int64) []byte {
	var w wbuf
	w.i64(total)
	return w.b
}

func decodeSnapBegin(payload []byte) (int64, error) {
	r := &rbuf{b: payload}
	total := r.i64("snapshot length")
	if r.err != nil {
		return 0, r.err
	}
	if total <= 0 || total > maxSnapshot {
		return 0, fmt.Errorf("cluster: snapshot length %d out of range", total)
	}
	return total, nil
}

func encodeSnapOK(fp graphFingerprint) []byte {
	var w wbuf
	fp.encode(&w)
	return w.b
}

func decodeSnapOK(payload []byte) (graphFingerprint, error) {
	r := &rbuf{b: payload}
	fp := decodeFingerprint(r)
	return fp, r.err
}
