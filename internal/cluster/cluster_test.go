package cluster

import (
	"testing"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

func planFor(t *testing.T, g *graph.Graph, p *pattern.Pattern) *core.Config {
	t.Helper()
	res, err := core.Plan(p, g.Stats(), core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best
}

func TestClusterMatchesSingleNode(t *testing.T) {
	g := graph.BarabasiAlbert(400, 5, 77)
	p := pattern.House()
	cfg := planFor(t, g, p)
	want := cfg.Count(g, core.RunOptions{Workers: 1})
	for _, nodes := range []int{1, 2, 4} {
		for _, wpn := range []int{1, 3} {
			res, err := Run(cfg, g, Options{Nodes: nodes, WorkersPerNode: wpn})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Errorf("nodes=%d wpn=%d: count = %d, want %d", nodes, wpn, res.Count, want)
			}
			var tasksRun int64
			for _, ns := range res.Nodes {
				tasksRun += ns.TasksRun
			}
			if int(tasksRun) != res.Tasks {
				t.Errorf("nodes=%d: tasks run %d != created %d", nodes, tasksRun, res.Tasks)
			}
		}
	}
}

func TestClusterIEP(t *testing.T) {
	g := graph.BarabasiAlbert(300, 5, 13)
	p := pattern.Cycle6Tri()
	cfg := planFor(t, g, p)
	want := cfg.CountIEP(g, core.RunOptions{Workers: 1})
	res, err := Run(cfg, g, Options{Nodes: 3, WorkersPerNode: 2, UseIEP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("cluster IEP = %d, want %d", res.Count, want)
	}
	if plain := cfg.Count(g, core.RunOptions{Workers: 2}); plain != want {
		t.Errorf("IEP %d != plain %d", want, plain)
	}
}

func TestWorkStealingFromStraggler(t *testing.T) {
	// Inject a slow node: work stealing must shift most tasks to healthy
	// nodes (the imbalance scenario of §IV-E).
	g := graph.BarabasiAlbert(600, 4, 3)
	p := pattern.Triangle()
	cfg := planFor(t, g, p)
	want := cfg.Count(g, core.RunOptions{Workers: 1})
	res, err := Run(cfg, g, Options{
		Nodes: 3, WorkersPerNode: 1, ChunkSize: 4,
		NodeDelay: 2 * time.Millisecond, DelayedNode: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("count = %d, want %d", res.Count, want)
	}
	healthy := res.Nodes[1].TasksRun + res.Nodes[2].TasksRun
	if healthy <= res.Nodes[0].TasksRun {
		t.Errorf("healthy nodes ran %d tasks vs straggler %d; stealing ineffective",
			healthy, res.Nodes[0].TasksRun)
	}
	if res.Nodes[1].StealsReceived+res.Nodes[2].StealsReceived == 0 {
		t.Error("no steals recorded despite straggler")
	}
}

func TestClusterTinyGraph(t *testing.T) {
	g := graph.Complete(6)
	p := pattern.Triangle()
	cfg := planFor(t, g, p)
	res, err := Run(cfg, g, Options{Nodes: 4, WorkersPerNode: 2, ChunkSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 20 {
		t.Errorf("K6 triangles = %d, want 20", res.Count)
	}
	empty, _ := graph.FromEdges(0, nil)
	res, err = Run(cfg, empty, Options{Nodes: 2})
	if err != nil || res.Count != 0 {
		t.Errorf("empty graph: %v %v", res, err)
	}
}

func TestClusterDefaultsNormalize(t *testing.T) {
	g := graph.GNP(50, 0.3, 5)
	p := pattern.Triangle()
	cfg := planFor(t, g, p)
	// Zero-valued options must normalize rather than hang or panic.
	res, err := Run(cfg, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != cfg.Count(g, core.RunOptions{Workers: 1}) {
		t.Error("default options wrong count")
	}
	if res.String() == "" {
		t.Error("empty String")
	}
}
