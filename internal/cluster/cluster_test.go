package cluster

import (
	"net"
	"testing"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
)

func planFor(t testing.TB, g *graph.Graph, p *pattern.Pattern) *core.Config {
	t.Helper()
	res, err := core.Plan(p, g.Stats(), core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best
}

// startWorkers spins up n loopback TCP worker processes (goroutine-hosted
// cluster.Serve instances, each with its own listener) serving the graph g,
// and returns their addresses. Listeners are closed via t.Cleanup.
func startWorkers(t testing.TB, g *graph.Graph, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go Serve(ln, g, ServeOptions{})
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// dialWorkers connects a TCP transport to loopback workers serving g and
// registers its teardown.
func dialWorkers(t testing.TB, g *graph.Graph, n int) Transport {
	t.Helper()
	tr, err := DialTCP(startWorkers(t, g, n), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// transportCase materializes one fabric for a (graph, nodes) pair: the
// channel transport simulates nodes in-process, the TCP transport spins up
// that many loopback worker processes. The same test bodies run against
// both — the conformance suite of the Transport contract.
type transportCase struct {
	name string
	// lossy marks fault-injected fabrics: one rank dies partway through every
	// multi-rank job. Counts must stay bit-identical regardless; assertions
	// about load-balance shape are skipped (a dead rank skews busy time).
	lossy bool
	open  func(t testing.TB, g *graph.Graph, nodes int) Transport
}

var transportCases = []transportCase{
	{name: "chan", open: func(t testing.TB, g *graph.Graph, nodes int) Transport {
		return NewChanTransport()
	}},
	{name: "tcp", open: func(t testing.TB, g *graph.Graph, nodes int) Transport {
		return dialWorkers(t, g, nodes)
	}},
	{name: "chan/faulty", lossy: true, open: func(t testing.TB, g *graph.Graph, nodes int) Transport {
		return NewFaultyTransport(NewChanTransport(), -1, 2)
	}},
	{name: "tcp/faulty", lossy: true, open: func(t testing.TB, g *graph.Graph, nodes int) Transport {
		return NewFaultyTransport(dialWorkers(t, g, nodes), -1, 2)
	}},
}

func TestClusterMatchesSingleNode(t *testing.T) {
	g := graph.BarabasiAlbert(400, 5, 77)
	p := pattern.House()
	cfg := planFor(t, g, p)
	want := cfg.Count(g, core.RunOptions{Workers: 1})
	for _, tc := range transportCases {
		t.Run(tc.name, func(t *testing.T) {
			for _, nodes := range []int{1, 2, 4} {
				tr := tc.open(t, g, nodes)
				for _, wpn := range []int{1, 3} {
					res, err := Run(cfg, g, Options{
						Nodes: nodes, WorkersPerNode: wpn, Transport: tr,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Count != want {
						t.Errorf("nodes=%d wpn=%d: count = %d, want %d", nodes, wpn, res.Count, want)
					}
					if len(res.Nodes) != nodes {
						t.Fatalf("nodes=%d: got %d rank stats", nodes, len(res.Nodes))
					}
					var tasksRun int64
					for _, ns := range res.Nodes {
						tasksRun += ns.TasksRun
					}
					if int(tasksRun) != res.Tasks {
						t.Errorf("nodes=%d: tasks run %d != created %d", nodes, tasksRun, res.Tasks)
					}
				}
			}
		})
	}
}

func TestClusterIEP(t *testing.T) {
	g := graph.BarabasiAlbert(300, 5, 13)
	p := pattern.Cycle6Tri()
	cfg := planFor(t, g, p)
	want := cfg.CountIEP(g, core.RunOptions{Workers: 1})
	if plain := cfg.Count(g, core.RunOptions{Workers: 2}); plain != want {
		t.Errorf("IEP %d != plain %d", want, plain)
	}
	for _, tc := range transportCases {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.open(t, g, 3)
			res, err := Run(cfg, g, Options{
				Nodes: 3, WorkersPerNode: 2, UseIEP: true, Transport: tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Errorf("cluster IEP = %d, want %d", res.Count, want)
			}
		})
	}
}

func TestWorkStealingFromStraggler(t *testing.T) {
	// Inject a slow node: work stealing must shift most tasks to healthy
	// nodes (the imbalance scenario of §IV-E).
	g := graph.BarabasiAlbert(600, 4, 3)
	p := pattern.Triangle()
	cfg := planFor(t, g, p)
	want := cfg.Count(g, core.RunOptions{Workers: 1})
	for _, tc := range transportCases {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.open(t, g, 3)
			res, err := Run(cfg, g, Options{
				Nodes: 3, WorkersPerNode: 1, ChunkSize: 4,
				NodeDelay: 2 * time.Millisecond, DelayedNode: 0,
				Transport: tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("count = %d, want %d", res.Count, want)
			}
			healthy := res.Nodes[1].TasksRun + res.Nodes[2].TasksRun
			if healthy <= res.Nodes[0].TasksRun {
				t.Errorf("healthy nodes ran %d tasks vs straggler %d; stealing ineffective",
					healthy, res.Nodes[0].TasksRun)
			}
			if res.Nodes[1].StealsReceived+res.Nodes[2].StealsReceived == 0 {
				t.Error("no steals recorded despite straggler")
			}
		})
	}
}

func TestClusterTinyGraph(t *testing.T) {
	g := graph.Complete(6)
	p := pattern.Triangle()
	cfg := planFor(t, g, p)
	for _, tc := range transportCases {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.open(t, g, 4)
			res, err := Run(cfg, g, Options{
				Nodes: 4, WorkersPerNode: 2, ChunkSize: 1, Transport: tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != 20 {
				t.Errorf("K6 triangles = %d, want 20", res.Count)
			}
		})
	}
	// The empty graph short-circuits before any transport traffic.
	empty, _ := graph.FromEdges(0, nil)
	cfg2 := planFor(t, g, p)
	res, err := Run(cfg2, empty, Options{Nodes: 2})
	if err != nil || res.Count != 0 {
		t.Errorf("empty graph: %v %v", res, err)
	}
}

// starRingGraph builds the extreme-skew fixture of the single-node balance
// test (core.TestEdgeParallelBalance): a hub adjacent to every other vertex
// plus a ring among the non-hub vertices. Under a restriction orientation
// that makes the max-id hub the root of essentially all the work, one
// vertex-range task owns ~100% of the compute.
func starRingGraph(n int) *graph.Graph {
	bld := graph.NewBuilder(n, 2*n)
	hub := uint32(n - 1)
	for v := uint32(0); v+1 < hub; v++ {
		bld.AddEdge(v, v+1)
	}
	for v := uint32(0); v < hub; v++ {
		bld.AddEdge(hub, v)
	}
	g, err := bld.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// hubRootTriangle compiles a triangle configuration oriented so the max-id
// vertex (the hub) performs the candidate sweep.
func hubRootTriangle(t testing.TB) *core.Config {
	t.Helper()
	cfg, err := core.NewConfig(pattern.Triangle(),
		schedule.Schedule{Order: []uint8{0, 1, 2}},
		restrict.Set{{First: 0, Second: 1}, {First: 1, Second: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestClusterEdgeParallelBalance is the cluster-level analogue of
// core.TestEdgeParallelBalance, run as a conformance case on every
// transport: on the extreme-skew fixture, vertex-range tasks pin one node
// with nearly all the busy time (the hub's chunk is indivisible, so stealing
// cannot help), while edge-parallel slot tasks spread the hub's adjacency
// across many stealable tasks and the max per-node busy-time share collapses
// below 2x the ideal 1/Nodes share — even when one node is an injected
// straggler.
func TestClusterEdgeParallelBalance(t *testing.T) {
	const nodes = 4
	g := starRingGraph(30000)
	cfg := hubRootTriangle(t)
	if !cfg.EdgeParallelEligible(false) {
		t.Fatal("hub-root triangle should be edge-parallel eligible")
	}
	want := cfg.Count(g, core.RunOptions{Workers: 1, EdgeParallel: core.EdgeParallelOff})

	for _, tc := range transportCases {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.open(t, g, nodes)
			base := Options{Nodes: nodes, WorkersPerNode: 1, ChunkSize: 64, Transport: tr}

			vopt := base
			vopt.EdgeParallel = core.EdgeParallelOff
			vres, err := Run(cfg, g, vopt)
			if err != nil {
				t.Fatal(err)
			}
			if vres.EdgeParallel {
				t.Fatal("EdgeParallelOff ran slot tasks")
			}
			if vres.Count != want {
				t.Fatalf("vertex-range count = %d, want %d", vres.Count, want)
			}

			eres, err := Run(cfg, g, base)
			if err != nil {
				t.Fatal(err)
			}
			if !eres.EdgeParallel {
				t.Fatal("auto mode should pack slot tasks for an eligible schedule")
			}
			if eres.Count != want {
				t.Fatalf("edge-parallel count = %d, want %d", eres.Count, want)
			}

			sopt := base
			sopt.NodeDelay = 200 * time.Microsecond
			sopt.DelayedNode = 1
			sres, err := Run(cfg, g, sopt)
			if err != nil {
				t.Fatal(err)
			}
			if sres.Count != want {
				t.Fatalf("straggler edge-parallel count = %d, want %d", sres.Count, want)
			}

			if tc.lossy {
				// A rank died partway through each run; busy time is no
				// longer a balance signal. Exact counts above are the gate.
				return
			}
			vShare, eShare, sShare := vres.MaxBusyShare(), eres.MaxBusyShare(), sres.MaxBusyShare()
			t.Logf("max busy share: vertex %.3f (%d tasks), edge %.3f (%d tasks), edge+straggler %.3f",
				vShare, vres.Tasks, eShare, eres.Tasks, sShare)
			if vShare < 0.6 {
				t.Errorf("vertex-range tasks should serialize on the hub: max busy share %.3f", vShare)
			}
			bound := 2.0 / nodes
			if eShare >= bound {
				t.Errorf("edge-parallel max busy share %.3f, want < %.3f", eShare, bound)
			}
			if sShare >= bound {
				t.Errorf("edge-parallel max busy share with straggler %.3f, want < %.3f", sShare, bound)
			}
		})
	}
}

// TestClusterHybridEquivalence pins cluster.Run to the single-node engine
// across {chan, tcp} transports x {1, N} nodes x {vertex, edge}-parallel x
// {plain, IEP} on both the original and the Optimize()d (reordered + hub
// bitmaps) view of the graph, over the paper's named pattern suite. This is
// the bit-identical-counts acceptance gate for the transport layer.
func TestClusterHybridEquivalence(t *testing.T) {
	g := graph.BarabasiAlbert(300, 5, 99)
	og := g.Reorder()
	og.BuildHubBitmaps(1<<22, 0)
	if og.NumHubs() == 0 {
		t.Fatal("fixture should have hub bitmaps")
	}
	pats := []*pattern.Pattern{
		pattern.Triangle(), pattern.Rectangle(), pattern.Pentagon(),
		pattern.House(), pattern.Cycle6Tri(),
	}
	for _, tc := range transportCases {
		t.Run(tc.name, func(t *testing.T) {
			for gi, dg := range []*graph.Graph{g, og} {
				for _, nodes := range []int{1, 3} {
					tr := tc.open(t, dg, nodes)
					for _, p := range pats {
						cfg := planFor(t, g, p)
						want := cfg.Count(g, core.RunOptions{Workers: 1})
						for _, useIEP := range []bool{false, true} {
							for _, mode := range []core.EdgeParallelMode{core.EdgeParallelOff, core.EdgeParallelOn} {
								res, err := Run(cfg, dg, Options{
									Nodes: nodes, WorkersPerNode: 2,
									UseIEP: useIEP, EdgeParallel: mode,
									Transport: tr,
								})
								if err != nil {
									t.Fatal(err)
								}
								if res.Count != want {
									t.Errorf("%s optimized=%v iep=%v nodes=%d mode=%d: count = %d, want %d",
										p.Name(), gi == 1, useIEP, nodes, mode, res.Count, want)
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestClusterMatchesAuxLocal pins the cluster data plane (which never builds
// auxiliary graphs — the wire protocol runs the plain interpreter on every
// rank) against local runs with auxiliary-graph pruning forced, over both the
// chan and tcp transports: aux changes speed, never counts, so the backends
// must stay bit-identical.
func TestClusterMatchesAuxLocal(t *testing.T) {
	g := graph.BarabasiAlbert(300, 6, 31)
	cases := []struct {
		pat    *pattern.Pattern
		useIEP bool
	}{
		{pat: pattern.Clique(5), useIEP: false},
		{pat: pattern.Clique(5), useIEP: true},
		{pat: pattern.House(), useIEP: false},
		{pat: pattern.Cycle6Tri(), useIEP: true},
	}
	for _, tc := range transportCases {
		if tc.lossy {
			continue // fault injection is covered elsewhere; this pins counts
		}
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.open(t, g, 3)
			for _, c := range cases {
				cfg := planFor(t, g, c.pat)
				opt := core.RunOptions{Workers: 2, Aux: core.AuxForce}
				var local int64
				if c.useIEP {
					local = cfg.CountIEP(g, opt)
				} else {
					local = cfg.Count(g, opt)
				}
				res, err := Run(cfg, g, Options{
					Nodes: 3, WorkersPerNode: 2, UseIEP: c.useIEP, Transport: tr,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Count != local {
					t.Errorf("%s iep=%v: cluster %d, local aux-forced %d",
						c.pat, c.useIEP, res.Count, local)
				}
			}
		})
	}
}

func TestClusterDefaultsNormalize(t *testing.T) {
	g := graph.GNP(50, 0.3, 5)
	p := pattern.Triangle()
	cfg := planFor(t, g, p)
	// Zero-valued options must normalize rather than hang or panic.
	res, err := Run(cfg, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != cfg.Count(g, core.RunOptions{Workers: 1}) {
		t.Error("default options wrong count")
	}
	if res.String() == "" {
		t.Error("empty String")
	}
}

// TestClusterMatchesCompiledTiers pins the cluster data plane (interpreted
// Counters on every rank) against the local compiled and generated
// execution tiers: the same configuration must produce bit-identical counts
// whichever side of the backend split runs it.
func TestClusterMatchesCompiledTiers(t *testing.T) {
	g := graph.BarabasiAlbert(300, 5, 31)
	cases := []struct {
		pat    *pattern.Pattern
		useIEP bool
	}{
		{pat: pattern.House(), useIEP: false},
		{pat: pattern.House(), useIEP: true},
		{pat: pattern.Pentagon(), useIEP: true},
		{pat: pattern.Clique(4), useIEP: false}, // generated-tier pattern
		{pat: pattern.Clique(5), useIEP: false},
	}
	for _, tc := range cases {
		cfg := planFor(t, g, tc.pat)
		for _, tier := range []core.Tier{core.TierCompiled, core.TierAuto} {
			var local int64
			if tc.useIEP {
				local = cfg.CountIEP(g, core.RunOptions{Workers: 2, Tier: tier})
			} else {
				local = cfg.Count(g, core.RunOptions{Workers: 2, Tier: tier})
			}
			res, err := Run(cfg, g, Options{
				Nodes: 3, WorkersPerNode: 2, UseIEP: tc.useIEP,
				Transport: NewChanTransport(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != local {
				t.Errorf("%s iep=%v: cluster %d, local tier %s %d",
					tc.pat, tc.useIEP, res.Count, tier, local)
			}
		}
	}
}
