package baseline

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

func testPatterns() []*pattern.Pattern {
	return []*pattern.Pattern{
		pattern.Triangle(), pattern.Rectangle(), pattern.House(),
		pattern.Pentagon(), pattern.CompleteBipartite(2, 3),
	}
}

func TestAllSystemsAgree(t *testing.T) {
	// The paper's correctness check (§V-A): GraphPi, the reproduced
	// GraphZero and Fractal must produce identical embedding counts.
	g := graph.GNP(18, 0.4, 99)
	for _, p := range testPatterns() {
		want := BruteForceCount(g, p)
		gz, err := GraphZeroCount(g, p, 1)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if gz != want {
			t.Errorf("%s: GraphZero = %d, want %d", p, gz, want)
		}
		fr := FractalCount(g, p, 1)
		if fr != want {
			t.Errorf("%s: Fractal = %d, want %d", p, fr, want)
		}
		am, err := AutoMineCount(g, p, 1)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if am != want {
			t.Errorf("%s: AutoMine = %d, want %d", p, am, want)
		}
		res, err := core.Plan(p, g.Stats(), core.PlanOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if gp := res.Best.Count(g, core.RunOptions{Workers: 1}); gp != want {
			t.Errorf("%s: GraphPi = %d, want %d", p, gp, want)
		}
	}
}

func TestFractalParallelMatches(t *testing.T) {
	g := graph.BarabasiAlbert(120, 4, 7)
	p := pattern.House()
	want := FractalCount(g, p, 1)
	if got := FractalCount(g, p, 4); got != want {
		t.Errorf("parallel Fractal = %d, want %d", got, want)
	}
}

func TestBruteForceTinyCases(t *testing.T) {
	if got := BruteForceCount(graph.Complete(4), pattern.Triangle()); got != 4 {
		t.Errorf("K4 triangles = %d, want 4", got)
	}
	if got := BruteForceCount(graph.Cycle(5), pattern.Pentagon()); got != 1 {
		t.Errorf("C5 pentagons = %d, want 1", got)
	}
	// Pattern larger than graph.
	if got := BruteForceCount(graph.Complete(3), pattern.House()); got != 0 {
		t.Errorf("undersized graph = %d, want 0", got)
	}
	empty, _ := graph.FromEdges(0, nil)
	if got := FractalCount(empty, pattern.Triangle(), 1); got != 0 {
		t.Errorf("Fractal on empty graph = %d", got)
	}
}

func TestConnectedOrder(t *testing.T) {
	for _, p := range testPatterns() {
		order := connectedOrder(p)
		if len(order) != p.N() {
			t.Fatalf("%s: order %v wrong length", p, order)
		}
		if !p.PrefixConnected(order) {
			t.Errorf("%s: order %v not prefix connected", p, order)
		}
	}
}

func TestSystemsAgreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 555))
		n := 3 + r.IntN(3)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.6 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		p := pattern.MustNew(n, edges, "rand")
		if !p.Connected() {
			return true
		}
		g := graph.GNP(14, 0.4, seed)
		want := BruteForceCount(g, p)
		gz, err := GraphZeroCount(g, p, 1)
		if err != nil || gz != want {
			return false
		}
		return FractalCount(g, p, 2) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
