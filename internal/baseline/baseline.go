// Package baseline implements the comparison systems of the paper's
// evaluation (§V-A):
//
//   - GraphZero — reproduced, as the paper itself did ("Since GraphZero is
//     not released, we reproduce all the algorithms described in
//     GraphZero"): one canonical restriction set plus a degree-only cost
//     model over Phase-1 schedules. Its planner lives in core.PlanGraphZero;
//     this package re-exports a one-call runner.
//   - Fractal — a JVM pattern-matching system. We reproduce its algorithmic
//     behavior: breadth-style extend-and-filter enumeration of partial
//     embeddings with per-embedding canonicality filtering instead of
//     compiled restrictions, which is why it trails nested-loop systems by
//     orders of magnitude.
//   - AutoMine — nested loops without symmetry breaking: it enumerates every
//     automorphic image and divides by |Aut| at the end.
//   - BruteForce — the all-injective-maps oracle used in tests.
package baseline

import (
	"sync/atomic"
	"time"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/perm"
	"graphpi/internal/schedule"
	"graphpi/internal/taskpool"
	"graphpi/internal/vertexset"
)

// BruteForceCount counts embeddings (automorphism classes) by enumerating
// every injective vertex map. Exponential in |V|; tests only.
func BruteForceCount(g *graph.Graph, pat *pattern.Pattern) int64 {
	n := pat.N()
	nv := g.NumVertices()
	if n > nv {
		return 0
	}
	used := make([]bool, nv)
	assign := make([]uint32, n)
	var count int64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			count++
			return
		}
	next:
		for v := 0; v < nv; v++ {
			if used[v] {
				continue
			}
			for j := 0; j < i; j++ {
				if pat.HasEdge(i, j) && !g.HasEdge(assign[j], uint32(v)) {
					continue next
				}
			}
			used[v] = true
			assign[i] = uint32(v)
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return count / int64(len(pat.Automorphisms()))
}

// GraphZeroCount plans with the reproduced GraphZero pipeline (single
// restriction set, Phase-1 schedules, degree-only model) and counts.
func GraphZeroCount(g *graph.Graph, pat *pattern.Pattern, workers int) (int64, error) {
	res, err := core.PlanGraphZero(pat, g.Stats())
	if err != nil {
		return 0, err
	}
	return res.Best.Count(g, core.RunOptions{Workers: workers}), nil
}

// FractalCount reproduces Fractal's extend-and-filter strategy: it grows
// partial embeddings one vertex at a time along a fixed connected order,
// extending through the neighbors of already-matched vertices, and keeps an
// embedding only if it is the canonical representative of its automorphism
// class (the smallest vertex tuple over all automorphisms). The canonicality
// check costs O(|Aut|·n) per complete embedding and the extension sets are
// built per step — the algorithmic overheads GraphPi's compiled restrictions
// avoid.
func FractalCount(g *graph.Graph, pat *pattern.Pattern, workers int) int64 {
	n, _ := FractalCountTimed(g, pat, workers, 0)
	return n
}

// FractalCountTimed is FractalCount with a cooperative budget: when budget
// is positive and expires, the run aborts and complete is false.
func FractalCountTimed(g *graph.Graph, pat *pattern.Pattern, workers int, budget time.Duration) (count int64, complete bool) {
	order := connectedOrder(pat)
	rel := relabelByOrder(pat, order)
	auts := rel.Automorphisms()
	n := rel.N()
	nv := g.NumVertices()
	if nv == 0 {
		return 0, true
	}
	var stop atomic.Bool
	if budget > 0 {
		timer := time.AfterFunc(budget, func() { stop.Store(true) })
		defer timer.Stop()
	}
	counts := make([]int64, taskpool.Workers(workers))
	taskpool.Run(workers, nv, 64, func(w int, rg taskpool.Range) {
		if stop.Load() {
			return
		}
		e := &fractalEnum{g: g, pat: rel, auts: auts, assign: make([]uint32, n), stop: &stop}
		for v := rg.Start; v < rg.End; v++ {
			if stop.Load() {
				break
			}
			e.assign[0] = uint32(v)
			e.extend(1)
		}
		counts[w] += e.count
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	return total, !stop.Load()
}

type fractalEnum struct {
	g      *graph.Graph
	pat    *pattern.Pattern
	auts   []perm.Perm
	assign []uint32
	image  []uint32
	count  int64
	stop   *atomic.Bool
}

func (e *fractalEnum) extend(depth int) {
	n := e.pat.N()
	if depth == 2 && e.stop != nil && e.stop.Load() {
		return
	}
	if depth == n {
		if e.isCanonical() {
			e.count++
		}
		return
	}
	// Extension candidates: union of neighborhoods of matched vertices
	// whose pattern counterpart is adjacent to the new vertex — Fractal
	// re-derives this per step rather than hoisting intersections.
	var cand []uint32
	first := true
	for j := 0; j < depth; j++ {
		if !e.pat.HasEdge(depth, j) {
			continue
		}
		nb := e.g.Neighbors(e.assign[j])
		if first {
			cand = append(cand[:0], nb...)
			first = false
			continue
		}
		cand = vertexset.Intersect(make([]uint32, 0, len(cand)), cand, nb)
	}
	if first {
		return // disconnected order never happens (connectedOrder)
	}
next:
	for _, v := range cand {
		for j := 0; j < depth; j++ {
			if e.assign[j] == v {
				continue next
			}
		}
		// Filter: verify non-adjacent pattern pairs too? Subgraph
		// isomorphism (non-induced) needs only edge presence, which the
		// candidate construction guarantees.
		e.assign[depth] = v
		e.extend(depth + 1)
	}
}

// isCanonical reports whether the current complete embedding is the
// lexicographically smallest tuple among its automorphic images.
func (e *fractalEnum) isCanonical() bool {
	n := e.pat.N()
	if cap(e.image) < n {
		e.image = make([]uint32, n)
	}
	img := e.image[:n]
	for _, a := range e.auts {
		if a.IsIdentity() {
			continue
		}
		for i := 0; i < n; i++ {
			img[i] = e.assign[a[i]]
		}
		for i := 0; i < n; i++ {
			if img[i] < e.assign[i] {
				return false
			}
			if img[i] > e.assign[i] {
				break
			}
		}
	}
	return true
}

// AutoMineCount reproduces AutoMine's behavior: the nested-loop engine with
// a good schedule but no symmetry breaking; every embedding is found |Aut|
// times and the total divided at the end.
func AutoMineCount(g *graph.Graph, pat *pattern.Pattern, workers int) (int64, error) {
	sres := schedule.Generate(pat, schedule.Options{})
	if len(sres.Efficient) == 0 {
		return 0, core.ErrNoSchedule
	}
	cfg, err := core.NewConfig(pat, sres.Efficient[0], nil)
	if err != nil {
		return 0, err
	}
	raw := cfg.Count(g, core.RunOptions{Workers: workers})
	return raw / int64(len(pat.Automorphisms())), nil
}

// connectedOrder returns a vertex order with connected prefixes (BFS from
// vertex 0).
func connectedOrder(pat *pattern.Pattern) []int {
	n := pat.N()
	order := make([]int, 0, n)
	inOrder := make([]bool, n)
	order = append(order, 0)
	inOrder[0] = true
	for len(order) < n {
		added := false
		for v := 0; v < n && !added; v++ {
			if inOrder[v] {
				continue
			}
			for _, u := range order {
				if pat.HasEdge(v, u) {
					order = append(order, v)
					inOrder[v] = true
					added = true
					break
				}
			}
		}
		if !added {
			// Disconnected pattern: append remaining arbitrarily.
			for v := 0; v < n; v++ {
				if !inOrder[v] {
					order = append(order, v)
					inOrder[v] = true
					break
				}
			}
		}
	}
	return order
}

func relabelByOrder(pat *pattern.Pattern, order []int) *pattern.Pattern {
	inv := make([]int, len(order))
	for pos, v := range order {
		inv[v] = pos
	}
	return pat.Relabel(inv)
}
