package restrict

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"graphpi/internal/pattern"
	"graphpi/internal/perm"
)

func TestSetCanonicalize(t *testing.T) {
	s := Set{{2, 1}, {0, 1}, {2, 1}, {0, 2}}
	s = s.Canonicalize()
	want := Set{{0, 1}, {0, 2}, {2, 1}}
	if len(s) != len(want) {
		t.Fatalf("Canonicalize = %v, want %v", s, want)
	}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("Canonicalize = %v, want %v", s, want)
		}
	}
}

func TestConsistent(t *testing.T) {
	if !(Set{{0, 1}, {1, 2}}).Consistent(3) {
		t.Error("chain reported inconsistent")
	}
	if (Set{{0, 1}, {1, 2}, {2, 0}}).Consistent(3) {
		t.Error("3-cycle reported consistent")
	}
	if !(Set{}).Consistent(4) {
		t.Error("empty set inconsistent")
	}
}

func TestEliminatesRectangleExample(t *testing.T) {
	// The paper's Figure 4 walkthrough: for the rectangle pattern, the two
	// restrictions id(B)>id(D) and id(A)>id(C) eliminate the 4-cycle
	// permutation ② = (A,D,C,B). With A,B,C,D = 0,1,2,3:
	s := Set{{1, 3}, {0, 2}}
	p := perm.Perm{3, 0, 1, 2} // A→D, B→A, C→B, D→C  i.e. (A D C B)
	if !s.Eliminates(p) {
		t.Error("restrictions {B>D, A>C} do not eliminate (A D C B)")
	}
	// A single restriction id(B)>id(D) eliminates (A)(B,D)(C).
	s1 := Set{{1, 3}}
	bd := perm.Perm{0, 3, 2, 1}
	if !s1.Eliminates(bd) {
		t.Error("restriction B>D does not eliminate (B D)")
	}
	// But not the identity.
	if s1.Eliminates(perm.Identity(4)) {
		t.Error("restriction B>D eliminates the identity")
	}
	// And a restriction on untouched vertices does not eliminate (B D).
	if (Set{{0, 2}}).Eliminates(bd) {
		t.Error("restriction A>C should not eliminate (B D)")
	}
}

func TestCountOrderSurvivors(t *testing.T) {
	// One restriction halves the n! orders (paper: f1 = 1/2 for A>B).
	if got := CountOrderSurvivors(5, Set{{0, 1}}); got != 60 {
		t.Errorf("survivors with one restriction = %d, want 60", got)
	}
	if got := CountOrderSurvivors(3, nil); got != 6 {
		t.Errorf("survivors with no restriction = %d, want 6", got)
	}
	// A full chain forces one order.
	chain := Set{{0, 1}, {1, 2}, {2, 3}}
	if got := CountOrderSurvivors(4, chain); got != 1 {
		t.Errorf("survivors with full chain = %d, want 1", got)
	}
}

func patterns(t *testing.T) []*pattern.Pattern {
	t.Helper()
	ps := []*pattern.Pattern{
		pattern.Triangle(), pattern.Rectangle(), pattern.Pentagon(),
		pattern.House(), pattern.Cycle6Tri(), pattern.Prism(),
		pattern.Clique(4), pattern.Clique(5), pattern.CliqueMinus(5),
		pattern.CompleteBipartite(2, 3), pattern.StarN(5), pattern.PathN(5),
		pattern.CycleN(6), pattern.Clique(6),
	}
	return ps
}

func TestGenerateProducesValidSets(t *testing.T) {
	for _, p := range patterns(t) {
		sets, err := Generate(p, Options{MaxSets: 16})
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if len(sets) == 0 {
			t.Errorf("%s: no sets", p)
		}
		for _, s := range sets {
			if err := Validate(p, s); err != nil {
				t.Errorf("%s: %v", p, err)
			}
		}
	}
}

func TestGenerateMultipleSets(t *testing.T) {
	// The headline claim of §IV-A: unlike GraphZero, Algorithm 1 yields
	// multiple different complete sets for symmetric patterns.
	for _, p := range []*pattern.Pattern{
		pattern.Rectangle(), pattern.Pentagon(), pattern.House(),
		pattern.CompleteBipartite(2, 3),
	} {
		sets, err := Generate(p, Options{MaxSets: 64})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(sets) < 2 {
			t.Errorf("%s: got %d restriction sets, want ≥ 2", p, len(sets))
		}
		// All distinct.
		seen := map[string]bool{}
		for _, s := range sets {
			k := s.key()
			if seen[k] {
				t.Errorf("%s: duplicate set %v", p, s)
			}
			seen[k] = true
		}
	}
}

func TestGenerateTrivialGroup(t *testing.T) {
	// A pattern with only the identity automorphism needs no restrictions.
	asym := pattern.MustNew(6, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 2}, {2, 4}, {0, 3},
	}, "asym")
	if len(asym.Automorphisms()) != 1 {
		t.Skip("fixture is unexpectedly symmetric")
	}
	sets, err := Generate(asym, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0]) != 0 {
		t.Errorf("trivial group: sets = %v, want one empty set", sets)
	}
}

func TestGenerateRespectsMaxSets(t *testing.T) {
	sets, err := Generate(pattern.Clique(5), Options{MaxSets: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) > 3 {
		t.Errorf("MaxSets=3 returned %d sets", len(sets))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(pattern.House(), Options{MaxSets: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(pattern.House(), Options{MaxSets: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic set count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].key() != b[i].key() {
			t.Fatalf("nondeterministic set %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGraphZeroSetValid(t *testing.T) {
	for _, p := range patterns(t) {
		s := GraphZeroSet(p)
		if err := Validate(p, s); err != nil {
			t.Errorf("%s: GraphZero set invalid: %v", p, err)
		}
	}
}

func TestGraphZeroSingleVsGraphPiMany(t *testing.T) {
	p := pattern.Rectangle()
	gz := GraphZeroSet(p)
	sets, err := Generate(p, Options{MaxSets: 64})
	if err != nil {
		t.Fatal(err)
	}
	// GraphZero produces one set; GraphPi's generator must offer strictly
	// more choice for the rectangle (|Aut| = 8).
	if len(sets) <= 1 {
		t.Errorf("expected multiple sets for rectangle, got %d", len(sets))
	}
	if err := Validate(p, gz); err != nil {
		t.Errorf("GraphZero set invalid: %v", err)
	}
}

func TestValidateRejectsBadSets(t *testing.T) {
	p := pattern.Rectangle()
	// Too weak: a single restriction cannot kill all 7 non-identity
	// automorphisms of the rectangle.
	if err := Validate(p, Set{{0, 1}}); err == nil {
		t.Error("undersized set accepted")
	}
	// Contradictory.
	if err := Validate(p, Set{{0, 1}, {1, 0}}); err == nil {
		t.Error("contradictory set accepted")
	}
	// Over-restrictive: a full chain keeps only 1 of 24 orders but
	// 24/8 = 3 are required.
	if err := Validate(p, Set{{0, 1}, {1, 2}, {2, 3}}); err == nil {
		t.Error("over-restrictive set accepted")
	}
}

func TestRandomPatternsRoundTrip(t *testing.T) {
	// Property: for random connected patterns, Generate yields only sets
	// that Validate accepts, and the GraphZero set is valid too.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 31))
		n := 3 + r.IntN(4)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.55 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		p := pattern.MustNew(n, edges, "rand")
		if !p.Connected() {
			return true // only connected patterns are matched
		}
		sets, err := Generate(p, Options{MaxSets: 8})
		if err != nil {
			return false
		}
		for _, s := range sets {
			if Validate(p, s) != nil {
				return false
			}
		}
		return Validate(p, GraphZeroSet(p)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	s := Set{{1, 0}}
	if s.String() != "{id(1)>id(0)}" {
		t.Errorf("String = %q", s.String())
	}
	if (Set{}).String() != "{}" {
		t.Errorf("empty String = %q", (Set{}).String())
	}
}

func TestLargeGroupClique7(t *testing.T) {
	// K7 has 5040 automorphisms; generation must stay bounded and correct.
	p := pattern.Clique(7)
	sets, err := Generate(p, Options{MaxSets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) == 0 {
		t.Fatal("no sets for K7")
	}
	for _, s := range sets {
		if err := Validate(p, s); err != nil {
			t.Error(err)
		}
		// A complete set for K_n must pin a total order: n-1 restrictions
		// at minimum (and exactly n-1 when it is a chain).
		if len(s) < 6 {
			t.Errorf("K7 set too small: %v", s)
		}
	}
}
