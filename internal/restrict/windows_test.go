package restrict

import "testing"

func TestBakeWindowsAttachesToLaterPosition(t *testing.T) {
	// Pattern vertices 0..2 scheduled in reverse: pos = [2, 1, 0].
	pos := []uint8{2, 1, 0}
	// id(v0) > id(v1): v0 sits at position 2, v1 at position 1 → the later
	// position 2 gets a lower bound from position 1.
	s := Set{{First: 0, Second: 1}}
	w := BakeWindows(s, pos)
	if len(w.Lowers[2]) != 1 || w.Lowers[2][0] != 1 {
		t.Errorf("Lowers[2] = %v, want [1]", w.Lowers[2])
	}
	// id(v2) > id(v1): v2 sits at position 0, v1 at position 1 → the later
	// position 1 gets an upper bound from position 0.
	s = Set{{First: 2, Second: 1}}
	w = BakeWindows(s, pos)
	if len(w.Uppers[1]) != 1 || w.Uppers[1][0] != 0 {
		t.Errorf("Uppers[1] = %v, want [0]", w.Uppers[1])
	}
}

func TestWindowsTotalOrder(t *testing.T) {
	identity := func(n int) []uint8 {
		p := make([]uint8, n)
		for i := range p {
			p[i] = uint8(i)
		}
		return p
	}
	chain := func(n int) Set {
		var s Set
		for i := 1; i < n; i++ {
			s = append(s, Restriction{First: uint8(i), Second: uint8(i - 1)})
		}
		return s
	}
	cases := []struct {
		name string
		n    int
		s    Set
		want bool
	}{
		{"empty-1", 1, nil, true}, // a single position is trivially ordered
		{"empty-3", 3, nil, false},
		{"chain-3", 3, chain(3), true},
		{"chain-12", 12, chain(12), true},
		// Direct pairwise total order, not just a chain.
		{"pairs-3", 3, Set{{First: 1, Second: 0}, {First: 2, Second: 0}, {First: 2, Second: 1}}, true},
		// One missing comparison.
		{"partial-3", 3, Set{{First: 1, Second: 0}}, false},
		// Star order: 2 above both, but 0 and 1 incomparable.
		{"star-3", 3, Set{{First: 2, Second: 0}, {First: 2, Second: 1}}, false},
	}
	for _, tc := range cases {
		w := BakeWindows(tc.s, identity(tc.n))
		if got := w.TotalOrder(); got != tc.want {
			t.Errorf("%s: TotalOrder() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestWindowsTotalOrderLargePatternsRejected(t *testing.T) {
	n := 40 // beyond the 32-position bitmask
	pos := make([]uint8, n)
	var s Set
	for i := range pos {
		pos[i] = uint8(i)
		if i > 0 {
			s = append(s, Restriction{First: uint8(i), Second: uint8(i - 1)})
		}
	}
	if BakeWindows(s, pos).TotalOrder() {
		t.Error("TotalOrder() accepted a pattern beyond the bitmask width")
	}
}
