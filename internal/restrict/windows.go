package restrict

// This file bakes a restriction set into per-depth candidate windows, the
// form both execution tiers consume. A restriction id(u) > id(v) attaches to
// whichever of the two schedule positions binds later: seen from that loop,
// the earlier bound vertex is a lower or upper limit on every candidate. The
// engine (and the compiled kernels) then narrow each sorted candidate set
// with two binary searches instead of re-checking restrictions per
// candidate — the paper's break/continue pruning, hoisted out of the loop
// body.

// Windows holds the baked restriction bounds of one schedule.
type Windows struct {
	// Lowers[d] lists positions p with restriction id(v_d) > id(v_p):
	// candidates at depth d must exceed bound[p].
	Lowers [][]uint8
	// Uppers[d] lists positions p with restriction id(v_p) > id(v_d):
	// candidates at depth d must stay below bound[p].
	Uppers [][]uint8
}

// BakeWindows maps a restriction set (expressed on original pattern
// vertices) through pos — the original-vertex → schedule-position map — and
// attaches each restriction to its later position's loop. Restrictions are
// assumed in range (validated by the caller alongside the schedule).
func BakeWindows(s Set, pos []uint8) Windows {
	n := len(pos)
	w := Windows{
		Lowers: make([][]uint8, n),
		Uppers: make([][]uint8, n),
	}
	for _, r := range s {
		pf, ps := pos[r.First], pos[r.Second]
		if pf > ps {
			// id(v_pf) > id(v_ps), checked when binding pf (the later).
			w.Lowers[pf] = append(w.Lowers[pf], ps)
		} else {
			// id(v_pf) > id(v_ps) with ps later: bound[pf] is an upper
			// limit for the candidates of ps.
			w.Uppers[ps] = append(w.Uppers[ps], pf)
		}
	}
	return w
}

// TotalOrder reports whether the windows' transitive closure orders every
// pair of positions exactly one way — the condition under which a symmetric
// pattern (a clique) is counted exactly once per embedding class and a
// direction-free generated kernel is interchangeable with the restricted
// loop nest. Inconsistent sets (a cycle in the closure) report false.
func (w Windows) TotalOrder() bool {
	n := len(w.Lowers)
	if n > 32 {
		return false // no generated kernel is that wide; avoid the O(n³) walk
	}
	// gt[d] is the bitmask of positions known smaller than d.
	gt := make([]uint32, n)
	for d := 0; d < n; d++ {
		for _, p := range w.Lowers[d] {
			gt[d] |= 1 << p
		}
		for _, p := range w.Uppers[d] {
			gt[p] |= 1 << uint(d)
		}
	}
	for { // transitive closure to a fixed point
		changed := false
		for d := 0; d < n; d++ {
			m := gt[d]
			for rest := m; rest != 0; rest &= rest - 1 {
				p := bitIndex(rest)
				m |= gt[p]
			}
			if m != gt[d] {
				gt[d] = m
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			iGtJ := gt[i]&(1<<j) != 0
			jGtI := gt[j]&(1<<i) != 0
			if iGtJ == jGtI { // incomparable, or a cycle
				return false
			}
		}
	}
	return true
}

// bitIndex returns the index of the lowest set bit of m (m != 0).
func bitIndex(m uint32) int {
	i := 0
	for m&1 == 0 {
		m >>= 1
		i++
	}
	return i
}
