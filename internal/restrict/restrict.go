// Package restrict implements GraphPi's 2-cycle based automorphism
// elimination (paper §IV-A, Algorithm 1).
//
// A restriction id(u) > id(v) is a partial order on the data-graph ids bound
// to two pattern vertices. A set of restrictions is *complete* when, out of
// each class of automorphic embeddings, exactly one member satisfies the
// whole set — eliminating all redundant computation without losing results.
//
// Unlike prior systems (GraphZero generates exactly one set), Algorithm 1
// generates *many* complete sets by branching over the 2-cycles of the
// pattern's automorphism group; the performance model then picks the set
// that prunes the chosen schedule best. This package also implements the
// GraphZero-style single-set generator used as a baseline in the paper's
// Table II.
package restrict

import (
	"fmt"
	"sort"
	"strings"

	"graphpi/internal/pattern"
	"graphpi/internal/perm"
)

// Restriction asserts id(First) > id(Second) for the data-graph vertices
// bound to the two pattern vertices.
type Restriction struct {
	First, Second uint8
}

func (r Restriction) String() string {
	return fmt.Sprintf("id(%d)>id(%d)", r.First, r.Second)
}

// Set is a set of restrictions, kept sorted in canonical order.
type Set []Restriction

// Canonicalize sorts the set and removes duplicates, returning the receiver.
func (s Set) Canonicalize() Set {
	sort.Slice(s, func(i, j int) bool {
		if s[i].First != s[j].First {
			return s[i].First < s[j].First
		}
		return s[i].Second < s[j].Second
	})
	out := s[:0]
	for i, r := range s {
		if i == 0 || r != s[i-1] {
			out = append(out, r)
		}
	}
	return out
}

// Clone returns a copy of s.
func (s Set) Clone() Set { return append(Set(nil), s...) }

func (s Set) String() string {
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// key returns a canonical map key; s must already be canonicalized.
func (s Set) key() string {
	b := make([]byte, 0, 2*len(s))
	for _, r := range s {
		b = append(b, r.First, r.Second)
	}
	return string(b)
}

// Consistent reports whether the restriction set is satisfiable on its own,
// i.e. its ">" digraph is acyclic. An inconsistent set would eliminate every
// embedding including the canonical representative.
func (s Set) Consistent(n int) bool {
	return acyclic(n, func(emit func(a, b uint8)) {
		for _, r := range s {
			emit(r.First, r.Second)
		}
	})
}

// Eliminates reports whether the permutation p (an automorphism of the
// pattern) is eliminated by the restriction set: no id assignment can
// satisfy the restrictions for both an embedding and its p-image. This is
// the complement of the paper's no_conflict: the directed graph with edges
// (a→b) and (p(a)→p(b)) for every restriction id(a)>id(b) has a cycle.
func (s Set) Eliminates(p perm.Perm) bool {
	return !acyclic(len(p), func(emit func(a, b uint8)) {
		for _, r := range s {
			emit(r.First, r.Second)
			emit(p[r.First], p[r.Second])
		}
	})
}

// acyclic runs Kahn's algorithm over the ≤ MaxVertices-node digraph whose
// edges are supplied by the edges callback.
func acyclic(n int, edges func(emit func(a, b uint8))) bool {
	var adjMask [pattern.MaxVertices + 4]uint16
	var indeg [pattern.MaxVertices + 4]int8
	edges(func(a, b uint8) {
		if adjMask[a]&(1<<b) == 0 {
			adjMask[a] |= 1 << b
			indeg[b]++
		}
	})
	var stack [pattern.MaxVertices + 4]uint8
	top := 0
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			stack[top] = uint8(v)
			top++
		}
	}
	removed := 0
	for top > 0 {
		top--
		v := stack[top]
		removed++
		m := adjMask[v]
		for m != 0 {
			w := uint8(trailingZeros16(m))
			m &= m - 1
			indeg[w]--
			if indeg[w] == 0 {
				stack[top] = w
				top++
			}
		}
	}
	return removed == n
}

func trailingZeros16(x uint16) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Options tunes Generate. The zero value applies the defaults below.
type Options struct {
	// MaxSets caps the number of restriction sets returned (0 → 64). The
	// branching recursion of Algorithm 1 can produce a combinatorial number
	// of equivalent sets for highly symmetric patterns (K7 has 5040
	// automorphisms); the performance model only needs a diverse sample.
	MaxSets int
	// FirstPermOnly restricts branching to the 2-cycles of the first
	// remaining non-identity permutation instead of all remaining
	// permutations. Automatically enabled for groups larger than
	// firstPermThreshold to bound the search.
	FirstPermOnly bool
}

const (
	defaultMaxSets     = 64
	firstPermThreshold = 64
)

// Generate runs Algorithm 1: it returns multiple complete restriction sets
// for the pattern, each validated to reduce the automorphism count to
// exactly one. The result is deterministic and sorted (smallest sets first).
// A pattern with a trivial automorphism group yields one empty set.
func Generate(pat *pattern.Pattern, opts Options) ([]Set, error) {
	if opts.MaxSets <= 0 {
		opts.MaxSets = defaultMaxSets
	}
	auts := pat.Automorphisms()
	if len(auts) > firstPermThreshold {
		opts.FirstPermOnly = true
	}
	g := &generator{
		n:          pat.N(),
		auts:       auts,
		wantOrders: perm.Factorial(pat.N()) / int64(len(auts)),
		opts:       opts,
		visited:    map[string]bool{},
		results:    map[string]Set{},
	}
	g.generate(auts, nil)
	if len(g.results) == 0 {
		return nil, fmt.Errorf("restrict: no valid restriction set found for %s", pat)
	}
	out := make([]Set, 0, len(g.results))
	for _, s := range g.results {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i].key() < out[j].key()
	})
	// Validate every returned set on the complete graph (paper's validate
	// step); construction should make this a no-op, so a failure is a bug.
	for _, s := range out {
		if err := Validate(pat, s); err != nil {
			return nil, fmt.Errorf("restrict: generated set failed validation: %w", err)
		}
	}
	return out, nil
}

type generator struct {
	n          int
	auts       []perm.Perm
	wantOrders int64 // n!/|Aut|: survivors a complete-and-exact set keeps
	opts       Options
	visited    map[string]bool
	results    map[string]Set
}

// generate is the recursive core of Algorithm 1. pg is the sub-multiset of
// automorphisms not yet eliminated (always containing the identity);
// res is the canonicalized restriction set built so far.
func (g *generator) generate(pg []perm.Perm, res Set) {
	if len(g.results) >= g.opts.MaxSets {
		return
	}
	if len(pg) <= 1 {
		// Only the identity remains: res eliminates every automorphism.
		// Per Algorithm 1 this leaf still runs validate(res_set): a set can
		// kill all automorphisms yet also kill entire embedding classes
		// (keep fewer than n!/|Aut| relative orders); such leaves return ∅.
		if CountOrderSurvivors(g.n, res) == g.wantOrders {
			g.results[res.key()] = res.Clone()
		}
		return
	}
	candidates := g.candidates(pg)
	for _, cand := range candidates {
		if len(g.results) >= g.opts.MaxSets {
			return
		}
		next := append(res.Clone(), cand).Canonicalize()
		if len(next) == len(res) {
			continue // duplicate restriction
		}
		k := next.key()
		if g.visited[k] {
			continue
		}
		g.visited[k] = true
		if !next.Consistent(g.n) {
			continue // the set itself became contradictory
		}
		var remaining []perm.Perm
		for _, p := range pg {
			if !next.Eliminates(p) {
				remaining = append(remaining, p)
			}
		}
		g.generate(remaining, next)
	}
}

// candidates returns the branching choices at this node: the oriented
// 2-cycle pairs of the remaining permutations (the paper's essential
// elements). If no remaining permutation has a 2-cycle in its disjoint-cycle
// decomposition (possible only for groups such as C3 that contain no
// involution with a transposition), it falls back to (v, p(v)) pairs of the
// first non-identity permutation, which the DAG-based elimination handles
// soundly; validation still guarantees correctness.
func (g *generator) candidates(pg []perm.Perm) []Restriction {
	seen := map[Restriction]bool{}
	var out []Restriction
	add := func(a, b uint8) {
		for _, r := range []Restriction{{a, b}, {b, a}} {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	for _, p := range pg {
		if p.IsIdentity() {
			continue
		}
		for _, tc := range p.TwoCycles() {
			add(tc[0], tc[1])
		}
		if g.opts.FirstPermOnly && len(out) > 0 {
			break
		}
	}
	if len(out) == 0 {
		for _, p := range pg {
			if p.IsIdentity() {
				continue
			}
			for v := range p {
				if int(p[v]) != v {
					add(uint8(v), p[v])
				}
			}
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].Second < out[j].Second
	})
	return out
}

// CountOrderSurvivors counts the permutations σ of {0,…,n-1} (interpreted
// as relative magnitudes of the ids bound to the n pattern vertices) that
// satisfy every restriction: σ(First) > σ(Second). This implements the
// paper's validate step in closed combinatorial form: matching a pattern
// with n vertices on the complete graph K_n admits every injective map, so
// the restricted count must equal n!/|Aut|.
func CountOrderSurvivors(n int, s Set) int64 {
	var count int64
	perm.ForEach(n, func(sigma perm.Perm) bool {
		for _, r := range s {
			if sigma[r.First] <= sigma[r.Second] {
				return true // filtered; continue enumeration
			}
		}
		count++
		return true
	})
	return count
}

// Validate checks that the restriction set is complete and exact for the
// pattern: every non-identity automorphism is eliminated, the identity
// survives, and the complete-graph count equals n!/|Aut| (paper §IV-A).
func Validate(pat *pattern.Pattern, s Set) error {
	n := pat.N()
	if !s.Consistent(n) {
		return fmt.Errorf("restrict: set %v is self-contradictory", s)
	}
	auts := pat.Automorphisms()
	for _, a := range auts {
		if a.IsIdentity() {
			if s.Eliminates(a) {
				return fmt.Errorf("restrict: set %v eliminates the identity", s)
			}
			continue
		}
		if !s.Eliminates(a) {
			return fmt.Errorf("restrict: set %v fails to eliminate automorphism %v", s, a)
		}
	}
	want := perm.Factorial(n) / int64(len(auts))
	if got := CountOrderSurvivors(n, s); got != want {
		return fmt.Errorf("restrict: set %v keeps %d of %d relative orders, want %d",
			s, got, perm.Factorial(n), want)
	}
	return nil
}

// GraphZeroSet generates the single canonical restriction set of the
// GraphZero baseline via a stabilizer chain: for each vertex v in order, add
// id(v) < id(w) for every w ≠ v in v's orbit under the current stabilizer
// subgroup, then descend into the stabilizer of v. This reproduces the
// restriction output GraphPi's evaluation compares against in Table II.
func GraphZeroSet(pat *pattern.Pattern) Set {
	group := pat.Automorphisms()
	var out Set
	n := pat.N()
	for v := 0; v < n && len(group) > 1; v++ {
		inOrbit := map[uint8]bool{}
		for _, p := range group {
			if p[v] != uint8(v) {
				inOrbit[p[v]] = true
			}
		}
		for w := range inOrbit {
			// id(v) < id(w)  ⇔  id(w) > id(v)
			out = append(out, Restriction{First: w, Second: uint8(v)})
		}
		var stab []perm.Perm
		for _, p := range group {
			if p[v] == uint8(v) {
				stab = append(stab, p)
			}
		}
		group = stab
	}
	return out.Canonicalize()
}
