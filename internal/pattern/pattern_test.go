package pattern

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"graphpi/internal/perm"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil, ""); err == nil {
		t.Error("0 vertices accepted")
	}
	if _, err := New(MaxVertices+1, nil, ""); err == nil {
		t.Error("too many vertices accepted")
	}
	if _, err := New(3, [][2]int{{0, 0}}, ""); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := New(3, [][2]int{{0, 3}}, ""); err == nil {
		t.Error("out-of-range edge accepted")
	}
	p, err := New(3, [][2]int{{0, 1}, {1, 0}, {0, 1}}, "dup")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEdges() != 1 {
		t.Errorf("duplicate edges counted: %d", p.NumEdges())
	}
}

func TestBasicAccessors(t *testing.T) {
	h := House()
	if h.N() != 5 || h.NumEdges() != 6 {
		t.Errorf("House = %dv %de, want 5v 6e", h.N(), h.NumEdges())
	}
	if !h.HasEdge(0, 1) || h.HasEdge(3, 4) {
		t.Error("House edges wrong")
	}
	if h.Degree(0) != 3 || h.Degree(4) != 2 {
		t.Errorf("House degrees: d(0)=%d d(4)=%d", h.Degree(0), h.Degree(4))
	}
	if len(h.Edges()) != 6 {
		t.Errorf("Edges() length %d", len(h.Edges()))
	}
	if h.String() != "House(5v,6e)" {
		t.Errorf("String = %q", h.String())
	}
}

func TestParseAdjacency(t *testing.T) {
	tri, err := ParseAdjacency(3, "011101110", "tri")
	if err != nil {
		t.Fatal(err)
	}
	if !tri.Isomorphic(Triangle()) {
		t.Error("parsed triangle not isomorphic to Triangle()")
	}
	// Round trip.
	h := House()
	h2, err := ParseAdjacency(5, h.AdjacencyString(), "")
	if err != nil {
		t.Fatal(err)
	}
	if h2.AdjacencyString() != h.AdjacencyString() {
		t.Error("adjacency round trip mismatch")
	}
	for _, bad := range []struct {
		n int
		s string
	}{
		{3, "01110111"},   // wrong length
		{2, "0110"},       // asymmetric? actually symmetric; use diagonal case below
		{2, "1001"},       // nonzero diagonal
		{2, "0100"},       // asymmetric
		{2, "01x0"},       // bad char
		{3, "011101110x"}, // wrong length again
	} {
		if _, err := ParseAdjacency(bad.n, bad.s, ""); err == nil && bad.s != "0110" {
			t.Errorf("ParseAdjacency(%d, %q) accepted", bad.n, bad.s)
		}
	}
}

func TestConnectivity(t *testing.T) {
	if !House().Connected() || !Pentagon().Connected() || !Cycle6Tri().Connected() {
		t.Error("connected pattern reported disconnected")
	}
	disc := MustNew(4, [][2]int{{0, 1}, {2, 3}}, "disc")
	if disc.Connected() {
		t.Error("disconnected pattern reported connected")
	}
	single := MustNew(1, nil, "v")
	if !single.Connected() {
		t.Error("single vertex not connected")
	}
}

func TestPrefixConnected(t *testing.T) {
	h := House() // square 0-2-3-1 + roof 0-1-4
	if !h.PrefixConnected([]int{0, 1, 2, 3, 4}) {
		t.Error("natural order should be prefix-connected")
	}
	// 2 and 4 are not adjacent, and {2,4} ∪ {} has no edge to start from.
	if h.PrefixConnected([]int{2, 4, 0, 1, 3}) {
		t.Error("order starting 2,4 should fail prefix connectivity")
	}
	// Paper's Phase-1 example: searching C, D then E fails for the House
	// because E is adjacent to neither C nor D. With our labels C,D = 2,3
	// and E = 4.
	if h.PrefixConnected([]int{2, 3, 4, 0, 1}) {
		t.Error("paper's inefficient schedule C,D,E… not eliminated")
	}
}

func TestMaxIndependentSetSize(t *testing.T) {
	cases := []struct {
		p    *Pattern
		want int
	}{
		{Triangle(), 1},
		{Rectangle(), 2},
		{Pentagon(), 2},
		{House(), 2},     // paper: k = 2 for the House
		{Cycle6Tri(), 3}, // paper: k = 3 (D, E, F)
		{P4(), 3},        // K2,3: one side
		{Prism(), 2},
		{Clique(7), 1},
		{CliqueMinus(7), 2},
		{StarN(6), 5},
	}
	for _, c := range cases {
		if got := c.p.MaxIndependentSetSize(); got != c.want {
			t.Errorf("%s: k = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestAutomorphismCounts(t *testing.T) {
	cases := []struct {
		p    *Pattern
		want int
	}{
		{Triangle(), 6},
		{Rectangle(), 8}, // paper Figure 4(c): 8 permutations
		{Pentagon(), 10},
		{House(), 2},
		{Cycle6Tri(), 2},
		{P4(), 12}, // K2,3: 2! × 3!
		{Prism(), 12},
		{Clique(5), 120},
		{CliqueMinus(5), 12}, // 3! × 2
		{StarN(5), 24},
		{PathN(4), 2},
	}
	for _, c := range cases {
		auts := c.p.Automorphisms()
		if len(auts) != c.want {
			t.Errorf("%s: |Aut| = %d, want %d", c.p, len(auts), c.want)
		}
		if !perm.IsGroup(auts) {
			t.Errorf("%s: automorphisms do not form a group", c.p)
		}
	}
}

func TestAutomorphismsAreAutomorphisms(t *testing.T) {
	// Property: for random patterns, every returned permutation preserves
	// edges and non-edges, and the identity is always included.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		n := 2 + r.IntN(5)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.5 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		p := MustNew(n, edges, "rand")
		auts := p.Automorphisms()
		idFound := false
		for _, a := range auts {
			if a.IsIdentity() {
				idFound = true
			}
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if p.HasEdge(u, v) != p.HasEdge(int(a[u]), int(a[v])) {
						return false
					}
				}
			}
		}
		return idFound && perm.IsGroup(auts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRelabel(t *testing.T) {
	h := House()
	order := []int{4, 3, 2, 1, 0}
	r := h.Relabel(order)
	if !r.Isomorphic(h) {
		t.Error("relabeled pattern not isomorphic")
	}
	for u := 0; u < h.N(); u++ {
		for v := 0; v < h.N(); v++ {
			if h.HasEdge(u, v) != r.HasEdge(order[u], order[v]) {
				t.Fatalf("relabel broke edge (%d,%d)", u, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Relabel with wrong length did not panic")
		}
	}()
	h.Relabel([]int{0, 1})
}

func TestIsomorphic(t *testing.T) {
	if !Pentagon().Isomorphic(CycleN(5)) {
		t.Error("Pentagon !~ C5")
	}
	if Pentagon().Isomorphic(House()) {
		t.Error("Pentagon ~ House")
	}
	if Triangle().Isomorphic(PathN(3)) {
		t.Error("Triangle ~ P3 (different edge count)")
	}
	if StarN(4).Isomorphic(PathN(4)) {
		t.Error("star ~ path (different degree multiset)")
	}
	// Same degree sequence, different structure: C6 vs two triangles is
	// disconnected, use C6 vs prism? Prism has 9 edges. Use K3,3 vs prism:
	// both 3-regular on 6 vertices, not isomorphic.
	if CompleteBipartite(3, 3).Isomorphic(Prism()) {
		t.Error("K3,3 ~ Prism")
	}
}

func TestCanonicalKey(t *testing.T) {
	a := Pentagon()
	b := MustNew(5, [][2]int{{2, 4}, {4, 1}, {1, 3}, {3, 0}, {0, 2}}, "relabeled-c5")
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Error("isomorphic patterns have different canonical keys")
	}
	if a.CanonicalKey() == House().CanonicalKey() {
		t.Error("non-isomorphic patterns share canonical key")
	}
}

func TestAllConnectedMotifCounts(t *testing.T) {
	// Known counts of connected graphs on n unlabeled vertices.
	want := map[int]int{2: 1, 3: 2, 4: 6, 5: 21}
	for n, w := range want {
		got := AllConnected(n)
		if len(got) != w {
			t.Errorf("AllConnected(%d) = %d patterns, want %d", n, len(got), w)
		}
		keys := map[string]bool{}
		for _, p := range got {
			if !p.Connected() {
				t.Errorf("AllConnected(%d) yielded disconnected %s", n, p)
			}
			k := p.CanonicalKey()
			if keys[k] {
				t.Errorf("AllConnected(%d) yielded duplicate %s", n, p)
			}
			keys[k] = true
		}
	}
}

func TestEvaluationPatterns(t *testing.T) {
	ps := EvaluationPatterns()
	if len(ps) != 6 {
		t.Fatalf("EvaluationPatterns = %d, want 6", len(ps))
	}
	sizes := []int{5, 5, 6, 5, 6, 7}
	for i, p := range ps {
		if p.N() != sizes[i] {
			t.Errorf("P%d has %d vertices, want %d", i+1, p.N(), sizes[i])
		}
		if !p.Connected() {
			t.Errorf("P%d disconnected", i+1)
		}
		if p.Name() == "" {
			t.Errorf("P%d unnamed", i+1)
		}
	}
}

func TestWithName(t *testing.T) {
	h := House()
	r := h.WithName("renamed")
	if r.Name() != "renamed" || h.Name() != "House" {
		t.Error("WithName mutated original or failed to rename")
	}
	if r.AdjacencyString() != h.AdjacencyString() {
		t.Error("WithName changed structure")
	}
}
