// Package pattern represents the small query graphs ("patterns") GraphPi
// searches for, along with the structural analyses the rest of the pipeline
// needs: automorphism enumeration (feeding the restriction generator of
// §IV-A), connectivity of vertex prefixes (Phase 1 of the schedule generator,
// §IV-B) and the maximum independent set size k (Phase 2 and the IEP
// optimization, §IV-B/D).
//
// Patterns are tiny (the paper evaluates 5–7 vertices) so everything here is
// allowed to be exponential in the pattern size; nothing in this package
// touches the data graph.
package pattern

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"graphpi/internal/perm"
)

// MaxVertices is the largest supported pattern size. Brute-force
// automorphism enumeration is n! so 12 is already generous; the paper's
// patterns have at most 7 vertices.
const MaxVertices = 12

// Pattern is an undirected, unlabeled query graph over vertices
// {0, …, N()-1}, stored as per-vertex neighbor bitmasks. Patterns are
// immutable after construction.
type Pattern struct {
	n    int
	adj  []uint16 // adj[i] has bit j set iff edge {i,j} exists
	name string
}

// New builds a pattern with n vertices and the given undirected edges.
// Self-loops and out-of-range endpoints are rejected; duplicate edges are
// tolerated.
func New(n int, edges [][2]int, name string) (*Pattern, error) {
	if n < 1 || n > MaxVertices {
		return nil, fmt.Errorf("pattern: %d vertices out of range [1,%d]", n, MaxVertices)
	}
	p := &Pattern{n: n, adj: make([]uint16, n), name: name}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("pattern: edge {%d,%d} out of range for %d vertices", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("pattern: self-loop at %d", u)
		}
		p.adj[u] |= 1 << v
		p.adj[v] |= 1 << u
	}
	return p, nil
}

// MustNew is New, panicking on error; for statically known patterns.
func MustNew(n int, edges [][2]int, name string) *Pattern {
	p, err := New(n, edges, name)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseAdjacency builds a pattern from a row-major adjacency-matrix string
// of '0'/'1' characters of length n², the input format the GraphPi reference
// implementation uses. The matrix must be symmetric with a zero diagonal.
func ParseAdjacency(n int, matrix string, name string) (*Pattern, error) {
	if len(matrix) != n*n {
		return nil, fmt.Errorf("pattern: adjacency string has %d chars, want %d", len(matrix), n*n)
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := matrix[i*n+j]
			if c != '0' && c != '1' {
				return nil, fmt.Errorf("pattern: bad adjacency char %q", c)
			}
			set := c == '1'
			if i == j && set {
				return nil, fmt.Errorf("pattern: nonzero diagonal at %d", i)
			}
			if set != (matrix[j*n+i] == '1') {
				return nil, fmt.Errorf("pattern: adjacency not symmetric at (%d,%d)", i, j)
			}
			if set && i < j {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return New(n, edges, name)
}

// N returns the number of pattern vertices.
func (p *Pattern) N() int { return p.n }

// Name returns the display name ("" if unnamed).
func (p *Pattern) Name() string { return p.name }

// WithName returns a copy of p carrying the given display name.
func (p *Pattern) WithName(name string) *Pattern {
	q := *p
	q.adj = append([]uint16(nil), p.adj...)
	q.name = name
	return &q
}

// HasEdge reports whether {u, v} is an edge.
func (p *Pattern) HasEdge(u, v int) bool { return p.adj[u]&(1<<v) != 0 }

// Degree returns the degree of vertex v.
func (p *Pattern) Degree(v int) int { return bits.OnesCount16(p.adj[v]) }

// NeighborMask returns the bitmask of v's neighbors.
func (p *Pattern) NeighborMask(v int) uint16 { return p.adj[v] }

// NumEdges returns the number of undirected edges.
func (p *Pattern) NumEdges() int {
	total := 0
	for _, m := range p.adj {
		total += bits.OnesCount16(m)
	}
	return total / 2
}

// Edges returns the edge list with u < v, sorted lexicographically.
func (p *Pattern) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < p.n; u++ {
		m := p.adj[u] >> (u + 1) << (u + 1) // neighbors > u
		for m != 0 {
			v := bits.TrailingZeros16(m)
			out = append(out, [2]int{u, v})
			m &= m - 1
		}
	}
	return out
}

// Connected reports whether the pattern is connected. Pattern matching on a
// disconnected pattern is a cross product of independent subproblems, which
// GraphPi (like the systems it compares against) does not target.
func (p *Pattern) Connected() bool {
	return p.n > 0 && p.connectedSubset((1<<p.n)-1)
}

// PrefixConnected reports whether the vertices {order[0..i]} induce a
// connected subgraph for every prefix i — the Phase-1 criterion of the
// schedule generator ("the subgraph formed by the first i searched vertices
// must be a connected graph").
func (p *Pattern) PrefixConnected(order []int) bool {
	var mask uint16
	for i, v := range order {
		if i > 0 && p.adj[v]&mask == 0 {
			return false
		}
		mask |= 1 << v
	}
	return true
}

// connectedSubset reports whether the subgraph induced by the vertex bitmask
// is connected (an empty mask is vacuously connected).
func (p *Pattern) connectedSubset(mask uint16) bool {
	if mask == 0 {
		return true
	}
	start := uint16(1) << bits.TrailingZeros16(mask)
	visited := start
	frontier := start
	for frontier != 0 {
		next := uint16(0)
		m := frontier
		for m != 0 {
			v := bits.TrailingZeros16(m)
			next |= p.adj[v] & mask
			m &= m - 1
		}
		frontier = next &^ visited
		visited |= frontier
	}
	return visited == mask
}

// IndependentMask reports whether the vertex bitmask induces an independent
// set (no edges inside).
func (p *Pattern) IndependentMask(mask uint16) bool {
	m := mask
	for m != 0 {
		v := bits.TrailingZeros16(m)
		if p.adj[v]&mask != 0 {
			return false
		}
		m &= m - 1
	}
	return true
}

// MaxIndependentSetSize returns k, the largest number of pairwise
// non-adjacent pattern vertices. Phase 2 of the schedule generator requires
// the last k searched vertices to be pairwise non-adjacent, and the IEP
// optimization replaces the innermost k loops with inclusion–exclusion.
func (p *Pattern) MaxIndependentSetSize() int {
	best := 0
	for mask := uint16(0); mask < 1<<p.n; mask++ {
		if c := bits.OnesCount16(mask); c > best && p.IndependentMask(mask) {
			best = c
		}
	}
	return best
}

// Automorphisms enumerates all automorphisms of the pattern by checking each
// of the n! vertex permutations for edge preservation. The result always
// contains the identity and forms a permutation group (verified in tests).
func (p *Pattern) Automorphisms() []perm.Perm {
	var auts []perm.Perm
	perm.ForEach(p.n, func(q perm.Perm) bool {
		if p.isAutomorphism(q) {
			auts = append(auts, q.Clone())
		}
		return true
	})
	return auts
}

// isAutomorphism reports whether q preserves the edge relation. Since q is a
// bijection on the same vertex set and edge counts match, preservation in
// one direction suffices.
func (p *Pattern) isAutomorphism(q perm.Perm) bool {
	for u := 0; u < p.n; u++ {
		m := p.adj[u]
		for m != 0 {
			v := bits.TrailingZeros16(m)
			if !p.HasEdge(int(q[u]), int(q[v])) {
				return false
			}
			m &= m - 1
		}
	}
	return true
}

// Relabel returns the pattern with vertex i renamed to order[i]. order must
// be a permutation of {0,…,n-1}. Schedules are implemented by relabeling the
// pattern so that search order equals vertex order.
func (p *Pattern) Relabel(order []int) *Pattern {
	if len(order) != p.n {
		panic("pattern: relabel order has wrong length")
	}
	q := &Pattern{n: p.n, adj: make([]uint16, p.n), name: p.name}
	for u := 0; u < p.n; u++ {
		m := p.adj[u]
		for m != 0 {
			v := bits.TrailingZeros16(m)
			q.adj[order[u]] |= 1 << order[v]
			m &= m - 1
		}
	}
	return q
}

// Isomorphic reports whether p and q are isomorphic, by brute force over
// vertex bijections. Usable only at pattern scale, which is the point.
func (p *Pattern) Isomorphic(q *Pattern) bool {
	if p.n != q.n || p.NumEdges() != q.NumEdges() {
		return false
	}
	// Degree multiset must match.
	dp := make([]int, p.n)
	dq := make([]int, q.n)
	for i := 0; i < p.n; i++ {
		dp[i], dq[i] = p.Degree(i), q.Degree(i)
	}
	sort.Ints(dp)
	sort.Ints(dq)
	for i := range dp {
		if dp[i] != dq[i] {
			return false
		}
	}
	found := false
	perm.ForEach(p.n, func(f perm.Perm) bool {
		ok := true
		for u := 0; u < p.n && ok; u++ {
			m := p.adj[u]
			for m != 0 {
				v := bits.TrailingZeros16(m)
				if !q.HasEdge(int(f[u]), int(f[v])) {
					ok = false
					break
				}
				m &= m - 1
			}
		}
		if ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// CanonicalKey returns a string that is equal for isomorphic patterns:
// the lexicographically smallest adjacency-matrix encoding over all vertex
// relabelings. Exponential, fine at pattern scale; used to deduplicate
// pattern sets (e.g. the motif census example).
func (p *Pattern) CanonicalKey() string {
	best := ""
	order := make([]int, p.n)
	perm.ForEach(p.n, func(f perm.Perm) bool {
		for i := range order {
			order[i] = int(f[i])
		}
		enc := p.Relabel(order).AdjacencyString()
		if best == "" || enc < best {
			best = enc
		}
		return true
	})
	return best
}

// AdjacencyString renders the row-major 0/1 adjacency matrix (the
// ParseAdjacency format).
func (p *Pattern) AdjacencyString() string {
	var b strings.Builder
	for i := 0; i < p.n; i++ {
		for j := 0; j < p.n; j++ {
			if p.HasEdge(i, j) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	return b.String()
}

// String renders a compact description like "House(5v,6e)".
func (p *Pattern) String() string {
	name := p.name
	if name == "" {
		name = "pattern"
	}
	return fmt.Sprintf("%s(%dv,%de)", name, p.n, p.NumEdges())
}
