package pattern

import (
	"fmt"
	"strconv"
	"strings"
)

// This file defines the concrete patterns the paper's evaluation uses.
//
// Figure 7 of the paper is an image, so the exact glyphs of P1–P6 are not
// recoverable from the text. The definitions below satisfy every textual
// constraint the paper states (see DESIGN.md §3 for the full justification):
//
//   - P1, P2 are "also used in GraphZero" and relatively simple → House (the
//     paper's own running example, Figure 5) and Pentagon.
//   - P3 is pinned exactly by Figure 6's pseudocode: the Cycle-6-Tri pattern
//     with schedule A→B→C→D→E→F, candidate sets S1=N(A)∩N(B), S2=N(A)∩N(C),
//     S3=N(B)∩N(C), k = 3.
//   - P4's "top 4 vertices" form a rectangle (§V-C) → K_{2,3}, whose model
//     prediction indeed requires rectangle counts the model approximates
//     with triangle counts.
//   - P5, P6 are larger/denser with small k and the largest preprocessing
//     cost (Table III) → triangular prism (6v) and 7-clique minus an edge.

// Triangle returns K3.
func Triangle() *Pattern {
	return MustNew(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, "Triangle")
}

// Rectangle returns the 4-cycle — the pattern of the paper's Figure 4, whose
// automorphism group is the dihedral group of order 8.
func Rectangle() *Pattern {
	return MustNew(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, "Rectangle")
}

// Pentagon returns the 5-cycle (automorphism group of order 10).
func Pentagon() *Pattern {
	return MustNew(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, "Pentagon")
}

// House returns the paper's running example (Figure 5): the rectangle
// A-C-D-B plus the roof triangle A-B-E. In our labeling: square 0-2-3-1 and
// triangle 0-1-4 sharing edge {0,1}.
func House() *Pattern {
	return MustNew(5, [][2]int{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, // square
		{0, 4}, {1, 4}, // roof
	}, "House")
}

// Cycle6Tri returns the pattern of the paper's Figure 6, reconstructed from
// its pseudocode: a 6-cycle D-A-E-C-F-B with chords A-B and A-C. With
// A,B,C,D,E,F = 0..5 the edges are exactly those implied by the candidate
// sets S1 = N(A)∩N(B) (for D), S2 = N(A)∩N(C) (for E), S3 = N(B)∩N(C)
// (for F). Its maximum independent set is {D,E,F}, so k = 3.
func Cycle6Tri() *Pattern {
	return MustNew(6, [][2]int{
		{0, 1}, {0, 2}, // chords A-B, A-C
		{0, 3}, {1, 3}, // D adj A,B
		{0, 4}, {2, 4}, // E adj A,C
		{1, 5}, {2, 5}, // F adj B,C
	}, "Cycle6Tri")
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on one side,
// a..a+b-1 on the other.
func CompleteBipartite(a, b int) *Pattern {
	var edges [][2]int
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			edges = append(edges, [2]int{i, a + j})
		}
	}
	return MustNew(a+b, edges, fmt.Sprintf("K%d,%d", a, b))
}

// Prism returns the triangular prism: triangles {0,1,2} and {3,4,5} joined
// by a perfect matching. 6 vertices, 9 edges, automorphism group of order
// 12, maximum independent set k = 2.
func Prism() *Pattern {
	return MustNew(6, [][2]int{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{0, 3}, {1, 4}, {2, 5},
	}, "Prism")
}

// Clique returns K_n.
func Clique(n int) *Pattern {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return MustNew(n, edges, fmt.Sprintf("K%d", n))
}

// CliqueMinus returns K_n minus the edge {0, 1}.
func CliqueMinus(n int) *Pattern {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if u == 0 && v == 1 {
				continue
			}
			edges = append(edges, [2]int{u, v})
		}
	}
	return MustNew(n, edges, fmt.Sprintf("K%d-e", n))
}

// CycleN returns the n-cycle pattern.
func CycleN(n int) *Pattern {
	var edges [][2]int
	for v := 0; v < n; v++ {
		edges = append(edges, [2]int{v, (v + 1) % n})
	}
	return MustNew(n, edges, fmt.Sprintf("C%d", n))
}

// StarN returns the star with one hub (vertex 0) and n-1 leaves.
func StarN(n int) *Pattern {
	var edges [][2]int
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{0, v})
	}
	return MustNew(n, edges, fmt.Sprintf("S%d", n))
}

// PathN returns the path pattern with n vertices.
func PathN(n int) *Pattern {
	var edges [][2]int
	for v := 0; v+1 < n; v++ {
		edges = append(edges, [2]int{v, v + 1})
	}
	return MustNew(n, edges, fmt.Sprintf("P%dpath", n))
}

// P1 through P6 are the evaluation patterns standing in for the paper's
// Figure 7 (see the file comment and DESIGN.md §3).

// P1 returns evaluation pattern P1 (House).
func P1() *Pattern { return House().WithName("P1-House") }

// P2 returns evaluation pattern P2 (Pentagon).
func P2() *Pattern { return Pentagon().WithName("P2-Pentagon") }

// P3 returns evaluation pattern P3 (Cycle-6-Tri).
func P3() *Pattern { return Cycle6Tri().WithName("P3-Cycle6Tri") }

// P4 returns evaluation pattern P4 (K_{2,3}; its "top 4" vertices form a
// rectangle).
func P4() *Pattern { return CompleteBipartite(2, 3).WithName("P4-K23") }

// P5 returns evaluation pattern P5 (triangular prism).
func P5() *Pattern { return Prism().WithName("P5-Prism") }

// P6 returns evaluation pattern P6 (K7 minus an edge).
func P6() *Pattern { return CliqueMinus(7).WithName("P6-K7me") }

// EvaluationPatterns returns P1–P6 in order, the pattern suite of the
// paper's Figures 8–11 and Tables II–III.
func EvaluationPatterns() []*Pattern {
	return []*Pattern{P1(), P2(), P3(), P4(), P5(), P6()}
}

// Named resolves a pattern by the names the CLI and the query service
// accept, case-insensitively: the worked examples (triangle, rectangle,
// pentagon, house, cycle6tri), the evaluation suite p1..p6, and cliques
// k3..k12.
func Named(name string) (*Pattern, error) {
	switch n := strings.ToLower(strings.TrimSpace(name)); n {
	case "triangle":
		return Triangle(), nil
	case "rectangle":
		return Rectangle(), nil
	case "pentagon":
		return Pentagon(), nil
	case "house":
		return House(), nil
	case "cycle6tri":
		return Cycle6Tri(), nil
	case "p1", "p2", "p3", "p4", "p5", "p6":
		return EvaluationPatterns()[n[1]-'1'], nil
	default:
		if len(n) >= 2 && n[0] == 'k' {
			if size, err := strconv.Atoi(n[1:]); err == nil {
				if size < 3 || size > MaxVertices {
					return nil, fmt.Errorf("pattern: clique size %d out of range [3,%d]", size, MaxVertices)
				}
				return Clique(size), nil
			}
		}
		return nil, fmt.Errorf("pattern: unknown pattern name %q", name)
	}
}

// Parse resolves a pattern spec: either a Named pattern or the
// "n:rowmajor01matrix" adjacency form the reference implementation uses.
func Parse(spec string) (*Pattern, error) {
	if head, matrix, ok := strings.Cut(spec, ":"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(head))
		if err != nil {
			return nil, fmt.Errorf("pattern: bad size in spec %q: %v", spec, err)
		}
		return ParseAdjacency(n, strings.TrimSpace(matrix), "custom")
	}
	return Named(spec)
}

// AllConnected enumerates all connected patterns with n vertices up to
// isomorphism (the "n-motifs"). Exponential; intended for n ≤ 5, matching
// motif-counting workloads like the 4-motif MiCo example from the paper's
// introduction.
func AllConnected(n int) []*Pattern {
	type rec struct {
		pat *Pattern
	}
	seen := map[string]rec{}
	numPairs := n * (n - 1) / 2
	pairs := make([][2]int, 0, numPairs)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	for mask := 0; mask < 1<<numPairs; mask++ {
		var edges [][2]int
		for i, pr := range pairs {
			if mask&(1<<i) != 0 {
				edges = append(edges, pr)
			}
		}
		p := MustNew(n, edges, "")
		if !p.Connected() {
			continue
		}
		key := p.CanonicalKey()
		if _, ok := seen[key]; !ok {
			seen[key] = rec{pat: p.WithName(fmt.Sprintf("motif%d-%d", n, len(seen)+1))}
		}
	}
	out := make([]*Pattern, 0, len(seen))
	for _, r := range seen {
		out = append(out, r.pat)
	}
	// Deterministic order: by edge count, then canonical key.
	sortPatterns(out)
	return out
}

func sortPatterns(ps []*Pattern) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && lessPattern(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func lessPattern(a, b *Pattern) bool {
	if a.NumEdges() != b.NumEdges() {
		return a.NumEdges() < b.NumEdges()
	}
	return a.CanonicalKey() < b.CanonicalKey()
}
