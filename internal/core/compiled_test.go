package core

import (
	"math/rand/v2"
	"testing"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
	"graphpi/internal/telemetry"
)

// chainSet builds the total-order restriction chain id(v1)>id(v0),
// id(v2)>id(v1), ... — a valid complete restriction set for cliques.
func chainSet(n int) restrict.Set {
	var s restrict.Set
	for i := 1; i < n; i++ {
		s = append(s, restrict.Restriction{First: uint8(i), Second: uint8(i - 1)})
	}
	return s
}

// cliqueConfig builds K_q with the identity schedule and the chain set,
// bypassing the planner (whose schedule search is factorial in q).
func cliqueConfig(t *testing.T, q int) *Config {
	t.Helper()
	return mustConfig(t, pattern.Clique(q), identitySchedule(q), chainSet(q))
}

// matrixCompare counts under every (tier, workers, edge-parallel) cell and
// compares against the single-worker interpreter. Each tier also runs one
// cell with telemetry enabled: collection must leave the count bit-identical
// and must actually populate the per-level counters.
func matrixCompare(t *testing.T, name string, cfg *Config, g *graph.Graph, tiers []Tier, useIEP bool) {
	t.Helper()
	count := func(opt RunOptions) int64 {
		if useIEP {
			return cfg.CountIEP(g, opt)
		}
		return cfg.Count(g, opt)
	}
	want := count(RunOptions{Workers: 1, Tier: TierInterpret})
	for _, tier := range tiers {
		for _, workers := range []int{1, 4} {
			for _, ep := range []EdgeParallelMode{EdgeParallelOff, EdgeParallelAuto, EdgeParallelOn} {
				got := count(RunOptions{Workers: workers, EdgeParallel: ep, Tier: tier})
				if got != want {
					t.Errorf("%s iep=%v tier=%s workers=%d edgePar=%d: counted %d, interpreter %d",
						name, useIEP, tier, workers, ep, got, want)
				}
			}
		}
		st := telemetry.NewRunStats(cfg.N())
		if got := count(RunOptions{Workers: 4, Tier: tier, Stats: st}); got != want {
			t.Errorf("%s iep=%v tier=%s with telemetry: counted %d, interpreter %d",
				name, useIEP, tier, got, want)
		}
		if st.Levels[0].Scans == 0 {
			t.Errorf("%s iep=%v tier=%s: telemetry run recorded no level-0 scans", name, useIEP, tier)
		}
	}
}

// TestCompiledTierMatrixNamedPatterns runs the paper's evaluation patterns
// through the full tier × workers × scheduling matrix on plain and
// bitmap-accelerated graphs.
func TestCompiledTierMatrixNamedPatterns(t *testing.T) {
	g := graph.BarabasiAlbert(250, 4, 7)
	gHub := graph.BarabasiAlbert(250, 4, 7)
	gHub.BuildHubBitmaps(1<<24, 8)
	pats := []*pattern.Pattern{
		pattern.P1(), pattern.P2(), pattern.P3(), pattern.P4(), pattern.P5(),
	}
	if !testing.Short() {
		pats = append(pats, pattern.P6())
	}
	for _, p := range pats {
		res, err := Plan(p, g.Stats(), PlanOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		cfg := res.Best
		for _, gg := range []*graph.Graph{g, gHub} {
			for _, useIEP := range []bool{false, true} {
				matrixCompare(t, p.Name(), cfg, gg, []Tier{TierAuto, TierCompiled}, useIEP)
			}
		}
	}
}

// TestGeneratedCliqueTierMatrix covers the full generated suite k3..k12:
// a Barabási–Albert background with a planted K13 overlapping it, so every
// kernel counts something nonzero and the interpreter sees the same graph.
func TestGeneratedCliqueTierMatrix(t *testing.T) {
	base := graph.BarabasiAlbert(160, 4, 21)
	b := graph.NewBuilder(base.NumVertices(), int(base.NumEdges())+100)
	for v := 0; v < base.NumVertices(); v++ {
		for _, w := range base.Neighbors(uint32(v)) {
			if uint32(v) < w {
				b.AddEdge(uint32(v), w)
			}
		}
	}
	// Plant a K13 across existing vertices (edges overlap the BA edges).
	for i := 0; i < 13; i++ {
		for j := i + 1; j < 13; j++ {
			b.AddEdge(uint32(i*7), uint32(j*7))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	gHub := g
	if g2, err2 := b.Build(); err2 == nil {
		g2.BuildHubBitmaps(1<<24, 8)
		gHub = g2
	}
	for q := 3; q <= 12; q++ {
		cfg := cliqueConfig(t, q)
		if cfg.cliqueQ != q {
			t.Fatalf("K%d chain config did not detect a generated kernel (cliqueQ=%d)", q, cfg.cliqueQ)
		}
		tiers := []Tier{TierAuto, TierCompiled, TierGenerated}
		for _, gg := range []*graph.Graph{g, gHub} {
			matrixCompare(t, cfg.Pattern.Name(), cfg, gg, tiers, false)
			if q <= maxIEPExactnessN {
				matrixCompare(t, cfg.Pattern.Name(), cfg, gg, tiers, true)
			}
		}
	}
}

// TestTierResolution pins the auto-selection and fallback rules.
func TestTierResolution(t *testing.T) {
	g := graph.BarabasiAlbert(50, 3, 3)
	k4 := cliqueConfig(t, 4)
	if got := k4.ResolveTier(g, TierAuto, false); got != TierGenerated {
		t.Errorf("K4 auto tier = %s, want generated", got)
	}
	if got := k4.ResolveTier(g, TierCompiled, false); got != TierCompiled {
		t.Errorf("K4 compiled tier = %s, want compiled", got)
	}
	if got := k4.ResolveTier(g, TierInterpret, false); got != TierInterpret {
		t.Errorf("K4 interpret tier = %s, want interpreted", got)
	}
	res, err := Plan(pattern.House(), g.Stats(), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	house := res.Best
	if got := house.ResolveTier(g, TierAuto, true); got != TierCompiled {
		t.Errorf("House auto tier = %s, want compiled", got)
	}
	// House has no generated kernel: explicit requests must fall back.
	if got := house.ResolveTier(g, TierGenerated, false); got != TierInterpret {
		t.Errorf("House generated tier resolves to %s, want interpreted fallback", got)
	}
	if _, err := house.CompileTier(g, false, TierGenerated); err == nil {
		t.Error("CompileTier(TierGenerated) on House: want error")
	}
	if _, err := house.CompileTier(g, false, TierInterpret); err == nil {
		t.Error("CompileTier(TierInterpret): want error")
	}
}

// TestCompileMemoised pins that repeated counting runs reuse the same
// compiled kernel (the service's hot-hit path relies on this).
func TestCompileMemoised(t *testing.T) {
	g := graph.BarabasiAlbert(50, 3, 3)
	cfg := cliqueConfig(t, 4)
	cp1, err := cfg.Compile(g, false)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := cfg.Compile(g, false)
	if err != nil {
		t.Fatal(err)
	}
	if cp1 != cp2 {
		t.Error("Compile built a second kernel for the same (graph, IEP, tier)")
	}
	cp3, err := cfg.CompileTier(g, false, TierCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if cp3 == cp1 {
		t.Error("different tiers share one memo entry")
	}
}

// TestCompiledRandomizedConfigs is the property test: random graphs,
// random connected patterns, random valid schedules with the generated
// restriction sets — every tier must agree with the interpreter, including
// configurations the planner would never pick.
func TestCompiledRandomizedConfigs(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 17))
	pats := pattern.AllConnected(4)
	pats = append(pats, pattern.AllConnected(5)...)
	for trial := 0; trial < 25; trial++ {
		g := graph.GNM(60+rng.IntN(60), 200+rng.IntN(300), rng.Uint64())
		p := pats[rng.IntN(len(pats))]
		sres := schedule.Generate(p, schedule.Options{KeepEliminated: true})
		// Include eliminated schedules too: their CandFull loops exercise
		// the compiled full-scan path the planner never picks.
		scheds := append(append([]schedule.Schedule(nil), sres.Efficient...), sres.Eliminated...)
		s := scheds[rng.IntN(len(scheds))]
		sets, err := restrict.Generate(p, restrict.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rs := sets[rng.IntN(len(sets))]
		if rng.IntN(4) == 0 {
			rs = nil // restriction-free: duplicate checks must survive compilation
		}
		cfg, err := NewConfig(p, s, rs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, useIEP := range []bool{false, true} {
			count := func(tier Tier, workers int) int64 {
				opt := RunOptions{Workers: workers, Tier: tier}
				if useIEP {
					return cfg.CountIEP(g, opt)
				}
				return cfg.Count(g, opt)
			}
			want := count(TierInterpret, 1)
			for _, tier := range []Tier{TierAuto, TierCompiled} {
				if got := count(tier, 1+rng.IntN(4)); got != want {
					t.Errorf("trial %d %s sched=%v restr=%v iep=%v tier=%s: %d, interpreter %d",
						trial, p, s, rs, useIEP, tier, got, want)
				}
			}
		}
	}
}
