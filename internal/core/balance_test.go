package core

import (
	"testing"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/restrict"
	"graphpi/internal/taskpool"
)

// starRingGraph builds the extreme-skew fixture: a hub adjacent to every
// other vertex plus a ring among the non-hub vertices. Every triangle goes
// through the hub, so under the restriction orientation id(v0) > id(v1) >
// id(v2) the hub (max id) is the root of essentially all the work: the
// "single hub vertex serializes an entire chunk" pathology.
func starRingGraph(n int) *graph.Graph {
	bld := graph.NewBuilder(n, 2*n)
	hub := uint32(n - 1)
	for v := uint32(0); v+1 < hub; v++ {
		bld.AddEdge(v, v+1)
	}
	for v := uint32(0); v < hub; v++ {
		bld.AddEdge(hub, v)
	}
	g, err := bld.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// hubRootTriangle compiles a triangle configuration oriented so the max-id
// vertex (the hub) performs the candidate sweep.
func hubRootTriangle(t testing.TB) *Config {
	cfg, err := NewConfig(pattern.Triangle(), identitySchedule(3),
		restrict.Set{{First: 0, Second: 1}, {First: 1, Second: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestEdgeParallelBalance measures, deterministically, the straggler effect
// the edge-parallel sweep eliminates. Work per task is proxied by the number
// of matches the task finds (on the star+ring fixture all matches live under
// the hub root). Vertex-chunked tasks put ~100% of the matches in the single
// chunk owning the hub; edge-parallel tasks bound every task's share by
// chunk/degree(hub). Wall-clock speedup is this ratio on a machine with
// enough cores; match shares make the test hardware-independent.
func TestEdgeParallelBalance(t *testing.T) {
	const n = 20000
	g := starRingGraph(n)
	cfg := hubRootTriangle(t)
	total := cfg.Count(g, RunOptions{Workers: 1, EdgeParallel: EdgeParallelOff})
	if total < int64(n)-10 {
		t.Fatalf("fixture broken: %d triangles", total)
	}

	maxShare := func(tasks []taskpool.Range, edge bool) float64 {
		c := NewCounter(cfg, g, false)
		var maxDelta, prev int64
		for _, tk := range tasks {
			if edge {
				c.CountEdgeRange(tk.Start, tk.End)
			} else {
				c.CountRange(tk.Start, tk.End)
			}
			if d := c.Raw() - prev; d > maxDelta {
				maxDelta = d
			}
			prev = c.Raw()
		}
		if c.Raw() != total {
			t.Fatalf("task cover lost matches: %d != %d", c.Raw(), total)
		}
		return float64(maxDelta) / float64(total)
	}

	workers := 8
	vertexTasks := taskpool.SplitChunks(g.NumVertices(), RunOptions{}.chunk(g.NumVertices(), workers))
	edgeTasks := taskpool.SplitChunks(g.NumAdjSlots(), RunOptions{}.edgeChunk(g.NumAdjSlots(), g.NumVertices(), workers))

	vShare := maxShare(vertexTasks, false)
	eShare := maxShare(edgeTasks, true)
	t.Logf("max task share: vertex-chunked %.4f (%d tasks), edge-parallel %.4f (%d tasks)",
		vShare, len(vertexTasks), eShare, len(edgeTasks))
	if vShare < 0.9 {
		t.Errorf("fixture should serialize vertex chunks: max share %.4f", vShare)
	}
	if eShare > 0.05 {
		t.Errorf("edge-parallel max task share %.4f, want <= 0.05", eShare)
	}
}

// TestCountEdgeRangeCoversExactly cross-checks the Counter edge-task API:
// any partition of the slot space must reproduce the full count.
func TestCountEdgeRangeCoversExactly(t *testing.T) {
	g := graph.BarabasiAlbert(500, 4, 3)
	cfg := hubRootTriangle(t)
	if !cfg.EdgeParallelEligible(false) {
		t.Fatal("triangle config should be edge-eligible")
	}
	want := cfg.Count(g, RunOptions{Workers: 1})
	for _, chunk := range []int{1, 7, 64, 100000} {
		c := NewCounter(cfg, g, false)
		for _, tk := range taskpool.SplitChunks(g.NumAdjSlots(), chunk) {
			c.CountEdgeRange(tk.Start, tk.End)
		}
		if c.Raw() != want {
			t.Errorf("chunk %d: edge-range cover = %d, want %d", chunk, c.Raw(), want)
		}
	}
}
