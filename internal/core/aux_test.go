package core

import (
	"context"
	"testing"
	"time"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/telemetry"
)

// auxMatrixCompare counts under every (tier, workers, aux mode) cell and
// compares against the aux-free single-worker interpreter. One cell per tier
// collects telemetry and, when expectActive, must show auxiliary rows built —
// proving the pruned path ran rather than silently falling back.
func auxMatrixCompare(t *testing.T, name string, cfg *Config, g *graph.Graph, useIEP, expectActive bool) {
	t.Helper()
	count := func(opt RunOptions) int64 {
		if useIEP {
			return cfg.CountIEP(g, opt)
		}
		return cfg.Count(g, opt)
	}
	want := count(RunOptions{Workers: 1, Tier: TierInterpret})
	for _, tier := range []Tier{TierInterpret, TierCompiled, TierAuto} {
		for _, workers := range []int{1, 4} {
			for _, mode := range []AuxMode{AuxOn, AuxForce} {
				got := count(RunOptions{Workers: workers, Tier: tier, Aux: mode})
				if got != want {
					t.Errorf("%s iep=%v tier=%s workers=%d aux=%s: counted %d, plain interpreter %d",
						name, useIEP, tier, workers, mode, got, want)
				}
			}
		}
		st := telemetry.NewRunStats(cfg.N())
		if got := count(RunOptions{Workers: 2, Tier: tier, Aux: AuxForce, Stats: st}); got != want {
			t.Errorf("%s iep=%v tier=%s forced with telemetry: counted %d, want %d",
				name, useIEP, tier, got, want)
		}
		if cfg.ResolveTier(g, tier, useIEP) == TierGenerated {
			// Generated static kernels run aux-free by design (the schedule
			// compiler monomorphizes without the scratch); counts above still
			// had to match, but no activity is expected.
			continue
		}
		if expectActive && (st.Aux.Roots == 0 || st.Aux.Rows == 0) {
			t.Errorf("%s iep=%v tier=%s: forced aux built nothing (stats %+v)",
				name, useIEP, tier, st.Aux)
		}
		var auxServed uint64
		for _, lv := range st.Levels {
			auxServed += lv.Kernels[telemetry.KernelAux]
		}
		if expectActive && auxServed == 0 {
			t.Errorf("%s iep=%v tier=%s: no intersections served from pruned rows",
				name, useIEP, tier)
		}
	}
}

// TestAuxEquivalenceMatrix is the aux arm of the tier equivalence matrix:
// deep named patterns and cliques on plain and hub-accelerated graphs, plain
// and IEP, interpreted and compiled — counts must be bit-identical with
// pruning on, forced, or cost-model-gated.
func TestAuxEquivalenceMatrix(t *testing.T) {
	g := graph.BarabasiAlbert(250, 6, 7)
	gHub := graph.BarabasiAlbert(250, 6, 7)
	gHub.BuildHubBitmaps(1<<24, 8)
	pats := []*pattern.Pattern{
		pattern.Clique(5), pattern.House(), pattern.Cycle6Tri(), pattern.Prism(),
	}
	if !testing.Short() {
		pats = append(pats, pattern.Clique(6), pattern.CliqueMinus(6))
	}
	for _, p := range pats {
		res, err := Plan(p, g.Stats(), PlanOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		cfg := res.Best
		for _, gg := range []*graph.Graph{g, gHub} {
			for _, useIEP := range []bool{false, true} {
				// Only assert activity where the schedule has deep aux steps;
				// IEP can cut the schedule above every reusable level.
				auxMatrixCompare(t, p.Name(), cfg, gg, useIEP, cfg.AuxEligible(useIEP))
			}
		}
	}
}

// TestAuxIneligibleSchedule pins the no-eligible-level path: trees have no
// triangle (no deep vertex adjacent to both the root and a sibling candidate
// chain worth reusing), so forcing aux must be a silent no-op — correct
// counts, zero aux activity, zero scratch built.
func TestAuxIneligibleSchedule(t *testing.T) {
	g := graph.BarabasiAlbert(300, 5, 13)
	for _, p := range []*pattern.Pattern{pattern.StarN(4), pattern.PathN(4)} {
		res, err := Plan(p, g.Stats(), PlanOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		cfg := res.Best
		for _, useIEP := range []bool{false, true} {
			if cfg.AuxEligible(useIEP) {
				// Eligibility depends on the planned schedule; if the planner
				// found a reusable level this fixture cannot pin ineligibility.
				t.Skipf("%s iep=%v: planner produced an aux-eligible schedule", p, useIEP)
			}
			want := cfg.Count(g, RunOptions{Workers: 1})
			st := telemetry.NewRunStats(cfg.N())
			got := cfg.Count(g, RunOptions{Workers: 2, Aux: AuxForce, Stats: st})
			if got != want {
				t.Errorf("%s: forced aux on ineligible schedule counted %d, want %d", p, got, want)
			}
			if st.Aux != (telemetry.AuxStats{}) {
				t.Errorf("%s: ineligible schedule recorded aux activity %+v", p, st.Aux)
			}
		}
	}
}

// TestAuxStarvedBudget pins the budget-smaller-than-one-level path: a view
// budget too small for even one worker's index + minimum arena must disable
// the scratch (not crash, not build partial structures) and leave counts
// bit-identical.
func TestAuxStarvedBudget(t *testing.T) {
	g := graph.BarabasiAlbert(250, 6, 7)
	res, err := Plan(pattern.Clique(5), g.Stats(), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.Best
	want := cfg.Count(g, RunOptions{Workers: 1})
	for _, budget := range []int64{1, 1024, 4 * int64(g.NumVertices())} {
		st := telemetry.NewRunStats(cfg.N())
		got := cfg.Count(g, RunOptions{Workers: 2, Aux: AuxForce, AuxBudget: budget, Stats: st})
		if got != want {
			t.Errorf("budget %d: counted %d, want %d", budget, got, want)
		}
		if st.Aux != (telemetry.AuxStats{}) {
			t.Errorf("budget %d: starved run recorded aux activity %+v", budget, st.Aux)
		}
	}
}

// TestAuxCancellationMidBuild pins prompt cancellation with pruning active:
// the lazily built scratch must not delay the outer-loop cancellation checks
// or leak into the partial tally.
func TestAuxCancellationMidBuild(t *testing.T) {
	g := graph.BarabasiAlbert(12000, 16, 7)
	res, err := Plan(pattern.Clique(5), g.Stats(), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.Best
	if !cfg.AuxEligible(false) {
		t.Fatal("K5 fixture should be aux-eligible")
	}

	// Uncancelled baseline on the slower interpreted tier: the cancelled
	// runs below must beat it decisively or the cancel did not propagate.
	t0 := time.Now()
	want := cfg.Count(g, RunOptions{Workers: 2, Tier: TierInterpret, Aux: AuxForce})
	full := time.Since(t0)

	for _, tier := range []Tier{TierInterpret, TierCompiled} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		t0 = time.Now()
		n, err := cfg.CountCtx(ctx, g, RunOptions{Workers: 2, Tier: tier, Aux: AuxForce})
		elapsed := time.Since(t0)
		if err == nil {
			t.Skipf("tier %s: search finished before the cancel fired", tier)
		}
		if err != context.Canceled {
			t.Fatalf("tier %s: CountCtx error = %v, want context.Canceled", tier, err)
		}
		if n < 0 || n > want {
			t.Fatalf("tier %s: partial tally %d outside [0, %d]", tier, n, want)
		}
		if elapsed >= full {
			t.Fatalf("tier %s: cancelled aux run took %v, full run takes %v", tier, elapsed, full)
		}
	}

	// Pre-cancelled: no scratch is built at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := telemetry.NewRunStats(cfg.N())
	n, err := cfg.CountCtx(ctx, g, RunOptions{Workers: 1, Aux: AuxForce, Stats: st})
	if err != context.Canceled || n != 0 {
		t.Fatalf("pre-cancelled: (%d, %v), want (0, context.Canceled)", n, err)
	}
	if st.Aux.Rows != 0 {
		t.Fatalf("pre-cancelled run built %d rows", st.Aux.Rows)
	}
}

// TestAuxIdenticalStatsAcrossTiers pins that the interpreter and the
// runtime-compiled tier drive the pruning identically: same roots, same rows,
// same hits — the closures are monomorphized from the same step modes.
func TestAuxIdenticalStatsAcrossTiers(t *testing.T) {
	g := graph.BarabasiAlbert(400, 8, 5)
	res, err := Plan(pattern.Clique(5), g.Stats(), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.Best
	stats := make([]*telemetry.RunStats, 2)
	for i, tier := range []Tier{TierInterpret, TierCompiled} {
		st := telemetry.NewRunStats(cfg.N())
		cfg.Count(g, RunOptions{Workers: 1, Tier: tier, Aux: AuxForce, Stats: st})
		stats[i] = st
	}
	if stats[0].Aux != stats[1].Aux {
		t.Fatalf("aux stats diverge: interpreter %+v, compiled %+v", stats[0].Aux, stats[1].Aux)
	}
	if stats[0].Aux.Rows == 0 || stats[0].Aux.Hits == 0 {
		t.Fatalf("fixture exercised no reuse: %+v", stats[0].Aux)
	}
}

// TestAuxModeParsing pins the CLI/service surface of the mode names.
func TestAuxModeParsing(t *testing.T) {
	cases := map[string]AuxMode{
		"": AuxOff, "off": AuxOff, "0": AuxOff, "false": AuxOff,
		"on": AuxOn, "1": AuxOn, "true": AuxOn, "auto": AuxOn,
		"force": AuxForce,
	}
	for in, want := range cases {
		got, err := ParseAuxMode(in)
		if err != nil || got != want {
			t.Errorf("ParseAuxMode(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseAuxMode("banana"); err == nil {
		t.Error("ParseAuxMode accepted garbage")
	}
	for _, m := range []AuxMode{AuxOff, AuxOn, AuxForce} {
		back, err := ParseAuxMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v -> %q -> (%v, %v)", m, m.String(), back, err)
		}
	}
}

// TestAuxPredictShape sanity-checks the cost model plumbing: a planned deep
// clique must expose an estimate, and a manual configuration (no planner
// statistics) must report ok=false.
func TestAuxPredictShape(t *testing.T) {
	g := graph.BarabasiAlbert(250, 6, 7)
	res, err := Plan(pattern.Clique(5), g.Stats(), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est, ok := res.Best.AuxPredict(false)
	if !ok {
		t.Fatal("planned configuration carries no aux estimate")
	}
	if !est.Eligible || est.BuildCost <= 0 {
		t.Fatalf("estimate %+v: want eligible with positive build cost", est)
	}
	manual := cliqueConfig(t, 5)
	if _, ok := manual.AuxPredict(false); ok {
		t.Fatal("manual configuration should have no planner statistics")
	}
}
