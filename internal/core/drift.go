package core

import (
	"graphpi/internal/costmodel"
	"graphpi/internal/telemetry"
)

// PredictedLevels maps the planner's cost model (Eq. 6/7 via
// costmodel.Estimate) onto the neutral per-level form telemetry.BuildDrift
// consumes: loop sizes, filter probabilities, hoisted-intersection counts
// and the IEP cut. ok is false when the configuration was built without
// planner statistics (NewConfig called directly) — there is nothing to
// reconcile a run against.
func (c *Config) PredictedLevels(useIEP bool) (telemetry.PredictedLevels, bool) {
	if c.planParams == nil {
		return telemetry.PredictedLevels{}, false
	}
	b := costmodel.Estimate(c.plan, c.n, c.PosRestrictions(), *c.planParams, costmodel.GraphPi)
	pl := telemetry.PredictedLevels{
		LoopSize:   b.LoopSize,
		FilterProb: b.FilterProb,
		Steps:      make([]int, c.n),
		IEPCut:     -1,
		Cost:       b.Cost,
	}
	for d := 0; d < c.n; d++ {
		pl.Steps[d] = len(c.plan.Steps[d])
	}
	if k := c.effectiveIEPK(); useIEP && k >= 1 {
		pl.IEPCut = c.n - k - 1
	}
	return pl, true
}

// DriftReport reconciles a run's collected stats against this
// configuration's cost-model predictions. st may be nil (an explain
// request): the report then carries predictions only. ok is false when the
// configuration carries no planner statistics.
func (c *Config) DriftReport(useIEP bool, st *telemetry.RunStats) (*telemetry.DriftReport, bool) {
	pl, ok := c.PredictedLevels(useIEP)
	if !ok {
		return nil, false
	}
	return telemetry.BuildDrift(pl, st), true
}
