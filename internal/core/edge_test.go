package core

import (
	"testing"
	"time"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
)

// Edge-case coverage for the execution engine beyond the main
// property-based suite.

func TestSingleEdgePattern(t *testing.T) {
	p := pattern.MustNew(2, [][2]int{{0, 1}}, "edge")
	sets, err := restrict.Generate(p, restrict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustConfig(t, p, identitySchedule(2), sets[0])
	g := graph.GNM(100, 321, 5)
	if got := cfg.Count(g, RunOptions{Workers: 1}); got != 321 {
		t.Errorf("edge count = %d, want 321", got)
	}
	if got := cfg.CountIEP(g, RunOptions{Workers: 2}); got != 321 {
		t.Errorf("edge IEP count = %d, want 321", got)
	}
}

func TestIsolatedVerticesIgnored(t *testing.T) {
	b := graph.NewBuilder(0, 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.SetNumVertices(50) // vertices 3..49 isolated
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.Triangle()
	sets, _ := restrict.Generate(p, restrict.Options{})
	cfg := mustConfig(t, p, identitySchedule(3), sets[0])
	if got := cfg.Count(g, RunOptions{Workers: 4}); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
}

func TestBidirectionalRestrictionsOnOneDepth(t *testing.T) {
	// A depth can carry both a lower and an upper bound; the scan window
	// must honor both. Path pattern 0-1-2 with restrictions
	// id(0) > id(2) and id(2) > id(1): at depth 2 (vertex 2), lower bound
	// id(1), upper bound id(0).
	p := pattern.PathN(3)
	rs := restrict.Set{{First: 0, Second: 2}, {First: 2, Second: 1}}
	cfg := mustConfig(t, p, identitySchedule(3), rs)
	g := graph.GNP(20, 0.5, 13)
	got := cfg.Count(g, RunOptions{Workers: 1})
	// Reference: count injective paths v0-v1-v2 with v0 > v2 > v1.
	var want int64
	n := g.NumVertices()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if b == a || !g.HasEdge(uint32(a), uint32(b)) {
				continue
			}
			for c := 0; c < n; c++ {
				if c == a || c == b || !g.HasEdge(uint32(b), uint32(c)) {
					continue
				}
				if a > c && c > b {
					want++
				}
			}
		}
	}
	if got != want {
		t.Errorf("windowed count = %d, want %d", got, want)
	}
}

func TestBudgetTruncates(t *testing.T) {
	// A zero-ish budget must abort early and report incompleteness on a
	// workload that otherwise takes much longer.
	g := graph.BarabasiAlbert(30000, 10, 3)
	p := pattern.CliqueMinus(6)
	sres := schedule.Generate(p, schedule.Options{})
	sets, _ := restrict.Generate(p, restrict.Options{MaxSets: 1})
	cfg := mustConfig(t, p, sres.Efficient[0], sets[0])
	start := time.Now()
	_, complete := cfg.CountTimed(g, RunOptions{Workers: 2, Budget: 30 * time.Millisecond})
	elapsed := time.Since(start)
	if complete {
		t.Skip("machine fast enough to finish under budget; nothing to assert")
	}
	if elapsed > 5*time.Second {
		t.Errorf("budgeted run took %v, cancellation too coarse", elapsed)
	}
}

func TestBudgetCompleteFlagOnFastRun(t *testing.T) {
	g := graph.Complete(8)
	p := pattern.Triangle()
	sets, _ := restrict.Generate(p, restrict.Options{})
	cfg := mustConfig(t, p, identitySchedule(3), sets[0])
	count, complete := cfg.CountTimed(g, RunOptions{Workers: 1, Budget: time.Minute})
	if !complete || count != 56 {
		t.Errorf("fast run: count=%d complete=%v", count, complete)
	}
}

func TestStarPatternLargeIEPSuffix(t *testing.T) {
	// A star has k = n-1: everything but the hub is independent, so IEP
	// collapses all leaf loops. Verify against the closed form
	// Σ_v C(deg(v), leaves).
	p := pattern.StarN(5) // hub + 4 leaves
	g := graph.BarabasiAlbert(300, 5, 21)
	res, err := Plan(p, g.Stats(), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Best.CountIEP(g, RunOptions{Workers: 2})
	var want int64
	for v := 0; v < g.NumVertices(); v++ {
		d := int64(g.Degree(uint32(v)))
		want += d * (d - 1) * (d - 2) * (d - 3) / 24
	}
	if got != want {
		t.Errorf("4-star count = %d, want %d (kIEP=%d)", got, want, res.Best.KIEP())
	}
	if res.Best.KIEP() < 2 {
		t.Errorf("star kIEP = %d, expected a deep IEP suffix", res.Best.KIEP())
	}
}

func TestCliquePatternsAgainstClosedForm(t *testing.T) {
	// K_m embeddings in K_n = C(n, m).
	g := graph.Complete(10)
	binom := func(n, k int64) int64 {
		r := int64(1)
		for i := int64(0); i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for m := 3; m <= 6; m++ {
		p := pattern.Clique(m)
		res, err := Plan(p, g.Stats(), PlanOptions{MaxRestrictionSets: 2})
		if err != nil {
			t.Fatal(err)
		}
		want := binom(10, int64(m))
		if got := res.Best.Count(g, RunOptions{Workers: 1}); got != want {
			t.Errorf("K%d in K10: %d, want %d", m, got, want)
		}
		if got := res.Best.CountIEP(g, RunOptions{Workers: 1}); got != want {
			t.Errorf("K%d in K10 (IEP): %d, want %d", m, got, want)
		}
	}
}

func TestEnumerateEmbeddingIndexing(t *testing.T) {
	// The embedding slice must be indexed by *pattern* vertex even when
	// the schedule permutes aggressively.
	p := pattern.House()
	sres := schedule.Generate(p, schedule.Options{})
	var sched schedule.Schedule
	for _, s := range sres.Efficient {
		if s.Order[0] != 0 { // pick a non-identity-start schedule
			sched = s
			break
		}
	}
	if sched.Order == nil {
		sched = sres.Efficient[len(sres.Efficient)-1]
	}
	sets, _ := restrict.Generate(p, restrict.Options{})
	cfg := mustConfig(t, p, sched, sets[0])
	g := graph.GNP(14, 0.6, 99)
	cfg.Enumerate(g, RunOptions{Workers: 1}, func(emb []uint32) bool {
		for u := 0; u < p.N(); u++ {
			for v := u + 1; v < p.N(); v++ {
				if p.HasEdge(u, v) && !g.HasEdge(emb[u], emb[v]) {
					t.Fatalf("schedule %v: embedding %v violates pattern edge {%d,%d}",
						sched, emb, u, v)
				}
			}
		}
		return true
	})
}
