package core

import (
	"fmt"

	"graphpi/internal/codegen"
	"graphpi/internal/codegen/gen"
	"graphpi/internal/costmodel"
	"graphpi/internal/graph"
	"graphpi/internal/restrict"
)

// Tier selects the execution tier for counting runs. The engine offers
// three (paper Figure 3 compiles every configuration; we tier it):
//
//	interpret     — the loop-program interpreter (engine.go); always
//	                available, the only tier that can enumerate.
//	runtime-compile — the configuration compiled to specialized closures
//	                (internal/codegen.Compile): kernel choice frozen from
//	                the cost model, restriction windows baked per level,
//	                monomorphized counting leaves.
//	generated     — checked-in go:generate'd kernels for the clique suite
//	                k3..k12 (internal/codegen/gen), used when the planned
//	                configuration is a total-order-restricted clique.
//
// All tiers return bit-identical counts; they differ only in speed.
type Tier uint8

const (
	// TierAuto (the default) counts on the fastest applicable tier:
	// generated when the configuration matches a static kernel, else
	// runtime-compiled. Enumeration always interprets.
	TierAuto Tier = iota
	// TierInterpret forces the interpreter.
	TierInterpret
	// TierCompiled forces runtime compilation to closures.
	TierCompiled
	// TierGenerated forces a checked-in generated kernel; runs that have
	// none fall back to the auto choice (Compile reports the mismatch for
	// callers that must surface it).
	TierGenerated
)

func (t Tier) String() string {
	switch t {
	case TierInterpret:
		return "interpreted"
	case TierCompiled:
		return "compiled"
	case TierGenerated:
		return "generated"
	default:
		return "auto"
	}
}

// ParseTier parses a tier name as accepted by the CLI and the service
// ("auto", "interpret"/"interpreted", "compiled", "generated").
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "auto":
		return TierAuto, nil
	case "interpret", "interpreted":
		return TierInterpret, nil
	case "compiled":
		return TierCompiled, nil
	case "generated":
		return TierGenerated, nil
	}
	return TierAuto, fmt.Errorf("core: unknown tier %q (want auto, interpret, compiled or generated)", s)
}

// Compiled is a configuration bound to one data graph on one compiled tier,
// ready to run. Immutable and shared across workers; per-worker state is
// created inside the engine.
type Compiled struct {
	tier   Tier // TierCompiled or TierGenerated
	useIEP bool
	kern   *codegen.Kernel // runtime-compiled closures (TierCompiled)
	// generated clique kernels (TierGenerated); the Stats variants record
	// per-level telemetry and are dispatched only when a run carries a
	// RunOptions.Stats sink.
	genRange, genEdge           gen.RangeKernel
	genRangeStats, genEdgeStats gen.StatsRangeKernel
	// scaleNum/scaleDen convert the raw tally into the final count. The
	// generated kernels tally final counts directly (1/1); IEP-compiled
	// kernels carry the configuration's over-count correction.
	scaleNum, scaleDen int64
	// edgeOK reports whether edge-parallel root scheduling is available.
	edgeOK bool
	// aux reports that the closures carry aux-probing wrappers; the engine
	// then attaches per-worker auxgraph scratch to every State.
	aux bool
}

// Tier returns the tier this compilation runs on (TierCompiled or
// TierGenerated).
func (cp *Compiled) Tier() Tier { return cp.tier }

type compiledKey struct {
	g      *graph.Graph
	useIEP bool
	tier   Tier
	aux    bool
}

// Compile builds (or returns the memoized) compiled execution of this
// configuration on g: the generated static kernel when one matches, else
// runtime-compiled closures. The service's plan cache stores Configs, so
// the memo rides the existing fingerprint+canonical-form cache key — a
// /count hot hit reuses the compiled kernel directly.
func (c *Config) Compile(g *graph.Graph, useIEP bool) (*Compiled, error) {
	return c.CompileTier(g, useIEP, TierAuto)
}

// CompileTier is Compile with an explicit tier request. TierGenerated
// errors when the configuration has no static kernel; TierInterpret is not
// a compilation and errors.
func (c *Config) CompileTier(g *graph.Graph, useIEP bool, tier Tier) (*Compiled, error) {
	return c.compileTier(g, useIEP, tier, false)
}

// compileTier is CompileTier with the aux-closure request the engine resolves
// per run. Aux-probing and plain compilations memoize under separate keys:
// the closures differ, but their counts are bit-identical. The generated tier
// has no aux variant (static kernels predate the scratch); the engine never
// requests one.
func (c *Config) compileTier(g *graph.Graph, useIEP bool, tier Tier, aux bool) (*Compiled, error) {
	switch tier {
	case TierAuto:
		if c.cliqueQ > 0 {
			tier = TierGenerated
		} else {
			tier = TierCompiled
		}
	case TierGenerated:
		if c.cliqueQ == 0 {
			return nil, fmt.Errorf("core: no generated kernel for %s (the generated tier covers total-order-restricted cliques k%d..k%d)",
				c.Pattern, gen.MinPattern, gen.MaxPattern)
		}
	case TierCompiled:
	default:
		return nil, fmt.Errorf("core: tier %s is not a compiled tier", tier)
	}
	if tier == TierGenerated {
		aux = false
	}
	key := compiledKey{g: g, useIEP: useIEP, tier: tier, aux: aux}
	c.compileMu.Lock()
	defer c.compileMu.Unlock()
	if cp, ok := c.compiled[key]; ok {
		return cp, nil
	}
	cp, err := c.buildCompiled(g, useIEP, tier, aux)
	if err != nil {
		return nil, err
	}
	if c.compiled == nil {
		c.compiled = make(map[compiledKey]*Compiled)
	}
	c.compiled[key] = cp
	return cp, nil
}

func (c *Config) buildCompiled(g *graph.Graph, useIEP bool, tier Tier, aux bool) (*Compiled, error) {
	cp := &Compiled{tier: tier, useIEP: useIEP, scaleNum: 1, scaleDen: 1}
	if tier == TierGenerated {
		fn, ok := gen.CliqueRange(c.cliqueQ)
		efn, eok := gen.CliqueEdgeRange(c.cliqueQ)
		if !ok || !eok {
			return nil, fmt.Errorf("core: generated suite has no k%d kernel", c.cliqueQ)
		}
		cp.genRange, cp.genEdge = fn, efn
		sfn, sok := gen.CliqueRangeStats(c.cliqueQ)
		esfn, esok := gen.CliqueEdgeRangeStats(c.cliqueQ)
		if !sok || !esok {
			return nil, fmt.Errorf("core: generated suite has no k%d stats kernel", c.cliqueQ)
		}
		cp.genRangeStats, cp.genEdgeStats = sfn, esfn
		// A clique's depth-1 loop iterates N(v0) by construction, so the
		// generated kernels always have the edge-parallel shape.
		cp.edgeOK = true
		return cp, nil
	}
	spec := c.lowerSpec(useIEP)
	if c.planParams != nil {
		spec.Kernels = costmodel.FreezeKernels(c.plan, c.n, *c.planParams, g.NumHubs() > 0)
	}
	if aux {
		spec.AuxModes = c.auxSpecModes(useIEP)
		cp.aux = true
	}
	prog, err := codegen.Lower(spec)
	if err != nil {
		return nil, err
	}
	cp.kern = codegen.Compile(prog, g)
	if useIEP && c.effectiveIEPK() >= 1 {
		cp.scaleNum, cp.scaleDen = c.iepNum, c.iepDen
	}
	cp.edgeOK = cp.kern.EdgeCapable() && c.EdgeParallelEligible(useIEP)
	return cp, nil
}

// lowerSpec produces the neutral description internal/codegen consumes —
// the seam that keeps codegen free of a core dependency.
func (c *Config) lowerSpec(useIEP bool) codegen.Spec {
	spec := codegen.Spec{
		N:            c.n,
		Plan:         c.plan,
		Lowers:       c.lowers,
		Uppers:       c.uppers,
		DupCheck:     c.dupCheck,
		Pattern:      c.Pattern.String(),
		Schedule:     c.Schedule.String(),
		Restrictions: c.Restrictions.String(),
	}
	if useIEP && c.effectiveIEPK() >= 1 {
		spec.KIEP = c.kIEP
		spec.IEPNum, spec.IEPDen = c.iepNum, c.iepDen
	}
	return spec
}

// SourceSpec is the Spec for the source backend (codegen.GenerateSource):
// the full enumeration nest, kernel choices left adaptive — emitted source
// carries its own minimal runtime.
func (c *Config) SourceSpec() codegen.Spec { return c.lowerSpec(false) }

// ResolveTier reports the tier a counting run with the given request would
// execute on (the tier /count responses label results with). Enumeration
// always interprets, as do configurations a compiled tier cannot host.
func (c *Config) ResolveTier(g *graph.Graph, tier Tier, useIEP bool) Tier {
	if tier == TierInterpret {
		return TierInterpret
	}
	cp, err := c.CompileTier(g, useIEP, tier)
	if err != nil {
		return TierInterpret
	}
	return cp.tier
}

// detectCliqueKernel decides at configuration-compile time whether the
// generated clique suite may substitute for this configuration: the
// relabeled pattern must be the complete graph K_q with a kernel in the
// suite, and the restriction windows' transitive closure must order every
// position pair exactly one way. Under a total order exactly one ordering
// of each clique passes the restrictions, so the suite's fixed descending
// order counts the same set — regardless of which total order the planner
// picked. (This also makes the substitution valid for k > maxIEPExactnessN,
// where the coset verification cannot run.)
func (c *Config) detectCliqueKernel(w restrict.Windows) {
	n := c.n
	if n < gen.MinPattern || n > gen.MaxPattern {
		return
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !c.relabeled.HasEdge(i, j) {
				return
			}
		}
	}
	if !w.TotalOrder() {
		return
	}
	c.cliqueQ = n
}
