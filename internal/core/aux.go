package core

import (
	"fmt"

	"graphpi/internal/codegen"
	"graphpi/internal/costmodel"
)

// AuxMode selects auxiliary-graph pruning for a run (see internal/auxgraph):
// per-root pruned adjacency rows reused across sibling subtrees in place of
// full-CSR-row intersections. Counts are bit-identical in every mode; the
// choice is purely about speed and scratch memory.
type AuxMode uint8

const (
	// AuxOff (the default) never materializes auxiliary rows.
	AuxOff AuxMode = iota
	// AuxOn enables pruning when the schedule is structurally eligible and
	// the cost model predicts the reuse to clear the build cost
	// (costmodel.EstimateAux); configurations built without planner
	// statistics enable it on structural eligibility alone.
	AuxOn
	// AuxForce enables pruning whenever structurally eligible, bypassing the
	// cost-model gate (benchmarks and equivalence tests).
	AuxForce
)

func (m AuxMode) String() string {
	switch m {
	case AuxOn:
		return "on"
	case AuxForce:
		return "force"
	default:
		return "off"
	}
}

// ParseAuxMode parses an aux mode as accepted by the CLI and the service
// ("off", "on" (also "1"/"true"/"auto"), "force").
func ParseAuxMode(s string) (AuxMode, error) {
	switch s {
	case "", "off", "0", "false":
		return AuxOff, nil
	case "on", "1", "true", "auto":
		return AuxOn, nil
	case "force":
		return AuxForce, nil
	}
	return AuxOff, fmt.Errorf("core: unknown aux mode %q (want off, on or force)", s)
}

// auxStepMode classifies one hoisted intersection's relationship to the
// level-0 auxiliary graph (rows over S = N(v0)).
type auxStepMode uint8

const (
	// auxStepNone: the step cannot use pruned rows (its left operand is not
	// contained in S, or the right vertex may fall outside S).
	auxStepNone auxStepMode = iota
	// auxStepRight: the left operand is a buffer ⊆ S, so the full right row
	// N(v_d) may be replaced by the pruned row N(v_d) ∩ S.
	auxStepRight
	// auxStepCopy: the left operand is N(v0) = S itself, so the output
	// equals the pruned row — a copy replaces the whole intersection.
	auxStepCopy
)

// computeAuxModes classifies every hoisted intersection against the level-0
// auxiliary graph. A step Out = Left ∩ N(v_d) qualifies when v_d is
// guaranteed inside S = N(v0) — the relabeled pattern has edge (d, 0), so
// candidate provenance implies it — and Left ⊆ S: either Left is N(v0)
// itself (LeftParent 0) or a chain buffer whose parent mask includes depth 0
// (plan.BufParents). Classification is structural; whether a run builds the
// rows is decided per run (auxEnabled).
func (c *Config) computeAuxModes() {
	c.auxModes = make([][]auxStepMode, c.n)
	for d := 1; d < c.n; d++ {
		steps := c.plan.Steps[d]
		if len(steps) == 0 {
			continue
		}
		row := make([]auxStepMode, len(steps))
		for i, st := range steps {
			if !c.relabeled.HasEdge(st.Depth, 0) {
				continue
			}
			switch {
			case st.LeftBuf < 0 && st.LeftParent == 0:
				row[i] = auxStepCopy
			case st.LeftBuf >= 0 && st.LeftBuf < len(c.plan.BufParents) &&
				c.plan.BufParents[st.LeftBuf]&1 != 0:
				row[i] = auxStepRight
			}
		}
		c.auxModes[d] = row
	}
}

// auxLastDepth is the deepest level whose hoisted steps execute: the IEP cut
// when the suffix is active, the leaf otherwise.
func (c *Config) auxLastDepth(useIEP bool) int {
	if k := c.effectiveIEPK(); useIEP && k >= 1 {
		return c.n - k - 1
	}
	return c.n - 1
}

// AuxEligible reports whether this configuration has at least one step at
// depth >= 2 that can consume pruned rows — the reuse that justifies
// building an auxiliary graph (depth-1 copies alone are built once and used
// once, so they never carry the build on their own).
func (c *Config) AuxEligible(useIEP bool) bool {
	return c.auxDeepSteps(useIEP) > 0
}

// auxDeepSteps counts the aux-capable steps at depths >= 2 that actually
// execute; the budget allocator scales the per-worker arena with it.
func (c *Config) auxDeepSteps(useIEP bool) int {
	last := c.auxLastDepth(useIEP)
	count := 0
	for d := 2; d <= last && d < len(c.auxModes); d++ {
		for _, m := range c.auxModes[d] {
			if m != auxStepNone {
				count++
			}
		}
	}
	return count
}

// auxStepEligible renders the modes as the neutral boolean shape
// costmodel.EstimateAux consumes.
func (c *Config) auxStepEligible() [][]bool {
	out := make([][]bool, len(c.auxModes))
	for d, row := range c.auxModes {
		if len(row) == 0 {
			continue
		}
		b := make([]bool, len(row))
		for i, m := range row {
			b[i] = m != auxStepNone
		}
		out[d] = b
	}
	return out
}

// AuxPredict exposes the cost model's build-vs-reuse estimate for this
// configuration (explain endpoints and benchmarks); ok is false when the
// configuration carries no planner statistics.
func (c *Config) AuxPredict(useIEP bool) (costmodel.AuxEstimate, bool) {
	if c.planParams == nil {
		return costmodel.AuxEstimate{}, false
	}
	est := costmodel.EstimateAux(c.plan, c.n, c.auxStepEligible(),
		c.auxLastDepth(useIEP), c.PosRestrictions(), *c.planParams)
	return est, true
}

// auxEnabled decides whether a run with the given mode builds auxiliary
// graphs: never when off or structurally ineligible; always when forced;
// under AuxOn the cost model arbitrates when planner statistics exist
// (structural eligibility alone decides for manually built configurations).
func (c *Config) auxEnabled(mode AuxMode, useIEP bool) bool {
	if mode == AuxOff || !c.AuxEligible(useIEP) {
		return false
	}
	if mode == AuxForce {
		return true
	}
	if est, ok := c.AuxPredict(useIEP); ok {
		return est.Worth()
	}
	return true
}

// auxSpecModes renders the modes in codegen's neutral form, truncated to the
// levels that execute, for the compiled tier's monomorphized closures.
func (c *Config) auxSpecModes(useIEP bool) [][]codegen.AuxMode {
	last := c.auxLastDepth(useIEP)
	out := make([][]codegen.AuxMode, c.n)
	for d := 1; d <= last && d < len(c.auxModes); d++ {
		row := c.auxModes[d]
		if len(row) == 0 {
			continue
		}
		cg := make([]codegen.AuxMode, len(row))
		for i, m := range row {
			switch m {
			case auxStepRight:
				cg[i] = codegen.AuxRight
			case auxStepCopy:
				cg[i] = codegen.AuxCopy
			}
		}
		out[d] = cg
	}
	return out
}
