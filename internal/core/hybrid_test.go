package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

// hybridTestGraphs returns (original, hybrid) pairs: the hybrid view is
// degree-ordered with hub bitmaps built. A tiny budget variant exercises the
// "reordered but no bitmaps" combination too.
func hybridTestGraphs(t *testing.T) []struct {
	name string
	orig *graph.Graph
	hyb  *graph.Graph
} {
	t.Helper()
	ba := graph.BarabasiAlbert(400, 4, 5)
	gnm := graph.GNM(300, 1200, 9)
	star := graph.Star(200) // extreme skew: one hub owns every edge
	out := []struct {
		name string
		orig *graph.Graph
		hyb  *graph.Graph
	}{
		{"ba", ba, ba.Reorder()},
		{"gnm", gnm, gnm.Reorder()},
		{"star", star, star.Reorder()},
	}
	for _, g := range out {
		if k := g.hyb.BuildHubBitmaps(1<<22, 0); k == 0 && g.name != "gnm" {
			// The skewed fixtures must actually exercise the bitmap path.
			if g.hyb.MaxDegree() >= 64 {
				t.Fatalf("%s: no hubs built despite max degree %d", g.name, g.hyb.MaxDegree())
			}
		}
	}
	return out
}

// planFor compiles the planner-selected configuration for a pattern.
func planFor(t *testing.T, g *graph.Graph, pat *pattern.Pattern) *Config {
	t.Helper()
	res, err := Plan(pat, g.Stats(), PlanOptions{})
	if err != nil {
		t.Fatalf("plan %s: %v", pat, err)
	}
	return res.Best
}

// TestHybridGraphEquivalence is the correctness invariant of the hybrid
// adjacency engine: for every named pattern, Count, CountIEP and Enumerate
// return identical results on the degree-ordered + bitmap-backed graph and
// on the original graph, at 1 and N workers, with edge-parallel roots on and
// off.
func TestHybridGraphEquivalence(t *testing.T) {
	pats := append(pattern.EvaluationPatterns(),
		pattern.Triangle(), pattern.Rectangle(), pattern.Clique(4))
	for _, gs := range hybridTestGraphs(t) {
		for _, pat := range pats {
			if pat.N() >= 6 && gs.name != "star" {
				continue // keep the suite fast; P3/P5/P6 run on the star
			}
			cfg := planFor(t, gs.orig, pat)
			want := cfg.Count(gs.orig, RunOptions{Workers: 1, EdgeParallel: EdgeParallelOff})
			wantIEP := cfg.CountIEP(gs.orig, RunOptions{Workers: 1, EdgeParallel: EdgeParallelOff})
			if want != wantIEP {
				t.Fatalf("%s/%s: seed Count %d != CountIEP %d", gs.name, pat.Name(), want, wantIEP)
			}
			for _, workers := range []int{1, 4} {
				for _, ep := range []EdgeParallelMode{EdgeParallelOff, EdgeParallelOn} {
					opt := RunOptions{Workers: workers, EdgeParallel: ep}
					label := fmt.Sprintf("%s/%s/w=%d/ep=%d", gs.name, pat.Name(), workers, ep)
					if got := cfg.Count(gs.hyb, opt); got != want {
						t.Errorf("%s: hybrid Count = %d, want %d", label, got, want)
					}
					if got := cfg.CountIEP(gs.hyb, opt); got != want {
						t.Errorf("%s: hybrid CountIEP = %d, want %d", label, got, want)
					}
					if got := cfg.Count(gs.orig, opt); got != want {
						t.Errorf("%s: original Count = %d, want %d", label, got, want)
					}
				}
			}
		}
	}
}

// TestHybridEnumerateReportsOriginalIDs checks that enumeration on the
// reordered graph yields exactly the same embedding set, in original vertex
// ids, as enumeration on the original graph. Restrictions orient each
// embedding by data-vertex id order, which differs between the two id
// spaces, so embeddings are canonicalized up to pattern automorphism before
// comparison.
func TestHybridEnumerateReportsOriginalIDs(t *testing.T) {
	for _, gs := range hybridTestGraphs(t) {
		for _, pat := range []*pattern.Pattern{pattern.Triangle(), pattern.House()} {
			cfg := planFor(t, gs.orig, pat)
			auts := pat.Automorphisms()
			canon := func(e []uint32) string {
				best := ""
				relabeled := make([]string, len(e)) // per call: visit runs concurrently
				for _, a := range auts {
					for i := range e {
						relabeled[i] = fmt.Sprint(e[a[i]])
					}
					s := strings.Join(relabeled, ",")
					if best == "" || s < best {
						best = s
					}
				}
				return best
			}
			collect := func(g *graph.Graph, workers int, ep EdgeParallelMode) []string {
				var embs []string
				var lock = make(chan struct{}, 1)
				lock <- struct{}{}
				cfg.Enumerate(g, RunOptions{Workers: workers, EdgeParallel: ep}, func(e []uint32) bool {
					s := canon(e)
					<-lock
					embs = append(embs, s)
					lock <- struct{}{}
					return true
				})
				sort.Strings(embs)
				return embs
			}
			want := collect(gs.orig, 1, EdgeParallelOff)
			for _, workers := range []int{1, 4} {
				for _, ep := range []EdgeParallelMode{EdgeParallelOff, EdgeParallelOn} {
					got := collect(gs.hyb, workers, ep)
					if len(got) != len(want) {
						t.Fatalf("%s/%s w=%d ep=%d: %d embeddings, want %d",
							gs.name, pat.Name(), workers, ep, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s/%s w=%d ep=%d: embedding %d = %s, want %s",
								gs.name, pat.Name(), workers, ep, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestDupCheckSkipsNothingRequired cross-checks the dupCheck optimization:
// a manual configuration with an incomplete restriction set (where the
// duplicate scan IS load-bearing) must still be exact.
func TestDupCheckSkipsNothingRequired(t *testing.T) {
	g := graph.GNM(60, 240, 4)
	// Path pattern P4: schedule 0-1-2-3, no restrictions. Depths 2,3 can
	// collide with non-adjacent earlier binds; dupCheck must catch those.
	pat := pattern.PathN(4)
	cfg := mustConfig(t, pat, identitySchedule(4), nil)
	want := bruteCountInjective(g, pat)
	if got := cfg.Count(g, RunOptions{Workers: 1}); got != want {
		t.Fatalf("unrestricted path count = %d, want %d", got, want)
	}
	rg := g.Reorder()
	rg.BuildHubBitmaps(1<<22, 0)
	if got := cfg.Count(rg, RunOptions{Workers: 3, EdgeParallel: EdgeParallelOn}); got != want {
		t.Fatalf("hybrid unrestricted path count = %d, want %d", got, want)
	}
}

// TestEdgeParallelEligibility pins when the flattened root sweep may engage.
func TestEdgeParallelEligibility(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 8)
	tri := planFor(t, g, pattern.Triangle())
	if !tri.EdgeParallelEligible(false) {
		t.Error("triangle enumeration should be edge-parallel eligible")
	}
	// Single-vertex pattern: no second loop.
	one := mustConfig(t, pattern.MustNew(1, nil, "v"), identitySchedule(1), nil)
	if one.EdgeParallelEligible(false) {
		t.Error("1-vertex pattern cannot be edge-parallel")
	}
	// IEP consuming everything after depth 0 leaves no depth-1 loop.
	star := planFor(t, g, pattern.StarN(3))
	if star.effectiveIEPK() >= star.N()-1 && star.EdgeParallelEligible(true) {
		t.Error("full-suffix IEP run cannot be edge-parallel")
	}
}
