package core

import (
	"sort"
	"sync"
	"testing"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

// skewedGraph builds the benchmark fixture of the hybrid engine: a power-law
// graph whose top hub degree is >= 100x the median degree, the regime where
// scalar merges pay O(hub degree) per intersection.
var skewedOnce sync.Once
var skewedG *graph.Graph

func skewedGraph(b *testing.B) *graph.Graph {
	skewedOnce.Do(func() {
		skewedG = graph.BarabasiAlbert(60000, 6, 31)
	})
	if b != nil {
		requireSkew(b, skewedG)
	}
	return skewedG
}

// requireSkew verifies the ISSUE's skew claim: hub degree >= 100x median.
func requireSkew(b *testing.B, g *graph.Graph) {
	b.Helper()
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.Degree(uint32(v))
	}
	sort.Ints(degs)
	median := degs[len(degs)/2]
	if g.MaxDegree() < 100*median {
		b.Fatalf("fixture not skewed enough: max degree %d, median %d",
			g.MaxDegree(), median)
	}
}

func benchConfig(b *testing.B, g *graph.Graph, pat *pattern.Pattern) *Config {
	b.Helper()
	res, err := Plan(pat, g.Stats(), PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return res.Best
}

// BenchmarkRootScheduling compares vertex-chunked against edge-parallel
// outer loops on the extreme-skew star+ring fixture (tentpole layer 3): the
// hub root owns essentially all the work, so its vertex chunk is a 100%
// straggler while the edge sweep bounds every task at chunk/degree(hub)
// (see TestEdgeParallelBalance for the hardware-independent shares). The
// wall-clock gap here requires multiple physical cores; on a single-core
// host the two disciplines tie.
func BenchmarkRootScheduling(b *testing.B) {
	g := starRingGraph(100000)
	requireSkew(b, g)
	cfg := hubRootTriangle(b)
	for _, bc := range []struct {
		name string
		mode EdgeParallelMode
	}{
		{"vertex-chunked", EdgeParallelOff},
		{"edge-parallel", EdgeParallelOn},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opt := RunOptions{Workers: 8, EdgeParallel: bc.mode}
			var n int64
			for i := 0; i < b.N; i++ {
				n = cfg.Count(g, opt)
			}
			_ = n
		})
	}
}

// BenchmarkHubBitmaps compares the scalar-only engine against the
// bitmap-backed one on the degree-ordered graph (tentpole layers 1+2), for
// both enumeration and IEP counting.
func BenchmarkHubBitmaps(b *testing.B) {
	g := skewedGraph(b).Reorder()
	cfg := benchConfig(b, g, pattern.House())
	run := func(b *testing.B, iep bool) {
		opt := RunOptions{Workers: 8, EdgeParallel: EdgeParallelOff}
		var n int64
		for i := 0; i < b.N; i++ {
			if iep {
				n = cfg.CountIEP(g, opt)
			} else {
				n = cfg.Count(g, opt)
			}
		}
		_ = n
	}
	b.Run("scalar/count", func(b *testing.B) {
		g.BuildHubBitmaps(1, 0) // budget too small for any bitmap
		run(b, false)
	})
	b.Run("bitmap/count", func(b *testing.B) {
		g.BuildHubBitmaps(64<<20, 0)
		run(b, false)
	})
	b.Run("scalar/iep", func(b *testing.B) {
		g.BuildHubBitmaps(1, 0)
		run(b, true)
	})
	b.Run("bitmap/iep", func(b *testing.B) {
		g.BuildHubBitmaps(64<<20, 0)
		run(b, true)
	})
}

// BenchmarkSeedVsHybrid is the end-to-end comparison recorded in the PR:
// the seed path (original ids, no bitmaps, vertex-chunked roots) against the
// full hybrid engine (degree-ordered, bitmaps, edge-parallel roots).
func BenchmarkSeedVsHybrid(b *testing.B) {
	orig := skewedGraph(b)
	hyb := orig.Reorder()
	hyb.BuildHubBitmaps(64<<20, 0)
	for _, pat := range []*pattern.Pattern{pattern.Triangle(), pattern.House()} {
		cfg := benchConfig(b, orig, pat)
		b.Run(pat.Name()+"/seed", func(b *testing.B) {
			opt := RunOptions{Workers: 8, EdgeParallel: EdgeParallelOff}
			for i := 0; i < b.N; i++ {
				cfg.Count(orig, opt)
			}
		})
		b.Run(pat.Name()+"/hybrid", func(b *testing.B) {
			opt := RunOptions{Workers: 8, EdgeParallel: EdgeParallelOn}
			for i := 0; i < b.N; i++ {
				cfg.Count(hyb, opt)
			}
		})
	}
}
