package core

import (
	"sync/atomic"
	"time"

	"graphpi/internal/graph"
	"graphpi/internal/iep"
	"graphpi/internal/schedule"
	"graphpi/internal/taskpool"
	"graphpi/internal/vertexset"
)

// RunOptions controls the execution of a compiled configuration.
type RunOptions struct {
	// Workers is the number of goroutines (< 1 → GOMAXPROCS). The result
	// is identical regardless of worker count.
	Workers int
	// ChunkSize is the number of outermost-loop vertices per scheduled
	// task (< 1 → an adaptive default). Smaller chunks balance power-law
	// skew at slightly higher scheduling cost (paper §IV-E, fine-grained
	// task partitioning).
	ChunkSize int
	// Budget, when positive, aborts the run cooperatively once exceeded
	// (the experiment harness's equivalent of the paper's 48-hour "T"
	// cutoff). Use the *Timed variants to learn whether a run completed.
	Budget time.Duration
}

func (o RunOptions) chunk(n, workers int) int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	// Aim for ~64 tasks per worker so stealing/self-scheduling can smooth
	// out skewed vertices, without degenerating to per-vertex dispatch.
	c := n / (workers * 64)
	if c < 1 {
		c = 1
	}
	if c > 1024 {
		c = 1024
	}
	return c
}

// Count returns the number of embeddings of the configuration's pattern by
// enumerating the full loop nest (no IEP). If the restriction set is
// complete, each embedding is counted exactly once; with an empty set the
// result counts every automorphic image (|Aut| per embedding).
func (c *Config) Count(g *graph.Graph, opt RunOptions) int64 {
	n, _ := c.execute(g, opt, false, nil)
	return n
}

// CountTimed is Count with an explicit completion flag: complete is false
// when opt.Budget expired before the search finished (the partial tally is
// still returned).
func (c *Config) CountTimed(g *graph.Graph, opt RunOptions) (count int64, complete bool) {
	return c.execute(g, opt, false, nil)
}

// CountIEPTimed is CountIEP with a completion flag.
func (c *Config) CountIEPTimed(g *graph.Graph, opt RunOptions) (count int64, complete bool) {
	return c.execute(g, opt, true, nil)
}

// CountIEP counts embeddings using the Inclusion-Exclusion Principle over
// the configuration's independent innermost loops (paper §IV-D). Results
// equal Count for complete restriction sets, typically far faster.
func (c *Config) CountIEP(g *graph.Graph, opt RunOptions) int64 {
	n, _ := c.execute(g, opt, true, nil)
	return n
}

// Enumerate invokes visit for every embedding found. The slice passed to
// visit is indexed by original pattern vertex and reused between calls —
// copy it to retain. visit may be invoked concurrently from different
// workers when opt.Workers > 1; returning false stops the enumeration.
// Enumerate returns the number of embeddings visited (if stopped early, the
// tally reflects the visits that happened).
func (c *Config) Enumerate(g *graph.Graph, opt RunOptions, visit func([]uint32) bool) int64 {
	n, _ := c.execute(g, opt, false, visit)
	return n
}

func (c *Config) execute(g *graph.Graph, opt RunOptions, useIEP bool, visit func([]uint32) bool) (int64, bool) {
	nv := g.NumVertices()
	if nv == 0 {
		return 0, true
	}
	workers := taskpool.Workers(opt.Workers)
	chunk := opt.chunk(nv, workers)
	runners := make([]*runner, workers)
	var stop, timedOut atomic.Bool
	if opt.Budget > 0 {
		timer := time.AfterFunc(opt.Budget, func() {
			timedOut.Store(true)
			stop.Store(true)
		})
		defer timer.Stop()
	}
	taskpool.Run(workers, nv, chunk, func(w int, rg taskpool.Range) {
		if stop.Load() {
			return
		}
		r := runners[w]
		if r == nil {
			r = newRunner(c, g, useIEP, visit, &stop)
			runners[w] = r
		}
		r.runRoot(rg.Start, rg.End)
	})
	var total int64
	for _, r := range runners {
		if r != nil {
			total += r.count
		}
	}
	if useIEP && c.effectiveIEPK() >= 1 {
		total = total * c.iepNum / c.iepDen
	}
	return total, !timedOut.Load()
}

// effectiveIEPK returns the IEP suffix actually usable at run time (0 when
// the pattern has a single vertex or the schedule admits no suffix).
func (c *Config) effectiveIEPK() int {
	if c.n < 2 {
		return 0
	}
	return c.kIEP
}

// Counter is the task-execution primitive for external runtimes (the
// simulated cluster): it runs the configuration over explicit outermost-loop
// vertex ranges and accumulates a raw tally. One Counter per goroutine.
type Counter struct {
	r      *runner
	useIEP bool
}

// NewCounter creates a Counter bound to a configuration and graph.
func NewCounter(cfg *Config, g *graph.Graph, useIEP bool) *Counter {
	return &Counter{r: newRunner(cfg, g, useIEP, nil, nil), useIEP: useIEP}
}

// CountRange processes outer-loop vertices [start, end) and adds matches to
// the internal tally.
func (c *Counter) CountRange(start, end int) {
	c.r.runRoot(start, end)
}

// Raw returns the accumulated tally, before any IEP scaling.
func (c *Counter) Raw() int64 { return c.r.count }

// ScaleIEP converts a raw tally summed over IEP-enabled Counters into the
// final embedding count.
func (c *Config) ScaleIEP(raw int64) int64 {
	if c.effectiveIEPK() >= 1 {
		return raw * c.iepNum / c.iepDen
	}
	return raw
}

// runner is the per-worker execution state: bound vertices, intersection
// buffers and the IEP calculator. A runner is single-goroutine.
type runner struct {
	cfg   *Config
	g     *graph.Graph
	bound []uint32
	bufs  [][]uint32
	visit func([]uint32) bool
	emb   []uint32
	stop  *atomic.Bool
	count int64

	useIEP  bool
	iepCut  int // depth after which IEP takes over; -1 when disabled
	calc    *iep.Calculator
	iepSets [][]uint32
}

func newRunner(cfg *Config, g *graph.Graph, useIEP bool, visit func([]uint32) bool, stop *atomic.Bool) *runner {
	r := &runner{
		cfg:    cfg,
		g:      g,
		bound:  make([]uint32, cfg.n),
		bufs:   make([][]uint32, cfg.plan.NumBufs),
		visit:  visit,
		stop:   stop,
		iepCut: -1,
	}
	maxDeg := g.MaxDegree()
	for i := range r.bufs {
		r.bufs[i] = make([]uint32, 0, maxDeg)
	}
	if visit != nil {
		r.emb = make([]uint32, cfg.n)
	}
	if k := cfg.effectiveIEPK(); useIEP && k >= 1 {
		r.useIEP = true
		r.iepCut = cfg.n - k - 1
		r.calc = iep.NewCalculator(k)
		r.iepSets = make([][]uint32, k)
	}
	return r
}

// runRoot executes the outermost loop over the vertex range [start, end).
func (r *runner) runRoot(start, end int) {
	n := r.cfg.n
	for v := start; v < end; v++ {
		if r.stop != nil && r.stop.Load() {
			return
		}
		r.bound[0] = uint32(v)
		switch {
		case n == 1:
			r.leaf()
		case r.iepCut == 0:
			r.runSteps(0)
			r.count += r.iepCount()
		default:
			r.runSteps(0)
			r.run(1)
		}
	}
}

// run executes the loop at the given depth (1 ≤ depth ≤ n-1).
func (r *runner) run(depth int) {
	cfg := r.cfg
	g := r.g

	// Restriction windows: candidates must be > lo and < hi.
	var lo uint32
	hasLo := false
	for _, p := range cfg.lowers[depth] {
		if b := r.bound[p]; !hasLo || b > lo {
			lo, hasLo = b, true
		}
	}
	hi := uint32(maxUint32)
	for _, p := range cfg.uppers[depth] {
		if b := r.bound[p]; b < hi {
			hi = b
		}
	}

	cand := cfg.plan.Cand[depth]
	var cands []uint32
	switch cand.Kind {
	case schedule.CandFull:
		// Unconstrained loop over all data vertices (only inefficient
		// schedules reach this: Figure 9 measures them too).
		r.runFull(depth, lo, hasLo, hi)
		return
	case schedule.CandNeighborhood:
		cands = g.Neighbors(r.bound[cand.Parent])
	default:
		cands = r.bufs[cand.Buf]
	}
	if hi != maxUint32 {
		cands = vertexset.Below(cands, hi)
	}
	if hasLo {
		cands = vertexset.Above(cands, lo)
	}

	isLeaf := depth == cfg.n-1
	atCut := depth == r.iepCut
next:
	for _, v := range cands {
		for _, b := range r.bound[:depth] {
			if b == v {
				continue next
			}
		}
		r.bound[depth] = v
		switch {
		case isLeaf:
			r.leaf()
			if r.stop != nil && r.stop.Load() {
				return
			}
		case atCut:
			r.runSteps(depth)
			r.count += r.iepCount()
		default:
			r.runSteps(depth)
			r.run(depth + 1)
			if r.stop != nil && r.stop.Load() {
				return
			}
		}
	}
}

// runFull is the CandFull variant of run's loop body.
func (r *runner) runFull(depth int, lo uint32, hasLo bool, hi uint32) {
	start := 0
	if hasLo {
		start = int(lo) + 1
	}
	end := r.g.NumVertices()
	if hi != maxUint32 && int(hi) < end {
		end = int(hi)
	}
	isLeaf := depth == r.cfg.n-1
	atCut := depth == r.iepCut
next:
	for vi := start; vi < end; vi++ {
		v := uint32(vi)
		for _, b := range r.bound[:depth] {
			if b == v {
				continue next
			}
		}
		r.bound[depth] = v
		switch {
		case isLeaf:
			r.leaf()
			if r.stop != nil && r.stop.Load() {
				return
			}
		case atCut:
			r.runSteps(depth)
			r.count += r.iepCount()
		default:
			r.runSteps(depth)
			r.run(depth + 1)
			if r.stop != nil && r.stop.Load() {
				return
			}
		}
	}
}

// runSteps executes the intersections hoisted to this depth.
func (r *runner) runSteps(depth int) {
	for _, st := range r.cfg.plan.Steps[depth] {
		var left []uint32
		if st.LeftBuf >= 0 {
			left = r.bufs[st.LeftBuf]
		} else {
			left = r.g.Neighbors(r.bound[st.LeftParent])
		}
		right := r.g.Neighbors(r.bound[st.Depth])
		r.bufs[st.Out] = vertexset.Intersect(r.bufs[st.Out][:0], left, right)
	}
}

// leaf records one embedding.
func (r *runner) leaf() {
	r.count++
	if r.visit == nil {
		return
	}
	for i, v := range r.bound {
		r.emb[r.cfg.order[i]] = v
	}
	if !r.visit(r.emb) {
		r.stop.Store(true)
	}
}

// iepCount computes the inclusion–exclusion count of the innermost k loops
// given the currently bound outer prefix (paper Figure 6: |S_IEP|).
func (r *runner) iepCount() int64 {
	cfg := r.cfg
	k := len(r.iepSets)
	base := cfg.n - k
	for i := 0; i < k; i++ {
		cand := cfg.plan.Cand[base+i]
		switch cand.Kind {
		case schedule.CandNeighborhood:
			r.iepSets[i] = r.g.Neighbors(r.bound[cand.Parent])
		case schedule.CandBuffer:
			r.iepSets[i] = r.bufs[cand.Buf]
		default:
			// A disconnected inner vertex would need the whole vertex
			// set; connected patterns never produce this.
			panic("core: IEP inner loop with full candidate set")
		}
	}
	return r.calc.Count(r.iepSets, r.bound[:base])
}
