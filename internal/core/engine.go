package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"graphpi/internal/auxgraph"
	"graphpi/internal/codegen"
	"graphpi/internal/graph"
	"graphpi/internal/iep"
	"graphpi/internal/schedule"
	"graphpi/internal/taskpool"
	"graphpi/internal/telemetry"
	"graphpi/internal/vertexset"
)

// EdgeParallelMode selects how the outermost loops are parallelized.
type EdgeParallelMode uint8

const (
	// EdgeParallelAuto (the default) uses edge-parallel root scheduling
	// whenever the schedule is eligible and more than one worker runs.
	EdgeParallelAuto EdgeParallelMode = iota
	// EdgeParallelOn forces edge-parallel roots whenever eligible.
	EdgeParallelOn
	// EdgeParallelOff always chunks the outer loop by vertex ranges.
	EdgeParallelOff
)

// RunOptions controls the execution of a compiled configuration.
type RunOptions struct {
	// Workers is the number of goroutines (< 1 → GOMAXPROCS). The result
	// is identical regardless of worker count.
	Workers int
	// ChunkSize is the number of outermost-loop vertices per scheduled
	// task (< 1 → an adaptive default). Smaller chunks balance power-law
	// skew at slightly higher scheduling cost (paper §IV-E, fine-grained
	// task partitioning). Under edge-parallel scheduling the granularity
	// is scaled by the average degree so the task count stays comparable.
	ChunkSize int
	// EdgeParallel selects the root scheduling discipline. When the
	// schedule's second loop iterates N(v0), the first two loops flatten
	// into a sweep over CSR edge slots, making work units proportional to
	// edges instead of vertices — a single hub can no longer serialize a
	// whole chunk (paper §IV-E's skew problem). Auto enables it for
	// multi-worker runs on eligible schedules.
	EdgeParallel EdgeParallelMode
	// Budget, when positive, aborts the run cooperatively once exceeded
	// (the experiment harness's equivalent of the paper's 48-hour "T"
	// cutoff). Use the *Timed variants to learn whether a run completed.
	Budget time.Duration
	// Context, when non-nil, cancels the run cooperatively: every worker
	// observes cancellation at its next outer-loop vertex (or edge-slot
	// group) boundary and returns, so taskpool goroutines are freed within
	// one chunk even when the full search would run for minutes. A
	// cancelled run reports complete=false from the *Timed variants; use
	// the *Ctx methods to get the context error directly.
	Context context.Context
	// Tier selects the execution tier for counting runs (see Tier).
	// TierAuto picks generated > runtime-compiled; enumeration and runs a
	// compiled tier cannot host fall back to the interpreter. Counts are
	// bit-identical across tiers, so the choice is purely about speed.
	Tier Tier
	// Stats, when non-nil, enables per-level telemetry: every worker
	// records into a private shard and the shards are merged into Stats
	// when the run returns. The counts themselves are bit-identical with
	// and without Stats; the disabled path pays one nil check per
	// candidate scan. Allocate with telemetry.NewRunStats(cfg.N()).
	Stats *telemetry.RunStats
	// Aux selects auxiliary-graph pruning (per-root pruned adjacency rows
	// reused across sibling subtrees; see internal/auxgraph and AuxMode).
	// Off by default; counts are bit-identical in every mode.
	Aux AuxMode
	// AuxBudget is the total view-memory budget the aux scratch shares with
	// the hub bitmaps (<= 0 → auxgraph.DefaultViewBudget). The run consumes
	// only the aux share of the split (auxgraph.PlanBudget); the hub share
	// was consumed when the graph view was optimized.
	AuxBudget int64
}

func (o RunOptions) chunk(n, workers int) int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	// Aim for ~64 tasks per worker so stealing/self-scheduling can smooth
	// out skewed vertices, without degenerating to per-vertex dispatch.
	return taskpool.AdaptiveChunk(n, workers, 64, 1, 1024)
}

// edgeChunk sizes edge-parallel tasks: ~64 per worker, floored so the
// scheduling cursor is not hammered, capped so skew still spreads. An
// explicit ChunkSize stays in vertex units and is scaled by the average
// degree, so one option tunes both disciplines comparably.
func (o RunOptions) edgeChunk(m, nv, workers int) int {
	if o.ChunkSize > 0 {
		return o.ChunkSize * avgSlotsPerVertex(m, nv)
	}
	return taskpool.AdaptiveChunk(m, workers, 64, 16, 65536)
}

// avgSlotsPerVertex returns the mean directed degree (>= 1), the factor that
// converts a vertex-unit chunk size into an equivalent slot-unit one.
func avgSlotsPerVertex(m, nv int) int {
	if nv <= 0 {
		return 1
	}
	if avg := m / nv; avg > 1 {
		return avg
	}
	return 1
}

// Count returns the number of embeddings of the configuration's pattern by
// enumerating the full loop nest (no IEP). If the restriction set is
// complete, each embedding is counted exactly once; with an empty set the
// result counts every automorphic image (|Aut| per embedding).
//
//graphpi:deterministic
func (c *Config) Count(g *graph.Graph, opt RunOptions) int64 {
	n, _ := c.execute(g, opt, false, nil)
	return n
}

// CountTimed is Count with an explicit completion flag: complete is false
// when opt.Budget expired before the search finished (the partial tally is
// still returned).
func (c *Config) CountTimed(g *graph.Graph, opt RunOptions) (count int64, complete bool) {
	return c.execute(g, opt, false, nil)
}

// CountIEPTimed is CountIEP with a completion flag.
func (c *Config) CountIEPTimed(g *graph.Graph, opt RunOptions) (count int64, complete bool) {
	return c.execute(g, opt, true, nil)
}

// CountIEP counts embeddings using the Inclusion-Exclusion Principle over
// the configuration's independent innermost loops (paper §IV-D). Results
// equal Count for complete restriction sets, typically far faster.
//
//graphpi:deterministic
func (c *Config) CountIEP(g *graph.Graph, opt RunOptions) int64 {
	n, _ := c.execute(g, opt, true, nil)
	return n
}

// ErrBudgetExceeded reports that a *Ctx run was aborted by RunOptions.Budget
// rather than by its context.
var ErrBudgetExceeded = errors.New("core: run budget exceeded")

// ctxErr maps a run's outcome to the error the *Ctx methods return: the
// context's error when it was cancelled, ErrBudgetExceeded when the budget
// timer aborted the run, nil only when the run truly completed.
func ctxErr(ctx context.Context, complete bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !complete {
		return ErrBudgetExceeded
	}
	return nil
}

// CountCtx is Count under a context: the run stops cooperatively when ctx
// is cancelled and the (partial) tally is returned alongside ctx's error.
// A nil error means the count ran to completion and is exact.
func (c *Config) CountCtx(ctx context.Context, g *graph.Graph, opt RunOptions) (int64, error) {
	opt.Context = ctx
	n, complete := c.execute(g, opt, false, nil)
	return n, ctxErr(ctx, complete)
}

// CountIEPCtx is CountIEP under a context (see CountCtx).
func (c *Config) CountIEPCtx(ctx context.Context, g *graph.Graph, opt RunOptions) (int64, error) {
	opt.Context = ctx
	n, complete := c.execute(g, opt, true, nil)
	return n, ctxErr(ctx, complete)
}

// EnumerateCtx is Enumerate under a context: cancellation stops every worker
// at its next boundary and no further visits happen after that point. The
// returned tally counts the visits that did happen; the error is ctx's.
func (c *Config) EnumerateCtx(ctx context.Context, g *graph.Graph, opt RunOptions, visit func([]uint32) bool) (int64, error) {
	opt.Context = ctx
	n, complete := c.execute(g, opt, false, visit)
	return n, ctxErr(ctx, complete)
}

// Enumerate invokes visit for every embedding found. The slice passed to
// visit is indexed by original pattern vertex and reused between calls —
// copy it to retain. Embeddings are reported in original vertex ids even on
// a Reorder()ed graph. visit may be invoked concurrently from different
// workers when opt.Workers > 1; returning false stops the enumeration.
// Enumerate returns the number of embeddings visited (if stopped early, the
// tally reflects the visits that happened).
func (c *Config) Enumerate(g *graph.Graph, opt RunOptions, visit func([]uint32) bool) int64 {
	n, _ := c.execute(g, opt, false, visit)
	return n
}

// EdgeParallelEligible reports whether the first two loops can be flattened
// into an edge sweep: depth 1 must iterate N(v0) and must not already be
// consumed by the IEP suffix. External runtimes (the simulated cluster)
// use it to decide whether Counter.CountEdgeRange tasks are available.
func (c *Config) EdgeParallelEligible(useIEP bool) bool {
	if c.n < 2 {
		return false
	}
	if useIEP && c.effectiveIEPK() >= c.n-1 {
		return false // IEP takes over right after depth 0
	}
	cand := c.plan.Cand[1]
	return cand.Kind == schedule.CandNeighborhood && cand.Parent == 0
}

func (c *Config) execute(g *graph.Graph, opt RunOptions, useIEP bool, visit func([]uint32) bool) (int64, bool) {
	nv := g.NumVertices()
	if nv == 0 {
		return 0, true
	}
	workers := taskpool.Workers(opt.Workers)
	// Aux resolution happens before tier resolution because the compiled
	// tier monomorphizes aux-probing closures. The unified view budget is
	// split here: the hub share was consumed when the graph view was
	// optimized, the per-worker aux share sizes the scratch arenas below.
	useAux := c.auxEnabled(opt.Aux, useIEP)
	var auxArena int64
	if useAux {
		split := auxgraph.PlanBudget(opt.AuxBudget, nv, workers, c.auxDeepSteps(useIEP))
		auxArena = split.AuxArenaPerWorker
		if auxArena <= 0 {
			useAux = false
		}
	}
	// Tier resolution: counting runs prefer a compiled tier; enumeration
	// and compile failures (an explicit TierGenerated without a static
	// kernel, a spec the lowering rejects) fall back to the interpreter.
	var comp *Compiled
	if visit == nil && opt.Tier != TierInterpret {
		comp, _ = c.compileTier(g, useIEP, opt.Tier, useAux)
	}
	var stop, aborted atomic.Bool
	if opt.Budget > 0 {
		timer := time.AfterFunc(opt.Budget, func() {
			aborted.Store(true)
			stop.Store(true)
		})
		defer timer.Stop()
	}
	if ctx := opt.Context; ctx != nil {
		if ctx.Err() != nil {
			return 0, false
		}
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				aborted.Store(true)
				stop.Store(true)
			case <-watchDone:
			}
		}()
	}
	eligible := c.EdgeParallelEligible(useIEP)
	if comp != nil {
		eligible = comp.edgeOK
	}
	edgePar := eligible &&
		opt.EdgeParallel != EdgeParallelOff &&
		(opt.EdgeParallel == EdgeParallelOn || workers > 1)
	if comp != nil {
		total := c.runCompiled(comp, g, opt, workers, nv, edgePar, auxArena, &stop)
		return total, !aborted.Load()
	}
	runners := make([]*runner, workers)
	body := func(run func(r *runner, rg taskpool.Range)) func(int, taskpool.Range) {
		return func(w int, rg taskpool.Range) {
			if stop.Load() {
				return
			}
			r := runners[w]
			if r == nil {
				r = newRunner(c, g, useIEP, visit, &stop)
				if opt.Stats != nil {
					r.st = telemetry.NewRunStats(c.n)
				}
				if useAux {
					r.aux = auxgraph.New(g, auxArena)
					r.auxModes = c.auxModes
				}
				runners[w] = r
			}
			run(r, rg)
		}
	}
	if edgePar {
		m := g.NumAdjSlots()
		taskpool.Run(workers, m, opt.edgeChunk(m, nv, workers),
			body(func(r *runner, rg taskpool.Range) { r.runRootEdges(rg.Start, rg.End) }))
	} else {
		taskpool.Run(workers, nv, opt.chunk(nv, workers),
			body(func(r *runner, rg taskpool.Range) { r.runRoot(rg.Start, rg.End) }))
	}
	var total int64
	for _, r := range runners {
		if r != nil {
			total += r.count
			foldAuxStats(r.st, r.aux)
			opt.Stats.Merge(r.st)
		}
	}
	if useIEP && c.effectiveIEPK() >= 1 {
		total = total * c.iepNum / c.iepDen
	}
	return total, !aborted.Load()
}

// runCompiled executes a compiled tier under the same scheduling and
// cancellation machinery as the interpreter: per-worker state, the shared
// stop flag probed at outer-loop boundaries, vertex- or edge-parallel root
// tasks. The raw tally is scaled by the compilation's own correction —
// generated kernels count finals directly, IEP-compiled closures carry the
// configuration's over-count factors.
//
//graphpi:deterministic
func (c *Config) runCompiled(comp *Compiled, g *graph.Graph, opt RunOptions, workers, nv int, edgePar bool, auxArena int64, stop *atomic.Bool) int64 {
	var total int64
	if comp.tier == TierGenerated {
		counts := make([]int64, workers)
		var shards []*telemetry.RunStats
		if opt.Stats != nil {
			shards = make([]*telemetry.RunStats, workers)
		}
		body := func(w int, rg taskpool.Range) {
			if stop.Load() {
				return
			}
			if shards != nil {
				sh := shards[w]
				if sh == nil {
					sh = telemetry.NewRunStats(c.n)
					shards[w] = sh
				}
				if edgePar {
					counts[w] += comp.genEdgeStats(g, rg.Start, rg.End, stop, sh)
				} else {
					counts[w] += comp.genRangeStats(g, rg.Start, rg.End, stop, sh)
				}
				return
			}
			if edgePar {
				counts[w] += comp.genEdge(g, rg.Start, rg.End, stop)
			} else {
				counts[w] += comp.genRange(g, rg.Start, rg.End, stop)
			}
		}
		if edgePar {
			m := g.NumAdjSlots()
			taskpool.Run(workers, m, opt.edgeChunk(m, nv, workers), body)
		} else {
			taskpool.Run(workers, nv, opt.chunk(nv, workers), body)
		}
		for _, n := range counts {
			total += n
		}
		for _, sh := range shards {
			opt.Stats.Merge(sh)
		}
	} else {
		states := make([]*codegen.State, workers)
		body := func(w int, rg taskpool.Range) {
			if stop.Load() {
				return
			}
			s := states[w]
			if s == nil {
				s = comp.kern.NewState(stop)
				if opt.Stats != nil {
					s.SetStats(telemetry.NewRunStats(c.n))
				}
				if comp.aux {
					s.SetAux(auxgraph.New(g, auxArena))
				}
				states[w] = s
			}
			if edgePar {
				s.RunRootEdges(rg.Start, rg.End)
			} else {
				s.RunRoot(rg.Start, rg.End)
			}
		}
		if edgePar {
			m := g.NumAdjSlots()
			taskpool.Run(workers, m, opt.edgeChunk(m, nv, workers), body)
		} else {
			taskpool.Run(workers, nv, opt.chunk(nv, workers), body)
		}
		for _, s := range states {
			if s != nil {
				total += s.Count()
				foldAuxStats(s.Stats(), s.Aux())
				opt.Stats.Merge(s.Stats())
			}
		}
	}
	return total * comp.scaleNum / comp.scaleDen
}

// foldAuxStats copies a worker's auxiliary-graph counters into its telemetry
// shard (before the shard is merged); a nil shard or scratch is a no-op.
func foldAuxStats(dst *telemetry.RunStats, a *auxgraph.Aux) {
	if dst == nil || a == nil {
		return
	}
	st := a.Stats()
	dst.Aux.Roots += st.Roots
	dst.Aux.Rows += st.Rows
	dst.Aux.Bytes += st.Bytes
	dst.Aux.Hits += st.Hits
	dst.Aux.Skips += st.Skips
}

// effectiveIEPK returns the IEP suffix actually usable at run time (0 when
// the pattern has a single vertex or the schedule admits no suffix).
func (c *Config) effectiveIEPK() int {
	if c.n < 2 {
		return 0
	}
	return c.kIEP
}

// Counter is the task-execution primitive for external runtimes (the
// simulated cluster): it runs the configuration over explicit outermost-loop
// vertex ranges and accumulates a raw tally. One Counter per goroutine.
type Counter struct {
	r      *runner
	useIEP bool
}

// NewCounter creates a Counter bound to a configuration and graph.
func NewCounter(cfg *Config, g *graph.Graph, useIEP bool) *Counter {
	return &Counter{r: newRunner(cfg, g, useIEP, nil, nil), useIEP: useIEP}
}

// NewCounterStop is NewCounter with a shared stop flag: once stop becomes
// true the Counter abandons its current range at the next outer-loop
// boundary and every later CountRange/CountEdgeRange call returns
// immediately. A stopped Counter's tally is partial — the flag exists so an
// external runtime (a cluster worker whose master disconnected, a cancelled
// service job) can free its workers without finishing dead work.
func NewCounterStop(cfg *Config, g *graph.Graph, useIEP bool, stop *atomic.Bool) *Counter {
	return &Counter{r: newRunner(cfg, g, useIEP, nil, stop), useIEP: useIEP}
}

// CountRange processes outer-loop vertices [start, end) and adds matches to
// the internal tally.
func (c *Counter) CountRange(start, end int) {
	c.r.runRoot(start, end)
}

// CountEdgeRange processes the CSR adjacency slots [start, end) — the
// edge-parallel task shape. Only valid when the configuration is
// EdgeParallelEligible; the caller must cover every slot exactly once.
func (c *Counter) CountEdgeRange(start, end int) {
	if start < end {
		c.r.runRootEdges(start, end)
	}
}

// Raw returns the accumulated tally, before any IEP scaling.
func (c *Counter) Raw() int64 { return c.r.count }

// ScaleIEP converts a raw tally summed over IEP-enabled Counters into the
// final embedding count.
func (c *Config) ScaleIEP(raw int64) int64 {
	if c.effectiveIEPK() >= 1 {
		return raw * c.iepNum / c.iepDen
	}
	return raw
}

// runner is the per-worker execution state: bound vertices, intersection
// buffers and the IEP calculator. A runner is single-goroutine.
type runner struct {
	cfg   *Config
	g     *graph.Graph
	bound []uint32
	bufs  [][]uint32
	visit func([]uint32) bool
	emb   []uint32
	orig  []uint32 // new→old id map of a reordered graph; nil = identity
	stop  *atomic.Bool
	count int64
	st    *telemetry.RunStats // nil when telemetry is disabled

	hasHubs bool
	useIEP  bool
	iepCut  int // depth after which IEP takes over; -1 when disabled
	calc    *iep.Calculator
	iepSets [][]uint32
	iepBMs  []vertexset.Bitmap

	// aux, when non-nil, is this worker's auxiliary-graph scratch and
	// auxModes the configuration's per-step classification; runSteps then
	// serves eligible intersections from pruned rows, falling back to the
	// full CSR row on a miss (counts are identical either way). Counters
	// handed to external runtimes never set it.
	aux      *auxgraph.Aux
	auxModes [][]auxStepMode
}

func newRunner(cfg *Config, g *graph.Graph, useIEP bool, visit func([]uint32) bool, stop *atomic.Bool) *runner {
	r := &runner{
		cfg:     cfg,
		g:       g,
		bound:   make([]uint32, cfg.n),
		bufs:    make([][]uint32, cfg.plan.NumBufs),
		visit:   visit,
		orig:    g.NewToOld(),
		stop:    stop,
		hasHubs: g.NumHubs() > 0,
		iepCut:  -1,
	}
	maxDeg := g.MaxDegree()
	for i := range r.bufs {
		r.bufs[i] = make([]uint32, 0, maxDeg)
	}
	if visit != nil {
		r.emb = make([]uint32, cfg.n)
	}
	if k := cfg.effectiveIEPK(); useIEP && k >= 1 {
		r.useIEP = true
		r.iepCut = cfg.n - k - 1
		r.calc = iep.NewCalculator(k)
		r.iepSets = make([][]uint32, k)
		if r.hasHubs {
			r.iepBMs = make([]vertexset.Bitmap, k)
		}
	}
	return r
}

// runRoot executes the outermost loop over the vertex range [start, end).
func (r *runner) runRoot(start, end int) {
	if lst := r.st.Level(0); lst != nil && end > start {
		lst.Scan(end-start, 0)
	}
	n := r.cfg.n
	for v := start; v < end; v++ {
		if r.stop != nil && r.stop.Load() {
			return
		}
		r.bound[0] = uint32(v)
		r.beginAuxRoot(uint32(v))
		switch {
		case n == 1:
			r.leaf()
		case r.iepCut == 0:
			r.runSteps(0)
			r.count += r.iepCount()
		default:
			r.runSteps(0)
			r.run(1)
		}
	}
}

// runRootEdges executes the flattened first two loops over the CSR slot
// range [start, end). Each slot is one directed edge (v0, w); tasks are
// therefore proportional to edges, so a hub's adjacency spreads across many
// tasks instead of serializing the chunk that owns the hub.
func (r *runner) runRootEdges(start, end int) {
	g := r.g
	v := g.SlotOwner(start)
	for start < end {
		if r.stop != nil && r.stop.Load() {
			return
		}
		_, ve := g.AdjSlotRange(v)
		if ve <= start {
			v++ // zero-degree vertex or finished adjacency
			continue
		}
		stop := ve
		if stop > end {
			stop = end
		}
		r.bound[0] = v
		r.beginAuxRoot(v)
		if lst := r.st.Level(0); lst != nil {
			lst.Scan(1, 0)
		}
		r.runSteps(0)
		r.runList(1, g.AdjSlots(start, stop))
		start = stop
		v++
	}
}

// window returns the restriction window for the loop at depth: candidates
// must be > lo (when hasLo) and < hi. Taking the max lower bound and min
// upper bound covers every restriction attached to this depth.
func (r *runner) window(depth int) (lo uint32, hasLo bool, hi uint32) {
	cfg := r.cfg
	for _, p := range cfg.lowers[depth] {
		if b := r.bound[p]; !hasLo || b > lo {
			lo, hasLo = b, true
		}
	}
	hi = uint32(maxUint32)
	for _, p := range cfg.uppers[depth] {
		if b := r.bound[p]; b < hi {
			hi = b
		}
	}
	return lo, hasLo, hi
}

// run executes the loop at the given depth (1 ≤ depth ≤ n-1).
func (r *runner) run(depth int) {
	cand := r.cfg.plan.Cand[depth]
	switch cand.Kind {
	case schedule.CandFull:
		// Unconstrained loop over all data vertices (only inefficient
		// schedules reach this: Figure 9 measures them too).
		r.runFull(depth)
	case schedule.CandNeighborhood:
		r.runList(depth, r.g.Neighbors(r.bound[cand.Parent]))
	default:
		r.runList(depth, r.bufs[cand.Buf])
	}
}

// runList executes the loop at depth over an explicit sorted candidate set.
func (r *runner) runList(depth int, cands []uint32) {
	cfg := r.cfg
	raw := len(cands)
	lo, hasLo, hi := r.window(depth)
	if hi != maxUint32 {
		cands = vertexset.Below(cands, hi)
	}
	if hasLo {
		cands = vertexset.Above(cands, lo)
	}
	lst := r.st.Level(depth)
	if lst != nil {
		lst.Scan(len(cands), raw-len(cands))
		defer lst.ScanTimerEnd(lst.ScanTimerStart())
	}
	isLeaf := depth == cfg.n-1
	atCut := depth == r.iepCut
	// dupCheck lists only the earlier positions whose distinctness is not
	// already implied by candidate provenance or the restriction window —
	// usually none, so the O(depth) scan of the seed engine disappears.
	dup := cfg.dupCheck[depth]
next:
	for _, v := range cands {
		for _, p := range dup {
			if r.bound[p] == v {
				if lst != nil {
					lst.DupSkips++
				}
				continue next
			}
		}
		r.bound[depth] = v
		switch {
		case isLeaf:
			r.leaf()
			if r.stop != nil && r.stop.Load() {
				return
			}
		case atCut:
			r.runSteps(depth)
			r.count += r.iepCount()
		default:
			r.runSteps(depth)
			r.run(depth + 1)
			if r.stop != nil && r.stop.Load() {
				return
			}
		}
	}
}

// runFull is the CandFull variant of runList: candidates are all data
// vertices inside the restriction window.
func (r *runner) runFull(depth int) {
	lo, hasLo, hi := r.window(depth)
	start := 0
	if hasLo {
		start = int(lo) + 1
	}
	end := r.g.NumVertices()
	if hi != maxUint32 && int(hi) < end {
		end = int(hi)
	}
	lst := r.st.Level(depth)
	if lst != nil {
		size := end - start
		if size < 0 {
			size = 0
		}
		lst.Scan(size, r.g.NumVertices()-size)
		defer lst.ScanTimerEnd(lst.ScanTimerStart())
	}
	isLeaf := depth == r.cfg.n-1
	atCut := depth == r.iepCut
	dup := r.cfg.dupCheck[depth]
next:
	for vi := start; vi < end; vi++ {
		v := uint32(vi)
		for _, p := range dup {
			if r.bound[p] == v {
				if lst != nil {
					lst.DupSkips++
				}
				continue next
			}
		}
		r.bound[depth] = v
		switch {
		case isLeaf:
			r.leaf()
			if r.stop != nil && r.stop.Load() {
				return
			}
		case atCut:
			r.runSteps(depth)
			r.count += r.iepCount()
		default:
			r.runSteps(depth)
			r.run(depth + 1)
			if r.stop != nil && r.stop.Load() {
				return
			}
		}
	}
}

// beginAuxRoot switches the aux scratch to a new root subtree; one branch
// when pruning is disabled. Consecutive calls with the same root (an edge-
// parallel root's slot groups landing on one worker) keep the built rows.
func (r *runner) beginAuxRoot(v uint32) {
	if r.aux == nil {
		return
	}
	var bm vertexset.Bitmap
	if r.hasHubs {
		bm = r.g.HubBitmap(v)
	}
	r.aux.BeginRoot(v, r.g.Neighbors(v), bm)
}

// runSteps executes the intersections hoisted to this depth, picking the
// kernel per step: when either input is a hub adjacency with a precomputed
// bitmap and the other side is smaller, the O(|small|) bitmap probe replaces
// the scalar merge/gallop. Aux-eligible steps (computeAuxModes) first try the
// root's pruned row: a copy when the left operand is N(v0) itself, a
// narrower intersection otherwise; both are exact substitutions, and a
// declined row falls through to the full-row path below.
func (r *runner) runSteps(depth int) {
	lst := r.st.Level(depth)
	var modes []auxStepMode
	if r.aux != nil && depth < len(r.auxModes) {
		modes = r.auxModes[depth]
	}
	for i, stp := range r.cfg.plan.Steps[depth] {
		if modes != nil && modes[i] != auxStepNone {
			if row, ok := r.aux.Row(r.bound[stp.Depth]); ok {
				if lst != nil {
					lst.Intersect(telemetry.KernelAux)
				}
				if modes[i] == auxStepCopy {
					r.bufs[stp.Out] = append(r.bufs[stp.Out][:0], row...)
				} else {
					r.bufs[stp.Out] = vertexset.Intersect(r.bufs[stp.Out], r.bufs[stp.LeftBuf], row)
				}
				continue
			}
		}
		var left []uint32
		var leftBM vertexset.Bitmap
		if stp.LeftBuf >= 0 {
			left = r.bufs[stp.LeftBuf]
		} else {
			lp := r.bound[stp.LeftParent]
			left = r.g.Neighbors(lp)
			if r.hasHubs {
				leftBM = r.g.HubBitmap(lp)
			}
		}
		rv := r.bound[stp.Depth]
		right := r.g.Neighbors(rv)
		out := r.bufs[stp.Out][:0]
		if r.hasHubs {
			if bm := r.g.HubBitmap(rv); bm != nil && len(left) <= len(right) {
				if lst != nil {
					lst.Intersect(telemetry.KernelBitmap)
				}
				r.bufs[stp.Out] = vertexset.IntersectBitmap(out, left, bm)
				continue
			}
			if leftBM != nil && len(right) < len(left) {
				if lst != nil {
					lst.Intersect(telemetry.KernelBitmap)
				}
				r.bufs[stp.Out] = vertexset.IntersectBitmap(out, right, leftBM)
				continue
			}
		}
		if lst != nil {
			lst.Intersect(telemetry.ClassifyIntersect(len(left), len(right), vertexset.GallopRatio))
		}
		r.bufs[stp.Out] = vertexset.Intersect(out, left, right)
	}
}

// leaf records one embedding, translating back to original vertex ids when
// the data graph is a degree-ordered relabeling.
func (r *runner) leaf() {
	r.count++
	if r.visit == nil {
		return
	}
	if r.orig != nil {
		for i, v := range r.bound {
			r.emb[r.cfg.order[i]] = r.orig[v]
		}
	} else {
		for i, v := range r.bound {
			r.emb[r.cfg.order[i]] = v
		}
	}
	if !r.visit(r.emb) {
		r.stop.Store(true)
	}
}

// iepCount computes the inclusion–exclusion count of the innermost k loops
// given the currently bound outer prefix (paper Figure 6: |S_IEP|). Hub
// neighborhoods among the candidate sets contribute their bitmaps so the
// calculator's internal intersections can use the bitmap kernel.
func (r *runner) iepCount() int64 {
	cfg := r.cfg
	k := len(r.iepSets)
	base := cfg.n - k
	if lst := r.st.Level(base - 1); lst != nil {
		lst.IEPCounts++
	}
	for i := 0; i < k; i++ {
		cand := cfg.plan.Cand[base+i]
		switch cand.Kind {
		case schedule.CandNeighborhood:
			p := r.bound[cand.Parent]
			r.iepSets[i] = r.g.Neighbors(p)
			if r.iepBMs != nil {
				r.iepBMs[i] = r.g.HubBitmap(p)
			}
		case schedule.CandBuffer:
			r.iepSets[i] = r.bufs[cand.Buf]
			if r.iepBMs != nil {
				r.iepBMs[i] = nil
			}
		default:
			// A disconnected inner vertex would need the whole vertex
			// set; connected patterns never produce this.
			panic("core: IEP inner loop with full candidate set")
		}
	}
	if r.iepBMs != nil {
		return r.calc.CountHybrid(r.iepSets, r.iepBMs, r.bound[:base])
	}
	return r.calc.Count(r.iepSets, r.bound[:base])
}
