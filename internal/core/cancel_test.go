package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

// cancelFixture returns a graph and compiled configuration whose full count
// takes long enough that a cancelled run's promptness is measurable.
func cancelFixture(t testing.TB) (*graph.Graph, *Config) {
	t.Helper()
	g := graph.BarabasiAlbert(6000, 8, 7)
	res, err := Plan(pattern.House(), g.Stats(), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g, res.Best
}

func TestCountCtxCancelStopsPromptly(t *testing.T) {
	g, cfg := cancelFixture(t)

	// Uncancelled baseline: the full search must be much slower than the
	// cancelled run below, otherwise the test proves nothing.
	t0 := time.Now()
	want := cfg.Count(g, RunOptions{Workers: 2})
	full := time.Since(t0)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	t0 = time.Now()
	n, err := cfg.CountCtx(ctx, g, RunOptions{Workers: 2})
	elapsed := time.Since(t0)
	if err == nil {
		t.Skip("search finished before the cancel fired; fixture too small for this machine")
	}
	if err != context.Canceled {
		t.Fatalf("CountCtx error = %v, want context.Canceled", err)
	}
	if n < 0 || n > want {
		t.Fatalf("partial tally %d outside [0, %d]", n, want)
	}
	// The workers observe cancellation at outer-loop boundaries, well
	// inside a single chunk; allow generous scheduler slack but require
	// the cancelled run to beat the full search decisively.
	if elapsed >= full {
		t.Fatalf("cancelled run took %v, full search takes %v — cancel did not stop the workers", elapsed, full)
	}
}

func TestCountCtxAlreadyCancelled(t *testing.T) {
	g, cfg := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := cfg.CountIEPCtx(ctx, g, RunOptions{Workers: 1})
	if err != context.Canceled {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Fatalf("pre-cancelled count = %d, want 0", n)
	}
}

func TestCountCtxCompleteMatchesCount(t *testing.T) {
	g := graph.BarabasiAlbert(400, 5, 11)
	res, err := Plan(pattern.House(), g.Stats(), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.Best
	want := cfg.CountIEP(g, RunOptions{Workers: 2})
	got, err := cfg.CountIEPCtx(context.Background(), g, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("CountIEPCtx = %d, CountIEP = %d", got, want)
	}
	gotEnum, err := cfg.EnumerateCtx(context.Background(), g, RunOptions{Workers: 2}, func([]uint32) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if gotEnum != want {
		t.Fatalf("EnumerateCtx visited %d, want %d", gotEnum, want)
	}
}

func TestEnumerateCtxCancelStopsVisits(t *testing.T) {
	g, cfg := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	var visits atomic.Int64
	// Each visit sleeps, modeling a streaming client; the context watcher's
	// wake-up latency is then far smaller than one visit, so after cancel
	// each worker reports at most the visit already in flight.
	n, err := cfg.EnumerateCtx(ctx, g, RunOptions{Workers: 2}, func([]uint32) bool {
		if visits.Add(1) == 20 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return true
	})
	if err != context.Canceled {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if n > 200 {
		t.Fatalf("enumerate visited %d embeddings after cancel at 20", n)
	}
}

func TestCountCtxBudgetAbort(t *testing.T) {
	g, cfg := cancelFixture(t)
	n, err := cfg.CountCtx(context.Background(), g, RunOptions{Workers: 1, Budget: time.Millisecond})
	if err == nil {
		t.Skip("search finished inside the budget; fixture too small for this machine")
	}
	if err != ErrBudgetExceeded {
		t.Fatalf("budget-aborted CountCtx error = %v, want ErrBudgetExceeded", err)
	}
	if n < 0 {
		t.Fatalf("negative partial tally %d", n)
	}
}

func TestCounterStop(t *testing.T) {
	g, cfg := cancelFixture(t)
	var stop atomic.Bool
	stop.Store(true)
	c := NewCounterStop(cfg, g, false, &stop)
	c.CountRange(0, g.NumVertices())
	c.CountEdgeRange(0, g.NumAdjSlots())
	if c.Raw() != 0 {
		t.Fatalf("stopped counter tallied %d, want 0", c.Raw())
	}
}
