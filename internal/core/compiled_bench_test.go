package core

import (
	"fmt"
	"testing"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

// BenchmarkTiers compares the execution tiers single-core on the skewed
// hybrid fixture — the numbers kernelbench tracks across PRs, in a form
// `go test -bench` and pprof can chew on.
func BenchmarkTiers(b *testing.B) {
	g := graph.BarabasiAlbert(12000, 5, 4242).Reorder()
	g.BuildHubBitmaps(0, 0)
	pats := []struct {
		name string
		p    *pattern.Pattern
	}{
		{"house", pattern.House()},
		{"pentagon", pattern.Pentagon()},
		{"k5", pattern.Clique(5)},
	}
	for _, pc := range pats {
		res, err := Plan(pc.p, g.Stats(), PlanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		cfg := res.Best
		for _, tier := range []Tier{TierInterpret, TierCompiled, TierGenerated} {
			if cfg.ResolveTier(g, tier, true) != tier {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", pc.name, tier), func(b *testing.B) {
				opt := RunOptions{Workers: 1, Tier: tier}
				for i := 0; i < b.N; i++ {
					cfg.CountIEP(g, opt)
				}
			})
		}
	}
}
