package core

// Ablation benchmarks for the design choices DESIGN.md calls out: what each
// GraphPi component buys on a fixed workload. Run with
//
//	go test ./internal/core -bench Ablation -benchtime 1x -v

import (
	"testing"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
)

func ablationGraph() *graph.Graph { return graph.BarabasiAlbert(8000, 7, 99) }

// BenchmarkAblationRestrictions compares matching with a complete
// restriction set against no symmetry breaking at all (AutoMine's regime:
// |Aut|× redundant work).
func BenchmarkAblationRestrictions(b *testing.B) {
	g := ablationGraph()
	p := pattern.House()
	sres := schedule.Generate(p, schedule.Options{})
	sets, err := restrict.Generate(p, restrict.Options{})
	if err != nil {
		b.Fatal(err)
	}
	withSet, _ := NewConfig(p, sres.Efficient[0], sets[0])
	without, _ := NewConfig(p, sres.Efficient[0], nil)
	b.Run("with-restrictions", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			withSet.Count(g, RunOptions{Workers: 1})
		}
	})
	b.Run("no-restrictions", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			without.Count(g, RunOptions{Workers: 1})
		}
	})
}

// BenchmarkAblationScheduleChoice compares the model-selected schedule with
// the worst efficient schedule (the spread Figure 9 plots).
func BenchmarkAblationScheduleChoice(b *testing.B) {
	g := ablationGraph()
	p := pattern.Cycle6Tri()
	stats := g.Stats()
	res, err := Plan(p, stats, PlanOptions{KeepAll: true})
	if err != nil {
		b.Fatal(err)
	}
	worst := res.Ranked[len(res.Ranked)-1]
	worstCfg, err := NewConfig(p, worst.Schedule, worst.Restrictions)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("model-selected", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res.Best.Count(g, RunOptions{Workers: 1})
		}
	})
	b.Run("worst-ranked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			worstCfg.Count(g, RunOptions{Workers: 1})
		}
	})
}

// BenchmarkAblationChunkSize sweeps the task granularity of the parallel
// runtime (paper §IV-E: fine-grained partitioning vs skew).
func BenchmarkAblationChunkSize(b *testing.B) {
	g := ablationGraph()
	cfg := benchPlan(b, g, pattern.House())
	for _, chunk := range []int{1, 16, 256, 4096} {
		b.Run(chunkName(chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg.Count(g, RunOptions{Workers: 4, ChunkSize: chunk})
			}
		})
	}
}

func chunkName(c int) string {
	switch c {
	case 1:
		return "chunk1"
	case 16:
		return "chunk16"
	case 256:
		return "chunk256"
	default:
		return "chunk4096"
	}
}
