package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
)

// bruteCountInjective counts all injective maps of pat into g preserving
// edges (i.e., embeddings × |Aut|). The oracle for engine correctness.
func bruteCountInjective(g *graph.Graph, pat *pattern.Pattern) int64 {
	n := pat.N()
	nv := g.NumVertices()
	used := make([]bool, nv)
	assign := make([]uint32, n)
	var count int64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			count++
			return
		}
	next:
		for v := 0; v < nv; v++ {
			if used[v] {
				continue
			}
			for j := 0; j < i; j++ {
				if pat.HasEdge(i, j) && !g.HasEdge(assign[j], uint32(v)) {
					continue next
				}
			}
			used[v] = true
			assign[i] = uint32(v)
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return count
}

// bruteCountEmbeddings returns the paper's embedding count: injective maps
// divided by the automorphism count.
func bruteCountEmbeddings(g *graph.Graph, pat *pattern.Pattern) int64 {
	return bruteCountInjective(g, pat) / int64(len(pat.Automorphisms()))
}

// identitySchedule returns the natural order schedule for an n-pattern.
func identitySchedule(n int) schedule.Schedule {
	o := make([]uint8, n)
	for i := range o {
		o[i] = uint8(i)
	}
	return schedule.Schedule{Order: o}
}

func mustConfig(t *testing.T, pat *pattern.Pattern, s schedule.Schedule, rs restrict.Set) *Config {
	t.Helper()
	cfg, err := NewConfig(pat, s, rs)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestNewConfigValidation(t *testing.T) {
	h := pattern.House()
	if _, err := NewConfig(h, schedule.Schedule{Order: []uint8{0, 1}}, nil); err == nil {
		t.Error("short schedule accepted")
	}
	if _, err := NewConfig(h, schedule.Schedule{Order: []uint8{0, 0, 1, 2, 3}}, nil); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := NewConfig(h, identitySchedule(5), restrict.Set{{First: 9, Second: 1}}); err == nil {
		t.Error("out-of-range restriction accepted")
	}
	if _, err := NewConfig(h, identitySchedule(5), restrict.Set{{First: 1, Second: 1}}); err == nil {
		t.Error("self-restriction accepted")
	}
}

func TestCountTrianglesOnKnownGraphs(t *testing.T) {
	tri := pattern.Triangle()
	sets, err := restrict.Generate(tri, restrict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustConfig(t, tri, identitySchedule(3), sets[0])
	cases := []struct {
		g    *graph.Graph
		want int64
	}{
		{graph.Complete(5), 10},
		{graph.Complete(10), 120},
		{graph.Cycle(6), 0},
		{graph.Star(10), 0},
	}
	for _, c := range cases {
		if got := cfg.Count(c.g, RunOptions{Workers: 1}); got != c.want {
			t.Errorf("%s: Count = %d, want %d", c.g.Name(), got, c.want)
		}
	}
}

func TestCountWithoutRestrictionsIsAutMultiple(t *testing.T) {
	g := graph.GNP(18, 0.4, 3)
	for _, p := range []*pattern.Pattern{
		pattern.Triangle(), pattern.Rectangle(), pattern.House(),
	} {
		bare := mustConfig(t, p, identitySchedule(p.N()), nil)
		got := bare.Count(g, RunOptions{Workers: 1})
		want := bruteCountInjective(g, p)
		if got != want {
			t.Errorf("%s unrestricted: %d, want %d", p, got, want)
		}
	}
}

func TestCountMatchesBruteForceAcrossConfigs(t *testing.T) {
	// Every (efficient schedule × restriction set) configuration must
	// produce the exact embedding count.
	g := graph.GNP(16, 0.45, 7)
	pats := []*pattern.Pattern{
		pattern.Triangle(), pattern.Rectangle(), pattern.House(),
		pattern.Pentagon(), pattern.CompleteBipartite(2, 3),
	}
	for _, p := range pats {
		want := bruteCountEmbeddings(g, p)
		sets, err := restrict.Generate(p, restrict.Options{MaxSets: 6})
		if err != nil {
			t.Fatal(err)
		}
		sres := schedule.Generate(p, schedule.Options{})
		for _, s := range sres.Efficient {
			for _, rs := range sets {
				cfg := mustConfig(t, p, s, rs)
				if got := cfg.Count(g, RunOptions{Workers: 1}); got != want {
					t.Errorf("%s sched %v set %v: %d, want %d", p, s, rs, got, want)
				}
			}
		}
	}
}

func TestCountEliminatedSchedulesStillCorrect(t *testing.T) {
	// Figure 9 runs schedules the generator eliminated; they are slower
	// but must be correct.
	g := graph.GNP(14, 0.5, 9)
	p := pattern.House()
	want := bruteCountEmbeddings(g, p)
	sets, err := restrict.Generate(p, restrict.Options{MaxSets: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := schedule.Generate(p, schedule.Options{KeepEliminated: true})
	for _, s := range res.Eliminated[:10] {
		cfg := mustConfig(t, p, s, sets[0])
		if got := cfg.Count(g, RunOptions{Workers: 1}); got != want {
			t.Errorf("eliminated schedule %v: %d, want %d", s, got, want)
		}
	}
}

func TestGraphZeroRestrictionSetCorrect(t *testing.T) {
	g := graph.GNP(16, 0.4, 11)
	for _, p := range []*pattern.Pattern{pattern.House(), pattern.Rectangle()} {
		want := bruteCountEmbeddings(g, p)
		gz := restrict.GraphZeroSet(p)
		sres := schedule.Generate(p, schedule.Options{})
		cfg := mustConfig(t, p, sres.Efficient[0], gz)
		if got := cfg.Count(g, RunOptions{Workers: 1}); got != want {
			t.Errorf("%s GraphZero set: %d, want %d", p, got, want)
		}
	}
}

func TestParallelCountMatchesSequential(t *testing.T) {
	g := graph.BarabasiAlbert(300, 5, 17)
	p := pattern.House()
	sets, err := restrict.Generate(p, restrict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sres := schedule.Generate(p, schedule.Options{})
	cfg := mustConfig(t, p, sres.Efficient[0], sets[0])
	want := cfg.Count(g, RunOptions{Workers: 1})
	for _, workers := range []int{2, 4, 8} {
		for _, chunk := range []int{0, 1, 17} {
			if got := cfg.Count(g, RunOptions{Workers: workers, ChunkSize: chunk}); got != want {
				t.Errorf("workers=%d chunk=%d: %d, want %d", workers, chunk, got, want)
			}
		}
	}
}

func TestCountIEPMatchesCount(t *testing.T) {
	g := graph.GNP(20, 0.4, 23)
	pats := []*pattern.Pattern{
		pattern.Triangle(), pattern.House(), pattern.Pentagon(),
		pattern.Cycle6Tri(), pattern.CompleteBipartite(2, 3), pattern.Prism(),
	}
	for _, p := range pats {
		sets, err := restrict.Generate(p, restrict.Options{MaxSets: 4})
		if err != nil {
			t.Fatal(err)
		}
		sres := schedule.Generate(p, schedule.Options{})
		for _, s := range sres.Efficient {
			for _, rs := range sets {
				cfg := mustConfig(t, p, s, rs)
				plain := cfg.Count(g, RunOptions{Workers: 1})
				viaIEP := cfg.CountIEP(g, RunOptions{Workers: 1})
				if plain != viaIEP {
					t.Errorf("%s sched %v set %v: IEP %d != plain %d (k=%d div=%d)",
						p, s, rs, viaIEP, plain, cfg.KIEP(), cfg.IEPDivisor())
				}
			}
		}
	}
}

func TestCountIEPParallel(t *testing.T) {
	g := graph.BarabasiAlbert(200, 4, 31)
	p := pattern.Cycle6Tri()
	sets, err := restrict.Generate(p, restrict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sres := schedule.Generate(p, schedule.Options{})
	cfg := mustConfig(t, p, sres.Efficient[0], sets[0])
	want := cfg.CountIEP(g, RunOptions{Workers: 1})
	if got := cfg.CountIEP(g, RunOptions{Workers: 4}); got != want {
		t.Errorf("parallel IEP %d != sequential %d", got, want)
	}
	if plain := cfg.Count(g, RunOptions{Workers: 4}); plain != want {
		t.Errorf("IEP %d != plain %d", want, plain)
	}
}

func TestEnumerateVisitsValidEmbeddings(t *testing.T) {
	g := graph.GNP(15, 0.5, 41)
	p := pattern.House()
	sets, err := restrict.Generate(p, restrict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sres := schedule.Generate(p, schedule.Options{})
	cfg := mustConfig(t, p, sres.Efficient[0], sets[0])
	want := cfg.Count(g, RunOptions{Workers: 1})
	var seen int64
	got := cfg.Enumerate(g, RunOptions{Workers: 1}, func(emb []uint32) bool {
		seen++
		// Every pattern edge must be present between the mapped vertices.
		for u := 0; u < p.N(); u++ {
			for v := u + 1; v < p.N(); v++ {
				if p.HasEdge(u, v) && !g.HasEdge(emb[u], emb[v]) {
					t.Fatalf("embedding %v misses edge {%d,%d}", emb, u, v)
				}
			}
		}
		// All distinct.
		for u := 0; u < p.N(); u++ {
			for v := u + 1; v < p.N(); v++ {
				if emb[u] == emb[v] {
					t.Fatalf("embedding %v repeats a vertex", emb)
				}
			}
		}
		return true
	})
	if seen != want || got != want {
		t.Errorf("Enumerate visited %d returned %d, want %d", seen, got, want)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := graph.Complete(12)
	p := pattern.Triangle()
	sets, _ := restrict.Generate(p, restrict.Options{})
	cfg := mustConfig(t, p, identitySchedule(3), sets[0])
	var visited int64
	cfg.Enumerate(g, RunOptions{Workers: 1}, func([]uint32) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Errorf("visited %d, want 5", visited)
	}
}

func TestEnumerateParallelCount(t *testing.T) {
	g := graph.GNP(40, 0.3, 5)
	p := pattern.Rectangle()
	sets, _ := restrict.Generate(p, restrict.Options{})
	sres := schedule.Generate(p, schedule.Options{})
	cfg := mustConfig(t, p, sres.Efficient[0], sets[0])
	want := cfg.Count(g, RunOptions{Workers: 1})
	var n int64
	got := cfg.Enumerate(g, RunOptions{Workers: 4}, func([]uint32) bool { return true })
	_ = n
	if got != want {
		t.Errorf("parallel Enumerate = %d, want %d", got, want)
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	p := pattern.Triangle()
	sets, _ := restrict.Generate(p, restrict.Options{})
	cfg := mustConfig(t, p, identitySchedule(3), sets[0])
	empty, _ := graph.FromEdges(0, nil)
	if got := cfg.Count(empty, RunOptions{}); got != 0 {
		t.Errorf("empty graph count = %d", got)
	}
	two, _ := graph.FromEdges(2, [][2]uint32{{0, 1}})
	if got := cfg.Count(two, RunOptions{}); got != 0 {
		t.Errorf("2-vertex graph count = %d", got)
	}
}

func TestSingleVertexPattern(t *testing.T) {
	p := pattern.MustNew(1, nil, "v")
	cfg := mustConfig(t, p, identitySchedule(1), nil)
	g := graph.GNP(25, 0.2, 1)
	if got := cfg.Count(g, RunOptions{Workers: 1}); got != 25 {
		t.Errorf("single-vertex count = %d, want 25", got)
	}
	if got := cfg.CountIEP(g, RunOptions{Workers: 1}); got != 25 {
		t.Errorf("single-vertex IEP count = %d, want 25", got)
	}
}

func TestPlanSelectsWorkingConfig(t *testing.T) {
	g := graph.BarabasiAlbert(150, 4, 2)
	stats := g.Stats()
	for _, p := range pattern.EvaluationPatterns()[:4] {
		res, err := Plan(p, stats, PlanOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Best == nil || res.PrepTime <= 0 {
			t.Fatalf("%s: incomplete result", p)
		}
		want := bruteCountEmbeddings(graph.GNP(12, 0.5, 3), p)
		got := res.Best.Count(graph.GNP(12, 0.5, 3), RunOptions{Workers: 1})
		if got != want {
			t.Errorf("%s planned config count = %d, want %d", p, got, want)
		}
	}
}

func TestPlanKeepAllRanksConsistently(t *testing.T) {
	g := graph.BarabasiAlbert(100, 4, 8)
	p := pattern.House()
	res, err := Plan(p, g.Stats(), PlanOptions{KeepAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != res.NumSchedules*res.NumRestrictionSets {
		t.Errorf("ranked %d, want %d", len(res.Ranked), res.NumSchedules*res.NumRestrictionSets)
	}
	for i := 1; i < len(res.Ranked); i++ {
		if res.Ranked[i].Cost < res.Ranked[i-1].Cost {
			t.Fatal("ranked configs out of order")
		}
	}
	// The planner may trade up to iepCostSlack of predicted cost for an
	// IEP-capable configuration; Best is otherwise the top-ranked one.
	if res.Best.Cost > res.Ranked[0].Cost*4 {
		t.Errorf("best cost %g too far above top ranked %g", res.Best.Cost, res.Ranked[0].Cost)
	}
}

func TestPlanGraphZeroBaseline(t *testing.T) {
	g := graph.BarabasiAlbert(100, 4, 4)
	p := pattern.House()
	res, err := PlanGraphZero(p, g.Stats())
	if err != nil {
		t.Fatal(err)
	}
	small := graph.GNP(14, 0.5, 6)
	want := bruteCountEmbeddings(small, p)
	if got := res.Best.Count(small, RunOptions{Workers: 1}); got != want {
		t.Errorf("GraphZero baseline count = %d, want %d", got, want)
	}
	if res.NumRestrictionSets != 1 {
		t.Errorf("GraphZero should use exactly 1 set, got %d", res.NumRestrictionSets)
	}
}

func TestPlanRejectsDisconnected(t *testing.T) {
	p := pattern.MustNew(4, [][2]int{{0, 1}, {2, 3}}, "disc")
	if _, err := Plan(p, graph.Stats{Vertices: 10, Edges: 20, Triangles: 5}, PlanOptions{}); err == nil {
		t.Error("disconnected pattern accepted")
	}
}

func TestRandomGraphsPatternsProperty(t *testing.T) {
	// The pillar property test: on random graphs and random connected
	// patterns, the planned configuration's Count, CountIEP and the brute
	// force oracle all agree.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1001))
		n := 3 + r.IntN(3)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.6 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		p := pattern.MustNew(n, edges, "rand")
		if !p.Connected() {
			return true
		}
		g := graph.GNP(12+r.IntN(6), 0.35+0.2*r.Float64(), seed)
		res, err := Plan(p, g.Stats(), PlanOptions{MaxRestrictionSets: 4})
		if err != nil {
			return false
		}
		want := bruteCountEmbeddings(g, p)
		if res.Best.Count(g, RunOptions{Workers: 1}) != want {
			return false
		}
		if res.Best.CountIEP(g, RunOptions{Workers: 2}) != want {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConfigAccessors(t *testing.T) {
	p := pattern.House()
	sets, _ := restrict.Generate(p, restrict.Options{})
	sres := schedule.Generate(p, schedule.Options{})
	cfg := mustConfig(t, p, sres.Efficient[0], sets[0])
	if cfg.N() != 5 {
		t.Errorf("N = %d", cfg.N())
	}
	if cfg.KIEP() < 1 {
		t.Errorf("KIEP = %d", cfg.KIEP())
	}
	if cfg.IEPDivisor() < 1 {
		t.Errorf("IEPDivisor = %d", cfg.IEPDivisor())
	}
	if len(cfg.PosRestrictions()) != len(sets[0]) {
		t.Errorf("PosRestrictions count mismatch")
	}
	if cfg.String() == "" || cfg.PlanView().N != 5 {
		t.Error("accessors broken")
	}
}
