// Package core is the heart of GraphPi: it compiles a configuration — a
// schedule plus a set of asymmetric restrictions (paper §IV) — into an
// executable loop program, runs it over a CSR data graph sequentially or in
// parallel, and hosts the planner that picks the optimal configuration with
// the performance model.
//
// The paper emits C++ source per configuration and compiles it; here the
// configuration is compiled to a compact interpreted program (see
// schedule.BuildPlan) with per-worker preallocated buffers, preserving the
// algorithm while staying a pure Go library.
package core

import (
	"fmt"
	"math"
	"sync"

	"graphpi/internal/costmodel"
	"graphpi/internal/iep"
	"graphpi/internal/pattern"
	"graphpi/internal/perm"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
)

// Config is a compiled, executable configuration: one schedule and one
// restriction set for one pattern.
type Config struct {
	// Pattern is the original pattern the configuration searches for.
	Pattern *pattern.Pattern
	// Schedule is the vertex search order.
	Schedule schedule.Schedule
	// Restrictions is the asymmetric restriction set, expressed on the
	// original pattern's vertex names.
	Restrictions restrict.Set
	// Cost is the performance model's prediction for this configuration
	// (set by the planner; 0 when the configuration was built manually).
	Cost float64

	n         int
	relabeled *pattern.Pattern
	plan      schedule.Plan
	order     []uint8 // position → original pattern vertex
	// lowers[d] lists positions p with restriction id(v_d) > id(v_p):
	// candidates at depth d must exceed bound[p].
	lowers [][]uint8
	// uppers[d] lists positions p with restriction id(v_p) > id(v_d):
	// candidates at depth d must stay below bound[p] (the paper's break).
	uppers [][]uint8
	// dupCheck[d] lists the positions p < d whose bound vertex could still
	// collide with a depth-d candidate: positions that are neither pattern
	// neighbors of d (candidates come from their neighborhoods, and the
	// data graph has no self-loops) nor covered by a restriction window.
	// Usually empty, eliminating the engine's O(depth) duplicate scan.
	dupCheck [][]uint8
	// kIEP is the usable inclusion–exclusion suffix of this schedule,
	// possibly shrunk so the over-count correction below is exact.
	kIEP int
	// CountIEP scales its raw tally by iepNum/iepDen: dropping the
	// restrictions of the innermost kIEP loops makes every subgraph be
	// counted iepDen times instead of iepNum times (paper §IV-D's x is
	// iepDen with iepNum = 1 for complete restriction sets).
	iepNum, iepDen int64
	// planParams, when set by the planner, carries the data-graph
	// statistics the configuration was costed against; the compiled tier
	// freezes its intersection kernels from them (costmodel.FreezeKernels).
	// Manually built configurations leave it nil → adaptive kernels.
	planParams *costmodel.Params
	// cliqueQ is nonzero when the generated clique suite may substitute
	// for this configuration (see detectCliqueKernel).
	cliqueQ int
	// auxModes[d][i] classifies plan.Steps[d][i] against the level-0
	// auxiliary graph (see computeAuxModes); structural, independent of
	// whether a run enables pruning.
	auxModes [][]auxStepMode

	compileMu sync.Mutex
	// compiled memoizes compiled tiers per (graph, IEP, tier); guarded by
	// compileMu.
	compiled map[compiledKey]*Compiled
}

// NewConfig compiles a configuration. The schedule must be a permutation of
// the pattern's vertices and the restrictions must reference pattern
// vertices; neither is required to be "efficient" or complete — experiment
// harnesses deliberately run eliminated schedules and foreign restriction
// sets (Figures 2b and 9).
func NewConfig(pat *pattern.Pattern, sched schedule.Schedule, rs restrict.Set) (*Config, error) {
	n := pat.N()
	if len(sched.Order) != n {
		return nil, fmt.Errorf("core: schedule %v has %d vertices, pattern has %d",
			sched, len(sched.Order), n)
	}
	seen := make([]bool, n)
	for _, v := range sched.Order {
		if int(v) >= n || seen[v] {
			return nil, fmt.Errorf("core: schedule %v is not a permutation", sched)
		}
		seen[v] = true
	}
	for _, r := range rs {
		if int(r.First) >= n || int(r.Second) >= n || r.First == r.Second {
			return nil, fmt.Errorf("core: restriction %v out of range", r)
		}
	}

	c := &Config{
		Pattern:      pat,
		Schedule:     sched.Clone(),
		Restrictions: rs.Clone(),
		n:            n,
		order:        append([]uint8(nil), sched.Order...),
	}
	c.relabeled = schedule.RelabeledPattern(pat, sched)
	c.plan = schedule.BuildPlan(c.relabeled, n)

	// Bake the restrictions into per-depth candidate windows (restrict
	// package): each attaches to its later schedule position's loop.
	pos := make([]uint8, n)
	for depth, v := range sched.Order {
		pos[v] = uint8(depth)
	}
	windows := restrict.BakeWindows(rs, pos)
	c.lowers = windows.Lowers
	c.uppers = windows.Uppers

	c.dupCheck = make([][]uint8, n)
	for d := 1; d < n; d++ {
		for p := 0; p < d; p++ {
			if c.relabeled.HasEdge(d, p) {
				continue // candidate ∈ N(bound[p]) ⇒ candidate ≠ bound[p]
			}
			covered := false
			for _, q := range c.lowers[d] {
				if int(q) == p {
					covered = true
					break
				}
			}
			for _, q := range c.uppers[d] {
				if int(q) == p {
					covered = true
					break
				}
			}
			if !covered {
				c.dupCheck[d] = append(c.dupCheck[d], uint8(p))
			}
		}
	}

	c.kIEP = sched.SuffixIndependent(pat)
	if c.kIEP > n-1 {
		c.kIEP = n - 1
	}
	if c.kIEP > iep.MaxK {
		c.kIEP = iep.MaxK
	}
	c.computeIEPScaling()
	c.detectCliqueKernel(windows)
	c.computeAuxModes()
	return c, nil
}

// maxIEPExactnessN caps the pattern size for which the IEP over-count
// correction is verified (the check enumerates all n! relative orders).
// Larger patterns simply fall back to plain enumeration when CountIEP is
// requested; the paper's patterns stop at 7 vertices.
const maxIEPExactnessN = 8

// computeIEPScaling determines the largest usable IEP suffix and the exact
// over-count correction.
//
// Paper §IV-D drops the restrictions of the innermost k loops and divides
// the raw IEP tally by x, the number of automorphisms the remaining
// restrictions fail to eliminate. That division is exact only when every
// automorphism-coset of injective maps has the same number of members
// passing the outer restrictions — which holds for the configurations the
// paper exercises but not for every (schedule, restriction set) pair
// Algorithm 1 can emit. We therefore verify exactness explicitly: for k
// from the schedule's independent suffix downward, enumerate the n!
// relative orders grouped into automorphism cosets and check that the
// per-coset counts of orders passing (a) the full set and (b) the
// outer-only set are constants. The first k that passes fixes the scaling
// CountIEP must apply (full/outer, i.e. iepNum/iepDen); if none passes,
// CountIEP falls back to full enumeration (kIEP = 0).
func (c *Config) computeIEPScaling() {
	c.iepNum, c.iepDen = 1, 1
	if c.kIEP < 1 || c.n < 2 {
		c.kIEP = 0
		return
	}
	if c.n > maxIEPExactnessN {
		c.kIEP = 0
		return
	}
	full := c.posRestrictionSet(c.n)
	auts := c.relabeled.Automorphisms()
	for k := c.kIEP; k >= 1; k-- {
		outer := c.posRestrictionSet(c.n - k)
		num, den, ok := cosetConstants(c.n, auts, full, outer)
		if ok {
			c.kIEP = k
			c.iepNum, c.iepDen = num, den
			return
		}
	}
	c.kIEP = 0
}

// posRestrictionSet collects the restrictions (in position space) whose
// later endpoint lies before cut — i.e. the checks executed by the
// outermost cut loops.
func (c *Config) posRestrictionSet(cut int) restrict.Set {
	var out restrict.Set
	for d := 0; d < cut && d < c.n; d++ {
		for _, p := range c.lowers[d] {
			out = append(out, restrict.Restriction{First: uint8(d), Second: p})
		}
		for _, p := range c.uppers[d] {
			out = append(out, restrict.Restriction{First: p, Second: uint8(d)})
		}
	}
	return out.Canonicalize()
}

// cosetConstants partitions the n! relative orders into automorphism cosets
// (σ ~ σ∘a) and returns the per-coset counts of orders satisfying the full
// and outer restriction sets, provided those counts are the same for every
// coset; ok is false otherwise.
func cosetConstants(n int, auts []perm.Perm, full, outer restrict.Set) (numFull, numOuter int64, ok bool) {
	pass := func(sigma perm.Perm, s restrict.Set) bool {
		for _, r := range s {
			if sigma[r.First] <= sigma[r.Second] {
				return false
			}
		}
		return true
	}
	visited := make([]bool, perm.Factorial(n))
	tau := make(perm.Perm, n)
	first := true
	ok = true
	perm.ForEach(n, func(sigma perm.Perm) bool {
		if visited[lehmerRank(sigma)] {
			return true
		}
		var mFull, mOuter int64
		for _, a := range auts {
			for i := range a {
				tau[i] = sigma[a[i]]
			}
			visited[lehmerRank(tau)] = true
			if pass(tau, outer) {
				mOuter++
				if pass(tau, full) {
					mFull++
				}
			}
		}
		if first {
			numFull, numOuter, first = mFull, mOuter, false
		} else if mFull != numFull || mOuter != numOuter {
			ok = false
			return false
		}
		return true
	})
	if numOuter == 0 {
		return 0, 0, false // inconsistent set: nothing would ever be counted
	}
	return numFull, numOuter, ok
}

// lehmerRank maps a permutation to its lexicographic rank in [0, n!).
func lehmerRank(p perm.Perm) int64 {
	n := len(p)
	var rank int64
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank += int64(smaller) * perm.Factorial(n-1-i)
	}
	return rank
}

// N returns the pattern size.
func (c *Config) N() int { return c.n }

// KIEP returns the inclusion–exclusion suffix length this configuration can
// exploit when counting (0 when CountIEP must fall back to enumeration).
func (c *Config) KIEP() int { return c.kIEP }

// IEPDivisor returns the over-count divisor applied by CountIEP (the
// paper's x; the full scaling is IEPNumerator()/IEPDivisor()).
func (c *Config) IEPDivisor() int64 { return c.iepDen }

// IEPNumerator returns the numerator of CountIEP's scaling (1 for complete
// restriction sets).
func (c *Config) IEPNumerator() int64 { return c.iepNum }

// Plan exposes the compiled loop program (read-only; used by the cost model
// and experiment reports).
func (c *Config) PlanView() schedule.Plan { return c.plan }

// PosRestrictions returns the restrictions mapped to schedule positions as
// (First, Second) pairs meaning id(pos First) > id(pos Second).
func (c *Config) PosRestrictions() [][2]uint8 {
	var out [][2]uint8
	for d := 0; d < c.n; d++ {
		for _, p := range c.lowers[d] {
			out = append(out, [2]uint8{uint8(d), p})
		}
		for _, p := range c.uppers[d] {
			out = append(out, [2]uint8{p, uint8(d)})
		}
	}
	return out
}

func (c *Config) String() string {
	return fmt.Sprintf("config{%s, schedule %s, restrictions %s, cost %.3g}",
		c.Pattern, c.Schedule, c.Restrictions, c.Cost)
}

// maxUint32 is the open upper limit used when no restriction bounds a loop.
const maxUint32 = math.MaxUint32
