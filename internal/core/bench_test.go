package core

import (
	"testing"

	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

func benchPlan(b *testing.B, g *graph.Graph, p *pattern.Pattern) *Config {
	b.Helper()
	res, err := Plan(p, g.Stats(), PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return res.Best
}

// BenchmarkCountTriangle measures the core counting kernel on a skewed
// social-style graph.
func BenchmarkCountTriangle(b *testing.B) {
	g := graph.BarabasiAlbert(20000, 8, 7)
	cfg := benchPlan(b, g, pattern.Triangle())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Count(g, RunOptions{Workers: 1})
	}
}

// BenchmarkCountHouse measures a 5-vertex pattern end to end.
func BenchmarkCountHouse(b *testing.B) {
	g := graph.BarabasiAlbert(5000, 6, 7)
	cfg := benchPlan(b, g, pattern.House())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Count(g, RunOptions{Workers: 1})
	}
}

// BenchmarkCountHouseIEP isolates the IEP counting gain on the same
// workload as BenchmarkCountHouse.
func BenchmarkCountHouseIEP(b *testing.B) {
	g := graph.BarabasiAlbert(5000, 6, 7)
	cfg := benchPlan(b, g, pattern.House())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.CountIEP(g, RunOptions{Workers: 1})
	}
}

// BenchmarkCountParallel measures multi-worker scaling of the runtime.
func BenchmarkCountParallel(b *testing.B) {
	g := graph.BarabasiAlbert(20000, 8, 7)
	cfg := benchPlan(b, g, pattern.House())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.CountIEP(g, RunOptions{Workers: 0})
	}
}

// BenchmarkPlanHouse measures preprocessing (Table III regime) for a
// 5-vertex pattern.
func BenchmarkPlanHouse(b *testing.B) {
	g := graph.BarabasiAlbert(2000, 6, 7)
	stats := g.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(pattern.House(), stats, PlanOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanK7e measures preprocessing for the heaviest evaluation
// pattern (P6).
func BenchmarkPlanK7e(b *testing.B) {
	g := graph.BarabasiAlbert(2000, 6, 7)
	stats := g.Stats()
	p := pattern.CliqueMinus(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(p, stats, PlanOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
