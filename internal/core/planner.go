package core

import (
	"errors"
	"fmt"
	"time"

	"graphpi/internal/costmodel"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
)

// ErrNoSchedule is returned when schedule generation yields no usable
// search order for a pattern.
var ErrNoSchedule = errors.New("core: no efficient schedule")

// PlanOptions tunes the configuration search (paper Figure 3: configuration
// generation + performance prediction).
type PlanOptions struct {
	// MaxRestrictionSets caps how many restriction sets Algorithm 1
	// produces for ranking (0 → restrict package default).
	MaxRestrictionSets int
	// Model selects the cost model (GraphPi default; GraphZeroApprox
	// reproduces the baseline's blind estimator).
	Model costmodel.Model
	// GraphZeroRestrictions uses the single GraphZero-style restriction
	// set instead of Algorithm 1's families (baseline reproduction).
	GraphZeroRestrictions bool
	// Phase1Only disables the Phase-2 schedule filter (baseline
	// reproduction: GraphZero generates connected schedules only).
	Phase1Only bool
	// KeepAll retains every ranked configuration in the result (used by
	// the experiment harness; costs one compile per configuration).
	KeepAll bool
}

// Candidate pairs a configuration with its predicted cost before
// compilation; exposed for experiment reporting.
type Candidate struct {
	Schedule     schedule.Schedule
	Restrictions restrict.Set
	Cost         float64
}

// PlanResult is the planner's output.
type PlanResult struct {
	// Best is the compiled minimum-predicted-cost configuration.
	Best *Config
	// Ranked lists all candidate configurations ascending by predicted
	// cost (populated only with PlanOptions.KeepAll).
	Ranked []Candidate
	// NumSchedules and NumRestrictionSets describe the searched space.
	NumSchedules, NumRestrictionSets int
	// K and KEff are the pattern's independent-set bound and the Phase-2
	// threshold actually applied.
	K, KEff int
	// PrepTime is the total preprocessing time: restriction generation,
	// schedule generation and performance prediction (paper Table III).
	PrepTime time.Duration
}

// Plan runs GraphPi's preprocessing for a pattern against the statistics of
// a data graph: generate restriction sets (Algorithm 1), generate efficient
// schedules (2-phase), predict the cost of every combination, and compile
// the best configuration.
func Plan(pat *pattern.Pattern, stats graph.Stats, opt PlanOptions) (*PlanResult, error) {
	start := time.Now()
	if !pat.Connected() {
		return nil, fmt.Errorf("core: pattern %s is disconnected", pat)
	}

	var sets []restrict.Set
	if opt.GraphZeroRestrictions {
		sets = []restrict.Set{restrict.GraphZeroSet(pat)}
	} else {
		var err error
		sets, err = restrict.Generate(pat, restrict.Options{MaxSets: opt.MaxRestrictionSets})
		if err != nil {
			return nil, err
		}
	}

	sres := schedule.Generate(pat, schedule.Options{Phase1Only: opt.Phase1Only})
	if len(sres.Efficient) == 0 {
		return nil, fmt.Errorf("core: no efficient schedules for %s", pat)
	}

	params := costmodel.FromStats(stats)
	res := &PlanResult{
		NumSchedules:       len(sres.Efficient),
		NumRestrictionSets: len(sets),
		K:                  sres.K,
		KEff:               sres.KEff,
	}

	type scored struct {
		sched, set int
		cost       float64
	}
	var ranked []scored
	for si, s := range sres.Efficient {
		plan := schedule.BuildPlan(schedule.RelabeledPattern(pat, s), pat.N())
		for ri, rs := range sets {
			raw := make([][2]uint8, len(rs))
			for j, r := range rs {
				raw[j] = [2]uint8{r.First, r.Second}
			}
			mapped := schedule.MapRestrictions(s, raw)
			cost := costmodel.Estimate(plan, pat.N(), mapped, params, opt.Model).Cost
			ranked = append(ranked, scored{sched: si, set: ri, cost: cost})
			if opt.KeepAll {
				res.Ranked = append(res.Ranked, Candidate{
					Schedule:     s.Clone(),
					Restrictions: rs.Clone(),
					Cost:         cost,
				})
			}
		}
	}
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0 && ranked[j].cost < ranked[j-1].cost; j-- {
			ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
		}
	}
	if opt.KeepAll {
		sortCandidates(res.Ranked)
	}

	compile := func(c scored) (*Config, error) {
		cfg, err := NewConfig(pat, sres.Efficient[c.sched], sets[c.set])
		if err != nil {
			return nil, err
		}
		cfg.Cost = c.cost
		// Hand the costing statistics to the configuration so the compiled
		// tier can freeze its intersection kernels from the same model.
		p := params
		cfg.planParams = &p
		return cfg, nil
	}
	best, err := compile(ranked[0])
	if err != nil {
		return nil, err
	}
	// IEP preference: the paper's counting path relies on the IEP suffix,
	// but the exactness check of computeIEPScaling can reject the top
	// configuration's restriction set. If a configuration within
	// iepCostSlack of the best prediction supports IEP, prefer it — the
	// counting speedup dwarfs the modeled difference.
	if best.KIEP() == 0 {
		for i, tries := 1, 0; i < len(ranked) && tries < iepMaxProbes; i++ {
			if ranked[i].cost > ranked[0].cost*iepCostSlack {
				break
			}
			tries++
			alt, err := compile(ranked[i])
			if err != nil {
				return nil, err
			}
			if alt.KIEP() >= 1 {
				best = alt
				break
			}
		}
	}
	res.Best = best
	res.PrepTime = time.Since(start)
	return res, nil
}

const (
	// iepCostSlack bounds how much predicted cost the planner trades for
	// an IEP-capable configuration. IEP gains are typically an order of
	// magnitude or more (paper Figure 10), so a 4x modeled enumeration
	// cost is still a good trade for counting workloads.
	iepCostSlack = 4.0
	// iepMaxProbes bounds how many alternative configurations are
	// compiled while searching for IEP support.
	iepMaxProbes = 32
)

func sortCandidates(cs []Candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Cost < cs[j-1].Cost; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// PlanGraphZero reproduces the GraphZero baseline's preprocessing: one
// canonical restriction set, Phase-1-only schedules, and the degree-only
// restriction-blind cost model.
func PlanGraphZero(pat *pattern.Pattern, stats graph.Stats) (*PlanResult, error) {
	return Plan(pat, stats, PlanOptions{
		Model:                 costmodel.GraphZeroApprox,
		GraphZeroRestrictions: true,
		Phase1Only:            true,
	})
}
