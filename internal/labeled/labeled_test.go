package labeled

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

// bruteLabeledCount counts labeled embeddings by brute force: all injective
// label- and edge-consistent maps, divided by the label-preserving
// automorphism count.
func bruteLabeledCount(g *graph.Graph, labels []Label, p *Pattern) int64 {
	n := p.Shape.N()
	nv := g.NumVertices()
	used := make([]bool, nv)
	assign := make([]uint32, n)
	var maps int64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			maps++
			return
		}
	next:
		for v := 0; v < nv; v++ {
			if used[v] {
				continue
			}
			if p.Labels[i] != Wildcard && labels[v] != p.Labels[i] {
				continue
			}
			for j := 0; j < i; j++ {
				if p.Shape.HasEdge(i, j) && !g.HasEdge(assign[j], uint32(v)) {
					continue next
				}
			}
			used[v] = true
			assign[i] = uint32(v)
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	_, preserving := p.labelAutomorphisms()
	return maps / int64(len(preserving))
}

func TestNewPatternValidation(t *testing.T) {
	if _, err := NewPattern(pattern.Triangle(), []Label{0, 1}); err == nil {
		t.Error("short label vector accepted")
	}
	if _, err := NewPattern(pattern.Triangle(), []Label{0, 1, 2}); err != nil {
		t.Error(err)
	}
}

func TestLabeledTriangleByHand(t *testing.T) {
	// K4 with labels [0,0,1,1]: triangles with label multiset {0,0,1} are
	// {0,1,2} and {0,1,3} → 2 embeddings.
	g := graph.Complete(4)
	labels := []Label{0, 0, 1, 1}
	p, err := NewPattern(pattern.Triangle(), []Label{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Count(g, labels, p, core.RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("labeled triangles = %d, want 2", got)
	}
	// All-wildcard labels reduce to the unlabeled count: C(4,3) = 4.
	wild, _ := NewPattern(pattern.Triangle(), []Label{Wildcard, Wildcard, Wildcard})
	got, err = Count(g, labels, wild, core.RunOptions{Workers: 1})
	if err != nil || got != 4 {
		t.Errorf("wildcard triangles = %d (%v), want 4", got, err)
	}
}

func TestLabeledAsymmetricOrientation(t *testing.T) {
	// The subtle case the layered design must get right: the unlabeled
	// engine reports each subgraph under ONE correspondence; a labeled
	// match may exist only under an automorphic alternative. Path A-B-C
	// with labels [1,0,2] on a path graph labeled [2,0,1] matches only in
	// the flipped orientation.
	g := graph.Path(3)
	labels := []Label{2, 0, 1}
	p, err := NewPattern(pattern.PathN(3), []Label{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Count(g, labels, p, core.RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("flipped-orientation match = %d, want 1", got)
	}
	// And a label vector that matches in no orientation.
	none, _ := NewPattern(pattern.PathN(3), []Label{1, 1, 2})
	got, err = Count(g, labels, none, core.RunOptions{Workers: 1})
	if err != nil || got != 0 {
		t.Errorf("impossible labels matched %d times (%v)", got, err)
	}
}

func TestLabeledMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 404))
		g := graph.GNP(12+r.IntN(4), 0.45, seed)
		labels := make([]Label, g.NumVertices())
		for i := range labels {
			labels[i] = Label(r.IntN(3))
		}
		shapes := []*pattern.Pattern{
			pattern.Triangle(), pattern.Rectangle(), pattern.PathN(4), pattern.House(),
		}
		shape := shapes[r.IntN(len(shapes))]
		plabels := make([]Label, shape.N())
		for i := range plabels {
			if r.IntN(4) == 0 {
				plabels[i] = Wildcard
			} else {
				plabels[i] = Label(r.IntN(3))
			}
		}
		p, err := NewPattern(shape, plabels)
		if err != nil {
			return false
		}
		want := bruteLabeledCount(g, labels, p)
		got, err := Count(g, labels, p, core.RunOptions{Workers: 2})
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCountValidation(t *testing.T) {
	g := graph.Complete(5)
	p, _ := NewPattern(pattern.Triangle(), []Label{0, 0, 0})
	if _, err := Count(g, []Label{0, 0}, p, core.RunOptions{}); err == nil {
		t.Error("short vertex label vector accepted")
	}
}

func TestAssignLabelsRoundRobin(t *testing.T) {
	l := AssignLabelsRoundRobin(7, 3)
	want := []Label{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("labels = %v", l)
		}
	}
}
