// Package labeled extends GraphPi to vertex-labeled pattern matching, the
// extension the paper states its methods admit ("all patterns and data
// graphs are assumed to be undirected and unlabeled graphs, although all
// methods proposed in this paper can be easily extended to directed and
// labeled graphs", §II-A).
//
// The implementation layers labels on top of the unlabeled engine without
// touching it, which keeps every redundancy-elimination guarantee intact:
//
//  1. The unlabeled engine enumerates each subgraph isomorphic to the
//     pattern's *shape* exactly once (complete restriction set).
//  2. For each enumerated subgraph, the automorphisms of the shape are the
//     only alternative correspondences; we count how many of them satisfy
//     the label constraints.
//  3. Two label-consistent correspondences denote the same labeled
//     embedding iff they differ by a *label-preserving* automorphism, so
//     the subgraph contributes (consistent correspondences) / |Aut_labeled|
//     labeled embeddings — an exact integer by the coset argument.
//
// This trades some throughput (labels do not prune the search) for zero
// risk to the unlabeled kernels; a fully label-pruned engine is the natural
// next optimization and would slot into the candidate computation.
package labeled

import (
	"fmt"

	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/perm"
)

// Label is a vertex label. The zero value is a valid label.
type Label uint16

// Wildcard matches any data-graph label when used in a pattern.
const Wildcard Label = 0xFFFF

// Pattern is a vertex-labeled query pattern.
type Pattern struct {
	Shape  *pattern.Pattern
	Labels []Label // len = Shape.N(); Wildcard entries match anything
}

// NewPattern pairs a shape with per-vertex labels.
func NewPattern(shape *pattern.Pattern, labels []Label) (*Pattern, error) {
	if len(labels) != shape.N() {
		return nil, fmt.Errorf("labeled: %d labels for %d vertices", len(labels), shape.N())
	}
	return &Pattern{Shape: shape, Labels: append([]Label(nil), labels...)}, nil
}

// labelAutomorphisms splits the shape's automorphisms into all vs
// label-preserving.
func (p *Pattern) labelAutomorphisms() (all, preserving []perm.Perm) {
	all = p.Shape.Automorphisms()
	for _, a := range all {
		ok := true
		for v := 0; v < p.Shape.N(); v++ {
			if p.Labels[v] != p.Labels[a[v]] {
				ok = false
				break
			}
		}
		if ok {
			preserving = append(preserving, a)
		}
	}
	return all, preserving
}

// Count returns the number of labeled embeddings of p in g, where
// vertexLabels[v] is the label of data vertex v (len = g.NumVertices()).
func Count(g *graph.Graph, vertexLabels []Label, p *Pattern, opt core.RunOptions) (int64, error) {
	if len(vertexLabels) != g.NumVertices() {
		return 0, fmt.Errorf("labeled: %d labels for %d vertices", len(vertexLabels), g.NumVertices())
	}
	res, err := core.Plan(p.Shape, g.Stats(), core.PlanOptions{})
	if err != nil {
		return 0, err
	}
	auts, preserving := p.labelAutomorphisms()
	nLab := int64(len(preserving))
	n := p.Shape.N()

	// Enumerate may invoke the visitor concurrently; funnel per-subgraph
	// tallies through a channel to a single accumulator.
	var total int64
	done := make(chan int64, 1)
	partial := make(chan int64, 1024)
	go func() {
		var sum int64
		for v := range partial {
			sum += v
		}
		done <- sum
	}()
	res.Best.Enumerate(g, opt, func(emb []uint32) bool {
		var consistent int64
		for _, a := range auts {
			ok := true
			for v := 0; v < n; v++ {
				want := p.Labels[v]
				if want == Wildcard {
					continue
				}
				if vertexLabels[emb[a[v]]] != Label(want) {
					ok = false
					break
				}
			}
			if ok {
				consistent++
			}
		}
		if consistent > 0 {
			partial <- consistent
		}
		return true
	})
	close(partial)
	total = <-done
	return total / nLab, nil
}

// AssignLabelsRoundRobin produces a deterministic label assignment for
// tests and examples: vertex v gets label v mod numLabels.
func AssignLabelsRoundRobin(n int, numLabels int) []Label {
	out := make([]Label, n)
	for v := range out {
		out[v] = Label(v % numLabels)
	}
	return out
}
