package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Job states. A job is queued from creation until the admission controller
// grants it a run slot and worker budget, running until its backend returns,
// and then exactly one of done / failed / canceled.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobInfo is the externally visible record of one query job (the /jobs
// payload). Fields are snapshots; ask again for fresh ones.
type JobInfo struct {
	ID       string  `json:"id"`
	Kind     string  `json:"kind"` // count | enumerate
	Graph    string  `json:"graph"`
	Pattern  string  `json:"pattern"`
	Backend  string  `json:"backend,omitempty"`
	Status   string  `json:"status"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	Count    int64   `json:"count,omitempty"`
	Error    string  `json:"error,omitempty"`
	Created  string  `json:"created"`
	QueueSec float64 `json:"queue_seconds"`
	RunSec   float64 `json:"run_seconds,omitempty"`
}

// job is the internal record behind a JobInfo.
type job struct {
	id      string
	kind    string
	graph   string
	pattern string

	mu       sync.Mutex
	backend  string
	status   string
	cacheHit bool
	workers  int
	count    int64
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
}

func (j *job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:       j.id,
		Kind:     j.kind,
		Graph:    j.graph,
		Pattern:  j.pattern,
		Backend:  j.backend,
		Status:   j.status,
		CacheHit: j.cacheHit,
		Workers:  j.workers,
		Count:    j.count,
		Created:  j.created.UTC().Format(time.RFC3339Nano),
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	switch {
	case j.started.IsZero() && !j.finished.IsZero():
		// Finished without running (shed, plan error, cancelled in queue):
		// the queue time is frozen at the terminal moment.
		info.QueueSec = j.finished.Sub(j.created).Seconds()
	case j.started.IsZero():
		info.QueueSec = time.Since(j.created).Seconds()
	default:
		info.QueueSec = j.started.Sub(j.created).Seconds()
		if j.finished.IsZero() {
			info.RunSec = time.Since(j.started).Seconds()
		} else {
			info.RunSec = j.finished.Sub(j.started).Seconds()
		}
	}
	return info
}

// setRunning transitions queued → running and records the grant.
func (j *job) setRunning(backend string, workers int, cacheHit bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = JobRunning
	j.backend = backend
	j.workers = workers
	j.cacheHit = cacheHit
	j.started = time.Now()
}

// finish records the terminal state. A context cancellation maps to
// JobCanceled, any other error to JobFailed.
func (j *job) finish(count int64, err error) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.count = count
	j.err = err
	switch {
	case err == nil:
		j.status = JobDone
	case err == context.Canceled || err == context.DeadlineExceeded:
		j.status = JobCanceled
	default:
		j.status = JobFailed
	}
	return j.status
}

// Cancel fires the job's context cancellation (idempotent; a no-op once the
// cancel func is cleared after completion).
func (j *job) Cancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// jobTable tracks every live job plus a bounded history of finished ones so
// /jobs answers stay useful without growing forever.
type jobTable struct {
	mu       sync.Mutex
	next     int64
	jobs     map[string]*job
	finished []string // finished ids in completion order, pruned FIFO
	keep     int
}

func newJobTable(keepFinished int) *jobTable {
	if keepFinished < 1 {
		keepFinished = 256
	}
	return &jobTable{jobs: map[string]*job{}, keep: keepFinished}
}

// create registers a new queued job and returns it with its cancelable
// context.
func (t *jobTable) create(ctx context.Context, kind, graphName, patternName string) (*job, context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	t.mu.Lock()
	t.next++
	j := &job{
		id:      fmt.Sprintf("j%d", t.next),
		kind:    kind,
		graph:   graphName,
		pattern: patternName,
		status:  JobQueued,
		created: time.Now(),
		cancel:  cancel,
	}
	t.jobs[j.id] = j
	t.mu.Unlock()
	return j, ctx
}

// retire moves a job into the finished ring, pruning the oldest beyond the
// keep bound, and releases its context resources.
func (t *jobTable) retire(j *job) {
	j.mu.Lock()
	if cancel := j.cancel; cancel != nil {
		j.cancel = nil
		defer cancel() // release the context's resources without marking canceled
	}
	j.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished = append(t.finished, j.id)
	for len(t.finished) > t.keep {
		delete(t.jobs, t.finished[0])
		t.finished = t.finished[1:]
	}
}

func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// list snapshots every tracked job, newest first.
func (t *jobTable) list() []JobInfo {
	t.mu.Lock()
	jobs := make([]*job, 0, len(t.jobs))
	for _, j := range t.jobs {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()
	out := make([]JobInfo, len(jobs))
	for i, j := range jobs {
		out[i] = j.info()
	}
	sort.Slice(out, func(a, b int) bool {
		// ids are "j<seq>": compare numerically via length then lexically.
		if len(out[a].ID) != len(out[b].ID) {
			return len(out[a].ID) > len(out[b].ID)
		}
		return out[a].ID > out[b].ID
	})
	return out
}
