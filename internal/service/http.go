package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"

	"graphpi/internal/cluster"
	"graphpi/internal/core"
	"graphpi/internal/graph"
)

// Handler returns the service's HTTP API:
//
//	GET  /healthz               liveness (503 when every cluster worker is lost)
//	GET  /graphs                resident graphs
//	POST /graphs                load a snapshot: {"name","path","optimize"}
//	GET|POST /count             count embeddings (JSON result)
//	GET|POST /enumerate         stream embeddings as NDJSON
//	GET  /jobs                  all tracked jobs, newest first
//	GET  /jobs/{id}             one job
//	POST /jobs/{id}/cancel      cancel a queued or running job
//	GET  /explain               plan + cost-model predictions, no execution
//	GET  /metrics               JSON counters; ?format=prometheus for scrapers
//	GET  /debug/pprof/...       net/http/pprof (only with Options.EnablePprof)
//
// Query parameters for /count and /enumerate: graph (resident graph name;
// optional when exactly one graph is resident), pattern (a named pattern or
// "n:adjacency"), iep (default true for /count), backend (auto|local|
// cluster), workers (per-job budget cap), planner (graphpi|graphzero),
// tier (count: auto|interpret|compiled|generated; local backend only),
// aux (count: off|on|force — auxiliary-graph pruning; local backend only,
// counts are bit-identical either way), profile (count: collect per-level
// run stats and a cost-model drift report into the result's "profile"
// field), and limit (enumerate: stop after N embeddings). /explain accepts
// the same graph/pattern/iep/planner/tier parameters.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Degrade, don't lie: a server configured for cluster dispatch with
		// zero live workers cannot serve its default backend, so load
		// balancers should route elsewhere until the pool recovers.
		if s.ClusterDegraded() {
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]any{"ok": false, "error": "no live cluster workers"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /graphs", s.handleGraphs)
	mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	mux.HandleFunc("GET /count", s.handleCount)
	mux.HandleFunc("POST /count", s.handleCount)
	mux.HandleFunc("GET /enumerate", s.handleEnumerate)
	mux.HandleFunc("POST /enumerate", s.handleEnumerate)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleJobCancel)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opt.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError maps execution errors onto HTTP statuses: statusError carries
// its own, ErrQueueFull is load shedding, a cancelled context is the client
// hanging up (writing is moot but harmless), anything else is a 500.
func writeError(w http.ResponseWriter, err error) {
	var se *statusError
	switch {
	case errors.As(err, &se):
		writeJSON(w, se.status, map[string]string{"error": se.msg})
	case errors.Is(err, ErrQueueFull):
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, 499, map[string]string{"error": "canceled"}) // nginx's client-closed-request
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

// parseQuery reads the shared query parameters from URL query and/or form.
func parseQuery(r *http.Request, countDefaultIEP bool) (queryRequest, error) {
	q := r.URL.Query()
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err == nil {
			for k, vs := range r.PostForm {
				if q.Get(k) == "" && len(vs) > 0 {
					q.Set(k, vs[0])
				}
			}
		}
	}
	req := queryRequest{
		graphName:   q.Get("graph"),
		patternSpec: q.Get("pattern"),
		backendName: q.Get("backend"),
		planner:     q.Get("planner"),
		useIEP:      countDefaultIEP,
	}
	if req.patternSpec == "" {
		return req, &statusError{400, "pattern parameter required"}
	}
	switch p := req.planner; p {
	case "", "graphpi":
		req.planner = ""
	case "graphzero":
	default:
		return req, &statusError{400, fmt.Sprintf("unknown planner %q (want graphpi or graphzero)", p)}
	}
	if v := q.Get("iep"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return req, &statusError{400, fmt.Sprintf("bad iep value %q", v)}
		}
		req.useIEP = b
	}
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return req, &statusError{400, fmt.Sprintf("bad workers value %q", v)}
		}
		req.workers = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return req, &statusError{400, fmt.Sprintf("bad limit value %q", v)}
		}
		req.limit = n
	}
	if v := q.Get("tier"); v != "" {
		t, err := core.ParseTier(v)
		if err != nil {
			return req, &statusError{400, err.Error()}
		}
		req.tier = t
	}
	if v := q.Get("aux"); v != "" {
		m, err := core.ParseAuxMode(v)
		if err != nil {
			return req, &statusError{400, err.Error()}
		}
		req.aux = m
	}
	if v := q.Get("profile"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return req, &statusError{400, fmt.Sprintf("bad profile value %q", v)}
		}
		req.profile = b
	}
	return req, nil
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	req, err := parseQuery(r, true)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.runCount(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleEnumerate streams embeddings as NDJSON: one JSON array of original
// vertex ids per line, then a trailer object with the job summary. The
// stream begins only once the job is admitted and planned, so early errors
// still produce proper HTTP statuses.
func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	req, err := parseQuery(r, false)
	if err != nil {
		writeError(w, err)
		return
	}
	var (
		mu      sync.Mutex
		started bool
		flusher http.Flusher
	)
	if f, ok := w.(http.Flusher); ok {
		flusher = f
	}
	visit := func(emb []uint32) bool {
		line, err := json.Marshal(emb)
		if err != nil {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if !started {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return false // client gone; EnumerateCtx also sees the context cancel
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	res, err := s.runEnumerate(r.Context(), req, visit)
	mu.Lock()
	defer mu.Unlock()
	if err != nil {
		if !started {
			writeError(w, err)
		}
		return
	}
	if !started {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}
	if line, err := json.Marshal(res); err == nil {
		w.Write(append(line, '\n'))
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// graphInfo is the /graphs payload for one resident graph.
type graphInfo struct {
	Name        string `json:"name"`
	Vertices    int    `json:"vertices"`
	Edges       int64  `json:"edges"`
	Optimized   bool   `json:"optimized"`
	Hubs        int    `json:"hubs,omitempty"`
	Fingerprint string `json:"fingerprint"`
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	rgs := s.graphList()
	out := make([]graphInfo, 0, len(rgs))
	for _, rg := range rgs {
		out = append(out, graphInfo{
			Name:        rg.name,
			Vertices:    rg.g.NumVertices(),
			Edges:       rg.g.NumEdges(),
			Optimized:   rg.g.IsReordered(),
			Hubs:        rg.g.NumHubs(),
			Fingerprint: rg.fp,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// loadGraphRequest is the POST /graphs body: load a snapshot (or edge list)
// from a server-side path and register it, optionally optimizing first.
// The service trusts its operator; this is an admin endpoint, not a public
// upload surface.
type loadGraphRequest struct {
	Name      string `json:"name"`
	Path      string `json:"path"`
	Optimize  bool   `json:"optimize"`
	HubBudget int64  `json:"hub_budget,omitempty"`
	HubFloor  int    `json:"hub_floor,omitempty"`
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var req loadGraphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &statusError{400, fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.Path == "" {
		writeError(w, &statusError{400, "path required"})
		return
	}
	g, err := loadGraphFile(req.Path)
	if err != nil {
		writeError(w, &statusError{400, err.Error()})
		return
	}
	if req.Optimize {
		if !g.IsReordered() {
			g = g.Reorder()
		}
		// Rebuild hubs when the snapshot carries none or the operator tuned
		// the parameters; an already-tuned snapshot's hub set is kept when
		// the request leaves them at defaults.
		if g.NumHubs() == 0 || req.HubBudget > 0 || req.HubFloor > 0 {
			g.BuildHubBitmaps(req.HubBudget, req.HubFloor)
		}
	}
	name := req.Name
	if name == "" {
		name = g.Name()
	}
	if name == "" {
		writeError(w, &statusError{400, "name required (snapshot carries no dataset name)"})
		return
	}
	if err := s.AddGraph(name, g); err != nil {
		writeError(w, &statusError{409, err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, graphInfo{
		Name:        name,
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		Optimized:   g.IsReordered(),
		Hubs:        g.NumHubs(),
		Fingerprint: cluster.FingerprintKey(g),
	})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.list())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, &statusError{404, fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, &statusError{404, fmt.Sprintf("no job %q", id)})
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, map[string]any{"job": id, "cancel": "requested", "status": j.info().Status})
}

// loadGraphFile reads a snapshot or edge-list file with format
// auto-detection (shared with the facade's LoadGraph).
func loadGraphFile(path string) (*graph.Graph, error) {
	return graph.LoadAnyFile(path)
}
