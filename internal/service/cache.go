package service

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"graphpi/internal/core"
)

// planCache memoizes GraphPi's expensive preprocessing — restriction-set
// generation, 2-phase schedule generation and performance prediction — per
// (graph fingerprint, canonical pattern form, planner options). The paper
// amortizes that cost across one long batch run; a resident service
// amortizes it across queries: a repeat query skips the search entirely and
// goes straight to execution, so its planning latency is a map lookup.
//
// Keys use the pattern's canonical form (the lexicographically-least
// relabeling, computed via internal/perm), so isomorphic patterns written
// differently — "house" by name versus its adjacency matrix with the
// vertices shuffled — share one entry. The graph component is the cluster
// handshake fingerprint, so an entry can never be replayed against a
// different resident graph.
//
// Entries are LRU-evicted under a byte budget (coarse per-entry estimate;
// compiled configurations are small, so the budget is really a count bound
// that scales with pattern size). Concurrent requests for the same missing
// key coalesce onto one planning run: the first caller builds while the
// rest wait on the entry — the cache-stampede guard, asserted by test.
type planCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recent; values are *cacheEntry
	byKey  map[planKey]*cacheEntry

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	// plans counts actual planning runs — the observable the stampede and
	// hit-latency tests assert on (hits and coalesced waiters don't bump it).
	plans atomic.Int64
}

// planKey identifies one cached plan. The graph is identified by its
// resident name AND its fingerprint: the name separates distinct graphs
// whose structural fingerprints collide (two unnamed snapshots with equal
// |V| and |E| would otherwise share schedules planned from the wrong
// degree statistics), while the fingerprint keeps a name honest should
// registration ever allow replacing a graph under an existing name.
type planKey struct {
	graphName string // resident registration name
	graphFP   string // cluster.FingerprintKey of the resident graph
	patternCK string // pattern.CanonicalKey: equal across isomorphic forms
	options   string // planner options that change the search outcome
}

type cacheEntry struct {
	key   planKey
	elem  *list.Element
	bytes int64

	// ready is closed once cfg/prep/err are final; waiters coalescing on an
	// in-flight build block on it.
	ready chan struct{}
	cfg   *core.Config
	prep  time.Duration
	err   error
}

func newPlanCache(budgetBytes int64) *planCache {
	if budgetBytes <= 0 {
		budgetBytes = defaultCacheBytes
	}
	return &planCache{
		budget: budgetBytes,
		lru:    list.New(),
		byKey:  map[planKey]*cacheEntry{},
	}
}

const defaultCacheBytes = 8 << 20

// get returns the cached configuration for key, building it with build on a
// miss. hit reports whether a planning run was avoided (a waiter coalescing
// onto someone else's in-flight build counts as a hit: it paid no planning).
func (c *planCache) get(key planKey, build func() (*core.Config, time.Duration, error)) (cfg *core.Config, prep time.Duration, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// Failed builds are removed at completion; this waiter just
			// reports the same failure.
			return nil, 0, false, e.err
		}
		c.hits.Add(1)
		return e.cfg, e.prep, true, nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.byKey[key] = e
	c.misses.Add(1)
	c.mu.Unlock()

	c.plans.Add(1)
	// A panicking planner must not leave the in-flight entry open forever —
	// waiters coalescing on it would block while holding admission slots,
	// wedging the service. Settle the entry (as a removed failure) before
	// the panic propagates.
	settled := false
	defer func() {
		if settled {
			return
		}
		c.mu.Lock()
		e.err = errPlanPanic
		c.removeLocked(e)
		close(e.ready)
		c.mu.Unlock()
	}()
	cfg, prep, err = build()
	settled = true

	c.mu.Lock()
	e.cfg, e.prep, e.err = cfg, prep, err
	if err != nil {
		c.removeLocked(e)
	} else {
		e.bytes = entryBytes(cfg)
		c.used += e.bytes
		c.evictLocked()
	}
	close(e.ready)
	c.mu.Unlock()
	return cfg, prep, false, err
}

// errPlanPanic is what coalesced waiters observe when the building caller's
// planner panicked out from under them.
var errPlanPanic = errors.New("service: planning panicked")

// evictLocked drops least-recently-used completed entries until the budget
// holds. In-flight entries (bytes 0, someone is planning) are skipped: they
// are about to be used, and their waiters hold references anyway.
func (c *planCache) evictLocked() {
	for c.used > c.budget {
		victim := (*cacheEntry)(nil)
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*cacheEntry); e.bytes > 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		c.removeLocked(victim)
		c.evictions.Add(1)
	}
}

func (c *planCache) removeLocked(e *cacheEntry) {
	c.lru.Remove(e.elem)
	delete(c.byKey, e.key)
	c.used -= e.bytes
}

// entryBytes coarsely estimates a compiled configuration's footprint: the
// schedule/restriction slices are tiny, so a fixed overhead plus small
// per-vertex terms keeps eviction order sane without chasing exact sizes.
func entryBytes(cfg *core.Config) int64 {
	n := int64(cfg.N())
	return 1024 + 64*n*n + 32*int64(len(cfg.Restrictions))
}

// cacheStats is the metrics snapshot.
type cacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Plans     int64 `json:"planning_runs"`
}

func (c *planCache) stats() cacheStats {
	c.mu.Lock()
	entries, used := c.lru.Len(), c.used
	c.mu.Unlock()
	return cacheStats{
		Entries:   entries,
		Bytes:     used,
		Budget:    c.budget,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Plans:     c.plans.Load(),
	}
}

// PlanningRuns exposes the planning-run counter for tests: a cache hit must
// leave it unchanged.
func (c *planCache) PlanningRuns() int64 { return c.plans.Load() }
