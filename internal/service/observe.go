package service

import (
	"net/http"

	"graphpi/internal/pattern"
	"graphpi/internal/telemetry"
)

// The observability surface: GET /explain (the plan and its cost-model
// predictions without executing anything) and the /metrics renderers (JSON by
// default, Prometheus text exposition behind ?format=prometheus).

// explainResult is the GET /explain payload: everything the planner decided
// for a query, plus the cost model's per-level predictions in the same drift
// shape ?profile=1 returns — with zero actuals, since nothing ran.
type explainResult struct {
	Graph    string `json:"graph"`
	Pattern  string `json:"pattern"`
	Planner  string `json:"planner"`
	Schedule string `json:"schedule"`
	IEP      bool   `json:"iep"`
	Cache    string `json:"cache"` // hit | miss — whether the plan was cached
	// Tier is the execution tier a local run of this plan would resolve to.
	Tier          string  `json:"tier"`
	PlanSec       float64 `json:"plan_seconds"`
	PredictedCost float64 `json:"predicted_cost,omitempty"`
	// Predicted carries the per-level predictions (actuals zero, ratios
	// invalid). Nil when the configuration has no planner statistics.
	Predicted *telemetry.DriftReport `json:"predicted,omitempty"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, err := parseQuery(r, true)
	if err != nil {
		writeError(w, err)
		return
	}
	rg, err := s.resolveGraph(req.graphName)
	if err != nil {
		writeError(w, err)
		return
	}
	pat, err := pattern.Parse(req.patternSpec)
	if err != nil {
		writeError(w, &statusError{400, err.Error()})
		return
	}
	cfg, planSec, hit, err := s.plan(rg, pat, req.planner)
	if err != nil {
		writeError(w, err)
		return
	}
	planner := req.planner
	if planner == "" {
		planner = "graphpi"
	}
	res := explainResult{
		Graph:    rg.name,
		Pattern:  pat.String(),
		Planner:  planner,
		Schedule: cfg.Schedule.String(),
		IEP:      req.useIEP,
		Cache:    cacheLabel(hit),
		Tier:     cfg.ResolveTier(rg.g, req.tier, req.useIEP).String(),
		PlanSec:  planSec,
	}
	if d, ok := cfg.DriftReport(req.useIEP, nil); ok {
		res.Predicted = d
		res.PredictedCost = d.PredictedCost
	}
	writeJSON(w, http.StatusOK, res)
}

// handleMetrics serves /metrics. The payload is always a point-in-time
// snapshot, so it is never cacheable; JSON is the default shape and
// ?format=prometheus selects the text exposition a scraper wants.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
		writeJSON(w, http.StatusOK, s.MetricsSnapshot())
	case "prometheus":
		w.Header().Set("Content-Type", telemetry.PromContentType)
		s.promExposition().WriteTo(w)
	default:
		writeError(w, &statusError{400, "unknown format " + f + " (want json or prometheus)"})
	}
}

// promExposition renders the service's state as Prometheus metric families:
// the JSON snapshot's fields, the cluster pool's latency histograms, and
// every process-level metric in the telemetry registry.
func (s *Server) promExposition() *telemetry.Exposition {
	m := s.MetricsSnapshot()
	e := telemetry.NewExposition()
	e.AddGauge("graphpi_uptime_seconds", "Seconds since the server started.", m.UptimeSec, nil)
	e.AddGauge("graphpi_graphs_resident", "Graphs registered and resident in memory.", float64(m.Graphs), nil)
	e.AddGauge("graphpi_queue_depth", "Admitted jobs waiting for a run slot.", float64(m.QueueDepth), nil)
	e.AddGauge("graphpi_running_jobs", "Jobs holding a run slot.", float64(m.RunningJobs), nil)
	e.AddGauge("graphpi_busy_workers", "Worker goroutines checked out of the shared pool.", float64(m.BusyWorkers), nil)
	e.AddGauge("graphpi_worker_cap", "Shared worker pool capacity.", float64(m.WorkerCap), nil)

	const jobsHelp = "Job outcomes since start, by terminal state."
	e.AddCounter("graphpi_jobs_total", jobsHelp, float64(m.Jobs.Created), map[string]string{"state": "created"})
	e.AddCounter("graphpi_jobs_total", jobsHelp, float64(m.Jobs.Done), map[string]string{"state": "done"})
	e.AddCounter("graphpi_jobs_total", jobsHelp, float64(m.Jobs.Failed), map[string]string{"state": "failed"})
	e.AddCounter("graphpi_jobs_total", jobsHelp, float64(m.Jobs.Canceled), map[string]string{"state": "canceled"})
	e.AddCounter("graphpi_jobs_total", jobsHelp, float64(m.Jobs.Rejected), map[string]string{"state": "rejected"})

	e.AddGauge("graphpi_plan_cache_entries", "Plans resident in the cache.", float64(m.Cache.Entries), nil)
	e.AddGauge("graphpi_plan_cache_bytes", "Bytes the cached plans occupy.", float64(m.Cache.Bytes), nil)
	e.AddCounter("graphpi_plan_cache_hits_total", "Plan cache hits.", float64(m.Cache.Hits), nil)
	e.AddCounter("graphpi_plan_cache_misses_total", "Plan cache misses.", float64(m.Cache.Misses), nil)
	e.AddCounter("graphpi_plan_cache_evictions_total", "Plans evicted by the byte budget.", float64(m.Cache.Evictions), nil)
	e.AddCounter("graphpi_planning_runs_total", "Planner executions (cache misses that planned).", float64(m.Cache.Plans), nil)

	if s.cluster != nil {
		e.AddGauge("graphpi_cluster_workers_configured", "Cluster workers configured.", float64(m.WorkersConfigured), nil)
		e.AddGauge("graphpi_cluster_workers_alive", "Cluster workers currently connected.", float64(m.WorkersAlive), nil)
		e.AddCounter("graphpi_cluster_rejoins_total", "Workers re-admitted after a loss.", float64(m.RejoinsTotal), nil)
		e.AddCounter("graphpi_cluster_tasks_redealt_total", "Tasks re-dealt from lost workers.", float64(m.RedealtTotal), nil)
		e.AddCounter("graphpi_cluster_job_retries_total", "Whole-job retries after total failures.", float64(m.JobRetriesTotal), nil)
		st, _ := s.cluster.poolStats()
		e.AddHistogram("graphpi_cluster_task_gap_seconds",
			"Master-side gap between consecutive task acks per rank (per-task latency proxy).", st.TaskGap, nil)
		e.AddHistogram("graphpi_cluster_steal_relay_seconds",
			"Steal-request relay latency: request arrival to task forwarded.", st.Steal, nil)
		e.AddHistogram("graphpi_cluster_redeal_seconds",
			"Re-deal drain duration after a worker loss.", st.Redeal, nil)
	}

	e.AddGathered(telemetry.Gather())
	return e
}
