package service

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"graphpi/internal/telemetry"
)

// get fetches a URL and returns the response with its body read out, for
// tests that assert on headers as well as payloads.
func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp, body
}

// TestServiceProfilePerTier: ?profile=1 must return per-level
// predicted-vs-actual stats on all three execution tiers, leave the count
// bit-identical, survive a plan-cache hit (the hot path re-enters the memoized
// kernel with collection on), and stay absent without the flag.
func TestServiceProfilePerTier(t *testing.T) {
	g := baFixture(300, 4, 7)
	s := newTestServer(t, g, Options{})
	base := startHTTP(t, s)

	// k4 exists in the generated clique suite, so all three tiers are real
	// kernels rather than silent interpreter fallbacks.
	var ref queryResult
	if code := getJSON(t, base+"/count?graph=ba&pattern=k4", &ref); code != 200 {
		t.Fatalf("reference count: status %d", code)
	}
	if ref.Profile != nil {
		t.Fatal("profile payload present without ?profile=1")
	}

	for _, tc := range []struct{ tier, label string }{
		{"interpret", "interpreted"},
		{"compiled", "compiled"},
		{"generated", "generated"},
	} {
		url := base + "/count?graph=ba&pattern=k4&tier=" + tc.tier + "&profile=1"
		var qr queryResult
		if code := getJSON(t, url, &qr); code != 200 {
			t.Fatalf("%s: status %d", url, code)
		}
		if qr.Count != ref.Count {
			t.Errorf("tier %s profiled count %d, want %d", tc.tier, qr.Count, ref.Count)
		}
		p := qr.Profile
		if p == nil {
			t.Fatalf("tier %s: no profile payload", tc.tier)
		}
		if p.Tier != tc.label || p.Tier != qr.Tier {
			t.Errorf("tier %s: profile labels %q, result %q, want %q", tc.tier, p.Tier, qr.Tier, tc.label)
		}
		if len(p.Levels) != 4 {
			t.Fatalf("tier %s: %d profiled levels, want 4", tc.tier, len(p.Levels))
		}
		if p.Levels[0].Scans == 0 {
			t.Errorf("tier %s: no level-0 scans recorded", tc.tier)
		}
		if p.Drift == nil {
			t.Fatalf("tier %s: no drift report", tc.tier)
		}
		if len(p.Drift.Levels) != 4 || p.Drift.PredictedCost <= 0 {
			t.Errorf("tier %s: drift = %d levels, cost %v", tc.tier, len(p.Drift.Levels), p.Drift.PredictedCost)
		}
		var sawActual bool
		for _, ld := range p.Drift.Levels {
			if !ld.CoveredByIEP && ld.ActualIntersections+ld.ActualCandidates > 0 {
				sawActual = true
			}
		}
		if !sawActual {
			t.Errorf("tier %s: drift report carries no actual counters", tc.tier)
		}
	}

	// The repeat is a plan-cache hit and must still profile.
	var warm queryResult
	if code := getJSON(t, base+"/count?graph=ba&pattern=k4&profile=1", &warm); code != 200 {
		t.Fatal("warm profiled count failed")
	}
	if warm.Cache != "hit" || warm.Profile == nil || len(warm.Profile.Levels) != 4 {
		t.Fatalf("warm profiled query = cache %q, profile %+v", warm.Cache, warm.Profile)
	}
}

// TestServiceProfileOnCluster: the wire protocol reduces counts, not
// counters, so a profiled cluster query degrades to predictions-only with an
// explanatory note instead of failing or silently returning zeros as actuals.
func TestServiceProfileOnCluster(t *testing.T) {
	g := baFixture(300, 4, 7)
	addrs := startWorkers(t, g, 2)
	s := newTestServer(t, g, Options{ClusterAddrs: addrs, MaxConcurrent: 1})

	qr, err := s.runCount(context.Background(), queryRequest{
		graphName:   "ba",
		patternSpec: "house",
		useIEP:      true,
		backendName: "cluster",
		profile:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := qr.Profile
	if p == nil {
		t.Fatal("cluster profiled query returned no profile payload")
	}
	if len(p.Levels) != 0 {
		t.Errorf("cluster profile carries %d levels of actuals; the wire reduces counts only", len(p.Levels))
	}
	if p.Note == "" {
		t.Error("cluster profile carries no explanatory note")
	}
	if p.Drift == nil || p.Drift.PredictedCost <= 0 {
		t.Errorf("cluster profile should still carry predictions, got %+v", p.Drift)
	}
}

// TestServiceExplain: GET /explain reports the plan — schedule, tier, cost
// predictions — without executing anything, and its repeat rides the plan
// cache.
func TestServiceExplain(t *testing.T) {
	g := baFixture(300, 4, 7)
	s := newTestServer(t, g, Options{})
	base := startHTTP(t, s)

	var cold explainResult
	if code := getJSON(t, base+"/explain?graph=ba&pattern=house", &cold); code != 200 {
		t.Fatalf("explain: status %d", code)
	}
	if cold.Graph != "ba" || cold.Schedule == "" || cold.Tier == "" || cold.Cache != "miss" {
		t.Fatalf("explain = %+v", cold)
	}
	if cold.Predicted == nil || len(cold.Predicted.Levels) != 5 || cold.PredictedCost <= 0 {
		t.Fatalf("explain predictions = %+v", cold.Predicted)
	}
	for _, ld := range cold.Predicted.Levels {
		if ld.ActualIntersections != 0 || ld.Valid {
			t.Errorf("explain level %d carries actuals (%+v); nothing ran", ld.Level, ld)
		}
	}

	var warm explainResult
	if code := getJSON(t, base+"/explain?graph=ba&pattern=house", &warm); code != 200 {
		t.Fatal("warm explain failed")
	}
	if warm.Cache != "hit" || warm.Schedule != cold.Schedule {
		t.Fatalf("warm explain = cache %q schedule %q, cold schedule %q", warm.Cache, warm.Schedule, cold.Schedule)
	}

	if code := getJSON(t, base+"/explain?graph=ba&pattern=nonsense", nil); code != 400 {
		t.Fatalf("bad pattern explain: status %d, want 400", code)
	}
	if code := getJSON(t, base+"/explain?graph=missing&pattern=house", nil); code != 404 {
		t.Fatalf("missing graph explain: status %d, want 404", code)
	}
}

// TestServiceMetricsFormats: /metrics is never cacheable, serves JSON by
// default, renders valid Prometheus text exposition behind ?format=prometheus
// (validated with the same promtool-style checker CI uses), and rejects
// unknown formats.
func TestServiceMetricsFormats(t *testing.T) {
	g := baFixture(300, 4, 7)
	s := newTestServer(t, g, Options{})
	base := startHTTP(t, s)

	// Run one profiled count so the process-level counters and the latency
	// histogram hold nonzero samples.
	if code := getJSON(t, base+"/count?graph=ba&pattern=p3&profile=1", nil); code != 200 {
		t.Fatal("seed count failed")
	}

	resp, _ := get(t, base+"/metrics")
	if resp.StatusCode != 200 || resp.Header.Get("Cache-Control") != "no-store" {
		t.Fatalf("GET /metrics: status %d, Cache-Control %q", resp.StatusCode, resp.Header.Get("Cache-Control"))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default /metrics Content-Type = %q, want JSON", ct)
	}

	resp, body := get(t, base+"/metrics?format=prometheus")
	if resp.StatusCode != 200 || resp.Header.Get("Cache-Control") != "no-store" {
		t.Fatalf("prometheus /metrics: status %d, Cache-Control %q", resp.StatusCode, resp.Header.Get("Cache-Control"))
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Fatalf("prometheus Content-Type = %q, want %q", ct, telemetry.PromContentType)
	}
	if err := telemetry.CheckExposition(body); err != nil {
		t.Fatalf("exposition fails validation: %v\n%s", err, body)
	}
	for _, want := range []string{
		"graphpi_uptime_seconds ",
		"graphpi_jobs_total{state=\"done\"}",
		"graphpi_count_queries_total ",
		"graphpi_profiled_runs_total ",
		"graphpi_query_seconds_bucket{",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition is missing %q", want)
		}
	}

	resp, _ = get(t, base+"/metrics?format=xml")
	if resp.StatusCode != 400 {
		t.Fatalf("unknown format: status %d, want 400", resp.StatusCode)
	}
}

// TestServicePprofGate: the pprof surface exists only when the operator
// turned it on.
func TestServicePprofGate(t *testing.T) {
	g := baFixture(100, 3, 1)
	closed := startHTTP(t, newTestServer(t, g, Options{}))
	if resp, _ := get(t, closed+"/debug/pprof/"); resp.StatusCode != 404 {
		t.Fatalf("pprof without the flag: status %d, want 404", resp.StatusCode)
	}
	open := startHTTP(t, newTestServer(t, g, Options{EnablePprof: true}))
	if resp, _ := get(t, open+"/debug/pprof/"); resp.StatusCode != 200 {
		t.Fatalf("pprof with the flag: status %d, want 200", resp.StatusCode)
	}
}
