package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"graphpi/internal/cluster"
	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
)

// baFixture is the shared skewed Barabási–Albert fixture: power-law degree
// distribution, optimized view (degree-ordered + hub bitmaps) as a service
// would deploy it.
func baFixture(n, m int, seed uint64) *graph.Graph {
	g := graph.BarabasiAlbert(n, m, seed).Reorder()
	g.BuildHubBitmaps(1<<20, 0)
	return g
}

// newTestServer builds a Server with the fixture registered as "ba".
func newTestServer(t *testing.T, g *graph.Graph, opt Options) *Server {
	t.Helper()
	s := New(opt)
	t.Cleanup(s.Close)
	if err := s.AddGraph("ba", g); err != nil {
		t.Fatal(err)
	}
	return s
}

// startHTTP serves s on a real ephemeral socket and returns its base URL —
// the e2e smoke path exercises genuine HTTP, not httptest shortcuts.
func startHTTP(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return "http://" + ln.Addr().String()
}

// startWorkers spawns n TCP cluster workers serving g and returns their
// addresses.
func startWorkers(t *testing.T, g *graph.Graph, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go cluster.Serve(ln, g, cluster.ServeOptions{})
		t.Cleanup(func() { ln.Close() })
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServiceE2ESmoke is the CI gate's end-to-end pass over a real socket:
// load a snapshot via the admin endpoint, run a cold count, verify the
// repeat is a cache hit that skipped planning, stream and cancel an
// enumerate, and check the jobs/metrics surfaces.
func TestServiceE2ESmoke(t *testing.T) {
	plain := graph.BarabasiAlbert(600, 5, 42)
	snap := filepath.Join(t.TempDir(), "ba.bin")
	if err := graph.SaveBinaryFile(snap, plain); err != nil {
		t.Fatal(err)
	}

	s := New(Options{})
	defer s.Close()
	base := startHTTP(t, s)

	// Load the graph through the admin endpoint, optimizing on the way in.
	body := strings.NewReader(fmt.Sprintf(`{"name":"ba","path":%q,"optimize":true}`, snap))
	resp, err := http.Post(base+"/graphs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /graphs = %d, want 201", resp.StatusCode)
	}
	var graphs []graphInfo
	if code := getJSON(t, base+"/graphs", &graphs); code != 200 || len(graphs) != 1 || !graphs[0].Optimized {
		t.Fatalf("GET /graphs = %d %+v, want one optimized graph", code, graphs)
	}

	// The direct-library answer the service must reproduce.
	sg, _ := s.Graph("ba")
	res, err := core.Plan(pattern.House(), sg.Stats(), core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Best.CountIEP(sg, core.RunOptions{})

	// Cold query: a miss that runs the planner.
	var cold queryResult
	if code := getJSON(t, base+"/count?graph=ba&pattern=house", &cold); code != 200 {
		t.Fatalf("cold count status %d", code)
	}
	if cold.Count != want {
		t.Fatalf("cold count = %d, want %d", cold.Count, want)
	}
	if cold.Cache != "miss" {
		t.Fatalf("cold query cache = %q, want miss", cold.Cache)
	}
	plansAfterCold := s.PlanningRuns()
	if plansAfterCold < 1 {
		t.Fatalf("cold query ran %d planning runs", plansAfterCold)
	}

	// Cached query: same answer, no planning run, and the planning latency
	// collapses (cold pays restriction+schedule search; a hit is a lookup).
	var warm queryResult
	if code := getJSON(t, base+"/count?graph=ba&pattern=house", &warm); code != 200 {
		t.Fatalf("warm count status %d", code)
	}
	if warm.Count != want || warm.Cache != "hit" {
		t.Fatalf("warm query = count %d cache %q, want %d/hit", warm.Count, warm.Cache, cold.Count)
	}
	if got := s.PlanningRuns(); got != plansAfterCold {
		t.Fatalf("cache hit ran the planner: %d → %d runs", plansAfterCold, got)
	}
	if warm.PlanSec > cold.PlanSec && warm.PlanSec > 0.05 {
		t.Fatalf("hit plan latency %.4fs not below cold %.4fs", warm.PlanSec, cold.PlanSec)
	}

	// An isomorphic respelling of the same pattern (adjacency form with
	// vertices permuted) must hit the same entry: keys are canonical forms.
	permuted := pattern.House().Relabel([]int{4, 2, 0, 1, 3})
	var iso queryResult
	url := base + "/count?graph=ba&pattern=" + fmt.Sprintf("5:%s", permuted.AdjacencyString())
	if code := getJSON(t, url, &iso); code != 200 {
		t.Fatalf("isomorphic count status %d", code)
	}
	if iso.Cache != "hit" || iso.Count != want {
		t.Fatalf("isomorphic respelling: cache %q count %d, want hit/%d", iso.Cache, iso.Count, want)
	}

	// Enumerate: NDJSON lines, then a trailer object, honoring the limit.
	resp, err = http.Get(base + "/enumerate?graph=ba&pattern=triangle&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("enumerate content type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 6 {
		t.Fatalf("enumerate returned %d lines, want 5 embeddings + trailer", len(lines))
	}
	var emb []uint32
	if err := json.Unmarshal([]byte(lines[0]), &emb); err != nil || len(emb) != 3 {
		t.Fatalf("first line %q is not a triangle embedding", lines[0])
	}
	var trailer queryResult
	if err := json.Unmarshal([]byte(lines[5]), &trailer); err != nil {
		t.Fatalf("trailer %q: %v", lines[5], err)
	}
	if trailer.Count != 5 || !trailer.Truncated {
		t.Fatalf("trailer = %+v, want count 5 truncated", trailer)
	}

	// Cancelled enumerate: client hangs up mid-stream; the job must end
	// canceled and release its workers.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", base+"/enumerate?graph=ba&pattern=house", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading stream head: %v", err)
	}
	cancel()
	resp.Body.Close()
	waitFor(t, "workers released after cancelled enumerate", func() bool {
		m := s.MetricsSnapshot()
		return m.BusyWorkers == 0 && m.RunningJobs == 0
	})

	// Jobs surface: everything above is on record; unknown ids 404.
	var jobs []JobInfo
	if code := getJSON(t, base+"/jobs", &jobs); code != 200 || len(jobs) < 4 {
		t.Fatalf("GET /jobs = %d with %d jobs, want the session's history", code, len(jobs))
	}
	var byID JobInfo
	if code := getJSON(t, base+"/jobs/"+jobs[0].ID, &byID); code != 200 || byID.ID != jobs[0].ID {
		t.Fatalf("GET /jobs/%s = %d %+v", jobs[0].ID, code, byID)
	}
	if code := getJSON(t, base+"/jobs/j999999", nil); code != 404 {
		t.Fatalf("unknown job status %d, want 404", code)
	}

	var m Metrics
	if code := getJSON(t, base+"/metrics", &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m.Graphs != 1 || m.Cache.Hits < 2 || m.Jobs.Done < 3 || m.Jobs.Canceled < 1 {
		t.Fatalf("metrics = %+v, want 1 graph, ≥2 hits, ≥3 done, ≥1 canceled", m)
	}
	if code := getJSON(t, base+"/healthz", nil); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
}

// TestServiceCountsBitIdentical is the backend-equivalence acceptance
// criterion: for every evaluation pattern on the skewed BA fixture, the
// direct library call, the service's local backend and the service's
// cluster backend produce the same number.
func TestServiceCountsBitIdentical(t *testing.T) {
	g := baFixture(400, 5, 31)
	addrs := startWorkers(t, g, 2)
	s := newTestServer(t, g, Options{ClusterAddrs: addrs, MaxConcurrent: 1})

	for _, p := range pattern.EvaluationPatterns() {
		res, err := core.Plan(p, g.Stats(), core.PlanOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		direct := res.Best.CountIEP(g, core.RunOptions{})
		for _, backendName := range []string{"local", "cluster"} {
			qr, err := s.runCount(context.Background(), queryRequest{
				graphName:   "ba",
				patternSpec: fmt.Sprintf("%d:%s", p.N(), p.AdjacencyString()),
				useIEP:      true,
				backendName: backendName,
			})
			if err != nil {
				t.Fatalf("%s on %s: %v", p, backendName, err)
			}
			if qr.Count != direct {
				t.Errorf("%s: %s backend = %d, direct = %d", p, backendName, qr.Count, direct)
			}
			if qr.Backend != backendName {
				t.Errorf("%s: ran on %q, requested %q", p, qr.Backend, backendName)
			}
		}
	}
}

// TestServiceCacheStampede: N concurrent identical cold queries must
// coalesce onto one planning run — the stampede guard.
func TestServiceCacheStampede(t *testing.T) {
	g := baFixture(300, 4, 7)
	s := newTestServer(t, g, Options{MaxConcurrent: 8})

	const N = 8
	counts := make([]int64, N)
	errs := make([]error, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qr, err := s.runCount(context.Background(), queryRequest{
				graphName:   "ba",
				patternSpec: "p3",
				useIEP:      true,
			})
			if err != nil {
				errs[i] = err
				return
			}
			counts[i] = qr.Count
		}(i)
	}
	wg.Wait()
	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if counts[i] != counts[0] {
			t.Fatalf("query %d count %d != %d", i, counts[i], counts[0])
		}
	}
	if runs := s.PlanningRuns(); runs != 1 {
		t.Fatalf("%d concurrent identical queries ran the planner %d times, want 1", N, runs)
	}
}

// TestServiceTierSelection: the tier query parameter picks the local
// execution tier, the result labels the kernel that actually ran (including
// the silent interpreter fallback when a requested static kernel does not
// exist for the pattern), counts stay bit-identical across tiers, and the
// compiled-plan memo rides the plan cache so a hot /count hit re-enters the
// compiled kernel without recompiling.
func TestServiceTierSelection(t *testing.T) {
	g := baFixture(300, 4, 7)
	s := newTestServer(t, g, Options{})
	base := startHTTP(t, s)

	direct := func(name string) int64 {
		p, err := pattern.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Plan(p, g.Stats(), core.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.CountIEP(g, core.RunOptions{Tier: core.TierInterpret})
	}
	wantHouse, wantK4 := direct("house"), direct("k4")

	cases := []struct {
		url  string
		tier string
		want int64
	}{
		{"/count?graph=ba&pattern=house", "compiled", wantHouse}, // auto → runtime-compiled
		{"/count?graph=ba&pattern=house&tier=interpret", "interpreted", wantHouse},
		{"/count?graph=ba&pattern=house&tier=compiled", "compiled", wantHouse},
		// No static kernel exists for the house: the engine falls back to the
		// interpreter and the result says so.
		{"/count?graph=ba&pattern=house&tier=generated", "interpreted", wantHouse},
		{"/count?graph=ba&pattern=k4", "generated", wantK4}, // auto → static clique suite
		{"/count?graph=ba&pattern=k4&tier=compiled", "compiled", wantK4},
	}
	for _, tc := range cases {
		var qr queryResult
		if code := getJSON(t, base+tc.url, &qr); code != 200 {
			t.Fatalf("%s: status %d", tc.url, code)
		}
		if qr.Tier != tc.tier {
			t.Errorf("%s: tier %q, want %q", tc.url, qr.Tier, tc.tier)
		}
		if qr.Count != tc.want {
			t.Errorf("%s: count %d, want %d", tc.url, qr.Count, tc.want)
		}
	}

	if code := getJSON(t, base+"/count?graph=ba&pattern=house&tier=quantum", nil); code != 400 {
		t.Fatalf("unknown tier status %d, want 400", code)
	}

	// Hot hit: the repeat is a plan-cache hit and still runs compiled — the
	// compiled-plan memo lives on the cached configuration, so the kernel
	// built for the cold query is reused, not rebuilt.
	var warm queryResult
	if code := getJSON(t, base+"/count?graph=ba&pattern=house", &warm); code != 200 {
		t.Fatalf("warm count status %d", code)
	}
	if warm.Cache != "hit" || warm.Tier != "compiled" || warm.Count != wantHouse {
		t.Fatalf("warm query = %+v, want hit/compiled/%d", warm, wantHouse)
	}
	rg, err := s.resolveGraph("ba")
	if err != nil {
		t.Fatal(err)
	}
	pat, _ := pattern.Parse("house")
	cfg, _, hit, err := s.plan(rg, pat, "")
	if err != nil || !hit {
		t.Fatalf("cached config lookup: hit=%v err=%v", hit, err)
	}
	c1, err := cfg.CompileTier(g, true, core.TierAuto)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cfg.CompileTier(g, true, core.TierAuto)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("compiled-plan memo did not reuse the kernel on the cached config")
	}
}

// TestServiceCancelReleasesWorkers: cancelling a running count job frees its
// taskpool workers promptly — far faster than the job would have run — and
// records the job as canceled.
func TestServiceCancelReleasesWorkers(t *testing.T) {
	// Big enough that a full non-IEP house count takes many seconds.
	g := baFixture(30000, 8, 3)
	s := newTestServer(t, g, Options{MaxConcurrent: 1, TotalWorkers: 2})
	base := startHTTP(t, s)

	done := make(chan struct{})
	var status int
	go func() {
		defer close(done)
		resp, err := http.Get(base + "/count?graph=ba&pattern=house&iep=false")
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
	}()

	// Find the running job.
	var jobID string
	waitFor(t, "count job running", func() bool {
		for _, j := range s.jobs.list() {
			if j.Kind == "count" && j.Status == JobRunning {
				jobID = j.ID
				return true
			}
		}
		return false
	})

	t0 := time.Now()
	resp, err := http.Post(base+"/jobs/"+jobID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled count did not return within 10s")
	}
	latency := time.Since(t0)
	if status != 499 {
		t.Fatalf("cancelled count status = %d, want 499", status)
	}
	waitFor(t, "workers released after cancel", func() bool {
		m := s.MetricsSnapshot()
		return m.BusyWorkers == 0 && m.RunningJobs == 0 && m.QueueDepth == 0
	})
	var j JobInfo
	if code := getJSON(t, base+"/jobs/"+jobID, &j); code != 200 || j.Status != JobCanceled {
		t.Fatalf("job after cancel = %d %+v, want canceled", code, j)
	}
	if m := s.MetricsSnapshot(); m.Jobs.Canceled < 1 {
		t.Fatalf("metrics did not count the cancellation: %+v", m.Jobs)
	}
	t.Logf("cancel-to-release latency: %v", latency)
}

// TestServiceAdmissionControl: with one run slot and a one-deep queue, a
// third concurrent query is shed with ErrQueueFull (HTTP 429).
func TestServiceAdmissionControl(t *testing.T) {
	g := baFixture(20000, 8, 5)
	s := newTestServer(t, g, Options{MaxConcurrent: 1, MaxQueue: 1, TotalWorkers: 1})
	base := startHTTP(t, s)

	slow := func() int {
		resp, err := http.Get(base + "/count?graph=ba&pattern=house&iep=false")
		if err != nil {
			return -1
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	go slow()
	waitFor(t, "first job running", func() bool { return s.MetricsSnapshot().RunningJobs == 1 })
	go slow()
	waitFor(t, "second job queued", func() bool { return s.MetricsSnapshot().QueueDepth == 1 })

	var rejected queryResult
	code := getJSON(t, base+"/count?graph=ba&pattern=house&iep=false", &rejected)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third concurrent query status = %d, want 429", code)
	}
	if m := s.MetricsSnapshot(); m.Jobs.Rejected < 1 {
		t.Fatalf("rejection not counted: %+v", m.Jobs)
	}
}

// TestServiceErrorStatuses pins the HTTP error mapping.
func TestServiceErrorStatuses(t *testing.T) {
	s := newTestServer(t, baFixture(100, 3, 1), Options{})
	base := startHTTP(t, s)
	cases := []struct {
		url  string
		want int
	}{
		{"/count?graph=nope&pattern=house", 404},
		{"/count?graph=ba", 400},                // no pattern
		{"/count?graph=ba&pattern=zigzag", 400}, // unknown name
		{"/count?graph=ba&pattern=house&iep=maybe", 400},
		{"/count?graph=ba&pattern=house&backend=gpu", 400},
		{"/count?graph=ba&pattern=house&backend=cluster", 400}, // none configured
		{"/count?graph=ba&pattern=house&planner=psychic", 400},
		{"/count?graph=ba&pattern=house&workers=-2", 400},
		{"/enumerate?graph=ba&pattern=house&limit=x", 400},
		{"/enumerate?graph=ba&pattern=house&backend=cluster", 400}, // counts only on the wire
		{"/enumerate?graph=ba&pattern=house&backend=gpu", 400},
		{"/count?pattern=house", 200}, // single resident graph: name optional
	}
	for _, tc := range cases {
		if code := getJSON(t, base+tc.url, nil); code != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.url, code, tc.want)
		}
	}
}

// TestServiceClusterBackendSurvivesCancel: after a cancelled cluster job
// (which abandons its poisoned transport), the next cluster query must
// redial and succeed.
func TestServiceClusterBackendSurvivesCancel(t *testing.T) {
	g := baFixture(20000, 8, 9)
	addrs := startWorkers(t, g, 2)
	s := newTestServer(t, g, Options{ClusterAddrs: addrs, MaxConcurrent: 2})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.runCount(ctx, queryRequest{
			graphName: "ba", patternSpec: "house", backendName: "cluster",
		})
		errc <- err
	}()
	waitFor(t, "cluster job running", func() bool { return s.MetricsSnapshot().RunningJobs == 1 })
	time.Sleep(50 * time.Millisecond) // let the wire job actually start
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled cluster job error = %v, want context.Canceled", err)
	}

	qr, err := s.runCount(context.Background(), queryRequest{
		graphName: "ba", patternSpec: "triangle", useIEP: true, backendName: "cluster",
	})
	if err != nil {
		t.Fatalf("cluster query after cancel: %v", err)
	}
	res, err := core.Plan(pattern.Triangle(), g.Stats(), core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := res.Best.CountIEP(g, core.RunOptions{}); qr.Count != want {
		t.Fatalf("post-cancel cluster count = %d, want %d", qr.Count, want)
	}
}

// killableWorkers spawns n TCP cluster workers whose listeners track their
// accepted connections, and returns their addresses plus per-worker kill
// switches. kill(i) models a crash: the listener closes (no rejoin) and every
// established connection is severed.
func killableWorkers(t *testing.T, g *graph.Graph, n int) ([]string, func(i int)) {
	t.Helper()
	addrs := make([]string, n)
	tls := make([]*trackingListener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tl := &trackingListener{Listener: ln}
		go cluster.Serve(tl, g, cluster.ServeOptions{})
		t.Cleanup(func() { tl.kill() })
		addrs[i], tls[i] = ln.Addr().String(), tl
	}
	return addrs, func(i int) { tls[i].kill() }
}

type trackingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *trackingListener) kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
	l.conns = nil
}

// TestServiceSurvivesWorkerLoss drives the whole failure model through the
// service: a worker crash mid-job is recovered inside the attempt (exact
// count, loss + re-deal counters move), the crashed worker rejoins for the
// next query, total fleet loss exhausts the retry budget, and /healthz flips
// to 503 once zero workers are live.
func TestServiceSurvivesWorkerLoss(t *testing.T) {
	g := baFixture(2000, 5, 17)
	addrs, kill := killableWorkers(t, g, 3)
	s := newTestServer(t, g, Options{ClusterAddrs: addrs, MaxConcurrent: 1, ClusterJobRetries: 2})
	base := startHTTP(t, s)

	if code := getJSON(t, base+"/healthz", nil); code != 200 {
		t.Fatalf("healthz before any job = %d, want 200", code)
	}

	// Swap in a fault-injected view of the same worker fleet: rank 0 dies
	// after completing two tasks of every multi-rank job. Deterministic — no
	// sleeps racing the job's runtime.
	inner, err := cluster.DialTCP(addrs, cluster.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.cluster.mu.Lock()
	s.cluster.tr = cluster.NewFaultyTransport(inner, 0, 2)
	s.cluster.mu.Unlock()

	res, err := core.Plan(pattern.House(), g.Stats(), core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Best.CountIEP(g, core.RunOptions{})
	count := func() (int64, error) {
		qr, err := s.runCount(context.Background(), queryRequest{
			graphName: "ba", patternSpec: "house", useIEP: true, backendName: "cluster",
		})
		if err != nil {
			return 0, err
		}
		return qr.Count, nil
	}

	// Crash mid-job: the survivors re-earn the dead rank's tasks.
	got, err := count()
	if err != nil {
		t.Fatalf("job with crashing worker: %v", err)
	}
	if got != want {
		t.Errorf("count with crashing worker = %d, want %d", got, want)
	}
	var m Metrics
	getJSON(t, base+"/metrics", &m)
	if m.WorkersConfigured != 3 || m.WorkersAlive != 2 {
		t.Errorf("after crash: configured %d alive %d, want 3/2", m.WorkersConfigured, m.WorkersAlive)
	}
	if m.RedealtTotal == 0 {
		t.Error("no re-dealt tasks recorded after a mid-job crash")
	}
	if code := getJSON(t, base+"/healthz", nil); code != 200 {
		t.Error("healthz degraded with two live workers")
	}

	// The crashed worker's process survived: the next job redials it.
	got, err = count()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("post-rejoin count = %d, want %d", got, want)
	}
	getJSON(t, base+"/metrics", &m)
	if m.RejoinsTotal == 0 {
		t.Error("rejoin not recorded after the worker came back")
	}

	// Total fleet loss: every attempt fails, the retry budget is consumed,
	// and the service reports itself unhealthy.
	for i := range addrs {
		kill(i)
	}
	if _, err := count(); err == nil {
		t.Fatal("query succeeded with every worker dead")
	}
	getJSON(t, base+"/metrics", &m)
	if m.JobRetriesTotal < 2 {
		t.Errorf("job retries = %d, want the full budget (2)", m.JobRetriesTotal)
	}
	if m.WorkersAlive != 0 {
		t.Errorf("workers alive = %d after killing the fleet", m.WorkersAlive)
	}
	if code := getJSON(t, base+"/healthz", nil); code != 503 {
		t.Errorf("healthz with zero live workers = %d, want 503", code)
	}
}

// TestPlanCacheLRUEviction drives the byte budget directly: distinct keys
// beyond the budget evict the least recently used, and an evicted key plans
// again on return.
func TestPlanCacheLRUEviction(t *testing.T) {
	g := graph.BarabasiAlbert(200, 4, 2)
	build := func(p *pattern.Pattern) func() (*core.Config, time.Duration, error) {
		return func() (*core.Config, time.Duration, error) {
			res, err := core.Plan(p, g.Stats(), core.PlanOptions{})
			if err != nil {
				return nil, 0, err
			}
			return res.Best, res.PrepTime, nil
		}
	}
	key := func(name string) planKey { return planKey{graphFP: "g", patternCK: name} }
	// Budget fits ~two house-sized entries (1024 + 64·25 + restrictions).
	c := newPlanCache(6000)
	pats := []*pattern.Pattern{pattern.Triangle(), pattern.Rectangle(), pattern.House(), pattern.Pentagon()}
	for _, p := range pats {
		if _, _, _, err := c.get(key(p.Name()), build(p)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overfilling: %+v", st)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("cache over budget: %+v", st)
	}
	// The oldest key was evicted: asking again must re-plan (a miss).
	before := c.PlanningRuns()
	if _, _, hit, err := c.get(key("Triangle"), build(pattern.Triangle())); err != nil || hit {
		t.Fatalf("evicted key returned hit=%v err=%v", hit, err)
	}
	if c.PlanningRuns() != before+1 {
		t.Fatal("evicted key did not re-plan")
	}
	// The most recent key is still resident: a hit, no planning.
	before = c.PlanningRuns()
	if _, _, hit, err := c.get(key("Pentagon"), build(pattern.Pentagon())); err != nil || !hit {
		t.Fatalf("resident key returned hit=%v err=%v", hit, err)
	}
	if c.PlanningRuns() != before {
		t.Fatal("resident key re-planned")
	}
}

// TestPlanCacheBuildErrorNotCached: a failed build must not poison the key.
func TestPlanCacheBuildErrorNotCached(t *testing.T) {
	c := newPlanCache(1 << 20)
	boom := fmt.Errorf("boom")
	if _, _, _, err := c.get(planKey{patternCK: "x"}, func() (*core.Config, time.Duration, error) {
		return nil, 0, boom
	}); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	g := graph.BarabasiAlbert(100, 3, 1)
	res, err := core.Plan(pattern.Triangle(), g.Stats(), core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, hit, err := c.get(planKey{patternCK: "x"}, func() (*core.Config, time.Duration, error) {
		return res.Best, 0, nil
	})
	if err != nil || hit || cfg == nil {
		t.Fatalf("retry after failed build: cfg=%v hit=%v err=%v", cfg, hit, err)
	}
}

// TestPlanCachePanicSafe: a panicking build must not leave the entry
// in-flight (waiters would block forever holding admission slots); the key
// must be retryable afterwards.
func TestPlanCachePanicSafe(t *testing.T) {
	c := newPlanCache(1 << 20)
	key := planKey{patternCK: "panicky"}
	func() {
		defer func() { recover() }()
		c.get(key, func() (*core.Config, time.Duration, error) { panic("planner bug") })
	}()
	g := graph.BarabasiAlbert(100, 3, 1)
	res, err := core.Plan(pattern.Triangle(), g.Stats(), core.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.get(key, func() (*core.Config, time.Duration, error) {
			return res.Best, 0, nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("retry after panic: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("get blocked after a panicking build — entry left in-flight")
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMain keeps test output quiet but surfaces panics.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
