// Package service is GraphPi's resident query server: it holds optimized
// data graphs in memory and executes pattern-matching queries against them
// over HTTP, amortizing the paper's per-pattern preprocessing across queries
// instead of across one batch run.
//
// Three pieces carry the load:
//
//   - a plan cache (cache.go) keyed by graph fingerprint + canonical pattern
//     form + planner options, so a repeat query skips schedule/restriction
//     search entirely and its planning latency collapses to a map lookup;
//   - an admission controller (admit.go) — a bounded run-slot gate with a
//     FIFO waiting line and fast 429s beyond it — plus per-job worker
//     budgets drawn from a shared taskpool.Limiter, so concurrent jobs
//     share the machine instead of oversubscribing it; and
//   - a backend abstraction (backend.go): the same compiled configuration
//     executes on the in-process engine or across TCP cluster workers,
//     bit-identically, so deployments scale from one box to a worker fleet
//     without clients noticing.
//
// Every query is a job: observable via /jobs, cancellable via
// /jobs/{id}/cancel, and cancelled implicitly when its client disconnects —
// cancellation reaches the core counting loops through context plumbing
// (core.RunOptions.Context) and frees the job's workers within one
// outer-loop boundary.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"graphpi/internal/cluster"
	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/taskpool"
	"graphpi/internal/telemetry"
)

// Process-level metrics, registered once at package level (the statcheck
// convention). Servers share them: they describe the process, not one Server.
var (
	mCountQueries = telemetry.NewCounter("graphpi_count_queries_total",
		"Count queries executed to completion or failure, any backend.")
	mProfiledRuns = telemetry.NewCounter("graphpi_profiled_runs_total",
		"Count queries that ran with ?profile=1 per-level stats collection.")
	mQueryLatency = telemetry.NewHistogram("graphpi_query_seconds",
		"End-to-end count query latency, admission through backend completion.")
)

// Options configures a Server. Zero values pick sane defaults.
type Options struct {
	// MaxConcurrent bounds how many jobs execute at once (default 2).
	MaxConcurrent int
	// MaxQueue bounds how many admitted jobs may wait for a run slot;
	// arrivals beyond it are rejected with ErrQueueFull (default 64).
	MaxQueue int
	// TotalWorkers is the shared worker-goroutine budget local jobs draw
	// from (default GOMAXPROCS).
	TotalWorkers int
	// WorkersPerJob is the default worker budget per job (default
	// TotalWorkers / MaxConcurrent, at least 1). Requests may ask for
	// fewer; asking for more is clamped.
	WorkersPerJob int
	// CacheBytes is the plan cache's byte budget (default 8 MiB).
	CacheBytes int64
	// ClusterAddrs lists TCP cluster workers (cluster.Serve listeners).
	// When set, counting jobs default to cluster dispatch; every worker
	// must hold a replica of the resident graph a job targets.
	ClusterAddrs []string
	// ClusterWorkersPerNode is the per-rank worker count for dispatched
	// jobs (default 2; workers may override via their ServeOptions).
	ClusterWorkersPerNode int
	// ClusterJobRetries is how many times a failed cluster job is retried
	// before its error reaches the client (default 2; negative → 0). Worker
	// loss mid-job is already recovered inside a single attempt by the
	// elastic transport; retries cover total failures — every worker lost at
	// once, or a fleet that is restarting.
	ClusterJobRetries int
	// KeepFinishedJobs bounds the finished-job history /jobs reports
	// (default 256).
	KeepFinishedJobs int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the service
	// handler. Off by default: the profiler exposes heap contents, so it is
	// an operator opt-in (-pprof on the CLI), not a public surface.
	EnablePprof bool
	// Tracer, if non-nil, receives NDJSON span events for the coarse phases
	// of every query: plan, compile, run, cluster-deal.
	Tracer *telemetry.Tracer
	// Logf, if non-nil, receives lifecycle messages.
	Logf func(format string, args ...any)
}

func (o *Options) normalize() {
	if o.MaxConcurrent < 1 {
		o.MaxConcurrent = 2
	}
	if o.MaxQueue < 1 {
		o.MaxQueue = 64
	}
	if o.TotalWorkers < 1 {
		o.TotalWorkers = runtime.GOMAXPROCS(0)
	}
	if o.WorkersPerJob < 1 {
		o.WorkersPerJob = o.TotalWorkers / o.MaxConcurrent
		if o.WorkersPerJob < 1 {
			o.WorkersPerJob = 1
		}
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = defaultCacheBytes
	}
	if o.ClusterJobRetries == 0 {
		o.ClusterJobRetries = 2
	} else if o.ClusterJobRetries < 0 {
		o.ClusterJobRetries = 0
	}
}

// Server is the resident query service. Create one with New, register
// graphs with AddGraph, and serve Handler() over HTTP.
type Server struct {
	opt     Options
	cache   *planCache
	jobs    *jobTable
	admit   *admission
	workers *taskpool.Limiter
	local   localBackend
	cluster *clusterBackend
	start   time.Time

	mu     sync.RWMutex
	graphs map[string]*residentGraph

	jobsCreated  atomic.Int64
	jobsDone     atomic.Int64
	jobsFailed   atomic.Int64
	jobsCanceled atomic.Int64
	jobsRejected atomic.Int64
}

// residentGraph is one registered graph plus its cached identity.
type residentGraph struct {
	name string
	g    *graph.Graph
	fp   string
}

// New creates a Server with no graphs registered.
func New(opt Options) *Server {
	opt.normalize()
	s := &Server{
		opt:     opt,
		cache:   newPlanCache(opt.CacheBytes),
		jobs:    newJobTable(opt.KeepFinishedJobs),
		admit:   newAdmission(opt.MaxConcurrent, opt.MaxQueue),
		workers: taskpool.NewLimiter(opt.TotalWorkers),
		start:   time.Now(),
		graphs:  map[string]*residentGraph{},
	}
	if len(opt.ClusterAddrs) > 0 {
		s.cluster = newClusterBackend(opt.ClusterAddrs, opt.ClusterWorkersPerNode, opt.ClusterJobRetries, opt.Tracer)
	}
	return s
}

// Close releases backend resources (cluster connections). In-flight jobs
// fail; the HTTP listener is the caller's to close.
func (s *Server) Close() {
	if s.cluster != nil {
		s.cluster.close()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// AddGraph registers a resident graph under name. Optimize the graph before
// registering (hub bitmap construction is not safe concurrent with readers);
// registered graphs are treated as immutable.
func (s *Server) AddGraph(name string, g *graph.Graph) error {
	if name == "" {
		return fmt.Errorf("service: graph name must be non-empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.graphs[name]; ok {
		return fmt.Errorf("service: graph %q already registered", name)
	}
	s.graphs[name] = &residentGraph{name: name, g: g, fp: cluster.FingerprintKey(g)}
	s.logf("service: graph %q resident (%d vertices, %d edges)", name, g.NumVertices(), g.NumEdges())
	return nil
}

// Graph returns the resident graph registered under name.
func (s *Server) Graph(name string) (*graph.Graph, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rg, ok := s.graphs[name]
	if !ok {
		return nil, false
	}
	return rg.g, true
}

// GraphNames lists the registered graph names (sorted by registration map
// iteration is fine for tests; HTTP sorts).
func (s *Server) graphList() []*residentGraph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*residentGraph, 0, len(s.graphs))
	for _, rg := range s.graphs {
		out = append(out, rg)
	}
	return out
}

// resolveGraph maps a request's graph parameter to a resident graph. An
// empty name resolves only when exactly one graph is resident.
func (s *Server) resolveGraph(name string) (*residentGraph, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if len(s.graphs) == 1 {
			for _, rg := range s.graphs {
				return rg, nil
			}
		}
		return nil, &statusError{404, fmt.Sprintf("graph parameter required (%d graphs resident)", len(s.graphs))}
	}
	rg, ok := s.graphs[name]
	if !ok {
		return nil, &statusError{404, fmt.Sprintf("no resident graph %q", name)}
	}
	return rg, nil
}

// statusError carries an HTTP status through the execution path.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// queryRequest is one parsed count/enumerate request.
type queryRequest struct {
	graphName   string
	patternSpec string
	useIEP      bool
	backendName string       // "", "auto", "local", "cluster"
	workers     int          // requested budget; 0 → the per-job default
	planner     string       // "" | "graphzero"
	limit       int64        // enumerate: stop after this many embeddings (0 = all)
	tier        core.Tier    // requested execution tier (local backend only)
	aux         core.AuxMode // auxiliary-graph pruning (local backend only)
	profile     bool         // collect per-level run stats + drift (?profile=1)
}

// queryResult is the outcome of a count job (and the trailer of an
// enumerate stream).
type queryResult struct {
	Job       string  `json:"job"`
	Graph     string  `json:"graph"`
	Pattern   string  `json:"pattern"`
	Backend   string  `json:"backend"`
	Count     int64   `json:"count"`
	IEP       bool    `json:"iep,omitempty"`
	Cache     string  `json:"cache"` // hit | miss
	Workers   int     `json:"workers,omitempty"`
	PlanSec   float64 `json:"plan_seconds"`
	ExecSec   float64 `json:"exec_seconds"`
	Schedule  string  `json:"schedule,omitempty"`
	Tier      string  `json:"tier,omitempty"`      // execution tier the count ran on
	Truncated bool    `json:"truncated,omitempty"` // enumerate hit its limit

	// Profile carries the run's collected per-level statistics and the
	// cost-model drift reconciliation when the request asked for ?profile=1.
	Profile *ProfileReport `json:"profile,omitempty"`
}

// ProfileReport is the ?profile=1 payload: what the run actually did at every
// schedule level, reconciled against what the planner's cost model predicted.
type ProfileReport struct {
	// Tier is the execution tier the profiled run used.
	Tier string `json:"tier"`
	// Levels holds the merged per-level counters, indexed by schedule
	// position. Empty on the cluster backend: the wire protocol reduces
	// counts, not counters, so only predictions are reported there.
	Levels []telemetry.LevelStats `json:"levels,omitempty"`
	// Drift reconciles the counters against the cost model (Eq. 6/7). Nil
	// when the configuration carries no planner statistics.
	Drift *telemetry.DriftReport `json:"drift,omitempty"`
	// Note flags reduced payloads (e.g. cluster backend: predictions only).
	Note string `json:"note,omitempty"`
}

// plan resolves the cached configuration for (graph, pattern spec, planner),
// running the planner on a miss. planSec is the wall time this call spent
// planning — ≈0 on a hit, the point of the cache.
func (s *Server) plan(rg *residentGraph, pat *pattern.Pattern, planner string) (cfg *core.Config, planSec float64, hit bool, err error) {
	key := planKey{graphName: rg.name, graphFP: rg.fp, patternCK: pat.CanonicalKey(), options: planner}
	t0 := time.Now()
	cfg, _, hit, err = s.cache.get(key, func() (*core.Config, time.Duration, error) {
		var (
			res *core.PlanResult
			err error
		)
		if planner == "graphzero" {
			res, err = core.PlanGraphZero(pat, rg.g.Stats())
		} else {
			res, err = core.Plan(pat, rg.g.Stats(), core.PlanOptions{})
		}
		if err != nil {
			return nil, 0, err
		}
		return res.Best, res.PrepTime, nil
	})
	return cfg, time.Since(t0).Seconds(), hit, err
}

// pickBackend resolves the backend for a count job. Enumerate always runs
// locally: the cluster wire protocol reduces counts, not embedding streams.
func (s *Server) pickBackend(req queryRequest) (backend, error) {
	switch req.backendName {
	case "", "auto":
		if s.cluster != nil {
			return s.cluster, nil
		}
		return s.local, nil
	case "local":
		return s.local, nil
	case "cluster":
		if s.cluster == nil {
			return nil, &statusError{400, "no cluster workers configured (start with -cluster-workers)"}
		}
		return s.cluster, nil
	default:
		return nil, &statusError{400, fmt.Sprintf("unknown backend %q (want auto, local or cluster)", req.backendName)}
	}
}

// jobBudget clamps a request's worker ask to the per-job budget.
func (s *Server) jobBudget(requested int) int {
	w := s.opt.WorkersPerJob
	if requested > 0 && requested < w {
		w = requested
	}
	return w
}

// runCount executes one counting query end to end: admission, plan (via
// cache), worker budget, backend execution, job bookkeeping.
func (s *Server) runCount(ctx context.Context, req queryRequest) (*queryResult, error) {
	rg, err := s.resolveGraph(req.graphName)
	if err != nil {
		return nil, err
	}
	pat, err := pattern.Parse(req.patternSpec)
	if err != nil {
		return nil, &statusError{400, err.Error()}
	}
	be, err := s.pickBackend(req)
	if err != nil {
		return nil, err
	}

	j, ctx := s.jobs.create(ctx, "count", rg.name, pat.String())
	s.jobsCreated.Add(1)
	defer s.jobs.retire(j)

	if err := s.admit.acquire(ctx); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.jobsRejected.Add(1)
		}
		s.countFinish(j, 0, err)
		return nil, err
	}
	defer s.admit.release()

	tPlan := time.Now()
	cfg, planSec, hit, err := s.plan(rg, pat, req.planner)
	s.opt.Tracer.Span("plan", tPlan, map[string]string{
		"graph": rg.name, "pattern": pat.String(), "cache": cacheLabel(hit),
	})
	if err != nil {
		s.countFinish(j, 0, err)
		return nil, err
	}

	// Worker budget: local jobs draw goroutine slots from the shared pool;
	// cluster jobs burn remote cores and only hold their run slot here.
	workers := 0
	local := be == backend(s.local)
	if local {
		w, err := s.workers.Acquire(ctx, s.jobBudget(req.workers))
		if err != nil {
			s.countFinish(j, 0, err)
			return nil, err
		}
		workers = w
		defer s.workers.Release(w)
	}

	// Surface the lowering phase as its own span. The compile memo lives on
	// the cached configuration, so this is real work on the first run of a
	// plan and a lookup afterwards — the span durations show exactly that.
	if s.opt.Tracer != nil && local {
		tComp := time.Now()
		rt := cfg.ResolveTier(rg.g, req.tier, req.useIEP)
		if rt != core.TierInterpret {
			if _, cerr := cfg.CompileTier(rg.g, req.useIEP, rt); cerr != nil {
				rt = core.TierInterpret // engine will fall back the same way
			}
		}
		s.opt.Tracer.Span("compile", tComp, map[string]string{"tier": rt.String()})
	}

	// ?profile=1: hand the backend a stats sink. Local runs merge every
	// worker shard into it; the cluster backend leaves it empty (the wire
	// reduces counts, not counters) and the profile reports predictions only.
	var stats *telemetry.RunStats
	if req.profile {
		stats = telemetry.NewRunStats(cfg.N())
		mProfiledRuns.Inc()
	}

	j.setRunning(be.name(), workers, hit)
	t0 := time.Now()
	count, err := be.count(ctx, cfg, rg.g, req.useIEP, workers, req.tier, req.aux, stats)
	execSec := time.Since(t0).Seconds()
	mCountQueries.Inc()
	mQueryLatency.Observe(time.Since(t0))
	s.opt.Tracer.Span("run", t0, map[string]string{
		"graph": rg.name, "pattern": pat.String(), "backend": be.name(),
	})
	if err != nil {
		s.countFinish(j, count, err)
		return nil, err
	}
	s.countFinish(j, count, nil)
	res := &queryResult{
		Job:     j.id,
		Graph:   rg.name,
		Pattern: pat.String(),
		Backend: be.name(),
		Count:   count,
		IEP:     req.useIEP,
		Cache:   cacheLabel(hit),
		Workers: workers,
		PlanSec: planSec,
		ExecSec: execSec,
	}
	res.Schedule = cfg.Schedule.String()
	// Label the execution tier. The cluster wire protocol runs the
	// interpreter on every worker; local jobs resolve through the same
	// memo the engine consulted, so the label names the kernel that
	// actually ran. Because the configuration (and its compiled-plan memo)
	// lives in the plan cache, a hot /count hit re-enters the compiled
	// kernel without re-lowering anything.
	if local {
		res.Tier = cfg.ResolveTier(rg.g, req.tier, req.useIEP).String()
	} else {
		res.Tier = core.TierInterpret.String()
	}
	if req.profile {
		p := &ProfileReport{Tier: res.Tier}
		if local {
			p.Levels = stats.Levels
		} else {
			stats = nil // the wire carried no counters; don't reconcile zeros
			p.Note = "cluster backend reduces counts, not counters: predictions only"
		}
		if d, ok := cfg.DriftReport(req.useIEP, stats); ok {
			p.Drift = d
		} else if p.Note == "" {
			p.Note = "configuration carries no planner statistics; drift unavailable"
		}
		res.Profile = p
	}
	return res, nil
}

// runEnumerate executes one enumerate query, invoking visit for every
// embedding (possibly from several goroutines; visit must serialize its own
// output). It returns the stream trailer.
func (s *Server) runEnumerate(ctx context.Context, req queryRequest, visit func([]uint32) bool) (*queryResult, error) {
	// Enumerate always runs locally (the cluster wire reduces counts, not
	// embedding streams): an explicit cluster request is an error, auto
	// falls through to local, and unknown names get pickBackend's 400.
	if req.backendName == "cluster" {
		return nil, &statusError{400, "enumerate runs on the local backend only (the cluster wire protocol reduces counts, not embedding streams)"}
	}
	if _, err := s.pickBackend(req); err != nil {
		return nil, err
	}
	rg, err := s.resolveGraph(req.graphName)
	if err != nil {
		return nil, err
	}
	pat, err := pattern.Parse(req.patternSpec)
	if err != nil {
		return nil, &statusError{400, err.Error()}
	}

	j, ctx := s.jobs.create(ctx, "enumerate", rg.name, pat.String())
	s.jobsCreated.Add(1)
	defer s.jobs.retire(j)

	if err := s.admit.acquire(ctx); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.jobsRejected.Add(1)
		}
		s.countFinish(j, 0, err)
		return nil, err
	}
	defer s.admit.release()

	cfg, planSec, hit, err := s.plan(rg, pat, req.planner)
	if err != nil {
		s.countFinish(j, 0, err)
		return nil, err
	}
	workers, err := s.workers.Acquire(ctx, s.jobBudget(req.workers))
	if err != nil {
		s.countFinish(j, 0, err)
		return nil, err
	}
	defer s.workers.Release(workers)

	j.setRunning("local", workers, hit)
	// Visit runs concurrently from the job's workers: reserve an emission
	// slot before writing (and back out on failure), so the stream never
	// exceeds the limit and the tally stays exact under contention.
	var emitted atomic.Int64
	var truncated atomic.Bool
	// The job record and trailer use the emission tally, not EnumerateCtx's
	// visit count: under a limit, a worker that trips the limit check has
	// already had its in-flight visit counted by the engine, so the raw
	// count can exceed what the stream carried.
	t0 := time.Now()
	_, err = cfg.EnumerateCtx(ctx, rg.g, core.RunOptions{Workers: workers}, func(emb []uint32) bool {
		if req.limit > 0 && emitted.Add(1) > req.limit {
			emitted.Add(-1)
			truncated.Store(true)
			return false
		}
		if req.limit <= 0 {
			emitted.Add(1)
		}
		if !visit(emb) {
			emitted.Add(-1)
			return false
		}
		return true
	})
	execSec := time.Since(t0).Seconds()
	if err != nil {
		s.countFinish(j, emitted.Load(), err)
		return nil, err
	}
	s.countFinish(j, emitted.Load(), nil)
	return &queryResult{
		Job:       j.id,
		Graph:     rg.name,
		Pattern:   pat.String(),
		Backend:   "local",
		Count:     emitted.Load(),
		Cache:     cacheLabel(hit),
		Workers:   workers,
		PlanSec:   planSec,
		ExecSec:   execSec,
		Truncated: truncated.Load(),
	}, nil
}

// countFinish records a job's terminal state in the job record and the
// service counters.
func (s *Server) countFinish(j *job, count int64, err error) {
	switch j.finish(count, err) {
	case JobDone:
		s.jobsDone.Add(1)
	case JobCanceled:
		s.jobsCanceled.Add(1)
	default:
		s.jobsFailed.Add(1)
	}
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// Metrics is the expvar-style snapshot served at /metrics.
type Metrics struct {
	UptimeSec   float64    `json:"uptime_seconds"`
	Graphs      int        `json:"graphs"`
	QueueDepth  int        `json:"queue_depth"`
	RunningJobs int        `json:"running_jobs"`
	BusyWorkers int        `json:"busy_workers"`
	WorkerCap   int        `json:"worker_cap"`
	Jobs        JobCounts  `json:"jobs"`
	Cache       cacheStats `json:"cache"`
	HitRate     float64    `json:"cache_hit_rate"`
	Cluster     []string   `json:"cluster_workers,omitempty"`

	// Cluster data-plane health (all zero without -cluster-workers;
	// workers_alive is 0 when the pool state is unknown — no transport
	// dialed yet — as well as when every worker is lost).
	WorkersConfigured int   `json:"workers_configured"`
	WorkersAlive      int   `json:"workers_alive"`
	RejoinsTotal      int64 `json:"rejoins_total"`
	RedealtTotal      int64 `json:"tasks_redealt_total"`
	JobRetriesTotal   int64 `json:"job_retries_total"`
}

// JobCounts aggregates job outcomes since start.
type JobCounts struct {
	Created  int64 `json:"created"`
	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`
	Rejected int64 `json:"rejected"`
}

// MetricsSnapshot assembles the current metrics.
func (s *Server) MetricsSnapshot() Metrics {
	cs := s.cache.stats()
	m := Metrics{
		UptimeSec:   time.Since(s.start).Seconds(),
		QueueDepth:  s.admit.queueDepth(),
		RunningJobs: s.admit.running(),
		BusyWorkers: s.workers.InUse(),
		WorkerCap:   s.workers.Cap(),
		Cache:       cs,
		Jobs: JobCounts{
			Created:  s.jobsCreated.Load(),
			Done:     s.jobsDone.Load(),
			Failed:   s.jobsFailed.Load(),
			Canceled: s.jobsCanceled.Load(),
			Rejected: s.jobsRejected.Load(),
		},
	}
	s.mu.RLock()
	m.Graphs = len(s.graphs)
	s.mu.RUnlock()
	if total := cs.Hits + cs.Misses; total > 0 {
		m.HitRate = float64(cs.Hits) / float64(total)
	}
	if s.cluster != nil {
		m.Cluster = s.cluster.addrs
		st, known := s.cluster.poolStats()
		m.WorkersConfigured = st.Workers
		if known {
			m.WorkersAlive = st.Live
		}
		m.RejoinsTotal = st.Rejoins
		m.RedealtTotal = st.Redealt
		m.JobRetriesTotal = s.cluster.jobRetries.Load()
	}
	return m
}

// ClusterDegraded reports whether the service is configured for cluster
// dispatch but currently has zero live workers — the /healthz 503 condition.
// An undialed pool (no job has run yet) is not degraded: health is unknown,
// not known-bad, and the first job's dial would establish it.
func (s *Server) ClusterDegraded() bool {
	if s.cluster == nil {
		return false
	}
	st, known := s.cluster.poolStats()
	return known && st.Live == 0
}

// PlanningRuns exposes the cache's planning-run counter (test hook: a cache
// hit must not move it).
func (s *Server) PlanningRuns() int64 { return s.cache.PlanningRuns() }
