package service

import (
	"context"
	"fmt"
	"sync"

	"graphpi/internal/cluster"
	"graphpi/internal/core"
	"graphpi/internal/graph"
)

// A backend executes a compiled counting job. The service plans once
// (through the cache) and then dispatches the identical configuration either
// onto the local engine or across a connected TCP worker cluster; because
// both runtimes execute the same compiled loop program, the counts are
// bit-identical — asserted by test, and the reason a query can move between
// backends transparently.
type backend interface {
	// name tags job records and metrics.
	name() string
	// count runs the configuration to completion or ctx cancellation.
	count(ctx context.Context, cfg *core.Config, g *graph.Graph, useIEP bool, workers int) (int64, error)
}

// localBackend runs on the in-process engine with the job's worker budget.
type localBackend struct{}

func (localBackend) name() string { return "local" }

func (localBackend) count(ctx context.Context, cfg *core.Config, g *graph.Graph, useIEP bool, workers int) (int64, error) {
	opt := core.RunOptions{Workers: workers}
	if useIEP {
		return cfg.CountIEPCtx(ctx, g, opt)
	}
	return cfg.CountCtx(ctx, g, opt)
}

// clusterBackend dispatches counting jobs across TCP worker processes
// (cluster.Serve listeners). The transport is dialed lazily and redialed
// after a failure or a cancellation: a cancelled job abandons its session by
// closing the connections, which both unblocks the master side immediately
// and — via the workers' disconnect stop flag — frees the remote cores
// within one outer-loop boundary. The wire protocol runs one job per
// connection set at a time, so jobs serialize on jobMu; admission control
// keeps that line short.
type clusterBackend struct {
	addrs          []string
	workersPerNode int

	jobMu sync.Mutex // one wire job at a time
	mu    sync.Mutex // guards tr
	tr    cluster.Transport
}

func newClusterBackend(addrs []string, workersPerNode int) *clusterBackend {
	if workersPerNode < 1 {
		workersPerNode = 2
	}
	return &clusterBackend{addrs: append([]string(nil), addrs...), workersPerNode: workersPerNode}
}

func (b *clusterBackend) name() string { return "cluster" }

// transport returns the live transport, dialing if needed.
func (b *clusterBackend) transport() (cluster.Transport, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tr == nil {
		tr, err := cluster.DialTCP(b.addrs, cluster.DialOptions{})
		if err != nil {
			return nil, fmt.Errorf("service: dialing cluster workers: %w", err)
		}
		b.tr = tr
	}
	return b.tr, nil
}

// drop discards tr (closing it) so the next job redials fresh connections.
func (b *clusterBackend) drop(tr cluster.Transport) {
	b.mu.Lock()
	if b.tr == tr {
		b.tr = nil
	}
	b.mu.Unlock()
	tr.Close()
}

func (b *clusterBackend) count(ctx context.Context, cfg *core.Config, g *graph.Graph, useIEP bool, workers int) (int64, error) {
	b.jobMu.Lock()
	defer b.jobMu.Unlock()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	tr, err := b.transport()
	if err != nil {
		return 0, err
	}
	type outcome struct {
		res *cluster.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := cluster.Run(cfg, g, cluster.Options{
			WorkersPerNode: b.workersPerNode,
			UseIEP:         useIEP,
			Transport:      tr,
		})
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			// A failed job poisons the transport; drop it so the next
			// query redials instead of inheriting the poison.
			b.drop(tr)
			return 0, o.err
		}
		return o.res.Count, nil
	case <-ctx.Done():
		// Abandon the session: closing the connections errors the in-flight
		// Run and tells every worker (via its disconnect stop flag) to
		// abandon its queue.
		b.drop(tr)
		<-ch // reap the runner goroutine; it fails fast on the closed conns
		return 0, ctx.Err()
	}
}

func (b *clusterBackend) close() {
	b.mu.Lock()
	tr := b.tr
	b.tr = nil
	b.mu.Unlock()
	if tr != nil {
		tr.Close()
	}
}
