package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"graphpi/internal/cluster"
	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/telemetry"
)

// A backend executes a compiled counting job. The service plans once
// (through the cache) and then dispatches the identical configuration either
// onto the local engine or across a connected TCP worker cluster; because
// both runtimes execute the same compiled loop program, the counts are
// bit-identical — asserted by test, and the reason a query can move between
// backends transparently.
type backend interface {
	// name tags job records and metrics.
	name() string
	// count runs the configuration to completion or ctx cancellation. tier
	// selects the local execution tier and aux the auxiliary-graph pruning
	// mode; the cluster backend ignores both (the wire protocol runs the
	// plain interpreter on every worker — counts are bit-identical, so a
	// query moving between backends only changes speed). stats, when
	// non-nil, receives the run's per-level telemetry — local backend only,
	// since the wire protocol reduces counts, not counters.
	count(ctx context.Context, cfg *core.Config, g *graph.Graph, useIEP bool, workers int, tier core.Tier, aux core.AuxMode, stats *telemetry.RunStats) (int64, error)
}

// localBackend runs on the in-process engine with the job's worker budget.
type localBackend struct{}

func (localBackend) name() string { return "local" }

func (localBackend) count(ctx context.Context, cfg *core.Config, g *graph.Graph, useIEP bool, workers int, tier core.Tier, aux core.AuxMode, stats *telemetry.RunStats) (int64, error) {
	opt := core.RunOptions{Workers: workers, Tier: tier, Stats: stats, Aux: aux}
	if useIEP {
		return cfg.CountIEPCtx(ctx, g, opt)
	}
	return cfg.CountCtx(ctx, g, opt)
}

// clusterBackend dispatches counting jobs across TCP worker processes
// (cluster.Serve listeners). The transport is dialed lazily and is elastic:
// a worker lost mid-job has its tasks re-dealt to survivors and is redialed
// before the next job, so the transport survives failures and is kept across
// them. A job that still fails (e.g. every worker lost at once) is retried
// with a bounded attempt budget — each retry re-enters the transport's
// redial sweep, so a restarted fleet recovers the query without the client
// resubmitting. Only cancellation drops the transport: a cancelled job
// abandons its session by closing the connections, which both unblocks the
// master side immediately and — via the workers' disconnect stop flag —
// frees the remote cores within one outer-loop boundary. The wire protocol
// runs one job per connection set at a time, so jobs serialize on jobMu;
// admission control keeps that line short.
type clusterBackend struct {
	addrs          []string
	workersPerNode int
	retries        int // extra attempts after the first (≥ 0)
	tracer         *telemetry.Tracer

	jobMu sync.Mutex // one wire job at a time
	mu    sync.Mutex
	tr    cluster.Transport // guarded by mu
	// base accumulates recovery counters from transports that were dropped
	// (cancellation, close), so /metrics totals survive redials.
	base cluster.PoolStats // guarded by mu

	jobRetries atomic.Int64
}

func newClusterBackend(addrs []string, workersPerNode, retries int, tracer *telemetry.Tracer) *clusterBackend {
	if workersPerNode < 1 {
		workersPerNode = 2
	}
	if retries < 0 {
		retries = 0
	}
	return &clusterBackend{
		addrs:          append([]string(nil), addrs...),
		workersPerNode: workersPerNode,
		retries:        retries,
		tracer:         tracer,
	}
}

func (b *clusterBackend) name() string { return "cluster" }

// transport returns the live transport, dialing if needed.
func (b *clusterBackend) transport() (cluster.Transport, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tr == nil {
		tr, err := cluster.DialTCP(b.addrs, cluster.DialOptions{})
		if err != nil {
			return nil, fmt.Errorf("service: dialing cluster workers: %w", err)
		}
		b.tr = tr
	}
	return b.tr, nil
}

// drop discards tr (closing it) so the next job redials fresh connections,
// folding its recovery counters into the running totals first.
func (b *clusterBackend) drop(tr cluster.Transport) {
	b.mu.Lock()
	if b.tr == tr {
		b.tr = nil
		b.bankLocked(tr)
	}
	b.mu.Unlock()
	tr.Close()
}

// bankLocked folds a departing transport's counters into base. Callers hold
// b.mu.
func (b *clusterBackend) bankLocked(tr cluster.Transport) {
	if p, ok := tr.(cluster.PoolStatsProvider); ok {
		st := p.PoolStats()
		b.base.Rejoins += st.Rejoins
		b.base.Redealt += st.Redealt
		b.base.Losses += st.Losses
		b.base.TaskGap.Merge(st.TaskGap)
		b.base.Steal.Merge(st.Steal)
		b.base.Redeal.Merge(st.Redeal)
	}
}

// poolStats reports cluster pool health: the live transport's current state
// plus counters banked from dropped transports. known is false when no
// transport is currently dialed (pool state unknowable, not necessarily bad).
func (b *clusterBackend) poolStats() (st cluster.PoolStats, known bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st = b.base
	// Detach the histogram buckets: st is a shallow copy of base, and the
	// merges below must not rewrite base's backing arrays.
	st.TaskGap = st.TaskGap.Clone()
	st.Steal = st.Steal.Clone()
	st.Redeal = st.Redeal.Clone()
	st.Workers = len(b.addrs)
	if b.tr == nil {
		return st, false
	}
	p, ok := b.tr.(cluster.PoolStatsProvider)
	if !ok {
		return st, false
	}
	cur := p.PoolStats()
	st.Workers = cur.Workers
	st.Live = cur.Live
	st.Rejoins += cur.Rejoins
	st.Redealt += cur.Redealt
	st.Losses += cur.Losses
	st.LastJob = cur.LastJob
	st.TaskGap.Merge(cur.TaskGap)
	st.Steal.Merge(cur.Steal)
	st.Redeal.Merge(cur.Redeal)
	return st, true
}

func (b *clusterBackend) count(ctx context.Context, cfg *core.Config, g *graph.Graph, useIEP bool, workers int, _ core.Tier, _ core.AuxMode, _ *telemetry.RunStats) (int64, error) {
	b.jobMu.Lock()
	defer b.jobMu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= b.retries; attempt++ {
		if attempt > 0 {
			b.jobRetries.Add(1)
			// Brief linear backoff before re-entering the redial sweep:
			// enough for a restarted worker to begin listening.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Duration(attempt) * 100 * time.Millisecond):
			}
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		tr, err := b.transport()
		if err != nil {
			lastErr = err
			continue
		}
		type outcome struct {
			res *cluster.Result
			err error
		}
		ch := make(chan outcome, 1)
		go func() {
			t0 := time.Now()
			res, err := cluster.Run(cfg, g, cluster.Options{
				WorkersPerNode: b.workersPerNode,
				UseIEP:         useIEP,
				Transport:      tr,
			})
			attrs := map[string]string{"attempt": fmt.Sprint(attempt)}
			if err != nil {
				attrs["error"] = err.Error()
			}
			b.tracer.Span("cluster-deal", t0, attrs)
			ch <- outcome{res, err}
		}()
		select {
		case o := <-ch:
			if o.err != nil {
				// The transport is kept: lost workers are already marked and
				// the next attempt's redial sweep brings back any that
				// restarted.
				lastErr = o.err
				continue
			}
			return o.res.Count, nil
		case <-ctx.Done():
			// Abandon the session: closing the connections errors the
			// in-flight Run and tells every worker (via its disconnect stop
			// flag) to abandon its queue.
			b.drop(tr)
			<-ch // reap the runner goroutine; it fails fast on the closed conns
			return 0, ctx.Err()
		}
	}
	return 0, fmt.Errorf("service: cluster job failed after %d attempts: %w", b.retries+1, lastErr)
}

func (b *clusterBackend) close() {
	b.mu.Lock()
	tr := b.tr
	b.tr = nil
	if tr != nil {
		b.bankLocked(tr)
	}
	b.mu.Unlock()
	if tr != nil {
		tr.Close()
	}
}
