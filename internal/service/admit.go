package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned when a query arrives while MaxConcurrent jobs run
// and MaxQueue more already wait — the admission controller's load-shedding
// signal, surfaced to HTTP clients as 429 Too Many Requests.
var ErrQueueFull = errors.New("service: job queue full")

// admission bounds how much work the server accepts: at most maxConcurrent
// jobs hold run slots at once, at most maxQueue more wait for one (in FIFO
// order — blocked channel sends are granted in arrival order), and anything
// beyond is rejected immediately rather than queued into oblivion. Worker
// budgets are a separate concern (the taskpool.Limiter); this gate exists so
// a burst of queries degrades into fast 429s instead of an unbounded pile of
// goroutines all planning at once.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}
}

// acquire takes a free run slot immediately when one exists; otherwise it
// joins the waiting line (failing fast with ErrQueueFull at capacity) until
// a slot frees or ctx cancels.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		return ErrQueueFull
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// queueDepth is the number of jobs waiting for a run slot.
func (a *admission) queueDepth() int { return int(a.waiting.Load()) }

// running is the number of granted run slots.
func (a *admission) running() int { return len(a.slots) }
