package perm

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	id := Identity(5)
	if !id.IsIdentity() || !id.Valid() {
		t.Error("Identity(5) not identity/valid")
	}
	if id.String() != "()" {
		t.Errorf("identity String = %q", id.String())
	}
	if len(Identity(0)) != 0 {
		t.Error("Identity(0) not empty")
	}
}

func TestValid(t *testing.T) {
	if (Perm{0, 0}).Valid() {
		t.Error("duplicate image accepted")
	}
	if (Perm{0, 3}).Valid() {
		t.Error("out-of-range image accepted")
	}
	if !(Perm{1, 0, 2}).Valid() {
		t.Error("valid perm rejected")
	}
}

func TestComposeInverse(t *testing.T) {
	p := Perm{1, 2, 0, 3} // (0 1 2)
	q := Perm{0, 1, 3, 2} // (2 3)
	pq := Compose(p, q)
	// (p∘q)(2) = p(3) = 3, (p∘q)(3) = p(2) = 0
	want := Perm{1, 2, 3, 0}
	if !Equal(pq, want) {
		t.Errorf("Compose = %v, want %v", pq, want)
	}
	if !Compose(p, p.Inverse()).IsIdentity() || !Compose(p.Inverse(), p).IsIdentity() {
		t.Error("p∘p⁻¹ != id")
	}
}

func TestComposeDegreeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compose with mismatched degrees did not panic")
		}
	}()
	Compose(Perm{0}, Perm{0, 1})
}

func TestCycles(t *testing.T) {
	p := Perm{0, 3, 2, 1, 5, 6, 4} // (1 3)(4 5 6)
	cycles := p.Cycles()
	want := [][]uint8{{1, 3}, {4, 5, 6}}
	if !reflect.DeepEqual(cycles, want) {
		t.Errorf("Cycles = %v, want %v", cycles, want)
	}
	if got := p.String(); got != "(1 3)(4 5 6)" {
		t.Errorf("String = %q", got)
	}
}

func TestTwoCycles(t *testing.T) {
	p := Perm{1, 0, 3, 2, 4} // (0 1)(2 3)
	got := p.TwoCycles()
	want := [][2]uint8{{0, 1}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TwoCycles = %v, want %v", got, want)
	}
	// A 3-cycle has no 2-cycles.
	q := Perm{1, 2, 0}
	if len(q.TwoCycles()) != 0 {
		t.Errorf("3-cycle TwoCycles = %v, want none", q.TwoCycles())
	}
	// A 4-cycle has no 2-cycles either (only in the disjoint decomposition).
	r := Perm{1, 2, 3, 0}
	if len(r.TwoCycles()) != 0 {
		t.Errorf("4-cycle TwoCycles = %v", r.TwoCycles())
	}
}

func TestClosure(t *testing.T) {
	// The rotation (0 1 2 3) and reflection (1 3) generate the dihedral
	// group D4 of order 8 — the automorphism group of the rectangle pattern
	// in the paper's Figure 4(c).
	rot := Perm{1, 2, 3, 0}
	refl := Perm{0, 3, 2, 1}
	g := Closure([]Perm{rot, refl})
	if len(g) != 8 {
		t.Fatalf("|D4| = %d, want 8", len(g))
	}
	if !IsGroup(g) {
		t.Error("closure is not a group")
	}
	// Cyclic group C5.
	c5 := Closure([]Perm{{1, 2, 3, 4, 0}})
	if len(c5) != 5 || !IsGroup(c5) {
		t.Errorf("|C5| = %d, want 5", len(c5))
	}
	if Closure(nil) != nil {
		t.Error("Closure(nil) != nil")
	}
}

func TestIsGroupRejects(t *testing.T) {
	// Missing identity.
	if IsGroup([]Perm{{1, 0}}) {
		t.Error("set without identity accepted")
	}
	// Not closed.
	if IsGroup([]Perm{{0, 1, 2}, {1, 2, 0}}) {
		t.Error("non-closed set accepted")
	}
	if IsGroup(nil) {
		t.Error("empty set accepted")
	}
}

func TestForEachCountsFactorial(t *testing.T) {
	for n := 0; n <= 6; n++ {
		count := int64(0)
		seen := map[string]bool{}
		ForEach(n, func(p Perm) bool {
			count++
			seen[string(p)] = true
			if !p.Valid() {
				t.Fatalf("ForEach yielded invalid perm %v", p)
			}
			return true
		})
		if count != Factorial(n) {
			t.Errorf("ForEach(%d) yielded %d perms, want %d", n, count, Factorial(n))
		}
		if int64(len(seen)) != count {
			t.Errorf("ForEach(%d) yielded duplicates", n)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	count := 0
	ForEach(5, func(p Perm) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop after %d, want 7", count)
	}
}

func TestForEachLexOrder(t *testing.T) {
	var prev string
	first := true
	ForEach(4, func(p Perm) bool {
		s := string(p)
		if !first && s <= prev {
			t.Fatalf("not lexicographic: %v after %v", p, prev)
		}
		prev, first = s, false
		return true
	})
}

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040, 40320}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
}

func randPerm(r *rand.Rand, n int) Perm {
	p := Identity(n)
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestGroupAxiomsProperty(t *testing.T) {
	// Associativity, inverse and cycle-decomposition round trip on random
	// permutations.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		n := 1 + r.IntN(10)
		p, q, s := randPerm(r, n), randPerm(r, n), randPerm(r, n)
		// (p∘q)∘s == p∘(q∘s)
		if !Equal(Compose(Compose(p, q), s), Compose(p, Compose(q, s))) {
			return false
		}
		// Rebuilding from cycles gives back p.
		rebuilt := Identity(n)
		for _, cyc := range p.Cycles() {
			for i := 0; i < len(cyc); i++ {
				rebuilt[cyc[i]] = cyc[(i+1)%len(cyc)]
			}
		}
		if !Equal(rebuilt, p) {
			return false
		}
		// Every 2-cycle (i,j) satisfies p(i)=j, p(j)=i.
		for _, tc := range p.TwoCycles() {
			if p[tc[0]] != tc[1] || p[tc[1]] != tc[0] {
				return false
			}
		}
		return p.Clone().Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
