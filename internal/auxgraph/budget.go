package auxgraph

// The unified view budget: one allocator sizes the graph-wide hub bitmaps
// (graph.BuildHubBitmaps) and the per-worker auxiliary-graph scratch from a
// single byte budget, replacing the previous hub-only budget knob. Hub
// bitmaps accelerate intersections against the degree-ordered hot prefix;
// aux rows shrink the intersections themselves on deep schedules — the two
// compete for the same memory, so the split is made in one place with one
// documented policy instead of two independent defaults.

// DefaultViewBudget is the total view-memory budget when the caller passes
// none: the historical 64 MiB hub default plus a 32 MiB aux reserve, so a
// default-configured graph keeps its exact pre-unification hub capacity.
const DefaultViewBudget = 96 << 20

// minWorkerArenaBytes is the smallest per-worker arena PlanBudget hands out;
// anything smaller cannot hold even a few hub-degree rows, so the budget
// goes to hub bitmaps instead.
const minWorkerArenaBytes = 64 << 10

// auxShareDiv caps the aux reserve at total/auxShareDiv: hub bitmaps serve
// every schedule, aux rows only deep ones, so hubs keep the larger share.
const auxShareDiv = 3

// Split is the outcome of PlanBudget: the hub-bitmap share (pass to
// BuildHubBitmaps) and the per-worker aux arena share (pass to New). Either
// side can be zero when the budget or the schedule does not justify it.
type Split struct {
	// HubBytes is the budget for graph.BuildHubBitmaps.
	HubBytes int64
	// AuxArenaPerWorker is the arena byte budget for each worker's Aux.
	AuxArenaPerWorker int64
	// AuxIndexPerWorker is the fixed per-worker index cost (4 bytes/vertex)
	// already charged against the aux share; informational.
	AuxIndexPerWorker int64
}

// PlanBudget splits one view-memory budget between hub bitmaps and aux
// scratch for a graph of n vertices searched by the given worker count.
// deepSteps is the number of schedule intersection steps that can consume
// pruned rows (0 when the schedule has no eligible level — the whole budget
// then goes to hub bitmaps). total <= 0 selects DefaultViewBudget.
//
// Policy: the aux side is offered at most total/3, out of which each worker
// pays a fixed 4n-byte vertex index before any row storage; if the per-worker
// arena left after the index falls under 64 KiB the aux side is not worth
// its own bookkeeping and the full budget goes to hubs. More eligible steps
// raise the arena (more distinct rows stay live per root), bounded by the
// share. workers < 1 is treated as 1.
func PlanBudget(total int64, n, workers, deepSteps int) Split {
	if total <= 0 {
		total = DefaultViewBudget
	}
	if workers < 1 {
		workers = 1
	}
	if deepSteps <= 0 || n <= 0 {
		return Split{HubBytes: total}
	}
	idx := int64(n) * 4
	reserve := total / auxShareDiv
	perWorker := reserve/int64(workers) - idx
	if perWorker < minWorkerArenaBytes {
		return Split{HubBytes: total}
	}
	// Deep schedules keep more distinct rows hot per root; scale the arena
	// with the step count but never past the reserved share.
	want := int64(deepSteps) * (4 << 20)
	if perWorker > want {
		perWorker = want
		reserve = (perWorker + idx) * int64(workers)
	}
	return Split{
		HubBytes:          total - reserve,
		AuxArenaPerWorker: perWorker,
		AuxIndexPerWorker: idx,
	}
}
