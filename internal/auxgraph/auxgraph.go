// Package auxgraph implements auxiliary-graph pruning (GraphMini-style):
// per-root materialization of pruned adjacency rows reused across sibling
// subtrees in place of full-CSR-row intersections.
//
// When the engine binds the root vertex v0, the candidate universe of every
// deeper pattern vertex adjacent to the root is S = N(v0). Any hoisted
// intersection Out = Left ∩ N(v_d) with Left ⊆ S and v_d ∈ S can substitute
// the pruned row N'(v_d) = N(v_d) ∩ S for the full CSR row without changing
// the result:
//
//	Left ∩ N'(v_d) = Left ∩ N(v_d) ∩ S = (Left ∩ S) ∩ N(v_d) = Left ∩ N(v_d)
//
// Pruned rows are |N(v)∩N(v0)|-sized — the triangle degree toward the root —
// instead of |N(v)|-sized, and one row is reused by every sibling subtree
// under the same root that rebinds the same vertex at a deeper level. Rows
// build lazily: only vertices the restricted search actually touches pay the
// build intersection, and the build reuses the hub bitmap of v0 when the
// degree-ordered hot prefix has one, so a hub root's rows cost O(|N(v)|)
// single-word probes each.
//
// Whether materialization is worth it is decided by the cost model
// (costmodel.EstimateAux) per schedule, not here; this package only provides
// the scratch structure and the unified view-budget allocator that sizes it
// together with the hub bitmaps.
package auxgraph

import (
	"graphpi/internal/graph"
	"graphpi/internal/vertexset"
)

// Row-index sentinels stored in Aux.idx. Values >= 0 index Aux.rows.
const (
	idxNotMember int32 = -1 // vertex outside S for the current root
	idxUnbuilt   int32 = -2 // member of S, row not materialized yet
	idxSkipped   int32 = -3 // member, but the arena budget refused the row
)

// Stats counts what one Aux did over a run; the engine folds it into the
// worker's telemetry shard so drift reports can reconcile pruning activity.
type Stats struct {
	// Roots counts distinct root subtrees an auxiliary graph was built under.
	Roots uint64 `json:"roots"`
	// Rows counts pruned rows materialized (lazy: only touched vertices).
	Rows uint64 `json:"rows"`
	// Bytes sums the bytes of all materialized rows.
	Bytes uint64 `json:"bytes"`
	// Hits counts intersections served from an already-built pruned row —
	// the reuse the build cost is amortized against.
	Hits uint64 `json:"hits"`
	// Skips counts row requests declined (arena budget exhausted, or the
	// vertex fell outside the root's neighborhood); the engine falls back to
	// the full CSR row, so a skip affects speed, never counts.
	Skips uint64 `json:"skips"`
}

// Add folds o into s.
func (s *Stats) Add(o Stats) {
	s.Roots += o.Roots
	s.Rows += o.Rows
	s.Bytes += o.Bytes
	s.Hits += o.Hits
	s.Skips += o.Skips
}

// Aux is one worker's auxiliary-graph scratch: the pruned adjacency rows of
// the current root's neighborhood. Single-goroutine; rebuilt (lazily) each
// time the worker moves to a new root vertex. The structure is deterministic
// by construction — membership marks and rows live in flat slices keyed by
// vertex id, so no map iteration order can reach a count-bearing path.
type Aux struct {
	g *graph.Graph
	// idx maps vertex id → row index or one of the idx* sentinels. Allocated
	// once (4n bytes, charged by PlanBudget) and repaired incrementally: only
	// the previous root's members are reset on a root switch.
	idx []int32
	// members is the current root's neighborhood S (aliases CSR storage).
	members []uint32
	// rootBM is the root's hub bitmap when it has one; row builds probe it
	// instead of merging against members.
	rootBM  vertexset.Bitmap
	root    uint32
	hasRoot bool
	// arena is the flat row storage; rows[i] spans arena[rowOff[i]:rowOff[i+1]].
	// Allocated once at the budgeted capacity and never grown, so row slices
	// handed out stay valid until the next root switch.
	arena  []uint32
	used   int
	rowOff []int32

	stats Stats
}

// New allocates aux scratch for g with the given arena budget in bytes.
// A budget too small for even a single average row disables the scratch:
// Enabled reports false and Row always declines. The vertex index (4 bytes
// per vertex) is part of the structure and must be covered by the caller's
// budget split (see PlanBudget).
func New(g *graph.Graph, arenaBytes int64) *Aux {
	n := g.NumVertices()
	words := int64(arenaBytes / 4)
	if n == 0 || words < minArenaEntries {
		return &Aux{g: g}
	}
	a := &Aux{
		g:     g,
		idx:   make([]int32, n),
		arena: make([]uint32, words),
	}
	for i := range a.idx {
		a.idx[i] = idxNotMember
	}
	return a
}

// minArenaEntries is the smallest arena worth allocating the index for: below
// one CPU page of row storage the fallback full-row intersections win.
const minArenaEntries = 1024

// Enabled reports whether this Aux can materialize rows at all. Nil-safe,
// like every method: a nil *Aux behaves as permanently disabled scratch.
func (a *Aux) Enabled() bool { return a != nil && a.idx != nil }

// Stats returns the counters accumulated so far.
func (a *Aux) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return a.stats
}

// BeginRoot switches the scratch to a new root subtree: S becomes members
// (the root's full neighborhood; must alias or equal g.Neighbors(root)) and
// rootBM the root's hub bitmap (nil when it has none). Calling it again with
// the same root is a no-op, so edge-parallel slot groups of one root that
// land on the same worker keep their rows. Previous rows are released in
// O(|S_prev|).
//
//graphpi:deterministic
func (a *Aux) BeginRoot(root uint32, members []uint32, rootBM vertexset.Bitmap) {
	if a == nil || a.idx == nil {
		return
	}
	if a.hasRoot && a.root == root {
		return
	}
	a.release()
	a.root, a.hasRoot = root, true
	a.members = members
	a.rootBM = rootBM
	for _, u := range members {
		a.idx[u] = idxUnbuilt
	}
	a.stats.Roots++
}

// release clears the membership marks of the current root and resets the
// arena. O(|S|); called from BeginRoot so a long-lived worker never rescans
// the whole index.
func (a *Aux) release() {
	for _, u := range a.members {
		a.idx[u] = idxNotMember
	}
	a.members = nil
	a.rootBM = nil
	a.used = 0
	a.rowOff = a.rowOff[:0]
	a.hasRoot = false
}

// Row returns the pruned row N(v) ∩ S for a member vertex v, materializing
// it on first touch. ok is false when v is not a member of the current
// root's neighborhood or the arena budget cannot hold the row — the caller
// must then fall back to the full CSR row. The returned slice aliases the
// arena and is valid until the next BeginRoot.
//
//graphpi:deterministic
func (a *Aux) Row(v uint32) ([]uint32, bool) {
	if a == nil || a.idx == nil {
		return nil, false
	}
	switch i := a.idx[v]; {
	case i >= 0:
		a.stats.Hits++
		return a.arena[a.rowOff[i]:a.rowOff[i+1]], true
	case i == idxUnbuilt:
		return a.build(v)
	default:
		a.stats.Skips++
		return nil, false
	}
}

// build materializes the pruned row of v. The worst-case row size is
// min(deg(v), |S|); if the arena cannot hold that, the row is marked skipped
// — a decision depending only on build order and sizes, so runs stay
// deterministic for a fixed task shape (and counts are identical regardless,
// since callers fall back to the full row).
func (a *Aux) build(v uint32) ([]uint32, bool) {
	full := a.g.Neighbors(v)
	maxLen := len(full)
	if len(a.members) < maxLen {
		maxLen = len(a.members)
	}
	if a.used+maxLen > len(a.arena) {
		a.idx[v] = idxSkipped
		a.stats.Skips++
		return nil, false
	}
	dst := a.arena[a.used:a.used]
	var row []uint32
	if a.rootBM != nil {
		row = vertexset.IntersectBitmap(dst, full, a.rootBM)
	} else {
		row = vertexset.Intersect(dst, full, a.members)
	}
	if len(a.rowOff) == 0 {
		a.rowOff = append(a.rowOff, 0)
	}
	a.idx[v] = int32(len(a.rowOff) - 1)
	a.used += len(row)
	a.rowOff = append(a.rowOff, int32(a.used))
	a.stats.Rows++
	a.stats.Bytes += uint64(4 * len(row))
	return row, true
}
