package auxgraph

import (
	"testing"

	"graphpi/internal/graph"
	"graphpi/internal/vertexset"
)

// intersectRef is the reference pruned row: N(v) ∩ S by nested scan.
func intersectRef(full, members []uint32) []uint32 {
	inS := make(map[uint32]bool, len(members))
	for _, u := range members {
		inS[u] = true
	}
	var out []uint32
	for _, w := range full {
		if inS[w] {
			out = append(out, w)
		}
	}
	return out
}

func TestPlanBudgetDefaults(t *testing.T) {
	// total <= 0 selects the default budget; with eligible deep steps the
	// split must hand both sides a nonzero share.
	s := PlanBudget(0, 100_000, 4, 3)
	if s.HubBytes <= 0 || s.AuxArenaPerWorker <= 0 {
		t.Fatalf("default split = %+v, want both shares positive", s)
	}
	if s.HubBytes+(s.AuxArenaPerWorker+s.AuxIndexPerWorker)*4 > DefaultViewBudget {
		t.Fatalf("split %+v exceeds the default budget", s)
	}
	if s.AuxIndexPerWorker != 4*100_000 {
		t.Fatalf("index cost = %d, want 4 bytes per vertex", s.AuxIndexPerWorker)
	}
	// Hubs keep the larger share: the aux reserve is capped at total/3.
	if got := DefaultViewBudget - s.HubBytes; got > DefaultViewBudget/3 {
		t.Fatalf("aux reserve %d exceeds a third of the budget", got)
	}
}

func TestPlanBudgetNoEligibleSteps(t *testing.T) {
	// A schedule with no aux-capable level sends the whole budget to hubs.
	s := PlanBudget(10<<20, 1000, 4, 0)
	if s.HubBytes != 10<<20 || s.AuxArenaPerWorker != 0 {
		t.Fatalf("deepSteps=0 split = %+v, want all hubs", s)
	}
	if s = PlanBudget(10<<20, 0, 4, 3); s.AuxArenaPerWorker != 0 {
		t.Fatalf("n=0 split = %+v, want all hubs", s)
	}
}

func TestPlanBudgetTooSmallForOneLevel(t *testing.T) {
	// Budget smaller than one worker's index + minimum arena: the aux side
	// is refused entirely rather than handing out useless slivers.
	n := 1_000_000 // index alone is 4 MB/worker
	s := PlanBudget(6<<20, n, 4, 3)
	if s.AuxArenaPerWorker != 0 {
		t.Fatalf("starved split = %+v, want aux refused", s)
	}
	if s.HubBytes != 6<<20 {
		t.Fatalf("starved split HubBytes = %d, want the full budget", s.HubBytes)
	}
	// Same shape with a tiny absolute budget.
	if s = PlanBudget(1024, 100, 1, 2); s.AuxArenaPerWorker != 0 || s.HubBytes != 1024 {
		t.Fatalf("tiny split = %+v, want all hubs", s)
	}
}

func TestPlanBudgetDeepStepCap(t *testing.T) {
	// With a huge budget the arena is capped by deep-step count, and the
	// unused reserve flows back to hub bitmaps.
	one := PlanBudget(1<<32, 1000, 1, 1)
	three := PlanBudget(1<<32, 1000, 1, 3)
	if one.AuxArenaPerWorker != 4<<20 || three.AuxArenaPerWorker != 12<<20 {
		t.Fatalf("caps = %d / %d, want 4 MiB per deep step",
			one.AuxArenaPerWorker, three.AuxArenaPerWorker)
	}
	if one.HubBytes <= three.HubBytes {
		t.Fatal("smaller aux cap should return more budget to hubs")
	}
}

func TestPlanBudgetWorkerScaling(t *testing.T) {
	// The reserve is shared: more workers means less arena each, and
	// workers < 1 normalizes to 1.
	a := PlanBudget(30<<20, 1000, 1, 8)
	b := PlanBudget(30<<20, 1000, 8, 8)
	if a.AuxArenaPerWorker <= b.AuxArenaPerWorker {
		t.Fatalf("arena per worker: 1 worker %d, 8 workers %d — want the former larger",
			a.AuxArenaPerWorker, b.AuxArenaPerWorker)
	}
	if got := PlanBudget(30<<20, 1000, 0, 8); got != a {
		t.Fatalf("workers=0 split %+v, want the workers=1 split %+v", got, a)
	}
}

func TestAuxDisabledByZeroBudget(t *testing.T) {
	g := graph.BarabasiAlbert(200, 4, 1)
	for _, bytes := range []int64{0, -1, 4 * (minArenaEntries - 1)} {
		a := New(g, bytes)
		if a.Enabled() {
			t.Fatalf("New(%d bytes): Enabled, want disabled", bytes)
		}
		a.BeginRoot(0, g.Neighbors(0), nil)
		if _, ok := a.Row(g.Neighbors(0)[0]); ok {
			t.Fatalf("New(%d bytes): Row succeeded on disabled scratch", bytes)
		}
	}
	// Nil scratch behaves as disabled too — the engine's fallback contract.
	var nilAux *Aux
	if nilAux.Enabled() {
		t.Fatal("nil Aux reports Enabled")
	}
	nilAux.BeginRoot(0, nil, nil)
	if _, ok := nilAux.Row(0); ok {
		t.Fatal("nil Aux served a row")
	}
	if st := nilAux.Stats(); st != (Stats{}) {
		t.Fatalf("nil Aux stats = %+v, want zero", st)
	}
}

func TestAuxRowsMatchReference(t *testing.T) {
	g := graph.BarabasiAlbert(300, 6, 9)
	a := New(g, 1<<20)
	if !a.Enabled() {
		t.Fatal("1 MiB arena should enable the scratch")
	}
	for root := uint32(0); root < 50; root++ {
		members := g.Neighbors(root)
		a.BeginRoot(root, members, nil)
		for _, v := range members {
			row, ok := a.Row(v)
			if !ok {
				t.Fatalf("root %d: member %d declined with a roomy arena", root, v)
			}
			want := intersectRef(g.Neighbors(v), members)
			if len(row) != len(want) {
				t.Fatalf("root %d v %d: row len %d, want %d", root, v, len(row), len(want))
			}
			for i := range row {
				if row[i] != want[i] {
					t.Fatalf("root %d v %d: row[%d] = %d, want %d", root, v, i, row[i], want[i])
				}
			}
		}
		// Non-members must decline: the caller falls back to the full row.
		var outsider uint32 = root // root is never its own neighbor (no self loops)
		if _, ok := a.Row(outsider); ok {
			t.Fatalf("root %d: non-member %d served a row", root, outsider)
		}
	}
	st := a.Stats()
	if st.Roots != 50 || st.Rows == 0 || st.Bytes == 0 {
		t.Fatalf("stats after 50 roots: %+v", st)
	}
}

func TestAuxRowsMatchReferenceWithHubBitmap(t *testing.T) {
	// The bitmap-probe build path must produce the same rows as the
	// merge-intersection path.
	g := graph.BarabasiAlbert(300, 6, 9)
	gh := graph.BarabasiAlbert(300, 6, 9)
	gh.BuildHubBitmaps(1<<24, 0)
	if gh.NumHubs() == 0 {
		t.Fatal("fixture should have hub bitmaps")
	}
	plain := New(g, 1<<20)
	hubbed := New(gh, 1<<20)
	for root := uint32(0); root < 30; root++ {
		bm := gh.HubBitmap(root)
		plain.BeginRoot(root, g.Neighbors(root), nil)
		hubbed.BeginRoot(root, gh.Neighbors(root), bm)
		for _, v := range g.Neighbors(root) {
			pr, pok := plain.Row(v)
			hr, hok := hubbed.Row(v)
			if pok != hok || len(pr) != len(hr) {
				t.Fatalf("root %d v %d: plain (%v,%d) vs bitmap (%v,%d)",
					root, v, pok, len(pr), hok, len(hr))
			}
			for i := range pr {
				if pr[i] != hr[i] {
					t.Fatalf("root %d v %d: builds diverge at %d", root, v, i)
				}
			}
		}
	}
}

func TestAuxRowReuseAndRootSwitch(t *testing.T) {
	g := graph.BarabasiAlbert(200, 5, 3)
	a := New(g, 1<<20)
	members := g.Neighbors(1)
	a.BeginRoot(1, members, nil)
	v := members[0]
	r1, ok := a.Row(v)
	if !ok {
		t.Fatal("first build declined")
	}
	builds := a.Stats().Rows
	r2, ok := a.Row(v)
	if !ok {
		t.Fatal("reuse declined")
	}
	if &r1[0] != &r2[0] && len(r1) > 0 {
		t.Fatal("reuse returned a different slice")
	}
	if a.Stats().Rows != builds {
		t.Fatal("reuse rebuilt the row")
	}
	if a.Stats().Hits != 1 {
		t.Fatalf("hits = %d, want 1", a.Stats().Hits)
	}

	// Same-root BeginRoot is a no-op: rows survive (edge-parallel slot
	// groups of one root rely on this).
	a.BeginRoot(1, members, nil)
	if a.Stats().Roots != 1 {
		t.Fatal("same-root BeginRoot counted a new root")
	}
	if _, ok := a.Row(v); !ok || a.Stats().Hits != 2 {
		t.Fatalf("row lost across same-root BeginRoot (hits=%d)", a.Stats().Hits)
	}

	// A new root releases the old membership completely.
	a.BeginRoot(2, g.Neighbors(2), nil)
	if a.Stats().Roots != 2 {
		t.Fatal("root switch not counted")
	}
	for _, u := range members {
		isNew := false
		for _, w := range g.Neighbors(2) {
			if w == u {
				isNew = true
				break
			}
		}
		if !isNew {
			if _, ok := a.Row(u); ok {
				t.Fatalf("stale member %d of root 1 still served after switch", u)
			}
		}
	}
}

// TestAuxArenaExhaustion drives the scratch with an arena smaller than one
// root's full row set: overflowing rows must be declined deterministically
// (marked skipped, counted, and never retried within the root).
func TestAuxArenaExhaustion(t *testing.T) {
	g := graph.BarabasiAlbert(400, 12, 5)
	// Smallest enabled arena: minArenaEntries words.
	a := New(g, 4*minArenaEntries)
	if !a.Enabled() {
		t.Fatal("minimum arena should enable")
	}
	// Pick the highest-degree vertex as root so the row demand overflows.
	root, best := uint32(0), 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := len(g.Neighbors(uint32(v))); d > best {
			root, best = uint32(v), d
		}
	}
	members := g.Neighbors(root)
	a.BeginRoot(root, members, nil)
	served, declined := 0, 0
	for _, v := range members {
		if row, ok := a.Row(v); ok {
			served++
			want := intersectRef(g.Neighbors(v), members)
			if len(row) != len(want) {
				t.Fatalf("served row for %d has len %d, want %d", v, len(row), len(want))
			}
		} else {
			declined++
			// Declined rows stay declined: the sentinel must not flip back.
			if _, ok := a.Row(v); ok {
				t.Fatalf("vertex %d declined then served within one root", v)
			}
		}
	}
	if declined == 0 {
		t.Skipf("arena held all %d rows of the densest root; fixture too small", served)
	}
	st := a.Stats()
	if st.Skips == 0 || uint64(4*a.used) != st.Bytes {
		t.Fatalf("exhaustion stats inconsistent: %+v used=%d", st, a.used)
	}
	if a.used > len(a.arena) {
		t.Fatalf("arena overflow: used %d of %d", a.used, len(a.arena))
	}
}

func TestAuxStatsAdd(t *testing.T) {
	s := Stats{Roots: 1, Rows: 2, Bytes: 3, Hits: 4, Skips: 5}
	s.Add(Stats{Roots: 10, Rows: 20, Bytes: 30, Hits: 40, Skips: 50})
	if s != (Stats{Roots: 11, Rows: 22, Bytes: 33, Hits: 44, Skips: 55}) {
		t.Fatalf("Add = %+v", s)
	}
}

// TestAuxBitmapVsMergeCutover pins that both vertexset intersection kernels
// used by build produce sorted, duplicate-free rows (the arena packing
// invariant rowOff relies on).
func TestAuxRowsSorted(t *testing.T) {
	g := graph.BarabasiAlbert(300, 8, 17)
	gh := graph.BarabasiAlbert(300, 8, 17)
	gh.BuildHubBitmaps(1<<24, 0)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		bm   func(v uint32) vertexset.Bitmap
	}{
		{"merge", g, func(uint32) vertexset.Bitmap { return nil }},
		{"bitmap", gh, gh.HubBitmap},
	} {
		a := New(tc.g, 1<<20)
		for root := uint32(0); root < 20; root++ {
			a.BeginRoot(root, tc.g.Neighbors(root), tc.bm(root))
			for _, v := range tc.g.Neighbors(root) {
				row, ok := a.Row(v)
				if !ok {
					continue
				}
				for i := 1; i < len(row); i++ {
					if row[i] <= row[i-1] {
						t.Fatalf("%s root %d v %d: row not strictly sorted at %d", tc.name, root, v, i)
					}
				}
			}
		}
	}
}
