// Package dataset provides deterministic synthetic stand-ins for the six
// real-world graphs of the paper's Table I. The SNAP datasets themselves are
// not redistributable (and this module builds offline), so each dataset is
// replaced by a generator matched in degree regime — preferential attachment
// for the social graphs, a mildly clustered sparse graph for Patents, and a
// heavily skewed RMAT graph for Twitter — at sizes scaled down so the whole
// evaluation suite runs on one machine (see DESIGN.md §3).
//
// The substitution preserves what the algorithms are sensitive to: |V|, |E|,
// triangle density and degree skew. Absolute runtimes are not comparable to
// the paper's Tianhe-2A numbers, and are not meant to be; every experiment
// reports relative behavior.
package dataset

import (
	"fmt"
	"sort"
	"sync"

	"graphpi/internal/graph"
)

// Spec describes one dataset: the paper's original statistics and the
// synthetic generator standing in for it.
type Spec struct {
	// Name is the dataset name with an "-S" suffix marking the synthetic
	// stand-in (e.g. "WikiVote-S").
	Name string
	// PaperVertices/PaperEdges are the original graph's size from Table I.
	PaperVertices, PaperEdges int64
	// Description matches Table I's description column.
	Description string
	// ScaleNote documents the size relation to the original.
	ScaleNote string
	// Build generates the stand-in at the given scale factor (1.0 = the
	// default reproduction size; benches may use smaller).
	Build func(scale float64) *graph.Graph
}

// scaled multiplies n by scale with a floor of lo.
func scaled(n int, scale float64, lo int) int {
	v := int(float64(n) * scale)
	if v < lo {
		v = lo
	}
	return v
}

// Specs returns the six dataset specs in the paper's Table I order.
func Specs() []Spec {
	return []Spec{
		{
			Name:          "WikiVote-S",
			PaperVertices: 7_100, PaperEdges: 100_800,
			Description: "Wiki Editor Voting",
			ScaleNote:   "full size (7.1K vertices)",
			Build: func(scale float64) *graph.Graph {
				g := graph.BarabasiAlbert(scaled(7100, scale, 200), 14, 0xA11CE)
				g.SetName("WikiVote-S")
				return g
			},
		},
		{
			Name:          "MiCo-S",
			PaperVertices: 96_600, PaperEdges: 1_100_000,
			Description: "Co-authorship",
			ScaleNote:   "≈1/4 scale (same avg degree)",
			Build: func(scale float64) *graph.Graph {
				g := graph.BarabasiAlbert(scaled(24000, scale, 300), 11, 0xB0B)
				g.SetName("MiCo-S")
				return g
			},
		},
		{
			Name:          "Patents-S",
			PaperVertices: 3_800_000, PaperEdges: 16_500_000,
			Description: "US Patents",
			ScaleNote:   "≈1/40 scale (sparse, avg degree ≈ 8)",
			Build: func(scale float64) *graph.Graph {
				g := graph.BarabasiAlbert(scaled(90000, scale, 400), 4, 0xCAFE)
				g.SetName("Patents-S")
				return g
			},
		},
		{
			Name:          "LiveJournal-S",
			PaperVertices: 4_000_000, PaperEdges: 34_700_000,
			Description: "Social network",
			ScaleNote:   "≈1/33 scale (same avg degree ≈ 17)",
			Build: func(scale float64) *graph.Graph {
				g := graph.BarabasiAlbert(scaled(110000, scale, 400), 9, 0x11F7)
				g.SetName("LiveJournal-S")
				return g
			},
		},
		{
			Name:          "Orkut-S",
			PaperVertices: 3_100_000, PaperEdges: 117_200_000,
			Description: "Social network",
			ScaleNote:   "≈1/45 scale (dense, avg degree ≈ 36)",
			Build: func(scale float64) *graph.Graph {
				g := graph.BarabasiAlbert(scaled(70000, scale, 400), 18, 0x0B5C)
				g.SetName("Orkut-S")
				return g
			},
		},
		{
			Name:          "Twitter-S",
			PaperVertices: 41_700_000, PaperEdges: 1_200_000_000,
			Description: "Social network",
			ScaleNote:   "≈1/450 scale (RMAT, heavy skew)",
			Build: func(scale float64) *graph.Graph {
				sc := 18
				if scale < 0.9 {
					sc = 16
				}
				g := graph.RMAT(sc, scaled(2_600_000, scale, 5000), 0.57, 0.19, 0.19, 0x7117)
				g.SetName("Twitter-S")
				return g
			},
		},
	}
}

// EvaluationNames returns the five datasets of the single-node experiments
// (Figures 8–11); Twitter-S is used only for scalability, as in the paper.
func EvaluationNames() []string {
	return []string{"WikiVote-S", "MiCo-S", "Patents-S", "LiveJournal-S", "Orkut-S"}
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// Load builds (or returns the cached) stand-in graph for the named dataset
// at the given scale. Graphs are cached per (name, scale) for the process
// lifetime; generation is deterministic, so cached and fresh copies are
// identical.
func Load(name string, scale float64) (*graph.Graph, error) {
	spec, err := ByName(name)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s@%g", name, scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[key]; ok {
		return g, nil
	}
	g := spec.Build(scale)
	cache[key] = g
	return g, nil
}

// TableRow is one row of the reproduced Table I.
type TableRow struct {
	Name                       string
	Vertices, Edges, Triangles int64
	PaperVertices, PaperEdges  int64
	Description, ScaleNote     string
}

// TableI computes the dataset statistics table at the given scale, sorted
// in the paper's order.
func TableI(scale float64) ([]TableRow, error) {
	specs := Specs()
	rows := make([]TableRow, 0, len(specs))
	for _, s := range specs {
		g, err := Load(s.Name, scale)
		if err != nil {
			return nil, err
		}
		st := g.Stats()
		rows = append(rows, TableRow{
			Name:          s.Name,
			Vertices:      int64(st.Vertices),
			Edges:         st.Edges,
			Triangles:     st.Triangles,
			PaperVertices: s.PaperVertices,
			PaperEdges:    s.PaperEdges,
			Description:   s.Description,
			ScaleNote:     s.ScaleNote,
		})
	}
	return rows, nil
}

// SortedNames returns all dataset names sorted alphabetically (for CLI
// help output).
func SortedNames() []string {
	specs := Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
