package dataset

import (
	"testing"
)

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 6 {
		t.Fatalf("Specs = %d, want 6 (paper Table I)", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.Description == "" || s.ScaleNote == "" || s.Build == nil {
			t.Errorf("incomplete spec %+v", s)
		}
		if names[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
		if s.PaperVertices <= 0 || s.PaperEdges <= 0 {
			t.Errorf("%s: missing paper sizes", s.Name)
		}
	}
	for _, n := range EvaluationNames() {
		if !names[n] {
			t.Errorf("evaluation dataset %s not in specs", n)
		}
	}
	if len(EvaluationNames()) != 5 {
		t.Error("evaluation should use 5 datasets (Twitter is scalability-only)")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("WikiVote-S"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestLoadSmallScale(t *testing.T) {
	// Load every dataset at a tiny scale; verify structural validity,
	// determinism and caching.
	for _, s := range Specs() {
		g, err := Load(s.Name, 0.02)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", s.Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if g.Name() != s.Name {
			t.Errorf("%s: graph named %q", s.Name, g.Name())
		}
		again, err := Load(s.Name, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if again != g {
			t.Errorf("%s: cache miss on identical load", s.Name)
		}
	}
}

func TestDegreeRegimes(t *testing.T) {
	// The social stand-ins must be skewed; that is the property the
	// paper's fine-grained task partitioning targets.
	wiki, err := Load("WikiVote-S", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if float64(wiki.MaxDegree()) < 3*wiki.AvgDegree() {
		t.Errorf("WikiVote-S not skewed: max %d avg %.1f", wiki.MaxDegree(), wiki.AvgDegree())
	}
	// Social graphs need triangles (pattern workloads depend on them).
	if wiki.Triangles() == 0 {
		t.Error("WikiVote-S has no triangles")
	}
	tw, err := Load("Twitter-S", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if float64(tw.MaxDegree()) < 5*tw.AvgDegree() {
		t.Errorf("Twitter-S not heavy-tailed: max %d avg %.1f", tw.MaxDegree(), tw.AvgDegree())
	}
}

func TestTableI(t *testing.T) {
	rows, err := TableI(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("TableI rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Vertices <= 0 || r.Edges <= 0 {
			t.Errorf("%s: empty row", r.Name)
		}
	}
}

func TestSortedNames(t *testing.T) {
	names := SortedNames()
	if len(names) != 6 {
		t.Fatal("wrong count")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("not sorted")
		}
	}
}
