package vertexset

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// mkset turns arbitrary values into a valid sorted duplicate-free set.
func mkset(vals []uint32) []uint32 {
	seen := make(map[uint32]bool, len(vals))
	out := make([]uint32, 0, len(vals))
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// refIntersect is the obvious map-based reference implementation.
func refIntersect(a, b []uint32) []uint32 {
	in := make(map[uint32]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	out := []uint32{}
	for _, v := range b {
		if in[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestIntersectBasic(t *testing.T) {
	cases := []struct{ a, b, want []uint32 }{
		{nil, nil, []uint32{}},
		{[]uint32{1, 2, 3}, nil, []uint32{}},
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, []uint32{2, 3}},
		{[]uint32{1, 3, 5}, []uint32{2, 4, 6}, []uint32{}},
		{[]uint32{7}, []uint32{7}, []uint32{7}},
		{[]uint32{0, 1, 2, 3, 4}, []uint32{0, 4}, []uint32{0, 4}},
	}
	for _, c := range cases {
		got := Intersect(nil, c.a, c.b)
		if !reflect.DeepEqual(append([]uint32{}, got...), c.want) {
			t.Errorf("Intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if n := IntersectSize(c.a, c.b); n != len(c.want) {
			t.Errorf("IntersectSize(%v, %v) = %d, want %d", c.a, c.b, n, len(c.want))
		}
	}
}

func TestIntersectMatchesReference(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkset(av), mkset(bv)
		got := Intersect(nil, a, b)
		want := refIntersect(a, b)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual([]uint32(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIntersectGallopPath(t *testing.T) {
	// Force the galloping path: one tiny set against one huge set.
	rng := rand.New(rand.NewPCG(1, 2))
	big := make([]uint32, 0, 100000)
	for i := 0; i < 100000; i++ {
		big = append(big, uint32(i*3))
	}
	small := []uint32{}
	for i := 0; i < 20; i++ {
		small = append(small, uint32(rng.IntN(300000)))
	}
	small = mkset(small)
	got := Intersect(nil, small, big)
	want := refIntersect(small, big)
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual([]uint32(got), want) {
		t.Errorf("gallop intersect mismatch: got %v want %v", got, want)
	}
	if n := IntersectSize(small, big); n != len(want) {
		t.Errorf("gallop IntersectSize = %d, want %d", n, len(want))
	}
}

func TestIntersectSizeMatchesIntersect(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkset(av), mkset(bv)
		return IntersectSize(a, b) == len(Intersect(nil, a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIntersectBelow(t *testing.T) {
	a := []uint32{1, 4, 6, 9, 12}
	b := []uint32{4, 6, 8, 12, 14}
	got := IntersectBelow(nil, a, b, 12)
	want := []uint32{4, 6}
	if !reflect.DeepEqual([]uint32(got), want) {
		t.Errorf("IntersectBelow = %v, want %v", got, want)
	}
	if got := IntersectBelow(nil, a, b, 0); len(got) != 0 {
		t.Errorf("IntersectBelow bound 0 = %v, want empty", got)
	}
	if got := IntersectBelow(nil, a, b, 100); len(got) != 3 {
		t.Errorf("IntersectBelow bound 100 = %v, want 3 elements", got)
	}
}

func TestIntersectBelowMatchesFilter(t *testing.T) {
	f := func(av, bv []uint32, bound uint32) bool {
		a, b := mkset(av), mkset(bv)
		got := IntersectBelow(nil, a, b, bound)
		want := []uint32{}
		for _, v := range refIntersect(a, b) {
			if v < bound {
				want = append(want, v)
			}
		}
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual([]uint32(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBelow(t *testing.T) {
	a := []uint32{2, 5, 7, 11}
	cases := []struct {
		bound uint32
		want  int
	}{{0, 0}, {2, 0}, {3, 1}, {7, 2}, {8, 3}, {12, 4}, {11, 3}}
	for _, c := range cases {
		if got := Below(a, c.bound); len(got) != c.want {
			t.Errorf("Below(%v, %d) has len %d, want %d", a, c.bound, len(got), c.want)
		}
	}
	if got := Below(nil, 5); len(got) != 0 {
		t.Errorf("Below(nil) = %v", got)
	}
}

func TestContains(t *testing.T) {
	a := []uint32{1, 3, 5, 8, 13}
	for _, v := range a {
		if !Contains(a, v) {
			t.Errorf("Contains(%v, %d) = false, want true", a, v)
		}
	}
	for _, v := range []uint32{0, 2, 4, 9, 14} {
		if Contains(a, v) {
			t.Errorf("Contains(%v, %d) = true, want false", a, v)
		}
	}
	if Contains(nil, 1) {
		t.Error("Contains(nil, 1) = true")
	}
}

func TestSubtract(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5}
	b := []uint32{2, 4, 6}
	got := Subtract(nil, a, b)
	want := []uint32{1, 3, 5}
	if !reflect.DeepEqual([]uint32(got), want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
	if got := Subtract(nil, a, nil); !reflect.DeepEqual([]uint32(got), a) {
		t.Errorf("Subtract by empty = %v, want %v", got, a)
	}
}

func TestUnion(t *testing.T) {
	a := []uint32{1, 3, 5}
	b := []uint32{2, 3, 6}
	got := Union(nil, a, b)
	want := []uint32{1, 2, 3, 5, 6}
	if !reflect.DeepEqual([]uint32(got), want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
}

func TestUnionSubtractProperties(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkset(av), mkset(bv)
		u := Union(nil, a, b)
		if !IsSorted(u) {
			return false
		}
		// |A ∪ B| == |A| + |B| - |A ∩ B|
		if len(u) != len(a)+len(b)-IntersectSize(a, b) {
			return false
		}
		// (A \ B) ∩ B == ∅, and (A \ B) ∪ (A ∩ B) == A
		d := Subtract(nil, a, b)
		if IntersectSize(d, b) != 0 {
			return false
		}
		back := Union(nil, d, Intersect(nil, a, b))
		if len(back) != len(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIntersectMulti(t *testing.T) {
	s1 := []uint32{1, 2, 3, 4, 5, 6}
	s2 := []uint32{2, 4, 6, 8}
	s3 := []uint32{4, 5, 6, 7}
	got := IntersectMulti(nil, nil, s1, s2, s3)
	want := []uint32{4, 6}
	if !reflect.DeepEqual(append([]uint32{}, got...), want) {
		t.Errorf("IntersectMulti = %v, want %v", got, want)
	}
	if got := IntersectMulti(nil, nil, s1); !reflect.DeepEqual(append([]uint32{}, got...), s1) {
		t.Errorf("IntersectMulti single = %v, want %v", got, s1)
	}
	if got := IntersectMulti(nil, nil); len(got) != 0 {
		t.Errorf("IntersectMulti() = %v, want empty", got)
	}
	// Empty member annihilates.
	if got := IntersectMulti(nil, nil, s1, []uint32{}, s3); len(got) != 0 {
		t.Errorf("IntersectMulti with empty = %v, want empty", got)
	}
}

func TestIntersectMultiMatchesFold(t *testing.T) {
	f := func(av, bv, cv, dv []uint32) bool {
		a, b, c, d := mkset(av), mkset(bv), mkset(cv), mkset(dv)
		got := IntersectMulti(nil, nil, a, b, c, d)
		want := refIntersect(refIntersect(refIntersect(a, b), c), d)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(append([]uint32{}, got...), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGallopSearch(t *testing.T) {
	b := []uint32{10, 20, 30, 40, 50, 60, 70, 80}
	cases := []struct {
		lo   int
		x    uint32
		want int
	}{
		{0, 5, 0}, {0, 10, 0}, {0, 15, 1}, {0, 80, 7}, {0, 81, 8},
		{3, 40, 3}, {3, 45, 4}, {8, 100, 8},
	}
	for _, c := range cases {
		if got := gallopSearch(b, c.lo, c.x); got != c.want {
			t.Errorf("gallopSearch(b, %d, %d) = %d, want %d", c.lo, c.x, got, c.want)
		}
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(nil) || !IsSorted([]uint32{1}) || !IsSorted([]uint32{1, 2, 9}) {
		t.Error("IsSorted false negative")
	}
	if IsSorted([]uint32{1, 1}) || IsSorted([]uint32{2, 1}) {
		t.Error("IsSorted false positive")
	}
}

func TestIntersectReusesDst(t *testing.T) {
	dst := make([]uint32, 0, 16)
	a := []uint32{1, 2, 3}
	b := []uint32{2, 3, 4}
	got := Intersect(dst, a, b)
	if &got[0] != &dst[:1][0] {
		t.Error("Intersect did not reuse dst backing array")
	}
	// A second call must truncate previous contents.
	got = Intersect(got, a, []uint32{3})
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("Intersect reuse = %v, want [3]", got)
	}
}
