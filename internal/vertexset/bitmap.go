package vertexset

// This file adds the third intersection strategy of the hybrid adjacency
// engine: packed bitsets. On power-law graphs a few hub vertices participate
// in a large fraction of all intersections, and every one of those
// intersections pays O(n+m) (merge) or O(n log m) (gallop) against the hub's
// huge adjacency list. Materializing the hub adjacency once as a bitmap turns
// every later hub∩anything into O(|anything|) single-word probes. The graph
// layer decides which vertices get bitmaps (top-K by degree under a memory
// budget); this file only supplies the kernels.

// Bitmap is a packed bitset over a fixed vertex universe: bit x of word x/64
// is set iff vertex x is a member. A Bitmap is an alternate, read-only
// representation of a sorted vertex set, never a replacement — callers keep
// the sorted list alongside it.
type Bitmap []uint64

// BitmapWords returns the number of uint64 words a bitmap over the given
// universe size needs.
func BitmapWords(universe int) int {
	return (universe + 63) / 64
}

// NewBitmap returns an all-zero bitmap able to hold members in [0, universe).
func NewBitmap(universe int) Bitmap {
	return make(Bitmap, BitmapWords(universe))
}

// Set marks x as a member. x must be within the universe the bitmap was
// created for.
func (bm Bitmap) Set(x uint32) {
	bm[x>>6] |= 1 << (x & 63)
}

// Contains reports whether x is a member. Out-of-universe ids are reported
// as non-members.
func (bm Bitmap) Contains(x uint32) bool {
	w := int(x >> 6)
	return w < len(bm) && bm[w]&(1<<(x&63)) != 0
}

// BitmapFromSet materializes the sorted set as a bitmap over the given
// universe.
func BitmapFromSet(set []uint32, universe int) Bitmap {
	bm := NewBitmap(universe)
	for _, x := range set {
		bm.Set(x)
	}
	return bm
}

// IntersectBitmap writes small ∩ bm into dst (truncated first) and returns
// it. small must be a sorted set; the output then is too. The cost is
// O(|small|) regardless of the bitmap's population — this is the kernel that
// makes hub intersections cheap.
func IntersectBitmap(dst, small []uint32, bm Bitmap) []uint32 {
	dst = dst[:0]
	for _, x := range small {
		if bm.Contains(x) {
			dst = append(dst, x)
		}
	}
	return dst
}

// IntersectSizeBitmap returns |small ∩ bm| without materializing it.
func IntersectSizeBitmap(small []uint32, bm Bitmap) int {
	n := 0
	for _, x := range small {
		if bm.Contains(x) {
			n++
		}
	}
	return n
}

// IntersectMultiHybrid is the bitmap-aware IntersectMulti: it intersects all
// of sets, where bms[i] (when non-nil) is a bitmap representation of sets[i]
// used to accelerate the work. bms may be nil (all-scalar) or must have
// len(bms) == len(sets). At most 64 sets are supported (the IEP layer, the
// only multi-way consumer, caps far below that). The result aliases dst or
// scratch.
//
// Strategy: seed with the smallest list, filter it through every available
// bitmap in one pass (O(|seed|) per bitmap), then fold in the remaining
// lists smallest-first with the adaptive scalar kernel.
func IntersectMultiHybrid(dst, scratch []uint32, sets [][]uint32, bms []Bitmap) []uint32 {
	switch len(sets) {
	case 0:
		return dst[:0]
	case 1:
		return append(dst[:0], sets[0]...)
	}
	minI := 0
	for i, s := range sets {
		if len(s) < len(sets[minI]) {
			minI = i
		}
	}
	cur := dst[:0]
	nScalar := 0
seed:
	for _, x := range sets[minI] {
		for i := range sets {
			if i != minI && bms != nil && bms[i] != nil && !bms[i].Contains(x) {
				continue seed
			}
		}
		cur = append(cur, x)
	}
	for i := range sets {
		if i != minI && (bms == nil || bms[i] == nil) {
			nScalar++
		}
	}
	if nScalar == 0 {
		return cur
	}
	// Fold in the scalar leftovers smallest-first: the running intersection
	// only shrinks, so ordering by size bounds the total work.
	other := scratch
	var folded uint64 // bit i set once sets[i] has been folded in
	for done := 0; done < nScalar; done++ {
		if len(cur) == 0 {
			return cur
		}
		next := -1
		for i, s := range sets {
			if i == minI || (bms != nil && bms[i] != nil) || folded&(1<<uint(i)) != 0 {
				continue
			}
			if next < 0 || len(s) < len(sets[next]) {
				next = i
			}
		}
		other = Intersect(other, cur, sets[next])
		cur, other = other, cur
		folded |= 1 << uint(next)
	}
	return cur
}
