package vertexset

import (
	"math/rand/v2"
	"testing"
)

func benchSet(n int, stride uint32, seed uint64) []uint32 {
	r := rand.New(rand.NewPCG(seed, 3))
	out := make([]uint32, n)
	v := uint32(0)
	for i := range out {
		v += 1 + uint32(r.Uint32())%stride
		out[i] = v
	}
	return out
}

func BenchmarkIntersectMergeBalanced(b *testing.B) {
	x := benchSet(4096, 4, 1)
	y := benchSet(4096, 4, 2)
	dst := make([]uint32, 0, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect(dst, x, y)
	}
	_ = dst
}

func BenchmarkIntersectGallopSkewed(b *testing.B) {
	small := benchSet(32, 512, 1)
	big := benchSet(65536, 4, 2)
	dst := make([]uint32, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect(dst, small, big)
	}
	_ = dst
}

func BenchmarkIntersectSize(b *testing.B) {
	x := benchSet(4096, 4, 1)
	y := benchSet(4096, 4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectSize(x, y)
	}
}

func BenchmarkIntersectBelow(b *testing.B) {
	x := benchSet(4096, 4, 1)
	y := benchSet(4096, 4, 2)
	bound := x[len(x)/2]
	dst := make([]uint32, 0, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectBelow(dst, x, y, bound)
	}
	_ = dst
}
