package vertexset

import (
	"fmt"
	"testing"
)

// BenchmarkIntersectCrossover sweeps the size ratio |big|/|small| across the
// merge → gallop → bitmap regimes, pinning each strategy explicitly. The
// adaptive kernels pick a strategy from the hardcoded gallopRatio; this sweep
// is the measurement that constant has been missing, and it locates where the
// bitmap kernel (hub adjacencies) takes over.
//
// Run with: go test ./internal/vertexset -bench Crossover -benchtime 100x
func BenchmarkIntersectCrossover(b *testing.B) {
	const bigN = 1 << 16
	big := benchSet(bigN, 4, 2)
	universe := int(big[len(big)-1]) + 1
	bm := BitmapFromSet(big, universe)
	for _, ratio := range []int{1, 2, 8, 16, 32, 64, 128, 512} {
		smallN := bigN / ratio
		// Spread the small set over the same value range as the big one.
		small := benchSet(smallN, uint32(4*ratio), 1)
		dst := make([]uint32, 0, smallN)
		b.Run(fmt.Sprintf("ratio=%d/merge", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst = intersectMerge(dst[:0], small, big)
			}
		})
		b.Run(fmt.Sprintf("ratio=%d/gallop", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst = intersectGallop(dst[:0], small, big)
			}
		})
		b.Run(fmt.Sprintf("ratio=%d/bitmap", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst = IntersectBitmap(dst, small, bm)
			}
		})
		_ = dst
	}
}

func BenchmarkIntersectSizeBitmap(b *testing.B) {
	big := benchSet(1<<16, 4, 2)
	universe := int(big[len(big)-1]) + 1
	bm := BitmapFromSet(big, universe)
	small := benchSet(512, 512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectSizeBitmap(small, bm)
	}
}

func BenchmarkIntersectMultiHybrid(b *testing.B) {
	const universe = 1 << 18
	hub1 := benchSet(1<<15, 8, 3)
	hub2 := benchSet(1<<15, 8, 4)
	small := benchSet(256, 1024, 5)
	sets := [][]uint32{small, hub1, hub2}
	withBMs := []Bitmap{nil, BitmapFromSet(hub1, universe), BitmapFromSet(hub2, universe)}
	dst := make([]uint32, 0, 256)
	scratch := make([]uint32, 0, 256)
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst = IntersectMultiHybrid(dst, scratch, sets, nil)
		}
	})
	b.Run("bitmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst = IntersectMultiHybrid(dst, scratch, sets, withBMs)
		}
	})
	_ = dst
}
