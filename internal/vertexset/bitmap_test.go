package vertexset

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitmapBasic(t *testing.T) {
	bm := NewBitmap(130)
	for _, x := range []uint32{0, 1, 63, 64, 65, 128, 129} {
		bm.Set(x)
	}
	for _, x := range []uint32{0, 1, 63, 64, 65, 128, 129} {
		if !bm.Contains(x) {
			t.Errorf("Contains(%d) = false, want true", x)
		}
	}
	for _, x := range []uint32{2, 62, 66, 127, 130, 1 << 30} {
		if bm.Contains(x) {
			t.Errorf("Contains(%d) = true, want false", x)
		}
	}
}

func TestBitmapFromSet(t *testing.T) {
	set := []uint32{3, 17, 64, 200}
	bm := BitmapFromSet(set, 256)
	for x := uint32(0); x < 256; x++ {
		want := false
		for _, s := range set {
			if s == x {
				want = true
			}
		}
		if bm.Contains(x) != want {
			t.Errorf("Contains(%d) = %v, want %v", x, bm.Contains(x), want)
		}
	}
}

// TestIntersectBitmapMatchesMerge cross-checks the bitmap kernel against the
// scalar merge on random sorted sets (satellite requirement: every new bitmap
// kernel vs. the scalar reference).
func TestIntersectBitmapMatchesMerge(t *testing.T) {
	const universe = 1 << 14
	f := func(rawA, rawB []uint32) bool {
		a, b := mkset(rawA), mkset(rawB)
		a = clampSet(a, universe)
		b = clampSet(b, universe)
		bm := BitmapFromSet(b, universe)
		want := append([]uint32{}, Intersect(nil, a, b)...)
		got := append([]uint32{}, IntersectBitmap(nil, a, bm)...)
		if !reflect.DeepEqual(got, want) {
			t.Logf("a=%v b=%v got=%v want=%v", a, b, got, want)
			return false
		}
		return IntersectSizeBitmap(a, bm) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// clampSet maps set members into [0, universe) preserving sortedness and
// uniqueness.
func clampSet(s []uint32, universe uint32) []uint32 {
	out := s[:0]
	var prev uint32
	for _, x := range s {
		x %= universe
		if len(out) > 0 && x <= prev {
			continue
		}
		out = append(out, x)
		prev = x
	}
	// The modulo can break ordering; rebuild via mkset for safety.
	return mkset(out)
}

func TestIntersectMultiHybridMatchesFold(t *testing.T) {
	const universe = 1 << 12
	r := rand.New(rand.NewPCG(42, 7))
	for iter := 0; iter < 200; iter++ {
		k := 1 + r.IntN(5)
		sets := make([][]uint32, k)
		bms := make([]Bitmap, k)
		for i := range sets {
			n := r.IntN(200)
			raw := make([]uint32, n)
			for j := range raw {
				raw[j] = uint32(r.IntN(universe))
			}
			sets[i] = mkset(raw)
			if r.IntN(2) == 0 {
				bms[i] = BitmapFromSet(sets[i], universe)
			}
		}
		want := append([]uint32{}, sets[0]...)
		for _, s := range sets[1:] {
			want = Intersect(nil, want, s)
		}
		setsCopy := make([][]uint32, k)
		copy(setsCopy, sets)
		got := append([]uint32{}, IntersectMultiHybrid(nil, nil, sets, bms)...)
		if !reflect.DeepEqual(got, append([]uint32{}, want...)) {
			t.Fatalf("iter %d: IntersectMultiHybrid = %v, want %v", iter, got, want)
		}
		// The kernel must not mutate the caller's set slice.
		for i := range sets {
			if len(sets[i]) != len(setsCopy[i]) {
				t.Fatalf("iter %d: sets[%d] mutated", iter, i)
			}
		}
		// All-scalar path must agree with the classic IntersectMulti.
		classic := IntersectMulti(nil, nil, append([][]uint32{}, sets...)...)
		if !reflect.DeepEqual(append([]uint32{}, got...), append([]uint32{}, classic...)) {
			t.Fatalf("iter %d: hybrid %v != IntersectMulti %v", iter, got, classic)
		}
	}
}

func TestIntersectMultiHybridEdgeCases(t *testing.T) {
	if got := IntersectMultiHybrid(nil, nil, nil, nil); len(got) != 0 {
		t.Errorf("no sets: got %v, want empty", got)
	}
	one := []uint32{1, 5, 9}
	if got := IntersectMultiHybrid(nil, nil, [][]uint32{one}, nil); !reflect.DeepEqual(append([]uint32{}, got...), one) {
		t.Errorf("single set: got %v, want %v", got, one)
	}
	empty := [][]uint32{one, {}}
	if got := IntersectMultiHybrid(nil, nil, empty, nil); len(got) != 0 {
		t.Errorf("with empty set: got %v, want empty", got)
	}
}
