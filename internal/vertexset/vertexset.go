// Package vertexset implements the sorted-set kernels at the heart of the
// GraphPi execution engine.
//
// A vertex set is an ascending []uint32 with no duplicates — exactly the
// representation a CSR adjacency list provides (GraphPi, §IV-E: "the
// neighborhood of a vertex is sorted and continuous in memory. Therefore,
// the intersection operation of two sets can be efficiently implemented with
// the time complexity of O(n+m), and the intersection is naturally sorted").
//
// Two intersection strategies are provided and selected adaptively:
//
//   - a linear merge, optimal when the inputs have comparable sizes, and
//   - a galloping (exponential probe + binary search) scan, optimal when one
//     input is much smaller than the other, as is common on power-law graphs
//     where a hub adjacency meets a leaf adjacency.
//
// All kernels write into caller-provided destination slices so the hot loops
// of the engine never allocate.
package vertexset

// GallopRatio is the size ratio beyond which the galloping strategy beats the
// linear merge. The crossover is architecture dependent; BenchmarkIntersect-
// Crossover (bitmap_bench_test.go) sweeps it — on amd64/uint32 merge wins at
// ratio 8 (269µs vs 411µs for 64Ki∩8Ki) and gallop from ratio 16 on (223µs
// vs 231µs), so 16 is the measured crossover. Exported so the cost model can
// freeze the same choice at plan-compile time from *expected* set sizes.
const GallopRatio = 16

const gallopRatio = GallopRatio

// IntersectMerge is Intersect with the linear-merge kernel forced,
// regardless of the input size ratio. Compiled plans call it when the cost
// model froze the merge choice at compile time.
func IntersectMerge(dst, a, b []uint32) []uint32 {
	dst = dst[:0]
	if len(a) == 0 || len(b) == 0 {
		return dst
	}
	return intersectMerge(dst, a, b)
}

// IntersectGallop is Intersect with the galloping kernel forced: the smaller
// input probes the larger by exponential + binary search. Compiled plans
// call it when the cost model froze the gallop choice at compile time.
func IntersectGallop(dst, a, b []uint32) []uint32 {
	dst = dst[:0]
	if len(a) == 0 || len(b) == 0 {
		return dst
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	return intersectGallop(dst, a, b)
}

// Intersect writes the intersection of the sorted sets a and b into dst
// (which is truncated first) and returns the extended slice. dst must not
// alias a or b. The inputs must be ascending and duplicate-free; the output
// then is too.
func Intersect(dst, a, b []uint32) []uint32 {
	dst = dst[:0]
	if len(a) == 0 || len(b) == 0 {
		return dst
	}
	// Keep a as the smaller set.
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopRatio*len(a) {
		return intersectGallop(dst, a, b)
	}
	return intersectMerge(dst, a, b)
}

// IntersectBelow is Intersect restricted to elements strictly less than
// bound. It is the kernel behind GraphPi's restriction pruning: a restriction
// id(x) > id(current) with x already bound turns the remainder of a sorted
// candidate scan into dead work, so the intersection itself stops early.
func IntersectBelow(dst, a, b []uint32, bound uint32) []uint32 {
	a = Below(a, bound)
	b = Below(b, bound)
	return Intersect(dst, a, b)
}

// IntersectSize returns |a ∩ b| without materializing the intersection.
func IntersectSize(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= gallopRatio*len(a) {
		return intersectGallopSize(a, b)
	}
	return intersectMergeSize(a, b)
}

// intersectMerge is the textbook two-pointer merge intersection, O(n+m).
func intersectMerge(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			dst = append(dst, x)
			i++
			j++
		}
	}
	return dst
}

func intersectMergeSize(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// intersectGallop probes b for each element of the (much smaller) a,
// advancing a moving frontier so the total work is O(|a| log(|b|/|a|)).
func intersectGallop(dst, a, b []uint32) []uint32 {
	lo := 0
	for _, x := range a {
		lo = gallopSearch(b, lo, x)
		if lo == len(b) {
			break
		}
		if b[lo] == x {
			dst = append(dst, x)
			lo++
		}
	}
	return dst
}

func intersectGallopSize(a, b []uint32) int {
	lo, n := 0, 0
	for _, x := range a {
		lo = gallopSearch(b, lo, x)
		if lo == len(b) {
			break
		}
		if b[lo] == x {
			n++
			lo++
		}
	}
	return n
}

// gallopSearch returns the smallest index i in [lo, len(b)] such that
// b[i] >= x, probing exponentially from lo before binary searching.
func gallopSearch(b []uint32, lo int, x uint32) int {
	if lo >= len(b) || b[lo] >= x {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < len(b) && b[hi] < x {
		lo = hi
		step <<= 1
		hi += step
	}
	if hi > len(b) {
		hi = len(b)
	}
	// Invariant: b[lo] < x, and (hi == len(b) or b[hi] >= x).
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Below returns the prefix of the sorted set a whose elements are strictly
// less than bound.
func Below(a []uint32, bound uint32) []uint32 {
	// Fast paths: whole set below, or empty.
	if len(a) == 0 || a[len(a)-1] < bound {
		return a
	}
	if a[0] >= bound {
		return a[:0]
	}
	lo, hi := 0, len(a) // smallest index with a[i] >= bound
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return a[:lo]
}

// Above returns the suffix of the sorted set a whose elements are strictly
// greater than bound. Together with Below it turns GraphPi's restriction
// checks into O(log n) window narrowing on sorted candidate sets.
func Above(a []uint32, bound uint32) []uint32 {
	if len(a) == 0 || a[0] > bound {
		return a
	}
	if a[len(a)-1] <= bound {
		return a[len(a):]
	}
	lo, hi := 0, len(a) // smallest index with a[i] > bound
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return a[lo:]
}

// Contains reports whether the sorted set a contains x.
func Contains(a []uint32, x uint32) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == x
}

// Subtract writes a \ b into dst (truncated first) and returns it.
// dst must not alias a or b.
func Subtract(dst, a, b []uint32) []uint32 {
	dst = dst[:0]
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		dst = append(dst, x)
	}
	return dst
}

// Union writes the sorted union of a and b into dst (truncated first).
// dst must not alias a or b.
func Union(dst, a, b []uint32) []uint32 {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			dst = append(dst, x)
			i++
		case x > y:
			dst = append(dst, y)
			j++
		default:
			dst = append(dst, x)
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// IntersectMulti intersects k ≥ 1 sorted sets, smallest-first, using scratch
// as the ping buffer. It returns the result, which aliases either dst or
// scratch. Used by the IEP cardinality calculation (Algorithm 2) where whole
// connected components of candidate sets are intersected at once.
func IntersectMulti(dst, scratch []uint32, sets ...[]uint32) []uint32 {
	switch len(sets) {
	case 0:
		return dst[:0]
	case 1:
		dst = append(dst[:0], sets[0]...)
		return dst
	}
	// Start from the two smallest sets: the running intersection only
	// shrinks, so seeding it small bounds all later work.
	minI := 0
	for i, s := range sets {
		if len(s) < len(sets[minI]) {
			minI = i
		}
	}
	sets[0], sets[minI] = sets[minI], sets[0]
	cur := Intersect(dst, sets[0], sets[1])
	other := scratch
	for _, s := range sets[2:] {
		if len(cur) == 0 {
			return cur
		}
		other = Intersect(other, cur, s)
		cur, other = other, cur
	}
	return cur
}

// IsSorted reports whether a is strictly ascending (the set invariant).
func IsSorted(a []uint32) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			return false
		}
	}
	return true
}
