package codegen_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"graphpi/internal/codegen"
	"graphpi/internal/core"
	"graphpi/internal/graph"
	"graphpi/internal/pattern"
	"graphpi/internal/restrict"
	"graphpi/internal/schedule"
)

func configFor(t *testing.T, p *pattern.Pattern) *core.Config {
	t.Helper()
	sres := schedule.Generate(p, schedule.Options{})
	sets, err := restrict.Generate(p, restrict.Options{MaxSets: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := core.NewConfig(p, sres.Efficient[0], sets[0])
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestGenerateSourceShape(t *testing.T) {
	cfg := configFor(t, pattern.House())
	src, err := codegen.GenerateSource(cfg.SourceSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package main",
		"func countEmbeddings(g *csr) int64",
		"func intersect(", // hoisted intersections present
		"break // id(",    // restriction turned into a sorted-scan break
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	if !strings.Contains(src, "count++") && !strings.Contains(src, "count += int64(len(") {
		t.Error("generated source has no counting leaf")
	}
}

func TestLowerShape(t *testing.T) {
	cfg := configFor(t, pattern.House())
	prog, err := codegen.Lower(cfg.SourceSpec())
	if err != nil {
		t.Fatal(err)
	}
	if prog.N != cfg.N() || len(prog.Levels) != cfg.N() {
		t.Fatalf("lowered %d levels, want %d", len(prog.Levels), cfg.N())
	}
	if prog.IEPCut != -1 {
		t.Errorf("source spec lowered with IEP cut %d, want -1", prog.IEPCut)
	}
	if !prog.Levels[cfg.N()-1].IsLeaf {
		t.Error("last level not marked leaf")
	}
	for d, lv := range prog.Levels {
		if lv.Depth != d {
			t.Errorf("level %d records depth %d", d, lv.Depth)
		}
	}
}

// TestCompileMatchesEngine runs the closure backend directly against the
// interpreted engine on the plain-enumeration spec — the codegen-level
// equivalence check (the full tier matrix lives in internal/core).
func TestCompileMatchesEngine(t *testing.T) {
	g := graph.BarabasiAlbert(300, 4, 11)
	for _, p := range []*pattern.Pattern{pattern.Triangle(), pattern.House(), pattern.Rectangle()} {
		cfg := configFor(t, p)
		want := cfg.Count(g, core.RunOptions{Workers: 1, Tier: core.TierInterpret})

		prog, err := codegen.Lower(cfg.SourceSpec())
		if err != nil {
			t.Fatal(err)
		}
		kern := codegen.Compile(prog, g)
		var stop atomic.Bool
		st := kern.NewState(&stop)
		st.RunRoot(0, g.NumVertices())
		if got := st.Count(); got != want {
			t.Errorf("%s: compiled closures counted %d, engine %d", p, got, want)
		}
	}
}

// TestGeneratedProgramMatchesEngine compiles the generated program with the
// host toolchain and compares its output with the interpreted engine — the
// full Figure-3 pipeline (configuration → code generation → compilation →
// execution).
func TestGeneratedProgramMatchesEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles with the host go toolchain")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	g := graph.BarabasiAlbert(400, 5, 77)
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, p := range []*pattern.Pattern{pattern.Triangle(), pattern.House(), pattern.Rectangle()} {
		cfg := configFor(t, p)
		want := cfg.Count(g, core.RunOptions{Workers: 1})

		src, err := codegen.GenerateSource(cfg.SourceSpec())
		if err != nil {
			t.Fatal(err)
		}
		pkgDir := filepath.Join(dir, "gen-"+p.Name())
		if err := os.MkdirAll(pkgDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pkgDir, "main.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pkgDir, "go.mod"),
			[]byte("module genpattern\n\ngo 1.24\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		bin := filepath.Join(pkgDir, "matcher")
		build := exec.Command(goBin, "build", "-o", bin, ".")
		build.Dir = pkgDir
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("%s: generated code does not compile: %v\n%s\n--- source ---\n%s",
				p, err, out, src)
		}
		out, err := exec.Command(bin, graphPath).Output()
		if err != nil {
			t.Fatalf("%s: generated binary failed: %v", p, err)
		}
		got, err := strconv.ParseInt(strings.TrimSpace(string(out)), 10, 64)
		if err != nil {
			t.Fatalf("%s: bad output %q", p, out)
		}
		if got != want {
			t.Errorf("%s: generated binary counted %d, engine %d", p, got, want)
		}
	}
}
