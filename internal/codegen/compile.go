package codegen

import (
	"sync/atomic"

	"graphpi/internal/auxgraph"
	"graphpi/internal/graph"
	"graphpi/internal/iep"
	"graphpi/internal/schedule"
	"graphpi/internal/telemetry"
	"graphpi/internal/vertexset"
)

// maxUint32 is the open upper limit used when no restriction bounds a loop.
const maxUint32 = 1<<32 - 1

// Kernel is a Program compiled against one data graph: a chain of per-level
// closures with the specialization decisions (window shape, duplicate
// checks, kernel choice, leaf monomorphization) resolved once at build time
// instead of per iteration. A Kernel is immutable and shared by every
// worker; the mutable execution state lives in State.
type Kernel struct {
	prog    *Program
	g       *graph.Graph
	hasHubs bool
	n       int

	// root runs the loop nest below one bound root vertex (bound[0] set).
	root func(*State)
	// steps0 runs the (rare) intersections hoisted to depth 0.
	steps0 func(*State)
	// scan1 runs the depth-1 loop over an explicit candidate slice — the
	// entry point for edge-parallel slot groups. nil when depth 1 is not
	// a list scan (or the nest ends at the root).
	scan1 func(*State, []uint32)
	// iepFn computes the IEP suffix count for the bound prefix.
	iepFn func(*State) int64
}

// State is one worker's execution state for a Kernel: bound vertices,
// intersection buffers, tally and the IEP calculator. Single-goroutine.
type State struct {
	k     *Kernel
	g     *graph.Graph
	nv    int
	bound []uint32
	bufs  [][]uint32
	stop  *atomic.Bool
	count int64
	st    *telemetry.RunStats // nil when telemetry is disabled

	calc    *iep.Calculator
	iepSets [][]uint32
	iepBMs  []vertexset.Bitmap

	// aux is the worker's auxiliary-graph scratch (nil when the run does
	// not enable pruning); aux-marked step closures probe it and fall back
	// to the full-row path on a miss, so counts never depend on it.
	aux *auxgraph.Aux
}

// Compile binds a lowered Program to a data graph, building the closure
// chain. The chain is constructed innermost-out so every level captures its
// successor directly — no per-iteration dispatch survives to run time.
//
//graphpi:deterministic
func Compile(prog *Program, g *graph.Graph) *Kernel {
	k := &Kernel{
		prog:    prog,
		g:       g,
		hasHubs: g.NumHubs() > 0,
		n:       prog.N,
	}
	if prog.IEPCut >= 0 {
		k.iepFn = k.compileIEP()
	}
	// The deepest level actually executed: the IEP cut when present.
	last := prog.N - 1
	if prog.IEPCut >= 0 {
		last = prog.IEPCut
	}
	// entries[d] executes the whole loop at depth d (fetch + scan);
	// scans[d] is the scan half, for callers that supply the candidates.
	entries := make([]func(*State), prog.N)
	var scan1 func(*State, []uint32)
	for d := last; d >= 1; d-- {
		lv := prog.Levels[d]
		var next func(*State)
		if d < last {
			next = entries[d+1]
		}
		if lv.Cand.Kind == schedule.CandFull {
			entries[d] = k.compileFull(lv, next)
			continue
		}
		scan := k.compileScan(lv, next)
		if d == 1 {
			scan1 = scan
		}
		entries[d] = k.compileEntry(lv, scan)
	}
	k.steps0 = k.compileSteps(prog.Levels[0].Steps, 0)
	switch {
	case prog.N == 1:
		// RunRoot short-circuits; no chain to build.
	case prog.IEPCut == 0:
		// RunRoot already ran steps0; IEP consumes everything after the
		// root (no depth-1 scan exists, matching EdgeParallelEligible's
		// refusal).
		iepFn := k.iepFn
		k.root = func(s *State) { s.count += iepFn(s) }
	default:
		k.root = entries[1]
		k.scan1 = scan1
	}
	return k
}

// NewState allocates one worker's execution state. stop may be nil; when
// set, a true value makes the runs below return at the next outer-loop
// boundary with a partial tally.
func (k *Kernel) NewState(stop *atomic.Bool) *State {
	s := &State{
		k:     k,
		g:     k.g,
		nv:    k.g.NumVertices(),
		bound: make([]uint32, k.n),
		bufs:  make([][]uint32, k.prog.NumBufs),
		stop:  stop,
	}
	maxDeg := k.g.MaxDegree()
	for i := range s.bufs {
		s.bufs[i] = make([]uint32, 0, maxDeg)
	}
	if k.prog.IEPCut >= 0 {
		s.calc = iep.NewCalculator(k.prog.KIEP)
		s.iepSets = make([][]uint32, k.prog.KIEP)
		if k.hasHubs {
			s.iepBMs = make([]vertexset.Bitmap, k.prog.KIEP)
		}
	}
	return s
}

// EdgeCapable reports whether RunRootEdges may be used (the nest has a
// depth-1 list scan not consumed by the IEP suffix).
func (k *Kernel) EdgeCapable() bool { return k.scan1 != nil }

// Count returns the raw tally accumulated so far (before IEP scaling).
func (s *State) Count() int64 { return s.count }

// SetStats enables per-level telemetry for this worker state; the closures
// record into it when non-nil. Stats returns the shard for merging (nil when
// telemetry was never enabled). Counts are bit-identical either way.
func (s *State) SetStats(st *telemetry.RunStats) { s.st = st }
func (s *State) Stats() *telemetry.RunStats      { return s.st }

// SetAux attaches auxiliary-graph scratch to this worker state; the kernel's
// aux-marked closures serve intersections from it when possible. Aux returns
// it for stats folding (nil when never attached). Counts are bit-identical
// with and without scratch.
func (s *State) SetAux(a *auxgraph.Aux) { s.aux = a }
func (s *State) Aux() *auxgraph.Aux     { return s.aux }

// beginAuxRoot switches the aux scratch to a new root subtree. One branch
// when aux is disabled; the Neighbors fetch is the root row the engine reads
// anyway.
func (s *State) beginAuxRoot(v uint32) {
	if s.aux == nil {
		return
	}
	var bm vertexset.Bitmap
	if s.k.hasHubs {
		bm = s.g.HubBitmap(v)
	}
	s.aux.BeginRoot(v, s.g.Neighbors(v), bm)
}

// RunRoot executes the outermost loop over the vertex range [start, end).
//
//graphpi:deterministic
func (s *State) RunRoot(start, end int) {
	k := s.k
	if lst := s.st.Level(0); lst != nil && end > start {
		lst.Scan(end-start, 0)
	}
	if k.n == 1 {
		if s.stop != nil && s.stop.Load() {
			return
		}
		s.count += int64(end - start)
		return
	}
	steps0, root := k.steps0, k.root
	for v := start; v < end; v++ {
		if s.stop != nil && s.stop.Load() {
			return
		}
		s.bound[0] = uint32(v)
		s.beginAuxRoot(uint32(v))
		if steps0 != nil {
			steps0(s)
		}
		root(s)
	}
}

// RunRootEdges executes the flattened first two loops over the CSR slot
// range [start, end). Only valid when EdgeCapable; the caller must cover
// every slot exactly once.
//
//graphpi:deterministic
func (s *State) RunRootEdges(start, end int) {
	k := s.k
	g := s.g
	steps0, scan1 := k.steps0, k.scan1
	lst := s.st.Level(0)
	v := g.SlotOwner(start)
	for start < end {
		if s.stop != nil && s.stop.Load() {
			return
		}
		_, ve := g.AdjSlotRange(v)
		if ve <= start {
			v++ // zero-degree vertex or finished adjacency
			continue
		}
		stop := ve
		if stop > end {
			stop = end
		}
		s.bound[0] = v
		s.beginAuxRoot(v)
		if lst != nil {
			lst.Scan(1, 0)
		}
		if steps0 != nil {
			steps0(s)
		}
		scan1(s, g.AdjSlots(start, stop))
		start = stop
		v++
	}
}

// compileEntry wires a list level's candidate fetch to its scan.
func (k *Kernel) compileEntry(lv Level, scan func(*State, []uint32)) func(*State) {
	if lv.Cand.Kind == schedule.CandNeighborhood {
		parent := lv.Cand.Parent
		return func(s *State) { scan(s, s.g.Neighbors(s.bound[parent])) }
	}
	buf := lv.Cand.Buf
	return func(s *State) { scan(s, s.bufs[buf]) }
}

// compileScan builds the loop body of one list level, specialized on its
// role (leaf / IEP cut / interior) and on whether duplicate checks survive.
// The leaf of a counting run monomorphizes to a single length add — the
// interpreter's per-candidate bind, leaf call and stop probe all vanish.
func (k *Kernel) compileScan(lv Level, next func(*State)) func(*State, []uint32) {
	narrow := compileNarrow(lv.Lowers, lv.Uppers)
	steps := k.compileSteps(lv.Steps, lv.Depth)
	dup := lv.Dup
	d := lv.Depth
	switch {
	case lv.IsLeaf && len(dup) == 0:
		if narrow == nil {
			return func(s *State, cands []uint32) {
				if lst := s.st.Level(d); lst != nil {
					lst.Scan(len(cands), 0)
				}
				s.count += int64(len(cands))
			}
		}
		return func(s *State, cands []uint32) {
			raw := len(cands)
			cands = narrow(s, cands)
			if lst := s.st.Level(d); lst != nil {
				lst.Scan(len(cands), raw-len(cands))
			}
			s.count += int64(len(cands))
		}
	case lv.IsLeaf:
		return func(s *State, cands []uint32) {
			raw := len(cands)
			if narrow != nil {
				cands = narrow(s, cands)
			}
			lst := s.st.Level(d)
			if lst != nil {
				lst.Scan(len(cands), raw-len(cands))
			}
		nextCand:
			for _, v := range cands {
				for _, p := range dup {
					if s.bound[p] == v {
						if lst != nil {
							lst.DupSkips++
						}
						continue nextCand
					}
				}
				s.count++
			}
		}
	case lv.AtCut:
		iepFn := k.iepFn
		return func(s *State, cands []uint32) {
			raw := len(cands)
			if narrow != nil {
				cands = narrow(s, cands)
			}
			lst := s.st.Level(d)
			if lst != nil {
				lst.Scan(len(cands), raw-len(cands))
				defer lst.ScanTimerEnd(lst.ScanTimerStart())
			}
		nextCand:
			for _, v := range cands {
				for _, p := range dup {
					if s.bound[p] == v {
						if lst != nil {
							lst.DupSkips++
						}
						continue nextCand
					}
				}
				s.bound[d] = v
				if steps != nil {
					steps(s)
				}
				s.count += iepFn(s)
			}
		}
	case len(dup) == 0:
		return func(s *State, cands []uint32) {
			raw := len(cands)
			if narrow != nil {
				cands = narrow(s, cands)
			}
			if lst := s.st.Level(d); lst != nil {
				lst.Scan(len(cands), raw-len(cands))
				defer lst.ScanTimerEnd(lst.ScanTimerStart())
			}
			for _, v := range cands {
				s.bound[d] = v
				if steps != nil {
					steps(s)
				}
				next(s)
				if s.stop != nil && s.stop.Load() {
					return
				}
			}
		}
	default:
		return func(s *State, cands []uint32) {
			raw := len(cands)
			if narrow != nil {
				cands = narrow(s, cands)
			}
			lst := s.st.Level(d)
			if lst != nil {
				lst.Scan(len(cands), raw-len(cands))
				defer lst.ScanTimerEnd(lst.ScanTimerStart())
			}
		nextCand:
			for _, v := range cands {
				for _, p := range dup {
					if s.bound[p] == v {
						if lst != nil {
							lst.DupSkips++
						}
						continue nextCand
					}
				}
				s.bound[d] = v
				if steps != nil {
					steps(s)
				}
				next(s)
				if s.stop != nil && s.stop.Load() {
					return
				}
			}
		}
	}
}

// compileFull builds the loop body of a CandFull level: a sweep over the
// whole vertex range inside the restriction window (only inefficient
// schedules reach this).
func (k *Kernel) compileFull(lv Level, next func(*State)) func(*State) {
	bounds := compileWindow(lv.Lowers, lv.Uppers)
	steps := k.compileSteps(lv.Steps, lv.Depth)
	dup := lv.Dup
	d := lv.Depth
	iepFn := k.iepFn
	atCut := lv.AtCut
	isLeaf := lv.IsLeaf
	if isLeaf && len(dup) == 0 {
		return func(s *State) {
			start, end := bounds(s)
			if lst := s.st.Level(d); lst != nil {
				size := end - start
				if size < 0 {
					size = 0
				}
				lst.Scan(size, s.nv-size)
			}
			if end > start {
				s.count += int64(end - start)
			}
		}
	}
	return func(s *State) {
		start, end := bounds(s)
		lst := s.st.Level(d)
		if lst != nil {
			size := end - start
			if size < 0 {
				size = 0
			}
			lst.Scan(size, s.nv-size)
			defer lst.ScanTimerEnd(lst.ScanTimerStart())
		}
	nextCand:
		for vi := start; vi < end; vi++ {
			v := uint32(vi)
			for _, p := range dup {
				if s.bound[p] == v {
					if lst != nil {
						lst.DupSkips++
					}
					continue nextCand
				}
			}
			switch {
			case isLeaf:
				s.count++
			case atCut:
				s.bound[d] = v
				if steps != nil {
					steps(s)
				}
				s.count += iepFn(s)
			default:
				s.bound[d] = v
				if steps != nil {
					steps(s)
				}
				next(s)
				if s.stop != nil && s.stop.Load() {
					return
				}
			}
		}
	}
}

// compileNarrow bakes the restriction window into a candidate-slice
// narrowing closure reading fixed bound positions — no per-iteration window
// scan. nil means the level is unrestricted.
func compileNarrow(lowers, uppers []uint8) func(*State, []uint32) []uint32 {
	switch {
	case len(lowers) == 0 && len(uppers) == 0:
		return nil
	case len(lowers) == 0 && len(uppers) == 1:
		p := uppers[0]
		return func(s *State, c []uint32) []uint32 {
			return vertexset.Below(c, s.bound[p])
		}
	case len(lowers) == 1 && len(uppers) == 0:
		p := lowers[0]
		return func(s *State, c []uint32) []uint32 {
			return vertexset.Above(c, s.bound[p])
		}
	case len(lowers) == 1 && len(uppers) == 1:
		lp, up := lowers[0], uppers[0]
		return func(s *State, c []uint32) []uint32 {
			return vertexset.Above(vertexset.Below(c, s.bound[up]), s.bound[lp])
		}
	default:
		return func(s *State, c []uint32) []uint32 {
			lo, hasLo, hi := windowOf(s, lowers, uppers)
			if hi != maxUint32 {
				c = vertexset.Below(c, hi)
			}
			if hasLo {
				c = vertexset.Above(c, lo)
			}
			return c
		}
	}
}

// compileWindow is compileNarrow for CandFull levels: it yields the vertex
// index range [start, end) instead of narrowing a slice.
func compileWindow(lowers, uppers []uint8) func(*State) (int, int) {
	if len(lowers) == 0 && len(uppers) == 0 {
		return func(s *State) (int, int) { return 0, s.nv }
	}
	return func(s *State) (int, int) {
		lo, hasLo, hi := windowOf(s, lowers, uppers)
		start := 0
		if hasLo {
			start = int(lo) + 1
		}
		end := s.nv
		if hi != maxUint32 && int(hi) < end {
			end = int(hi)
		}
		return start, end
	}
}

// windowOf computes the max lower / min upper bound over several window
// positions (the general case; single-bound levels are specialized away).
func windowOf(s *State, lowers, uppers []uint8) (lo uint32, hasLo bool, hi uint32) {
	for _, p := range lowers {
		if b := s.bound[p]; !hasLo || b > lo {
			lo, hasLo = b, true
		}
	}
	hi = uint32(maxUint32)
	for _, p := range uppers {
		if b := s.bound[p]; b < hi {
			hi = b
		}
	}
	return lo, hasLo, hi
}

// compileSteps compiles a level's hoisted intersections. nil when the level
// has none (the common case — only multi-parent candidates need steps).
// d is the hosting schedule level, used only for telemetry attribution.
func (k *Kernel) compileSteps(steps []Step, d int) func(*State) {
	if len(steps) == 0 {
		return nil
	}
	fns := make([]func(*State), len(steps))
	for i, st := range steps {
		fns[i] = k.compileStep(st, d)
	}
	if len(fns) == 1 {
		return fns[0]
	}
	return func(s *State) {
		for _, fn := range fns {
			fn(s)
		}
	}
}

// compileStep compiles one intersection with its kernel choice and left
// operand frozen: each variant reads its buffer or neighborhood directly,
// with no per-iteration fetch indirection. A frozen bitmap kernel still
// guards at run time — the bound vertex may not be a hub — but it keeps the
// interpreter's full hybrid dispatch (including the left-side probe):
// dropping a bitmap probe trades O(|small|) walks for full merges and loses
// far more than the skipped comparisons save.
//
// Aux-marked steps get a monomorphized aux-backed left… rather: an
// aux-probing wrapper around the frozen base closure (see wrapAux); the
// base runs unchanged whenever the scratch declines a row, so kernel
// freezing and pruning compose instead of conflicting.
func (k *Kernel) compileStep(st Step, d int) func(*State) {
	base := k.compileStepBase(st, d)
	return k.wrapAux(st, d, base)
}

// wrapAux wraps a step's base closure with the auxiliary-row probe. The
// substitution is exact (see internal/auxgraph): for AuxCopy the pruned row
// N(v_d) ∩ N(v0) IS the step's output; for AuxRight the left buffer is
// contained in N(v0), so intersecting it with the pruned row equals
// intersecting with the full row. A declined row falls back to base, so the
// output is identical either way.
func (k *Kernel) wrapAux(st Step, d int, base func(*State)) func(*State) {
	out := st.Out
	dep := st.Depth
	switch st.Aux {
	case AuxCopy:
		return func(s *State) {
			if row, ok := s.aux.Row(s.bound[dep]); ok {
				s.recIntersect(d, telemetry.KernelAux)
				s.bufs[out] = append(s.bufs[out][:0], row...)
				return
			}
			base(s)
		}
	case AuxRight:
		lb := st.LeftBuf
		return func(s *State) {
			if row, ok := s.aux.Row(s.bound[dep]); ok {
				s.recIntersect(d, telemetry.KernelAux)
				s.bufs[out] = vertexset.Intersect(s.bufs[out], s.bufs[lb], row)
				return
			}
			base(s)
		}
	default:
		return base
	}
}

func (k *Kernel) compileStepBase(st Step, d int) func(*State) {
	out := st.Out
	dep := st.Depth
	fromBuf := st.LeftBuf >= 0
	lb := st.LeftBuf
	lp := st.LeftParent
	choice := st.Kernel
	if choice == KernelBitmap && !k.hasHubs {
		choice = KernelAdaptive
	}
	switch choice {
	case KernelMerge:
		if fromBuf {
			return func(s *State) {
				s.recIntersect(d, telemetry.KernelMerge)
				s.bufs[out] = vertexset.IntersectMerge(s.bufs[out], s.bufs[lb], s.g.Neighbors(s.bound[dep]))
			}
		}
		return func(s *State) {
			s.recIntersect(d, telemetry.KernelMerge)
			s.bufs[out] = vertexset.IntersectMerge(s.bufs[out], s.g.Neighbors(s.bound[lp]), s.g.Neighbors(s.bound[dep]))
		}
	case KernelGallop:
		if fromBuf {
			return func(s *State) {
				s.recIntersect(d, telemetry.KernelGallop)
				s.bufs[out] = vertexset.IntersectGallop(s.bufs[out], s.bufs[lb], s.g.Neighbors(s.bound[dep]))
			}
		}
		return func(s *State) {
			s.recIntersect(d, telemetry.KernelGallop)
			s.bufs[out] = vertexset.IntersectGallop(s.bufs[out], s.g.Neighbors(s.bound[lp]), s.g.Neighbors(s.bound[dep]))
		}
	case KernelBitmap, KernelAdaptive:
		if k.hasHubs {
			if fromBuf {
				// Buffer left side: only the bound vertex can be a hub.
				return func(s *State) {
					l := s.bufs[lb]
					rv := s.bound[dep]
					right := s.g.Neighbors(rv)
					if bm := s.g.HubBitmap(rv); bm != nil && len(l) <= len(right) {
						s.recIntersect(d, telemetry.KernelBitmap)
						s.bufs[out] = vertexset.IntersectBitmap(s.bufs[out][:0], l, bm)
						return
					}
					s.recAdaptive(d, len(l), len(right))
					s.bufs[out] = vertexset.Intersect(s.bufs[out], l, right)
				}
			}
			// Two neighborhoods: probe either side's hub bitmap with the
			// smaller set, mirroring the interpreter bit for bit.
			return func(s *State) {
				l := s.g.Neighbors(s.bound[lp])
				rv := s.bound[dep]
				right := s.g.Neighbors(rv)
				if bm := s.g.HubBitmap(rv); bm != nil && len(l) <= len(right) {
					s.recIntersect(d, telemetry.KernelBitmap)
					s.bufs[out] = vertexset.IntersectBitmap(s.bufs[out][:0], l, bm)
					return
				}
				if bm := s.g.HubBitmap(s.bound[lp]); bm != nil && len(right) < len(l) {
					s.recIntersect(d, telemetry.KernelBitmap)
					s.bufs[out] = vertexset.IntersectBitmap(s.bufs[out][:0], right, bm)
					return
				}
				s.recAdaptive(d, len(l), len(right))
				s.bufs[out] = vertexset.Intersect(s.bufs[out], l, right)
			}
		}
		fallthrough
	default:
		if fromBuf {
			return func(s *State) {
				l := s.bufs[lb]
				right := s.g.Neighbors(s.bound[dep])
				s.recAdaptive(d, len(l), len(right))
				s.bufs[out] = vertexset.Intersect(s.bufs[out], l, right)
			}
		}
		return func(s *State) {
			l := s.g.Neighbors(s.bound[lp])
			right := s.g.Neighbors(s.bound[dep])
			s.recAdaptive(d, len(l), len(right))
			s.bufs[out] = vertexset.Intersect(s.bufs[out], l, right)
		}
	}
}

// recIntersect attributes one intersection to a level's stats; recAdaptive
// classifies an adaptive dispatch by the rule vertexset.Intersect applies.
// Both are nil-safe single-branch no-ops when telemetry is disabled.
func (s *State) recIntersect(d, kernel int) {
	if lst := s.st.Level(d); lst != nil {
		lst.Intersect(kernel)
	}
}

func (s *State) recAdaptive(d, lenA, lenB int) {
	if lst := s.st.Level(d); lst != nil {
		lst.Intersect(telemetry.ClassifyIntersect(lenA, lenB, vertexset.GallopRatio))
	}
}

// compileIEP builds the suffix counter: fill the candidate sets of the
// innermost KIEP loops from the bound prefix and hand them to the
// inclusion–exclusion calculator (paper Figure 6: |S_IEP|).
func (k *Kernel) compileIEP() func(*State) int64 {
	srcs := k.prog.IEP
	base := k.prog.N - k.prog.KIEP
	cut := k.prog.IEPCut
	return func(s *State) int64 {
		if lst := s.st.Level(cut); lst != nil {
			lst.IEPCounts++
		}
		for i, src := range srcs {
			if src.Parent >= 0 {
				p := s.bound[src.Parent]
				s.iepSets[i] = s.g.Neighbors(p)
				if s.iepBMs != nil {
					s.iepBMs[i] = s.g.HubBitmap(p)
				}
			} else {
				s.iepSets[i] = s.bufs[src.Buf]
				if s.iepBMs != nil {
					s.iepBMs[i] = nil
				}
			}
		}
		if s.iepBMs != nil {
			return s.calc.CountHybrid(s.iepSets, s.iepBMs, s.bound[:base])
		}
		return s.calc.Count(s.iepSets, s.bound[:base])
	}
}
